package stems

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"stems/internal/cluster"
	"stems/internal/obs"
)

// LatencySnapshot is a mergeable point-in-time copy of a latency
// histogram (log-bucketed, power-of-two nanosecond bounds); PeerStats
// carries one per peer. Derive summaries with its Mean and Quantile
// methods, or combine clients by merging snapshots.
type LatencySnapshot = obs.Snapshot

// ClusterConfig tunes a ClusterClient. The zero value (or nil) selects
// the defaults noted per field.
type ClusterConfig struct {
	// HTTPClient carries requests to every peer; nil selects the
	// package's shared tuned client (pooled keep-alive connections per
	// host, dial and response-header timeouts — see NewClient).
	HTTPClient *http.Client
	// AttemptsPerPeer caps tries against one peer before failing over to
	// the next in rendezvous order (default 3).
	AttemptsPerPeer int
	// RetryBase is the backoff before the first retry; each subsequent
	// retry doubles it, plus up to 50% random jitter so a fleet of
	// clients retrying a recovering daemon doesn't stampede in phase
	// (default 50ms).
	RetryBase time.Duration
	// RetryMax caps the grown backoff (default 2s).
	RetryMax time.Duration
}

func (c *ClusterConfig) fill() {
	if c.AttemptsPerPeer <= 0 {
		c.AttemptsPerPeer = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
}

// ClusterStats snapshots a ClusterClient's routing counters, one entry
// per peer in shard-map order.
type ClusterStats struct {
	Peers []PeerStats
}

// PeerStats counts one peer's share of the client's routing activity.
type PeerStats struct {
	// URL is the peer's base URL.
	URL string
	// RunsRouted counts runs whose shard-map owner is this peer.
	RunsRouted uint64
	// JobsServed counts jobs this peer completed for the client
	// (including jobs it served as a failover target for another owner).
	JobsServed uint64
	// Retries counts re-submissions to this peer after a transient error.
	Retries uint64
	// Failovers counts jobs this peer's owner could not serve that were
	// redirected here (the content-addressed store makes any peer a
	// correct fallback).
	Failovers uint64
	// Latency is the distribution of this peer's whole-attempt RPC
	// latencies (submit through terminal wait, failures included).
	Latency LatencySnapshot
}

// ClusterClient drives a stemsd cluster: a static set of daemons sharing
// one shard map over run content addresses (stems.RunKey). Each run is
// routed to its owning peer — so every daemon's result store concentrates
// its own shard and a cluster-wide sweep gets N-daemon parallelism —
// with bounded exponential-backoff retries on transient errors and
// deterministic failover to the next-ranked peer when an owner is down
// (correct because results are content-addressed: any peer computes
// identical bytes for the same key). Safe for concurrent use.
//
//	cc, err := stems.NewClusterClient([]string{
//		"http://10.0.0.1:8091", "http://10.0.0.2:8091", "http://10.0.0.3:8091",
//	}, nil)
//	results, err := cc.Sweep(ctx, specs)
type ClusterClient struct {
	peers []*Client
	shard *cluster.Map
	cfg   ClusterConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats []PeerStats

	// lat records per-peer attempt latency, index-aligned with peers;
	// histograms are atomic, so attempts record without cc.mu.
	lat []*obs.Histogram
}

// NewClusterClient builds a cluster client over the daemons' base URLs.
// Every client (and every daemon started with the same -peers list)
// derives the same shard map from the same URL set, so routing agrees
// cluster-wide with no coordination. cfg nil selects the defaults.
func NewClusterClient(peers []string, cfg *ClusterConfig) (*ClusterClient, error) {
	shard, err := cluster.NewMap(peers)
	if err != nil {
		return nil, fmt.Errorf("stems: %w", err)
	}
	var c ClusterConfig
	if cfg != nil {
		c = *cfg
	}
	c.fill()
	httpc := c.HTTPClient // nil → NewClient picks the shared default
	cc := &ClusterClient{
		shard: shard,
		cfg:   c,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
		stats: make([]PeerStats, shard.Len()),
	}
	for i, u := range shard.Peers() {
		cc.peers = append(cc.peers, NewClient(u, httpc))
		cc.stats[i].URL = u
		cc.lat = append(cc.lat, &obs.Histogram{})
	}
	return cc, nil
}

// Peers returns the shard map's peer URLs in map order.
func (cc *ClusterClient) Peers() []string { return cc.shard.Peers() }

// Owner returns the base URL of the peer owning spec's result — where
// Run would route it.
func (cc *ClusterClient) Owner(spec Spec) (string, error) {
	key, err := RunKey(spec)
	if err != nil {
		return "", err
	}
	return cc.shard.Peers()[cc.shard.Owner(key)], nil
}

// Stats snapshots the per-peer routing counters.
func (cc *ClusterClient) Stats() ClusterStats {
	cc.mu.Lock()
	out := make([]PeerStats, len(cc.stats))
	copy(out, cc.stats)
	cc.mu.Unlock()
	for i := range out {
		out[i].Latency = cc.lat[i].Snapshot()
	}
	return ClusterStats{Peers: out}
}

// Run executes one spec on the cluster: routed to its owner, retried
// with backoff on transient errors, failed over across the remaining
// peers in rendezvous order if the owner stays down. The result is the
// canonical wire document — byte-comparable to a local Run encoded with
// EncodeResult, whichever peer served it.
func (cc *ClusterClient) Run(ctx context.Context, spec Spec) (RunResult, error) {
	key, err := RunKey(spec)
	if err != nil {
		return RunResult{}, err
	}
	cc.note(cc.shard.Owner(key), func(p *PeerStats) { p.RunsRouted++ })
	st, err := cc.submitJob(ctx, key, JobSpec{RunSpec: spec})
	if err != nil {
		return RunResult{}, err
	}
	res, err := st.DecodedResults()
	if err != nil {
		return RunResult{}, err
	}
	if len(res) != 1 {
		return RunResult{}, fmt.Errorf("stems: cluster run returned %d results, want 1", len(res))
	}
	return res[0], nil
}

// Sweep executes specs across the cluster: runs grouped by owning peer,
// one job per peer submitted concurrently, results reassembled in input
// order. Each group inherits Run's retry and failover discipline, and
// every result is byte-canonical regardless of which peer computed it.
func (cc *ClusterClient) Sweep(ctx context.Context, specs []Spec) ([]RunResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	// Group by owner, remembering each spec's original position.
	groups := make(map[int][]int) // owner peer index → spec indexes
	for i, spec := range specs {
		key, err := RunKey(spec)
		if err != nil {
			return nil, fmt.Errorf("stems: sweep spec %d: %w", i, err)
		}
		owner := cc.shard.Owner(key)
		cc.note(owner, func(p *PeerStats) { p.RunsRouted++ })
		groups[owner] = append(groups[owner], i)
	}

	out := make([]RunResult, len(specs))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			job := JobSpec{Runs: make([]RunSpec, len(idxs))}
			for gi, si := range idxs {
				job.Runs[gi] = specs[si]
			}
			// Any run's key ranks the whole group at its owner: every
			// run in the group has the same owner by construction.
			key, err := RunKey(specs[idxs[0]])
			if err == nil {
				var st JobStatus
				st, err = cc.submitJob(ctx, key, job)
				if err == nil {
					var res []RunResult
					res, err = st.DecodedResults()
					if err == nil && len(res) != len(idxs) {
						err = fmt.Errorf("stems: peer returned %d results, want %d", len(res), len(idxs))
					}
					if err == nil {
						for gi, si := range idxs {
							out[si] = res[gi]
						}
					}
				}
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(owner, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Metrics fetches /metrics from every peer, index-aligned with Peers.
// Unreachable peers yield a zero entry and an error naming them; reach
// the survivors' entries regardless.
func (cc *ClusterClient) Metrics(ctx context.Context) ([]ServiceMetrics, error) {
	out := make([]ServiceMetrics, len(cc.peers))
	var firstErr error
	for i, p := range cc.peers {
		m, err := p.Metrics(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("stems: metrics from %s: %w", p.BaseURL(), err)
			}
			continue
		}
		out[i] = m
	}
	return out, firstErr
}

// submitJob runs one job against the peers ranked for key: the owner
// first, then the failover order. Per peer it retries transient errors
// AttemptsPerPeer times with exponential backoff + jitter; a terminal
// job failure or a structured client error (e.g. invalid_spec) is
// returned immediately — re-running a deterministic simulation cannot
// change its outcome.
func (cc *ClusterClient) submitJob(ctx context.Context, key string, job JobSpec) (JobStatus, error) {
	ranked := cc.shard.Ranked(key)
	var lastErr error
	for rank, peerIdx := range ranked {
		if rank > 0 {
			cc.note(peerIdx, func(p *PeerStats) { p.Failovers++ })
		}
		st, err := cc.submitToPeer(ctx, peerIdx, job)
		if err == nil {
			cc.note(peerIdx, func(p *PeerStats) { p.JobsServed++ })
			return st, nil
		}
		if !transient(err) || ctx.Err() != nil {
			return JobStatus{}, err
		}
		lastErr = err
	}
	return JobStatus{}, fmt.Errorf("stems: no cluster peer could serve the job (last error: %w)", lastErr)
}

// submitToPeer drives one peer through submit → wait with bounded
// retries on transient errors.
func (cc *ClusterClient) submitToPeer(ctx context.Context, peerIdx int, job JobSpec) (JobStatus, error) {
	peer := cc.peers[peerIdx]
	var lastErr error
	for attempt := 0; attempt < cc.cfg.AttemptsPerPeer; attempt++ {
		if attempt > 0 {
			cc.note(peerIdx, func(p *PeerStats) { p.Retries++ })
			if err := cc.sleep(ctx, attempt-1); err != nil {
				return JobStatus{}, err
			}
		}
		attemptStart := time.Now()
		st, err := peer.Submit(ctx, job)
		if err == nil {
			st, err = peer.Wait(ctx, st.ID)
		}
		cc.lat[peerIdx].Observe(time.Since(attemptStart))
		if err == nil {
			switch st.State {
			case JobDone:
				return st, nil
			case JobCanceled:
				// Daemon-side cancellation (e.g. it began draining
				// mid-job): transient from the cluster's view.
				err = fmt.Errorf("stems: peer %s canceled the job: %s", peer.BaseURL(), st.Error)
			default:
				// A failed deterministic simulation fails everywhere;
				// surface it rather than retrying.
				return st, &permanentError{fmt.Errorf("stems: job failed on %s: %s", peer.BaseURL(), st.Error)}
			}
		}
		if !transient(err) || ctx.Err() != nil {
			return JobStatus{}, err
		}
		lastErr = err
	}
	return JobStatus{}, lastErr
}

// sleep blocks for the retry-th backoff interval (exponential from
// RetryBase, capped at RetryMax, plus up to 50% jitter) or until ctx
// ends.
func (cc *ClusterClient) sleep(ctx context.Context, retry int) error {
	d := cc.cfg.RetryBase << retry
	if d > cc.cfg.RetryMax || d <= 0 {
		d = cc.cfg.RetryMax
	}
	cc.mu.Lock()
	d += time.Duration(cc.rng.Int63n(int64(d)/2 + 1))
	cc.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// note updates one peer's stats under the lock.
func (cc *ClusterClient) note(peerIdx int, f func(*PeerStats)) {
	cc.mu.Lock()
	f(&cc.stats[peerIdx])
	cc.mu.Unlock()
}

// permanentError marks an outcome that retrying on another peer cannot
// change — a deterministic simulation that failed.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// transient classifies errors worth retrying or failing over: network
// failures (connection refused, reset, timeout) and 5xx responses (a
// full queue or draining daemon answers 503). Structured 4xx refusals
// and terminal job failures are permanent — the outcome is the same on
// every peer.
func transient(err error) bool {
	if err == nil {
		return false
	}
	var pe *permanentError
	if errors.As(err, &pe) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500
	}
	// Everything else reaching here is transport-level: dial failures,
	// resets, deadlines, or a stream cut mid-job.
	return true
}
