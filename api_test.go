// Tests of the public engine API: predictor registry semantics, Runner
// option defaulting, and the parallel sweep executor's determinism and
// cancellation behaviour.
package stems_test

import (
	"context"
	"strings"
	"testing"

	"stems"
	"stems/internal/sim"
)

// ---- registry ----

func TestPredictorsContainBuiltins(t *testing.T) {
	got := stems.Predictors()
	want := []string{"none", "stride", "sms", "tms", "stems", "naive-hybrid", "epoch"}
	if len(got) < len(want) {
		t.Fatalf("Predictors() = %v, missing built-ins", got)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Predictors()[%d] = %q, want %q (full: %v)", i, got[i], name, got)
		}
	}
}

func TestRegisterPredictorErrors(t *testing.T) {
	nop := func(m *stems.Machine, opt stems.Options) error { return nil }
	if err := stems.RegisterPredictor("", nop); err == nil {
		t.Fatal("registering an empty name succeeded")
	}
	if err := stems.RegisterPredictor("t-nil", nil); err == nil {
		t.Fatal("registering a nil builder succeeded")
	}
	if err := stems.RegisterPredictor("stems", nop); err == nil {
		t.Fatal("shadowing the built-in stems predictor succeeded")
	}
	if err := stems.RegisterPredictor("t-custom", nop); err != nil {
		t.Fatalf("first registration failed: %v", err)
	}
	if err := stems.RegisterPredictor("t-custom", nop); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	found := false
	for _, name := range stems.Predictors() {
		if name == "t-custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered predictor missing from Predictors(): %v", stems.Predictors())
	}
}

func TestRegisteredPredictorRuns(t *testing.T) {
	// A predictor registered through the public API builds and runs by
	// name like the built-ins.
	err := stems.RegisterPredictor("t-noppf", func(m *stems.Machine, opt stems.Options) error {
		return nil // no engine, no prefetcher: behaves like "none"
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := stems.New(
		stems.WithPredictor("t-noppf"),
		stems.WithWorkload("DB2"),
		stems.WithAccesses(5_000),
		stems.WithSystem(stems.ScaledSystem()),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 5_000 {
		t.Fatalf("accesses = %d, want 5000", res.Accesses)
	}
}

// ---- Runner options ----

func TestRunnerDefaultsMatchSimDefaults(t *testing.T) {
	r, err := stems.New()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Options(), sim.DefaultOptions(); got != want {
		t.Fatalf("default options diverge from sim.DefaultOptions():\ngot  %+v\nwant %+v", got, want)
	}
	if r.Predictor() != "stems" {
		t.Fatalf("default predictor = %q, want stems", r.Predictor())
	}
	if r.Label() != "stems/DB2" {
		t.Fatalf("default label = %q", r.Label())
	}
}

func TestRunnerUnknownPredictor(t *testing.T) {
	_, err := stems.New(stems.WithPredictor("does-not-exist"))
	if err == nil {
		t.Fatal("unknown predictor accepted")
	}
	// The error derives the legal names from the registry.
	if !strings.Contains(err.Error(), "stride") || !strings.Contains(err.Error(), "naive-hybrid") {
		t.Fatalf("error does not list registered predictors: %v", err)
	}
}

func TestRunnerUnknownWorkload(t *testing.T) {
	if _, err := stems.New(stems.WithWorkload("nope")); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunnerConflictingSources(t *testing.T) {
	_, err := stems.New(
		stems.WithWorkload("DB2"),
		stems.WithTrace([]stems.Access{{Addr: 64}}),
	)
	if err == nil {
		t.Fatal("conflicting sources accepted")
	}
}

func TestRunnerScientificDefaulting(t *testing.T) {
	sci, err := stems.New(stems.WithWorkload("em3d"))
	if err != nil {
		t.Fatal(err)
	}
	if !sci.Options().Scientific {
		t.Fatal("em3d did not default to the scientific lookahead")
	}
	com, err := stems.New(stems.WithWorkload("DB2"))
	if err != nil {
		t.Fatal(err)
	}
	if com.Options().Scientific {
		t.Fatal("DB2 defaulted to the scientific lookahead")
	}
	forced, err := stems.New(stems.WithWorkload("DB2"), stems.WithScientificLookahead())
	if err != nil {
		t.Fatal(err)
	}
	if !forced.Options().Scientific {
		t.Fatal("WithScientificLookahead ignored")
	}
	// Seeding the option block explicitly must not suppress the
	// workload-class defaulting.
	seeded, err := stems.New(stems.WithOptions(stems.DefaultOptions()), stems.WithWorkload("em3d"))
	if err != nil {
		t.Fatal(err)
	}
	if !seeded.Options().Scientific {
		t.Fatal("WithOptions suppressed the em3d scientific default")
	}
	// WithOptions voids an earlier WithScientificLookahead wholesale, so
	// the workload class decides again rather than a stale flag.
	clobbered, err := stems.New(
		stems.WithScientificLookahead(),
		stems.WithOptions(stems.DefaultOptions()),
		stems.WithWorkload("em3d"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !clobbered.Options().Scientific {
		t.Fatal("stale scientificSet suppressed the em3d default after WithOptions")
	}
}

func TestWithTraceNilReplaysNothing(t *testing.T) {
	// A nil trace is an explicit (empty) source, not "fall back to DB2".
	r, err := stems.New(stems.WithTrace(nil), stems.WithPredictor("none"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 0 {
		t.Fatalf("nil trace replayed %d accesses", res.Accesses)
	}
}

func TestWithConfigureRunsAfterDefaulting(t *testing.T) {
	r, err := stems.New(
		stems.WithWorkload("em3d"),
		stems.WithConfigure(func(o *stems.Options) { o.Scientific = false }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Options().Scientific {
		t.Fatal("configure hook did not override the workload default")
	}
}

func TestRunnerRunMatchesDirectBuild(t *testing.T) {
	// The Runner must reproduce exactly what wiring the internals by hand
	// produces — the public API is a veneer, not a different simulator.
	const n = 20_000
	r, err := stems.New(
		stems.WithWorkload("Apache"),
		stems.WithPredictor("stems"),
		stems.WithSystem(stems.ScaledSystem()),
		stems.WithAccesses(n),
		stems.WithSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	spec, err := stems.WorkloadByName("Apache")
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.DefaultOptions()
	opt.System = stems.ScaledSystem()
	opt.Scientific = spec.Scientific
	m, err := sim.Build(sim.KindSTeMS, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Run(stems.NewSliceSource(spec.Generate(42, n)))
	if got != want {
		t.Fatalf("Runner result diverges from direct build:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestRunnerRejectsBadSeedAndAccesses(t *testing.T) {
	if _, err := stems.New(stems.WithSeed(-3)); err == nil || !strings.Contains(err.Error(), "invalid seed") {
		t.Errorf("negative seed: err = %v, want descriptive invalid-seed error", err)
	}
	// Seed 0 is the wire spec's "default" sentinel, so an explicit local
	// seed 0 is rejected too — otherwise a seed-0 Runner's Spec would
	// silently round-trip to seed 1.
	if _, err := stems.New(stems.WithSeed(0)); err == nil || !strings.Contains(err.Error(), "invalid seed") {
		t.Errorf("zero seed: err = %v, want descriptive invalid-seed error", err)
	}
	if _, err := stems.New(stems.WithAccesses(-1)); err == nil || !strings.Contains(err.Error(), "invalid access count") {
		t.Errorf("negative accesses: err = %v, want descriptive invalid-access-count error", err)
	}
	if _, err := stems.New(stems.WithPredictor("")); err == nil || !strings.Contains(err.Error(), "predictor") {
		t.Errorf("empty predictor: err = %v, want descriptive error", err)
	}
}

// TestWithRunProgress checks the per-block progress hook: monotone
// cumulative counts ending exactly at the replayed length.
func TestWithRunProgress(t *testing.T) {
	const n = 10_000
	var got []uint64
	r, err := stems.New(
		stems.WithWorkload("DB2"),
		stems.WithPredictor("none"),
		stems.WithAccesses(n),
		stems.WithRunProgress(func(done uint64) { got = append(got, done) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("progress callback never fired")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("progress not increasing: %v", got)
		}
	}
	if last := got[len(got)-1]; last != n {
		t.Errorf("final progress = %d, want %d", last, n)
	}
}
