package stems

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"stems/internal/par"
	"stems/internal/sim"
)

// Progress observes sweep completion: completed runs so far, the grid
// size, the finished run's label, and its result. Calls are serialized
// but arrive in completion order, not grid order.
type Progress func(completed, total int, label string, res Result)

// sweepConfig collects Sweep's execution options.
type sweepConfig struct {
	parallelism int
	progress    Progress
	runResult   func(index int, res Result)
	noFuse      bool
}

// SweepOption configures Sweep's execution (not the runs themselves —
// those are configured per Runner).
type SweepOption func(*sweepConfig)

// WithParallelism bounds the worker goroutines (default GOMAXPROCS).
// Parallelism 1 executes the work serially; because every run is
// deterministic and isolated, any parallelism produces identical results.
// When the grid fuses into trace groups (see WithFusion), the budget
// covers both levels: groups run on the pool, and the leftover width
// becomes lane workers inside each fused set.
func WithParallelism(n int) SweepOption {
	return func(c *sweepConfig) { c.parallelism = n }
}

// WithProgress installs a completion callback.
func WithProgress(fn Progress) SweepOption {
	return func(c *sweepConfig) { c.progress = fn }
}

// WithRunResult installs a per-run result callback keyed by grid index:
// fn(i, res) fires as grid[i]'s result lands, serialized. Unlike waiting
// on Sweep's return, a consumer can stream results as they land
// (cmd/sweep -json flushes NDJSON records this way); unlike Progress, the
// grid index makes the run unambiguous when labels collide. Runs fused
// onto one shared cursor finish together: their callbacks fire
// back-to-back, in grid order, when their set completes.
func WithRunResult(fn func(index int, res Result)) SweepOption {
	return func(c *sweepConfig) { c.runResult = fn }
}

// WithFusion toggles trace-fused execution (default enabled). Fused
// sweeps partition the grid by resolved trace cell — the (workload, seed,
// length) triple — and execute each group of same-cell runs as one
// lockstep set over a single shared block cursor, so an N-point predictor
// or knob panel traverses its trace once instead of N times. Results are
// byte-identical either way; only the scheduling (and the latency profile
// of the streaming callbacks) differs. WithFusion(false) restores strict
// one-cursor-per-run execution.
func WithFusion(enabled bool) SweepOption {
	return func(c *sweepConfig) { c.noFuse = !enabled }
}

// Sweep executes a grid of configured Runners across a worker pool and
// returns their Results in grid order — result i belongs to grid[i]
// regardless of scheduling, so sweeps are reproducible under any
// parallelism. Runs that replay the same resolved trace are fused into
// one lockstep pass over a shared cursor (see WithFusion); everything
// else runs on its own cursor as before. A failing run cancels the
// remaining work and its error is returned (runs cancelled as collateral
// never mask it); cancelling ctx stops runs in flight.
func Sweep(ctx context.Context, grid []*Runner, opts ...SweepOption) ([]Result, error) {
	cfg := sweepConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	for i, r := range grid {
		if r == nil {
			return nil, fmt.Errorf("stems: Sweep grid[%d] is nil", i)
		}
	}

	groups := fuseGroups(grid, cfg.noFuse)
	lanes := fusedLaneParallelism(cfg.parallelism, len(groups))

	var mu sync.Mutex
	completed := 0
	deliver := func(i int, res Result) { // callers hold mu
		completed++
		if cfg.progress != nil {
			cfg.progress(completed, len(grid), grid[i].Label(), res)
		}
		if cfg.runResult != nil {
			cfg.runResult(i, res)
		}
	}
	haveCallbacks := cfg.progress != nil || cfg.runResult != nil

	grouped, err := par.Map(ctx, len(groups), cfg.parallelism, func(ctx context.Context, g int) ([]Result, error) {
		idxs := groups[g]
		if len(idxs) == 1 {
			i := idxs[0]
			res, err := grid[i].Run(ctx)
			if err != nil {
				return nil, fmt.Errorf("stems: sweep run %d (%s): %w", i, grid[i].Label(), err)
			}
			if haveCallbacks {
				mu.Lock()
				deliver(i, res)
				mu.Unlock()
			}
			return []Result{res}, nil
		}
		results, err := runFused(ctx, grid, idxs, lanes)
		if err != nil {
			return nil, err
		}
		if haveCallbacks {
			mu.Lock()
			for k, i := range idxs {
				deliver(i, results[k])
			}
			mu.Unlock()
		}
		return results, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(grid))
	for g, idxs := range groups {
		for k, i := range idxs {
			out[i] = grouped[g][k]
		}
	}
	return out, nil
}

// FuseSweep executes a grid of Runners that all replay one trace as a
// single lockstep set: every member's resolved trace cell — the
// (workload, seed, length) triple — must match, the shared cursor is
// drained once, and each fetched block is stepped through all machines
// while its columns are hot in cache. Results return in grid order,
// byte-identical to running each member alone (the machines share no
// mutable state and blocks are read-only, so only the scheduling
// differs).
//
// This is the strict fusion primitive under Sweep: Sweep partitions an
// arbitrary grid into trace cells and runs each group through the same
// machinery, so reach for FuseSweep directly when the grid is one cell by
// construction (a predictor or knob panel over one workload) and a
// mismatch should be an error rather than a silent partition. Every
// member must be fuse-eligible — replaying a named suite workload; file,
// slice, custom-source, and WithWorkloadSpec runs have no resolvable
// trace cell and are rejected.
//
// WithParallelism bounds the lane workers stepping each block (default
// GOMAXPROCS). WithProgress and WithRunResult fire per member, in grid
// order, when the set finishes; a member's own WithRunProgress callback
// receives that lane's cumulative access count, serialized and monotonic.
func FuseSweep(ctx context.Context, grid []*Runner, opts ...SweepOption) ([]Result, error) {
	cfg := sweepConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	for i, r := range grid {
		if r == nil {
			return nil, fmt.Errorf("stems: FuseSweep grid[%d] is nil", i)
		}
	}
	if len(grid) == 0 {
		return []Result{}, nil
	}
	cells := make([]traceCell, len(grid))
	for i, r := range grid {
		cell, ok := r.fuseCell()
		if !ok {
			return nil, fmt.Errorf("stems: FuseSweep grid[%d] (%s) is not fuse-eligible: fused sets replay named suite workloads (file, slice, custom-source, and WithWorkloadSpec runs have no resolvable trace cell)", i, grid[i].Label())
		}
		cells[i] = cell
	}
	for i := 1; i < len(grid); i++ {
		if cells[i] != cells[0] {
			return nil, fmt.Errorf("stems: FuseSweep grid[%d] (%s) replays %s/seed=%d/%d accesses but grid[0] (%s) replays %s/seed=%d/%d: fused sets share one trace cell (use Sweep to partition a mixed grid)",
				i, grid[i].Label(), cells[i].workload, cells[i].seed, cells[i].accesses,
				grid[0].Label(), cells[0].workload, cells[0].seed, cells[0].accesses)
		}
	}
	idxs := make([]int, len(grid))
	for i := range idxs {
		idxs[i] = i
	}
	results, err := runFused(ctx, grid, idxs, cfg.parallelism)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		if cfg.progress != nil {
			cfg.progress(i+1, len(grid), grid[i].Label(), res)
		}
		if cfg.runResult != nil {
			cfg.runResult(i, res)
		}
	}
	return results, nil
}

// fuseGroups partitions the grid into trace-cell groups: runs resolving
// to the same generated trace fold into one fused lockstep set, everyone
// else stays a singleton. Groups appear in first-member grid order and
// members keep grid order, so delivery stays deterministic. Same-cell
// runs need not be adjacent in the grid.
func fuseGroups(grid []*Runner, noFuse bool) [][]int {
	groups := make([][]int, 0, len(grid))
	if noFuse {
		for i := range grid {
			groups = append(groups, []int{i})
		}
		return groups
	}
	at := make(map[traceCell]int, len(grid))
	for i, r := range grid {
		cell, ok := r.fuseCell()
		if !ok {
			groups = append(groups, []int{i})
			continue
		}
		if g, seen := at[cell]; seen {
			groups[g] = append(groups[g], i)
			continue
		}
		at[cell] = len(groups)
		groups = append(groups, []int{i})
	}
	return groups
}

// fusedLaneParallelism splits the worker budget between the group pool
// and the lanes inside each fused set: one group gets the whole budget as
// lane workers; many groups split it, never below serial lanes. The
// split keeps total goroutine pressure near the configured bound without
// starving a lone fused panel of its lane parallelism.
func fusedLaneParallelism(parallelism, groups int) int {
	p := parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if groups > 1 {
		p /= groups
	}
	if p < 1 {
		p = 1
	}
	return p
}

// runFused executes grid members idxs — all resolving to one trace cell —
// as a single lockstep set over one shared cursor. The leader (first
// member) materializes the cursor, through its arena when it has one.
// Results return in idxs order; build and source errors are attributed to
// the offending member's grid index in Sweep's wrap format.
func runFused(ctx context.Context, grid []*Runner, idxs []int, laneParallelism int) ([]Result, error) {
	leader := grid[idxs[0]]
	bs, err := leader.source()
	if err != nil {
		return nil, fmt.Errorf("stems: sweep run %d (%s): %w", idxs[0], leader.Label(), err)
	}
	machines := make([]*sim.Machine, len(idxs))
	for k, i := range idxs {
		m, err := grid[i].buildMachine()
		if err != nil {
			return nil, fmt.Errorf("stems: sweep run %d (%s): %w", i, grid[i].Label(), err)
		}
		machines[k] = m
	}
	set := sim.NewSharedSet(bs, machines...)
	set.Parallelism = laneParallelism
	if fns := laneProgress(grid, idxs); fns != nil {
		k := uint64(len(idxs))
		set.Progress = func(total uint64) {
			// Lanes advance in lockstep over one cursor and the set reports
			// after the per-block barrier, so each lane's own cumulative
			// count is exactly the set total divided by the lane count. The
			// set serializes reports, preserving WithRunProgress's
			// monotonic-stream contract per member.
			per := total / k
			for _, fn := range fns {
				fn(per)
			}
		}
	}
	results, err := set.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("stems: sweep run %d (%s): %w", idxs[0], leader.Label(), err)
	}
	return results, nil
}

// laneProgress collects the configured WithRunProgress callbacks of the
// fused members, or nil when no member has one.
func laneProgress(grid []*Runner, idxs []int) []func(uint64) {
	var fns []func(uint64)
	for _, i := range idxs {
		if fn := grid[i].progress; fn != nil {
			fns = append(fns, fn)
		}
	}
	return fns
}
