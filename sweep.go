package stems

import (
	"context"
	"fmt"
	"sync"

	"stems/internal/par"
)

// Progress observes sweep completion: completed runs so far, the grid
// size, the finished run's label, and its result. Calls are serialized
// but arrive in completion order, not grid order.
type Progress func(completed, total int, label string, res Result)

// sweepConfig collects Sweep's execution options.
type sweepConfig struct {
	parallelism int
	progress    Progress
	runResult   func(index int, res Result)
}

// SweepOption configures Sweep's execution (not the runs themselves —
// those are configured per Runner).
type SweepOption func(*sweepConfig)

// WithParallelism bounds the worker goroutines (default GOMAXPROCS).
// Parallelism 1 executes the grid serially in order; because every run is
// deterministic and isolated, any parallelism produces identical results.
func WithParallelism(n int) SweepOption {
	return func(c *sweepConfig) { c.parallelism = n }
}

// WithProgress installs a completion callback.
func WithProgress(fn Progress) SweepOption {
	return func(c *sweepConfig) { c.progress = fn }
}

// WithRunResult installs a per-run result callback keyed by grid index:
// fn(i, res) fires as grid[i] finishes, serialized but in completion
// order. Unlike waiting on Sweep's return, a consumer can stream
// results as they land (cmd/sweep -json flushes NDJSON records this
// way); unlike Progress, the grid index makes the run unambiguous when
// labels collide.
func WithRunResult(fn func(index int, res Result)) SweepOption {
	return func(c *sweepConfig) { c.runResult = fn }
}

// Sweep executes a grid of configured Runners across a worker pool and
// returns their Results in grid order — result i belongs to grid[i]
// regardless of scheduling, so sweeps are reproducible under any
// parallelism. A failing run cancels the remaining work and its error is
// returned (runs cancelled as collateral never mask it); cancelling ctx
// stops runs in flight.
func Sweep(ctx context.Context, grid []*Runner, opts ...SweepOption) ([]Result, error) {
	cfg := sweepConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	for i, r := range grid {
		if r == nil {
			return nil, fmt.Errorf("stems: Sweep grid[%d] is nil", i)
		}
	}

	var mu sync.Mutex
	completed := 0
	return par.Map(ctx, len(grid), cfg.parallelism, func(ctx context.Context, i int) (Result, error) {
		res, err := grid[i].Run(ctx)
		if err != nil {
			return Result{}, fmt.Errorf("stems: sweep run %d (%s): %w", i, grid[i].Label(), err)
		}
		if cfg.progress != nil || cfg.runResult != nil {
			mu.Lock()
			completed++
			if cfg.progress != nil {
				cfg.progress(completed, len(grid), grid[i].Label(), res)
			}
			if cfg.runResult != nil {
				cfg.runResult(i, res)
			}
			mu.Unlock()
		}
		return res, nil
	})
}
