// Lockstep seed-set equivalence at the public API: for every registered
// predictor and every workload of the paper's suite, Runner.RunSeeds must
// return, seed for seed, exactly the Results of sequential Runner.Run
// calls at those seeds. This is the contract that lets Figure 10 and the
// stemsd service vectorize seed sweeps without perturbing a single figure
// byte.
package stems_test

import (
	"context"
	"testing"

	"stems"
)

func TestRunSeedsMatchesSequentialRuns(t *testing.T) {
	const accesses = 8_000
	seeds := []int64{1, 1 + stems.SeedStride}
	for _, workload := range stems.WorkloadNames() {
		for _, predictor := range stems.Predictors() {
			want := make([]stems.Result, len(seeds))
			for i, seed := range seeds {
				r, err := stems.New(
					stems.WithWorkload(workload),
					stems.WithPredictor(predictor),
					stems.WithSeed(seed),
					stems.WithAccesses(accesses),
				)
				if err != nil {
					t.Fatal(err)
				}
				want[i], err = r.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
			}

			r, err := stems.New(
				stems.WithWorkload(workload),
				stems.WithPredictor(predictor),
				stems.WithSeeds(seeds[0], len(seeds)),
				stems.WithAccesses(accesses),
			)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.RunSeeds(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(seeds) {
				t.Fatalf("%s/%s: RunSeeds returned %d results, want %d", workload, predictor, len(got), len(seeds))
			}
			for i := range seeds {
				if got[i] != want[i] {
					t.Errorf("%s/%s seed %d: lockstep diverged from sequential Run\n got: %+v\nwant: %+v",
						workload, predictor, seeds[i], got[i], want[i])
				}
			}
		}
	}
}

// TestRunSeedsExplicitList checks that a caller-supplied seed list
// overrides the configured progression and preserves list order.
func TestRunSeedsExplicitList(t *testing.T) {
	const accesses = 8_000
	r, err := stems.New(stems.WithWorkload("em3d"), stems.WithAccesses(accesses))
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{42, 7}
	got, err := r.RunSeeds(context.Background(), seeds...)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		solo, err := stems.New(
			stems.WithWorkload("em3d"),
			stems.WithSeed(seed),
			stems.WithAccesses(accesses),
		)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solo.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("seed %d (position %d) diverged from solo run", seed, i)
		}
	}
}

// TestSeedsProgression pins the WithSeeds seed derivation against
// Figure 10's documented progression.
func TestSeedsProgression(t *testing.T) {
	r, err := stems.New(stems.WithSeeds(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 3 + stems.SeedStride, 3 + 2*stems.SeedStride, 3 + 3*stems.SeedStride}
	got := r.Seeds()
	if len(got) != len(want) {
		t.Fatalf("Seeds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds() = %v, want %v", got, want)
		}
	}
	// Without WithSeeds the set degenerates to the single configured seed.
	single, err := stems.New(stems.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if s := single.Seeds(); len(s) != 1 || s[0] != 9 {
		t.Fatalf("Seeds() without WithSeeds = %v, want [9]", s)
	}
}

// TestRunSeedsValidation covers the rejection paths: non-positive seeds,
// invalid seed counts, and multi-seed sets over non-workload sources.
func TestRunSeedsValidation(t *testing.T) {
	if _, err := stems.New(stems.WithSeeds(0, 2)); err == nil {
		t.Error("WithSeeds(0, 2) accepted, want error (seeds are positive)")
	}
	if _, err := stems.New(stems.WithSeeds(1, 0)); err == nil {
		t.Error("WithSeeds(1, 0) accepted, want error (need at least one seed)")
	}
	r, err := stems.New(stems.WithWorkload("DB2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunSeeds(context.Background(), 5, -1); err == nil {
		t.Error("RunSeeds with negative seed accepted, want error")
	}
	slice, err := stems.New(stems.WithTrace(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slice.RunSeeds(context.Background(), 1, 2); err == nil {
		t.Error("multi-seed RunSeeds over a slice source accepted, want error")
	}
}
