// Command stemsim runs one workload through the memory-hierarchy simulator
// under a chosen prefetcher and prints the result: coverage, overprediction
// rate, cycles, and speedup against the no-prefetch and stride baselines.
//
// Usage:
//
//	stemsim -workload DB2 -prefetcher stems
//	stemsim -workload em3d -prefetcher all -accesses 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stems/internal/config"
	"stems/internal/sim"
	"stems/internal/trace"
	"stems/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "DB2", "workload name: "+strings.Join(workload.Names(), ", "))
		traceFile = flag.String("trace", "", "binary trace file (from tracegen) to replay instead of generating")
		pf        = flag.String("prefetcher", "all", "predictor: none, stride, sms, tms, stems, naive-hybrid, or all")
		seed      = flag.Int64("seed", 1, "workload seed")
		accesses  = flag.Int("accesses", 0, "trace length (0 = workload default)")
		paperL2   = flag.Bool("paper-l2", false, "use the full Table 1 8MB L2 instead of the scaled 1MB")
	)
	flag.Parse()

	var (
		spec workload.Spec
		accs []trace.Access
		err  error
	)
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		r := trace.NewReader(f)
		accs = trace.Collect(r, *accesses)
		f.Close()
		if r.Err() != nil {
			fmt.Fprintln(os.Stderr, r.Err())
			os.Exit(1)
		}
		spec = workload.Spec{Name: *traceFile, Class: "trace"}
	} else {
		spec, err = workload.ByName(*wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "available workloads:", strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
		n := spec.DefaultAccesses
		if *accesses > 0 {
			n = *accesses
		}
		accs = spec.Generate(*seed, n)
	}

	var kinds []sim.Kind
	if *pf == "all" {
		kinds = sim.AllKinds()
	} else {
		kinds = []sim.Kind{sim.Kind(*pf)}
	}

	sys := config.ScaledSystem()
	if *paperL2 {
		sys = config.DefaultSystem()
	}

	fmt.Printf("workload %s (%s): %d accesses, seed %d\n\n", spec.Name, spec.Class, len(accs), *seed)
	var noneCycles, strideCycles uint64
	for _, kind := range kinds {
		opt := sim.DefaultOptions()
		opt.System = sys
		opt.Scientific = spec.Scientific
		m, err := sim.Build(kind, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res := m.Run(trace.NewSliceSource(accs))
		switch kind {
		case sim.KindNone:
			noneCycles = res.Cycles
		case sim.KindStride:
			strideCycles = res.Cycles
		}
		line := fmt.Sprintf("%-13s misses=%8d covered=%5.1f%% overpred=%6.1f%% cycles=%12d",
			kind, res.BaselineMisses(), 100*res.Coverage(), 100*res.OverpredictionRate(), res.Cycles)
		if strideCycles > 0 && kind != sim.KindNone && kind != sim.KindStride {
			line += fmt.Sprintf("  speedup-vs-stride=%+6.1f%%",
				100*(float64(strideCycles)/float64(res.Cycles)-1))
		} else if noneCycles > 0 && kind == sim.KindStride {
			line += fmt.Sprintf("  speedup-vs-none  =%+6.1f%%",
				100*(float64(noneCycles)/float64(res.Cycles)-1))
		}
		fmt.Println(line)
	}
}
