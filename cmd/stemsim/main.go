// Command stemsim runs one workload through the memory-hierarchy simulator
// under a chosen prefetcher and prints the result: coverage, overprediction
// rate, cycles, and speedup against the no-prefetch and stride baselines.
// Predictor parameters are overridden with -set flags naming knobs from
// the typed registry; -predictors (with -v) prints the registry itself.
//
// Usage:
//
//	stemsim -workload DB2 -prefetcher stems
//	stemsim -workload em3d -prefetcher all -accesses 200000
//	stemsim -workload DB2 -prefetcher stems -set stems.rmob_entries=65536 -set scientific=false
//	stemsim -predictors -v
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"stems"
)

// printPredictors lists the registered predictors; verbose adds each
// one's knob schema from the registry (the same document stemsd serves
// at /v1/predictors) — name, kind, default, bounds, doc. The shared
// system/run tables print once rather than under every predictor.
func printPredictors(verbose bool) {
	printKnob := func(k stems.Knob) {
		bounds := ""
		if k.Kind != stems.KnobBool {
			lo, hi := fmt.Sprintf("%g", k.Min), fmt.Sprintf("%g", k.Max)
			if k.Kind == stems.KnobInt {
				lo, hi = fmt.Sprintf("%.0f", k.Min), fmt.Sprintf("%.0f", k.Max)
			}
			bounds = fmt.Sprintf("[%s, %s]", lo, hi)
		}
		fmt.Printf("  %-26s %-5s %-9s %-24s %s\n", k.Name, k.Kind, k.Default(), bounds, k.Doc)
	}
	if verbose {
		fmt.Println("shared knobs (every predictor):")
		for _, k := range stems.AllKnobs() {
			if k.Group == "system" || k.Group == "run" {
				printKnob(k)
			}
		}
		fmt.Println()
	}
	for _, name := range stems.Predictors() {
		fmt.Println(name)
		if !verbose {
			continue
		}
		for _, k := range stems.Knobs(name) {
			if k.Group != "system" && k.Group != "run" {
				printKnob(k)
			}
		}
	}
}

func main() {
	predictors := stems.Predictors()
	var (
		wl        = flag.String("workload", "DB2", "workload name: "+strings.Join(stems.WorkloadNames(), ", "))
		traceFile = flag.String("trace", "", "binary trace file (from tracegen) to replay instead of generating")
		pf        = flag.String("prefetcher", "all", "predictor: "+strings.Join(predictors, ", ")+", or all")
		seed      = flag.Int64("seed", 1, "workload seed")
		accesses  = flag.Int("accesses", 0, "trace length (0 = workload default)")
		paperL2   = flag.Bool("paper-l2", false, "use the full Table 1 8MB L2 instead of the scaled 1MB")
		serial    = flag.Bool("serial", false, "run the predictors one at a time instead of in parallel")
		listPreds = flag.Bool("predictors", false, "list registered predictors and exit (-v adds each one's knob table)")
		verbose   = flag.Bool("v", false, "with -predictors: print the full knob schema per predictor")
	)
	knobs := map[string]stems.Value{}
	flag.Func("set", "knob override as name=value, e.g. stems.rmob_entries=65536 (repeatable; see -predictors -v)", func(s string) error {
		name, v, err := stems.ParseKnobAssignment(s)
		if err != nil {
			return err
		}
		knobs[name] = v
		return nil
	})
	flag.Parse()

	if *listPreds {
		printPredictors(*verbose)
		return
	}

	var kinds []string
	if *pf == "all" {
		kinds = predictors
	} else {
		kinds = []string{*pf}
	}

	sys := stems.ScaledSystem()
	if *paperL2 {
		sys = stems.PaperSystem()
	}

	// The access stream is materialized once, in compact columnar block
	// form, and shared read-only by every runner — each gets its own
	// cursor over the same BlockTrace, so running len(kinds) predictors
	// costs one trace generation and one resident copy.
	opts := []stems.Option{stems.WithSystem(sys), stems.WithKnobs(knobs)}
	header := ""
	var bt *stems.BlockTrace
	if *traceFile != "" {
		var err error
		bt, err = stems.ReadTraceFileBlocks(*traceFile, *accesses)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		header = fmt.Sprintf("trace %s: %d accesses", *traceFile, bt.Len())
	} else {
		spec, err := stems.WorkloadByName(*wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		n := spec.DefaultAccesses
		if *accesses > 0 {
			n = *accesses
		}
		bt = spec.GenerateBlocks(*seed, n)
		if spec.Scientific {
			opts = append(opts, stems.WithScientificLookahead())
		}
		header = fmt.Sprintf("workload %s (%s): %d accesses, seed %d", spec.Name, spec.Class, n, *seed)
	}
	opts = append(opts, stems.WithBlockSourceFunc(bt.Blocks))

	grid := make([]*stems.Runner, len(kinds))
	for i, kind := range kinds {
		r, err := stems.New(append([]stems.Option{stems.WithPredictor(kind)}, opts...)...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		grid[i] = r
	}

	parallelism := 0 // GOMAXPROCS
	if *serial {
		parallelism = 1
	}
	results, err := stems.Sweep(context.Background(), grid, stems.WithParallelism(parallelism))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s\n\n", header)
	// Predictors() orders the baselines first, so the speedup references
	// are available by the time the streamed predictors print.
	var noneCycles, strideCycles uint64
	for i, kind := range kinds {
		res := results[i]
		switch kind {
		case "none":
			noneCycles = res.Cycles
		case "stride":
			strideCycles = res.Cycles
		}
		line := fmt.Sprintf("%-13s misses=%8d covered=%5.1f%% overpred=%6.1f%% cycles=%12d",
			kind, res.BaselineMisses(), 100*res.Coverage(), 100*res.OverpredictionRate(), res.Cycles)
		if strideCycles > 0 && kind != "none" && kind != "stride" {
			line += fmt.Sprintf("  speedup-vs-stride=%+6.1f%%",
				100*(float64(strideCycles)/float64(res.Cycles)-1))
		} else if noneCycles > 0 && kind == "stride" {
			line += fmt.Sprintf("  speedup-vs-none  =%+6.1f%%",
				100*(float64(noneCycles)/float64(res.Cycles)-1))
		}
		fmt.Println(line)
	}
}
