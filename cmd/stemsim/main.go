// Command stemsim runs one workload through the memory-hierarchy simulator
// under a chosen prefetcher and prints the result: coverage, overprediction
// rate, cycles, and speedup against the no-prefetch and stride baselines.
//
// Usage:
//
//	stemsim -workload DB2 -prefetcher stems
//	stemsim -workload em3d -prefetcher all -accesses 200000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"stems"
)

func main() {
	predictors := stems.Predictors()
	var (
		wl        = flag.String("workload", "DB2", "workload name: "+strings.Join(stems.WorkloadNames(), ", "))
		traceFile = flag.String("trace", "", "binary trace file (from tracegen) to replay instead of generating")
		pf        = flag.String("prefetcher", "all", "predictor: "+strings.Join(predictors, ", ")+", or all")
		seed      = flag.Int64("seed", 1, "workload seed")
		accesses  = flag.Int("accesses", 0, "trace length (0 = workload default)")
		paperL2   = flag.Bool("paper-l2", false, "use the full Table 1 8MB L2 instead of the scaled 1MB")
		serial    = flag.Bool("serial", false, "run the predictors one at a time instead of in parallel")
	)
	flag.Parse()

	var kinds []string
	if *pf == "all" {
		kinds = predictors
	} else {
		kinds = []string{*pf}
	}

	sys := stems.ScaledSystem()
	if *paperL2 {
		sys = stems.PaperSystem()
	}

	// The access stream is materialized once, in compact columnar block
	// form, and shared read-only by every runner — each gets its own
	// cursor over the same BlockTrace, so running len(kinds) predictors
	// costs one trace generation and one resident copy.
	opts := []stems.Option{stems.WithSystem(sys)}
	header := ""
	var bt *stems.BlockTrace
	if *traceFile != "" {
		var err error
		bt, err = stems.ReadTraceFileBlocks(*traceFile, *accesses)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		header = fmt.Sprintf("trace %s: %d accesses", *traceFile, bt.Len())
	} else {
		spec, err := stems.WorkloadByName(*wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		n := spec.DefaultAccesses
		if *accesses > 0 {
			n = *accesses
		}
		bt = spec.GenerateBlocks(*seed, n)
		if spec.Scientific {
			opts = append(opts, stems.WithScientificLookahead())
		}
		header = fmt.Sprintf("workload %s (%s): %d accesses, seed %d", spec.Name, spec.Class, n, *seed)
	}
	opts = append(opts, stems.WithBlockSourceFunc(bt.Blocks))

	grid := make([]*stems.Runner, len(kinds))
	for i, kind := range kinds {
		r, err := stems.New(append([]stems.Option{stems.WithPredictor(kind)}, opts...)...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		grid[i] = r
	}

	parallelism := 0 // GOMAXPROCS
	if *serial {
		parallelism = 1
	}
	results, err := stems.Sweep(context.Background(), grid, stems.WithParallelism(parallelism))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s\n\n", header)
	// Predictors() orders the baselines first, so the speedup references
	// are available by the time the streamed predictors print.
	var noneCycles, strideCycles uint64
	for i, kind := range kinds {
		res := results[i]
		switch kind {
		case "none":
			noneCycles = res.Cycles
		case "stride":
			strideCycles = res.Cycles
		}
		line := fmt.Sprintf("%-13s misses=%8d covered=%5.1f%% overpred=%6.1f%% cycles=%12d",
			kind, res.BaselineMisses(), 100*res.Coverage(), 100*res.OverpredictionRate(), res.Cycles)
		if strideCycles > 0 && kind != "none" && kind != "stride" {
			line += fmt.Sprintf("  speedup-vs-stride=%+6.1f%%",
				100*(float64(strideCycles)/float64(res.Cycles)-1))
		} else if noneCycles > 0 && kind == "stride" {
			line += fmt.Sprintf("  speedup-vs-none  =%+6.1f%%",
				100*(float64(noneCycles)/float64(res.Cycles)-1))
		}
		fmt.Println(line)
	}
}
