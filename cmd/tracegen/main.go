// Command tracegen generates a workload's access trace and writes it to a
// binary trace file (or summarizes it), decoupling trace generation from
// simulation the way the paper's methodology does (§5.1: traces are
// collected once with in-order functional simulation, then analyzed under
// every predictor).
//
//	tracegen -workload DB2 -o db2.trace
//	tracegen -workload DB2 -o db2.trace -format v2
//	tracegen -workload em3d -stats
//	stemsim -trace db2.trace -prefetcher stems
//
// -format selects the on-disk encoding: v1 is the fixed-width 24
// bytes/record legacy format, v2 (the default) the columnar frame format
// with delta-coded addresses and PC dictionaries. -stats reports the
// record count, distinct PCs, and the encoded bytes/access under both
// formats, so the v2 compression is observable per workload.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"stems"
	"stems/internal/mem"
)

// formatVersion maps the -format flag to a trace format version.
func formatVersion(s string) (int, bool) {
	switch s {
	case "v1", "1":
		return 1, true
	case "v2", "2":
		return 2, true
	}
	return 0, false
}

func main() {
	var (
		wl       = flag.String("workload", "DB2", "workload name: "+strings.Join(stems.WorkloadNames(), ", "))
		out      = flag.String("o", "", "output trace file (empty = stats only)")
		format   = flag.String("format", "v2", "trace format: v1 (fixed records) or v2 (columnar frames)")
		seed     = flag.Int64("seed", 1, "workload seed")
		accesses = flag.Int("accesses", 0, "trace length (0 = workload default)")
		stats    = flag.Bool("stats", false, "print trace statistics")
	)
	flag.Parse()

	version, ok := formatVersion(*format)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown trace format %q (want v1 or v2)\n", *format)
		os.Exit(2)
	}
	spec, err := stems.WorkloadByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	n := spec.DefaultAccesses
	if *accesses > 0 {
		n = *accesses
	}
	accs := spec.Generate(*seed, n)

	// When a file is written, its byte count doubles as the size sample
	// for that format in -stats, sparing a redundant encode.
	writtenVersion, writtenBytes := 0, int64(0)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cw := &countWriter{w: f}
		w, err := stems.NewTraceWriterVersion(cw, version)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := w.WriteAll(accs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d accesses to %s (%s, %d bytes, %.2f bytes/access)\n",
			w.Count(), *out, *format, cw.n, float64(cw.n)/float64(len(accs)))
		writtenVersion, writtenBytes = version, cw.n
	}

	if *stats || *out == "" {
		printStats(spec, accs, writtenVersion, writtenBytes)
	}
}

// countWriter counts bytes passing through to w (which may be nil for
// size-only encoding).
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	if c.w == nil {
		return len(p), nil
	}
	return c.w.Write(p)
}

// encodedSize returns the byte size of accs under the given format.
func encodedSize(accs []stems.Access, version int) int64 {
	cw := &countWriter{}
	w, err := stems.NewTraceWriterVersion(cw, version)
	if err != nil {
		panic(err)
	}
	if err := w.WriteAll(accs); err != nil {
		panic(err)
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return cw.n
}

func printStats(spec stems.Workload, accs []stems.Access, writtenVersion int, writtenBytes int64) {
	var writes, deps uint64
	regions := map[mem.Addr]bool{}
	blocks := map[mem.Addr]bool{}
	pcs := map[uint64]bool{}
	var think uint64
	for _, a := range accs {
		if a.Write {
			writes++
		}
		if a.Dep {
			deps++
		}
		regions[a.Addr.Region()] = true
		blocks[a.Addr.Block()] = true
		pcs[a.PC] = true
		think += uint64(a.Think)
	}
	n := float64(len(accs))
	sizeOf := func(version int) int64 {
		if version == writtenVersion {
			return writtenBytes
		}
		return encodedSize(accs, version)
	}
	v1, v2 := sizeOf(1), sizeOf(2)
	fmt.Printf("workload:         %s (%s)\n", spec.Name, spec.Class)
	fmt.Printf("accesses:         %d\n", len(accs))
	fmt.Printf("writes:           %.1f%%\n", 100*float64(writes)/n)
	fmt.Printf("dependent:        %.1f%%\n", 100*float64(deps)/n)
	fmt.Printf("distinct blocks:  %d (%.1f MB footprint)\n",
		len(blocks), float64(len(blocks))*mem.BlockSize/(1<<20))
	fmt.Printf("distinct regions: %d\n", len(regions))
	fmt.Printf("distinct PCs:     %d\n", len(pcs))
	fmt.Printf("mean think:       %.1f cycles/access\n", float64(think)/n)
	fmt.Printf("v1 size:          %d bytes (%.2f bytes/access)\n", v1, float64(v1)/n)
	fmt.Printf("v2 size:          %d bytes (%.2f bytes/access, %.1fx smaller)\n",
		v2, float64(v2)/n, float64(v1)/float64(v2))
}
