// Command tracegen generates a workload's access trace and writes it to a
// binary trace file (or summarizes it), decoupling trace generation from
// simulation the way the paper's methodology does (§5.1: traces are
// collected once with in-order functional simulation, then analyzed under
// every predictor).
//
//	tracegen -workload DB2 -o db2.trace
//	tracegen -workload em3d -stats
//	stemsim -trace db2.trace -prefetcher stems
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stems"
	"stems/internal/mem"
)

func main() {
	var (
		wl       = flag.String("workload", "DB2", "workload name: "+strings.Join(stems.WorkloadNames(), ", "))
		out      = flag.String("o", "", "output trace file (empty = stats only)")
		seed     = flag.Int64("seed", 1, "workload seed")
		accesses = flag.Int("accesses", 0, "trace length (0 = workload default)")
		stats    = flag.Bool("stats", false, "print trace statistics")
	)
	flag.Parse()

	spec, err := stems.WorkloadByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	n := spec.DefaultAccesses
	if *accesses > 0 {
		n = *accesses
	}
	accs := spec.Generate(*seed, n)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := stems.NewTraceWriter(f)
		if err := w.WriteAll(accs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d accesses to %s\n", w.Count(), *out)
	}

	if *stats || *out == "" {
		printStats(spec, accs)
	}
}

func printStats(spec stems.Workload, accs []stems.Access) {
	var writes, deps uint64
	regions := map[mem.Addr]bool{}
	blocks := map[mem.Addr]bool{}
	pcs := map[uint64]bool{}
	var think uint64
	for _, a := range accs {
		if a.Write {
			writes++
		}
		if a.Dep {
			deps++
		}
		regions[a.Addr.Region()] = true
		blocks[a.Addr.Block()] = true
		pcs[a.PC] = true
		think += uint64(a.Think)
	}
	n := float64(len(accs))
	fmt.Printf("workload:         %s (%s)\n", spec.Name, spec.Class)
	fmt.Printf("accesses:         %d\n", len(accs))
	fmt.Printf("writes:           %.1f%%\n", 100*float64(writes)/n)
	fmt.Printf("dependent:        %.1f%%\n", 100*float64(deps)/n)
	fmt.Printf("distinct blocks:  %d (%.1f MB footprint)\n",
		len(blocks), float64(len(blocks))*mem.BlockSize/(1<<20))
	fmt.Printf("distinct regions: %d\n", len(regions))
	fmt.Printf("distinct PCs:     %d\n", len(pcs))
	fmt.Printf("mean think:       %.1f cycles/access\n", float64(think)/n)
}
