package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"stems"
	"stems/internal/server"
	"stems/internal/service"
)

// TestGridNDJSONMatchesLocal pins that `sweep -grid URL -json` emits
// byte-identical NDJSON to the local `-json` path for the same sweep:
// same records, same field bytes, same (sweep) order.
func TestGridNDJSONMatchesLocal(t *testing.T) {
	points := []stems.Value{stems.IntValue(2), stems.IntValue(4), stems.IntValue(8)}
	labels := []string{"2", "4", "8"}
	fixed := map[string]stems.Value{"scientific": stems.BoolValue(false)}

	// Local path: the runners cmd/sweep builds, encoded in sweep order.
	arena := stems.NewArena()
	runners := make([]*stems.Runner, len(points))
	for i, v := range points {
		r, err := stems.FromSpec(stems.Spec{
			Predictor: "stems", Workload: "em3d", Seed: 1, Accesses: 10_000,
			Label: labels[i],
			Knobs: map[string]stems.Value{
				"scientific":      stems.BoolValue(false),
				"stems.lookahead": v,
			},
		}, stems.WithSharedTrace(arena))
		if err != nil {
			t.Fatal(err)
		}
		runners[i] = r
	}
	results, err := stems.Sweep(context.Background(), runners)
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	encoder := json.NewEncoder(&local)
	for i, res := range results {
		if err := encoder.Encode(stems.EncodeResult(labels[i], res)); err != nil {
			t.Fatal(err)
		}
	}

	// Grid path: the same sweep submitted as one server-side grid job.
	svc, err := service.New(service.Config{Workers: 2, QueueBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(svc))
	t.Cleanup(func() {
		svc.Drain()
		ts.Close()
	})
	spec := gridSpec("stems", "em3d", 1, 10_000, fixed, "stems.lookahead", points)
	var remote bytes.Buffer
	if err := runGrid(context.Background(), stems.NewClient(ts.URL, nil), spec, "lookahead", true, &remote); err != nil {
		t.Fatal(err)
	}

	if local.Len() == 0 {
		t.Fatal("local path produced no records")
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Errorf("grid NDJSON differs from local path\nlocal:\n%s\ngrid:\n%s", local.String(), remote.String())
	}
}

// TestGridTable pins the non-JSON grid rendering: one row per point,
// labeled with the canonical axis value.
func TestGridTable(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 2, QueueBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(svc))
	t.Cleanup(func() {
		svc.Drain()
		ts.Close()
	})
	spec := gridSpec("stems", "em3d", 1, 10_000, nil, "stems.pst_entries",
		[]stems.Value{stems.IntValue(1024), stems.IntValue(4096)})
	var out bytes.Buffer
	if err := runGrid(context.Background(), stems.NewClient(ts.URL, nil), spec, "pst", false, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"stems stems.pst_entries sweep on em3d", "pst", "covered", "\n1024", "\n4096"} {
		if !strings.Contains(got, want) {
			t.Errorf("table output missing %q:\n%s", want, got)
		}
	}
}
