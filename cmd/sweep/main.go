// Command sweep runs one-dimensional parameter sweeps of the STeMS design
// knobs DESIGN.md calls out, printing coverage, overprediction, and cycles
// per setting — the interactive counterpart of the Benchmark Ablation
// suite. Points run in parallel through stems.Sweep; results print in
// sweep order regardless of which finishes first.
//
//	sweep -param rmob -workload em3d
//	sweep -param lookahead -workload Zeus
//	sweep -param pst -workload Qry2
//	sweep -param recon -workload DB2
//	sweep -param queues -workload DB2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"stems"
)

// sweepPoint is one setting of the swept parameter.
type sweepPoint struct {
	label string
	mod   func(*stems.Options)
}

var sweeps = map[string][]sweepPoint{
	"rmob": {
		{"4K", func(o *stems.Options) { o.STeMS.RMOBEntries = 4 << 10 }},
		{"16K", func(o *stems.Options) { o.STeMS.RMOBEntries = 16 << 10 }},
		{"64K", func(o *stems.Options) { o.STeMS.RMOBEntries = 64 << 10 }},
		{"128K", func(o *stems.Options) { o.STeMS.RMOBEntries = 128 << 10 }},
		{"256K", func(o *stems.Options) { o.STeMS.RMOBEntries = 256 << 10 }},
	},
	"pst": {
		{"1K", func(o *stems.Options) { o.STeMS.PSTEntries = 1 << 10 }},
		{"4K", func(o *stems.Options) { o.STeMS.PSTEntries = 4 << 10 }},
		{"16K", func(o *stems.Options) { o.STeMS.PSTEntries = 16 << 10 }},
		{"64K", func(o *stems.Options) { o.STeMS.PSTEntries = 64 << 10 }},
	},
	// The lookahead points clear the scientific flag so the swept value
	// reaches the engine instead of the §4.3 class default of 12.
	"lookahead": {
		{"2", func(o *stems.Options) { o.Scientific = false; o.STeMS.Lookahead = 2 }},
		{"4", func(o *stems.Options) { o.Scientific = false; o.STeMS.Lookahead = 4 }},
		{"8", func(o *stems.Options) { o.Scientific = false; o.STeMS.Lookahead = 8 }},
		{"12", func(o *stems.Options) { o.Scientific = false; o.STeMS.Lookahead = 12 }},
		{"16", func(o *stems.Options) { o.Scientific = false; o.STeMS.Lookahead = 16 }},
	},
	"recon": {
		{"0", func(o *stems.Options) { o.STeMS.ReconSearch = 0 }},
		{"1", func(o *stems.Options) { o.STeMS.ReconSearch = 1 }},
		{"2", func(o *stems.Options) { o.STeMS.ReconSearch = 2 }},
		{"4", func(o *stems.Options) { o.STeMS.ReconSearch = 4 }},
	},
	"queues": {
		{"1", func(o *stems.Options) { o.STeMS.StreamQueues = 1 }},
		{"2", func(o *stems.Options) { o.STeMS.StreamQueues = 2 }},
		{"4", func(o *stems.Options) { o.STeMS.StreamQueues = 4 }},
		{"8", func(o *stems.Options) { o.STeMS.StreamQueues = 8 }},
		{"16", func(o *stems.Options) { o.STeMS.StreamQueues = 16 }},
	},
	"svb": {
		{"16", func(o *stems.Options) { o.STeMS.SVBEntries = 16 }},
		{"32", func(o *stems.Options) { o.STeMS.SVBEntries = 32 }},
		{"64", func(o *stems.Options) { o.STeMS.SVBEntries = 64 }},
		{"128", func(o *stems.Options) { o.STeMS.SVBEntries = 128 }},
	},
}

func main() {
	var (
		param       = flag.String("param", "rmob", "parameter to sweep: rmob, pst, lookahead, recon, queues, svb")
		wl          = flag.String("workload", "DB2", "workload: "+strings.Join(stems.WorkloadNames(), ", "))
		seed        = flag.Int64("seed", 1, "workload seed")
		accesses    = flag.Int("accesses", 0, "trace length (0 = workload default)")
		parallelism = flag.Int("parallelism", 0, "concurrent sweep points (0 = GOMAXPROCS, 1 = serial)")
		jsonOut     = flag.Bool("json", false, "emit results as JSON lines in the stemsd service encoding (diffable against /v1/jobs results)")
	)
	flag.Parse()

	points, ok := sweeps[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown parameter %q\n", *param)
		os.Exit(2)
	}
	spec, err := stems.WorkloadByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	n := spec.DefaultAccesses
	if *accesses > 0 {
		n = *accesses
	}

	// Every sweep point shares one trace arena: the first point to run
	// generates the trace, the rest replay the same read-only slice.
	arena := stems.NewArena()

	grid := make([]*stems.Runner, len(points))
	for i, pt := range points {
		opts := []stems.Option{
			stems.WithWorkload(spec.Name),
			stems.WithSharedTrace(arena),
			stems.WithSeed(*seed),
			stems.WithAccesses(n),
			stems.WithPredictor("stems"),
			stems.WithSystem(stems.ScaledSystem()),
			stems.WithConfigure(pt.mod),
			stems.WithLabel(pt.label),
		}
		r, err := stems.New(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		grid[i] = r
	}

	results, err := stems.Sweep(context.Background(), grid,
		stems.WithParallelism(*parallelism))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		// One canonical result document per line — the same encoding (and
		// the same bytes, stems.EncodeResult) the stemsd API returns for
		// the equivalent job, so CLI and service output diff cleanly.
		out := json.NewEncoder(os.Stdout)
		for i, pt := range points {
			if err := out.Encode(stems.EncodeResult(pt.label, results[i])); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("STeMS %s sweep on %s (%d accesses)\n\n", *param, spec.Name, n)
	fmt.Printf("%-8s %9s %10s %12s %12s\n", *param, "covered", "overpred", "cycles", "recon-drop")
	for i, pt := range points {
		res := results[i]
		fmt.Printf("%-8s %8.1f%% %9.1f%% %12d %11.1f%%\n",
			pt.label, 100*res.Coverage(), 100*res.OverpredictionRate(), res.Cycles,
			100*res.ReconDropFraction())
	}
}
