// Command sweep runs one-dimensional parameter sweeps over any
// registered configuration knob, printing coverage, overprediction, and
// cycles per setting — the interactive counterpart of the Benchmark
// Ablation suite. The swept parameter is a knob name from the typed
// registry ("stemsim -predictors -v" prints the full table), with short
// aliases for the STeMS knobs DESIGN.md calls out; points run through
// stems.Sweep and print in sweep order regardless of which finishes
// first. Because every point of a knob sweep replays the same trace,
// the whole grid executes by default as one fused lockstep set over a
// single cursor — the trace is traversed once for the sweep, not once
// per point (-fuse=false restores per-point replay).
//
//	sweep -param rmob -workload em3d
//	sweep -param stems.lookahead -values 2,4,8,12,16 -workload Zeus
//	sweep -param sms.pht_entries -values 1024,16384 -predictor sms
//	sweep -param recon -workload DB2 -set stems.svb_entries=128
//
// With -json, one canonical NDJSON record is flushed per point as soon
// as it (and every point before it) has finished, so piping into head
// or a live dashboard sees records immediately, in sweep order.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"stems"
)

// aliases map the historical short sweep names to registry knobs and
// their default value lists. The lookahead alias also pins the
// scientific flag off, so the swept value reaches the engine instead of
// the §4.3 workload-class default of 12.
var aliases = map[string]struct {
	knob   string
	values string
	pins   map[string]stems.Value
}{
	"rmob":      {knob: "stems.rmob_entries", values: "4096,16384,65536,131072,262144"},
	"pst":       {knob: "stems.pst_entries", values: "1024,4096,16384,65536"},
	"lookahead": {knob: "stems.lookahead", values: "2,4,8,12,16", pins: map[string]stems.Value{"scientific": stems.BoolValue(false)}},
	"recon":     {knob: "stems.recon_search", values: "0,1,2,4"},
	"queues":    {knob: "stems.stream_queues", values: "1,2,4,8,16"},
	"svb":       {knob: "stems.svb_entries", values: "16,32,64,128"},
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(2)
}

func main() {
	var (
		param       = flag.String("param", "rmob", "knob to sweep: a registry name (see stemsim -predictors -v) or an alias: rmob, pst, lookahead, recon, queues, svb")
		values      = flag.String("values", "", "comma-separated values for -param (defaults to the alias's list; required for non-alias knobs)")
		predictor   = flag.String("predictor", "stems", "predictor to sweep: "+strings.Join(stems.Predictors(), ", "))
		wl          = flag.String("workload", "DB2", "workload: "+strings.Join(stems.WorkloadNames(), ", "))
		seed        = flag.Int64("seed", 1, "workload seed")
		accesses    = flag.Int("accesses", 0, "trace length (0 = workload default)")
		parallelism = flag.Int("parallelism", 0, "concurrent sweep points (0 = GOMAXPROCS, 1 = serial)")
		fuse        = flag.Bool("fuse", true, "run same-trace points as one fused lockstep set over a single cursor (one trace traversal for the whole sweep); -fuse=false replays the trace per point, which lowers time-to-first-record with -json")
		jsonOut     = flag.Bool("json", false, "emit results as NDJSON in the stemsd service encoding (diffable against /v1/jobs results), flushed per record")
	)
	base := map[string]stems.Value{}
	flag.Func("set", "fixed knob override applied to every point, as name=value (repeatable)", func(s string) error {
		name, v, err := stems.ParseKnobAssignment(s)
		if err != nil {
			return err
		}
		base[name] = v
		return nil
	})
	flag.Parse()

	knobName, valueList := *param, *values
	var pins map[string]stems.Value
	if a, ok := aliases[*param]; ok {
		knobName = a.knob
		pins = a.pins
		if valueList == "" {
			valueList = a.values
		}
	}
	if _, ok := stems.KnobByName(knobName); !ok {
		fatal(fmt.Sprintf("unknown knob %q (list them with stemsim -predictors -v)", knobName))
	}
	if valueList == "" {
		fatal(fmt.Sprintf("knob %q has no default value list: pass -values v1,v2,...", knobName))
	}

	labels := strings.Split(valueList, ",")
	points := make([]stems.Value, len(labels))
	for i, text := range labels {
		labels[i] = strings.TrimSpace(text)
		v, err := stems.ParseValue(labels[i])
		if err != nil {
			fatal(err)
		}
		points[i] = v
	}

	// Every sweep point shares one trace arena: the first point to run
	// generates the trace, the rest replay the same read-only slice.
	arena := stems.NewArena()

	grid := make([]*stems.Runner, len(points))
	for i, v := range points {
		knobs := make(map[string]stems.Value, len(base)+len(pins)+1)
		for name, bv := range base {
			knobs[name] = bv
		}
		for name, pv := range pins {
			if _, overridden := knobs[name]; !overridden {
				knobs[name] = pv
			}
		}
		knobs[knobName] = v
		r, err := stems.FromSpec(stems.Spec{
			Predictor: *predictor,
			Workload:  *wl,
			Seed:      *seed,
			Accesses:  *accesses,
			Label:     labels[i],
			Knobs:     knobs,
		}, stems.WithSharedTrace(arena))
		if err != nil {
			fatal(err)
		}
		grid[i] = r
	}

	var sweepOpts []stems.SweepOption
	sweepOpts = append(sweepOpts, stems.WithParallelism(*parallelism), stems.WithFusion(*fuse))

	// In JSON mode records stream: each completed run is staged by grid
	// index and the longest finished prefix is encoded and flushed
	// immediately, so output order is deterministic (sweep order) while
	// latency to the first record is one run, not the whole grid.
	var (
		out     *bufio.Writer
		encoder *json.Encoder
		staged  []*stems.Result
		next    int
	)
	if *jsonOut {
		out = bufio.NewWriter(os.Stdout)
		encoder = json.NewEncoder(out)
		staged = make([]*stems.Result, len(grid))
		sweepOpts = append(sweepOpts, stems.WithRunResult(func(i int, res stems.Result) {
			staged[i] = &res
			for next < len(staged) && staged[next] != nil {
				if err := encoder.Encode(stems.EncodeResult(labels[next], *staged[next])); err != nil {
					fatal(err)
				}
				staged[next] = nil
				next++
			}
			if err := out.Flush(); err != nil {
				fatal(err)
			}
		}))
	}

	results, err := stems.Sweep(context.Background(), grid, sweepOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonOut {
		return // every record was flushed by the WithRunResult hook
	}

	n := *accesses
	if spec, err := stems.WorkloadByName(*wl); err == nil && n == 0 {
		n = spec.DefaultAccesses
	}
	fmt.Printf("%s %s sweep on %s (%d accesses)\n\n", *predictor, knobName, *wl, n)
	fmt.Printf("%-8s %9s %10s %12s %12s\n", *param, "covered", "overpred", "cycles", "recon-drop")
	for i, label := range labels {
		res := results[i]
		fmt.Printf("%-8s %8.1f%% %9.1f%% %12d %11.1f%%\n",
			label, 100*res.Coverage(), 100*res.OverpredictionRate(), res.Cycles,
			100*res.ReconDropFraction())
	}
}
