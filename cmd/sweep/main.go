// Command sweep runs one-dimensional parameter sweeps of the STeMS design
// knobs DESIGN.md calls out, printing coverage, overprediction, and cycles
// per setting — the interactive counterpart of the Benchmark Ablation
// suite.
//
//	sweep -param rmob -workload em3d
//	sweep -param lookahead -workload Zeus
//	sweep -param pst -workload Qry2
//	sweep -param recon -workload DB2
//	sweep -param queues -workload DB2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stems/internal/config"
	"stems/internal/core"
	"stems/internal/sim"
	"stems/internal/stream"
	"stems/internal/trace"
	"stems/internal/workload"
)

// sweepPoint is one setting of the swept parameter.
type sweepPoint struct {
	label string
	mod   func(*config.STeMS)
}

var sweeps = map[string][]sweepPoint{
	"rmob": {
		{"4K", func(c *config.STeMS) { c.RMOBEntries = 4 << 10 }},
		{"16K", func(c *config.STeMS) { c.RMOBEntries = 16 << 10 }},
		{"64K", func(c *config.STeMS) { c.RMOBEntries = 64 << 10 }},
		{"128K", func(c *config.STeMS) { c.RMOBEntries = 128 << 10 }},
		{"256K", func(c *config.STeMS) { c.RMOBEntries = 256 << 10 }},
	},
	"pst": {
		{"1K", func(c *config.STeMS) { c.PSTEntries = 1 << 10 }},
		{"4K", func(c *config.STeMS) { c.PSTEntries = 4 << 10 }},
		{"16K", func(c *config.STeMS) { c.PSTEntries = 16 << 10 }},
		{"64K", func(c *config.STeMS) { c.PSTEntries = 64 << 10 }},
	},
	"lookahead": {
		{"2", func(c *config.STeMS) { c.Lookahead = 2 }},
		{"4", func(c *config.STeMS) { c.Lookahead = 4 }},
		{"8", func(c *config.STeMS) { c.Lookahead = 8 }},
		{"12", func(c *config.STeMS) { c.Lookahead = 12 }},
		{"16", func(c *config.STeMS) { c.Lookahead = 16 }},
	},
	"recon": {
		{"0", func(c *config.STeMS) { c.ReconSearch = 0 }},
		{"1", func(c *config.STeMS) { c.ReconSearch = 1 }},
		{"2", func(c *config.STeMS) { c.ReconSearch = 2 }},
		{"4", func(c *config.STeMS) { c.ReconSearch = 4 }},
	},
	"queues": {
		{"1", func(c *config.STeMS) { c.StreamQueues = 1 }},
		{"2", func(c *config.STeMS) { c.StreamQueues = 2 }},
		{"4", func(c *config.STeMS) { c.StreamQueues = 4 }},
		{"8", func(c *config.STeMS) { c.StreamQueues = 8 }},
		{"16", func(c *config.STeMS) { c.StreamQueues = 16 }},
	},
	"svb": {
		{"16", func(c *config.STeMS) { c.SVBEntries = 16 }},
		{"32", func(c *config.STeMS) { c.SVBEntries = 32 }},
		{"64", func(c *config.STeMS) { c.SVBEntries = 64 }},
		{"128", func(c *config.STeMS) { c.SVBEntries = 128 }},
	},
}

func main() {
	var (
		param    = flag.String("param", "rmob", "parameter to sweep: rmob, pst, lookahead, recon, queues, svb")
		wl       = flag.String("workload", "DB2", "workload: "+strings.Join(workload.Names(), ", "))
		seed     = flag.Int64("seed", 1, "workload seed")
		accesses = flag.Int("accesses", 0, "trace length (0 = workload default)")
	)
	flag.Parse()

	points, ok := sweeps[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown parameter %q\n", *param)
		os.Exit(2)
	}
	spec, err := workload.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	n := spec.DefaultAccesses
	if *accesses > 0 {
		n = *accesses
	}
	accs := spec.Generate(*seed, n)

	fmt.Printf("STeMS %s sweep on %s (%d accesses)\n\n", *param, spec.Name, n)
	fmt.Printf("%-8s %9s %10s %12s %12s\n", *param, "covered", "overpred", "cycles", "recon-drop")
	for _, pt := range points {
		sc := config.DefaultSTeMS()
		if spec.Scientific {
			sc.Lookahead = 12
		}
		pt.mod(&sc)
		m := sim.NewMachine(config.ScaledSystem(), sim.Nop{})
		eng := m.AttachEngine(stream.Config{
			Queues: sc.StreamQueues, Lookahead: sc.Lookahead, SVBEntries: sc.SVBEntries,
		})
		st := core.New(sc, eng)
		m.SetPrefetcher(st)
		res := m.Run(trace.NewSliceSource(accs))
		rs := st.ReconStats()
		dropFrac := 0.0
		if total := rs.PlacedExact + rs.PlacedNear + rs.Dropped; total > 0 {
			dropFrac = float64(rs.Dropped) / float64(total)
		}
		fmt.Printf("%-8s %8.1f%% %9.1f%% %12d %11.1f%%\n",
			pt.label, 100*res.Coverage(), 100*res.OverpredictionRate(), res.Cycles, 100*dropFrac)
	}
}
