// Command sweep runs one-dimensional parameter sweeps over any
// registered configuration knob, printing coverage, overprediction, and
// cycles per setting — the interactive counterpart of the Benchmark
// Ablation suite. The swept parameter is a knob name from the typed
// registry ("stemsim -predictors -v" prints the full table), with short
// aliases for the STeMS knobs DESIGN.md calls out; points run through
// stems.Sweep and print in sweep order regardless of which finishes
// first. Because every point of a knob sweep replays the same trace,
// the whole grid executes by default as one fused lockstep set over a
// single cursor — the trace is traversed once for the sweep, not once
// per point (-fuse=false restores per-point replay).
//
//	sweep -param rmob -workload em3d
//	sweep -param stems.lookahead -values 2,4,8,12,16 -workload Zeus
//	sweep -param sms.pht_entries -values 1024,16384 -predictor sms
//	sweep -param recon -workload DB2 -set stems.svb_entries=128
//
// With -json, one canonical NDJSON record is flushed per point as soon
// as it (and every point before it) has finished, so piping into head
// or a live dashboard sees records immediately, in sweep order.
//
// With -grid URL the sweep does not run locally at all: it is submitted
// to the stemsd daemon at URL as one server-side grid job (a GridSpec
// with a single axis), letting the daemon's cache dedupe repeated cells
// and its workers do the computing. Output is identical to the local
// path — the same NDJSON records with -json, the same table without.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"stems"
)

// aliases map the historical short sweep names to registry knobs and
// their default value lists. The lookahead alias also pins the
// scientific flag off, so the swept value reaches the engine instead of
// the §4.3 workload-class default of 12.
var aliases = map[string]struct {
	knob   string
	values string
	pins   map[string]stems.Value
}{
	"rmob":      {knob: "stems.rmob_entries", values: "4096,16384,65536,131072,262144"},
	"pst":       {knob: "stems.pst_entries", values: "1024,4096,16384,65536"},
	"lookahead": {knob: "stems.lookahead", values: "2,4,8,12,16", pins: map[string]stems.Value{"scientific": stems.BoolValue(false)}},
	"recon":     {knob: "stems.recon_search", values: "0,1,2,4"},
	"queues":    {knob: "stems.stream_queues", values: "1,2,4,8,16"},
	"svb":       {knob: "stems.svb_entries", values: "16,32,64,128"},
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(2)
}

func main() {
	var (
		param       = flag.String("param", "rmob", "knob to sweep: a registry name (see stemsim -predictors -v) or an alias: rmob, pst, lookahead, recon, queues, svb")
		values      = flag.String("values", "", "comma-separated values for -param (defaults to the alias's list; required for non-alias knobs)")
		predictor   = flag.String("predictor", "stems", "predictor to sweep: "+strings.Join(stems.Predictors(), ", "))
		wl          = flag.String("workload", "DB2", "workload: "+strings.Join(stems.WorkloadNames(), ", "))
		seed        = flag.Int64("seed", 1, "workload seed")
		accesses    = flag.Int("accesses", 0, "trace length (0 = workload default)")
		parallelism = flag.Int("parallelism", 0, "concurrent sweep points (0 = GOMAXPROCS, 1 = serial)")
		fuse        = flag.Bool("fuse", true, "run same-trace points as one fused lockstep set over a single cursor (one trace traversal for the whole sweep); -fuse=false replays the trace per point, which lowers time-to-first-record with -json")
		jsonOut     = flag.Bool("json", false, "emit results as NDJSON in the stemsd service encoding (diffable against /v1/jobs results), flushed per record")
		gridURL     = flag.String("grid", "", "submit the sweep as one server-side grid job to the stemsd daemon at this base URL instead of running locally")
	)
	base := map[string]stems.Value{}
	flag.Func("set", "fixed knob override applied to every point, as name=value (repeatable)", func(s string) error {
		name, v, err := stems.ParseKnobAssignment(s)
		if err != nil {
			return err
		}
		base[name] = v
		return nil
	})
	flag.Parse()

	knobName, valueList := *param, *values
	var pins map[string]stems.Value
	if a, ok := aliases[*param]; ok {
		knobName = a.knob
		pins = a.pins
		if valueList == "" {
			valueList = a.values
		}
	}
	if _, ok := stems.KnobByName(knobName); !ok {
		fatal(fmt.Sprintf("unknown knob %q (list them with stemsim -predictors -v)", knobName))
	}
	if valueList == "" {
		fatal(fmt.Sprintf("knob %q has no default value list: pass -values v1,v2,...", knobName))
	}

	labels := strings.Split(valueList, ",")
	points := make([]stems.Value, len(labels))
	for i, text := range labels {
		labels[i] = strings.TrimSpace(text)
		v, err := stems.ParseValue(labels[i])
		if err != nil {
			fatal(err)
		}
		points[i] = v
	}

	// Fixed knobs shared by every point: -set overrides, then alias pins
	// where not already overridden.
	fixed := make(map[string]stems.Value, len(base)+len(pins))
	for name, bv := range base {
		fixed[name] = bv
	}
	for name, pv := range pins {
		if _, overridden := fixed[name]; !overridden {
			fixed[name] = pv
		}
	}

	if *gridURL != "" {
		spec := gridSpec(*predictor, *wl, *seed, *accesses, fixed, knobName, points)
		if err := runGrid(context.Background(), stems.NewClient(*gridURL, nil), spec, *param, *jsonOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Every sweep point shares one trace arena: the first point to run
	// generates the trace, the rest replay the same read-only slice.
	arena := stems.NewArena()

	grid := make([]*stems.Runner, len(points))
	for i, v := range points {
		knobs := make(map[string]stems.Value, len(fixed)+1)
		for name, fv := range fixed {
			knobs[name] = fv
		}
		knobs[knobName] = v
		r, err := stems.FromSpec(stems.Spec{
			Predictor: *predictor,
			Workload:  *wl,
			Seed:      *seed,
			Accesses:  *accesses,
			Label:     labels[i],
			Knobs:     knobs,
		}, stems.WithSharedTrace(arena))
		if err != nil {
			fatal(err)
		}
		grid[i] = r
	}

	var sweepOpts []stems.SweepOption
	sweepOpts = append(sweepOpts, stems.WithParallelism(*parallelism), stems.WithFusion(*fuse))

	// In JSON mode records stream: each completed run is staged by grid
	// index and the longest finished prefix is encoded and flushed
	// immediately, so output order is deterministic (sweep order) while
	// latency to the first record is one run, not the whole grid.
	var (
		out     *bufio.Writer
		encoder *json.Encoder
		staged  []*stems.Result
		next    int
	)
	if *jsonOut {
		out = bufio.NewWriter(os.Stdout)
		encoder = json.NewEncoder(out)
		staged = make([]*stems.Result, len(grid))
		sweepOpts = append(sweepOpts, stems.WithRunResult(func(i int, res stems.Result) {
			staged[i] = &res
			for next < len(staged) && staged[next] != nil {
				if err := encoder.Encode(stems.EncodeResult(labels[next], *staged[next])); err != nil {
					fatal(err)
				}
				staged[next] = nil
				next++
			}
			if err := out.Flush(); err != nil {
				fatal(err)
			}
		}))
	}

	results, err := stems.Sweep(context.Background(), grid, sweepOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonOut {
		return // every record was flushed by the WithRunResult hook
	}

	n := *accesses
	if spec, err := stems.WorkloadByName(*wl); err == nil && n == 0 {
		n = spec.DefaultAccesses
	}
	fmt.Printf("%s %s sweep on %s (%d accesses)\n\n", *predictor, knobName, *wl, n)
	fmt.Printf("%-8s %9s %10s %12s %12s\n", *param, "covered", "overpred", "cycles", "recon-drop")
	for i, label := range labels {
		res := results[i]
		fmt.Printf("%-8s %8.1f%% %9.1f%% %12d %11.1f%%\n",
			label, 100*res.Coverage(), 100*res.OverpredictionRate(), res.Cycles,
			100*res.ReconDropFraction())
	}
}

// gridSpec builds the one-axis server-side grid equivalent of the local
// sweep: the shared configuration as the base, the swept knob as the
// sole axis.
func gridSpec(predictor, workload string, seed int64, accesses int, fixed map[string]stems.Value, knob string, points []stems.Value) stems.GridSpec {
	return stems.GridSpec{
		Base: stems.RunSpec{
			Predictor: predictor,
			Workload:  workload,
			Seed:      seed,
			Accesses:  accesses,
			Knobs:     fixed,
		},
		Axes: []stems.GridAxis{{Knob: knob, Values: points}},
	}
}

// runGrid submits the sweep to a daemon as one grid job and renders it
// exactly like the local path: NDJSON records flushed to w in run order
// as the daemon reports them, or the summary table after completion.
func runGrid(ctx context.Context, c *stems.Client, spec stems.GridSpec, param string, jsonOut bool, w io.Writer) error {
	st, err := c.SubmitGrid(ctx, spec)
	if err != nil {
		return err
	}
	if jsonOut {
		out := bufio.NewWriter(w)
		encoder := json.NewEncoder(out)
		var encErr error
		final, err := c.WatchRuns(ctx, st.ID, nil, func(_ int, res stems.RunResult) {
			if encErr != nil {
				return
			}
			if encErr = encoder.Encode(res); encErr == nil {
				encErr = out.Flush()
			}
		})
		if err != nil {
			return err
		}
		if encErr != nil {
			return encErr
		}
		return jobErr(final)
	}

	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		return err
	}
	if err := jobErr(final); err != nil {
		return err
	}
	results, err := final.DecodedResults()
	if err != nil {
		return err
	}
	var n uint64
	if len(results) > 0 {
		n = results[0].Accesses
	}
	fmt.Fprintf(w, "%s %s sweep on %s (%d accesses, via %s)\n\n",
		spec.Base.Predictor, spec.Axes[0].Knob, spec.Base.Workload, n, c.BaseURL())
	fmt.Fprintf(w, "%-8s %9s %10s %12s %12s\n", param, "covered", "overpred", "cycles", "recon-drop")
	for _, res := range results {
		fmt.Fprintf(w, "%-8s %8.1f%% %9.1f%% %12d %11.1f%%\n",
			res.Label, 100*res.Coverage, 100*res.OverpredictionRate, res.Cycles,
			100*res.ReconDropFraction)
	}
	return nil
}

// jobErr folds a terminal job status into an error: only a completed job
// has the full result set.
func jobErr(st stems.JobStatus) error {
	if st.State != stems.JobDone {
		if st.Error != "" {
			return fmt.Errorf("grid job %s %s: %s", st.ID, st.State, st.Error)
		}
		return fmt.Errorf("grid job %s %s", st.ID, st.State)
	}
	return nil
}
