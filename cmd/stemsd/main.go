// Command stemsd is the STeMS simulation daemon: it serves the engine
// over an HTTP/JSON API so simulations become cheap, cacheable network
// calls instead of per-invocation CLI state. Jobs flow through a bounded
// FIFO queue into a worker pool; identical configurations are served from
// a content-addressed result cache; workload traces are shared across
// jobs through one arena; per-block progress streams to clients via SSE.
//
//	stemsd -addr :8091 -workers 4 -queue 64 -cache 256
//
// With -store DIR the result cache gains a disk tier: every computed
// result is persisted under its content address (atomic writes,
// CRC-checked reads), so a restarted daemon answers repeat jobs from
// disk without recomputing. With -peers (a comma-separated list of every
// cluster daemon's base URL) the daemon joins a static shard map and
// /metrics reports how submitted runs distribute over their owners; add
// -self with this daemon's own URL to also count misrouted runs. Routing
// itself is client-side — see stems.NewClusterClient and README
// "Running a cluster".
//
// With -config FILE the daemon loads a JSON config file carrying every
// flag plus the blocks that have no flag form: completion notifiers
// (webhook or log) and recurring cron schedules. Flags set explicitly on
// the command line override their file counterparts. Schedules can also
// be managed at runtime over POST/GET/DELETE /v1/schedules; fire state
// persists to schedule_state (default <store>/schedules.json when -store
// is set) so cadence survives restarts. See README "Config file" and
// "Schedules & notifiers".
//
// Observability: GET /metrics serves the JSON counters document, and
// with ?format=prometheus the full Prometheus text exposition —
// per-route request histograms, per-phase job latency histograms, cache
// and store counters. -pprof mounts /debug/pprof/ for live CPU and heap
// profiles. Logs are structured (log/slog): -log-level selects
// verbosity, -log-format text or JSON lines. See README
// "Observability".
//
// Submit and watch with curl (see README "Running the service") or the
// typed client in the stems package (stems.NewClient).
//
// On SIGTERM/SIGINT the daemon stops firing schedules and accepting
// jobs (503 "draining"), finishes queued and in-flight work, delivers
// their completion notifications, then exits 0. A second signal cancels
// outstanding jobs instead of completing them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"stems/internal/conf"
	"stems/internal/enc"
	"stems/internal/notify"
	"stems/internal/obs"
	"stems/internal/sched"
	"stems/internal/server"
	"stems/internal/service"
	"stems/internal/store"
)

func main() {
	var (
		configPath   = flag.String("config", "", "JSON config file: every flag plus notifier and schedule blocks (explicit flags win; see README \"Config file\")")
		showVersion  = flag.Bool("version", false, "print version and exit")
		addr         = flag.String("addr", ":8091", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "max queued jobs before submissions shed with 503")
		cache        = flag.Int("cache", 256, "result-cache entries (LRU)")
		traces       = flag.Int("traces", 8, "resident workload traces in the shared arena (LRU; raised to worker count when smaller)")
		retain       = flag.Int("retain", 1024, "finished jobs kept queryable before the oldest are forgotten")
		drain        = flag.Duration("drain-timeout", 2*time.Minute, "max time to wait for open connections after drain")
		storeDir     = flag.String("store", "", "disk-backed result store directory (persists the cache across restarts; empty = memory-only)")
		storeEntries = flag.Int("store-entries", 4096, "max result files retained in -store (LRU)")
		peers        = flag.String("peers", "", "comma-separated base URLs of every cluster daemon, this one included (enables shard-routing metrics)")
		self         = flag.String("self", "", "this daemon's own base URL within -peers (counts misrouted submissions)")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (debug adds per-request and per-job-submit lines)")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		pprofOn      = flag.Bool("pprof", false, "mount /debug/pprof/ (CPU, heap, goroutine profiles; exposes process memory — enable on trusted networks only)")
	)
	flag.Parse()

	version, revision := buildVersion()
	if *showVersion {
		fmt.Printf("stemsd %s (%s)\n", version, revision)
		return
	}

	// Resolve configuration: flag defaults, overlaid by the config file,
	// overlaid by flags the user passed explicitly.
	set := conf.Settings{
		Addr:         *addr,
		Workers:      *workers,
		Queue:        *queue,
		Cache:        *cache,
		Traces:       *traces,
		Retain:       *retain,
		DrainTimeout: *drain,
		Store:        *storeDir,
		StoreEntries: *storeEntries,
		Self:         *self,
		LogLevel:     *logLevel,
		LogFormat:    *logFormat,
		Pprof:        *pprofOn,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			set.Peers = append(set.Peers, strings.TrimSpace(p))
		}
	}
	if *configPath != "" {
		file, err := conf.Load(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stemsd: %v\n", err)
			os.Exit(2)
		}
		explicit := make(map[string]bool)
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		file.Apply(&set, func(name string) bool { return explicit[name] })
	}
	if set.ScheduleState == "" && set.Store != "" {
		set.ScheduleState = filepath.Join(set.Store, "schedules.json")
	}

	logger, err := newLogger(set.LogLevel, set.LogFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stemsd: %v\n", err)
		os.Exit(2)
	}

	cfg := service.Config{
		Workers:    set.Workers,
		QueueBound: set.Queue,
		CacheBound: set.Cache,
		TraceBound: set.Traces,
		RetainJobs: set.Retain,
		Self:       set.Self,
		Peers:      set.Peers,
		Logger:     logger,
	}
	if set.Store != "" {
		st, err := store.Open(set.Store, set.StoreEntries)
		if err != nil {
			fatal(logger, "opening result store", err)
		}
		stats := st.Stats()
		logger.Info("result store", "dir", set.Store, "entries", stats.Entries, "bytes", stats.Bytes)
		cfg.Store = st
	}

	svc, err := service.New(cfg)
	if err != nil {
		fatal(logger, "configuring service", err)
	}
	svc.Obs().Gauge("stemsd_build_info",
		"Build metadata; the value is always 1.",
		func() float64 { return 1 },
		obs.L("version", version), obs.L("revision", revision))

	notifiers := notify.NewSet(svc.Obs(), logger)
	for _, n := range set.Notifiers {
		var target notify.Notifier
		switch n.Type {
		case "webhook":
			target = notify.NewWebhook(n.Name, notify.WebhookConfig{
				URL:      n.URL,
				Attempts: n.Attempts,
				Backoff:  time.Duration(n.Backoff),
				Timeout:  time.Duration(n.Timeout),
			})
		case "log":
			target = notify.NewLog(n.Name, logger)
		}
		if err := notifiers.Register(target, n.AllJobs); err != nil {
			fatal(logger, "registering notifier", err)
		}
		logger.Info("notifier registered", "name", n.Name, "type", n.Type)
	}

	scheduler, err := sched.New(sched.Config{
		Submit: func(spec enc.JobSpec) (string, error) {
			j, err := svc.Submit(spec)
			if err != nil {
				return "", err
			}
			return j.ID, nil
		},
		Validate:    service.Validate,
		HasNotifier: notifiers.Has,
		StatePath:   set.ScheduleState,
		Logger:      logger,
		Obs:         svc.Obs(),
	})
	if err != nil {
		fatal(logger, "starting scheduler", err)
	}
	for _, spec := range set.Schedules {
		st, err := scheduler.Add(spec)
		if err != nil {
			fatal(logger, "registering schedule", err)
		}
		logger.Info("schedule registered", "name", st.Name, "cron", st.Cron, "next_fire", st.NextFire)
	}
	svc.OnJobDone(func(st enc.JobStatus) {
		name, names, _ := scheduler.JobCompleted(st)
		notifiers.Send(names, enc.NotificationFromStatus(st, name))
	})
	svc.AddMetricsHook(func(m *enc.Metrics) {
		sm := scheduler.Metrics()
		m.Sched = &sm
		nm := notifiers.Metrics()
		m.Notify = &nm
	})

	srvOpts := []server.Option{server.WithLogger(logger), server.WithScheduler(scheduler)}
	if set.Pprof {
		srvOpts = append(srvOpts, server.WithPprof())
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Addr: set.Addr, Handler: server.New(svc, srvOpts...)}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", set.Addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		fatal(logger, "serve", err)
	case sig := <-sigc:
		logger.Info("draining: completing queued and in-flight jobs; signal again to cancel them", "signal", sig.String())
	}

	// A second signal hard-cancels outstanding jobs; Drain below then
	// finishes almost immediately as workers observe their contexts.
	go func() {
		sig := <-sigc
		logger.Info("cancelling outstanding jobs", "signal", sig.String())
		svc.Abort()
	}()

	// Order matters: stop firing new jobs, land the in-flight ones (whose
	// completion hooks run on the finishing goroutine, so Drain returning
	// means every notification was handed to the set), flush deliveries,
	// then close the store.
	scheduler.Stop()
	svc.Drain()
	notifiers.Close()
	if cfg.Store != nil {
		cfg.Store.Close() //nolint:errcheck // drained: no writers left
	}

	ctx, cancel := context.WithTimeout(context.Background(), set.DrainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "err", err)
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	logger.Info("drained, exiting")
}

// buildVersion extracts the module version and VCS revision stamped by
// the Go toolchain.
func buildVersion() (version, revision string) {
	version, revision = "devel", "unknown"
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return version, revision
	}
	if info.Main.Version != "" {
		version = info.Main.Version
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return version, revision
}

// newLogger builds the process logger from the -log-level/-log-format
// flags. Logs go to stderr, like the stdlib logger they replace.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}
