// Command stemsd is the STeMS simulation daemon: it serves the engine
// over an HTTP/JSON API so simulations become cheap, cacheable network
// calls instead of per-invocation CLI state. Jobs flow through a bounded
// FIFO queue into a worker pool; identical configurations are served from
// a content-addressed result cache; workload traces are shared across
// jobs through one arena; per-block progress streams to clients via SSE.
//
//	stemsd -addr :8091 -workers 4 -queue 64 -cache 256
//
// With -store DIR the result cache gains a disk tier: every computed
// result is persisted under its content address (atomic writes,
// CRC-checked reads), so a restarted daemon answers repeat jobs from
// disk without recomputing. With -peers (a comma-separated list of every
// cluster daemon's base URL) the daemon joins a static shard map and
// /metrics reports how submitted runs distribute over their owners; add
// -self with this daemon's own URL to also count misrouted runs. Routing
// itself is client-side — see stems.NewClusterClient and README
// "Running a cluster".
//
// Observability: GET /metrics serves the JSON counters document, and
// with ?format=prometheus the full Prometheus text exposition —
// per-route request histograms, per-phase job latency histograms, cache
// and store counters. -pprof mounts /debug/pprof/ for live CPU and heap
// profiles. Logs are structured (log/slog): -log-level selects
// verbosity, -log-format text or JSON lines. See README
// "Observability".
//
// Submit and watch with curl (see README "Running the service") or the
// typed client in the stems package (stems.NewClient).
//
// On SIGTERM/SIGINT the daemon stops accepting jobs (503 "draining"),
// finishes queued and in-flight work, then exits 0. A second signal
// cancels outstanding jobs instead of completing them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stems/internal/server"
	"stems/internal/service"
	"stems/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8091", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "max queued jobs before submissions shed with 503")
		cache        = flag.Int("cache", 256, "result-cache entries (LRU)")
		traces       = flag.Int("traces", 8, "resident workload traces in the shared arena (LRU; raised to worker count when smaller)")
		retain       = flag.Int("retain", 1024, "finished jobs kept queryable before the oldest are forgotten")
		drain        = flag.Duration("drain-timeout", 2*time.Minute, "max time to wait for open connections after drain")
		storeDir     = flag.String("store", "", "disk-backed result store directory (persists the cache across restarts; empty = memory-only)")
		storeEntries = flag.Int("store-entries", 4096, "max result files retained in -store (LRU)")
		peers        = flag.String("peers", "", "comma-separated base URLs of every cluster daemon, this one included (enables shard-routing metrics)")
		self         = flag.String("self", "", "this daemon's own base URL within -peers (counts misrouted submissions)")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (debug adds per-request and per-job-submit lines)")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		pprofOn      = flag.Bool("pprof", false, "mount /debug/pprof/ (CPU, heap, goroutine profiles; exposes process memory — enable on trusted networks only)")
	)
	flag.Parse()
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stemsd: %v\n", err)
		os.Exit(2)
	}

	cfg := service.Config{
		Workers:    *workers,
		QueueBound: *queue,
		CacheBound: *cache,
		TraceBound: *traces,
		RetainJobs: *retain,
		Self:       *self,
		Logger:     logger,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *storeEntries)
		if err != nil {
			fatal(logger, "opening result store", err)
		}
		stats := st.Stats()
		logger.Info("result store", "dir", *storeDir, "entries", stats.Entries, "bytes", stats.Bytes)
		cfg.Store = st
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			cfg.Peers = append(cfg.Peers, strings.TrimSpace(p))
		}
	}

	svc, err := service.New(cfg)
	if err != nil {
		fatal(logger, "configuring service", err)
	}
	srvOpts := []server.Option{server.WithLogger(logger)}
	if *pprofOn {
		srvOpts = append(srvOpts, server.WithPprof())
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: server.New(svc, srvOpts...)}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		fatal(logger, "serve", err)
	case sig := <-sigc:
		logger.Info("draining: completing queued and in-flight jobs; signal again to cancel them", "signal", sig.String())
	}

	// A second signal hard-cancels outstanding jobs; Drain below then
	// finishes almost immediately as workers observe their contexts.
	go func() {
		sig := <-sigc
		logger.Info("cancelling outstanding jobs", "signal", sig.String())
		svc.Abort()
	}()

	svc.Drain()
	if cfg.Store != nil {
		cfg.Store.Close() //nolint:errcheck // drained: no writers left
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "err", err)
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	logger.Info("drained, exiting")
}

// newLogger builds the process logger from the -log-level/-log-format
// flags. Logs go to stderr, like the stdlib logger they replace.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}
