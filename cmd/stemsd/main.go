// Command stemsd is the STeMS simulation daemon: it serves the engine
// over an HTTP/JSON API so simulations become cheap, cacheable network
// calls instead of per-invocation CLI state. Jobs flow through a bounded
// FIFO queue into a worker pool; identical configurations are served from
// a content-addressed result cache; workload traces are shared across
// jobs through one arena; per-block progress streams to clients via SSE.
//
//	stemsd -addr :8091 -workers 4 -queue 64 -cache 256
//
// With -store DIR the result cache gains a disk tier: every computed
// result is persisted under its content address (atomic writes,
// CRC-checked reads), so a restarted daemon answers repeat jobs from
// disk without recomputing. With -peers (a comma-separated list of every
// cluster daemon's base URL) the daemon joins a static shard map and
// /metrics reports how submitted runs distribute over their owners; add
// -self with this daemon's own URL to also count misrouted runs. Routing
// itself is client-side — see stems.NewClusterClient and README
// "Running a cluster".
//
// Submit and watch with curl (see README "Running the service") or the
// typed client in the stems package (stems.NewClient).
//
// On SIGTERM/SIGINT the daemon stops accepting jobs (503 "draining"),
// finishes queued and in-flight work, then exits 0. A second signal
// cancels outstanding jobs instead of completing them.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"stems/internal/server"
	"stems/internal/service"
	"stems/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8091", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "max queued jobs before submissions shed with 503")
		cache        = flag.Int("cache", 256, "result-cache entries (LRU)")
		traces       = flag.Int("traces", 8, "resident workload traces in the shared arena (LRU; raised to worker count when smaller)")
		retain       = flag.Int("retain", 1024, "finished jobs kept queryable before the oldest are forgotten")
		drain        = flag.Duration("drain-timeout", 2*time.Minute, "max time to wait for open connections after drain")
		storeDir     = flag.String("store", "", "disk-backed result store directory (persists the cache across restarts; empty = memory-only)")
		storeEntries = flag.Int("store-entries", 4096, "max result files retained in -store (LRU)")
		peers        = flag.String("peers", "", "comma-separated base URLs of every cluster daemon, this one included (enables shard-routing metrics)")
		self         = flag.String("self", "", "this daemon's own base URL within -peers (counts misrouted submissions)")
	)
	flag.Parse()
	log.SetPrefix("stemsd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	cfg := service.Config{
		Workers:    *workers,
		QueueBound: *queue,
		CacheBound: *cache,
		TraceBound: *traces,
		RetainJobs: *retain,
		Self:       *self,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *storeEntries)
		if err != nil {
			log.Fatalf("opening result store: %v", err)
		}
		stats := st.Stats()
		log.Printf("result store %s: %d entries, %d bytes", *storeDir, stats.Entries, stats.Bytes)
		cfg.Store = st
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			cfg.Peers = append(cfg.Peers, strings.TrimSpace(p))
		}
	}

	svc, err := service.New(cfg)
	if err != nil {
		log.Fatalf("configuring service: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: server.New(svc)}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case sig := <-sigc:
		log.Printf("%s: draining (completing queued and in-flight jobs; signal again to cancel them)", sig)
	}

	// A second signal hard-cancels outstanding jobs; Drain below then
	// finishes almost immediately as workers observe their contexts.
	go func() {
		sig := <-sigc
		log.Printf("%s: cancelling outstanding jobs", sig)
		svc.Abort()
	}()

	svc.Drain()
	if cfg.Store != nil {
		cfg.Store.Close() //nolint:errcheck // drained: no writers left
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	log.Printf("drained, exiting")
}
