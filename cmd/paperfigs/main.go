// Command paperfigs regenerates the tables and figures of "Spatio-Temporal
// Memory Streaming" (ISCA 2009) from the synthetic workload suite.
//
// Usage:
//
//	paperfigs -fig all
//	paperfigs -fig 6            # Figure 6 only
//	paperfigs -fig 10 -seeds 5  # Figure 10 with five seeds
//	paperfigs -fig hybrid       # §5.5 naive-hybrid ablation
//	paperfigs -fig table1
//	paperfigs -fig all -cpuprofile cpu.pprof -memprofile mem.pprof
//
// All requested figures share one trace arena, so each workload trace is
// generated exactly once per invocation regardless of how many figures,
// predictor kinds, and seeds replay it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"stems/internal/figures"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig         = flag.String("fig", "all", "which figure to regenerate: table1, 6, 7, 8, 9, 10, hybrid, workloads, or all")
		seed        = flag.Int64("seed", 1, "base workload seed")
		seeds       = flag.Int("seeds", 5, "independent runs for Figure 10 confidence intervals")
		accesses    = flag.Int("accesses", 0, "override per-workload trace length (0 = workload default)")
		serial      = flag.Bool("serial", false, "disable per-workload parallelism")
		parallelism = flag.Int("parallelism", 0, "concurrent workloads (0 = GOMAXPROCS)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	p := figures.DefaultParams()
	p.Seed = *seed
	p.Seeds = *seeds
	p.Accesses = *accesses
	p.Parallel = !*serial
	p.Parallelism = *parallelism

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := false

	if all || want["table1"] {
		fmt.Println(figures.RenderTable1())
		ran = true
	}

	// Figures 6-9 and the hybrid ablation all replay the base-seed trace.
	// When more than one is requested, compute them as one fused lockstep
	// pass per workload (byte-identical to the standalone functions) so
	// each trace is traversed once for the whole batch.
	fusedCount := 0
	for _, f := range []string{"6", "7", "8", "9", "hybrid"} {
		if all || want[f] {
			fusedCount++
		}
	}
	var panels figures.Panels
	if fusedCount > 1 {
		panels = figures.FusedPanels(p)
	} else if fusedCount == 1 {
		switch {
		case all || want["6"]:
			panels.Fig6 = figures.Figure6(p)
		case all || want["7"]:
			panels.Fig7 = figures.Figure7(p)
		case all || want["8"]:
			panels.Fig8 = figures.Figure8(p)
		case all || want["9"]:
			panels.Fig9 = figures.Figure9(p)
		case all || want["hybrid"]:
			panels.Hybrid = figures.HybridAblation(p)
		}
	}
	if all || want["6"] {
		fmt.Println(figures.RenderFigure6(panels.Fig6))
		ran = true
	}
	if all || want["7"] {
		fmt.Println(figures.RenderFigure7(panels.Fig7))
		ran = true
	}
	if all || want["8"] {
		fmt.Println(figures.RenderFigure8(panels.Fig8))
		ran = true
	}
	if all || want["9"] {
		fmt.Println(figures.RenderFigure9(panels.Fig9))
		ran = true
	}
	if all || want["10"] {
		fmt.Println(figures.RenderFigure10(figures.Figure10(p)))
		ran = true
	}
	if all || want["hybrid"] {
		fmt.Println(figures.RenderHybrid(panels.Hybrid))
		ran = true
	}
	if all || want["workloads"] {
		fmt.Println(figures.RenderWorkloads(figures.Workloads(p)))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want table1, 6, 7, 8, 9, 10, hybrid, workloads, all)\n", *fig)
		return 2
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 1
		}
	}
	return 0
}
