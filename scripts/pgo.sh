#!/usr/bin/env bash
# pgo.sh — regenerate the committed profile-guided-optimization profile.
#
# Captures CPU profiles from the STeMS kernel benchmarks (the hot
# replay loop stemsd spends its time in), merges them, and writes
# cmd/stemsd/default.pgo. `go build` applies that profile to every
# stemsd build automatically (-pgo=auto has been the default since Go
# 1.21, and auto means "use the main package's default.pgo"); CI
# asserts the profile actually reaches the compiler by grepping the
# `go build -x` log for -pgoprofile.
#
# Re-run after significant kernel changes, then commit the updated
# profile:
#
#   ./scripts/pgo.sh && git add cmd/stemsd/default.pgo
#
# Environment:
#   RUNS       how many profiling runs to merge (default 3)
#   BENCHTIME  go test -benchtime per run (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

RUNS="${RUNS:-3}"
profiles=()
for i in $(seq "$RUNS"); do
  go test -run '^$' -bench 'SimBlocksSTeMS|StepBlockMedianSTeMS' \
    -benchtime "${BENCHTIME:-3x}" -cpuprofile "$tmp/cpu.$i.prof" . >/dev/null
  profiles+=("$tmp/cpu.$i.prof")
done

go tool pprof -proto "${profiles[@]}" > cmd/stemsd/default.pgo
echo "wrote cmd/stemsd/default.pgo ($(wc -c < cmd/stemsd/default.pgo) bytes from $RUNS runs)"
