#!/usr/bin/env bash
# smoke_stemsd.sh — black-box smoke test of the stemsd daemon: build it,
# start it, hit /healthz, submit one small job, watch it finish, check the
# /metrics counters moved, then SIGTERM and require a clean (exit 0)
# drain. CI runs this after the unit suites; it is the one check that
# exercises the real binary end to end (flags, signal handling, HTTP
# stack) rather than an in-process httptest server.
#
# Needs only bash + curl + grep/sed (no jq): field extraction below works
# on the server's compact single-line JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${STEMSD_ADDR:-127.0.0.1:18091}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/stemsd"
LOG="$(mktemp)"

cleanup() {
  [[ -n "${PID:-}" ]] && kill -9 "$PID" 2>/dev/null || true
  rm -f "$LOG"
  rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN" ./cmd/stemsd

echo "== start on $ADDR"
"$BIN" -addr "$ADDR" -workers 2 -queue 8 -cache 16 >"$LOG" 2>&1 &
PID=$!

# jsonfield DOC KEY — extract a scalar field from compact JSON.
jsonfield() {
  sed -n "s/.*\"$2\":\"\{0,1\}\([^,\"}]*\)\"\{0,1\}[,}].*/\1/p" <<<"$1" | head -1
}

echo "== wait for /healthz"
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "daemon died during startup:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
curl -fsS "$BASE/healthz"; echo

echo "== discovery endpoints"
PREDICTORS="$(curl -fsS "$BASE/v1/predictors")"
grep -q '"stems"' <<<"$PREDICTORS"
# /v1/predictors carries the full knob schema, not just names.
grep -q '"knobs"' <<<"$PREDICTORS"
grep -q '"stems.rmob_entries"' <<<"$PREDICTORS"
curl -fsS "$BASE/v1/workloads"  | grep -q '"em3d"'

echo "== submit one small job"
SUBMIT="$(curl -fsS -X POST "$BASE/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"predictor":"stems","workload":"em3d","accesses":30000}')"
echo "$SUBMIT"
JOB="$(jsonfield "$SUBMIT" id)"
[[ "$JOB" == j-* ]] || { echo "no job id in response"; exit 1; }

echo "== poll $JOB to completion"
STATE=""
for _ in $(seq 1 300); do
  STATUS="$(curl -fsS "$BASE/v1/jobs/$JOB")"
  STATE="$(jsonfield "$STATUS" state)"
  [[ "$STATE" == "done" || "$STATE" == "failed" || "$STATE" == "canceled" ]] && break
  sleep 0.1
done
echo "$STATUS"
[[ "$STATE" == "done" ]] || { echo "job ended in state '$STATE'"; cat "$LOG"; exit 1; }
grep -q '"covered"' <<<"$STATUS" || { echo "result document missing counters"; exit 1; }

echo "== metrics recorded the work"
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS"
[[ "$(jsonfield "$METRICS" jobs_completed)" == "1" ]] || { echo "jobs_completed != 1"; exit 1; }
[[ "$(jsonfield "$METRICS" accesses_simulated)" == "30000" ]] || { echo "accesses_simulated != 30000"; exit 1; }

echo "== submit a knob-override job"
SUBMIT2="$(curl -fsS -X POST "$BASE/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"predictor":"stems","workload":"em3d","accesses":30000,"knobs":{"stems.rmob_entries":16384,"scientific":false}}')"
echo "$SUBMIT2"
JOB2="$(jsonfield "$SUBMIT2" id)"
[[ "$JOB2" == j-* ]] || { echo "no job id in knob-override response"; exit 1; }

echo "== poll $JOB2 to completion"
STATE2=""
for _ in $(seq 1 300); do
  STATUS2="$(curl -fsS "$BASE/v1/jobs/$JOB2")"
  STATE2="$(jsonfield "$STATUS2" state)"
  [[ "$STATE2" == "done" || "$STATE2" == "failed" || "$STATE2" == "canceled" ]] && break
  sleep 0.1
done
[[ "$STATE2" == "done" ]] || { echo "knob job ended in state '$STATE2'"; cat "$LOG"; exit 1; }
grep -q '"covered"' <<<"$STATUS2" || { echo "knob-job result missing counters"; exit 1; }
# The canonical knob map is reported back in the job spec.
grep -q '"stems.rmob_entries":16384' <<<"$STATUS2" || { echo "knobs not echoed in job status"; exit 1; }

echo "== bad knob is a structured 400"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/jobs" \
  -H 'Content-Type: application/json' -d '{"knobs":{"no.such.knob":1}}')"
[[ "$CODE" == "400" ]] || { echo "bad knob returned HTTP $CODE, want 400"; exit 1; }

echo "== SIGTERM drains cleanly"
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
if [[ "$EXIT" -ne 0 ]]; then
  echo "daemon exited $EXIT after SIGTERM:"; cat "$LOG"; exit 1
fi
PID=""
grep -q "drained, exiting" "$LOG" || { echo "no clean-drain log line:"; cat "$LOG"; exit 1; }

echo "== smoke OK"
