#!/usr/bin/env bash
# smoke_stemsd.sh — black-box smoke test of the stemsd daemon: build it,
# start it, hit /healthz, submit one small job, watch it finish, check the
# /metrics counters moved, then SIGTERM and require a clean (exit 0)
# drain. It then relaunches the daemon on the same -store directory and
# requires the same job to be answered from disk: zero runs computed, one
# cache hit. A third launch runs from a -config file with an "@every 1s"
# schedule wired to a webhook notifier (a local webhooksink receiver that
# fails the first delivery, forcing a retry), submits a server-side grid
# job with duplicate cells, and asserts the new counters — grid jobs,
# schedule fires, notifications sent — in both the JSON and Prometheus
# expositions. CI runs this after the unit suites; it is the one check
# that exercises the real binary end to end (flags, config file, signal
# handling, HTTP stack, restart durability) rather than an in-process
# httptest server.
#
# Needs only bash + curl + grep/sed (no jq): field extraction below works
# on the server's compact single-line JSON.
#
# Set SMOKE_OUT to a directory to keep observability artifacts (the
# Prometheus scrape and a 1-second CPU profile from /debug/pprof); CI
# uploads them so a failing or slow run can be inspected offline.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${STEMSD_ADDR:-127.0.0.1:18091}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/stemsd"
LOG="$(mktemp)"
STORE="$(mktemp -d)"
OUT="${SMOKE_OUT:-}"
[[ -n "$OUT" ]] && mkdir -p "$OUT"

SINK_ADDR="${WEBHOOKSINK_ADDR:-127.0.0.1:18092}"
SINK="$(dirname "$BIN")/webhooksink"
CFG="$(mktemp)"

cleanup() {
  [[ -n "${PID:-}" ]] && kill -9 "$PID" 2>/dev/null || true
  [[ -n "${SINK_PID:-}" ]] && kill -9 "$SINK_PID" 2>/dev/null || true
  rm -f "$LOG" "$CFG"
  rm -rf "$(dirname "$BIN")" "$STORE"
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN" ./cmd/stemsd
go build -o "$SINK" ./scripts/webhooksink

echo "== -version"
VERSION_OUT="$("$BIN" -version)"
echo "$VERSION_OUT"
grep -q '^stemsd ' <<<"$VERSION_OUT" || { echo "-version output malformed"; exit 1; }

echo "== start on $ADDR (store: $STORE)"
"$BIN" -addr "$ADDR" -workers 2 -queue 8 -cache 16 -store "$STORE" -pprof >"$LOG" 2>&1 &
PID=$!

# jsonfield DOC KEY — extract a scalar field from compact JSON.
jsonfield() {
  sed -n "s/.*\"$2\":\"\{0,1\}\([^,\"}]*\)\"\{0,1\}[,}].*/\1/p" <<<"$1" | head -1
}

echo "== wait for /healthz"
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "daemon died during startup:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
curl -fsS "$BASE/healthz"; echo

echo "== discovery endpoints"
PREDICTORS="$(curl -fsS "$BASE/v1/predictors")"
grep -q '"stems"' <<<"$PREDICTORS"
# /v1/predictors carries the full knob schema, not just names.
grep -q '"knobs"' <<<"$PREDICTORS"
grep -q '"stems.rmob_entries"' <<<"$PREDICTORS"
curl -fsS "$BASE/v1/workloads"  | grep -q '"em3d"'

echo "== submit one small job"
SUBMIT="$(curl -fsS -X POST "$BASE/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"predictor":"stems","workload":"em3d","accesses":30000}')"
echo "$SUBMIT"
JOB="$(jsonfield "$SUBMIT" id)"
[[ "$JOB" == j-* ]] || { echo "no job id in response"; exit 1; }

echo "== poll $JOB to completion"
STATE=""
for _ in $(seq 1 300); do
  STATUS="$(curl -fsS "$BASE/v1/jobs/$JOB")"
  STATE="$(jsonfield "$STATUS" state)"
  [[ "$STATE" == "done" || "$STATE" == "failed" || "$STATE" == "canceled" ]] && break
  sleep 0.1
done
echo "$STATUS"
[[ "$STATE" == "done" ]] || { echo "job ended in state '$STATE'"; cat "$LOG"; exit 1; }
grep -q '"covered"' <<<"$STATUS" || { echo "result document missing counters"; exit 1; }

echo "== finished job reports phase spans"
for PHASE in queue resolve simulate encode store; do
  grep -q "\"phase\":\"$PHASE\"" <<<"$STATUS" || { echo "status missing phase span '$PHASE'"; exit 1; }
done
# The simulate phase actually accumulated time for a computed run.
SIM_NANOS="$(sed -n 's/.*{"phase":"simulate","nanos":\([0-9]*\),.*/\1/p' <<<"$STATUS")"
[[ -n "$SIM_NANOS" && "$SIM_NANOS" -gt 0 ]] || { echo "simulate phase span empty: $STATUS"; exit 1; }

echo "== metrics recorded the work"
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS"
[[ "$(jsonfield "$METRICS" jobs_completed)" == "1" ]] || { echo "jobs_completed != 1"; exit 1; }
[[ "$(jsonfield "$METRICS" accesses_simulated)" == "30000" ]] || { echo "accesses_simulated != 30000"; exit 1; }
grep -q '"accesses_per_sec_1m"' <<<"$METRICS" || { echo "metrics missing windowed rate"; exit 1; }

echo "== Prometheus exposition"
PROM="$(curl -fsS "$BASE/metrics?format=prometheus")"
[[ -n "$OUT" ]] && printf '%s\n' "$PROM" >"$OUT/metrics.prom"
grep -q '^# TYPE stemsd_jobs_completed_total counter' <<<"$PROM" || { echo "exposition missing TYPE line"; exit 1; }
grep -q '^stemsd_jobs_completed_total 1$' <<<"$PROM" || { echo "exposition jobs_completed != 1"; exit 1; }
grep -q '^# TYPE stemsd_http_request_seconds histogram' <<<"$PROM" || { echo "exposition missing request histogram"; exit 1; }
grep -q 'stemsd_http_request_seconds_bucket{route="GET /v1/jobs/{id}",le="+Inf"}' <<<"$PROM" || { echo "exposition missing route histogram buckets"; exit 1; }
grep -q 'stemsd_job_phase_seconds_count{phase="simulate"}' <<<"$PROM" || { echo "exposition missing phase histogram"; exit 1; }
grep -q 'stemsd_store_write_seconds_count' <<<"$PROM" || { echo "exposition missing store write histogram"; exit 1; }

echo "== pprof CPU profile"
PROFILE_DEST="${OUT:-$(dirname "$BIN")}/cpu.pprof"
curl -fsS -o "$PROFILE_DEST" "$BASE/debug/pprof/profile?seconds=1" || { echo "pprof profile capture failed"; exit 1; }
[[ -s "$PROFILE_DEST" ]] || { echo "pprof profile empty"; exit 1; }

echo "== submit a knob-override job"
SUBMIT2="$(curl -fsS -X POST "$BASE/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"predictor":"stems","workload":"em3d","accesses":30000,"knobs":{"stems.rmob_entries":16384,"scientific":false}}')"
echo "$SUBMIT2"
JOB2="$(jsonfield "$SUBMIT2" id)"
[[ "$JOB2" == j-* ]] || { echo "no job id in knob-override response"; exit 1; }

echo "== poll $JOB2 to completion"
STATE2=""
for _ in $(seq 1 300); do
  STATUS2="$(curl -fsS "$BASE/v1/jobs/$JOB2")"
  STATE2="$(jsonfield "$STATUS2" state)"
  [[ "$STATE2" == "done" || "$STATE2" == "failed" || "$STATE2" == "canceled" ]] && break
  sleep 0.1
done
[[ "$STATE2" == "done" ]] || { echo "knob job ended in state '$STATE2'"; cat "$LOG"; exit 1; }
grep -q '"covered"' <<<"$STATUS2" || { echo "knob-job result missing counters"; exit 1; }
# The canonical knob map is reported back in the job spec.
grep -q '"stems.rmob_entries":16384' <<<"$STATUS2" || { echo "knobs not echoed in job status"; exit 1; }

echo "== bad knob is a structured 400"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/jobs" \
  -H 'Content-Type: application/json' -d '{"knobs":{"no.such.knob":1}}')"
[[ "$CODE" == "400" ]] || { echo "bad knob returned HTTP $CODE, want 400"; exit 1; }

echo "== SIGTERM drains cleanly"
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
if [[ "$EXIT" -ne 0 ]]; then
  echo "daemon exited $EXIT after SIGTERM:"; cat "$LOG"; exit 1
fi
PID=""
grep -q "drained, exiting" "$LOG" || { echo "no clean-drain log line:"; cat "$LOG"; exit 1; }

echo "== restart on the same -store directory"
: >"$LOG"
"$BIN" -addr "$ADDR" -workers 2 -queue 8 -cache 16 -store "$STORE" >"$LOG" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "daemon died during restart:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
# The startup log reports what the store rebuild found.
grep -q "result store" "$LOG" || { echo "no store-open log line:"; cat "$LOG"; exit 1; }

echo "== resubmit the first job: must be served from disk"
RESUBMIT="$(curl -fsS -X POST "$BASE/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"predictor":"stems","workload":"em3d","accesses":30000}')"
RJOB="$(jsonfield "$RESUBMIT" id)"
[[ "$RJOB" == j-* ]] || { echo "no job id in restart response"; exit 1; }
RSTATE=""
for _ in $(seq 1 300); do
  RSTATUS="$(curl -fsS "$BASE/v1/jobs/$RJOB")"
  RSTATE="$(jsonfield "$RSTATUS" state)"
  [[ "$RSTATE" == "done" || "$RSTATE" == "failed" || "$RSTATE" == "canceled" ]] && break
  sleep 0.1
done
[[ "$RSTATE" == "done" ]] || { echo "restart job ended in state '$RSTATE'"; cat "$LOG"; exit 1; }
grep -q '"covered"' <<<"$RSTATUS" || { echo "restart result missing counters"; exit 1; }

echo "== restart metrics: zero runs computed, one cache hit, one disk hit"
RMETRICS="$(curl -fsS "$BASE/metrics")"
echo "$RMETRICS"
[[ "$(jsonfield "$RMETRICS" runs_computed)" == "0" ]] || { echo "restarted daemon recomputed (runs_computed != 0)"; exit 1; }
[[ "$(jsonfield "$RMETRICS" cache_hits)" == "1" ]] || { echo "cache_hits != 1 after restart"; exit 1; }
RSTORE="$(grep -o '"store":{[^}]*}' <<<"$RMETRICS")"
[[ "$(jsonfield "$RSTORE" hits)" == "1" ]] || { echo "store hits != 1 after restart: $RSTORE"; exit 1; }
[[ "$(jsonfield "$RSTORE" entries)" -ge 1 ]] || { echo "store empty after restart: $RSTORE"; exit 1; }

echo "== second SIGTERM drains cleanly"
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
if [[ "$EXIT" -ne 0 ]]; then
  echo "daemon exited $EXIT after restart SIGTERM:"; cat "$LOG"; exit 1
fi
PID=""

echo "== start webhook sink on $SINK_ADDR (first delivery fails, forcing a retry)"
"$SINK" -addr "$SINK_ADDR" -fail-first 1 >/dev/null 2>&1 &
SINK_PID=$!
for _ in $(seq 1 100); do
  curl -fsS "http://$SINK_ADDR/stats" >/dev/null 2>&1 && break
  sleep 0.1
done

echo "== config-file daemon: schedule + webhook notifier"
cat >"$CFG" <<EOF
{
  "addr": "$ADDR",
  "workers": 2,
  "queue": 8,
  "cache": 16,
  "log_level": "debug",
  "notifiers": [
    {"name": "sink", "type": "webhook", "url": "http://$SINK_ADDR/notify",
     "attempts": 5, "backoff": "100ms"}
  ],
  "schedules": [
    {"name": "smoke", "cron": "@every 1s",
     "job": {"predictor": "stems", "workload": "em3d", "accesses": 20000},
     "notify": ["sink"]}
  ]
}
EOF
: >"$LOG"
"$BIN" -config "$CFG" >"$LOG" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "daemon died during config-file startup:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done

echo "== schedule is registered and visible over the API"
SCHEDULES="$(curl -fsS "$BASE/v1/schedules")"
echo "$SCHEDULES"
grep -q '"name":"smoke"' <<<"$SCHEDULES" || { echo "config schedule not registered"; exit 1; }

echo "== submit a grid job with duplicate cells"
GRID_SUBMIT="$(curl -fsS -X POST "$BASE/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"grid":{"base":{"predictor":"stems","workload":"em3d","accesses":30000},
       "axes":[{"knob":"stems.lookahead","values":[4,4,8]}]}}')"
echo "$GRID_SUBMIT"
GJOB="$(jsonfield "$GRID_SUBMIT" id)"
[[ "$GJOB" == j-* ]] || { echo "no job id in grid response"; exit 1; }
# The grid expanded server-side into its 3 cells.
grep -q '"runs_total":3' <<<"$GRID_SUBMIT" || { echo "grid not expanded to 3 runs: $GRID_SUBMIT"; exit 1; }

echo "== poll $GJOB to completion"
GSTATE=""
for _ in $(seq 1 300); do
  GSTATUS="$(curl -fsS "$BASE/v1/jobs/$GJOB")"
  GSTATE="$(jsonfield "$GSTATUS" state)"
  [[ "$GSTATE" == "done" || "$GSTATE" == "failed" || "$GSTATE" == "canceled" ]] && break
  sleep 0.1
done
[[ "$GSTATE" == "done" ]] || { echo "grid job ended in state '$GSTATE'"; cat "$LOG"; exit 1; }
# 3 cells, but the duplicate was a cache hit: only 2 unique cells computed.
grep -q '"runs_done":3' <<<"$GSTATUS" || { echo "grid runs_done != 3: $GSTATUS"; exit 1; }
grep -q '"cache_hits":1' <<<"$GSTATUS" || { echo "grid duplicate cell not deduped (cache_hits != 1): $GSTATUS"; exit 1; }

echo "== wait for a schedule fire and its webhook delivery"
DELIVERED=""
for _ in $(seq 1 300); do
  SINK_STATS="$(curl -fsS "http://$SINK_ADDR/stats")"
  DELIVERED="$(jsonfield "$SINK_STATS" delivered)"
  [[ -n "$DELIVERED" && "$DELIVERED" -ge 1 ]] && break
  sleep 0.1
done
echo "$SINK_STATS"
[[ "$DELIVERED" -ge 1 ]] || { echo "no notification delivered to sink: $SINK_STATS"; cat "$LOG"; exit 1; }
# -fail-first 1 made the first attempt a 500, so delivery took a retry.
[[ "$(jsonfield "$SINK_STATS" requests)" -ge 2 ]] || { echo "sink saw no retry: $SINK_STATS"; exit 1; }

echo "== grid/schedule/notification counters in the JSON document"
CMETRICS="$(curl -fsS "$BASE/metrics")"
echo "$CMETRICS"
[[ "$(jsonfield "$CMETRICS" grid_jobs)" == "1" ]] || { echo "grid_jobs != 1"; exit 1; }
[[ "$(jsonfield "$CMETRICS" schedules)" == "1" ]] || { echo "sched.schedules != 1"; exit 1; }
[[ "$(jsonfield "$CMETRICS" schedule_fires)" -ge 1 ]] || { echo "schedule_fires < 1"; exit 1; }
[[ "$(jsonfield "$CMETRICS" notifications_sent)" -ge 1 ]] || { echo "notifications_sent < 1"; exit 1; }
[[ "$(jsonfield "$CMETRICS" notification_retries)" -ge 1 ]] || { echo "notification_retries < 1"; exit 1; }

echo "== and in the Prometheus exposition"
CPROM="$(curl -fsS "$BASE/metrics?format=prometheus")"
[[ -n "$OUT" ]] && printf '%s\n' "$CPROM" >"$OUT/metrics-sched.prom"
grep -q '^stemsd_grid_jobs_total 1$' <<<"$CPROM" || { echo "exposition grid_jobs != 1"; exit 1; }
grep -q '^stemsd_schedules 1$' <<<"$CPROM" || { echo "exposition schedules gauge != 1"; exit 1; }
grep -Eq '^stemsd_schedule_fires_total [1-9]' <<<"$CPROM" || { echo "exposition missing schedule fires"; exit 1; }
grep -Eq '^stemsd_notifications_sent_total\{notifier="sink"\} [1-9]' <<<"$CPROM" || { echo "exposition missing notifications sent"; exit 1; }
grep -q '^stemsd_build_info{' <<<"$CPROM" || { echo "exposition missing build info gauge"; exit 1; }

echo "== third SIGTERM drains cleanly (scheduler stops, notifications flush)"
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
if [[ "$EXIT" -ne 0 ]]; then
  echo "daemon exited $EXIT after config-file SIGTERM:"; cat "$LOG"; exit 1
fi
PID=""
grep -q "drained, exiting" "$LOG" || { echo "no clean-drain log line:"; cat "$LOG"; exit 1; }

echo "== smoke OK"
