// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so CI can archive one BENCH_<rev>.json
// per commit and the performance trajectory is diffable across PRs
// without re-parsing free-form logs.
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | benchjson -rev abc1234
//
// Each benchmark line ("BenchmarkX-8  N  12.3 ns/op  4 B/op ...") becomes
// an entry with its iteration count and a metric map keyed by unit
// ("ns/op", "accesses/sec", "B/op", ...). Context lines (goos, goarch,
// cpu, pkg) are carried alongside.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Rev        string      `json:"rev,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	rev := flag.String("rev", "", "revision identifier recorded in the output")
	flag.Parse()

	rep := report{Rev: *rev, Benchmarks: []benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line: a name, an iteration count, then
// value/unit pairs.
func parseBench(line, pkg string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", maxprocsSuffix(fields[0]))),
		Pkg:        pkg,
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// maxprocsSuffix extracts the trailing -N GOMAXPROCS suffix (0 if none).
func maxprocsSuffix(name string) int {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
