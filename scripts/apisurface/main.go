// Command apisurface prints the exported API surface of the public
// stems package as deterministic text: every exported const, var, type
// (with exported fields), function, and method, one gofmt-printed
// declaration per block, sorted. CI diffs the output against the
// checked-in api.txt, so any change to the public surface — adding,
// removing, or re-typing — must be made deliberately by regenerating
// the file:
//
//	go run ./scripts/apisurface > api.txt
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pkg, ok := pkgs["stems"]
	if !ok {
		fmt.Fprintf(os.Stderr, "no package stems in %s (found %v)\n", dir, keys(pkgs))
		os.Exit(1)
	}

	var blocks []string
	add := func(node any) {
		var buf bytes.Buffer
		cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
		if err := cfg.Fprint(&buf, fset, node); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		blocks = append(blocks, buf.String())
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				d.Body = nil // signature only
				d.Doc = nil
				add(d)
			case *ast.GenDecl:
				if d.Tok == token.IMPORT {
					continue
				}
				specs := exportedSpecs(d)
				if len(specs) == 0 {
					continue
				}
				add(&ast.GenDecl{Tok: d.Tok, Lparen: 1, Specs: specs, Rparen: 2})
			}
		}
	}

	sort.Strings(blocks)
	for _, b := range blocks {
		fmt.Println(b)
		fmt.Println()
	}
}

// exportedSpecs filters a const/var/type declaration down to its
// exported specs, stripping doc comments and unexported struct fields /
// interface methods so the output tracks the surface, not the prose.
func exportedSpecs(d *ast.GenDecl) []ast.Spec {
	var out []ast.Spec
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			s.Doc, s.Comment = nil, nil
			if st, ok := s.Type.(*ast.StructType); ok && st.Fields != nil {
				var fields []*ast.Field
				for _, f := range st.Fields.List {
					if fieldExported(f) {
						f.Doc, f.Comment = nil, nil
						fields = append(fields, f)
					}
				}
				st.Fields.List = fields
			}
			out = append(out, s)
		case *ast.ValueSpec:
			var names []*ast.Ident
			for _, n := range s.Names {
				if n.IsExported() {
					names = append(names, n)
				}
			}
			if len(names) == 0 {
				continue
			}
			s.Doc, s.Comment = nil, nil
			out = append(out, &ast.ValueSpec{Names: names, Type: s.Type, Values: s.Values})
		}
	}
	return out
}

func fieldExported(f *ast.Field) bool {
	if len(f.Names) == 0 {
		return true // embedded
	}
	for _, n := range f.Names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

func keys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
