#!/usr/bin/env bash
# bench.sh — run the repository benchmark suite and emit machine-readable
# results.
#
# Produces two artifacts in $OUT_DIR (default: bench/, beside the
# committed baseline — see bench/README.md for the layout):
#   bench.txt          raw `go test -bench` output (benchstat-compatible)
#   BENCH_<rev>.json   parsed per-benchmark metrics (scripts/benchjson)
#
# The JSON file is what CI uploads per commit — and what lands in bench/
# when a perf PR archives its measurement — so the performance trajectory
# (replay ns/op, accesses/sec, coverage metrics, allocs) is tracked
# across PRs instead of living only in transient logs.
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1x: smoke every benchmark)
#   BENCHRE    benchmark name regex (default '.': the full suite)
#   OUT_DIR    artifact directory (default bench/)
#   SERVERBENCH_ACCESSES  per-run trace length for the stemsd throughput
#                         probe (default 200000; see scripts/serverbench)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
BENCHRE="${BENCHRE:-.}"
OUT_DIR="${OUT_DIR:-bench}"
mkdir -p "$OUT_DIR"

rev="$(git rev-parse --short HEAD 2>/dev/null || echo local)"

go test -run '^$' -bench "$BENCHRE" -benchtime "$BENCHTIME" -benchmem ./... \
  | tee "$OUT_DIR/bench.txt"

# Service-side throughput: boot a real stemsd stack, drive one job, and
# append the accesses/sec figure from /metrics in benchstat format so the
# BENCH_<rev>.json trajectory carries server datapoints too.
go run ./scripts/serverbench -accesses "${SERVERBENCH_ACCESSES:-200000}" \
  | tee -a "$OUT_DIR/bench.txt"

go run ./scripts/benchjson -rev "$rev" \
  < "$OUT_DIR/bench.txt" \
  > "$OUT_DIR/BENCH_${rev}.json"

echo "wrote $OUT_DIR/bench.txt and $OUT_DIR/BENCH_${rev}.json"
