// Command serverbench measures service-side simulation throughput: it
// boots a real stemsd stack (service + HTTP server) on a loopback port,
// drives one job through the public client, and reports the accesses/sec
// figure from /metrics — in `go test -bench` output format, so
// scripts/bench.sh can append it to bench.txt and scripts/benchjson
// records it into BENCH_<rev>.json alongside the engine benchmarks. This
// is how the perf trajectory gets server-side datapoints per commit.
//
//	BenchmarkStemsdThroughput        1     2731506 accesses/sec    ...
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"stems"
	"stems/internal/server"
	"stems/internal/service"
)

func main() {
	var (
		wl       = flag.String("workload", "em3d", "workload to drive")
		accesses = flag.Int("accesses", 200_000, "trace length per run")
		runs     = flag.Int("runs", 4, "distinct runs in the job (different seeds; exercises the queue, not the cache)")
		workers  = flag.Int("workers", 0, "service workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("serverbench: ")

	svc, err := service.New(service.Config{Workers: *workers, QueueBound: 64})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: server.New(svc)}
	go httpSrv.Serve(ln) //nolint:errcheck // torn down with the process

	ctx := context.Background()
	c := stems.NewClient("http://"+ln.Addr().String(), nil)

	spec := stems.JobSpec{}
	for i := 0; i < *runs; i++ {
		spec.Runs = append(spec.Runs, stems.RunSpec{
			Predictor: "stems", Workload: *wl, Seed: int64(i + 1), Accesses: *accesses,
		})
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	if final.State != stems.JobDone {
		log.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if m.AccessesSimulated == 0 || m.AccessesPerSec <= 0 {
		log.Fatalf("no throughput recorded: %+v", m)
	}
	svc.Drain()

	// One benchstat-compatible result, preceded by a pkg context line so
	// benchjson attributes it here and not to the previous suite entry:
	// name, iteration count, then value/unit pairs (exactly the shape
	// scripts/benchjson parses).
	fmt.Fprintf(os.Stdout, "pkg: stems/scripts/serverbench\n")
	fmt.Fprintf(os.Stdout, "BenchmarkStemsdThroughput \t %8d\t %12.0f accesses/sec\t %d accesses\t %12.2f job-wall-sec\n",
		1, m.AccessesPerSec, m.AccessesSimulated, m.UptimeSec)
}
