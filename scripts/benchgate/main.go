// Command benchgate compares a freshly produced BENCH_<rev>.json (see
// scripts/benchjson) against the committed baseline and fails — exit 1 —
// when a gated metric regressed by more than the allowed fraction. It is
// the CI tripwire that turns the per-commit perf trajectory into an
// enforced floor instead of an archive nobody reads.
//
//	go run ./scripts/benchgate -baseline bench/baseline.json -current BENCH_abc1234.json
//
// Only benchmarks present in BOTH files and carrying the gated metric
// are compared; new or renamed benchmarks never fail the gate (they
// start gating once they land in the refreshed baseline). The default
// gated metric is "accesses/sec" (higher is better) from the stemsd
// service-throughput probe — a whole-trace measurement that is stable
// enough on shared runners, unlike 1-iteration ns/op samples. Latency
// metrics gate with -direction lower, e.g. the STeMS kernel probe
// (median-of-K whole-trace replays, see BenchmarkStepBlockMedianSTeMS):
//
//	go run ./scripts/benchgate -baseline bench/baseline.json -current bench/BENCH_abc1234.json \
//	    -metric median-step-ns -direction lower -match StepBlockMedian
//
// Refresh the baseline deliberately after an accepted perf change:
//
//	OUT_DIR=bench ./scripts/bench.sh && cp bench/BENCH_<rev>.json bench/baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

type benchmark struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Rev        string      `json:"rev,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// metricIndex maps pkg/name to the gated metric's value for benchmarks
// matching re.
func metricIndex(r report, metric string, re *regexp.Regexp) map[string]float64 {
	idx := make(map[string]float64)
	for _, b := range r.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		if v, ok := b.Metrics[metric]; ok && v > 0 {
			idx[b.Pkg+"/"+b.Name] = v
		}
	}
	return idx
}

func main() {
	baselinePath := flag.String("baseline", "bench/baseline.json", "committed baseline report")
	currentPath := flag.String("current", "", "freshly measured report (required)")
	metric := flag.String("metric", "accesses/sec", "gated metric key")
	direction := flag.String("direction", "higher", "which way is better for the metric: \"higher\" (throughput) or \"lower\" (latency)")
	match := flag.String("match", ".", "regexp selecting which benchmarks to gate (by name)")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional regression before failing")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	if *direction != "higher" && *direction != "lower" {
		fmt.Fprintf(os.Stderr, "benchgate: bad -direction %q (choose \"higher\" or \"lower\")\n", *direction)
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: bad -match:", err)
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	baseIdx := metricIndex(base, *metric, re)
	curIdx := metricIndex(cur, *metric, re)
	if len(baseIdx) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: baseline %s has no %q datapoints\n", *baselinePath, *metric)
		os.Exit(2)
	}

	failed := false
	compared := 0
	for name, baseVal := range baseIdx {
		curVal, ok := curIdx[name]
		if !ok {
			fmt.Printf("benchgate: %s: gone from current report (not gated)\n", name)
			continue
		}
		compared++
		change := curVal/baseVal - 1
		// Normalize so "regressed" is always a negative change: for
		// lower-is-better metrics an increase is the regression.
		regress := change
		if *direction == "lower" {
			regress = -change
		}
		status := "ok"
		if regress < -*maxRegress {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("benchgate: %-60s %s %14.0f -> %14.0f (%+.1f%%, %s is better, floor %.0f%%) %s\n",
			name, *metric, baseVal, curVal, 100*change, *direction, -100**maxRegress, status)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark overlaps baseline on %q — refresh bench/baseline.json\n", *metric)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: %q regression beyond %.0f%% vs %s (rev %s)\n",
			*metric, 100**maxRegress, *baselinePath, base.Rev)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within %.0f%% of baseline (rev %s)\n", compared, 100**maxRegress, base.Rev)
}
