// Command webhooksink is a tiny webhook receiver for smoke tests: it
// counts notification POSTs, optionally failing the first -fail-first of
// them with a 500 so the sender's retry path is exercised, and reports
// what it saw on GET /stats as compact JSON.
//
//	webhooksink -addr 127.0.0.1:18092 -fail-first 1
//
// POST /notify  — the webhook target; body is read and discarded.
// GET  /stats   — {"requests":N,"delivered":M}: total POSTs seen and
//                 POSTs answered 2xx.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync/atomic"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:18092", "listen address")
	failFirst := flag.Int64("fail-first", 0, "answer the first N notification POSTs with a 500 (exercises sender retries)")
	flag.Parse()

	var requests, delivered atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /notify", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck // body content is irrelevant
		if n := requests.Add(1); n <= *failFirst {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		delivered.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"requests":%d,"delivered":%d}`+"\n", requests.Load(), delivered.Load())
	})

	log.Printf("webhooksink listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
