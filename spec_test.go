package stems_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"stems"
)

// TestWithKnobsMatchesConfigure is half the acceptance criterion: a run
// configured imperatively (WithConfigure closure) and the equivalent
// declarative knob map must produce byte-identical results.
func TestWithKnobsMatchesConfigure(t *testing.T) {
	ctx := context.Background()
	imperative, err := stems.New(
		stems.WithWorkload("em3d"),
		stems.WithAccesses(20_000),
		stems.WithSystem(stems.ScaledSystem()),
		stems.WithConfigure(func(o *stems.Options) {
			o.STeMS.RMOBEntries = 16 << 10
			o.STeMS.Lookahead = 4
			o.Scientific = false
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	declarative, err := stems.New(
		stems.WithWorkload("em3d"),
		stems.WithAccesses(20_000),
		stems.WithSystem(stems.ScaledSystem()),
		stems.WithKnobs(map[string]stems.Value{
			"stems.rmob_entries": stems.IntValue(16 << 10),
			"stems.lookahead":    stems.IntValue(4),
			"scientific":         stems.BoolValue(false),
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if imperative.Options() != declarative.Options() {
		t.Fatalf("effective options differ:\n configure: %+v\n knobs:     %+v",
			imperative.Options(), declarative.Options())
	}
	a, err := imperative.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := declarative.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := json.Marshal(stems.EncodeResult("", a))
	bb, _ := json.Marshal(stems.EncodeResult("", b))
	if string(ab) != string(bb) {
		t.Errorf("results differ:\n configure: %s\n knobs:     %s", ab, bb)
	}
}

// TestSpecRoundTrip: Runner → Spec → FromSpec reproduces the effective
// configuration exactly, including WithConfigure edits the spec has to
// express as knob diffs.
func TestSpecRoundTrip(t *testing.T) {
	r, err := stems.New(
		stems.WithPredictor("stems"),
		stems.WithWorkload("Zeus"),
		stems.WithSeed(7),
		stems.WithAccesses(12_345),
		stems.WithLabel("round-trip"),
		stems.WithSystem(stems.ScaledSystem()),
		stems.WithConfigure(func(o *stems.Options) {
			o.STeMS.PSTEntries = 4 << 10
			o.System.MLP = 2.5
			o.SMS.UseCounters = false
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := r.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Predictor != "stems" || spec.Workload != "Zeus" || spec.Seed != 7 ||
		spec.Accesses != 12_345 || spec.Label != "round-trip" || spec.System != "scaled" {
		t.Errorf("spec fields = %+v", spec)
	}
	for _, want := range []string{"stems.pst_entries", "system.mlp", "sms.use_counters"} {
		if _, ok := spec.Knobs[want]; !ok {
			t.Errorf("spec.Knobs missing %q: %v", want, spec.Knobs)
		}
	}

	back, err := stems.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if back.Options() != r.Options() {
		t.Errorf("round-tripped options differ:\n got  %+v\n want %+v", back.Options(), r.Options())
	}
	if back.Predictor() != r.Predictor() || back.Label() != r.Label() {
		t.Errorf("identity fields differ: %s/%s vs %s/%s",
			back.Predictor(), back.Label(), r.Predictor(), r.Label())
	}

	// A spec is wire data: it must survive JSON untouched.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded stems.Spec
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	viaWire, err := stems.FromSpec(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if viaWire.Options() != r.Options() {
		t.Errorf("options differ after a JSON hop:\n got  %+v\n want %+v", viaWire.Options(), r.Options())
	}
}

// TestSpecOfDefaultRunnerNamesPaperSystem: New's default is the paper
// system, the wire default is scaled — Spec must say so explicitly.
func TestSpecOfDefaultRunnerNamesPaperSystem(t *testing.T) {
	r, err := stems.New()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := r.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.System != "paper" {
		t.Errorf("System = %q, want \"paper\"", spec.System)
	}
	if len(spec.Knobs) != 0 {
		t.Errorf("default Runner has knob diffs: %v", spec.Knobs)
	}
	back, err := stems.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if back.Options() != r.Options() {
		t.Errorf("options differ:\n got  %+v\n want %+v", back.Options(), r.Options())
	}
}

// TestSpecCustomSystemAsKnobs: a hand-built system serializes as
// system.* knob diffs against whichever named baseline needs fewer of
// them (both need two here, so the scaled wire default wins the tie).
func TestSpecCustomSystemAsKnobs(t *testing.T) {
	sys := stems.PaperSystem()
	sys.L2SizeBytes = 2 << 20
	sys.MLP = 8
	r, err := stems.New(stems.WithWorkload("DB2"), stems.WithSystem(sys))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := r.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.System != "scaled" && spec.System != "paper" {
		t.Errorf("System = %q, want a named baseline", spec.System)
	}
	if v, ok := spec.Knobs["system.l2_size_bytes"]; !ok || v != stems.IntValue(2<<20) {
		t.Errorf("knobs = %v, want system.l2_size_bytes=2MB", spec.Knobs)
	}
	back, err := stems.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if back.Options() != r.Options() {
		t.Errorf("options differ:\n got  %+v\n want %+v", back.Options(), r.Options())
	}
}

// TestSpecScientificDefaulting: the workload-class lookahead default is
// part of the baseline, not a knob diff — and pinning it off is one.
func TestSpecScientificDefaulting(t *testing.T) {
	r, err := stems.New(stems.WithWorkload("em3d")) // scientific workload
	if err != nil {
		t.Fatal(err)
	}
	spec, err := r.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Knobs) != 0 {
		t.Errorf("class-defaulted run should have no knob diffs, got %v", spec.Knobs)
	}

	pinned, err := stems.New(stems.WithWorkload("em3d"),
		stems.WithKnobs(map[string]stems.Value{"scientific": stems.BoolValue(false)}))
	if err != nil {
		t.Fatal(err)
	}
	pspec, err := pinned.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := pspec.Knobs["scientific"]; !ok || v != stems.BoolValue(false) {
		t.Errorf("pinned scientific flag not in spec: %v", pspec.Knobs)
	}
	back, err := stems.FromSpec(pspec)
	if err != nil {
		t.Fatal(err)
	}
	if back.Options().Scientific {
		t.Error("round-tripped spec lost the pinned scientific=false")
	}
}

// TestWithKnobsValidation: bad knob maps fail New with the offending
// knob named.
func TestWithKnobsValidation(t *testing.T) {
	cases := []struct {
		name  string
		knobs map[string]stems.Value
		want  string
	}{
		{"unknown", map[string]stems.Value{"stems.rmob": stems.IntValue(1)}, "unknown knob"},
		{"kind", map[string]stems.Value{"stems.rmob_entries": stems.BoolValue(true)}, "wants an integer"},
		{"bounds", map[string]stems.Value{"stems.counter_threshold": stems.IntValue(9)}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := stems.New(stems.WithKnobs(tc.knobs))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestWithKnobsMerge: repeated WithKnobs calls merge, later wins.
func TestWithKnobsMerge(t *testing.T) {
	r, err := stems.New(
		stems.WithKnobs(map[string]stems.Value{"stems.lookahead": stems.IntValue(2), "stems.svb_entries": stems.IntValue(32)}),
		stems.WithKnobs(map[string]stems.Value{"stems.lookahead": stems.IntValue(6)}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Options().STeMS.Lookahead; got != 6 {
		t.Errorf("lookahead = %d, want the later WithKnobs value 6", got)
	}
	if got := r.Options().STeMS.SVBEntries; got != 32 {
		t.Errorf("svb = %d, want 32 from the earlier map", got)
	}
}

// TestKnobsApplyAfterConfigure: knobs are the declarative form and win
// over closures, regardless of option order.
func TestKnobsApplyAfterConfigure(t *testing.T) {
	r, err := stems.New(
		stems.WithKnobs(map[string]stems.Value{"stems.rmob_entries": stems.IntValue(4096)}),
		stems.WithConfigure(func(o *stems.Options) { o.STeMS.RMOBEntries = 99 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Options().STeMS.RMOBEntries; got != 4096 {
		t.Errorf("RMOBEntries = %d, want the knob value 4096", got)
	}
}

// TestSpecNotExpressible: trace-file and custom-source runs have no Spec.
func TestSpecNotExpressible(t *testing.T) {
	r, err := stems.New(stems.WithTrace([]stems.Access{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Spec(); err == nil {
		t.Error("expected an error for a slice-sourced Runner")
	}
}

// TestSpecRejectsWorkloadSpec: a WithWorkloadSpec workload is not
// wire-resolvable — even (especially) when its name collides with a
// suite workload, where a silent Spec would round-trip to a different
// generator.
func TestSpecRejectsWorkloadSpec(t *testing.T) {
	custom, err := stems.WorkloadByName("DB2")
	if err != nil {
		t.Fatal(err)
	}
	custom.Generate = func(seed int64, n int) []stems.Access { return nil }
	r, err := stems.New(stems.WithWorkloadSpec(custom))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Spec(); err == nil || !strings.Contains(err.Error(), "WithWorkloadSpec") {
		t.Errorf("err = %v, want a WithWorkloadSpec-not-expressible error", err)
	}
}

// TestFromSpecUnknownSystem rejects bad system names before building.
func TestFromSpecUnknownSystem(t *testing.T) {
	if _, err := stems.FromSpec(stems.Spec{System: "huge"}); err == nil ||
		!strings.Contains(err.Error(), "unknown system") {
		t.Errorf("error = %v, want unknown system", err)
	}
}
