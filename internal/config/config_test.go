package config

import "testing"

func TestDefaultSystemValid(t *testing.T) {
	if err := DefaultSystem().Validate(); err != nil {
		t.Fatalf("default system invalid: %v", err)
	}
}

func TestSystemValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*System){
		func(s *System) { s.L1SizeBytes = 0 },
		func(s *System) { s.L2SizeBytes = -1 },
		func(s *System) { s.L1Ways = 0 },
		func(s *System) { s.L2Ways = 0 },
		func(s *System) { s.MLP = 0.5 },
		func(s *System) { s.MemChannels = 0 },
		func(s *System) { s.OffChipCycles = 0 },
	}
	for i, m := range mut {
		s := DefaultSystem()
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTable1Values(t *testing.T) {
	s := DefaultSystem()
	if s.L1SizeBytes != 64<<10 || s.L1Ways != 2 {
		t.Errorf("L1 = %d/%d-way, want 64KB/2-way", s.L1SizeBytes, s.L1Ways)
	}
	if s.L2SizeBytes != 8<<20 || s.L2Ways != 8 {
		t.Errorf("L2 = %d/%d-way, want 8MB/8-way", s.L2SizeBytes, s.L2Ways)
	}
	if s.L2HitCycles != 25 {
		t.Errorf("L2 hit = %d cycles, want 25", s.L2HitCycles)
	}
}

func TestPaperPredictorSizes(t *testing.T) {
	sms, tms, st := DefaultSMS(), DefaultTMS(), DefaultSTeMS()
	if sms.PHTEntries != 16<<10 {
		t.Errorf("SMS PHT = %d, want 16K", sms.PHTEntries)
	}
	if tms.CMOBEntries != 384<<10 {
		t.Errorf("TMS CMOB = %d, want 384K", tms.CMOBEntries)
	}
	if st.RMOBEntries != 128<<10 {
		t.Errorf("STeMS RMOB = %d, want 128K", st.RMOBEntries)
	}
	if st.PSTEntries != 16<<10 || st.AGTEntries != 64 || st.ReconBufEntries != 256 {
		t.Errorf("STeMS sizes = PST %d AGT %d recon %d", st.PSTEntries, st.AGTEntries, st.ReconBufEntries)
	}
	if st.ReconSearch != 2 {
		t.Errorf("recon search = %d, want 2", st.ReconSearch)
	}
	if tms.StreamQueues != 8 || tms.Lookahead != 8 || tms.SVBEntries != 64 {
		t.Errorf("TMS streaming = %+v", tms)
	}
}

// §4.3: "A spatial sequence requires 32*10 bits = 40 bytes ... an AGT (64
// entries) requires 2.5KB of SRAM. With 16K entries, the PST requires 640KB
// per processor." RMOB: "8B per entry ... 128K entries (1MB) for STeMS"
// versus 384K entries (~2MB) for TMS.
func TestStorageMatchesSection43(t *testing.T) {
	st := Storage(DefaultSMS(), DefaultTMS(), DefaultSTeMS())
	if st.AGT != 2560 { // 2.5KB
		t.Errorf("AGT storage = %d, want 2560", st.AGT)
	}
	if st.PST != 640<<10 {
		t.Errorf("PST storage = %d, want 640KB", st.PST)
	}
	if st.RMOB != 1<<20 {
		t.Errorf("RMOB storage = %d, want 1MB", st.RMOB)
	}
	if st.CMOB < (19<<16) || st.CMOB > (2<<20) { // ~1.9MB
		t.Errorf("CMOB storage = %d, want ~2MB", st.CMOB)
	}
	if st.PHT != 64<<10 {
		t.Errorf("PHT storage = %d, want 64KB", st.PHT)
	}
	// §4.3 headline: STeMS temporal storage is half of TMS's.
	if !(st.RMOB*2 <= st.CMOB+st.RMOB) {
		t.Errorf("RMOB (%d) not smaller than CMOB (%d)", st.RMOB, st.CMOB)
	}
}
