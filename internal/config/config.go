// Package config collects every tunable of the reproduction in one place,
// mirroring Table 1 of the paper (system parameters) and §4.3 (predictor
// hardware budgets). Defaults correspond to the paper's configuration,
// scaled where noted for trace-driven simulation speed.
package config

import "fmt"

// System models the node parameters of Table 1 (left column) reduced to the
// quantities our trace-driven timing model consumes.
type System struct {
	// L1SizeBytes and L1Ways describe the split L1d (64KB 2-way).
	L1SizeBytes int
	L1Ways      int
	// L2SizeBytes and L2Ways describe the unified L2 (8MB 8-way).
	L2SizeBytes int
	L2Ways      int

	// CoreCyclesPerAccess approximates the non-memory CPI contribution per
	// traced access of the 4-wide OoO core.
	CoreCyclesPerAccess uint64
	// L2HitCycles is the L2 hit latency (Table 1: 25 cycles).
	L2HitCycles uint64
	// SVBHitCycles is the cost of consuming a ready block from the
	// streamed value buffer.
	SVBHitCycles uint64
	// OffChipCycles is the end-to-end latency of an off-chip miss:
	// 40ns DRAM + interconnect hops at 4GHz (Table 1) ≈ 400 cycles.
	OffChipCycles uint64
	// MLP is the average number of *independent* off-chip misses the OoO
	// core overlaps (96-entry ROB). Dependent (pointer-chase) misses pay
	// full latency; independent ones pay OffChipCycles/MLP. This is the
	// mechanism behind §5.6's observation that SMS's spatially-predictable
	// accesses "are already issued in parallel by out-of-order processing".
	MLP float64
	// MemChannels and ChannelOccupancy model bandwidth: each off-chip
	// transfer (demand or prefetch) occupies one of MemChannels for
	// ChannelOccupancy cycles; saturation delays completions.
	MemChannels      int
	ChannelOccupancy uint64
}

// DefaultSystem returns the Table 1 configuration.
func DefaultSystem() System {
	return System{
		L1SizeBytes:         64 << 10,
		L1Ways:              2,
		L2SizeBytes:         8 << 20,
		L2Ways:              8,
		CoreCyclesPerAccess: 1,
		L2HitCycles:         25,
		SVBHitCycles:        4,
		OffChipCycles:       400,
		MLP:                 4.0,
		MemChannels:         4,
		ChannelOccupancy:    30,
	}
}

// ScaledSystem returns the configuration used by the experiment harness:
// Table 1 latencies and L1 geometry, but with the L2 scaled from 8MB to
// 1MB. The paper simulates 5-billion-instruction samples against a 10GB
// database; our traces are ~half a million accesses, so cache capacity must
// shrink with the trace for workloads to exercise off-chip behaviour at
// all — the standard scaling practice in trace-driven studies. The L1 keeps
// its Table 1 size because spatial generation lifetimes (AGT behaviour)
// depend on it directly.
func ScaledSystem() System {
	s := DefaultSystem()
	s.L2SizeBytes = 1 << 20
	return s
}

// Validate reports configuration errors.
func (s System) Validate() error {
	if s.L1SizeBytes <= 0 || s.L2SizeBytes <= 0 || s.L1Ways <= 0 || s.L2Ways <= 0 {
		return fmt.Errorf("config: non-positive cache geometry")
	}
	if s.MLP < 1 {
		return fmt.Errorf("config: MLP %v < 1", s.MLP)
	}
	if s.MemChannels <= 0 {
		return fmt.Errorf("config: MemChannels %d <= 0", s.MemChannels)
	}
	if s.OffChipCycles == 0 {
		return fmt.Errorf("config: zero off-chip latency")
	}
	return nil
}

// Stride holds the baseline stride prefetcher parameters (Table 1:
// "32-entry buffer, max 16 distinct strides").
type Stride struct {
	TableEntries int // distinct PC entries tracked
	Degree       int // blocks prefetched per detected stride
}

// DefaultStride returns the Table 1 stride configuration.
func DefaultStride() Stride { return Stride{TableEntries: 16, Degree: 2} }

// SMS holds Spatial Memory Streaming parameters (§2.4, §4.3).
type SMS struct {
	FilterEntries int // filter table entries (single-access regions)
	AccumEntries  int // accumulation table entries (active generations)
	PHTEntries    int // pattern history table entries (16K in the paper)
	PHTWays       int
	// UseCounters selects 2-bit saturating counters per block instead of a
	// bit vector (§4.3: counters halve overpredictions at equal coverage;
	// all paper results use counters).
	UseCounters bool
	// CounterThreshold is the minimum counter value considered a stable,
	// predictable block.
	CounterThreshold uint8
}

// DefaultSMS returns the paper's SMS configuration.
func DefaultSMS() SMS {
	return SMS{
		FilterEntries:    32,
		AccumEntries:     64,
		PHTEntries:       16 << 10,
		PHTWays:          8,
		UseCounters:      true,
		CounterThreshold: 2,
	}
}

// TMS holds Temporal Memory Streaming parameters (§2.2, §4.3).
type TMS struct {
	// CMOBEntries is the circular miss-order buffer size (384K in the
	// paper; configurable for simulation speed — coverage saturates far
	// below the paper's size on our scaled workloads).
	CMOBEntries int
	// StreamQueues is the number of concurrently tracked streams (8).
	StreamQueues int
	// Lookahead is the number of blocks kept in flight per stream (8
	// commercial, 12 scientific).
	Lookahead int
	// SVBEntries is the streamed value buffer capacity (64).
	SVBEntries int
}

// DefaultTMS returns the paper's TMS configuration.
func DefaultTMS() TMS {
	return TMS{CMOBEntries: 384 << 10, StreamQueues: 8, Lookahead: 8, SVBEntries: 64}
}

// Epoch sizes the §6 epoch-based correlation prefetcher (Chou, MICRO 2007
// — reference [6]), included as an extension baseline.
type Epoch struct {
	// TableEntries is the correlation table capacity (lead addresses).
	TableEntries int
	// MaxEpochLen caps recorded epoch membership.
	MaxEpochLen int
	// EpochsAhead is how many future epochs are prefetched per lead hit
	// (depth 1 fetches the next epoch; deeper lookahead chains through
	// stored leads).
	EpochsAhead int
}

// DefaultEpoch mirrors the reference's low-cost design point.
func DefaultEpoch() Epoch {
	return Epoch{TableEntries: 16 << 10, MaxEpochLen: 8, EpochsAhead: 2}
}

// STeMS holds the spatio-temporal streaming parameters (§4).
type STeMS struct {
	// RMOBEntries is the region miss-order buffer size (128K in the paper
	// — one third of TMS's CMOB thanks to spatial filtering, §4.3).
	RMOBEntries int
	// PSTEntries is the pattern sequence table size (16K).
	PSTEntries int
	PSTWays    int
	// AGTEntries is the active generation table size (64).
	AGTEntries int
	// ReconBufEntries is the reconstruction buffer length (256).
	ReconBufEntries int
	// ReconSearch is how far (slots) reconstruction searches around an
	// occupied slot for a free one (±2 places 99% of addresses, §4.3).
	ReconSearch  int
	StreamQueues int
	Lookahead    int
	SVBEntries   int
	// UseCounters mirrors SMS.UseCounters for the PST.
	UseCounters      bool
	CounterThreshold uint8
}

// DefaultSTeMS returns the paper's STeMS configuration.
func DefaultSTeMS() STeMS {
	return STeMS{
		RMOBEntries:      128 << 10,
		PSTEntries:       16 << 10,
		PSTWays:          8,
		AGTEntries:       64,
		ReconBufEntries:  256,
		ReconSearch:      2,
		StreamQueues:     8,
		Lookahead:        8,
		SVBEntries:       64,
		UseCounters:      true,
		CounterThreshold: 2,
	}
}

// StorageBytes estimates predictor storage as §4.3 does.
//
// SMS PHT: 16K entries * 32 blocks * 2 bits = 128KB... the paper quotes
// 64KB for standalone SMS (bit vectors); with counters the PST dominates.
// We report both components so the Table 1 bench can print the §4.3 budget
// comparison.
type StorageBytes struct {
	AGT  int
	PST  int
	PHT  int
	RMOB int
	CMOB int
}

// Storage computes the §4.3 storage budgets for the three predictors.
func Storage(sms SMS, tms TMS, st STeMS) StorageBytes {
	const (
		pstEntryBytes  = 40 // 32 blocks * (2-bit counter + 8-bit delta)
		rmobEntryBytes = 8  // 5B address + 2B PC + 1B delta
		cmobEntryBytes = 5  // address only (TMS; ~5.3B in [26], rounded)
		phtEntryBytes  = 4  // 32-bit pattern vector
	)
	return StorageBytes{
		AGT:  st.AGTEntries * pstEntryBytes,
		PST:  st.PSTEntries * pstEntryBytes,
		PHT:  sms.PHTEntries * phtEntryBytes,
		RMOB: st.RMOBEntries * rmobEntryBytes,
		CMOB: tms.CMOBEntries * cmobEntryBytes,
	}
}
