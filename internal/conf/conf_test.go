package conf

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

// wantErr asserts that every fragment appears in err's message — the
// field name plus enough of the complaint to pin the wording.
func wantErr(t *testing.T, err error, fragments ...string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error mentioning %q, got nil", fragments)
	}
	for _, frag := range fragments {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func TestParseFullDocument(t *testing.T) {
	f := parseOK(t, `{
		"addr": ":9000",
		"workers": 4,
		"queue": 16,
		"cache": 512,
		"traces": 2,
		"retain": 100,
		"drain_timeout": "90s",
		"store": "/tmp/store",
		"store_entries": 2048,
		"peers": ["http://a:1", "http://b:2"],
		"self": "http://a:1",
		"log_level": "debug",
		"log_format": "json",
		"pprof": true,
		"schedule_state": "/tmp/schedules.json",
		"notifiers": [
			{"name": "hook", "type": "webhook", "url": "http://sink:8080/n",
			 "attempts": 5, "backoff": "100ms", "timeout": "2s", "all_jobs": true},
			{"name": "log", "type": "log"}
		],
		"schedules": [
			{"name": "nightly", "cron": "0 3 * * *",
			 "job": {"runs": [{"predictor": "stems", "workload": "em3d", "accesses": 1000}]},
			 "notify": ["hook"]}
		]
	}`)
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if *f.Addr != ":9000" || *f.Workers != 4 || time.Duration(*f.DrainTimeout) != 90*time.Second {
		t.Errorf("scalars misparsed: %+v", f)
	}
	if len(f.Peers) != 2 || len(f.Notifiers) != 2 || len(f.Schedules) != 1 {
		t.Errorf("blocks misparsed: %+v", f)
	}
	if f.Notifiers[0].Attempts != 5 || time.Duration(f.Notifiers[0].Backoff) != 100*time.Millisecond || !f.Notifiers[0].AllJobs {
		t.Errorf("notifier misparsed: %+v", f.Notifiers[0])
	}
}

func TestParseUnknownKey(t *testing.T) {
	_, err := Parse([]byte(`{"adddr": ":9000"}`))
	wantErr(t, err, "unknown field", "adddr")
	_, err = Parse([]byte(`{"notifiers": [{"name": "x", "type": "log", "uri": "y"}]}`))
	wantErr(t, err, "unknown field", "uri")
}

func TestParseBadTypes(t *testing.T) {
	cases := []struct {
		src   string
		field string
	}{
		{`{"addr": 9000}`, "addr"},
		{`{"workers": "four"}`, "workers"},
		{`{"pprof": "yes"}`, "pprof"},
		{`{"peers": "http://a:1"}`, "peers"},
		{`{"store_entries": 1.5}`, "store_entries"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.src))
		wantErr(t, err, c.field)
	}
	// Duration fields speak ParseDuration, not numbers.
	_, err := Parse([]byte(`{"drain_timeout": 90}`))
	wantErr(t, err, "duration")
	_, err = Parse([]byte(`{"drain_timeout": "ninety sec"}`))
	wantErr(t, err, `bad duration "ninety sec"`)
}

func TestParseTrailingData(t *testing.T) {
	_, err := Parse([]byte(`{"addr": ":9000"} {"addr": ":9001"}`))
	wantErr(t, err, "trailing data")
}

func TestValidateScalarRanges(t *testing.T) {
	f := parseOK(t, `{
		"addr": "",
		"workers": -1,
		"queue": -2,
		"cache": -3,
		"traces": -4,
		"retain": -5,
		"store_entries": -6,
		"drain_timeout": "-1s",
		"peers": ["http://a:1", " "],
		"log_level": "loud",
		"log_format": "xml"
	}`)
	err := f.Validate()
	wantErr(t, err,
		"addr: must not be empty",
		"workers: must not be negative (got -1)",
		"queue: must not be negative (got -2)",
		"cache: must not be negative (got -3)",
		"traces: must not be negative (got -4)",
		"retain: must not be negative (got -5)",
		"store_entries: must not be negative (got -6)",
		"drain_timeout: must be positive",
		"peers[1]: must not be empty",
		`log_level: unknown level "loud"`,
		`log_format: unknown format "xml"`,
	)
}

func TestValidateNotifiers(t *testing.T) {
	f := parseOK(t, `{
		"notifiers": [
			{"name": "", "type": "webhook"},
			{"name": "hook", "type": "webhook", "url": "not a url"},
			{"name": "hook", "type": "webhook", "url": "ftp://x/y"},
			{"name": "chatty", "type": "log", "url": "http://x/y"},
			{"name": "odd", "type": "smoke-signal"},
			{"name": "many", "type": "webhook", "url": "http://ok:1/n", "attempts": 11}
		]
	}`)
	err := f.Validate()
	wantErr(t, err,
		"notifiers[0].name: must not be empty",
		"notifiers[0].url: webhook notifier needs a url",
		"notifiers[1].url",
		"notifiers[2].name: duplicate notifier \"hook\"",
		"notifiers[2].url: \"ftp://x/y\" is not an http(s) URL",
		"notifiers[3].url: log notifier takes no url",
		"notifiers[4].type: unknown type \"smoke-signal\"",
		"notifiers[5].attempts: must be 1-10, or 0 for the default (got 11)",
	)
}

func TestValidateSchedules(t *testing.T) {
	f := parseOK(t, `{
		"notifiers": [{"name": "log", "type": "log"}],
		"schedules": [
			{"name": "", "cron": "bogus", "notify": ["log", "mystery"]},
			{"name": "a", "cron": "@every 1m", "job": {"runs": []}},
			{"name": "a", "cron": "0 3 * * *", "job": {"runs": []}}
		]
	}`)
	err := f.Validate()
	wantErr(t, err,
		"schedules[0].name: must not be empty",
		"schedules[0].cron",
		"schedules[0].job: must be set",
		`schedules[0].notify[1]: unknown notifier "mystery"`,
		`schedules[2].name: duplicate schedule "a"`,
	)
	// The one declared notifier is fine.
	if strings.Contains(err.Error(), `unknown notifier "log"`) {
		t.Errorf("declared notifier flagged: %v", err)
	}
}

func TestValidateCollectsAllErrors(t *testing.T) {
	f := parseOK(t, `{"addr": "", "workers": -1, "log_level": "loud"}`)
	err := f.Validate()
	if err == nil {
		t.Fatal("want error")
	}
	if n := strings.Count(err.Error(), "\n  - "); n != 3 {
		t.Errorf("want 3 collected errors, got %d in %q", n, err)
	}
}

func TestApplyPrecedence(t *testing.T) {
	f := parseOK(t, `{
		"addr": ":9000",
		"workers": 4,
		"drain_timeout": "90s",
		"peers": ["http://a:1"],
		"pprof": true,
		"log_level": "debug"
	}`)
	s := Defaults()
	// Simulate `-addr :7777 -pprof` on the command line.
	s.Addr = ":7777"
	s.Pprof = false
	explicit := map[string]bool{"addr": true, "pprof": true}
	f.Apply(&s, func(name string) bool { return explicit[name] })

	if s.Addr != ":7777" {
		t.Errorf("explicit flag lost to file: addr = %q", s.Addr)
	}
	if s.Pprof {
		t.Errorf("explicit -pprof=false lost to file")
	}
	if s.Workers != 4 || s.DrainTimeout != 90*time.Second || s.LogLevel != "debug" {
		t.Errorf("file values not applied: %+v", s)
	}
	if len(s.Peers) != 1 || s.Peers[0] != "http://a:1" {
		t.Errorf("peers not applied: %v", s.Peers)
	}
	// Fields absent from the file keep their defaults.
	if s.Queue != 64 || s.Cache != 256 || s.LogFormat != "text" {
		t.Errorf("defaults disturbed: %+v", s)
	}
}

func TestApplyAbsentFieldsUntouched(t *testing.T) {
	f := parseOK(t, `{}`)
	s := Defaults()
	f.Apply(&s, nil)
	if !reflect.DeepEqual(s, Defaults()) {
		t.Errorf("empty file changed settings: %+v", s)
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stemsd.json")
	if err := os.WriteFile(path, []byte(`{"addr": ":9000"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *f.Addr != ":9000" {
		t.Errorf("addr = %q", *f.Addr)
	}

	if err := os.WriteFile(path, []byte(`{"workers": -1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	wantErr(t, err, path, "workers: must not be negative")

	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}
