// Package conf loads and validates the stemsd config file: a JSON
// document carrying every daemon flag plus the blocks that have no flag
// form — completion notifiers and cron schedules. Loading is strict
// (unknown keys and type mismatches are named, field-level errors) and
// validation is exhaustive: one pass reports every broken field, not the
// first. Flags explicitly set on the command line override their file
// counterparts (Apply), so `stemsd -config stemsd.json -addr :9000`
// means "the file, but on :9000".
package conf

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"slices"
	"strings"
	"time"

	"stems/internal/enc"
	"stems/internal/sched"
)

// Duration is a time.Duration that travels as a JSON string in
// time.ParseDuration syntax ("2m", "90s").
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("want a duration string like \"2m\"")
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration %q", s)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Notifier is one configured completion notifier. Type "webhook" POSTs
// notifications to URL with retry/backoff; type "log" writes one
// structured log line per completion.
type Notifier struct {
	// Name is how schedules reference the notifier; unique per config.
	Name string `json:"name"`
	// Type selects the delivery mechanism: "webhook" or "log".
	Type string `json:"type"`
	// URL receives webhook POSTs (webhook type only).
	URL string `json:"url,omitempty"`
	// Attempts caps delivery attempts per notification, 1-10
	// (webhook only; 0 selects the default, 3).
	Attempts int `json:"attempts,omitempty"`
	// Backoff is the wait after the first failed attempt, doubling per
	// retry (webhook only; 0 selects the default, 250ms).
	Backoff Duration `json:"backoff,omitempty"`
	// Timeout bounds each delivery attempt (webhook only; 0 selects the
	// default, 5s).
	Timeout Duration `json:"timeout,omitempty"`
	// AllJobs notifies this target for every job completion, not only
	// the schedules that name it.
	AllJobs bool `json:"all_jobs,omitempty"`
}

// File is the config-file schema. Scalar fields are pointers so Apply
// can tell "absent" from "set to the zero value"; nil fields leave the
// flag (or its default) in charge.
type File struct {
	Addr          *string            `json:"addr"`
	Workers       *int               `json:"workers"`
	Queue         *int               `json:"queue"`
	Cache         *int               `json:"cache"`
	Traces        *int               `json:"traces"`
	Retain        *int               `json:"retain"`
	DrainTimeout  *Duration          `json:"drain_timeout"`
	Store         *string            `json:"store"`
	StoreEntries  *int               `json:"store_entries"`
	Peers         []string           `json:"peers"`
	Self          *string            `json:"self"`
	LogLevel      *string            `json:"log_level"`
	LogFormat     *string            `json:"log_format"`
	Pprof         *bool              `json:"pprof"`
	ScheduleState *string            `json:"schedule_state"`
	Notifiers     []Notifier         `json:"notifiers"`
	Schedules     []enc.ScheduleSpec `json:"schedules"`
}

// Settings is the daemon's resolved runtime configuration: flag
// defaults, overlaid by the config file, overlaid by explicitly-set
// flags.
type Settings struct {
	Addr         string
	Workers      int
	Queue        int
	Cache        int
	Traces       int
	Retain       int
	DrainTimeout time.Duration
	Store        string
	StoreEntries int
	Peers        []string
	Self         string
	LogLevel     string
	LogFormat    string
	Pprof        bool
	// ScheduleState is the scheduler's fire-state file; empty defers to
	// "<store>/schedules.json" when a store is configured, else
	// memory-only schedules.
	ScheduleState string
	Notifiers     []Notifier
	Schedules     []enc.ScheduleSpec
}

// Defaults mirrors the stemsd flag defaults.
func Defaults() Settings {
	return Settings{
		Addr:         ":8091",
		Queue:        64,
		Cache:        256,
		Traces:       8,
		Retain:       1024,
		DrainTimeout: 2 * time.Minute,
		StoreEntries: 4096,
		LogLevel:     "info",
		LogFormat:    "text",
	}
}

// Load reads, parses, and validates a config file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("conf: %w", err)
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("conf: %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("conf: %s: %w", path, err)
	}
	return f, nil
}

// Parse decodes the config document strictly: an unknown key or a
// wrongly-typed value is an error naming the field.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, namedDecodeError(err)
	}
	// A second document in the file is a structural mistake worth naming.
	if dec.More() {
		return nil, errors.New("trailing data after the config object")
	}
	return &f, nil
}

// namedDecodeError rewrites encoding/json errors into field-level
// messages.
func namedDecodeError(err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) {
		field := typeErr.Field
		if field == "" {
			field = "(document root)"
		}
		return fmt.Errorf("field %q: cannot use JSON %s as %s", field, typeErr.Value, typeErr.Type)
	}
	// DisallowUnknownFields reports `json: unknown field "xyz"`; surface
	// the name without the package prefix.
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		return fmt.Errorf("unknown field %s", strings.TrimPrefix(msg, "json: unknown field "))
	}
	return err
}

// Validate checks every field and reports every violation at once, each
// prefixed with its JSON path.
func (f *File) Validate() error {
	var errs []string
	bad := func(field, format string, args ...any) {
		errs = append(errs, field+": "+fmt.Sprintf(format, args...))
	}

	if f.Addr != nil && *f.Addr == "" {
		bad("addr", "must not be empty")
	}
	nonNegative := func(field string, v *int) {
		if v != nil && *v < 0 {
			bad(field, "must not be negative (got %d)", *v)
		}
	}
	nonNegative("workers", f.Workers)
	nonNegative("queue", f.Queue)
	nonNegative("cache", f.Cache)
	nonNegative("traces", f.Traces)
	nonNegative("retain", f.Retain)
	nonNegative("store_entries", f.StoreEntries)
	if f.DrainTimeout != nil && *f.DrainTimeout <= 0 {
		bad("drain_timeout", "must be positive (got %s)", time.Duration(*f.DrainTimeout))
	}
	for i, p := range f.Peers {
		if strings.TrimSpace(p) == "" {
			bad(fmt.Sprintf("peers[%d]", i), "must not be empty")
		}
	}
	if f.LogLevel != nil && !slices.Contains([]string{"debug", "info", "warn", "error"}, *f.LogLevel) {
		bad("log_level", "unknown level %q (want debug, info, warn, or error)", *f.LogLevel)
	}
	if f.LogFormat != nil && *f.LogFormat != "text" && *f.LogFormat != "json" {
		bad("log_format", "unknown format %q (want text or json)", *f.LogFormat)
	}

	names := make(map[string]bool, len(f.Notifiers))
	for i, n := range f.Notifiers {
		field := fmt.Sprintf("notifiers[%d]", i)
		if n.Name == "" {
			bad(field+".name", "must not be empty")
		} else if names[n.Name] {
			bad(field+".name", "duplicate notifier %q", n.Name)
		}
		names[n.Name] = true
		switch n.Type {
		case "webhook":
			if n.URL == "" {
				bad(field+".url", "webhook notifier needs a url")
			} else if u, err := url.Parse(n.URL); err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				bad(field+".url", "%q is not an http(s) URL", n.URL)
			}
		case "log":
			if n.URL != "" {
				bad(field+".url", "log notifier takes no url")
			}
		default:
			bad(field+".type", "unknown type %q (want webhook or log)", n.Type)
		}
		if n.Attempts < 0 || n.Attempts > 10 {
			bad(field+".attempts", "must be 1-10, or 0 for the default (got %d)", n.Attempts)
		}
		if n.Backoff < 0 {
			bad(field+".backoff", "must not be negative")
		}
		if n.Timeout < 0 {
			bad(field+".timeout", "must not be negative")
		}
	}

	schedNames := make(map[string]bool, len(f.Schedules))
	for i, s := range f.Schedules {
		field := fmt.Sprintf("schedules[%d]", i)
		if s.Name == "" {
			bad(field+".name", "must not be empty")
		} else if schedNames[s.Name] {
			bad(field+".name", "duplicate schedule %q", s.Name)
		}
		schedNames[s.Name] = true
		if c, err := sched.ParseCron(s.Cron); err != nil {
			bad(field+".cron", "%v", err)
		} else if c.Next(time.Now()).IsZero() {
			bad(field+".cron", "%q never fires (no matching date)", s.Cron)
		}
		if s.Job == nil {
			bad(field+".job", "must be set")
		}
		for j, n := range s.Notify {
			if !names[n] {
				bad(fmt.Sprintf("%s.notify[%d]", field, j), "unknown notifier %q", n)
			}
		}
	}

	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("invalid config:\n  - %s", strings.Join(errs, "\n  - "))
}

// Apply overlays the file onto s, skipping any field whose flag the user
// set explicitly — command line beats file, file beats default. explicit
// reports whether the named flag ("drain-timeout", not "drain_timeout")
// was passed; pass a function built on flag.Visit.
func (f *File) Apply(s *Settings, explicit func(flagName string) bool) {
	if explicit == nil {
		explicit = func(string) bool { return false }
	}
	setStr := func(flagName string, dst *string, src *string) {
		if src != nil && !explicit(flagName) {
			*dst = *src
		}
	}
	setInt := func(flagName string, dst *int, src *int) {
		if src != nil && !explicit(flagName) {
			*dst = *src
		}
	}
	setStr("addr", &s.Addr, f.Addr)
	setInt("workers", &s.Workers, f.Workers)
	setInt("queue", &s.Queue, f.Queue)
	setInt("cache", &s.Cache, f.Cache)
	setInt("traces", &s.Traces, f.Traces)
	setInt("retain", &s.Retain, f.Retain)
	if f.DrainTimeout != nil && !explicit("drain-timeout") {
		s.DrainTimeout = time.Duration(*f.DrainTimeout)
	}
	setStr("store", &s.Store, f.Store)
	setInt("store-entries", &s.StoreEntries, f.StoreEntries)
	if f.Peers != nil && !explicit("peers") {
		s.Peers = append([]string(nil), f.Peers...)
	}
	setStr("self", &s.Self, f.Self)
	setStr("log-level", &s.LogLevel, f.LogLevel)
	setStr("log-format", &s.LogFormat, f.LogFormat)
	if f.Pprof != nil && !explicit("pprof") {
		s.Pprof = *f.Pprof
	}
	if f.ScheduleState != nil {
		s.ScheduleState = *f.ScheduleState
	}
	s.Notifiers = append([]Notifier(nil), f.Notifiers...)
	s.Schedules = append([]enc.ScheduleSpec(nil), f.Schedules...)
}
