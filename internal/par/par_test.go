package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderIndependentOfParallelism(t *testing.T) {
	const n = 100
	fn := func(_ context.Context, i int) (int, error) { return i * i, nil }
	serial, err := Map(context.Background(), n, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Map(context.Background(), n, 16, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != i*i || wide[i] != serial[i] {
			t.Fatalf("results[%d]: serial=%d wide=%d want %d", i, serial[i], wide[i], i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(context.Context, int) (int, error) {
		t.Fatal("fn called for empty range")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(context.Background(), 1000, 4, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("all %d items ran despite early failure", got)
	}
}

func TestMapReportsRootCauseError(t *testing.T) {
	// Two genuine failures plus collateral cancellations: the reported
	// error must be a real failure (the lowest-index one that actually
	// ran), never a bystander's context.Canceled.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 50, 8, func(_ context.Context, i int) (int, error) {
			if i == 7 || i == 40 {
				return 0, fmt.Errorf("fail-%d", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("no error reported")
		}
		if got := err.Error(); got != "fail-7" && got != "fail-40" {
			t.Fatalf("err = %q, want a root-cause failure, not a cancellation", got)
		}
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(ctx, 1000, 2, func(ctx context.Context, i int) (int, error) {
		if ran.Add(1) == 5 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatal("cancellation did not stop the map")
	}
}
