package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(context.Background(), 4, 16)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		if err := p.Submit(func(context.Context) { n.Add(1); wg.Done() }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	p.Close()
	if got := n.Load(); got != 16 {
		t.Errorf("ran %d tasks, want 16", got)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(context.Background(), 1, 1)
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is busy; the queue is empty

	if err := p.Submit(func(context.Context) {}); err != nil {
		t.Fatalf("queueing one task: %v", err)
	}
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("error = %v, want ErrQueueFull", err)
	}
	if d := p.QueueDepth(); d != 1 {
		t.Errorf("queue depth = %d, want 1", d)
	}
	close(release)
}

func TestPoolCloseDrainsAndRejects(t *testing.T) {
	p := NewPool(context.Background(), 2, 8)
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		if err := p.Submit(func(context.Context) { n.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if got := n.Load(); got != 8 {
		t.Errorf("after Close, %d of 8 queued tasks ran", got)
	}
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("post-close submit error = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, 1, 4)
	cancel()
	got := make(chan error, 1)
	if err := p.Submit(func(ctx context.Context) { got <- ctx.Err() }); err != nil {
		t.Fatal(err)
	}
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Errorf("task ctx error = %v, want Canceled", err)
	}
	p.Close()
}
