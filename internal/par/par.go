// Package par is the shared fan-out executor: a bounded worker pool that
// maps a function over an index range with deterministic output ordering,
// context cancellation, and fail-fast error propagation. The public sweep
// API and the figures harness both run on it.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(ctx, i) for i in [0, n) on up to parallelism goroutines and
// returns the results indexed by i — output order never depends on
// scheduling. parallelism <= 0 selects GOMAXPROCS. A failing fn cancels
// the derived context and unstarted work; Map then returns the
// lowest-index non-cancellation error (the root cause, not collateral
// cancellations) alongside the partial results, or the context error when
// the parent context itself was cancelled.
func Map[T any](ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				res, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()

	// Report the lowest-index root-cause failure. Runs cancelled as
	// collateral of another run's error sit at lower indices than the run
	// that failed, so a bare cancellation only wins when every failure is
	// one (i.e. the parent context was cancelled).
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return results, err
	}
	return results, firstCancel
}
