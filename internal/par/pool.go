package par

import (
	"context"
	"errors"
	"sync"
)

// Pool errors returned by Submit.
var (
	// ErrQueueFull reports that the bounded task queue is at capacity —
	// the caller should shed load (the server turns it into a 503).
	ErrQueueFull = errors.New("par: task queue full")
	// ErrPoolClosed reports a Submit after Close.
	ErrPoolClosed = errors.New("par: pool closed")
)

// Pool is the long-running counterpart of Map: a fixed set of worker
// goroutines draining a bounded FIFO task queue. Map fans a known index
// range out and returns; a Pool accepts work indefinitely — it is what
// the stemsd service runs jobs on. Submission is non-blocking: a full
// queue rejects with ErrQueueFull instead of stalling the submitter,
// which is the backpressure signal the HTTP layer propagates.
//
// All methods are safe for concurrent use.
type Pool struct {
	ctx   context.Context
	tasks chan func(context.Context)
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines (<= 0 selects one) draining a queue
// of at most queueBound pending tasks (<= 0 selects 1). ctx is handed to
// every task; cancelling it is the pool's hard-stop signal — workers
// still drain the queue, but tasks should observe ctx and return early.
func NewPool(ctx context.Context, workers, queueBound int) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = 1
	}
	if queueBound <= 0 {
		queueBound = 1
	}
	p := &Pool{ctx: ctx, tasks: make(chan func(context.Context), queueBound)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task(p.ctx)
			}
		}()
	}
	return p
}

// Submit enqueues a task without blocking. It fails with ErrQueueFull
// when the queue is at capacity and ErrPoolClosed after Close.
func (p *Pool) Submit(task func(context.Context)) error {
	if task == nil {
		return errors.New("par: nil task")
	}
	// The lock serializes Submit against Close: once closed is set the
	// channel may be closed at any moment, so the send must not race it.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task:
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth returns the number of tasks waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Close stops intake and blocks until the workers have drained every
// queued task. It is idempotent. For a fast shutdown, cancel the pool
// context first so drained tasks exit early.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
