package service

import (
	"encoding/json"
	"testing"

	"stems/internal/enc"
)

func seedRun(workload string, accesses int, seed int64, label string) enc.RunSpec {
	return enc.RunSpec{Predictor: "stems", Workload: workload, Accesses: accesses, Seed: seed, Label: label}
}

// TestLockstepSetByteIdentical is the service-side acceptance check for
// seed-vectorized execution: a job whose runs differ only by seed
// executes as one lockstep set, and every result must be byte-identical
// to the same runs submitted as separate jobs against a fresh daemon.
func TestLockstepSetByteIdentical(t *testing.T) {
	seeds := []int64{1, 7920, 15839}

	// Sequential reference: one daemon, one job per seed.
	ref := mustNew(t, Config{Workers: 1, QueueBound: 8})
	want := make([]string, len(seeds))
	for i, seed := range seeds {
		j, err := ref.Submit(enc.JobSpec{RunSpec: seedRun("em3d", 20_000, seed, "")})
		if err != nil {
			t.Fatal(err)
		}
		st := waitJob(t, j)
		if st.State != enc.JobDone {
			t.Fatalf("reference seed %d: state = %s (err %q)", seed, st.State, st.Error)
		}
		want[i] = string(st.Results[0])
	}
	ref.Drain()

	// Lockstep: one fresh daemon, one job carrying all seeds.
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()
	runs := make([]enc.RunSpec, len(seeds))
	for i, seed := range seeds {
		runs[i] = seedRun("em3d", 20_000, seed, "")
	}
	j, err := svc.Submit(enc.JobSpec{Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobDone {
		t.Fatalf("lockstep job: state = %s (err %q)", st.State, st.Error)
	}
	if len(st.Results) != len(seeds) {
		t.Fatalf("got %d results, want %d", len(st.Results), len(seeds))
	}
	for i := range seeds {
		if string(st.Results[i]) != want[i] {
			t.Errorf("seed %d: lockstep result differs from sequential job:\n lockstep:   %s\n sequential: %s",
				seeds[i], st.Results[i], want[i])
		}
	}
	if st.Progress.CacheHits != 0 {
		t.Errorf("lockstep job reported %d cache hits, want 0 (every seed computed here)", st.Progress.CacheHits)
	}
	if st.Progress.AccessesDone != st.Progress.AccessesTotal {
		t.Errorf("progress = %d/%d, want complete", st.Progress.AccessesDone, st.Progress.AccessesTotal)
	}

	// Each seed's result is individually content-addressed: resubmitting
	// one seed alone must be a pure cache hit.
	j2, err := svc.Submit(enc.JobSpec{RunSpec: seedRun("em3d", 20_000, seeds[1], "")})
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, j2)
	if st2.State != enc.JobDone {
		t.Fatalf("resubmit: state = %s (err %q)", st2.State, st2.Error)
	}
	if st2.Progress.CacheHits != 1 {
		t.Errorf("resubmit of one set member: cache hits = %d, want 1", st2.Progress.CacheHits)
	}
	if string(st2.Results[0]) != want[1] {
		t.Errorf("cached set member differs from sequential result")
	}
}

// TestLockstepSetMixedCells checks that grouping stops at cell
// boundaries: a job interleaving two cells still returns results in
// submission order, each correct for its spec, with labels applied.
func TestLockstepSetMixedCells(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	runs := []enc.RunSpec{
		seedRun("em3d", 20_000, 1, "a"),
		seedRun("em3d", 20_000, 7920, "b"),
		{Predictor: "sms", Workload: "em3d", Accesses: 20_000, Seed: 1, Label: "c"},
		seedRun("em3d", 20_000, 1, "d"), // duplicate of run 0's cell+seed: cache hit
	}
	j, err := svc.Submit(enc.JobSpec{Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	if len(st.Results) != len(runs) {
		t.Fatalf("got %d results, want %d", len(st.Results), len(runs))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		var res struct {
			Label string `json:"label"`
		}
		if err := json.Unmarshal(st.Results[i], &res); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Label != want {
			t.Errorf("result %d: label = %q, want %q", i, res.Label, want)
		}
	}
	if st.Progress.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1 (the duplicate run)", st.Progress.CacheHits)
	}
}

// TestSameCell pins the grouping predicate: seed and label differences
// group, anything else does not.
func TestSameCell(t *testing.T) {
	base := seedRun("DB2", 10_000, 1, "x")
	same := seedRun("DB2", 10_000, 99, "y")
	if !sameCell(&base, &same) {
		t.Error("seed+label variation should share a cell")
	}
	diffs := []enc.RunSpec{
		{Predictor: "sms", Workload: "DB2", Accesses: 10_000, Seed: 1},
		{Predictor: "stems", Workload: "Oracle", Accesses: 10_000, Seed: 1},
		{Predictor: "stems", Workload: "DB2", Accesses: 20_000, Seed: 1},
		{Predictor: "stems", Workload: "DB2", Accesses: 10_000, Seed: 1, System: "paper"},
	}
	b := base
	b.System = "scaled"
	for i := range diffs {
		if diffs[i].System == "" {
			diffs[i].System = "scaled"
		}
		if sameCell(&b, &diffs[i]) {
			t.Errorf("spec %d should not share a cell with the base", i)
		}
	}
}
