package service

import (
	"encoding/json"
	"testing"

	"stems/internal/enc"
	"stems/internal/sim"
)

func seedRun(workload string, accesses int, seed int64, label string) enc.RunSpec {
	return enc.RunSpec{Predictor: "stems", Workload: workload, Accesses: accesses, Seed: seed, Label: label}
}

// TestLockstepSetByteIdentical is the service-side acceptance check for
// seed-vectorized execution: a job whose runs differ only by seed
// executes as one lockstep set, and every result must be byte-identical
// to the same runs submitted as separate jobs against a fresh daemon.
func TestLockstepSetByteIdentical(t *testing.T) {
	seeds := []int64{1, 7920, 15839}

	// Sequential reference: one daemon, one job per seed.
	ref := mustNew(t, Config{Workers: 1, QueueBound: 8})
	want := make([]string, len(seeds))
	for i, seed := range seeds {
		j, err := ref.Submit(enc.JobSpec{RunSpec: seedRun("em3d", 20_000, seed, "")})
		if err != nil {
			t.Fatal(err)
		}
		st := waitJob(t, j)
		if st.State != enc.JobDone {
			t.Fatalf("reference seed %d: state = %s (err %q)", seed, st.State, st.Error)
		}
		want[i] = string(st.Results[0])
	}
	ref.Drain()

	// Lockstep: one fresh daemon, one job carrying all seeds.
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()
	runs := make([]enc.RunSpec, len(seeds))
	for i, seed := range seeds {
		runs[i] = seedRun("em3d", 20_000, seed, "")
	}
	j, err := svc.Submit(enc.JobSpec{Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobDone {
		t.Fatalf("lockstep job: state = %s (err %q)", st.State, st.Error)
	}
	if len(st.Results) != len(seeds) {
		t.Fatalf("got %d results, want %d", len(st.Results), len(seeds))
	}
	for i := range seeds {
		if string(st.Results[i]) != want[i] {
			t.Errorf("seed %d: lockstep result differs from sequential job:\n lockstep:   %s\n sequential: %s",
				seeds[i], st.Results[i], want[i])
		}
	}
	if st.Progress.CacheHits != 0 {
		t.Errorf("lockstep job reported %d cache hits, want 0 (every seed computed here)", st.Progress.CacheHits)
	}
	if st.Progress.AccessesDone != st.Progress.AccessesTotal {
		t.Errorf("progress = %d/%d, want complete", st.Progress.AccessesDone, st.Progress.AccessesTotal)
	}

	// Each seed's result is individually content-addressed: resubmitting
	// one seed alone must be a pure cache hit.
	j2, err := svc.Submit(enc.JobSpec{RunSpec: seedRun("em3d", 20_000, seeds[1], "")})
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, j2)
	if st2.State != enc.JobDone {
		t.Fatalf("resubmit: state = %s (err %q)", st2.State, st2.Error)
	}
	if st2.Progress.CacheHits != 1 {
		t.Errorf("resubmit of one set member: cache hits = %d, want 1", st2.Progress.CacheHits)
	}
	if string(st2.Results[0]) != want[1] {
		t.Errorf("cached set member differs from sequential result")
	}
}

// TestLockstepSetMixedCells checks that grouping stops at cell
// boundaries: a job interleaving two cells still returns results in
// submission order, each correct for its spec, with labels applied.
func TestLockstepSetMixedCells(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	runs := []enc.RunSpec{
		seedRun("em3d", 20_000, 1, "a"),
		seedRun("em3d", 20_000, 7920, "b"),
		{Predictor: "sms", Workload: "em3d", Accesses: 20_000, Seed: 1, Label: "c"},
		seedRun("em3d", 20_000, 1, "d"), // duplicate of run 0's cell+seed: cache hit
	}
	j, err := svc.Submit(enc.JobSpec{Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	if len(st.Results) != len(runs) {
		t.Fatalf("got %d results, want %d", len(st.Results), len(runs))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		var res struct {
			Label string `json:"label"`
		}
		if err := json.Unmarshal(st.Results[i], &res); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Label != want {
			t.Errorf("result %d: label = %q, want %q", i, res.Label, want)
		}
	}
	if st.Progress.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1 (the duplicate run)", st.Progress.CacheHits)
	}
}

// TestFusedSetByteIdentical is the service-side acceptance check for
// trace-fused execution: a job whose runs replay one trace with
// different predictors and knobs executes as one fused set over a
// single cursor, and every result must be byte-identical to the same
// specs submitted as separate jobs against a fresh daemon. The
// lockstep counters must record the fold.
func TestFusedSetByteIdentical(t *testing.T) {
	specs := []enc.RunSpec{
		{Predictor: "stride", Workload: "em3d", Accesses: 20_000, Seed: 1},
		{Predictor: "sms", Workload: "em3d", Accesses: 20_000, Seed: 1},
		{Predictor: "tms", Workload: "em3d", Accesses: 20_000, Seed: 1},
		{Predictor: "stems", Workload: "em3d", Accesses: 20_000, Seed: 1},
		{Predictor: "stems", Workload: "em3d", Accesses: 20_000, Seed: 1,
			Knobs: map[string]sim.Value{"stems.rmob_entries": sim.IntValue(4096)}},
	}

	// Sequential reference: one daemon, one job per spec.
	ref := mustNew(t, Config{Workers: 1, QueueBound: 8})
	want := make([]string, len(specs))
	for i, spec := range specs {
		j, err := ref.Submit(enc.JobSpec{RunSpec: spec})
		if err != nil {
			t.Fatal(err)
		}
		st := waitJob(t, j)
		if st.State != enc.JobDone {
			t.Fatalf("reference run %d: state = %s (err %q)", i, st.State, st.Error)
		}
		want[i] = string(st.Results[0])
	}
	refLS := ref.Metrics().Lockstep
	if refLS.SetsFormed != 0 || refLS.RunsFolded != 0 || refLS.TracesSaved != 0 {
		t.Errorf("single-run reference jobs recorded lockstep activity: %+v", refLS)
	}
	ref.Drain()

	// Fused: one fresh daemon, one job carrying every predictor.
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()
	j, err := svc.Submit(enc.JobSpec{Runs: specs})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobDone {
		t.Fatalf("fused job: state = %s (err %q)", st.State, st.Error)
	}
	if len(st.Results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(st.Results), len(specs))
	}
	for i := range specs {
		if string(st.Results[i]) != want[i] {
			t.Errorf("run %d (%s): fused result differs from sequential job:\n fused:      %s\n sequential: %s",
				i, specs[i].Predictor, st.Results[i], want[i])
		}
	}
	if st.Progress.CacheHits != 0 {
		t.Errorf("fused job reported %d cache hits, want 0", st.Progress.CacheHits)
	}
	if st.Progress.AccessesDone != st.Progress.AccessesTotal {
		t.Errorf("progress = %d/%d, want complete", st.Progress.AccessesDone, st.Progress.AccessesTotal)
	}
	ls := svc.Metrics().Lockstep
	if ls.SetsFormed != 1 {
		t.Errorf("lockstep sets formed = %d, want 1", ls.SetsFormed)
	}
	if ls.RunsFolded != uint64(len(specs)) {
		t.Errorf("runs folded = %d, want %d", ls.RunsFolded, len(specs))
	}
	if ls.TracesSaved != uint64(len(specs)-1) {
		t.Errorf("traces saved = %d, want %d", ls.TracesSaved, len(specs)-1)
	}

	// Each lane's result is individually content-addressed: resubmitting
	// one member alone must be a pure cache hit, not a new set.
	j2, err := svc.Submit(enc.JobSpec{RunSpec: specs[2]})
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, j2)
	if st2.State != enc.JobDone {
		t.Fatalf("resubmit: state = %s (err %q)", st2.State, st2.Error)
	}
	if st2.Progress.CacheHits != 1 {
		t.Errorf("resubmit of one fused member: cache hits = %d, want 1", st2.Progress.CacheHits)
	}
	if string(st2.Results[0]) != want[2] {
		t.Errorf("cached fused member differs from sequential result")
	}
	if after := svc.Metrics().Lockstep; after != ls {
		t.Errorf("cache-hit resubmit changed lockstep counters: %+v -> %+v", ls, after)
	}
}

// TestLockstepSetNonAdjacent checks that same-trace and same-cell runs
// fold even when other work sits between them in the job: results still
// arrive in submission order with the right labels.
func TestLockstepSetNonAdjacent(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	runs := []enc.RunSpec{
		seedRun("em3d", 20_000, 1, "a"),
		{Predictor: "stride", Workload: "DB2", Accesses: 20_000, Seed: 1, Label: "b"},
		{Predictor: "sms", Workload: "em3d", Accesses: 20_000, Seed: 1, Label: "c"},
		seedRun("em3d", 20_000, 7920, "d"),
	}
	j, err := svc.Submit(enc.JobSpec{Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		var res struct {
			Label string `json:"label"`
		}
		if err := json.Unmarshal(st.Results[i], &res); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Label != want {
			t.Errorf("result %d: label = %q, want %q", i, res.Label, want)
		}
	}
	// Runs 0 and 2 share em3d/seed-1/20k and fold into one fused set
	// across the intervening DB2 run; run 3 shares only the cell (same
	// workload and length, different seed) and is too late to join a
	// seed set once run 0 has executed, so it runs alone.
	ls := svc.Metrics().Lockstep
	if ls.SetsFormed != 1 {
		t.Errorf("lockstep sets formed = %d, want 1 (the non-adjacent fused pair)", ls.SetsFormed)
	}
	if ls.RunsFolded != 2 {
		t.Errorf("runs folded = %d, want 2", ls.RunsFolded)
	}
	if ls.TracesSaved != 1 {
		t.Errorf("traces saved = %d, want 1", ls.TracesSaved)
	}
}

// TestTraceGroupScansPastStrangers pins the grouping helpers directly:
// both traceGroup and cellGroup collect every matching tail member, not
// just the adjacent prefix.
func TestTraceGroupScansPastStrangers(t *testing.T) {
	runs := []resolvedRun{
		{spec: seedRun("em3d", 20_000, 1, ""), n: 20_000},
		{spec: enc.RunSpec{Predictor: "stride", Workload: "DB2", Accesses: 20_000, Seed: 1}, n: 20_000},
		{spec: enc.RunSpec{Predictor: "sms", Workload: "em3d", Accesses: 20_000, Seed: 1}, n: 20_000},
		{spec: seedRun("em3d", 20_000, 7920, ""), n: 20_000},
	}
	g := traceGroup(runs, 0)
	if len(g) != 2 || g[0] != &runs[0] || g[1] != &runs[2] {
		t.Errorf("traceGroup(0) folded %d runs, want runs 0 and 2", len(g))
	}
	if g := traceGroup(runs, 1); len(g) != 1 {
		t.Errorf("traceGroup(1) folded %d runs, want the DB2 run alone", len(g))
	}
	cg := cellGroup(runs, 0)
	if len(cg) != 2 || cg[0] != &runs[0] || cg[1] != &runs[3] {
		t.Errorf("cellGroup(0) folded %d runs, want runs 0 and 3 (same cell, different seed)", len(cg))
	}
}

// TestSameCell pins the grouping predicate: seed and label differences
// group, anything else does not.
func TestSameCell(t *testing.T) {
	base := seedRun("DB2", 10_000, 1, "x")
	same := seedRun("DB2", 10_000, 99, "y")
	if !sameCell(&base, &same) {
		t.Error("seed+label variation should share a cell")
	}
	diffs := []enc.RunSpec{
		{Predictor: "sms", Workload: "DB2", Accesses: 10_000, Seed: 1},
		{Predictor: "stems", Workload: "Oracle", Accesses: 10_000, Seed: 1},
		{Predictor: "stems", Workload: "DB2", Accesses: 20_000, Seed: 1},
		{Predictor: "stems", Workload: "DB2", Accesses: 10_000, Seed: 1, System: "paper"},
	}
	b := base
	b.System = "scaled"
	for i := range diffs {
		if diffs[i].System == "" {
			diffs[i].System = "scaled"
		}
		if sameCell(&b, &diffs[i]) {
			t.Errorf("spec %d should not share a cell with the base", i)
		}
	}
}
