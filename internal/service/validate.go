package service

import (
	"errors"
	"fmt"
	"slices"

	"stems"
	"stems/internal/enc"
	"stems/internal/sim"
)

// ErrInvalidSpec tags every job-spec validation failure; the HTTP layer
// maps it to a structured 400. Wrapped messages name the offending run
// index and field so a client can fix the spec without guesswork.
var ErrInvalidSpec = errors.New("invalid job spec")

// The node configurations a RunSpec may name.
const (
	systemScaled = "scaled"
	systemPaper  = "paper"
)

// normalize validates one run spec and fills its defaults in place:
// predictor "stems", workload "DB2", seed 1, system "scaled" (the
// reduced-footprint node the command-line tools use), and the workload's
// default trace length for Accesses == 0 (left as 0 here; resolution
// happens against the workload spec).
func normalize(i int, r *enc.RunSpec) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: run %d: %s", ErrInvalidSpec, i, fmt.Sprintf(format, args...))
	}
	if r.Predictor == "" {
		r.Predictor = "stems"
	}
	if !slices.Contains(stems.Predictors(), r.Predictor) {
		return fail("unknown predictor %q (registered: %v)", r.Predictor, stems.Predictors())
	}
	if r.Workload == "" {
		r.Workload = "DB2"
	}
	if _, err := stems.WorkloadByName(r.Workload); err != nil {
		return fail("unknown workload %q (suite: %v)", r.Workload, stems.WorkloadNames())
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Seed < 0 {
		return fail("invalid seed %d: workload seeds are positive (0 selects the default, 1)", r.Seed)
	}
	if r.Accesses < 0 {
		return fail("invalid accesses %d: must be positive, or 0 for the workload default", r.Accesses)
	}
	switch r.System {
	case "":
		r.System = systemScaled
	case systemScaled, systemPaper:
	default:
		return fail("unknown system %q (choose %q or %q)", r.System, systemScaled, systemPaper)
	}
	// Knob validation is field-level: unknown names, kind mismatches,
	// and bounds violations each name the offending knob. The canonical
	// (kind-coerced) map is written back, so job status reports — and
	// the spec the worker executes carries — one spelling per value.
	canon, err := sim.NormalizeKnobs(r.Knobs)
	if err != nil {
		return fail("%v", err)
	}
	r.Knobs = canon
	return nil
}

// resolveSpec validates a whole job spec and materializes its runs:
// normalized specs, resolved trace lengths, content-address keys, and
// the Runner options that execute them.
func resolveSpec(spec *enc.JobSpec) ([]resolvedRun, error) {
	if spec.Grid != nil {
		// A grid job is expanded server-side into its cells, which then
		// flow through the same normalization, keying, and folding as a
		// client-written run list. The Grid field stays on the spec, so
		// job status shows what was asked for alongside the expansion.
		if len(spec.Runs) > 0 || !spec.RunSpec.IsZero() {
			return nil, fmt.Errorf("%w: specify either \"grid\" or run fields, not both", ErrInvalidSpec)
		}
		cells, err := spec.Grid.Expand()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
		}
		spec.Runs = cells
	}
	if len(spec.Runs) > 0 && !spec.RunSpec.IsZero() {
		return nil, fmt.Errorf("%w: specify either top-level run fields or \"runs\", not both", ErrInvalidSpec)
	}
	if spec.Runs != nil && len(spec.Runs) == 0 {
		return nil, fmt.Errorf("%w: \"runs\" must not be empty", ErrInvalidSpec)
	}

	single := len(spec.Runs) == 0
	runs := spec.Runs
	if single {
		runs = []enc.RunSpec{spec.RunSpec}
	}

	out := make([]resolvedRun, len(runs))
	for i := range runs {
		r := &runs[i]
		if err := normalize(i, r); err != nil {
			return nil, err
		}
		wl, err := stems.WorkloadByName(r.Workload)
		if err != nil {
			return nil, fmt.Errorf("%w: run %d: %v", ErrInvalidSpec, i, err)
		}
		n := r.Accesses
		if n == 0 {
			n = wl.DefaultAccesses
		}

		// stems.RunKey builds the run through the same FromSpec path the
		// worker uses: it surfaces any residual configuration error at
		// submit time (a descriptive 400, not a failed job) and hashes
		// the *effective* options — which is what makes the content
		// address canonical: a knob spelled at its default value produces
		// the same effective options, hence the same key, as omitting it.
		// The same key shards runs across a cluster (internal/cluster)
		// and names the entry file in the disk store (internal/store).
		key, err := stems.RunKey(*r)
		if err != nil {
			return nil, fmt.Errorf("%w: run %d: %v", ErrInvalidSpec, i, err)
		}
		out[i] = resolvedRun{spec: *r, n: n, key: key}
	}

	// Write the normalized specs back so job status reports the effective
	// configuration, defaults filled.
	if single {
		spec.RunSpec = runs[0]
	} else {
		spec.Runs = runs
	}
	return out, nil
}

// Validate checks a job spec exactly as Submit would — grid expansion,
// per-run normalization, content addressing — without enqueueing
// anything. The scheduler vets schedule specs with it at registration so
// a broken spec is a 400 at POST /v1/schedules, not a fire-time failure.
func Validate(spec enc.JobSpec) error {
	_, err := resolveSpec(&spec)
	return err
}
