package service

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"stems/internal/enc"
)

// resolvedRun is one run of a job after validation: the normalized
// (canonical-knob) spec, the resolved trace length, and the
// content-address of its result. The spec itself rebuilds the Runner at
// execution time via stems.FromSpec — configuration travels as data,
// not as captured closures.
type resolvedRun struct {
	spec enc.RunSpec
	n    int
	key  string
}

// Job is one submitted unit of work: a single run or an ordered sweep of
// runs. Jobs move queued → running → {done, failed, canceled}; a Job is
// safe for concurrent use (the worker mutates it, HTTP handlers snapshot
// it, SSE subscribers watch it).
type Job struct {
	// ID is the service-assigned identifier ("j-000001").
	ID string

	spec enc.JobSpec
	runs []resolvedRun

	// ctx is cancelled by Cancel (and by service shutdown); the worker's
	// replay loop observes it once per block.
	ctx    context.Context
	cancel context.CancelFunc

	// accessesDone is atomic because the replay progress callback fires
	// every few thousand accesses — too hot for the job mutex.
	accessesDone  atomic.Uint64
	accessesTotal uint64

	// created stamps submission time; the queue phase span is the gap to
	// the worker's begin().
	created time.Time

	// Phase accounting (see enc.PhaseNames): total nanoseconds and span
	// counts per phase, atomics because workers record them while HTTP
	// handlers snapshot Status concurrently.
	phaseNanos  [enc.NumPhases]atomic.Int64
	phaseCounts [enc.NumPhases]atomic.Int64

	mu        sync.Mutex
	state     enc.JobState
	err       error
	results   []json.RawMessage
	runsDone  int
	cacheHits int
	subs      map[chan struct{}]struct{}

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

func newJob(id string, spec enc.JobSpec, runs []resolvedRun, parent context.Context) *Job {
	ctx, cancel := context.WithCancel(parent)
	var total uint64
	for _, r := range runs {
		total += uint64(r.n)
	}
	return &Job{
		ID:            id,
		spec:          spec,
		runs:          runs,
		ctx:           ctx,
		cancel:        cancel,
		accessesTotal: total,
		created:       time.Now(),
		state:         enc.JobQueued,
		subs:          make(map[chan struct{}]struct{}),
		done:          make(chan struct{}),
	}
}

// notePhase accumulates one span into a phase's total.
func (j *Job) notePhase(phase int, d time.Duration) {
	if d < 0 {
		d = 0
	}
	j.phaseNanos[phase].Add(int64(d))
	j.phaseCounts[phase].Add(1)
}

// phases snapshots the per-phase accounting in wire form — always all
// five, in enc.PhaseNames order.
func (j *Job) phases() []enc.PhaseSpan {
	out := make([]enc.PhaseSpan, enc.NumPhases)
	for i := range out {
		out[i] = enc.PhaseSpan{
			Phase: enc.PhaseNames[i],
			Nanos: j.phaseNanos[i].Load(),
			Count: j.phaseCounts[i].Load(),
		}
	}
	return out
}

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job in wire form.
func (j *Job) Status() enc.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := enc.JobStatus{
		ID:     j.ID,
		State:  j.state,
		Spec:   j.spec,
		Phases: j.phases(),
		Progress: enc.JobProgress{
			RunsDone:      j.runsDone,
			RunsTotal:     len(j.runs),
			AccessesDone:  j.accessesDone.Load(),
			AccessesTotal: j.accessesTotal,
			CacheHits:     j.cacheHits,
		},
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if len(j.results) > 0 {
		st.Results = append([]json.RawMessage(nil), j.results...)
	}
	return st
}

// Subscribe registers a change-notification channel: it receives (with
// capacity one, coalescing bursts) whenever the job's observable state
// advances. The caller snapshots Status on each wakeup and must call
// cancel when done. Terminal transitions also close Done, so a
// subscriber selecting on both never misses the end.
func (j *Job) Subscribe() (ch <-chan struct{}, cancel func()) {
	c := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[c] = struct{}{}
	j.mu.Unlock()
	return c, func() {
		j.mu.Lock()
		delete(j.subs, c)
		j.mu.Unlock()
	}
}

// notifyLocked pings every subscriber without blocking; a subscriber that
// has not consumed the previous ping coalesces. Callers hold j.mu.
func (j *Job) notifyLocked() {
	for c := range j.subs {
		select {
		case c <- struct{}{}:
		default:
		}
	}
}

// noteProgress is the replay-loop callback target: it publishes new
// cumulative access counts to subscribers.
func (j *Job) noteProgress(done uint64) {
	j.accessesDone.Store(done)
	j.mu.Lock()
	j.notifyLocked()
	j.mu.Unlock()
}

// begin moves the job from queued to running when a worker picks it up.
// It reports false if the job was cancelled while queued (the worker
// then skips execution).
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != enc.JobQueued {
		return false
	}
	j.state = enc.JobRunning
	j.notifyLocked()
	return true
}

// noteRunDone appends one run's encoded result and advances the run
// counter; fromCache credits the run's full access count (no replay
// happened) and the job's cache-hit counter.
func (j *Job) noteRunDone(result json.RawMessage, n int, fromCache bool) {
	if fromCache {
		j.accessesDone.Add(uint64(n))
	}
	j.mu.Lock()
	j.results = append(j.results, result)
	j.runsDone++
	if fromCache {
		j.cacheHits++
	}
	j.notifyLocked()
	j.mu.Unlock()
}

// finish moves the job to a terminal state (idempotent: the first
// transition wins) and wakes subscribers and Done waiters.
func (j *Job) finish(state enc.JobState, err error) {
	j.mu.Lock()
	j.finishLocked(state, err)
	j.mu.Unlock()
}

func (j *Job) finishLocked(state enc.JobState, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	if state == enc.JobFailed || state == enc.JobCanceled {
		j.err = err
	}
	j.cancel() // release the context resources either way
	close(j.done)
	j.notifyLocked()
}

// requestCancel cancels the job's context. A queued job is finished
// immediately (reported true — exactly one caller sees it, so the
// cancellation counter stays exact under concurrent cancels); a running
// one is left for its worker to wind down (the replay loop notices within
// one block).
func (j *Job) requestCancel(cause error) bool {
	j.cancel()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == enc.JobQueued {
		j.finishLocked(enc.JobCanceled, cause)
		return true
	}
	return false
}
