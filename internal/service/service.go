// Package service is the engine-facing half of stemsd: a long-running
// simulation scheduler wrapping the public stems API. It owns a bounded
// FIFO job queue drained by a worker pool (internal/par.Pool), per-job
// context cancellation, a content-addressed result cache (canonical hash
// of predictor + effective options + workload + seed + trace length, with
// single-flight de-duplication of concurrent identical runs), and one
// shared trace arena so concurrent jobs over the same workload replay one
// resident trace. internal/server exposes it over HTTP.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stems"
	"stems/internal/cluster"
	"stems/internal/enc"
	"stems/internal/par"
	"stems/internal/store"
)

// Submission errors (beyond ErrInvalidSpec, which validate.go owns).
var (
	// ErrQueueFull reports that the job queue is at capacity; retry later.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a submission during shutdown.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
)

// Config sizes a Service. Zero values select the defaults.
type Config struct {
	// Workers is the number of concurrent simulation workers
	// (default GOMAXPROCS).
	Workers int
	// QueueBound caps queued-but-unstarted jobs (default 64); beyond it
	// Submit sheds load with ErrQueueFull.
	QueueBound int
	// CacheBound caps result-cache entries, LRU-evicted (default 256).
	CacheBound int
	// TraceBound caps arena-resident workload traces, LRU-evicted
	// (default 8, raised to Workers when smaller to keep eviction of a
	// trace another worker is replaying rare). The LRU is touched at run
	// start only, so an eviction during a long replay is possible — it
	// costs a regeneration on the next run of that trace, never
	// correctness, and the replaying worker's reference keeps the evicted
	// trace alive until it finishes (peak memory can briefly exceed the
	// bound). A trace costs ~12.8 bytes/access resident, so the default
	// holds ~40MB of the suite's 400k-access traces.
	TraceBound int
	// RetainJobs caps retained terminal jobs (default 1024): beyond it
	// the oldest done/failed/canceled jobs — with their statuses and
	// result documents — are forgotten at the next submission, so a
	// long-lived daemon's job table stays bounded like its queue, result
	// cache, and arena. Queued and running jobs are never evicted; fetch
	// results before they rotate out (the result cache still answers a
	// resubmission without recomputing).
	RetainJobs int
	// Store, when non-nil, is the disk tier of the result cache: every
	// computed result is written through to it, and a memory-tier miss
	// consults it before simulating — so a restarted daemon opened on
	// the same directory answers repeat jobs from disk with zero runs
	// computed. The service does not close it; the owner does, after
	// Drain.
	Store *store.Store
	// Peers, when non-empty, is the cluster's full shard map (every
	// daemon's base URL, this one included). The service uses it for
	// observability only — /metrics reports how submitted runs
	// distribute over their owners — routing itself is the cluster
	// client's job, and a daemon always executes what it is asked to
	// (content addressing makes serving a non-owned run correct).
	Peers []string
	// Self is this daemon's own base URL within Peers; when set,
	// /metrics additionally counts misrouted runs (owned by another
	// peer).
	Self string
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 64
	}
	if c.CacheBound <= 0 {
		c.CacheBound = 256
	}
	if c.TraceBound <= 0 {
		c.TraceBound = 8
	}
	if c.TraceBound < c.Workers {
		// At least one resident trace per concurrent worker, so parallel
		// jobs over distinct workloads rarely evict a trace another
		// worker still needs (see the TraceBound comment for the residual
		// mid-replay eviction case).
		c.TraceBound = c.Workers
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
}

// Service is the stemsd core: it accepts job specs, schedules them on the
// worker pool, and retains their statuses and results. Safe for
// concurrent use.
type Service struct {
	cfg   Config
	start time.Time

	baseCtx context.Context
	abort   context.CancelFunc

	pool  *par.Pool
	cache *resultCache
	arena *stems.Arena

	// shard is the cluster's shard map (nil standalone); selfIdx is this
	// daemon's index within it (-1 when unknown). peerRuns counts
	// submitted runs by owning peer, index-aligned with shard.Peers().
	shard     *cluster.Map
	selfIdx   int
	peerRuns  []atomic.Uint64
	misrouted atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing
	nextID   uint64
	draining bool

	// arenaLRU tracks resident trace keys most-recent-first so the arena
	// stays bounded in a long-lived daemon.
	arenaLRU []arenaKey

	jobsSubmitted atomic.Uint64
	jobsCompleted atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCanceled  atomic.Uint64
	runsComputed  atomic.Uint64
	accessesSim   atomic.Uint64

	// Run-folding observability (see enc.LockstepMetrics).
	lockstepSets atomic.Uint64
	runsFolded   atomic.Uint64
	tracesSaved  atomic.Uint64
}

type arenaKey struct {
	name string
	seed int64
	n    int
}

// New starts a Service with cfg's worker pool running. An invalid peer
// list (empty or duplicate entries) fails construction.
func New(cfg Config) (*Service, error) {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		start:   time.Now(),
		baseCtx: ctx,
		abort:   cancel,
		pool:    par.NewPool(ctx, cfg.Workers, cfg.QueueBound),
		cache:   newResultCache(cfg.CacheBound, cfg.Store),
		arena:   stems.NewArena(),
		jobs:    make(map[string]*Job),
		selfIdx: -1,
	}
	if len(cfg.Peers) > 0 {
		shard, err := cluster.NewMap(cfg.Peers)
		if err != nil {
			cancel()
			s.pool.Close()
			return nil, err
		}
		s.shard = shard
		s.peerRuns = make([]atomic.Uint64, shard.Len())
		if cfg.Self != "" {
			s.selfIdx = shard.Index(cfg.Self)
			if s.selfIdx < 0 {
				cancel()
				s.pool.Close()
				return nil, fmt.Errorf("service: self %q not in peers %v", cfg.Self, shard.Peers())
			}
		}
	}
	return s, nil
}

// Submit validates spec, enqueues a job, and returns it in queued state.
// It fails with ErrInvalidSpec (descriptive, field-level), ErrQueueFull
// (back off and retry), or ErrDraining.
func (s *Service) Submit(spec enc.JobSpec) (*Job, error) {
	runs, err := resolveSpec(&spec)
	if err != nil {
		return nil, err
	}
	if s.shard != nil {
		// Routing observability: bucket each run by the peer the shard
		// map says owns it. A daemon's own bucket dominating means
		// clients route well; weight elsewhere means they bypass the map
		// or are covering for a down owner.
		for i := range runs {
			owner := s.shard.Owner(runs[i].key)
			s.peerRuns[owner].Add(1)
			if s.selfIdx >= 0 && owner != s.selfIdx {
				s.misrouted.Add(1)
			}
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	id := fmt.Sprintf("j-%06d", s.nextID)
	j := newJob(id, spec, runs, s.baseCtx)
	if err := s.pool.Submit(func(context.Context) { s.execute(j) }); err != nil {
		s.nextID--
		s.mu.Unlock()
		j.cancel() // release the context before dropping the job
		if errors.Is(err, par.ErrQueueFull) {
			return nil, ErrQueueFull
		}
		return nil, ErrDraining
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	s.mu.Unlock()
	s.jobsSubmitted.Add(1)
	return j, nil
}

// pruneLocked forgets the oldest terminal jobs beyond the retention
// bound. Non-terminal jobs are always kept (and keep their slots until
// enough terminal ones exist to evict). Callers hold s.mu.
func (s *Service) pruneLocked() {
	excess := len(s.order) - s.cfg.RetainJobs
	if excess <= 0 {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].Status().State.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// Job returns a job by ID.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// Jobs lists every retained job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Cancel requests cancellation of a job. Cancelling a queued job takes
// effect immediately; a running job winds down within one replay block.
// Cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	if j.requestCancel(context.Canceled) {
		// The job was still queued and this call finished it; a running
		// job is counted by its worker when it winds down.
		s.jobsCanceled.Add(1)
	}
	return nil
}

// Drain stops intake (Submit fails with ErrDraining) and blocks until
// every queued and in-flight job has reached a terminal state — the
// SIGTERM path of cmd/stemsd. Call Abort first (or concurrently) to
// cancel outstanding jobs instead of completing them.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.pool.Close()
}

// Abort cancels the context every job runs under: queued jobs cancel as
// workers reach them, running jobs stop at the next block boundary. It
// does not wait; follow with Drain.
func (s *Service) Abort() { s.abort() }

// Predictors lists the registered predictor names.
func (s *Service) Predictors() []string { return stems.Predictors() }

// PredictorInfos lists every registered predictor with its knob schema —
// the /v1/predictors document.
func (s *Service) PredictorInfos() []enc.PredictorInfo { return enc.PredictorInfos() }

// Workloads lists the paper suite in wire form.
func (s *Service) Workloads() []enc.WorkloadInfo {
	return enc.WorkloadInfos(stems.Workloads())
}

// Metrics snapshots the service counters for /metrics.
func (s *Service) Metrics() enc.Metrics {
	hits, misses, entries := s.cache.counters()
	ast := s.arena.Stats()
	uptime := time.Since(s.start).Seconds()
	m := enc.Metrics{
		UptimeSec:         uptime,
		Workers:           s.cfg.Workers,
		QueueDepth:        s.pool.QueueDepth(),
		QueueBound:        s.cfg.QueueBound,
		JobsSubmitted:     s.jobsSubmitted.Load(),
		JobsCompleted:     s.jobsCompleted.Load(),
		JobsFailed:        s.jobsFailed.Load(),
		JobsCanceled:      s.jobsCanceled.Load(),
		RunsComputed:      s.runsComputed.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEntries:      entries,
		CacheBound:        s.cfg.CacheBound,
		AccessesSimulated: s.accessesSim.Load(),
		TracesResident:    ast.Resident,
		TraceGenerations:  ast.Generations,
		TraceHits:         ast.Hits,
		Lockstep: enc.LockstepMetrics{
			SetsFormed:  s.lockstepSets.Load(),
			RunsFolded:  s.runsFolded.Load(),
			TracesSaved: s.tracesSaved.Load(),
		},
	}
	if total := hits + misses; total > 0 {
		m.CacheHitRate = float64(hits) / float64(total)
	}
	if uptime > 0 {
		m.AccessesPerSec = float64(m.AccessesSimulated) / uptime
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		m.Store = &enc.StoreMetrics{
			Dir:            s.cfg.Store.Dir(),
			Entries:        st.Entries,
			Bytes:          st.Bytes,
			Bound:          s.cfg.Store.Bound(),
			Hits:           st.Hits,
			Misses:         st.Misses,
			Evictions:      st.Evictions,
			CorruptDropped: st.CorruptDropped,
		}
	}
	if s.shard != nil {
		cm := &enc.ClusterMetrics{
			Peers:         s.shard.Peers(),
			MisroutedRuns: s.misrouted.Load(),
			PeerRuns:      make([]uint64, len(s.peerRuns)),
		}
		if s.selfIdx >= 0 {
			cm.Self = s.shard.Peers()[s.selfIdx]
		}
		for i := range s.peerRuns {
			cm.PeerRuns[i] = s.peerRuns[i].Load()
		}
		m.Cluster = cm
	}
	return m
}

// setResult is one lockstep-set outcome parked until its run slot comes
// up in job order: the canonical bytes plus whether they came from the
// cache (for exact hit accounting) or were computed by this job's set.
type setResult struct {
	data      []byte
	fromCache bool
}

// execute is the worker body: it runs a job's runs in order, consulting
// the result cache before simulating. Runs that fold are executed as one
// lockstep MachineSet — one scheduling unit, K predictor states, K
// individually content-addressed results, byte-identical to running them
// sequentially. Two shapes fold, members in either needing no adjacency:
// runs replaying the same (workload, seed, length) trace with any
// predictors or knobs fuse onto one shared cursor (the sweep-grid shape;
// each trace is traversed once for the whole group), and runs differing
// only by seed (and label) advance as a per-lane-cursor seed set. Set
// results land in computedHere ahead of their run slots and are consumed
// exactly once, in job order, so the result list the client sees is
// indistinguishable from sequential execution.
func (s *Service) execute(j *Job) {
	if !j.begin() {
		// Cancelled while queued; requestCancel finished it and Cancel
		// counted it.
		return
	}
	computedHere := make(map[string]setResult)
	for i := range j.runs {
		if err := j.ctx.Err(); err != nil {
			j.finish(enc.JobCanceled, err)
			s.jobsCanceled.Add(1)
			return
		}
		var data []byte
		var fromCache bool
		var err error
		if sr, ok := computedHere[j.runs[i].key]; ok {
			data, fromCache = sr.data, sr.fromCache
			delete(computedHere, j.runs[i].key)
		} else {
			if g := traceGroup(j.runs, i); len(g) >= 2 {
				err = s.computeFused(j, g, computedHere)
			} else if g := cellGroup(j.runs, i); len(g) >= 2 {
				err = s.computeSet(j, g, computedHere)
			}
			if err == nil {
				if sr, ok := computedHere[j.runs[i].key]; ok {
					data, fromCache = sr.data, sr.fromCache
					delete(computedHere, j.runs[i].key)
				} else {
					// Not in the cache and led by another job's flight,
					// or no set formed: the single-run path waits or
					// computes as before.
					data, fromCache, err = s.runOne(j, &j.runs[i])
				}
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				j.finish(enc.JobCanceled, err)
				s.jobsCanceled.Add(1)
			} else {
				j.finish(enc.JobFailed, fmt.Errorf("run %d (%s/%s): %w",
					i, j.runs[i].spec.Predictor, j.runs[i].spec.Workload, err))
				s.jobsFailed.Add(1)
			}
			return
		}
		labeled, err := enc.Relabel(data, j.runs[i].spec.Label)
		if err != nil {
			j.finish(enc.JobFailed, err)
			s.jobsFailed.Add(1)
			return
		}
		j.noteRunDone(labeled, j.runs[i].n, fromCache)
	}
	j.finish(enc.JobDone, nil)
	s.jobsCompleted.Add(1)
}

// runOne produces the canonical (label-less) result bytes for one run:
// from the cache, from another job's in-flight computation, or by
// simulating. At most one computation per content address runs at a time.
func (s *Service) runOne(j *Job, r *resolvedRun) (data []byte, fromCache bool, err error) {
	for {
		if data, ok := s.cache.get(r.key); ok {
			return data, true, nil
		}
		fl, leader := s.cache.claim(r.key)
		if leader {
			data, err = s.compute(j, r)
			s.cache.resolve(r.key, fl, data, err)
			return data, false, err
		}
		select {
		case <-fl.done:
			if fl.err == nil {
				s.cache.sharedHit()
				return fl.data, true, nil
			}
			// The leader failed — most likely its own job was cancelled,
			// which says nothing about ours. Its flight is gone from the
			// table; loop to claim leadership and compute independently.
		case <-j.ctx.Done():
			return nil, false, j.ctx.Err()
		}
	}
}

// compute simulates one run and returns its canonical result bytes.
func (s *Service) compute(j *Job, r *resolvedRun) ([]byte, error) {
	base := j.accessesDone.Load()
	var prev uint64
	runner, err := stems.FromSpec(r.spec,
		stems.WithSharedTrace(s.arena),
		stems.WithRunProgress(func(done uint64) {
			s.accessesSim.Add(done - prev)
			prev = done
			j.noteProgress(base + done)
		}))
	if err != nil {
		return nil, err
	}
	s.noteArenaUse(r.spec.Workload, r.spec.Seed, r.n)
	res, err := runner.Run(j.ctx)
	if err != nil {
		return nil, err
	}
	s.runsComputed.Add(1)
	return json.Marshal(enc.FromResult("", res))
}

// sameCell reports whether two normalized run specs name the same
// (workload, knobs) cell — equal in everything but seed and label, the
// two fields that never change the predictor configuration. Such runs
// can replay as one lockstep set.
func sameCell(a, b *enc.RunSpec) bool {
	if a.Predictor != b.Predictor || a.Workload != b.Workload ||
		a.Accesses != b.Accesses || a.System != b.System ||
		len(a.Knobs) != len(b.Knobs) {
		return false
	}
	for name, v := range a.Knobs {
		if w, ok := b.Knobs[name]; !ok || v != w {
			return false
		}
	}
	return true
}

// sameTrace reports whether two resolved runs replay the same generated
// trace: equal workload, seed, and resolved length. Predictor, knobs,
// system, and label are all free to differ — a trace is a pure function
// of its (workload, seed, length) cell, so machines agreeing on the cell
// can fold onto one shared cursor.
func sameTrace(a, b *resolvedRun) bool {
	return a.spec.Workload == b.spec.Workload &&
		a.spec.Seed == b.spec.Seed &&
		a.n == b.n
}

// traceGroup collects, in job order, every run from position i on that
// replays runs[i]'s trace. Members need not be adjacent — scanning the
// whole tail is equivalent to stably sorting the job by trace cell before
// grouping, and the client-visible result order is unchanged because set
// results are parked in computedHere and consumed at their own slots.
func traceGroup(runs []resolvedRun, i int) []*resolvedRun {
	group := []*resolvedRun{&runs[i]}
	for k := i + 1; k < len(runs); k++ {
		if sameTrace(&runs[i], &runs[k]) {
			group = append(group, &runs[k])
		}
	}
	return group
}

// cellGroup collects, in job order, every run from position i on that
// shares runs[i]'s cell — same predictor configuration, any seed: the
// seed-sweep shape computeSet replays as one per-lane-cursor set. Like
// traceGroup, members need not be adjacent.
func cellGroup(runs []resolvedRun, i int) []*resolvedRun {
	group := []*resolvedRun{&runs[i]}
	for k := i + 1; k < len(runs); k++ {
		if sameCell(&runs[i].spec, &runs[k].spec) {
			group = append(group, &runs[k])
		}
	}
	return group
}

// lane pairs a run this job won cache leadership for with its in-flight
// claim; claimLanes routes a set's members exactly as runOne would route
// them — cached results are fetched, keys another job is already
// computing are left for runOne's flight wait — and returns only the
// members that become lanes of the lockstep set.
type lane struct {
	run *resolvedRun
	fl  *flight
}

func (s *Service) claimLanes(group []*resolvedRun, computedHere map[string]setResult) []lane {
	var lanes []lane
	for _, r := range group {
		if _, ok := computedHere[r.key]; ok {
			continue // an earlier set already produced it; consumed at its slot
		}
		if data, ok := s.cache.get(r.key); ok {
			computedHere[r.key] = setResult{data: data, fromCache: true}
			continue
		}
		fl, leader := s.cache.claim(r.key)
		if !leader {
			// Another job (or an earlier duplicate in this group) is
			// computing this key; runOne waits on the flight at its slot.
			continue
		}
		lanes = append(lanes, lane{run: r, fl: fl})
	}
	return lanes
}

// noteFold records an executed lockstep set of two or more lanes;
// tracesSaved counts shared-cursor traversals avoided (0 for seed sets,
// lanes-1 for fused same-trace sets).
func (s *Service) noteFold(lanes, tracesSaved int) {
	if lanes < 2 {
		return
	}
	s.lockstepSets.Add(1)
	s.runsFolded.Add(uint64(lanes))
	s.tracesSaved.Add(uint64(tracesSaved))
}

// computeSet executes a same-cell run group as one lockstep seed set.
// One Runner.RunSeeds call produces every claimed lane's result in a
// single pass; each result is resolved into the cache under its own
// content address (single-flight followers across jobs share it) and
// parked in computedHere for its run slot. Results are byte-identical to
// sequential computation: lanes share no mutable state, only the
// schedule.
func (s *Service) computeSet(j *Job, group []*resolvedRun, computedHere map[string]setResult) error {
	lanes := s.claimLanes(group, computedHere)
	if len(lanes) == 0 {
		return nil
	}

	seeds := make([]int64, len(lanes))
	for i := range lanes {
		seeds[i] = lanes[i].run.spec.Seed
		s.noteArenaUse(lanes[i].run.spec.Workload, lanes[i].run.spec.Seed, lanes[i].run.n)
	}

	base := j.accessesDone.Load()
	var prev uint64
	runner, err := stems.FromSpec(lanes[0].run.spec,
		stems.WithSharedTrace(s.arena),
		stems.WithRunProgress(func(done uint64) {
			// RunSeeds serializes progress invocations, so the delta
			// arithmetic is race-free even with parallel lanes.
			s.accessesSim.Add(done - prev)
			prev = done
			j.noteProgress(base + done)
		}))
	var results []stems.Result
	if err == nil {
		results, err = runner.RunSeeds(j.ctx, seeds...)
	}
	if err != nil {
		// Wake followers; they recompute for themselves (the set's
		// failure — typically this job's cancellation — says nothing
		// about their jobs).
		for _, ln := range lanes {
			s.cache.resolve(ln.run.key, ln.fl, nil, err)
		}
		return err
	}
	for i, ln := range lanes {
		data, mErr := json.Marshal(enc.FromResult("", results[i]))
		s.cache.resolve(ln.run.key, ln.fl, data, mErr)
		if mErr != nil {
			return mErr
		}
		s.runsComputed.Add(1)
		computedHere[ln.run.key] = setResult{data: data}
	}
	s.noteFold(len(lanes), 0)
	return nil
}

// computeFused executes a same-trace run group — any mix of predictors,
// knobs, and systems over one (workload, seed, length) trace — as a
// single fused lockstep set: the trace is resolved once through the
// arena, every block is fetched once and stepped through all claimed
// lanes' machines. Cache routing, single-flight claims, result parking,
// and byte-identity to sequential computation all work exactly as in
// computeSet; what this shape additionally saves is lanes-1 whole trace
// traversals per set.
func (s *Service) computeFused(j *Job, group []*resolvedRun, computedHere map[string]setResult) error {
	lanes := s.claimLanes(group, computedHere)
	if len(lanes) == 0 {
		return nil
	}

	s.noteArenaUse(lanes[0].run.spec.Workload, lanes[0].run.spec.Seed, lanes[0].run.n)

	base := j.accessesDone.Load()
	var prev uint64
	k := uint64(len(lanes))
	runners := make([]*stems.Runner, len(lanes))
	for i := range lanes {
		extra := []stems.Option{stems.WithSharedTrace(s.arena)}
		if i == 0 {
			// One lane observes progress for the whole set: lanes advance
			// in lockstep over one cursor, so the set total is the lane
			// count times any lane's cumulative count. FuseSweep serializes
			// the callback, keeping the delta arithmetic race-free.
			extra = append(extra, stems.WithRunProgress(func(done uint64) {
				s.accessesSim.Add((done - prev) * k)
				prev = done
				j.noteProgress(base + done*k)
			}))
		}
		runner, err := stems.FromSpec(lanes[i].run.spec, extra...)
		if err != nil {
			for _, ln := range lanes {
				s.cache.resolve(ln.run.key, ln.fl, nil, err)
			}
			return err
		}
		runners[i] = runner
	}
	results, err := stems.FuseSweep(j.ctx, runners)
	if err != nil {
		// Wake followers; they recompute for themselves (the set's
		// failure — typically this job's cancellation — says nothing
		// about their jobs).
		for _, ln := range lanes {
			s.cache.resolve(ln.run.key, ln.fl, nil, err)
		}
		return err
	}
	for i, ln := range lanes {
		data, mErr := json.Marshal(enc.FromResult("", results[i]))
		s.cache.resolve(ln.run.key, ln.fl, data, mErr)
		if mErr != nil {
			return mErr
		}
		s.runsComputed.Add(1)
		computedHere[ln.run.key] = setResult{data: data}
	}
	s.noteFold(len(lanes), len(lanes)-1)
	return nil
}

// noteArenaUse bumps a trace key to the front of the arena LRU, dropping
// the least-recently-used trace beyond the bound so a daemon serving many
// distinct workloads doesn't accumulate every trace it ever generated.
func (s *Service) noteArenaUse(name string, seed int64, n int) {
	k := arenaKey{name: name, seed: seed, n: n}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, have := range s.arenaLRU {
		if have == k {
			copy(s.arenaLRU[1:i+1], s.arenaLRU[:i])
			s.arenaLRU[0] = k
			return
		}
	}
	s.arenaLRU = append([]arenaKey{k}, s.arenaLRU...)
	for len(s.arenaLRU) > s.cfg.TraceBound {
		evict := s.arenaLRU[len(s.arenaLRU)-1]
		s.arenaLRU = s.arenaLRU[:len(s.arenaLRU)-1]
		s.arena.Drop(evict.name, evict.seed, evict.n)
	}
}
