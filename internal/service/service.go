// Package service is the engine-facing half of stemsd: a long-running
// simulation scheduler wrapping the public stems API. It owns a bounded
// FIFO job queue drained by a worker pool (internal/par.Pool), per-job
// context cancellation, a content-addressed result cache (canonical hash
// of predictor + effective options + workload + seed + trace length, with
// single-flight de-duplication of concurrent identical runs), and one
// shared trace arena so concurrent jobs over the same workload replay one
// resident trace. internal/server exposes it over HTTP.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"stems"
	"stems/internal/cluster"
	"stems/internal/enc"
	"stems/internal/obs"
	"stems/internal/par"
	"stems/internal/store"
)

// Submission errors (beyond ErrInvalidSpec, which validate.go owns).
var (
	// ErrQueueFull reports that the job queue is at capacity; retry later.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a submission during shutdown.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
)

// Config sizes a Service. Zero values select the defaults.
type Config struct {
	// Workers is the number of concurrent simulation workers
	// (default GOMAXPROCS).
	Workers int
	// QueueBound caps queued-but-unstarted jobs (default 64); beyond it
	// Submit sheds load with ErrQueueFull.
	QueueBound int
	// CacheBound caps result-cache entries, LRU-evicted (default 256).
	CacheBound int
	// TraceBound caps arena-resident workload traces, LRU-evicted
	// (default 8, raised to Workers when smaller to keep eviction of a
	// trace another worker is replaying rare). The LRU is touched at run
	// start only, so an eviction during a long replay is possible — it
	// costs a regeneration on the next run of that trace, never
	// correctness, and the replaying worker's reference keeps the evicted
	// trace alive until it finishes (peak memory can briefly exceed the
	// bound). A trace costs ~12.8 bytes/access resident, so the default
	// holds ~40MB of the suite's 400k-access traces.
	TraceBound int
	// RetainJobs caps retained terminal jobs (default 1024): beyond it
	// the oldest done/failed/canceled jobs — with their statuses and
	// result documents — are forgotten at the next submission, so a
	// long-lived daemon's job table stays bounded like its queue, result
	// cache, and arena. Queued and running jobs are never evicted; fetch
	// results before they rotate out (the result cache still answers a
	// resubmission without recomputing).
	RetainJobs int
	// Store, when non-nil, is the disk tier of the result cache: every
	// computed result is written through to it, and a memory-tier miss
	// consults it before simulating — so a restarted daemon opened on
	// the same directory answers repeat jobs from disk with zero runs
	// computed. The service does not close it; the owner does, after
	// Drain.
	Store *store.Store
	// Peers, when non-empty, is the cluster's full shard map (every
	// daemon's base URL, this one included). The service uses it for
	// observability only — /metrics reports how submitted runs
	// distribute over their owners — routing itself is the cluster
	// client's job, and a daemon always executes what it is asked to
	// (content addressing makes serving a non-owned run correct).
	Peers []string
	// Self is this daemon's own base URL within Peers; when set,
	// /metrics additionally counts misrouted runs (owned by another
	// peer).
	Self string
	// Obs, when non-nil, is the metrics registry the service registers
	// its counters, gauges, and histograms in (default: a fresh private
	// registry). Pass a shared registry so other layers' series — the
	// HTTP server's per-route histograms, say — land in the same
	// Prometheus exposition.
	Obs *obs.Registry
	// Logger, when non-nil, receives job-lifecycle logs (default:
	// discard).
	Logger *slog.Logger
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 64
	}
	if c.CacheBound <= 0 {
		c.CacheBound = 256
	}
	if c.TraceBound <= 0 {
		c.TraceBound = 8
	}
	if c.TraceBound < c.Workers {
		// At least one resident trace per concurrent worker, so parallel
		// jobs over distinct workloads rarely evict a trace another
		// worker still needs (see the TraceBound comment for the residual
		// mid-replay eviction case).
		c.TraceBound = c.Workers
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
}

// Service is the stemsd core: it accepts job specs, schedules them on the
// worker pool, and retains their statuses and results. Safe for
// concurrent use.
type Service struct {
	cfg   Config
	start time.Time

	baseCtx context.Context
	abort   context.CancelFunc

	pool  *par.Pool
	cache *resultCache
	arena *stems.Arena

	// shard is the cluster's shard map (nil standalone); selfIdx is this
	// daemon's index within it (-1 when unknown). peerRuns counts
	// submitted runs by owning peer, index-aligned with shard.Peers().
	shard     *cluster.Map
	selfIdx   int
	peerRuns  []*obs.Counter
	misrouted *obs.Counter

	// obs is the metrics registry every counter below lives in — the
	// JSON /metrics document and the Prometheus exposition read the same
	// values, so the two views can never disagree. log receives
	// job-lifecycle events; rate tracks replayed accesses over the
	// trailing 60s for accesses_per_sec_1m.
	obs  *obs.Registry
	log  *slog.Logger
	rate *obs.Rate

	// phaseHist aggregates phase span latencies service-wide, one
	// histogram per enc.PhaseNames entry (jobs additionally keep their
	// own per-phase totals for JobStatus).
	phaseHist [enc.NumPhases]*obs.Histogram

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing
	nextID   uint64
	draining bool

	// doneHooks run synchronously at every terminal transition — on the
	// worker for executed jobs, on the canceller for queued cancels — so
	// Drain returning means every completion hook has run. metricsHooks
	// let other subsystems (scheduler, notifiers) extend the JSON
	// /metrics document.
	doneHooks    []func(enc.JobStatus)
	metricsHooks []func(*enc.Metrics)

	// arenaLRU tracks resident trace keys most-recent-first so the arena
	// stays bounded in a long-lived daemon.
	arenaLRU []arenaKey

	jobsSubmitted *obs.Counter
	gridJobs      *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobsCanceled  *obs.Counter
	runsComputed  *obs.Counter
	accessesSim   *obs.Counter

	// Run-folding observability (see enc.LockstepMetrics).
	lockstepSets *obs.Counter
	runsFolded   *obs.Counter
	tracesSaved  *obs.Counter
}

type arenaKey struct {
	name string
	seed int64
	n    int
}

// New starts a Service with cfg's worker pool running. An invalid peer
// list (empty or duplicate entries) fails construction.
func New(cfg Config) (*Service, error) {
	cfg.fill()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		start:   time.Now(),
		baseCtx: ctx,
		abort:   cancel,
		pool:    par.NewPool(ctx, cfg.Workers, cfg.QueueBound),
		cache:   newResultCache(cfg.CacheBound, cfg.Store),
		arena:   stems.NewArena(),
		jobs:    make(map[string]*Job),
		selfIdx: -1,
		obs:     reg,
		log:     logger,
		rate:    obs.NewRate(),
	}
	if len(cfg.Peers) > 0 {
		shard, err := cluster.NewMap(cfg.Peers)
		if err != nil {
			cancel()
			s.pool.Close()
			return nil, err
		}
		s.shard = shard
		if cfg.Self != "" {
			s.selfIdx = shard.Index(cfg.Self)
			if s.selfIdx < 0 {
				cancel()
				s.pool.Close()
				return nil, fmt.Errorf("service: self %q not in peers %v", cfg.Self, shard.Peers())
			}
		}
	}
	s.register()
	return s, nil
}

// register wires every service metric into the registry. Hot counters
// (bumped from workers and progress callbacks) are owned obs.Counters;
// values already guarded by existing locks — cache totals, arena stats,
// pool depth, store residency — export as callbacks evaluated per
// scrape, so no state moves and no lock is taken twice.
func (s *Service) register() {
	r := s.obs
	s.jobsSubmitted = r.Counter("stemsd_jobs_submitted_total", "Jobs accepted by Submit.")
	s.gridJobs = r.Counter("stemsd_grid_jobs_total", "Accepted jobs submitted as server-side sweep grids.")
	s.jobsCompleted = r.Counter("stemsd_jobs_completed_total", "Jobs finished in state done.")
	s.jobsFailed = r.Counter("stemsd_jobs_failed_total", "Jobs finished in state failed.")
	s.jobsCanceled = r.Counter("stemsd_jobs_canceled_total", "Jobs finished in state canceled.")
	s.runsComputed = r.Counter("stemsd_runs_computed_total", "Runs simulated (not served from any cache tier).")
	s.accessesSim = r.Counter("stemsd_accesses_simulated_total", "Trace accesses replayed across all runs.")
	s.lockstepSets = r.Counter("stemsd_lockstep_sets_total", "Lockstep sets executed (two or more folded runs).")
	s.runsFolded = r.Counter("stemsd_runs_folded_total", "Runs folded into lockstep sets.")
	s.tracesSaved = r.Counter("stemsd_traces_saved_total", "Whole-trace traversals avoided by fused same-trace sets.")

	r.Gauge("stemsd_uptime_seconds", "Seconds since the service started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.Gauge("stemsd_workers", "Simulation worker pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	r.Gauge("stemsd_queue_depth", "Queued-but-unstarted jobs.",
		func() float64 { return float64(s.pool.QueueDepth()) })
	r.Gauge("stemsd_queue_bound", "Job queue capacity.",
		func() float64 { return float64(s.cfg.QueueBound) })
	r.Gauge("stemsd_accesses_per_sec_1m", "Trace accesses replayed per second over the trailing 60s.",
		s.rate.PerSec)

	r.FuncCounter("stemsd_cache_hits_total", "Result-cache hits (memory, disk, and shared-flight).",
		func() float64 { h, _, _ := s.cache.counters(); return float64(h) })
	r.FuncCounter("stemsd_cache_misses_total", "Result-cache misses.",
		func() float64 { _, m, _ := s.cache.counters(); return float64(m) })
	r.Gauge("stemsd_cache_entries", "Resident result-cache entries.",
		func() float64 { _, _, e := s.cache.counters(); return float64(e) })
	r.Gauge("stemsd_cache_bound", "Result-cache capacity.",
		func() float64 { return float64(s.cfg.CacheBound) })

	r.FuncCounter("stemsd_trace_generations_total", "Workload traces generated into the arena.",
		func() float64 { return float64(s.arena.Stats().Generations) })
	r.FuncCounter("stemsd_trace_hits_total", "Arena hits (runs served an already-resident trace).",
		func() float64 { return float64(s.arena.Stats().Hits) })
	r.Gauge("stemsd_traces_resident", "Traces resident in the arena.",
		func() float64 { return float64(s.arena.Stats().Resident) })

	for i, name := range enc.PhaseNames {
		s.phaseHist[i] = r.Histogram("stemsd_job_phase_seconds",
			"Job phase span latency by phase (queue wait, trace resolve, simulate, encode, cache/store write).",
			obs.L("phase", name))
	}

	if st := s.cfg.Store; st != nil {
		r.Gauge("stemsd_store_entries", "Disk-tier resident entries.",
			func() float64 { return float64(st.Stats().Entries) })
		r.Gauge("stemsd_store_bytes", "Disk-tier resident payload bytes.",
			func() float64 { return float64(st.Stats().Bytes) })
		r.FuncCounter("stemsd_store_hits_total", "Disk-tier read hits.",
			func() float64 { return float64(st.Stats().Hits) })
		r.FuncCounter("stemsd_store_misses_total", "Disk-tier read misses.",
			func() float64 { return float64(st.Stats().Misses) })
		r.FuncCounter("stemsd_store_evictions_total", "Disk-tier entries evicted to respect the byte bound.",
			func() float64 { return float64(st.Stats().Evictions) })
		r.FuncCounter("stemsd_store_corrupt_dropped_total", "Disk-tier entries dropped on CRC or frame damage.",
			func() float64 { return float64(st.Stats().CorruptDropped) })
		read, write := st.Latencies()
		r.AttachHistogram("stemsd_store_read_seconds", "Disk-tier read latency (entry decode included).", read)
		r.AttachHistogram("stemsd_store_write_seconds", "Disk-tier write latency (fsync-free append).", write)
	}

	if s.shard != nil {
		s.misrouted = r.Counter("stemsd_misrouted_runs_total", "Runs submitted here but owned by another peer.")
		peers := s.shard.Peers()
		s.peerRuns = make([]*obs.Counter, len(peers))
		for i, p := range peers {
			s.peerRuns[i] = r.Counter("stemsd_peer_runs_total", "Submitted runs by owning peer.", obs.L("peer", p))
		}
	}
}

// Obs returns the service's metrics registry — the HTTP layer registers
// its per-route series here and serves the Prometheus exposition from it.
func (s *Service) Obs() *obs.Registry { return s.obs }

// notePhase records one phase span on both the job (surfaced in its
// status document) and the service-wide phase histogram.
func (s *Service) notePhase(j *Job, phase int, d time.Duration) {
	j.notePhase(phase, d)
	s.phaseHist[phase].Observe(d)
}

// noteAccesses counts replayed accesses into both the lifetime counter
// and the trailing-window rate meter. It runs inside replay progress
// callbacks — the hot path — and allocates nothing.
func (s *Service) noteAccesses(delta uint64) {
	s.accessesSim.Add(delta)
	s.rate.Add(delta)
}

// resolveTrace materializes a run's workload trace through the shared
// arena ahead of simulation so trace resolution (generation, or an
// arena hit) is timed as its own phase; the Runner's internal arena
// lookup then finds the trace resident. Lookup errors are ignored here —
// FromSpec surfaces them at simulate time with full context. A job
// already canceled skips generation (its Run exits before replaying).
func (s *Service) resolveTrace(j *Job, name string, seed int64, n int) {
	if wl, err := stems.WorkloadByName(name); err == nil && j.ctx.Err() == nil {
		start := time.Now()
		s.arena.Get(name, seed, n, func() []stems.Access { return wl.Generate(seed, n) })
		s.notePhase(j, enc.PhaseResolve, time.Since(start))
	}
	// LRU bookkeeping runs after the Get so the bound is enforced against
	// traces actually resident: bumping first opens a window where another
	// worker's eviction drops this key from the LRU before the trace
	// exists, leaving the generation untracked and the arena over bound.
	s.noteArenaUse(name, seed, n)
}

// Submit validates spec, enqueues a job, and returns it in queued state.
// It fails with ErrInvalidSpec (descriptive, field-level), ErrQueueFull
// (back off and retry), or ErrDraining.
func (s *Service) Submit(spec enc.JobSpec) (*Job, error) {
	runs, err := resolveSpec(&spec)
	if err != nil {
		return nil, err
	}
	if s.shard != nil {
		// Routing observability: bucket each run by the peer the shard
		// map says owns it. A daemon's own bucket dominating means
		// clients route well; weight elsewhere means they bypass the map
		// or are covering for a down owner.
		for i := range runs {
			owner := s.shard.Owner(runs[i].key)
			s.peerRuns[owner].Add(1)
			if s.selfIdx >= 0 && owner != s.selfIdx {
				s.misrouted.Add(1)
			}
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	id := fmt.Sprintf("j-%06d", s.nextID)
	j := newJob(id, spec, runs, s.baseCtx)
	if err := s.pool.Submit(func(context.Context) { s.execute(j) }); err != nil {
		s.nextID--
		s.mu.Unlock()
		j.cancel() // release the context before dropping the job
		if errors.Is(err, par.ErrQueueFull) {
			return nil, ErrQueueFull
		}
		return nil, ErrDraining
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	s.mu.Unlock()
	s.jobsSubmitted.Add(1)
	if spec.Grid != nil {
		s.gridJobs.Add(1)
	}
	s.log.Debug("job submitted", "job", id, "runs", len(runs))
	return j, nil
}

// OnJobDone registers a completion hook, called with the terminal status
// of every job — the notifier fan-out and schedule attribution attach
// here. Hooks run synchronously on the finishing goroutine (a worker, or
// the canceller of a still-queued job): register only fast hooks, and
// register them before traffic. Because workers run hooks inline, Drain
// returning implies every completed job's hooks have run.
func (s *Service) OnJobDone(fn func(enc.JobStatus)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneHooks = append(s.doneHooks, fn)
}

// AddMetricsHook registers an extension of the JSON /metrics document;
// each hook edits the snapshot before Metrics returns it. The scheduler
// and notifier sections attach here so daemon wiring stays in cmd/stemsd.
func (s *Service) AddMetricsHook(fn func(*enc.Metrics)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metricsHooks = append(s.metricsHooks, fn)
}

// fireDone runs the completion hooks for a job that just reached a
// terminal state.
func (s *Service) fireDone(j *Job) {
	s.mu.Lock()
	hooks := s.doneHooks
	s.mu.Unlock()
	if len(hooks) == 0 {
		return
	}
	st := j.Status()
	for _, fn := range hooks {
		fn(st)
	}
}

// pruneLocked forgets the oldest terminal jobs beyond the retention
// bound. Non-terminal jobs are always kept (and keep their slots until
// enough terminal ones exist to evict). Callers hold s.mu.
func (s *Service) pruneLocked() {
	excess := len(s.order) - s.cfg.RetainJobs
	if excess <= 0 {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].Status().State.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// Job returns a job by ID.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// Jobs lists every retained job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Cancel requests cancellation of a job. Cancelling a queued job takes
// effect immediately; a running job winds down within one replay block.
// Cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	if j.requestCancel(context.Canceled) {
		// The job was still queued and this call finished it; a running
		// job is counted (and its completion hooks run) by its worker when
		// it winds down.
		s.jobsCanceled.Add(1)
		s.fireDone(j)
	}
	return nil
}

// Drain stops intake (Submit fails with ErrDraining) and blocks until
// every queued and in-flight job has reached a terminal state — the
// SIGTERM path of cmd/stemsd. Call Abort first (or concurrently) to
// cancel outstanding jobs instead of completing them.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.pool.Close()
}

// Abort cancels the context every job runs under: queued jobs cancel as
// workers reach them, running jobs stop at the next block boundary. It
// does not wait; follow with Drain.
func (s *Service) Abort() { s.abort() }

// Predictors lists the registered predictor names.
func (s *Service) Predictors() []string { return stems.Predictors() }

// PredictorInfos lists every registered predictor with its knob schema —
// the /v1/predictors document.
func (s *Service) PredictorInfos() []enc.PredictorInfo { return enc.PredictorInfos() }

// Workloads lists the paper suite in wire form.
func (s *Service) Workloads() []enc.WorkloadInfo {
	return enc.WorkloadInfos(stems.Workloads())
}

// Metrics snapshots the service counters for /metrics.
func (s *Service) Metrics() enc.Metrics {
	hits, misses, entries := s.cache.counters()
	ast := s.arena.Stats()
	uptime := time.Since(s.start).Seconds()
	m := enc.Metrics{
		UptimeSec:         uptime,
		Workers:           s.cfg.Workers,
		QueueDepth:        s.pool.QueueDepth(),
		QueueBound:        s.cfg.QueueBound,
		JobsSubmitted:     s.jobsSubmitted.Value(),
		JobsCompleted:     s.jobsCompleted.Value(),
		JobsFailed:        s.jobsFailed.Value(),
		JobsCanceled:      s.jobsCanceled.Value(),
		GridJobs:          s.gridJobs.Value(),
		RunsComputed:      s.runsComputed.Value(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEntries:      entries,
		CacheBound:        s.cfg.CacheBound,
		AccessesSimulated: s.accessesSim.Value(),
		TracesResident:    ast.Resident,
		TraceGenerations:  ast.Generations,
		TraceHits:         ast.Hits,
		Lockstep: enc.LockstepMetrics{
			SetsFormed:  s.lockstepSets.Value(),
			RunsFolded:  s.runsFolded.Value(),
			TracesSaved: s.tracesSaved.Value(),
		},
	}
	if total := hits + misses; total > 0 {
		m.CacheHitRate = float64(hits) / float64(total)
	}
	if uptime > 0 {
		m.AccessesPerSec = float64(m.AccessesSimulated) / uptime
	}
	m.AccessesPerSec1m = s.rate.PerSec()
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		m.Store = &enc.StoreMetrics{
			Dir:            s.cfg.Store.Dir(),
			Entries:        st.Entries,
			Bytes:          st.Bytes,
			Bound:          s.cfg.Store.Bound(),
			Hits:           st.Hits,
			Misses:         st.Misses,
			Evictions:      st.Evictions,
			CorruptDropped: st.CorruptDropped,
			ReadLatency:    enc.LatencyFromSnapshot(st.ReadLatency),
			WriteLatency:   enc.LatencyFromSnapshot(st.WriteLatency),
		}
	}
	if s.shard != nil {
		cm := &enc.ClusterMetrics{
			Peers:         s.shard.Peers(),
			MisroutedRuns: s.misrouted.Value(),
			PeerRuns:      make([]uint64, len(s.peerRuns)),
		}
		if s.selfIdx >= 0 {
			cm.Self = s.shard.Peers()[s.selfIdx]
		}
		for i := range s.peerRuns {
			cm.PeerRuns[i] = s.peerRuns[i].Value()
		}
		m.Cluster = cm
	}
	s.mu.Lock()
	hooks := s.metricsHooks
	s.mu.Unlock()
	for _, fn := range hooks {
		fn(&m)
	}
	return m
}

// setResult is one lockstep-set outcome parked until its run slot comes
// up in job order: the canonical bytes plus whether they came from the
// cache (for exact hit accounting) or were computed by this job's set.
type setResult struct {
	data      []byte
	fromCache bool
}

// execute is the worker body: it runs a job's runs in order, consulting
// the result cache before simulating. Runs that fold are executed as one
// lockstep MachineSet — one scheduling unit, K predictor states, K
// individually content-addressed results, byte-identical to running them
// sequentially. Two shapes fold, members in either needing no adjacency:
// runs replaying the same (workload, seed, length) trace with any
// predictors or knobs fuse onto one shared cursor (the sweep-grid shape;
// each trace is traversed once for the whole group), and runs differing
// only by seed (and label) advance as a per-lane-cursor seed set. Set
// results land in computedHere ahead of their run slots and are consumed
// exactly once, in job order, so the result list the client sees is
// indistinguishable from sequential execution.
func (s *Service) execute(j *Job) {
	if !j.begin() {
		// Cancelled while queued; requestCancel finished it and Cancel
		// counted it.
		return
	}
	s.notePhase(j, enc.PhaseQueue, time.Since(j.created))
	s.log.Debug("job started", "job", j.ID, "runs", len(j.runs))
	computedHere := make(map[string]setResult)
	for i := range j.runs {
		if err := j.ctx.Err(); err != nil {
			j.finish(enc.JobCanceled, err)
			s.jobsCanceled.Add(1)
			s.fireDone(j)
			return
		}
		var data []byte
		var fromCache bool
		var err error
		if sr, ok := computedHere[j.runs[i].key]; ok {
			data, fromCache = sr.data, sr.fromCache
			delete(computedHere, j.runs[i].key)
		} else {
			if g := traceGroup(j.runs, i); len(g) >= 2 {
				err = s.computeFused(j, g, computedHere)
			} else if g := cellGroup(j.runs, i); len(g) >= 2 {
				err = s.computeSet(j, g, computedHere)
			}
			if err == nil {
				if sr, ok := computedHere[j.runs[i].key]; ok {
					data, fromCache = sr.data, sr.fromCache
					delete(computedHere, j.runs[i].key)
				} else {
					// Not in the cache and led by another job's flight,
					// or no set formed: the single-run path waits or
					// computes as before.
					data, fromCache, err = s.runOne(j, &j.runs[i])
				}
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				j.finish(enc.JobCanceled, err)
				s.jobsCanceled.Add(1)
				s.log.Info("job canceled", "job", j.ID, "runs_done", i)
			} else {
				err = fmt.Errorf("run %d (%s/%s): %w",
					i, j.runs[i].spec.Predictor, j.runs[i].spec.Workload, err)
				j.finish(enc.JobFailed, err)
				s.jobsFailed.Add(1)
				s.log.Warn("job failed", "job", j.ID, "err", err)
			}
			s.fireDone(j)
			return
		}
		encStart := time.Now()
		labeled, err := enc.Relabel(data, j.runs[i].spec.Label)
		s.notePhase(j, enc.PhaseEncode, time.Since(encStart))
		if err != nil {
			j.finish(enc.JobFailed, err)
			s.jobsFailed.Add(1)
			s.log.Warn("job failed", "job", j.ID, "err", err)
			s.fireDone(j)
			return
		}
		j.noteRunDone(labeled, j.runs[i].n, fromCache)
	}
	j.finish(enc.JobDone, nil)
	s.jobsCompleted.Add(1)
	s.log.Info("job done", "job", j.ID, "runs", len(j.runs),
		"elapsed", time.Since(j.created))
	s.fireDone(j)
}

// runOne produces the canonical (label-less) result bytes for one run:
// from the cache, from another job's in-flight computation, or by
// simulating. At most one computation per content address runs at a time.
func (s *Service) runOne(j *Job, r *resolvedRun) (data []byte, fromCache bool, err error) {
	for {
		if data, ok := s.cache.get(r.key); ok {
			return data, true, nil
		}
		fl, leader := s.cache.claim(r.key)
		if leader {
			data, err = s.compute(j, r)
			storeStart := time.Now()
			s.cache.resolve(r.key, fl, data, err)
			s.notePhase(j, enc.PhaseStore, time.Since(storeStart))
			return data, false, err
		}
		select {
		case <-fl.done:
			if fl.err == nil {
				s.cache.sharedHit()
				return fl.data, true, nil
			}
			// The leader failed — most likely its own job was cancelled,
			// which says nothing about ours. Its flight is gone from the
			// table; loop to claim leadership and compute independently.
		case <-j.ctx.Done():
			return nil, false, j.ctx.Err()
		}
	}
}

// compute simulates one run and returns its canonical result bytes.
func (s *Service) compute(j *Job, r *resolvedRun) ([]byte, error) {
	base := j.accessesDone.Load()
	var prev uint64
	runner, err := stems.FromSpec(r.spec,
		stems.WithSharedTrace(s.arena),
		stems.WithRunProgress(func(done uint64) {
			s.noteAccesses(done - prev)
			prev = done
			j.noteProgress(base + done)
		}))
	if err != nil {
		return nil, err
	}
	s.resolveTrace(j, r.spec.Workload, r.spec.Seed, r.n)
	simStart := time.Now()
	res, err := runner.Run(j.ctx)
	s.notePhase(j, enc.PhaseSimulate, time.Since(simStart))
	if err != nil {
		return nil, err
	}
	s.runsComputed.Add(1)
	encStart := time.Now()
	data, err := json.Marshal(enc.FromResult("", res))
	s.notePhase(j, enc.PhaseEncode, time.Since(encStart))
	return data, err
}

// sameCell reports whether two normalized run specs name the same
// (workload, knobs) cell — equal in everything but seed and label, the
// two fields that never change the predictor configuration. Such runs
// can replay as one lockstep set.
func sameCell(a, b *enc.RunSpec) bool {
	if a.Predictor != b.Predictor || a.Workload != b.Workload ||
		a.Accesses != b.Accesses || a.System != b.System ||
		len(a.Knobs) != len(b.Knobs) {
		return false
	}
	for name, v := range a.Knobs {
		if w, ok := b.Knobs[name]; !ok || v != w {
			return false
		}
	}
	return true
}

// sameTrace reports whether two resolved runs replay the same generated
// trace: equal workload, seed, and resolved length. Predictor, knobs,
// system, and label are all free to differ — a trace is a pure function
// of its (workload, seed, length) cell, so machines agreeing on the cell
// can fold onto one shared cursor.
func sameTrace(a, b *resolvedRun) bool {
	return a.spec.Workload == b.spec.Workload &&
		a.spec.Seed == b.spec.Seed &&
		a.n == b.n
}

// traceGroup collects, in job order, every run from position i on that
// replays runs[i]'s trace. Members need not be adjacent — scanning the
// whole tail is equivalent to stably sorting the job by trace cell before
// grouping, and the client-visible result order is unchanged because set
// results are parked in computedHere and consumed at their own slots.
func traceGroup(runs []resolvedRun, i int) []*resolvedRun {
	group := []*resolvedRun{&runs[i]}
	for k := i + 1; k < len(runs); k++ {
		if sameTrace(&runs[i], &runs[k]) {
			group = append(group, &runs[k])
		}
	}
	return group
}

// cellGroup collects, in job order, every run from position i on that
// shares runs[i]'s cell — same predictor configuration, any seed: the
// seed-sweep shape computeSet replays as one per-lane-cursor set. Like
// traceGroup, members need not be adjacent.
func cellGroup(runs []resolvedRun, i int) []*resolvedRun {
	group := []*resolvedRun{&runs[i]}
	for k := i + 1; k < len(runs); k++ {
		if sameCell(&runs[i].spec, &runs[k].spec) {
			group = append(group, &runs[k])
		}
	}
	return group
}

// lane pairs a run this job won cache leadership for with its in-flight
// claim; claimLanes routes a set's members exactly as runOne would route
// them — cached results are fetched, keys another job is already
// computing are left for runOne's flight wait — and returns only the
// members that become lanes of the lockstep set.
type lane struct {
	run *resolvedRun
	fl  *flight
}

func (s *Service) claimLanes(group []*resolvedRun, computedHere map[string]setResult) []lane {
	var lanes []lane
	for _, r := range group {
		if _, ok := computedHere[r.key]; ok {
			continue // an earlier set already produced it; consumed at its slot
		}
		if data, ok := s.cache.get(r.key); ok {
			computedHere[r.key] = setResult{data: data, fromCache: true}
			continue
		}
		fl, leader := s.cache.claim(r.key)
		if !leader {
			// Another job (or an earlier duplicate in this group) is
			// computing this key; runOne waits on the flight at its slot.
			continue
		}
		lanes = append(lanes, lane{run: r, fl: fl})
	}
	return lanes
}

// noteFold records an executed lockstep set of two or more lanes;
// tracesSaved counts shared-cursor traversals avoided (0 for seed sets,
// lanes-1 for fused same-trace sets).
func (s *Service) noteFold(lanes, tracesSaved int) {
	if lanes < 2 {
		return
	}
	s.lockstepSets.Add(1)
	s.runsFolded.Add(uint64(lanes))
	s.tracesSaved.Add(uint64(tracesSaved))
}

// computeSet executes a same-cell run group as one lockstep seed set.
// One Runner.RunSeeds call produces every claimed lane's result in a
// single pass; each result is resolved into the cache under its own
// content address (single-flight followers across jobs share it) and
// parked in computedHere for its run slot. Results are byte-identical to
// sequential computation: lanes share no mutable state, only the
// schedule.
func (s *Service) computeSet(j *Job, group []*resolvedRun, computedHere map[string]setResult) error {
	lanes := s.claimLanes(group, computedHere)
	if len(lanes) == 0 {
		return nil
	}

	seeds := make([]int64, len(lanes))
	for i := range lanes {
		seeds[i] = lanes[i].run.spec.Seed
		s.resolveTrace(j, lanes[i].run.spec.Workload, lanes[i].run.spec.Seed, lanes[i].run.n)
	}

	base := j.accessesDone.Load()
	var prev uint64
	runner, err := stems.FromSpec(lanes[0].run.spec,
		stems.WithSharedTrace(s.arena),
		stems.WithRunProgress(func(done uint64) {
			// RunSeeds serializes progress invocations, so the delta
			// arithmetic is race-free even with parallel lanes.
			s.noteAccesses(done - prev)
			prev = done
			j.noteProgress(base + done)
		}))
	var results []stems.Result
	if err == nil {
		simStart := time.Now()
		results, err = runner.RunSeeds(j.ctx, seeds...)
		s.notePhase(j, enc.PhaseSimulate, time.Since(simStart))
	}
	if err != nil {
		// Wake followers; they recompute for themselves (the set's
		// failure — typically this job's cancellation — says nothing
		// about their jobs).
		for _, ln := range lanes {
			s.cache.resolve(ln.run.key, ln.fl, nil, err)
		}
		return err
	}
	for i, ln := range lanes {
		encStart := time.Now()
		data, mErr := json.Marshal(enc.FromResult("", results[i]))
		s.notePhase(j, enc.PhaseEncode, time.Since(encStart))
		storeStart := time.Now()
		s.cache.resolve(ln.run.key, ln.fl, data, mErr)
		s.notePhase(j, enc.PhaseStore, time.Since(storeStart))
		if mErr != nil {
			return mErr
		}
		s.runsComputed.Add(1)
		computedHere[ln.run.key] = setResult{data: data}
	}
	s.noteFold(len(lanes), 0)
	return nil
}

// computeFused executes a same-trace run group — any mix of predictors,
// knobs, and systems over one (workload, seed, length) trace — as a
// single fused lockstep set: the trace is resolved once through the
// arena, every block is fetched once and stepped through all claimed
// lanes' machines. Cache routing, single-flight claims, result parking,
// and byte-identity to sequential computation all work exactly as in
// computeSet; what this shape additionally saves is lanes-1 whole trace
// traversals per set.
func (s *Service) computeFused(j *Job, group []*resolvedRun, computedHere map[string]setResult) error {
	lanes := s.claimLanes(group, computedHere)
	if len(lanes) == 0 {
		return nil
	}

	s.resolveTrace(j, lanes[0].run.spec.Workload, lanes[0].run.spec.Seed, lanes[0].run.n)

	base := j.accessesDone.Load()
	var prev uint64
	k := uint64(len(lanes))
	runners := make([]*stems.Runner, len(lanes))
	for i := range lanes {
		extra := []stems.Option{stems.WithSharedTrace(s.arena)}
		if i == 0 {
			// One lane observes progress for the whole set: lanes advance
			// in lockstep over one cursor, so the set total is the lane
			// count times any lane's cumulative count. FuseSweep serializes
			// the callback, keeping the delta arithmetic race-free.
			extra = append(extra, stems.WithRunProgress(func(done uint64) {
				s.noteAccesses((done - prev) * k)
				prev = done
				j.noteProgress(base + done*k)
			}))
		}
		runner, err := stems.FromSpec(lanes[i].run.spec, extra...)
		if err != nil {
			for _, ln := range lanes {
				s.cache.resolve(ln.run.key, ln.fl, nil, err)
			}
			return err
		}
		runners[i] = runner
	}
	simStart := time.Now()
	results, err := stems.FuseSweep(j.ctx, runners)
	s.notePhase(j, enc.PhaseSimulate, time.Since(simStart))
	if err != nil {
		// Wake followers; they recompute for themselves (the set's
		// failure — typically this job's cancellation — says nothing
		// about their jobs).
		for _, ln := range lanes {
			s.cache.resolve(ln.run.key, ln.fl, nil, err)
		}
		return err
	}
	for i, ln := range lanes {
		encStart := time.Now()
		data, mErr := json.Marshal(enc.FromResult("", results[i]))
		s.notePhase(j, enc.PhaseEncode, time.Since(encStart))
		storeStart := time.Now()
		s.cache.resolve(ln.run.key, ln.fl, data, mErr)
		s.notePhase(j, enc.PhaseStore, time.Since(storeStart))
		if mErr != nil {
			return mErr
		}
		s.runsComputed.Add(1)
		computedHere[ln.run.key] = setResult{data: data}
	}
	s.noteFold(len(lanes), len(lanes)-1)
	return nil
}

// noteArenaUse bumps a trace key to the front of the arena LRU, dropping
// the least-recently-used trace beyond the bound so a daemon serving many
// distinct workloads doesn't accumulate every trace it ever generated.
func (s *Service) noteArenaUse(name string, seed int64, n int) {
	k := arenaKey{name: name, seed: seed, n: n}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, have := range s.arenaLRU {
		if have == k {
			copy(s.arenaLRU[1:i+1], s.arenaLRU[:i])
			s.arenaLRU[0] = k
			return
		}
	}
	s.arenaLRU = append([]arenaKey{k}, s.arenaLRU...)
	for len(s.arenaLRU) > s.cfg.TraceBound {
		evict := s.arenaLRU[len(s.arenaLRU)-1]
		s.arenaLRU = s.arenaLRU[:len(s.arenaLRU)-1]
		s.arena.Drop(evict.name, evict.seed, evict.n)
	}
}
