package service

import (
	"container/list"
	"sync"

	"stems/internal/store"
)

// The content address of a run's result is stems.RunKey — one hashing
// contract shared by this cache, the disk store beneath it, and the
// cluster client's shard routing.

// flight is one in-progress computation of a cache key. Followers wait on
// done; a failed flight leaves err set and followers recompute for
// themselves (errors are never cached).
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// resultCache is a bounded LRU of canonical result bytes keyed by
// stems.RunKey, with single-flight de-duplication: concurrent jobs
// computing the same key run one simulation, the rest wait and share the
// bytes. With a disk store attached it becomes the memory tier of a
// two-tier cache: stored results are written through to disk, and a
// memory miss consults the store before conceding — so a restarted
// daemon (cold memory, warm disk) answers repeat jobs without
// recomputing, byte-identically.
type resultCache struct {
	mu      sync.Mutex
	bound   int
	disk    *store.Store             // nil = memory-only
	entries map[string]*list.Element // key → ll element holding *cacheEntry
	ll      *list.List               // front = most recently used
	flights map[string]*flight
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

func newResultCache(bound int, disk *store.Store) *resultCache {
	if bound <= 0 {
		bound = 1
	}
	return &resultCache{
		bound:   bound,
		disk:    disk,
		entries: make(map[string]*list.Element),
		ll:      list.New(),
		flights: make(map[string]*flight),
	}
}

// get returns the cached bytes for key, counting a hit or miss. A
// memory miss falls through to the disk store (when attached); a disk
// hit re-installs the bytes in the memory tier.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).data, true
	}
	if c.disk != nil {
		if data, ok := c.disk.Get(key); ok {
			c.hits++
			c.installLocked(key, data)
			return data, true
		}
	}
	c.misses++
	return nil, false
}

// claim returns the flight for key and whether the caller is its leader.
// The leader must call resolve exactly once; followers wait on
// flight.done.
func (c *resultCache) claim(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.flights[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	return fl, true
}

// resolve completes a flight: a successful result is stored in the LRU,
// a failure only wakes the followers (they recompute independently —
// e.g. the leader's job was cancelled, which says nothing about the
// followers' jobs).
func (c *resultCache) resolve(key string, fl *flight, data []byte, err error) {
	c.mu.Lock()
	fl.data, fl.err = data, err
	delete(c.flights, key)
	if err == nil {
		c.storeLocked(key, data)
	}
	c.mu.Unlock()
	close(fl.done)
}

// storeLocked records a freshly computed result in both tiers: the
// memory LRU and (write-through) the disk store.
func (c *resultCache) storeLocked(key string, data []byte) {
	c.installLocked(key, data)
	if c.disk != nil {
		// Best-effort: a full or failing disk degrades the daemon to its
		// pre-store behaviour (memory-only), it does not fail the job.
		c.disk.Put(key, data) //nolint:errcheck
	}
}

// installLocked places bytes in the memory tier only — used for disk
// hits, where writing back to disk would be a no-op.
func (c *resultCache) installLocked(key string, data []byte) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	for c.ll.Len() > c.bound {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// counters returns cumulative hit/miss counts and the current size.
func (c *resultCache) counters() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// sharedHit records a hit that bypassed get: a follower served by a
// leader's flight avoided a recomputation just like an LRU hit, and the
// /metrics cache-hit counter should say so. The earlier miss the follower
// was charged on its failed get is rolled back so the hit rate reflects
// one miss (the leader's) per computed result.
func (c *resultCache) sharedHit() {
	c.mu.Lock()
	c.hits++
	if c.misses > 0 {
		c.misses--
	}
	c.mu.Unlock()
}
