package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"stems"
)

// runKey computes the content address of one run's result: a SHA-256 over
// the canonical JSON of everything that determines the simulation output.
// opt is the Runner's *effective* options (after workload-class
// defaulting), so two specs that resolve to the same configuration share
// an address even if they spelled it differently. Labels are
// presentation-only and excluded.
func runKey(predictor, workload string, seed int64, n int, opt stems.Options) (string, error) {
	payload, err := json.Marshal(struct {
		Predictor string        `json:"predictor"`
		Workload  string        `json:"workload"`
		Seed      int64         `json:"seed"`
		N         int           `json:"n"`
		Options   stems.Options `json:"options"`
	}{predictor, workload, seed, n, opt})
	if err != nil {
		return "", fmt.Errorf("service: hashing run spec: %w", err)
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// flight is one in-progress computation of a cache key. Followers wait on
// done; a failed flight leaves err set and followers recompute for
// themselves (errors are never cached).
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// resultCache is a bounded LRU of canonical result bytes keyed by runKey,
// with single-flight de-duplication: concurrent jobs computing the same
// key run one simulation, the rest wait and share the bytes.
type resultCache struct {
	mu      sync.Mutex
	bound   int
	entries map[string]*list.Element // key → ll element holding *cacheEntry
	ll      *list.List               // front = most recently used
	flights map[string]*flight
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

func newResultCache(bound int) *resultCache {
	if bound <= 0 {
		bound = 1
	}
	return &resultCache{
		bound:   bound,
		entries: make(map[string]*list.Element),
		ll:      list.New(),
		flights: make(map[string]*flight),
	}
}

// get returns the cached bytes for key, counting a hit or miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// claim returns the flight for key and whether the caller is its leader.
// The leader must call resolve exactly once; followers wait on
// flight.done.
func (c *resultCache) claim(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.flights[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	return fl, true
}

// resolve completes a flight: a successful result is stored in the LRU,
// a failure only wakes the followers (they recompute independently —
// e.g. the leader's job was cancelled, which says nothing about the
// followers' jobs).
func (c *resultCache) resolve(key string, fl *flight, data []byte, err error) {
	c.mu.Lock()
	fl.data, fl.err = data, err
	delete(c.flights, key)
	if err == nil {
		c.storeLocked(key, data)
	}
	c.mu.Unlock()
	close(fl.done)
}

func (c *resultCache) storeLocked(key string, data []byte) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	for c.ll.Len() > c.bound {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// counters returns cumulative hit/miss counts and the current size.
func (c *resultCache) counters() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// sharedHit records a hit that bypassed get: a follower served by a
// leader's flight avoided a recomputation just like an LRU hit, and the
// /metrics cache-hit counter should say so. The earlier miss the follower
// was charged on its failed get is rolled back so the hit rate reflects
// one miss (the leader's) per computed result.
func (c *resultCache) sharedHit() {
	c.mu.Lock()
	c.hits++
	if c.misses > 0 {
		c.misses--
	}
	c.mu.Unlock()
}
