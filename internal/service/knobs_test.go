package service

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"stems"
	"stems/internal/enc"
	"stems/internal/sim"
)

// TestExplicitDefaultKnobsShareCacheEntry is the cache half of the
// acceptance criterion: a spec spelling knobs at their default values
// and the same spec omitting them resolve to one effective
// configuration, hence one content address — the second job is a cache
// hit (no recomputation) with byte-identical result bytes.
func TestExplicitDefaultKnobsShareCacheEntry(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	plain := smallRun("em3d", 20_000)
	j1, err := svc.Submit(enc.JobSpec{RunSpec: plain})
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitJob(t, j1)
	if st1.State != enc.JobDone {
		t.Fatalf("job 1: %s (%s)", st1.State, st1.Error)
	}

	withDefaults := plain
	withDefaults.Knobs = map[string]sim.Value{
		// The registered defaults, spelled out — including a float
		// spelling of an int knob, which canonicalization coerces.
		"stems.rmob_entries": sim.FloatValue(128 << 10),
		"stems.pst_entries":  sim.IntValue(16 << 10),
		"scientific":         sim.BoolValue(true), // em3d is scientific: the class default
		"system.mlp":         sim.IntValue(4),
	}
	j2, err := svc.Submit(enc.JobSpec{RunSpec: withDefaults})
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, j2)
	if st2.State != enc.JobDone {
		t.Fatalf("job 2: %s (%s)", st2.State, st2.Error)
	}

	if string(st1.Results[0]) != string(st2.Results[0]) {
		t.Errorf("results differ:\n omitted:  %s\n explicit: %s", st1.Results[0], st2.Results[0])
	}
	if st2.Progress.CacheHits != 1 {
		t.Errorf("job 2 cache hits = %d, want 1 (one shared cache entry)", st2.Progress.CacheHits)
	}
	m := svc.Metrics()
	if m.RunsComputed != 1 {
		t.Errorf("RunsComputed = %d, want 1 — the explicit-default spec recomputed", m.RunsComputed)
	}
	if m.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", m.CacheHits)
	}
}

// TestKnobOverridesDistinctCacheEntry: a non-default knob is a
// different configuration and must not collide with the default run.
func TestKnobOverridesDistinctCacheEntry(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	plain := smallRun("em3d", 20_000)
	override := plain
	override.Knobs = map[string]sim.Value{"stems.rmob_entries": sim.IntValue(4 << 10)}

	for _, spec := range []enc.RunSpec{plain, override} {
		j, err := svc.Submit(enc.JobSpec{RunSpec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitJob(t, j); st.State != enc.JobDone {
			t.Fatalf("%s (%s)", st.State, st.Error)
		}
	}
	if m := svc.Metrics(); m.RunsComputed != 2 || m.CacheHits != 0 {
		t.Errorf("RunsComputed = %d, CacheHits = %d; want 2 distinct computations", m.RunsComputed, m.CacheHits)
	}
}

// TestKnobSpecMatchesConfigure is the service half of the acceptance
// criterion: the knob-map spec submitted to the service produces bytes
// identical to the equivalent WithConfigure run executed locally — and
// to the same Runner's own Spec() resubmitted.
func TestKnobSpecMatchesConfigure(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	local, err := stems.New(
		stems.WithPredictor("stems"),
		stems.WithWorkload("ocean"),
		stems.WithAccesses(20_000),
		stems.WithSystem(stems.ScaledSystem()),
		stems.WithConfigure(func(o *stems.Options) {
			o.STeMS.RMOBEntries = 16 << 10
			o.STeMS.StreamQueues = 4
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(enc.FromResult("", res))
	if err != nil {
		t.Fatal(err)
	}

	// The canonical Spec of that locally configured Runner, through the
	// service.
	spec, err := local.Spec()
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc.Submit(enc.JobSpec{RunSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobDone {
		t.Fatalf("%s (%s)", st.State, st.Error)
	}
	if string(st.Results[0]) != string(direct) {
		t.Errorf("service result differs from local WithConfigure run:\n service: %s\n local:   %s",
			st.Results[0], direct)
	}
}

// TestKnobValidation400s: knob errors are field-level ErrInvalidSpec
// naming the run and the knob.
func TestKnobValidation400s(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 4})
	defer svc.Drain()

	cases := []struct {
		name  string
		knobs map[string]sim.Value
		want  string
	}{
		{"unknown", map[string]sim.Value{"stems.rmob": sim.IntValue(1)}, `unknown knob "stems.rmob"`},
		{"kind", map[string]sim.Value{"scientific": sim.IntValue(3)}, `knob "scientific" wants a boolean`},
		{"bounds", map[string]sim.Value{"tms.lookahead": sim.IntValue(100000)}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := smallRun("em3d", 1000)
			spec.Knobs = tc.knobs
			_, err := svc.Submit(enc.JobSpec{Runs: []enc.RunSpec{smallRun("em3d", 1000), spec}})
			if err == nil {
				t.Fatal("bad knob map accepted")
			}
			if !strings.Contains(err.Error(), "run 1") || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want run 1 and %q named", err, tc.want)
			}
		})
	}
}

// TestNormalizedKnobsReportedInStatus: the job status carries the
// canonical (kind-coerced) knob map, not the submitted spelling.
func TestNormalizedKnobsReportedInStatus(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 4})
	defer svc.Drain()

	spec := smallRun("em3d", 1000)
	spec.Knobs = map[string]sim.Value{"stems.lookahead": sim.FloatValue(4)}
	j, err := svc.Submit(enc.JobSpec{RunSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if got := st.Spec.Knobs["stems.lookahead"]; got != sim.IntValue(4) {
		t.Errorf("status knob = %v (%s), want canonical int 4", got, got.Kind())
	}
}

// FuzzKnobCanonicalization drives arbitrary knob-map JSON through the
// full decode → validate → canonicalize → cache-key pipeline and checks
// the round-trip invariants the content-addressed cache rests on:
// canonicalization is idempotent (re-encoding and re-resolving the
// normalized spec yields the same bytes and the same key), and a
// canonical map survives a JSON hop unchanged.
func FuzzKnobCanonicalization(f *testing.F) {
	f.Add([]byte(`{"stems.rmob_entries":65536}`))
	f.Add([]byte(`{"stems.rmob_entries":65536.0,"scientific":false}`))
	f.Add([]byte(`{"system.mlp":8,"tms.lookahead":12}`))
	f.Add([]byte(`{"sms.use_counters":true,"stems.counter_threshold":1}`))
	f.Add([]byte(`{"unknown.knob":1}`))
	f.Add([]byte(`{"stems.lookahead":1e2}`))
	f.Add([]byte(`{"stems.lookahead":"8"}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var knobs map[string]sim.Value
		if err := json.Unmarshal(raw, &knobs); err != nil {
			t.Skip()
		}
		spec := enc.JobSpec{RunSpec: enc.RunSpec{Workload: "em3d", Accesses: 1000, Knobs: knobs}}
		runs, err := resolveSpec(&spec)
		if err != nil {
			return // invalid knob maps must only ever fail validation
		}
		key1 := runs[0].key

		// The written-back spec is canonical: re-resolving it must be a
		// fixed point for both the bytes and the content address.
		canon, err := json.Marshal(spec.RunSpec.Knobs)
		if err != nil {
			t.Fatal(err)
		}
		respec := enc.JobSpec{RunSpec: spec.RunSpec}
		reruns, err := resolveSpec(&respec)
		if err != nil {
			t.Fatalf("canonical spec failed validation: %v", err)
		}
		if reruns[0].key != key1 {
			t.Fatalf("cache key not stable under canonicalization: %s vs %s", key1, reruns[0].key)
		}
		recanon, err := json.Marshal(respec.RunSpec.Knobs)
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != string(recanon) {
			t.Fatalf("canonical knob encoding not idempotent:\n %s\n %s", canon, recanon)
		}

		// And a JSON hop of the canonical map decodes to the same key.
		var hop map[string]sim.Value
		if err := json.Unmarshal(canon, &hop); err != nil {
			t.Fatal(err)
		}
		hopSpec := enc.JobSpec{RunSpec: enc.RunSpec{Workload: "em3d", Accesses: 1000, Knobs: hop}}
		hopRuns, err := resolveSpec(&hopSpec)
		if err != nil {
			t.Fatalf("canonical map failed validation after JSON hop: %v", err)
		}
		if hopRuns[0].key != key1 {
			t.Fatalf("cache key changed across a JSON hop: %s vs %s", key1, hopRuns[0].key)
		}
	})
}
