package service

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"stems"
	"stems/internal/enc"
)

// smallRun is a spec small enough that a test run completes in tens of
// milliseconds but still exercises the full predictor pipeline.
func smallRun(workload string, accesses int) enc.RunSpec {
	return enc.RunSpec{Predictor: "stems", Workload: workload, Accesses: accesses}
}

func mustNew(t testing.TB, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func waitJob(t *testing.T, j *Job) enc.JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish: %+v", j.ID, j.Status())
	}
	return j.Status()
}

// TestSubmitMatchesDirectRun is the core acceptance check: a job's result
// must be byte-identical to the same configuration run directly through
// stems.Run and encoded with the shared marshaler.
func TestSubmitMatchesDirectRun(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2, QueueBound: 8})
	defer svc.Drain()

	j, err := svc.Submit(enc.JobSpec{RunSpec: smallRun("em3d", 30_000)})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if len(st.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(st.Results))
	}
	if st.Progress.AccessesDone != st.Progress.AccessesTotal || st.Progress.AccessesTotal != 30_000 {
		t.Errorf("progress = %+v, want 30000/30000", st.Progress)
	}

	r, err := stems.New(
		stems.WithPredictor("stems"),
		stems.WithWorkload("em3d"),
		stems.WithSeed(1),
		stems.WithAccesses(30_000),
		stems.WithSystem(stems.ScaledSystem()),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(enc.FromResult("", res))
	if err != nil {
		t.Fatal(err)
	}
	if string(st.Results[0]) != string(direct) {
		t.Errorf("service result differs from direct run:\n service: %s\n direct:  %s", st.Results[0], direct)
	}
}

// TestJobPhaseSpans checks the per-job phase accounting a finished
// status reports: all five phases present in canonical order, with the
// worked phases (queue wait, trace resolve, simulate, encode, cache
// write) each recording at least one span for a computed run — and a
// fully cache-served job recording no simulate span at all.
func TestJobPhaseSpans(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	spec := enc.JobSpec{RunSpec: smallRun("em3d", 20_000)}
	st := waitJob(t, mustSubmit(t, svc, spec))
	if st.State != enc.JobDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if len(st.Phases) != enc.NumPhases {
		t.Fatalf("got %d phase spans, want %d: %+v", len(st.Phases), enc.NumPhases, st.Phases)
	}
	for i, ph := range st.Phases {
		if ph.Phase != enc.PhaseNames[i] {
			t.Errorf("phase[%d] = %q, want %q", i, ph.Phase, enc.PhaseNames[i])
		}
		if ph.Count < 1 {
			t.Errorf("phase %q recorded %d spans, want >= 1", ph.Phase, ph.Count)
		}
		if ph.Nanos < 0 {
			t.Errorf("phase %q nanos = %d, want >= 0", ph.Phase, ph.Nanos)
		}
	}
	if sim := st.Phases[enc.PhaseSimulate]; sim.Nanos <= 0 {
		t.Errorf("simulate span = %dns, want > 0", sim.Nanos)
	}

	// A repeat of the same spec is served from the result cache: queue
	// wait is still recorded, simulate never runs.
	cached := waitJob(t, mustSubmit(t, svc, spec))
	if cached.State != enc.JobDone {
		t.Fatalf("cached job: %s (%s)", cached.State, cached.Error)
	}
	if n := cached.Phases[enc.PhaseSimulate].Count; n != 0 {
		t.Errorf("cached job recorded %d simulate spans, want 0", n)
	}
	if n := cached.Phases[enc.PhaseQueue].Count; n != 1 {
		t.Errorf("cached job recorded %d queue spans, want 1", n)
	}

	m := svc.Metrics()
	if m.AccessesPerSec1m <= 0 {
		t.Errorf("accesses_per_sec_1m = %v, want > 0 right after a run", m.AccessesPerSec1m)
	}
}

// TestCacheHitByteIdentical submits the same configuration twice: the
// second job must be served from the result cache (no recomputation) with
// byte-identical result bytes.
func TestCacheHitByteIdentical(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	spec := enc.JobSpec{RunSpec: smallRun("DB2", 20_000)}
	first := waitJob(t, mustSubmit(t, svc, spec))
	if first.State != enc.JobDone {
		t.Fatalf("first job: %s (%s)", first.State, first.Error)
	}
	second := waitJob(t, mustSubmit(t, svc, spec))
	if second.State != enc.JobDone {
		t.Fatalf("second job: %s (%s)", second.State, second.Error)
	}

	if string(first.Results[0]) != string(second.Results[0]) {
		t.Errorf("cached result not byte-identical:\n first:  %s\n second: %s", first.Results[0], second.Results[0])
	}
	if second.Progress.CacheHits != 1 {
		t.Errorf("second job cache hits = %d, want 1", second.Progress.CacheHits)
	}
	m := svc.Metrics()
	if m.CacheHits < 1 {
		t.Errorf("metrics cache hits = %d, want >= 1", m.CacheHits)
	}
	if m.RunsComputed != 1 {
		t.Errorf("runs computed = %d, want 1 (second run must not recompute)", m.RunsComputed)
	}
	if m.CacheHitRate <= 0 {
		t.Errorf("cache hit rate = %v, want > 0", m.CacheHitRate)
	}
}

// TestSingleFlight floods the pool with identical jobs: single-flight
// de-duplication must collapse them to one simulation.
func TestSingleFlight(t *testing.T) {
	svc := mustNew(t, Config{Workers: 4, QueueBound: 32})
	defer svc.Drain()

	spec := enc.JobSpec{RunSpec: smallRun("ocean", 20_000)}
	jobs := make([]*Job, 8)
	for i := range jobs {
		jobs[i] = mustSubmit(t, svc, spec)
	}
	var want string
	for i, j := range jobs {
		st := waitJob(t, j)
		if st.State != enc.JobDone {
			t.Fatalf("job %d: %s (%s)", i, st.State, st.Error)
		}
		if i == 0 {
			want = string(st.Results[0])
		} else if got := string(st.Results[0]); got != want {
			t.Errorf("job %d result differs", i)
		}
	}
	if m := svc.Metrics(); m.RunsComputed != 1 {
		t.Errorf("runs computed = %d, want 1 (single-flight)", m.RunsComputed)
	}
}

// TestSweepJob runs a multi-run job and checks ordering and per-run
// labels, plus cache reuse across runs inside one job.
func TestSweepJob(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2, QueueBound: 8})
	defer svc.Drain()

	spec := enc.JobSpec{Runs: []enc.RunSpec{
		{Predictor: "stride", Workload: "em3d", Accesses: 20_000, Label: "a"},
		{Predictor: "sms", Workload: "em3d", Accesses: 20_000, Label: "b"},
		{Predictor: "stride", Workload: "em3d", Accesses: 20_000, Label: "c"}, // same config as "a"
	}}
	st := waitJob(t, mustSubmit(t, svc, spec))
	if st.State != enc.JobDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	results, err := st.DecodedResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, wantLabel := range []string{"a", "b", "c"} {
		if results[i].Label != wantLabel {
			t.Errorf("result %d label = %q, want %q", i, results[i].Label, wantLabel)
		}
	}
	if results[0].Predictor != "stride" || results[1].Predictor != "sms" {
		t.Errorf("predictors = %s, %s; want stride, sms", results[0].Predictor, results[1].Predictor)
	}
	// Runs "a" and "c" share a content address: identical counters, and
	// only two simulations for three runs.
	ra, rc := results[0], results[2]
	ra.Label, rc.Label = "", ""
	if ra != rc {
		t.Errorf("runs a and c differ despite identical configuration")
	}
	if st.Progress.CacheHits != 1 {
		t.Errorf("job cache hits = %d, want 1", st.Progress.CacheHits)
	}
	if m := svc.Metrics(); m.RunsComputed != 2 {
		t.Errorf("runs computed = %d, want 2", m.RunsComputed)
	}
	// The em3d trace was generated once and shared through the arena.
	if m := svc.Metrics(); m.TraceGenerations != 1 {
		t.Errorf("trace generations = %d, want 1", m.TraceGenerations)
	}
}

// TestCancelQueued cancels a job before any worker reaches it.
func TestCancelQueued(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	// Occupy the single worker so the next submission stays queued.
	blocker := mustSubmit(t, svc, enc.JobSpec{RunSpec: smallRun("DB2", 400_000)})
	victim := mustSubmit(t, svc, enc.JobSpec{RunSpec: smallRun("Oracle", 400_000)})

	if err := svc.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, victim)
	if st.State != enc.JobCanceled {
		t.Errorf("victim state = %s, want canceled", st.State)
	}
	if len(st.Results) != 0 {
		t.Errorf("cancelled job has %d results", len(st.Results))
	}
	if st := waitJob(t, blocker); st.State != enc.JobDone {
		t.Errorf("blocker state = %s (%s), want done", st.State, st.Error)
	}
	if m := svc.Metrics(); m.JobsCanceled != 1 {
		t.Errorf("jobs canceled = %d, want 1", m.JobsCanceled)
	}
}

// TestCancelRunning cancels a job mid-replay; the worker must wind down
// at a block boundary without completing the trace.
func TestCancelRunning(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 4})
	defer svc.Drain()

	j := mustSubmit(t, svc, enc.JobSpec{RunSpec: smallRun("Apache", 1_000_000)})

	// Wait until the replay has demonstrably started, then cancel.
	deadline := time.Now().Add(time.Minute)
	for j.accessesDone.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job never made progress: %+v", j.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if err := svc.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != enc.JobCanceled {
		t.Fatalf("state = %s (%s), want canceled", st.State, st.Error)
	}
	if done := st.Progress.AccessesDone; done == 0 || done >= st.Progress.AccessesTotal {
		t.Errorf("accesses done = %d of %d: expected a partial replay", done, st.Progress.AccessesTotal)
	}
	// A cancelled computation must not poison the cache: resubmitting the
	// configuration computes it fresh and completes.
	st2 := waitJob(t, mustSubmit(t, svc, enc.JobSpec{RunSpec: smallRun("Apache", 1_000_000)}))
	if st2.State != enc.JobDone {
		t.Errorf("resubmission state = %s (%s), want done", st2.State, st2.Error)
	}
}

// TestValidationErrors exercises the descriptive-rejection satellite.
func TestValidationErrors(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 4})
	defer svc.Drain()

	cases := []struct {
		name string
		spec enc.JobSpec
		want string
	}{
		{"unknown predictor", enc.JobSpec{RunSpec: enc.RunSpec{Predictor: "warp-drive"}}, "unknown predictor"},
		{"unknown workload", enc.JobSpec{RunSpec: enc.RunSpec{Workload: "minesweeper"}}, "unknown workload"},
		{"negative accesses", enc.JobSpec{RunSpec: enc.RunSpec{Accesses: -5}}, "invalid accesses"},
		{"negative seed", enc.JobSpec{RunSpec: enc.RunSpec{Seed: -1}}, "invalid seed"},
		{"unknown system", enc.JobSpec{RunSpec: enc.RunSpec{System: "quantum"}}, "unknown system"},
		{"empty runs", enc.JobSpec{Runs: []enc.RunSpec{}}, "must not be empty"},
		{"both forms", enc.JobSpec{RunSpec: enc.RunSpec{Predictor: "stems"}, Runs: []enc.RunSpec{{}}}, "not both"},
		{"bad sweep run", enc.JobSpec{Runs: []enc.RunSpec{{}, {Predictor: "nope"}}}, "run 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := svc.Submit(tc.spec)
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("error = %v, want ErrInvalidSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// "empty runs" needs a non-nil empty slice, which JSON produces for
// "runs": []. Guard that the test actually models the wire case.
func TestEmptyRunsFromJSON(t *testing.T) {
	var spec enc.JobSpec
	if err := json.Unmarshal([]byte(`{"runs":[]}`), &spec); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveSpec(&spec); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("error = %v, want ErrInvalidSpec", err)
	}
}

// TestQueueBackpressure fills the bounded queue and expects load shedding.
func TestQueueBackpressure(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 1})
	defer func() { svc.Abort(); svc.Drain() }()

	// Big enough to hold the worker while we overfill the queue.
	big := enc.JobSpec{RunSpec: smallRun("Qry2", 2_000_000)}
	mustSubmit(t, svc, big)

	sawFull := false
	for i := 0; i < 10 && !sawFull; i++ {
		_, err := svc.Submit(enc.JobSpec{RunSpec: smallRun("Qry16", 2_000_000+i)})
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !sawFull {
		t.Error("never saw ErrQueueFull with queue bound 1")
	}
}

// TestDrain submits a batch and drains: every job must reach a terminal
// state before Drain returns, and late submissions must be refused.
func TestDrain(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2, QueueBound: 16})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, mustSubmit(t, svc, enc.JobSpec{RunSpec: enc.RunSpec{
			Predictor: "stride", Workload: "sparse", Seed: int64(i + 1), Accesses: 20_000,
		}}))
	}
	svc.Drain()
	for i, j := range jobs {
		st := j.Status()
		if !st.State.Terminal() {
			t.Errorf("after drain, job %d is %s", i, st.State)
		}
		if st.State != enc.JobDone {
			t.Errorf("job %d = %s (%s), want done", i, st.State, st.Error)
		}
	}
	if _, err := svc.Submit(enc.JobSpec{RunSpec: smallRun("DB2", 1000)}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit error = %v, want ErrDraining", err)
	}
}

// TestStress hammers a small pool with concurrent submissions over a
// handful of distinct configurations plus concurrent cancellations —
// run under -race in CI. Every job must land in a terminal state and the
// bookkeeping must balance.
func TestStress(t *testing.T) {
	svc := mustNew(t, Config{Workers: 4, QueueBound: 256, CacheBound: 8, TraceBound: 2})
	defer svc.Drain()

	workloads := []string{"em3d", "DB2", "Apache"}
	predictors := []string{"stems", "stride", "sms", "none"}
	const jobsN = 60

	var wg sync.WaitGroup
	jobc := make(chan *Job, jobsN)
	for i := 0; i < jobsN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := enc.JobSpec{RunSpec: enc.RunSpec{
				Predictor: predictors[i%len(predictors)],
				Workload:  workloads[i%len(workloads)],
				Seed:      int64(i%3 + 1),
				Accesses:  10_000 + 1000*(i%4),
			}}
			j, err := svc.Submit(spec)
			if err != nil {
				if errors.Is(err, ErrQueueFull) {
					return // valid shedding under stress
				}
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if i%7 == 0 {
				_ = svc.Cancel(j.ID)
			}
			jobc <- j
		}(i)
	}
	wg.Wait()
	close(jobc)

	var done, canceled int
	for j := range jobc {
		st := waitJob(t, j)
		switch st.State {
		case enc.JobDone:
			done++
			if len(st.Results) != 1 {
				t.Errorf("job %s done with %d results", j.ID, len(st.Results))
			}
		case enc.JobCanceled:
			canceled++
		default:
			t.Errorf("job %s: %s (%s)", j.ID, st.State, st.Error)
		}
	}
	if done == 0 {
		t.Error("stress run completed no jobs")
	}
	m := svc.Metrics()
	if got := m.JobsCompleted + m.JobsFailed + m.JobsCanceled; got != m.JobsSubmitted {
		t.Errorf("terminal jobs %d != submitted %d (%+v)", got, m.JobsSubmitted, m)
	}
	// TraceBound 2 is raised to Workers (4) so concurrent workers don't
	// thrash each other's traces.
	if m.TracesResident > 4 {
		t.Errorf("arena holds %d traces, effective bound is 4", m.TracesResident)
	}
	if m.CacheEntries > 8 {
		t.Errorf("result cache holds %d entries, bound is 8", m.CacheEntries)
	}
	if m.AccessesSimulated == 0 || m.AccessesPerSec <= 0 {
		t.Errorf("throughput accounting empty: %+v", m)
	}
}

// TestJobRetention checks the job table stays bounded: beyond RetainJobs
// the oldest terminal jobs are forgotten, while live jobs survive.
func TestJobRetention(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8, RetainJobs: 2})
	defer svc.Drain()

	var ids []string
	for i := 0; i < 4; i++ {
		j := mustSubmit(t, svc, enc.JobSpec{RunSpec: enc.RunSpec{
			Predictor: "none", Workload: "sparse", Seed: int64(i + 1), Accesses: 5_000,
		}})
		ids = append(ids, j.ID)
		waitJob(t, j)
	}
	if _, err := svc.Job(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest job still retained: err = %v, want ErrNotFound", err)
	}
	if _, err := svc.Job(ids[3]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	if got := len(svc.Jobs()); got > 2 {
		t.Errorf("retained %d jobs, bound is 2", got)
	}
}

// TestJobNotFound covers the lookup error path.
func TestJobNotFound(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 1})
	defer svc.Drain()
	if _, err := svc.Job("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Job error = %v, want ErrNotFound", err)
	}
	if err := svc.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel error = %v, want ErrNotFound", err)
	}
}

func mustSubmit(t *testing.T, svc *Service, spec enc.JobSpec) *Job {
	t.Helper()
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return j
}
