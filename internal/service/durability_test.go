package service

import (
	"bytes"
	"testing"

	"stems"
	"stems/internal/enc"
	"stems/internal/store"
)

func mustStore(t testing.TB, dir string, bound int) *store.Store {
	t.Helper()
	st, err := store.Open(dir, bound)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartServesFromDisk is the durability acceptance check: a
// service reopened on the same store directory must answer a previously
// computed job from disk — zero runs computed, byte-identical result.
func TestRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	spec := smallRun("em3d", 30_000)

	// First life: compute and persist.
	st1 := mustStore(t, dir, 64)
	svc1 := mustNew(t, Config{Workers: 1, QueueBound: 8, Store: st1})
	j1, err := svc1.Submit(enc.JobSpec{RunSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	first := waitJob(t, j1)
	if first.State != enc.JobDone {
		t.Fatalf("first life job ended %s: %s", first.State, first.Error)
	}
	if got := svc1.Metrics().RunsComputed; got != 1 {
		t.Fatalf("first life RunsComputed = %d, want 1", got)
	}
	svc1.Drain()
	st1.Close()

	// Second life: cold memory, warm disk.
	st2 := mustStore(t, dir, 64)
	svc2 := mustNew(t, Config{Workers: 1, QueueBound: 8, Store: st2})
	defer svc2.Drain()
	j2, err := svc2.Submit(enc.JobSpec{RunSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	second := waitJob(t, j2)
	if second.State != enc.JobDone {
		t.Fatalf("second life job ended %s: %s", second.State, second.Error)
	}

	m := svc2.Metrics()
	if m.RunsComputed != 0 {
		t.Fatalf("restarted daemon recomputed: RunsComputed = %d, want 0", m.RunsComputed)
	}
	if m.CacheHits != 1 {
		t.Fatalf("restarted daemon CacheHits = %d, want 1", m.CacheHits)
	}
	if m.Store == nil || m.Store.Hits != 1 {
		t.Fatalf("store metrics = %+v, want 1 disk hit", m.Store)
	}
	if second.Progress.CacheHits != 1 {
		t.Fatalf("job-level cache hits = %d, want 1", second.Progress.CacheHits)
	}
	if !bytes.Equal(first.Results[0], second.Results[0]) {
		t.Fatalf("restart result bytes differ:\n first=%s\nsecond=%s", first.Results[0], second.Results[0])
	}
}

// TestStoreWriteThrough checks the two-tier invariant on a live (never
// restarted) service: every computed result lands on disk under its
// stems.RunKey, byte-identical to the job's canonical result document.
func TestStoreWriteThrough(t *testing.T) {
	st := mustStore(t, t.TempDir(), 64)
	svc := mustNew(t, Config{Workers: 2, QueueBound: 8, Store: st})
	defer svc.Drain()

	specs := []enc.RunSpec{
		smallRun("em3d", 20_000),
		{Predictor: "sms", Workload: "Apache", Accesses: 20_000},
		{Predictor: "stride", Workload: "ocean", Accesses: 20_000, Seed: 7},
	}
	for _, spec := range specs {
		j, err := svc.Submit(enc.JobSpec{RunSpec: spec})
		if err != nil {
			t.Fatal(err)
		}
		final := waitJob(t, j)
		if final.State != enc.JobDone {
			t.Fatalf("%s/%s ended %s: %s", spec.Predictor, spec.Workload, final.State, final.Error)
		}
		key, err := stems.RunKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		onDisk, ok := st.Get(key)
		if !ok {
			t.Fatalf("%s/%s not written through to the store", spec.Predictor, spec.Workload)
		}
		if !bytes.Equal(onDisk, final.Results[0]) {
			t.Fatalf("%s/%s store bytes != result bytes:\nstore=%s\n  job=%s",
				spec.Predictor, spec.Workload, onDisk, final.Results[0])
		}
	}
	if got := st.Len(); got != len(specs) {
		t.Fatalf("store holds %d entries, want %d", got, len(specs))
	}
}

// TestClusterRoutingMetrics checks the /metrics shard-routing section: a
// daemon given a peer list buckets submitted runs by their owners and
// counts the ones it does not own as misrouted.
func TestClusterRoutingMetrics(t *testing.T) {
	peers := []string{"http://node-a:8091", "http://node-b:8091", "http://node-c:8091"}
	svc := mustNew(t, Config{Workers: 1, QueueBound: 32, Peers: peers, Self: peers[0]})
	defer svc.Drain()

	spec := enc.JobSpec{Runs: []enc.RunSpec{
		smallRun("em3d", 1_000),
		{Predictor: "stems", Workload: "em3d", Accesses: 1_000, Seed: 2},
		{Predictor: "stems", Workload: "em3d", Accesses: 1_000, Seed: 3},
		{Predictor: "stems", Workload: "em3d", Accesses: 1_000, Seed: 4},
	}}
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)

	m := svc.Metrics()
	if m.Cluster == nil {
		t.Fatal("no cluster metrics despite Peers configured")
	}
	if m.Cluster.Self != peers[0] {
		t.Fatalf("Self = %q, want %q", m.Cluster.Self, peers[0])
	}
	var total, owned uint64
	for i, n := range m.Cluster.PeerRuns {
		total += n
		if m.Cluster.Peers[i] == peers[0] {
			owned = n
		}
	}
	if total != 4 {
		t.Fatalf("PeerRuns sum = %d, want 4 (%v)", total, m.Cluster.PeerRuns)
	}
	if m.Cluster.MisroutedRuns != total-owned {
		t.Fatalf("MisroutedRuns = %d, want %d", m.Cluster.MisroutedRuns, total-owned)
	}

	if _, err := New(Config{Peers: peers, Self: "http://unknown:1"}); err == nil {
		t.Fatal("Self outside Peers accepted")
	}
	if _, err := New(Config{Peers: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Fatal("duplicate peers accepted")
	}
}

// FuzzStoreByteIdentity fuzzes the cross-tier contract: for arbitrary
// (valid) specs, the bytes the disk store persists are exactly the bytes
// the service serves — no re-marshaling drift anywhere between the
// worker, the memory cache, the store, and the job status.
func FuzzStoreByteIdentity(f *testing.F) {
	f.Add(uint8(0), uint8(0), int64(1), uint16(2_000))
	f.Add(uint8(3), uint8(4), int64(9), uint16(5_000))
	f.Add(uint8(200), uint8(200), int64(123456), uint16(60_000))

	predictors := stems.Predictors()
	workloads := stems.WorkloadNames()

	f.Fuzz(func(t *testing.T, predIdx, wlIdx uint8, seed int64, accesses uint16) {
		spec := enc.RunSpec{
			Predictor: predictors[int(predIdx)%len(predictors)],
			Workload:  workloads[int(wlIdx)%len(workloads)],
			Seed:      seed,
			// Keep runs tiny: the property under test is byte plumbing,
			// not simulation scale.
			Accesses: 500 + int(accesses)%4_000,
		}
		if spec.Seed < 0 {
			spec.Seed = -spec.Seed
		}
		st := mustStore(t, t.TempDir(), 16)
		svc := mustNew(t, Config{Workers: 1, QueueBound: 4, Store: st})
		defer svc.Drain()

		j, err := svc.Submit(enc.JobSpec{RunSpec: spec})
		if err != nil {
			t.Fatal(err)
		}
		final := waitJob(t, j)
		if final.State != enc.JobDone {
			t.Fatalf("job ended %s: %s", final.State, final.Error)
		}
		key, err := stems.RunKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		onDisk, ok := st.Get(key)
		if !ok {
			t.Fatal("computed result not in store")
		}
		if !bytes.Equal(onDisk, final.Results[0]) {
			t.Fatalf("store bytes != served bytes for %+v:\nstore=%s\n  job=%s", spec, onDisk, final.Results[0])
		}
	})
}
