package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stems"
	"stems/internal/enc"
	"stems/internal/notify"
	"stems/internal/sched"
	"stems/internal/sim"
)

// chanStatuses collects completion-hook statuses under a lock.
type chanStatuses struct {
	mu  sync.Mutex
	got []enc.JobStatus
}

func (c *chanStatuses) add(st enc.JobStatus) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, st)
}

func (c *chanStatuses) snapshot() []enc.JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]enc.JobStatus(nil), c.got...)
}

// flakySink is a webhook receiver that 500s its first failFirst requests
// and hands successful deliveries to waitDelivery.
type flakySink struct {
	mu        sync.Mutex
	failFirst int
	requests  int
	delivered chan enc.Notification
}

func (s *flakySink) start(t *testing.T) string {
	t.Helper()
	s.delivered = make(chan enc.Notification, 8)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.requests++
		fail := s.requests <= s.failFirst
		s.mu.Unlock()
		if fail {
			http.Error(w, "induced failure", http.StatusInternalServerError)
			return
		}
		var n enc.Notification
		if err := json.NewDecoder(r.Body).Decode(&n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.delivered <- n
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

func (s *flakySink) requestCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

func (s *flakySink) waitDelivery(t *testing.T) enc.Notification {
	t.Helper()
	select {
	case n := <-s.delivered:
		return n
	case <-time.After(time.Minute):
		t.Fatal("no notification delivered within 1m")
		return enc.Notification{}
	}
}

// gridOf builds a one-axis grid over stems.lookahead for a small run.
func gridOf(workload string, accesses int, lookaheads ...int64) *enc.GridSpec {
	vals := make([]sim.Value, len(lookaheads))
	for i, v := range lookaheads {
		vals[i] = sim.IntValue(v)
	}
	return &enc.GridSpec{
		Base: smallRun(workload, accesses),
		Axes: []enc.GridAxis{{Knob: "stems.lookahead", Values: vals}},
	}
}

// TestGridJobMatchesClientExpansion is the grid acceptance check: a
// server-side grid job's result list must be byte-identical to the same
// cells written out by the client as an explicit runs list.
func TestGridJobMatchesClientExpansion(t *testing.T) {
	grid := &enc.GridSpec{
		Base: smallRun("em3d", 20_000),
		Axes: []enc.GridAxis{
			{Knob: "stems.lookahead", Values: []sim.Value{sim.IntValue(4), sim.IntValue(8)}},
			{Knob: "stems.pst_entries", Values: []sim.Value{sim.IntValue(1024), sim.IntValue(4096)}},
		},
	}
	expanded, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}

	svcGrid := mustNew(t, Config{Workers: 2, QueueBound: 8})
	defer svcGrid.Drain()
	gst := waitJob(t, mustSubmit(t, svcGrid, enc.JobSpec{Grid: grid}))
	if gst.State != enc.JobDone {
		t.Fatalf("grid job: %s (%s)", gst.State, gst.Error)
	}

	// A fresh service, so the grid job's cache can't feed the client path.
	svcList := mustNew(t, Config{Workers: 2, QueueBound: 8})
	defer svcList.Drain()
	lst := waitJob(t, mustSubmit(t, svcList, enc.JobSpec{Runs: expanded}))
	if lst.State != enc.JobDone {
		t.Fatalf("runs job: %s (%s)", lst.State, lst.Error)
	}

	if len(gst.Results) != 4 || len(lst.Results) != len(gst.Results) {
		t.Fatalf("results: grid %d, runs %d, want 4", len(gst.Results), len(lst.Results))
	}
	for i := range gst.Results {
		if string(gst.Results[i]) != string(lst.Results[i]) {
			t.Errorf("result %d differs:\n grid: %s\n runs: %s", i, gst.Results[i], lst.Results[i])
		}
	}
	// Status retains the grid alongside the server-side expansion.
	if gst.Spec.Grid == nil || len(gst.Spec.Runs) != 4 {
		t.Errorf("status spec lost the grid or its expansion: grid=%v runs=%d",
			gst.Spec.Grid != nil, len(gst.Spec.Runs))
	}
	if m := svcGrid.Metrics(); m.GridJobs != 1 {
		t.Errorf("GridJobs = %d, want 1", m.GridJobs)
	}
	if m := svcList.Metrics(); m.GridJobs != 0 {
		t.Errorf("runs-list service GridJobs = %d, want 0", m.GridJobs)
	}
}

// TestGridDuplicateCellsComputedOnce pins the dedup guarantee: a grid
// with duplicate cells computes each distinct content address exactly
// once; the duplicates are cache hits.
func TestGridDuplicateCellsComputedOnce(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2, QueueBound: 8})
	defer svc.Drain()

	// 3 cells, 2 unique: lookahead 8 appears twice.
	st := waitJob(t, mustSubmit(t, svc, enc.JobSpec{Grid: gridOf("em3d", 20_000, 8, 8, 4)}))
	if st.State != enc.JobDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if st.Progress.RunsDone != 3 {
		t.Errorf("RunsDone = %d, want 3", st.Progress.RunsDone)
	}
	uniqueKeys := make(map[string]bool)
	for _, r := range st.Spec.Runs {
		key, err := stems.RunKey(r)
		if err != nil {
			t.Fatal(err)
		}
		uniqueKeys[key] = true
	}
	if len(uniqueKeys) != 2 {
		t.Fatalf("expansion has %d unique keys, want 2", len(uniqueKeys))
	}
	m := svc.Metrics()
	if int(m.RunsComputed) != len(uniqueKeys) {
		t.Errorf("RunsComputed = %d, want %d (one per unique content address)",
			m.RunsComputed, len(uniqueKeys))
	}
	if st.Progress.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1 (the duplicate cell)", st.Progress.CacheHits)
	}
	// The duplicate cells' results are byte-identical.
	if string(st.Results[0]) != string(st.Results[1]) {
		t.Errorf("duplicate cells differ:\n %s\n %s", st.Results[0], st.Results[1])
	}
}

func TestGridSpecValidation(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()

	cases := []struct {
		name string
		spec enc.JobSpec
		want string
	}{
		{"grid plus runs", enc.JobSpec{
			Grid: gridOf("em3d", 1000, 4),
			Runs: []enc.RunSpec{smallRun("em3d", 1000)},
		}, "not both"},
		{"grid plus top-level run", enc.JobSpec{
			Grid:    gridOf("em3d", 1000, 4),
			RunSpec: smallRun("em3d", 1000),
		}, "not both"},
		{"empty grid", enc.JobSpec{Grid: &enc.GridSpec{}}, "no axes"},
		{"unknown knob", enc.JobSpec{Grid: &enc.GridSpec{
			Base: smallRun("em3d", 1000),
			Axes: []enc.GridAxis{{Knob: "stems.bogus", Values: []sim.Value{sim.IntValue(1)}}},
		}}, "stems.bogus"},
	}
	for _, tc := range cases {
		_, err := svc.Submit(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
		if err != nil && !strings.Contains(err.Error(), ErrInvalidSpec.Error()) {
			t.Errorf("%s: err %v is not an ErrInvalidSpec", tc.name, err)
		}
		// Validate agrees with Submit without enqueueing.
		if verr := Validate(tc.spec); verr == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
	if err := Validate(enc.JobSpec{Grid: gridOf("em3d", 1000, 4, 8)}); err != nil {
		t.Errorf("Validate rejected a good grid: %v", err)
	}
	if m := svc.Metrics(); m.JobsSubmitted != 0 || m.GridJobs != 0 {
		t.Errorf("rejected specs counted: %+v", m)
	}
}

// TestOnJobDoneHooks pins the completion-hook contract: hooks fire with
// terminal statuses for done jobs and queued-canceled jobs alike, and
// Drain returning means the hooks of executed jobs have run.
func TestOnJobDoneHooks(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	var mu chanStatuses
	svc.OnJobDone(mu.add)

	j := mustSubmit(t, svc, enc.JobSpec{RunSpec: smallRun("em3d", 20_000)})
	waitJob(t, j)
	svc.Drain()

	got := mu.snapshot()
	if len(got) != 1 || got[0].ID != j.ID || got[0].State != enc.JobDone {
		t.Fatalf("hook statuses = %+v, want one done status for %s", got, j.ID)
	}
}

func TestOnJobDoneHookQueuedCancel(t *testing.T) {
	// One worker wedged by a long first job, so the second stays queued.
	svc := mustNew(t, Config{Workers: 1, QueueBound: 8})
	defer svc.Drain()
	var mu chanStatuses
	svc.OnJobDone(mu.add)

	blocker := mustSubmit(t, svc, enc.JobSpec{RunSpec: smallRun("em3d", 400_000)})
	queued := mustSubmit(t, svc, enc.JobSpec{RunSpec: smallRun("Zeus", 1000)})
	if err := svc.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, queued)
	if st.State != enc.JobCanceled {
		t.Fatalf("queued job state = %s, want canceled", st.State)
	}
	// The hook ran synchronously inside Cancel.
	found := false
	for _, got := range mu.snapshot() {
		if got.ID == queued.ID && got.State == enc.JobCanceled {
			found = true
		}
	}
	if !found {
		t.Errorf("no canceled hook for %s: %+v", queued.ID, mu.snapshot())
	}
	_ = svc.Cancel(blocker.ID)
	waitJob(t, blocker)
}

// TestScheduleFireDeliversNotification is the end-to-end wiring check at
// the service level: a schedule fires under a fake clock, the job runs
// to completion, the completion hook attributes it back to the schedule,
// and the notification is delivered to a webhook that fails the first
// request — proving the retry path — all through the same glue
// cmd/stemsd installs.
func TestScheduleFireDeliversNotification(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2, QueueBound: 8})
	defer svc.Drain()

	sk := &flakySink{failFirst: 1}
	hookSrv := sk.start(t)

	set := notify.NewSet(svc.Obs(), nil)
	if err := set.Register(notify.NewWebhook("hook", notify.WebhookConfig{
		URL: hookSrv, Backoff: time.Millisecond,
	}), false); err != nil {
		t.Fatal(err)
	}

	clk := sched.NewFakeClock(time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC))
	scheduler, err := sched.New(sched.Config{
		Submit: func(spec enc.JobSpec) (string, error) {
			j, err := svc.Submit(spec)
			if err != nil {
				return "", err
			}
			return j.ID, nil
		},
		Validate:    Validate,
		HasNotifier: set.Has,
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scheduler.Stop()

	// The cmd/stemsd completion glue: attribute, then fan out.
	svc.OnJobDone(func(st enc.JobStatus) {
		name, names, _ := scheduler.JobCompleted(st)
		set.Send(names, enc.NotificationFromStatus(st, name))
	})

	if _, err := scheduler.Add(enc.ScheduleSpec{
		Name:   "smoke",
		Cron:   "@every 1m",
		Job:    &enc.JobSpec{Grid: gridOf("em3d", 20_000, 4, 4)},
		Notify: []string{"hook"},
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)

	n := sk.waitDelivery(t)
	if n.Schedule != "smoke" || n.State != enc.JobDone {
		t.Fatalf("notification = %+v, want done for schedule smoke", n)
	}
	if n.RunsTotal != 2 || n.RunsDone != 2 || n.CacheHits != 1 {
		t.Errorf("notification progress = %+v, want 2 runs with 1 cache hit", n)
	}
	if got := sk.requestCount(); got != 2 {
		t.Errorf("webhook saw %d requests, want 2 (first fails, retry lands)", got)
	}

	set.Close()
	if m := set.Metrics(); m.Sent != 1 || m.Failed != 0 || m.Retries != 1 {
		t.Errorf("notify metrics = %+v, want 1 sent with 1 retry", m)
	}
	st, err := scheduler.Get("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if st.Fires != 1 || st.LastState != enc.JobDone {
		t.Errorf("schedule status = %+v, want 1 fire ending done", st)
	}
}
