package trace

import "sync"

// ArenaKey identifies one generated trace: the workload name, the generator
// seed, and the trace length.
type ArenaKey struct {
	Name string
	Seed int64
	N    int
}

// ArenaStats summarizes an arena's activity.
type ArenaStats struct {
	// Generations is the total number of generator invocations.
	Generations int
	// Regenerated counts keys generated more than once (a key re-generated
	// after Drop, or — if this is ever nonzero without Drop — a caching
	// bug). The figure harness's generation-count test asserts zero.
	Regenerated int
	// Hits counts Get calls served from cache.
	Hits int
	// Resident is the number of traces currently held.
	Resident int
}

// arenaEntry is one cached trace; gen is a single-flight latch so
// concurrent Gets of the same key generate once.
type arenaEntry struct {
	gen sync.Once
	bt  *BlockTrace
}

// Arena caches generated workload traces so that a grid of runs — every
// predictor kind × seed cell of a figure, every point of a sweep —
// replays one shared read-only trace instead of regenerating it per cell.
// Trace generation costs as much as simulation for the synthetic suite,
// and the figure harness used to pay it O(kinds × seeds) times per
// workload; through an arena each (workload, seed, length) trace is
// generated exactly once.
//
// Traces are held as columnar BlockTraces — the generator's []Access is
// compacted on entry and released, so a resident trace costs ~12.8
// bytes/access instead of 24 (see BlockTrace), and every replay feeds the
// batched kernel directly.
//
// An Arena is safe for concurrent use. The traces it hands out are shared:
// callers must treat them as read-only.
type Arena struct {
	mu      sync.Mutex
	entries map[ArenaKey]*arenaEntry
	gens    map[ArenaKey]int
	hits    int
}

// NewArena creates an empty trace cache.
func NewArena() *Arena {
	return &Arena{
		entries: make(map[ArenaKey]*arenaEntry),
		gens:    make(map[ArenaKey]int),
	}
}

// Get returns the cached trace for (name, seed, n), invoking generate to
// produce it on first use; the generated slice is compacted into columnar
// blocks and not retained. Concurrent Gets of the same key block until the
// single generator invocation completes.
func (a *Arena) Get(name string, seed int64, n int, generate func() []Access) *BlockTrace {
	k := ArenaKey{Name: name, Seed: seed, N: n}
	a.mu.Lock()
	e, ok := a.entries[k]
	if !ok {
		e = &arenaEntry{}
		a.entries[k] = e
	} else {
		a.hits++
	}
	a.mu.Unlock()
	e.gen.Do(func() {
		e.bt = NewBlockTrace(generate())
		a.mu.Lock()
		a.gens[k]++
		a.mu.Unlock()
	})
	return e.bt
}

// Drop releases the trace for (name, seed, n), freeing its memory. The
// figure harness drops the extra confidence-interval seeds of Figure 10 as
// soon as their cells complete, keeping peak memory near one trace per
// worker. Generation counts survive Drop.
func (a *Arena) Drop(name string, seed int64, n int) {
	a.mu.Lock()
	delete(a.entries, ArenaKey{Name: name, Seed: seed, N: n})
	a.mu.Unlock()
}

// Stats returns cumulative cache statistics.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ArenaStats{Hits: a.hits, Resident: len(a.entries)}
	for _, n := range a.gens {
		st.Generations += n
		if n > 1 {
			st.Regenerated++
		}
	}
	return st
}

// Generations returns how many times the given key's trace has been
// generated over the arena's lifetime (Drop does not reset it).
func (a *Arena) Generations(name string, seed int64, n int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gens[ArenaKey{Name: name, Seed: seed, N: n}]
}
