package trace

import (
	"testing"

	"stems/internal/mem"
)

func TestSamplerDutyCycle(t *testing.T) {
	in := mkAccesses(100)
	s := NewSampler(NewSliceSource(in), 3, 2) // skip 3, measure 2
	var measured, total int
	var a Access
	for s.Next(&a) {
		total++
		if s.LastMeasured() {
			measured++
		}
	}
	if total != 100 {
		t.Fatalf("sampler dropped accesses: %d", total)
	}
	if measured != 40 { // 2 of every 5
		t.Fatalf("measured = %d, want 40", measured)
	}
	if s.MeasuredFraction() != 0.4 {
		t.Fatalf("duty cycle = %v", s.MeasuredFraction())
	}
}

func TestSamplerPhasePattern(t *testing.T) {
	s := NewSampler(NewSliceSource(mkAccesses(10)), 2, 1)
	want := []bool{false, false, true, false, false, true, false, false, true, false}
	var a Access
	for i := 0; s.Next(&a); i++ {
		if s.LastMeasured() != want[i] {
			t.Fatalf("access %d measured=%v, want %v", i, s.LastMeasured(), want[i])
		}
	}
}

func TestSamplerNoSkip(t *testing.T) {
	s := NewSampler(NewSliceSource(mkAccesses(5)), 0, 3)
	var a Access
	for s.Next(&a) {
		if !s.LastMeasured() {
			t.Fatal("skip=0 sampler left unmeasured accesses")
		}
	}
}

func TestSamplerPassesAccessesUnchanged(t *testing.T) {
	in := []Access{{Addr: mem.Addr(4096), PC: 7, Dep: true, Think: 9}}
	s := NewSampler(NewSliceSource(in), 1, 1)
	var a Access
	if !s.Next(&a) || a != in[0] {
		t.Fatalf("access mutated: %+v", a)
	}
}

func TestSamplerDefensiveParams(t *testing.T) {
	s := NewSampler(NewSliceSource(mkAccesses(3)), -5, 0)
	if s.SkipLen != 0 || s.MeasureLen != 1 {
		t.Fatalf("defaults = %d/%d", s.SkipLen, s.MeasureLen)
	}
}
