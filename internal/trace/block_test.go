package trace

import (
	"math/rand"
	"testing"

	"stems/internal/mem"
)

// randomAccesses builds a deterministic pseudo-random trace exercising
// every column: scattered addresses, a small PC set (dictionary-friendly),
// stores, dependent accesses, and varying think times.
func randomAccesses(seed int64, n int) []Access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Access, n)
	for i := range out {
		out[i] = Access{
			Addr:  mem.Addr(rng.Uint64() >> 20),
			PC:    uint64(rng.Intn(50)) * 4,
			Write: rng.Intn(5) == 0,
			Dep:   rng.Intn(7) == 0,
			Think: uint16(rng.Intn(300)),
		}
	}
	return out
}

func TestBlockAppendAtRoundTrip(t *testing.T) {
	in := randomAccesses(1, 1000)
	var b Block
	for _, a := range in {
		if !b.Append(a) {
			t.Fatal("Append refused below capacity")
		}
	}
	if b.N != len(in) {
		t.Fatalf("N = %d, want %d", b.N, len(in))
	}
	for i, a := range in {
		if got := b.At(i); got != a {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, a)
		}
	}
	if len(b.PCDict) != 50 {
		t.Errorf("PC dictionary holds %d entries, want 50", len(b.PCDict))
	}
}

func TestBlockCapacity(t *testing.T) {
	var b Block
	for i := 0; i < BlockCap; i++ {
		if !b.Append(Access{Addr: mem.Addr(i)}) {
			t.Fatalf("Append refused at %d < BlockCap", i)
		}
	}
	if !b.Full() {
		t.Fatal("block not Full at BlockCap")
	}
	if b.Append(Access{}) {
		t.Fatal("Append accepted beyond BlockCap")
	}
	b.Reset()
	if b.N != 0 || b.Full() {
		t.Fatal("Reset did not empty the block")
	}
	if !b.Append(Access{Addr: 7, Write: true}) {
		t.Fatal("Append after Reset failed")
	}
	if got := b.At(0); got.Addr != 7 || !got.Write {
		t.Fatalf("post-Reset At(0) = %+v", got)
	}
}

func TestBlockHasWrites(t *testing.T) {
	var b Block
	b.Append(Access{Addr: 1})
	b.Append(Access{Addr: 2})
	if b.HasWrites() {
		t.Fatal("HasWrites true without stores")
	}
	b.Append(Access{Addr: 3, Write: true})
	if !b.HasWrites() {
		t.Fatal("HasWrites false with a store")
	}
}

func TestBlockTraceRoundTrip(t *testing.T) {
	// Straddle several blocks, with a partial tail.
	in := randomAccesses(2, 2*BlockCap+137)
	bt := NewBlockTrace(in)
	if bt.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", bt.Len(), len(in))
	}
	if bt.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", bt.NumBlocks())
	}
	got := bt.Accesses()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestBlockTraceSourceMatchesSlice(t *testing.T) {
	in := randomAccesses(3, BlockCap+55)
	bt := NewBlockTrace(in)
	got := Collect(bt.Source(), 0)
	if len(got) != len(in) {
		t.Fatalf("Source yielded %d accesses, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestBlockTraceCursorAliases(t *testing.T) {
	in := randomAccesses(4, BlockCap+100)
	bt := NewBlockTrace(in)
	var b Block
	cur := bt.Blocks()
	if !cur.NextBlock(&b) {
		t.Fatal("no first block")
	}
	if &b.Addrs[0] != &bt.BlockAt(0).Addrs[0] {
		t.Fatal("cursor block does not alias trace storage")
	}
	// A shared block refuses Append until Reset detaches it.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Append to shared block did not panic")
			}
		}()
		b.Append(Access{})
	}()
	b.Reset()
	if !b.Append(Access{Addr: 9}) {
		t.Fatal("Append after Reset failed")
	}
	if &bt.BlockAt(0).Addrs[0] == &b.Addrs[0] {
		t.Fatal("Reset did not detach shared storage")
	}
	if bt.BlockAt(0).At(0) != in[0] {
		t.Fatal("trace storage corrupted by detached append")
	}
}

func TestBlocksUnblockRoundTrip(t *testing.T) {
	in := randomAccesses(5, BlockCap+321)
	src := Unblock(Blocks(NewSliceSource(in)))
	got := Collect(src, 0)
	if len(got) != len(in) {
		t.Fatalf("round trip yielded %d accesses, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

// dualSource implements both Source and BlockSource, like *Reader.
type dualSource struct {
	SliceSource
	bt *BlockTrace
}

func (d *dualSource) NextBlock(b *Block) bool { return d.bt.Blocks().NextBlock(b) }

func TestBlocksUnwrapsBlockSources(t *testing.T) {
	d := &dualSource{bt: NewBlockTrace(randomAccesses(6, 10))}
	if Blocks(d) != BlockSource(d) {
		t.Fatal("Blocks wrapped a source that already is a BlockSource")
	}
}

func TestBlockTraceMemBytesSmallerThanSlice(t *testing.T) {
	in := randomAccesses(7, 4*BlockCap)
	bt := NewBlockTrace(in)
	aos := len(in) * 24 // unsafe.Sizeof(Access{}) on 64-bit
	if soa := bt.MemBytes(); float64(aos)/float64(soa) < 1.5 {
		t.Fatalf("BlockTrace = %d bytes vs []Access = %d bytes; want >= 1.5x smaller", soa, aos)
	}
}

func TestBlockTraceAppendBlock(t *testing.T) {
	in := randomAccesses(9, 2*BlockCap+77)
	src := NewBlockTrace(in)
	// Frame-at-a-time copy (the ReadTraceFileBlocks fast path).
	dst := &BlockTrace{}
	var b Block
	for cur := src.Blocks(); cur.NextBlock(&b); {
		dst.AppendBlock(&b)
	}
	dst.Seal()
	if dst.Len() != len(in) {
		t.Fatalf("copied trace holds %d accesses, want %d", dst.Len(), len(in))
	}
	got := dst.Accesses()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], in[i])
		}
	}
	// Copies own their storage.
	if &dst.BlockAt(0).Addrs[0] == &src.BlockAt(0).Addrs[0] {
		t.Fatal("AppendBlock aliased the source block")
	}

	// Appending a block onto a partial tail falls back to per-access
	// appends and still round-trips.
	mixed := &BlockTrace{}
	mixed.Append(in[0])
	var whole Block
	for _, a := range in[:100] {
		whole.Append(a)
	}
	mixed.AppendBlock(&whole)
	if mixed.Len() != 101 {
		t.Fatalf("mixed trace holds %d accesses, want 101", mixed.Len())
	}
	if acc := mixed.Accesses(); acc[0] != in[0] || acc[1] != in[0] || acc[100] != in[99] {
		t.Fatal("partial-tail AppendBlock scrambled the order")
	}
}

func TestUnblockForwardsLenHint(t *testing.T) {
	in := randomAccesses(10, 3000)
	got := Collect(Unblock(NewBlockTrace(in).Blocks()), 0)
	if len(got) != len(in) || cap(got) != len(in) {
		t.Fatalf("len/cap = %d/%d, want %d/%d (hint forwarded)", len(got), cap(got), len(in), len(in))
	}
}

func TestCollectPreallocatesFromHints(t *testing.T) {
	in := randomAccesses(8, 5000)
	for name, src := range map[string]Source{
		"slice":      NewSliceSource(in),
		"limit":      NewLimit(NewSliceSource(in), 2000),
		"blocktrace": NewBlockTrace(in).Source(),
	} {
		got := Collect(src, 0)
		want := len(in)
		if name == "limit" {
			want = 2000
		}
		if len(got) != want {
			t.Fatalf("%s: collected %d, want %d", name, len(got), want)
		}
		// The hint sized the backing array exactly: no growth headroom.
		if cap(got) != want {
			t.Errorf("%s: cap = %d, want exactly %d (preallocated)", name, cap(got), want)
		}
	}
}

func TestLimitLenHint(t *testing.T) {
	if got := NewLimit(NewSliceSource(mkAccesses(4)), 100).Len(); got != 4 {
		t.Fatalf("Limit(100) over 4 hints %d, want 4", got)
	}
	if got := NewLimit(NewSliceSource(mkAccesses(100)), 7).Len(); got != 7 {
		t.Fatalf("Limit(7) over 100 hints %d, want 7", got)
	}
	if got := NewLimit(FuncSource(func(*Access) bool { return false }), 7).Len(); got != 7 {
		t.Fatalf("Limit(7) over unhinted source hints %d, want 7", got)
	}
}
