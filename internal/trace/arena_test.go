package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

func testTrace(n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = Access{Addr: 64 * (1 + 1<<30), PC: uint64(i)}
	}
	return out
}

func TestArenaGeneratesOnce(t *testing.T) {
	a := NewArena()
	var calls atomic.Int64
	gen := func() []Access {
		calls.Add(1)
		return testTrace(4)
	}
	first := a.Get("wl", 1, 4, gen)
	second := a.Get("wl", 1, 4, gen)
	if calls.Load() != 1 {
		t.Fatalf("generator ran %d times, want 1", calls.Load())
	}
	if first != second {
		t.Fatal("second Get returned a different trace")
	}
	if first.Len() != 4 {
		t.Fatalf("cached trace holds %d accesses, want 4", first.Len())
	}
	if got := first.Accesses(); got[2] != testTrace(4)[2] {
		t.Fatalf("cached trace decodes to %+v", got)
	}
	st := a.Stats()
	if st.Generations != 1 || st.Hits != 1 || st.Resident != 1 || st.Regenerated != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArenaKeysAreDistinct(t *testing.T) {
	a := NewArena()
	var calls atomic.Int64
	gen := func() []Access { calls.Add(1); return testTrace(2) }
	a.Get("wl", 1, 2, gen)
	a.Get("wl", 2, 2, gen) // different seed
	a.Get("wl", 1, 3, gen) // different length
	a.Get("other", 1, 2, gen)
	if calls.Load() != 4 {
		t.Fatalf("generator ran %d times, want 4", calls.Load())
	}
}

func TestArenaConcurrentSingleFlight(t *testing.T) {
	a := NewArena()
	var calls atomic.Int64
	gen := func() []Access { calls.Add(1); return testTrace(8) }
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := a.Get("wl", 7, 8, gen); got.Len() != 8 {
				t.Errorf("len = %d", got.Len())
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("generator ran %d times under contention, want 1", calls.Load())
	}
}

func TestArenaDropReleasesAndCounts(t *testing.T) {
	a := NewArena()
	var calls atomic.Int64
	gen := func() []Access { calls.Add(1); return testTrace(2) }
	a.Get("wl", 1, 2, gen)
	a.Drop("wl", 1, 2)
	if st := a.Stats(); st.Resident != 0 {
		t.Fatalf("resident after drop = %d", st.Resident)
	}
	a.Get("wl", 1, 2, gen)
	if calls.Load() != 2 {
		t.Fatalf("generator ran %d times, want 2 (regenerated after Drop)", calls.Load())
	}
	if got := a.Generations("wl", 1, 2); got != 2 {
		t.Fatalf("Generations = %d, want 2", got)
	}
	if st := a.Stats(); st.Regenerated != 1 {
		t.Fatalf("Regenerated = %d, want 1", st.Regenerated)
	}
	// Dropping an absent key is a no-op.
	a.Drop("missing", 9, 9)
}
