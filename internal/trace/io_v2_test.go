package trace

import (
	"bytes"
	"errors"
	"testing"

	"stems/internal/mem"
)

// writeTrace encodes in with the given format version.
func writeTrace(t *testing.T, in []Access, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, version)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(in)) {
		t.Fatalf("v%d writer count = %d, want %d", version, w.Count(), len(in))
	}
	return buf.Bytes()
}

func TestV2RoundTrip(t *testing.T) {
	in := append(randomAccesses(11, BlockCap+777), []Access{
		{Addr: 0x1234, PC: 0xdeadbeef, Write: false, Dep: true, Think: 120},
		{Addr: 0, PC: 0, Write: true, Dep: false, Think: 0},
		{Addr: ^mem.Addr(0), PC: ^uint64(0), Write: true, Dep: true, Think: 65535},
		{Addr: 1, PC: 42}, // huge negative delta after ^0
	}...)
	r := NewReader(bytes.NewReader(writeTrace(t, in, traceV2)))
	out := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if r.Version() != traceV2 {
		t.Fatalf("Version = %d, want 2", r.Version())
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	if r.Count() != uint64(len(in)) {
		t.Fatalf("Count = %d, want %d", r.Count(), len(in))
	}
}

func TestV2EmptyTrace(t *testing.T) {
	r := NewReader(bytes.NewReader(writeTrace(t, nil, traceV2)))
	if out := Collect(r, 0); len(out) != 0 || r.Err() != nil {
		t.Fatalf("empty v2 trace: %d records, err %v", len(out), r.Err())
	}
}

// TestV1V2Equivalence is the cross-format contract: the same accesses
// written under both versions decode to identical records.
func TestV1V2Equivalence(t *testing.T) {
	in := randomAccesses(12, 3*BlockCap+19)
	v1 := NewReader(bytes.NewReader(writeTrace(t, in, traceV1)))
	v2 := NewReader(bytes.NewReader(writeTrace(t, in, traceV2)))
	a1 := Collect(v1, 0)
	a2 := Collect(v2, 0)
	if v1.Err() != nil || v2.Err() != nil {
		t.Fatalf("errors: v1=%v v2=%v", v1.Err(), v2.Err())
	}
	if len(a1) != len(in) || len(a2) != len(in) {
		t.Fatalf("lengths: v1=%d v2=%d want %d", len(a1), len(a2), len(in))
	}
	for i := range in {
		if a1[i] != a2[i] || a1[i] != in[i] {
			t.Fatalf("record %d: v1=%+v v2=%+v in=%+v", i, a1[i], a2[i], in[i])
		}
	}
}

func TestV2SmallerThanV1(t *testing.T) {
	in := randomAccesses(13, 2*BlockCap)
	v1 := writeTrace(t, in, traceV1)
	v2 := writeTrace(t, in, traceV2)
	if len(v2)*2 >= len(v1) {
		t.Fatalf("v2 = %d bytes vs v1 = %d; want at least 2x smaller", len(v2), len(v1))
	}
}

func TestV2NextBlockAligned(t *testing.T) {
	in := randomAccesses(14, BlockCap+99)
	r := NewReader(bytes.NewReader(writeTrace(t, in, traceV2)))
	var b Block
	total := 0
	for r.NextBlock(&b) {
		for i := 0; i < b.N; i++ {
			if got := b.At(i); got != in[total+i] {
				t.Fatalf("block access %d = %+v, want %+v", total+i, got, in[total+i])
			}
		}
		total += b.N
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if total != len(in) || r.Count() != uint64(len(in)) {
		t.Fatalf("blocks covered %d accesses (Count %d), want %d", total, r.Count(), len(in))
	}
}

// TestV1NextBlock covers the batching path over the legacy record format.
func TestV1NextBlock(t *testing.T) {
	in := randomAccesses(15, BlockCap+7)
	r := NewReader(bytes.NewReader(writeTrace(t, in, traceV1)))
	var b Block
	var got []Access
	for r.NextBlock(&b) {
		for i := 0; i < b.N; i++ {
			got = append(got, b.At(i))
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(in) {
		t.Fatalf("got %d accesses, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

// TestV2MixedNextAndNextBlock drains a few accesses one at a time, then
// switches to block reads: nothing is lost or duplicated.
func TestV2MixedNextAndNextBlock(t *testing.T) {
	in := randomAccesses(16, BlockCap+50)
	r := NewReader(bytes.NewReader(writeTrace(t, in, traceV2)))
	got := make([]Access, 0, len(in))
	var a Access
	for i := 0; i < 10; i++ {
		if !r.Next(&a) {
			t.Fatal("early EOF")
		}
		got = append(got, a)
	}
	var b Block
	for r.NextBlock(&b) {
		for i := 0; i < b.N; i++ {
			got = append(got, b.At(i))
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(in) {
		t.Fatalf("mixed read yielded %d accesses, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestV2WriteBlockFastPath(t *testing.T) {
	in := randomAccesses(17, BlockCap+BlockCap/2)
	bt := NewBlockTrace(in)
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	var b Block
	cur := bt.Blocks()
	for cur.NextBlock(&b) {
		if err := w.WriteBlock(&b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(in)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(in))
	}
	out := Collect(NewReader(&buf), 0)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("access %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestV2Truncated(t *testing.T) {
	in := randomAccesses(18, 100)
	full := writeTrace(t, in, traceV2)
	for _, cut := range []int{1, 5, len(full) / 2, len(full) - 1} {
		r := NewReader(bytes.NewReader(full[:len(full)-cut]))
		Collect(r, 0)
		if !errors.Is(r.Err(), ErrBadTrace) {
			t.Fatalf("cut %d: err = %v, want ErrBadTrace", cut, r.Err())
		}
	}
}

func TestNewWriterVersionRejectsUnknown(t *testing.T) {
	if _, err := NewWriterVersion(&bytes.Buffer{}, 3); err == nil {
		t.Fatal("version 3 accepted")
	}
}
