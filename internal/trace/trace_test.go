package trace

import (
	"testing"
	"testing/quick"

	"stems/internal/mem"
)

func mkAccesses(n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = Access{Addr: mem.Addr(i * 64), PC: uint64(i % 7)}
	}
	return out
}

func TestSliceSourceYieldsAll(t *testing.T) {
	in := mkAccesses(10)
	src := NewSliceSource(in)
	got := Collect(src, 0)
	if len(got) != len(in) {
		t.Fatalf("collected %d accesses, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestSliceSourceReset(t *testing.T) {
	src := NewSliceSource(mkAccesses(5))
	first := Collect(src, 0)
	src.Reset()
	second := Collect(src, 0)
	if len(first) != 5 || len(second) != 5 {
		t.Fatalf("lens = %d, %d; want 5, 5", len(first), len(second))
	}
}

func TestCollectMax(t *testing.T) {
	src := NewSliceSource(mkAccesses(100))
	got := Collect(src, 7)
	if len(got) != 7 {
		t.Fatalf("Collect max=7 returned %d", len(got))
	}
}

func TestLimit(t *testing.T) {
	src := NewLimit(NewSliceSource(mkAccesses(100)), 3)
	got := Collect(src, 0)
	if len(got) != 3 {
		t.Fatalf("Limit(3) yielded %d accesses", len(got))
	}
	// Limit larger than the underlying stream yields the whole stream.
	src2 := NewLimit(NewSliceSource(mkAccesses(4)), 100)
	if got := Collect(src2, 0); len(got) != 4 {
		t.Fatalf("Limit(100) over 4 yielded %d", len(got))
	}
}

func TestFilter(t *testing.T) {
	src := &Filter{
		Src:  NewSliceSource(mkAccesses(20)),
		Keep: func(a Access) bool { return a.PC == 0 },
	}
	got := Collect(src, 0)
	for _, a := range got {
		if a.PC != 0 {
			t.Errorf("filter leaked access with PC %d", a.PC)
		}
	}
	if len(got) != 3 { // i = 0, 7, 14
		t.Errorf("filter yielded %d accesses, want 3", len(got))
	}
}

func TestTee(t *testing.T) {
	var seen int
	src := &Tee{
		Src:     NewSliceSource(mkAccesses(9)),
		Observe: func(Access) { seen++ },
	}
	got := Collect(src, 0)
	if seen != len(got) || seen != 9 {
		t.Errorf("tee observed %d, collected %d, want 9 each", seen, len(got))
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func(a *Access) bool {
		if n >= 4 {
			return false
		}
		a.Addr = mem.Addr(n)
		n++
		return true
	})
	if got := Collect(src, 0); len(got) != 4 {
		t.Fatalf("FuncSource yielded %d, want 4", len(got))
	}
}

func TestConcat(t *testing.T) {
	a := NewSliceSource(mkAccesses(3))
	b := NewSliceSource(mkAccesses(2))
	c := NewConcat(a, b)
	if got := Collect(c, 0); len(got) != 5 {
		t.Fatalf("Concat yielded %d, want 5", len(got))
	}
	// Empty concat terminates immediately.
	var acc Access
	if NewConcat().Next(&acc) {
		t.Error("empty Concat yielded an access")
	}
}

// Property: Limit(n) never yields more than n and preserves order/content.
func TestLimitProperty(t *testing.T) {
	f := func(sizes []uint8, limit uint8) bool {
		in := mkAccesses(int(limit) + len(sizes))
		src := NewLimit(NewSliceSource(in), int(limit))
		got := Collect(src, 0)
		if len(got) > int(limit) {
			return false
		}
		for i := range got {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
