package trace

// Sampler implements systematic trace sampling in the spirit of the
// paper's SimFlex/SMARTS methodology (§5.1, references [27][28]): the
// stream alternates between warm-up spans of SkipLen accesses and
// measurement spans of MeasureLen accesses. Every access passes through —
// the caches and predictors must stay functionally warm — and the consumer
// restricts its *statistics* to accesses for which LastMeasured reports
// true.
//
// Because this simulator is fast enough to replay full traces, the sampler
// exists to bound analysis cost on very long traces and to test
// methodology sensitivity.
type Sampler struct {
	Src        Source
	SkipLen    int // functional-warming accesses per period
	MeasureLen int // measured accesses per period

	n            uint64
	lastMeasured bool
}

// NewSampler creates a systematic sampler over src.
func NewSampler(src Source, skipLen, measureLen int) *Sampler {
	if skipLen < 0 {
		skipLen = 0
	}
	if measureLen <= 0 {
		measureLen = 1
	}
	return &Sampler{Src: src, SkipLen: skipLen, MeasureLen: measureLen}
}

// Next implements Source; every underlying access passes through.
func (s *Sampler) Next(a *Access) bool {
	if !s.Src.Next(a) {
		return false
	}
	period := uint64(s.SkipLen + s.MeasureLen)
	s.lastMeasured = s.n%period >= uint64(s.SkipLen)
	s.n++
	return true
}

// LastMeasured reports whether the most recently delivered access falls in
// a measurement span.
func (s *Sampler) LastMeasured() bool { return s.lastMeasured }

// MeasuredFraction returns the configured duty cycle.
func (s *Sampler) MeasuredFraction() float64 {
	return float64(s.MeasureLen) / float64(s.SkipLen+s.MeasureLen)
}
