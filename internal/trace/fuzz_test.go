package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"stems/internal/mem"
)

// FuzzReader ensures arbitrary bytes never panic the trace reader and that
// all failures surface as ErrBadTrace (or clean EOF), whichever format
// version the header claims.
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.Write(Access{Addr: 4096, PC: 7})
	_ = w.Flush()
	f.Add(valid.Bytes())
	var validV2 bytes.Buffer
	w2 := NewWriterV2(&validV2)
	_ = w2.Write(Access{Addr: 4096, PC: 7, Dep: true})
	_ = w2.Write(Access{Addr: 128, PC: 9, Write: true, Think: 12})
	_ = w2.Flush()
	f.Add(validV2.Bytes())
	f.Add([]byte("STEMSTRC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var a Access
		n := 0
		for r.Next(&a) {
			n++
			if n > 1<<20 {
				t.Fatal("reader yielded implausibly many records")
			}
		}
		_ = r.Err() // must not panic; may be nil or ErrBadTrace
	})
}

// FuzzV1V2RoundTrip decodes the fuzz input into an access sequence, writes
// it under both format versions, and asserts both decode back bit-exactly
// — the lossless v1↔v2 contract.
func FuzzV1V2RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22})
	f.Add(bytes.Repeat([]byte{0xff}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		const rec = 19 // addr 8 + pc 8 + think 2 + flags 1
		var in []Access
		for len(data) >= rec && len(in) < 3*BlockCap {
			in = append(in, Access{
				Addr:  mem.Addr(binary.LittleEndian.Uint64(data[0:])),
				PC:    binary.LittleEndian.Uint64(data[8:]),
				Think: binary.LittleEndian.Uint16(data[16:]),
				Write: data[18]&1 != 0,
				Dep:   data[18]&2 != 0,
			})
			data = data[rec:]
		}
		for _, version := range []int{traceV1, traceV2} {
			var buf bytes.Buffer
			w, err := NewWriterVersion(&buf, version)
			if err != nil {
				t.Fatal(err)
			}
			if w.WriteAll(in) != nil || w.Flush() != nil {
				t.Fatalf("v%d write failed", version)
			}
			r := NewReader(&buf)
			out := Collect(r, 0)
			if r.Err() != nil {
				t.Fatalf("v%d read: %v", version, r.Err())
			}
			if len(out) != len(in) {
				t.Fatalf("v%d: %d records, want %d", version, len(out), len(in))
			}
			for i := range in {
				if out[i] != in[i] {
					t.Fatalf("v%d record %d: got %+v, want %+v", version, i, out[i], in[i])
				}
			}
		}
	})
}
