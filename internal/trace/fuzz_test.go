package trace

import (
	"bytes"
	"testing"
)

// FuzzReader ensures arbitrary bytes never panic the trace reader and that
// all failures surface as ErrBadTrace (or clean EOF).
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.Write(Access{Addr: 4096, PC: 7})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte("STEMSTRC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var a Access
		n := 0
		for r.Next(&a) {
			n++
			if n > 1<<20 {
				t.Fatal("reader yielded implausibly many records")
			}
		}
		_ = r.Err() // must not panic; may be nil or ErrBadTrace
	})
}
