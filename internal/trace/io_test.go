package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"stems/internal/mem"
)

func roundTrip(t *testing.T, in []Access) []Access {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(in)) {
		t.Fatalf("writer count = %d, want %d", w.Count(), len(in))
	}
	r := NewReader(&buf)
	out := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	in := []Access{
		{Addr: 0x1234, PC: 0xdeadbeef, Write: false, Dep: true, Think: 120},
		{Addr: 0, PC: 0, Write: true, Dep: false, Think: 0},
		{Addr: ^mem.Addr(0), PC: ^uint64(0), Write: true, Dep: true, Think: 65535},
	}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	out := roundTrip(t, nil)
	if len(out) != 0 {
		t.Fatalf("empty trace yielded %d records", len(out))
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTATRACE........")))
	var a Access
	if r.Next(&a) {
		t.Fatal("Next succeeded on garbage")
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", r.Err())
	}
}

func TestTruncatedHeader(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("STEM")))
	var a Access
	if r.Next(&a) {
		t.Fatal("Next succeeded on truncated header")
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Addr: 64}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r := NewReader(bytes.NewReader(full[:len(full)-3]))
	var a Access
	if r.Next(&a) {
		t.Fatal("Next succeeded on truncated record")
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestWrongVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(traceMagic)] = 99 // corrupt the version field
	r := NewReader(bytes.NewReader(b))
	var a Access
	if r.Next(&a) || !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("version check failed: err=%v", r.Err())
	}
}

// Property: any access slice survives a round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, pcs []uint64, flags []uint8) bool {
		n := len(addrs)
		if len(pcs) < n {
			n = len(pcs)
		}
		if len(flags) < n {
			n = len(flags)
		}
		in := make([]Access, n)
		for i := 0; i < n; i++ {
			in[i] = Access{
				Addr:  mem.Addr(addrs[i]),
				PC:    pcs[i],
				Write: flags[i]&1 != 0,
				Dep:   flags[i]&2 != 0,
				Think: uint16(flags[i]) << 3,
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.WriteAll(in) != nil || w.Flush() != nil {
			return false
		}
		out := Collect(NewReader(&buf), 0)
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderCount(t *testing.T) {
	in := make([]Access, 17)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	Collect(r, 0)
	if r.Count() != 17 {
		t.Fatalf("reader count = %d", r.Count())
	}
}
