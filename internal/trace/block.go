package trace

import (
	"stems/internal/flat"
	"stems/internal/mem"
)

// BlockCap is the number of accesses one Block holds when full. The value
// balances batching (the replay kernel amortizes its setup over a block)
// against locality (a block's columns together stay well inside L2).
const BlockCap = 4096

// bitWords returns the number of 64-bit words covering n flag bits.
func bitWords(n int) int { return (n + 63) / 64 }

// Block is a columnar (structure-of-arrays) batch of up to BlockCap
// accesses: the native currency of the replay pipeline. Instead of a slice
// of 24-byte Access structs, a block stores each field as its own column,
// with the two booleans packed into bitsets and the PCs dictionary-indexed
// (a block holds at most BlockCap accesses, so at most BlockCap distinct
// PCs — a uint16 index always suffices). A full block costs ~12.8 bytes
// per access versus 24 for []Access (BenchmarkTraceMemory measures it),
// and the batched kernel (sim.Machine.RunBlocks) iterates the columns
// directly.
//
// The exported columns are read-only for consumers; construct blocks
// through Append (or the Blocks adapter), which maintains the dictionary
// and bitset invariants.
type Block struct {
	// N is the number of valid accesses in the block.
	N int
	// Addrs holds the byte address column.
	Addrs []uint64
	// PCDict is the block's PC dictionary; PCIdx[i] indexes into it.
	PCDict []uint64
	// PCIdx holds the dictionary index column.
	PCIdx []uint16
	// Think holds the think-time column.
	Think []uint16
	// WriteBits and DepBits pack the Write/Dep flags, bit i of word i/64.
	WriteBits []uint64
	DepBits   []uint64

	// shared marks a block whose columns alias storage owned elsewhere
	// (a BlockTrace or a Reader); Reset detaches them before reuse.
	shared bool
	// pcLookup inverts PCDict during appends — a flat probe table, not a
	// Go map, because the Blocks adapter runs Append once per access on
	// the legacy-source replay path.
	pcLookup *flat.U64Table[uint16]
}

// Reset empties the block for reuse. Columns aliasing shared storage are
// detached; owned storage is retained and overwritten by later Appends.
func (b *Block) Reset() {
	if b.shared {
		b.Addrs, b.PCDict, b.PCIdx, b.Think, b.WriteBits, b.DepBits = nil, nil, nil, nil, nil, nil
		b.shared = false
	}
	b.N = 0
	b.Addrs = b.Addrs[:0]
	b.PCDict = b.PCDict[:0]
	b.PCIdx = b.PCIdx[:0]
	b.Think = b.Think[:0]
	b.WriteBits = b.WriteBits[:0]
	b.DepBits = b.DepBits[:0]
	if b.pcLookup != nil {
		b.pcLookup.Reset()
	}
}

// Full reports whether the block holds BlockCap accesses.
func (b *Block) Full() bool { return b.N >= BlockCap }

// Append adds one access to the block. It reports false (leaving the block
// unchanged) when the block is already full.
func (b *Block) Append(a Access) bool {
	if b.shared {
		panic("trace: Append to a shared (aliased) Block; Reset it first")
	}
	if b.N >= BlockCap {
		return false
	}
	if b.pcLookup == nil {
		// ≤ BlockCap accesses means ≤ BlockCap distinct PCs: the table
		// never grows, so appends stay allocation-free after warm-up.
		b.pcLookup = flat.NewU64Table[uint16](BlockCap)
	}
	if cap(b.Addrs) == 0 {
		// Size the fixed-width columns for a full block up front: blocks
		// almost always fill, and exact sizing avoids the ~15% cap
		// overshoot of append's growth curve on the resident columns.
		b.Addrs = make([]uint64, 0, BlockCap)
		b.PCIdx = make([]uint16, 0, BlockCap)
		b.Think = make([]uint16, 0, BlockCap)
		b.WriteBits = make([]uint64, 0, bitWords(BlockCap))
		b.DepBits = make([]uint64, 0, bitWords(BlockCap))
	}
	idx, ok := b.pcLookup.Get(a.PC)
	if !ok {
		idx = uint16(len(b.PCDict))
		b.PCDict = append(b.PCDict, a.PC)
		b.pcLookup.Put(a.PC, idx)
	}
	if b.N&63 == 0 {
		b.WriteBits = append(b.WriteBits, 0)
		b.DepBits = append(b.DepBits, 0)
	}
	if a.Write {
		b.WriteBits[b.N>>6] |= 1 << (uint(b.N) & 63)
	}
	if a.Dep {
		b.DepBits[b.N>>6] |= 1 << (uint(b.N) & 63)
	}
	b.Addrs = append(b.Addrs, uint64(a.Addr))
	b.PCIdx = append(b.PCIdx, idx)
	b.Think = append(b.Think, a.Think)
	b.N++
	return true
}

// At decodes the i-th access.
func (b *Block) At(i int) Access {
	return Access{
		Addr:  mem.Addr(b.Addrs[i]),
		PC:    b.PCDict[b.PCIdx[i]],
		Write: b.WriteBits[i>>6]&(1<<(uint(i)&63)) != 0,
		Dep:   b.DepBits[i>>6]&(1<<(uint(i)&63)) != 0,
		Think: b.Think[i],
	}
}

// HasWrites reports whether any access in the block is a store — the
// batched kernel runs a leaner read-only loop over blocks without stores.
func (b *Block) HasWrites() bool {
	for _, w := range b.WriteBits {
		if w != 0 {
			return true
		}
	}
	return false
}

// aliasFrom makes b a read-only view of src's columns without copying the
// column data.
func (b *Block) aliasFrom(src *Block) {
	b.N = src.N
	b.Addrs = src.Addrs
	b.PCDict = src.PCDict
	b.PCIdx = src.PCIdx
	b.Think = src.Think
	b.WriteBits = src.WriteBits
	b.DepBits = src.DepBits
	b.shared = true
	b.pcLookup = nil
}

// BlockSource is the batched counterpart of Source: NextBlock fills *b
// with the next batch of accesses and reports whether any were produced.
// The filled block may alias storage owned by the source; treat it as
// read-only and do not use it after the next NextBlock call.
// Implementations are not safe for concurrent use.
type BlockSource interface {
	NextBlock(b *Block) bool
}

// Blocks adapts a legacy per-access Source to a BlockSource. A source that
// already implements BlockSource (a *Reader on a v2 trace, a BlockTrace
// cursor) is returned unwrapped.
func Blocks(src Source) BlockSource {
	if bs, ok := src.(BlockSource); ok {
		return bs
	}
	return &sourceBlocks{src: src}
}

type sourceBlocks struct {
	src Source
}

// NextBlock implements BlockSource, draining up to BlockCap accesses.
func (s *sourceBlocks) NextBlock(b *Block) bool {
	b.Reset()
	var a Access
	for b.N < BlockCap && s.src.Next(&a) {
		b.Append(a)
	}
	return b.N > 0
}

// Len forwards the underlying source's length hint (see Collect); it
// reports -1 when the source has none.
func (s *sourceBlocks) Len() int {
	if h, ok := s.src.(lenHinter); ok {
		return h.Len()
	}
	return -1
}

// Unblock adapts a BlockSource back to a per-access Source — the lossless
// inverse of Blocks, used to feed block-native producers (v2 trace files,
// arena-cached BlockTraces) into per-access consumers. A length hint on
// the block source (a BlockTrace cursor, a wrapped hinted Source) is
// forwarded so Collect still preallocates.
func Unblock(bs BlockSource) Source {
	total := -1
	if h, ok := bs.(lenHinter); ok {
		total = h.Len()
	}
	return &blockAccesses{bs: bs, total: total}
}

type blockAccesses struct {
	bs    BlockSource
	b     Block
	pos   int
	total int // length hint, -1 when unknown
}

// Next implements Source.
func (u *blockAccesses) Next(a *Access) bool {
	for u.pos >= u.b.N {
		if !u.bs.NextBlock(&u.b) {
			return false
		}
		u.pos = 0
	}
	*a = u.b.At(u.pos)
	u.pos++
	return true
}

// Len implements the Collect preallocation hint (-1 when unknown).
func (u *blockAccesses) Len() int { return u.total }

// BlockTrace is a complete trace held in columnar blocks — the compact
// resident form cached by Arena and produced by workload generators, at
// roughly half the footprint of the equivalent []Access
// (BenchmarkTraceMemory: ~12.8 vs 24 bytes/access).
type BlockTrace struct {
	blocks []Block
	n      int
}

// NewBlockTrace builds a BlockTrace from an access slice. The slice is
// only read.
func NewBlockTrace(accs []Access) *BlockTrace {
	t := &BlockTrace{}
	for _, a := range accs {
		t.Append(a)
	}
	t.Seal()
	return t
}

// Append adds one access to the trace.
func (t *BlockTrace) Append(a Access) {
	if len(t.blocks) == 0 || t.blocks[len(t.blocks)-1].Full() {
		t.sealLast()
		t.blocks = append(t.blocks, Block{})
	}
	t.blocks[len(t.blocks)-1].Append(a)
	t.n++
}

// AppendBlock appends a copy of b's accesses. When the trace's tail block
// is full (or absent) the block is copied column-by-column — a few
// memcpys, no per-access dictionary work — the fast path for
// frame-at-a-time loaders over v2 traces; otherwise the accesses are
// appended individually.
func (t *BlockTrace) AppendBlock(b *Block) {
	if b.N == 0 {
		return
	}
	if len(t.blocks) == 0 || t.blocks[len(t.blocks)-1].Full() {
		t.sealLast()
		var nb Block
		nb.copyFrom(b)
		t.blocks = append(t.blocks, nb)
		t.n += b.N
		return
	}
	for i := 0; i < b.N; i++ {
		t.Append(b.At(i))
	}
}

// copyFrom makes b an owned deep copy of src's columns.
func (b *Block) copyFrom(src *Block) {
	b.N = src.N
	b.Addrs = append(b.Addrs[:0], src.Addrs[:src.N]...)
	b.PCDict = append(b.PCDict[:0], src.PCDict...)
	b.PCIdx = append(b.PCIdx[:0], src.PCIdx[:src.N]...)
	b.Think = append(b.Think[:0], src.Think[:src.N]...)
	b.WriteBits = append(b.WriteBits[:0], src.WriteBits[:bitWords(src.N)]...)
	b.DepBits = append(b.DepBits[:0], src.DepBits[:bitWords(src.N)]...)
	b.shared = false
	b.pcLookup = nil
}

// sealLast releases the finished block's append-side dictionary inverse.
func (t *BlockTrace) sealLast() {
	if len(t.blocks) > 0 {
		t.blocks[len(t.blocks)-1].pcLookup = nil
	}
}

// Seal releases append-side scratch (the PC dictionary inverse of the open
// block). Appending after Seal still decodes correctly — the rebuilt
// inverse may only duplicate dictionary entries — but callers should Seal
// once the trace is done growing.
func (t *BlockTrace) Seal() { t.sealLast() }

// Len returns the total number of accesses.
func (t *BlockTrace) Len() int { return t.n }

// NumBlocks returns the number of blocks.
func (t *BlockTrace) NumBlocks() int { return len(t.blocks) }

// BlockAt returns a read-only pointer to the i-th block.
func (t *BlockTrace) BlockAt(i int) *Block { return &t.blocks[i] }

// Blocks returns a cursor replaying the trace block by block. The blocks
// it hands out alias the trace's storage (no copying); many cursors may
// replay one trace concurrently as long as none mutates it.
func (t *BlockTrace) Blocks() BlockSource { return &blockTraceSource{t: t} }

// Source returns a per-access view of the trace, carrying a Len hint.
func (t *BlockTrace) Source() Source {
	return &blockAccesses{bs: t.Blocks(), total: t.n}
}

// Accesses decodes the whole trace into a fresh []Access.
func (t *BlockTrace) Accesses() []Access {
	out := make([]Access, 0, t.n)
	for i := range t.blocks {
		b := &t.blocks[i]
		for j := 0; j < b.N; j++ {
			out = append(out, b.At(j))
		}
	}
	return out
}

// MemBytes returns the resident column storage in bytes — the footprint
// number behind the arena's compaction win.
func (t *BlockTrace) MemBytes() int {
	total := 0
	for i := range t.blocks {
		b := &t.blocks[i]
		total += 8*cap(b.Addrs) + 8*cap(b.PCDict) + 2*cap(b.PCIdx) +
			2*cap(b.Think) + 8*cap(b.WriteBits) + 8*cap(b.DepBits)
	}
	return total
}

type blockTraceSource struct {
	t *BlockTrace
	i int
}

// NextBlock implements BlockSource by aliasing the next stored block.
func (s *blockTraceSource) NextBlock(b *Block) bool {
	if s.i >= len(s.t.blocks) {
		return false
	}
	b.aliasFrom(&s.t.blocks[s.i])
	s.i++
	return true
}

// Len implements the Collect preallocation hint.
func (s *blockTraceSource) Len() int { return s.t.n }
