// Package trace defines the memory-access record that flows from workload
// generators into the simulator, and small composable utilities for
// producing, filtering, and capturing access streams.
//
// The paper's methodology (§5.1) analyzes memory traces collected with
// in-order functional simulation; this package is the equivalent interface
// between our synthetic workloads and the predictors.
package trace

import "stems/internal/mem"

// Access is one memory reference as observed at the L1 data cache.
type Access struct {
	// Addr is the byte address referenced.
	Addr mem.Addr
	// PC identifies the instruction performing the access. The spatial
	// predictors correlate patterns with the trigger PC (§2.4).
	PC uint64
	// Write marks stores. Stores train the spatial predictor and occupy
	// cache space but, mirroring the paper's store-wait-free memory model
	// (§5.1), never stall the simulated core and are excluded from
	// coverage accounting.
	Write bool
	// Dep marks an access whose address depends on the result of the
	// previous off-chip access (pointer chasing). The timing model
	// serializes dependent off-chip misses while overlapping independent
	// ones, reproducing the MLP distinction at the heart of §5.6.
	Dep bool
	// Think is the committed-instruction work (in core cycles) preceding
	// this access. Workload generators use it to set the fraction of
	// execution time spent on off-chip stalls, which Table 1 workloads
	// differ on (e.g. §5.6: "speedups are low in Oracle because the
	// baseline system spends only one-quarter of time on off-chip memory
	// accesses").
	Think uint16
}

// Source is a pull-based stream of accesses. Next fills *a and reports
// whether an access was produced; it returns false at end of stream.
// Implementations are not safe for concurrent use.
type Source interface {
	Next(a *Access) bool
}

// SliceSource replays a recorded slice of accesses.
type SliceSource struct {
	accesses []Access
	pos      int
}

// NewSliceSource returns a Source that yields each access in order.
func NewSliceSource(accesses []Access) *SliceSource {
	return &SliceSource{accesses: accesses}
}

// Next implements Source.
func (s *SliceSource) Next(a *Access) bool {
	if s.pos >= len(s.accesses) {
		return false
	}
	*a = s.accesses[s.pos]
	s.pos++
	return true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of accesses in the source.
func (s *SliceSource) Len() int { return len(s.accesses) }

// lenHinter is the optional length-hint interface: sources that know (an
// upper bound on) how many accesses they will yield report it so Collect
// can preallocate instead of growing through O(log n) reallocations.
// SliceSource, Limit, and the block sources satisfy it; a negative value
// means unknown.
type lenHinter interface {
	Len() int
}

// Collect drains up to max accesses from src into a slice. A max of 0 means
// drain the entire source. Sources with a Len hint (SliceSource, Limit,
// BlockTrace views) are collected into one right-sized allocation.
func Collect(src Source, max int) []Access {
	var out []Access
	if h, ok := src.(lenHinter); ok {
		if n := h.Len(); n > 0 {
			if max > 0 && max < n {
				n = max
			}
			out = make([]Access, 0, n)
		}
	}
	var a Access
	for src.Next(&a) {
		out = append(out, a)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Limit wraps a source, truncating it after n accesses.
type Limit struct {
	Src  Source
	N    int
	seen int
}

// NewLimit returns a Source yielding at most n accesses from src.
func NewLimit(src Source, n int) *Limit { return &Limit{Src: src, N: n} }

// Next implements Source.
func (l *Limit) Next(a *Access) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.Src.Next(a) {
		return false
	}
	l.seen++
	return true
}

// Len returns an upper bound on the accesses the limit will yield: the cap
// itself, tightened by the wrapped source's own hint when it has one.
func (l *Limit) Len() int {
	n := l.N
	if h, ok := l.Src.(lenHinter); ok {
		if m := h.Len(); m >= 0 && m < n {
			n = m
		}
	}
	return n
}

// Filter wraps a source, yielding only accesses for which Keep returns true.
type Filter struct {
	Src  Source
	Keep func(Access) bool
}

// Next implements Source.
func (f *Filter) Next(a *Access) bool {
	for f.Src.Next(a) {
		if f.Keep(*a) {
			return true
		}
	}
	return false
}

// Tee wraps a source, invoking Observe on every access that passes through.
type Tee struct {
	Src     Source
	Observe func(Access)
}

// Next implements Source.
func (t *Tee) Next(a *Access) bool {
	if !t.Src.Next(a) {
		return false
	}
	t.Observe(*a)
	return true
}

// FuncSource adapts a generator function to the Source interface.
type FuncSource func(a *Access) bool

// Next implements Source.
func (f FuncSource) Next(a *Access) bool { return f(a) }

// Concat yields the accesses of each source in turn.
type Concat struct {
	Srcs []Source
	idx  int
}

// NewConcat returns a Source that exhausts each src in order.
func NewConcat(srcs ...Source) *Concat { return &Concat{Srcs: srcs} }

// Next implements Source.
func (c *Concat) Next(a *Access) bool {
	for c.idx < len(c.Srcs) {
		if c.Srcs[c.idx].Next(a) {
			return true
		}
		c.idx++
	}
	return false
}
