package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"stems/internal/mem"
)

// Binary trace format: a fixed magic/version header followed by
// fixed-width little-endian records. The format exists so traces can be
// generated once (cmd/tracegen) and replayed against many predictor
// configurations, the way the paper analyzes one FLEXUS trace per workload
// under every predictor (§5.1).
//
//	header:  "STEMSTRC" | uint32 version | uint32 reserved
//	record:  uint64 addr | uint64 pc | uint16 think | uint8 flags | 5 pad
//
// flags: bit0 = write, bit1 = dependent.

const (
	traceMagic   = "STEMSTRC"
	traceVersion = 1
	recordBytes  = 8 + 8 + 2 + 1 + 5
)

const (
	flagWrite = 1 << 0
	flagDep   = 1 << 1
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer streams accesses to an io.Writer in the binary format.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	wrote bool
}

// NewWriter creates a Writer; the header is emitted on the first Write.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	if _, err := w.w.WriteString(traceMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceVersion)
	_, err := w.w.Write(hdr[:])
	return err
}

// Write appends one access record.
func (w *Writer) Write(a Access) error {
	if err := w.header(); err != nil {
		return err
	}
	var rec [recordBytes]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(a.Addr))
	binary.LittleEndian.PutUint64(rec[8:], a.PC)
	binary.LittleEndian.PutUint16(rec[16:], a.Think)
	var flags byte
	if a.Write {
		flags |= flagWrite
	}
	if a.Dep {
		flags |= flagDep
	}
	rec[18] = flags
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// WriteAll appends every access of a slice.
func (w *Writer) WriteAll(accs []Access) error {
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes buffered data (and the header, for empty traces).
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Reader replays a binary trace as a Source.
type Reader struct {
	r      *bufio.Reader
	err    error
	opened bool
	n      uint64
}

// NewReader wraps an io.Reader holding a binary trace.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) open() error {
	if r.opened {
		return nil
	}
	r.opened = true
	var hdr [len(traceMagic) + 8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(hdr[:len(traceMagic)]) != traceMagic {
		return fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(traceMagic):]); v != traceVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	return nil
}

// Next implements Source. After the stream ends (or errors), Err reports
// any failure other than a clean EOF.
func (r *Reader) Next(a *Access) bool {
	if r.err != nil {
		return false
	}
	if err := r.open(); err != nil {
		r.err = err
		return false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err != io.EOF {
			r.err = fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
		}
		return false
	}
	a.Addr = mem.Addr(binary.LittleEndian.Uint64(rec[0:]))
	a.PC = binary.LittleEndian.Uint64(rec[8:])
	a.Think = binary.LittleEndian.Uint16(rec[16:])
	a.Write = rec[18]&flagWrite != 0
	a.Dep = rec[18]&flagDep != 0
	r.n++
	return true
}

// Err returns the first error encountered (nil on clean EOF).
func (r *Reader) Err() error { return r.err }

// Count returns the number of records read so far.
func (r *Reader) Count() uint64 { return r.n }
