package trace

// Binary trace formats. Traces are generated once (cmd/tracegen) and
// replayed against many predictor configurations, the way the paper
// analyzes one FLEXUS trace per workload under every predictor (§5.1).
// Both formats open with the same header:
//
//	header:  "STEMSTRC" | uint32 version | uint32 reserved
//
// Version 1 is the legacy fixed-width record stream (24 bytes/access):
//
//	record:  uint64 addr | uint64 pc | uint16 think | uint8 flags | 5 pad
//	flags:   bit0 = write, bit1 = dependent
//
// Version 2 is the columnar block format: the trace is a sequence of
// frames, one per Block (≤ BlockCap accesses), each laid out column by
// column so the shared structure compresses — addresses as zigzag-varint
// deltas from the previous access (carried across frames), PCs through a
// per-frame dictionary, flags as bitsets:
//
//	frame:  uvarint n                  accesses in the frame (1..BlockCap)
//	        uvarint d                  PC dictionary size (1..n)
//	        d × uvarint pc             the dictionary, first-use order
//	        n × uvarint pcIdx          dictionary index per access
//	        n × svarint addrDelta      addr[i] - addr[i-1] (zigzag)
//	        n × uvarint think
//	        ceil(n/8) write-flag bytes (LSB-first)
//	        ceil(n/8) dep-flag bytes   (LSB-first)
//
// A clean EOF at a frame boundary ends the trace. On the synthetic suite
// v2 averages ~4–6 bytes/access versus v1's 24 (see tracegen -stats).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"stems/internal/mem"
)

const (
	traceMagic  = "STEMSTRC"
	traceV1     = 1
	traceV2     = 2
	recordBytes = 8 + 8 + 2 + 1 + 5
)

const (
	flagWrite = 1 << 0
	flagDep   = 1 << 1
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer streams accesses to an io.Writer in the binary format.
type Writer struct {
	w       *bufio.Writer
	version uint32
	n       uint64
	wrote   bool

	// v2 state: the pending block and the running address predictor.
	pending  Block
	prevAddr uint64
	scratch  []byte
}

// NewWriter creates a version-1 Writer; the header is emitted on the first
// Write.
func NewWriter(w io.Writer) *Writer { return newWriter(w, traceV1) }

// NewWriterV2 creates a Writer emitting the columnar v2 format.
func NewWriterV2(w io.Writer) *Writer { return newWriter(w, traceV2) }

// NewWriterVersion creates a Writer for an explicit format version.
func NewWriterVersion(w io.Writer, version int) (*Writer, error) {
	if version != traceV1 && version != traceV2 {
		return nil, fmt.Errorf("trace: unsupported trace format version %d", version)
	}
	return newWriter(w, uint32(version)), nil
}

func newWriter(w io.Writer, version uint32) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), version: version}
}

// Version returns the format version the writer emits.
func (w *Writer) Version() int { return int(w.version) }

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	if _, err := w.w.WriteString(traceMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], w.version)
	_, err := w.w.Write(hdr[:])
	return err
}

// Write appends one access record.
func (w *Writer) Write(a Access) error {
	if err := w.header(); err != nil {
		return err
	}
	if w.version == traceV2 {
		w.pending.Append(a)
		w.n++
		if w.pending.Full() {
			return w.writeFrame(&w.pending)
		}
		return nil
	}
	var rec [recordBytes]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(a.Addr))
	binary.LittleEndian.PutUint64(rec[8:], a.PC)
	binary.LittleEndian.PutUint16(rec[16:], a.Think)
	var flags byte
	if a.Write {
		flags |= flagWrite
	}
	if a.Dep {
		flags |= flagDep
	}
	rec[18] = flags
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// WriteAll appends every access of a slice.
func (w *Writer) WriteAll(accs []Access) error {
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlock appends every access of a block. On a v2 writer with no
// partial frame pending, the block is encoded as one frame directly.
func (w *Writer) WriteBlock(b *Block) error {
	if w.version == traceV2 && w.pending.N == 0 {
		if err := w.header(); err != nil {
			return err
		}
		w.n += uint64(b.N)
		return w.writeFrame(b)
	}
	for i := 0; i < b.N; i++ {
		if err := w.Write(b.At(i)); err != nil {
			return err
		}
	}
	return nil
}

// writeFrame encodes one block as a v2 frame and resets the pending block
// if that is what was written.
func (w *Writer) writeFrame(b *Block) error {
	if b.N == 0 {
		return nil
	}
	buf := w.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(b.N))
	buf = binary.AppendUvarint(buf, uint64(len(b.PCDict)))
	for _, pc := range b.PCDict {
		buf = binary.AppendUvarint(buf, pc)
	}
	for _, idx := range b.PCIdx[:b.N] {
		buf = binary.AppendUvarint(buf, uint64(idx))
	}
	prev := w.prevAddr
	for _, addr := range b.Addrs[:b.N] {
		buf = binary.AppendVarint(buf, int64(addr-prev))
		prev = addr
	}
	w.prevAddr = prev
	for _, th := range b.Think[:b.N] {
		buf = binary.AppendUvarint(buf, uint64(th))
	}
	buf = appendFlagBytes(buf, b.WriteBits, b.N)
	buf = appendFlagBytes(buf, b.DepBits, b.N)
	w.scratch = buf[:0]
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	if b == &w.pending {
		w.pending.Reset()
	}
	return nil
}

// appendFlagBytes packs the first n bits of a bitset word slice into
// ceil(n/8) LSB-first bytes.
func appendFlagBytes(buf []byte, words []uint64, n int) []byte {
	for i := 0; i < n; i += 8 {
		var byt byte
		for j := 0; j < 8 && i+j < n; j++ {
			k := i + j
			if words[k>>6]&(1<<(uint(k)&63)) != 0 {
				byt |= 1 << uint(j)
			}
		}
		buf = append(buf, byt)
	}
	return buf
}

// Flush writes buffered data, any pending v2 frame, and the header (for
// empty traces).
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	if w.version == traceV2 && w.pending.N > 0 {
		if err := w.writeFrame(&w.pending); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Reader replays a binary trace (either version) as a Source and, for
// batched consumers, as a BlockSource.
type Reader struct {
	r       *bufio.Reader
	err     error
	opened  bool
	version uint32
	n       uint64

	// v2 state: the current decoded frame and the read cursor into it.
	cur      Block
	pos      int
	prevAddr uint64
}

// NewReader wraps an io.Reader holding a binary trace.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) open() error {
	if r.opened {
		return nil
	}
	r.opened = true
	var hdr [len(traceMagic) + 8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(hdr[:len(traceMagic)]) != traceMagic {
		return fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	r.version = binary.LittleEndian.Uint32(hdr[len(traceMagic):])
	if r.version != traceV1 && r.version != traceV2 {
		return fmt.Errorf("%w: unsupported version %d", ErrBadTrace, r.version)
	}
	return nil
}

// Version returns the format version, valid after the first read.
func (r *Reader) Version() int { return int(r.version) }

// Next implements Source. After the stream ends (or errors), Err reports
// any failure other than a clean EOF.
func (r *Reader) Next(a *Access) bool {
	if r.err != nil {
		return false
	}
	if err := r.open(); err != nil {
		r.err = err
		return false
	}
	if r.version == traceV2 {
		if r.pos >= r.cur.N && !r.readFrame() {
			return false
		}
		*a = r.cur.At(r.pos)
		r.pos++
		r.n++
		return true
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err != io.EOF {
			r.err = fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
		}
		return false
	}
	a.Addr = mem.Addr(binary.LittleEndian.Uint64(rec[0:]))
	a.PC = binary.LittleEndian.Uint64(rec[8:])
	a.Think = binary.LittleEndian.Uint16(rec[16:])
	a.Write = rec[18]&flagWrite != 0
	a.Dep = rec[18]&flagDep != 0
	r.n++
	return true
}

// NextBlock implements BlockSource. On a v2 trace a whole frame is decoded
// and handed out without copying; on a v1 trace up to BlockCap records are
// batched into b. Interleaving Next and NextBlock is supported: a block
// whose head was already consumed by Next yields only the remainder.
func (r *Reader) NextBlock(b *Block) bool {
	if r.err != nil {
		return false
	}
	if err := r.open(); err != nil {
		r.err = err
		return false
	}
	if r.version == traceV2 {
		if r.pos >= r.cur.N && !r.readFrame() {
			return false
		}
		r.n += uint64(r.cur.N - r.pos)
		if r.pos == 0 {
			b.aliasFrom(&r.cur)
		} else {
			b.Reset()
			for ; r.pos < r.cur.N; r.pos++ {
				b.Append(r.cur.At(r.pos))
			}
		}
		r.pos = r.cur.N
		return b.N > 0
	}
	b.Reset()
	var a Access
	for b.N < BlockCap && r.Next(&a) {
		b.Append(a)
	}
	return b.N > 0
}

// readFrame decodes the next v2 frame into r.cur, resetting the cursor.
// It returns false on clean EOF or error.
func (r *Reader) readFrame() bool {
	r.cur.Reset()
	r.pos = 0
	n64, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err != io.EOF {
			r.err = fmt.Errorf("%w: frame header: %v", ErrBadTrace, err)
		}
		return false
	}
	n := int(n64)
	if n <= 0 || n > BlockCap {
		r.err = fmt.Errorf("%w: frame of %d accesses", ErrBadTrace, n64)
		return false
	}
	d64, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: dictionary size: %v", ErrBadTrace, err)
		return false
	}
	d := int(d64)
	if d <= 0 || d > n {
		r.err = fmt.Errorf("%w: dictionary of %d PCs in a %d-access frame", ErrBadTrace, d64, n)
		return false
	}
	b := &r.cur
	for i := 0; i < d; i++ {
		pc, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("%w: truncated dictionary: %v", ErrBadTrace, err)
			return false
		}
		b.PCDict = append(b.PCDict, pc)
	}
	for i := 0; i < n; i++ {
		idx, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("%w: truncated PC indexes: %v", ErrBadTrace, err)
			return false
		}
		if idx >= uint64(d) {
			r.err = fmt.Errorf("%w: PC index %d out of dictionary range %d", ErrBadTrace, idx, d)
			return false
		}
		b.PCIdx = append(b.PCIdx, uint16(idx))
	}
	addr := r.prevAddr
	for i := 0; i < n; i++ {
		delta, err := binary.ReadVarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("%w: truncated addresses: %v", ErrBadTrace, err)
			return false
		}
		addr += uint64(delta)
		b.Addrs = append(b.Addrs, addr)
	}
	r.prevAddr = addr
	for i := 0; i < n; i++ {
		th, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("%w: truncated think column: %v", ErrBadTrace, err)
			return false
		}
		if th > 1<<16-1 {
			r.err = fmt.Errorf("%w: think value %d exceeds uint16", ErrBadTrace, th)
			return false
		}
		b.Think = append(b.Think, uint16(th))
	}
	var ok bool
	if b.WriteBits, ok = r.readFlagBits(b.WriteBits, n); !ok {
		return false
	}
	if b.DepBits, ok = r.readFlagBits(b.DepBits, n); !ok {
		return false
	}
	b.N = n
	return true
}

// readFlagBits reads ceil(n/8) flag bytes into bitset words.
func (r *Reader) readFlagBits(words []uint64, n int) ([]uint64, bool) {
	words = words[:0]
	for i := 0; i < n; i += 8 {
		byt, err := r.r.ReadByte()
		if err != nil {
			r.err = fmt.Errorf("%w: truncated flags: %v", ErrBadTrace, err)
			return words, false
		}
		if i&63 == 0 {
			words = append(words, 0)
		}
		words[i>>6] |= uint64(byt) << (uint(i) & 63)
	}
	return words, true
}

// Err returns the first error encountered (nil on clean EOF).
func (r *Reader) Err() error { return r.err }

// Count returns the number of records read so far.
func (r *Reader) Count() uint64 { return r.n }
