package enc

// This file is the wire surface of the job-orchestration subsystem:
// declarative sweep grids (GridSpec), recurring schedules
// (ScheduleSpec/ScheduleStatus), and the completion notification document
// webhooks receive. Like everything in enc, these are pure data — a grid
// is expanded by Expand below (the service calls it server-side), a
// schedule's cron text is interpreted by internal/sched, and notifiers in
// internal/notify deliver Notification bodies verbatim.

import (
	"fmt"
	"strings"
	"time"

	"stems/internal/sim"
)

// MaxGridCells caps a single grid's cartesian product. A grid beyond it
// is a spec error, not a queue of work: one job's expansion stays small
// enough that its run list, progress accounting, and result documents
// remain cheap to hold and ship.
const MaxGridCells = 4096

// GridAxis is one named dimension of a sweep grid: a registered knob and
// the values it takes. Values may repeat — duplicate cells cost nothing,
// because every expanded run is deduplicated through the content-addressed
// result cache (stems.RunKey) before it can reach the simulator.
type GridAxis struct {
	// Knob is a registered knob name (see /v1/predictors for the schema).
	Knob string `json:"knob"`
	// Values are the settings this axis sweeps, in sweep order.
	Values []sim.Value `json:"values"`
}

// GridSpec is a declarative sweep grid: a base run crossed with named
// knob axes into a cartesian product, expanded and normalized
// server-side. Submitting {"grid": {...}} to POST /v1/jobs turns the
// expansion into one job whose runs are the grid's cells in row-major
// order (first axis slowest, last axis fastest) — the same order a
// client-side nested loop would produce.
type GridSpec struct {
	// Base is the run configuration every cell shares: predictor,
	// workload, seed, trace length, system, and fixed knob overrides.
	// Base.Label, when set, prefixes each cell's generated label.
	Base RunSpec `json:"base"`
	// Axes are the swept dimensions, outermost first.
	Axes []GridAxis `json:"axes"`
}

// Cells returns the grid's cartesian-product size: 0 when any axis is
// empty, MaxGridCells+1 when the true product exceeds MaxGridCells. The
// clamp keeps the arithmetic overflow-free no matter how many axes or
// values a request carries — callers only ever compare against the limit.
func (g GridSpec) Cells() int {
	if len(g.Axes) == 0 {
		return 0
	}
	n := 1
	for _, ax := range g.Axes {
		if len(ax.Values) == 0 {
			return 0
		}
		if n > MaxGridCells || len(ax.Values) > MaxGridCells {
			n = MaxGridCells + 1
			continue
		}
		n *= len(ax.Values)
	}
	if n > MaxGridCells {
		return MaxGridCells + 1
	}
	return n
}

// Expand materializes the grid's cells as run specs, in row-major axis
// order. Each cell is Base with the axis knobs overlaid and a generated
// label: the cell's axis values joined with commas ("4096" for one axis,
// "4096,8" for two), prefixed by "Base.Label " when the base names one.
// Structural errors — no axes, an empty axis, duplicate or base-shadowed
// axis knobs, a product beyond MaxGridCells — are reported here; knob
// names and values are validated per expanded run by the service, like
// any other submitted spec.
func (g GridSpec) Expand() ([]RunSpec, error) {
	if len(g.Axes) == 0 {
		return nil, fmt.Errorf("grid: no axes")
	}
	seen := make(map[string]bool, len(g.Axes))
	for i, ax := range g.Axes {
		if ax.Knob == "" {
			return nil, fmt.Errorf("grid: axis %d: empty knob name", i)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("grid: axis %d (%s): no values", i, ax.Knob)
		}
		if seen[ax.Knob] {
			return nil, fmt.Errorf("grid: axis %d: knob %q repeated across axes", i, ax.Knob)
		}
		seen[ax.Knob] = true
		if _, fixed := g.Base.Knobs[ax.Knob]; fixed {
			return nil, fmt.Errorf("grid: axis %d: knob %q also fixed in base knobs", i, ax.Knob)
		}
	}
	cells := g.Cells()
	if cells > MaxGridCells {
		// cells is clamped to MaxGridCells+1, so report only the limit —
		// the true product may be astronomically larger.
		return nil, fmt.Errorf("grid: cells exceed the limit of %d", MaxGridCells)
	}

	runs := make([]RunSpec, 0, cells)
	idx := make([]int, len(g.Axes))
	parts := make([]string, len(g.Axes))
	for {
		cell := g.Base
		cell.Knobs = make(map[string]sim.Value, len(g.Base.Knobs)+len(g.Axes))
		for name, v := range g.Base.Knobs {
			cell.Knobs[name] = v
		}
		for i, ax := range g.Axes {
			v := ax.Values[idx[i]]
			cell.Knobs[ax.Knob] = v
			parts[i] = v.String()
		}
		cell.Label = strings.Join(parts, ",")
		if g.Base.Label != "" {
			cell.Label = g.Base.Label + " " + cell.Label
		}
		runs = append(runs, cell)

		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return runs, nil
		}
	}
}

// ScheduleSpec is the body of POST /v1/schedules: a named recurring
// submission. Every fire submits Job (which may itself carry a grid) as
// an ordinary job, so scheduled work flows through the same queue,
// cache, and folding machinery as interactive submissions.
type ScheduleSpec struct {
	// Name identifies the schedule ("nightly-regression"); unique per
	// daemon.
	Name string `json:"name"`
	// Cron is the fire schedule: either five standard cron fields
	// ("30 2 * * *" — minute hour day-of-month month day-of-week, with
	// *, lists, ranges, and /step), or "@every DURATION" ("@every 6h")
	// for fixed intervals.
	Cron string `json:"cron"`
	// Job is what each fire submits.
	Job *JobSpec `json:"job"`
	// Notify names the configured notifiers (see the stemsd config file)
	// that receive a Notification when a fired job reaches a terminal
	// state.
	Notify []string `json:"notify,omitempty"`
}

// ScheduleStatus is the wire form of GET /v1/schedules entries: the spec
// plus the scheduler's live state for it.
type ScheduleStatus struct {
	ScheduleSpec
	// NextFire is when the schedule fires next.
	NextFire time.Time `json:"next_fire"`
	// Fires counts submissions this schedule has made (persisted across
	// restarts along with NextFire when the daemon runs with schedule
	// state enabled).
	Fires uint64 `json:"fires"`
	// LastJob is the job ID of the most recent fire, LastState that
	// job's last observed terminal state ("" while it still runs).
	LastJob   string   `json:"last_job,omitempty"`
	LastState JobState `json:"last_state,omitempty"`
	// LastError records the most recent fire-time submission failure
	// (queue full, draining); cleared by the next successful fire.
	LastError string `json:"last_error,omitempty"`
}

// Notification is the completion document notifiers deliver (webhook
// POST body, slog fields) when a job reaches a terminal state.
type Notification struct {
	// Job is the finished job's ID; State its terminal state.
	Job   string   `json:"job"`
	State JobState `json:"state"`
	// Schedule names the schedule whose fire produced the job (empty for
	// interactively submitted jobs).
	Schedule string `json:"schedule,omitempty"`
	// RunsDone/RunsTotal and CacheHits summarize the job's outcome
	// without shipping result documents; fetch GET /v1/jobs/{id} for
	// those.
	RunsDone  int `json:"runs_done"`
	RunsTotal int `json:"runs_total"`
	CacheHits int `json:"cache_hits"`
	// Error carries the failure or cancellation cause for non-done
	// terminal states.
	Error string `json:"error,omitempty"`
}

// NotificationFromStatus builds the completion document for a terminal
// job status.
func NotificationFromStatus(st JobStatus, schedule string) Notification {
	return Notification{
		Job:       st.ID,
		State:     st.State,
		Schedule:  schedule,
		RunsDone:  st.Progress.RunsDone,
		RunsTotal: st.Progress.RunsTotal,
		CacheHits: st.Progress.CacheHits,
		Error:     st.Error,
	}
}

// SchedMetrics is the /metrics section for the cron scheduler; absent
// when the daemon runs without one.
type SchedMetrics struct {
	// Schedules is the number of registered schedules.
	Schedules int `json:"schedules"`
	// Fires counts jobs submitted by schedule fires; FireErrors counts
	// fires whose submission failed (queue full, invalid at fire time).
	Fires      uint64 `json:"schedule_fires"`
	FireErrors uint64 `json:"schedule_fire_errors"`
}

// NotifyMetrics is the /metrics section for completion notifiers; absent
// when none are configured.
type NotifyMetrics struct {
	// Notifiers is the number of registered notifiers.
	Notifiers int `json:"notifiers"`
	// Sent counts notifications delivered successfully; Failed counts
	// deliveries abandoned after retries; Retries counts individual
	// delivery attempts beyond each notification's first.
	Sent    uint64 `json:"notifications_sent"`
	Failed  uint64 `json:"notifications_failed"`
	Retries uint64 `json:"notification_retries"`
}
