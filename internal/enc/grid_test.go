package enc

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"stems/internal/sim"
)

func iv(v int64) sim.Value { return sim.IntValue(v) }

func TestGridExpandRowMajor(t *testing.T) {
	g := GridSpec{
		Base: RunSpec{Predictor: "stems", Workload: "em3d"},
		Axes: []GridAxis{
			{Knob: "stems.rmob_entries", Values: []sim.Value{iv(4096), iv(16384)}},
			{Knob: "stems.lookahead", Values: []sim.Value{iv(4), iv(8), iv(12)}},
		},
	}
	if got := g.Cells(); got != 6 {
		t.Fatalf("Cells() = %d, want 6", got)
	}
	runs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{"4096,4", "4096,8", "4096,12", "16384,4", "16384,8", "16384,12"}
	if len(runs) != len(wantLabels) {
		t.Fatalf("expanded %d runs, want %d", len(runs), len(wantLabels))
	}
	for i, r := range runs {
		if r.Label != wantLabels[i] {
			t.Errorf("run %d label = %q, want %q", i, r.Label, wantLabels[i])
		}
		if r.Predictor != "stems" || r.Workload != "em3d" {
			t.Errorf("run %d lost base fields: %+v", i, r)
		}
		if len(r.Knobs) != 2 {
			t.Errorf("run %d has %d knobs, want 2", i, len(r.Knobs))
		}
	}
	// Last axis fastest: run 1 differs from run 0 in lookahead only.
	if runs[0].Knobs["stems.rmob_entries"] != runs[1].Knobs["stems.rmob_entries"] {
		t.Error("first axis changed between adjacent cells")
	}
	if runs[0].Knobs["stems.lookahead"] == runs[1].Knobs["stems.lookahead"] {
		t.Error("last axis did not advance between adjacent cells")
	}
}

func TestGridExpandBaseKnobsAndLabelPrefix(t *testing.T) {
	g := GridSpec{
		Base: RunSpec{
			Label: "night",
			Knobs: map[string]sim.Value{"scientific": sim.BoolValue(false)},
		},
		Axes: []GridAxis{{Knob: "stems.lookahead", Values: []sim.Value{iv(4)}}},
	}
	runs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Label != "night 4" {
		t.Errorf("label = %q, want %q", runs[0].Label, "night 4")
	}
	if v, ok := runs[0].Knobs["scientific"]; !ok || v.Bool() {
		t.Errorf("base knob not carried into cell: %+v", runs[0].Knobs)
	}
	// Expansion must not alias the base knob map across cells.
	if &g.Base.Knobs == &runs[0].Knobs {
		t.Error("cell shares the base knob map")
	}
}

func TestGridExpandErrors(t *testing.T) {
	axis := GridAxis{Knob: "stems.lookahead", Values: []sim.Value{iv(4)}}
	cases := []struct {
		name string
		grid GridSpec
		want string
	}{
		{"no axes", GridSpec{}, "no axes"},
		{"empty knob", GridSpec{Axes: []GridAxis{{Values: []sim.Value{iv(1)}}}}, "empty knob"},
		{"no values", GridSpec{Axes: []GridAxis{{Knob: "k"}}}, "no values"},
		{"repeated axis", GridSpec{Axes: []GridAxis{axis, axis}}, "repeated"},
		{"base shadow", GridSpec{
			Base: RunSpec{Knobs: map[string]sim.Value{"stems.lookahead": iv(2)}},
			Axes: []GridAxis{axis},
		}, "also fixed in base"},
		{"too many cells", GridSpec{Axes: []GridAxis{
			{Knob: "a", Values: make([]sim.Value, 100)},
			{Knob: "b", Values: make([]sim.Value, 100)},
		}}, "exceed"},
	}
	for _, tc := range cases {
		if _, err := tc.grid.Expand(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestGridCellsOverflowClamped(t *testing.T) {
	// 64 axes of 2 values: the true product (2^64) would wrap to 0 with
	// naive int arithmetic, slipping past the limit check and letting the
	// odometer loop in Expand allocate without bound. Cells must clamp to
	// MaxGridCells+1 and Expand must reject.
	g := GridSpec{}
	for i := 0; i < 64; i++ {
		g.Axes = append(g.Axes, GridAxis{
			Knob:   fmt.Sprintf("k%d", i),
			Values: []sim.Value{iv(0), iv(1)},
		})
	}
	if got := g.Cells(); got != MaxGridCells+1 {
		t.Fatalf("Cells() = %d, want clamp to %d", got, MaxGridCells+1)
	}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("Expand() = %v, want cell-limit error", err)
	}
	// An empty axis still zeroes the product, even past the clamp point.
	g.Axes = append(g.Axes, GridAxis{Knob: "empty"})
	if got := g.Cells(); got != 0 {
		t.Errorf("Cells() with a trailing empty axis = %d, want 0", got)
	}
}

func TestGridDuplicateValuesExpand(t *testing.T) {
	// Duplicate axis values are legal — they expand to duplicate cells
	// (the service dedupes them through the result cache).
	g := GridSpec{Axes: []GridAxis{
		{Knob: "stems.lookahead", Values: []sim.Value{iv(8), iv(8), iv(4)}},
	}}
	runs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("expanded %d runs, want 3", len(runs))
	}
	if runs[0].Label != runs[1].Label || runs[0].Label != "8" {
		t.Errorf("duplicate cells labeled %q/%q, want both \"8\"", runs[0].Label, runs[1].Label)
	}
}

func TestGridSpecRoundTrip(t *testing.T) {
	g := GridSpec{
		Base: RunSpec{Predictor: "stems", Workload: "Zeus", Seed: 3},
		Axes: []GridAxis{{Knob: "stems.pst_entries", Values: []sim.Value{iv(1024), iv(4096)}}},
	}
	data, err := json.Marshal(JobSpec{Grid: &g})
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Grid == nil || len(back.Grid.Axes) != 1 || back.Grid.Axes[0].Knob != "stems.pst_entries" {
		t.Fatalf("grid did not round-trip: %s", data)
	}
	a, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("expansion differs after a JSON hop:\n %s\n %s", aj, bj)
	}
}

func TestNotificationFromStatus(t *testing.T) {
	st := JobStatus{
		ID:    "j-000007",
		State: JobFailed,
		Error: "boom",
		Progress: JobProgress{
			RunsDone: 2, RunsTotal: 5, CacheHits: 1,
		},
	}
	n := NotificationFromStatus(st, "nightly")
	if n.Job != "j-000007" || n.State != JobFailed || n.Schedule != "nightly" ||
		n.RunsDone != 2 || n.RunsTotal != 5 || n.CacheHits != 1 || n.Error != "boom" {
		t.Errorf("notification = %+v", n)
	}
}
