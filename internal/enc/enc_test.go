package enc

import (
	"encoding/json"
	"strings"
	"testing"

	"stems/internal/sim"
	"stems/internal/workload"

	// Self-register the built-in predictors for sim.Build.
	_ "stems/internal/predictors"
)

// engineResult produces a real (non-synthetic) result to round-trip.
func engineResult(t *testing.T) sim.Result {
	t.Helper()
	m, err := sim.Build(sim.KindSTeMS, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.ByName("em3d")
	if err != nil {
		t.Fatal(err)
	}
	return m.RunBlocks(wl.GenerateBlocks(1, 20_000).Blocks())
}

func TestResultRoundTrip(t *testing.T) {
	res := engineResult(t)
	wire := FromResult("x", res)
	if got := wire.Engine(); got != res {
		t.Errorf("round trip mismatch:\n got  %+v\n want %+v", got, res)
	}
	if wire.Coverage != res.Coverage() || wire.OverpredictionRate != res.OverpredictionRate() {
		t.Errorf("derived metrics not carried: %+v", wire)
	}
}

// TestMarshalDeterministic is the property the content-addressed cache
// depends on: equal values encode to equal bytes, every time.
func TestMarshalDeterministic(t *testing.T) {
	res := engineResult(t)
	a, err := json.Marshal(FromResult("", res))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(FromResult("", res))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("non-deterministic marshal:\n %s\n %s", a, b)
	}
}

func TestRelabel(t *testing.T) {
	res := engineResult(t)
	bare, err := json.Marshal(FromResult("", res))
	if err != nil {
		t.Fatal(err)
	}

	same, err := Relabel(bare, "")
	if err != nil {
		t.Fatal(err)
	}
	if string(same) != string(bare) {
		t.Errorf("empty relabel changed bytes")
	}

	labeled, err := Relabel(bare, "point-7")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(FromResult("point-7", res))
	if err != nil {
		t.Fatal(err)
	}
	if string(labeled) != string(direct) {
		t.Errorf("relabel != direct labeling:\n %s\n %s", labeled, direct)
	}
}

func TestJobSpecFlattening(t *testing.T) {
	single := JobSpec{RunSpec: RunSpec{Predictor: "stride"}}
	if runs := single.RunSpecs(); len(runs) != 1 || runs[0].Predictor != "stride" {
		t.Errorf("single flatten = %+v", runs)
	}
	sweep := JobSpec{Runs: []RunSpec{{Predictor: "a"}, {Predictor: "b"}}}
	if runs := sweep.RunSpecs(); len(runs) != 2 || runs[1].Predictor != "b" {
		t.Errorf("sweep flatten = %+v", runs)
	}
}

func TestJobStatusDecodedResults(t *testing.T) {
	res := engineResult(t)
	raw, err := json.Marshal(FromResult("L", res))
	if err != nil {
		t.Fatal(err)
	}
	st := JobStatus{Results: []json.RawMessage{raw, raw}}
	decoded, err := st.DecodedResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].Label != "L" || decoded[1].Engine() != res {
		t.Errorf("decoded = %+v", decoded)
	}
	st.Results = []json.RawMessage{[]byte(`{`)}
	if _, err := st.DecodedResults(); err == nil {
		t.Error("expected decode error for malformed result")
	}
}

// TestKnobInfoBoundsAlwaysPresent: a numeric knob whose legal minimum
// is 0 must still serialize a "min" key — the schema may not be
// ambiguous between "bound is 0" and "no bound".
func TestKnobInfoBoundsAlwaysPresent(t *testing.T) {
	k, ok := sim.LookupKnob("virtual_meta_cache_bytes") // int, Min 0
	if !ok {
		t.Fatal("virtual_meta_cache_bytes not registered")
	}
	data, err := json.Marshal(KnobInfos([]sim.Knob{k})[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"min":0`) {
		t.Errorf("schema omits the zero lower bound: %s", data)
	}
}
