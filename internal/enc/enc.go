// Package enc is the wire encoding shared by every surface that ships
// simulation results and job specifications out of process: the stemsd
// HTTP server, the typed client in the public stems package, and the
// -json mode of cmd/sweep all marshal through the types here, so a result
// printed by the CLI is byte-for-byte diffable against the same
// configuration fetched from the service.
//
// All encoding goes through encoding/json with fixed struct field order,
// so marshaling the same value always produces identical bytes — the
// property the service's content-addressed result cache relies on.
package enc

import (
	"encoding/json"
	"fmt"

	"stems/internal/obs"
	"stems/internal/sim"
	"stems/internal/workload"
)

// RunSpec describes one simulation run in wire form. Zero fields select
// the service defaults: predictor "stems", workload "DB2", seed 1, the
// workload's default trace length, and the scaled system.
type RunSpec struct {
	// Predictor is a registered predictor name (see /v1/predictors).
	Predictor string `json:"predictor,omitempty"`
	// Workload is a paper-suite workload name (see /v1/workloads).
	Workload string `json:"workload,omitempty"`
	// Seed is the workload generator seed (non-negative; default 1).
	Seed int64 `json:"seed,omitempty"`
	// Accesses caps the trace length; 0 keeps the workload default.
	Accesses int `json:"accesses,omitempty"`
	// System selects the simulated node: "scaled" (default, the reduced
	// footprint the command-line tools use) or "paper" (full Table 1).
	System string `json:"system,omitempty"`
	// Label names the run in results; it does not affect the simulation
	// and is excluded from the result-cache key.
	Label string `json:"label,omitempty"`
	// Knobs overlays typed predictor/system parameter overrides by
	// registered knob name (see /v1/predictors for the schema):
	//
	//	"knobs": {"stems.rmob_entries": 65536, "scientific": false}
	//
	// Values are bare JSON numbers or booleans; unknown names, kind
	// mismatches, and out-of-bounds values are rejected field-by-field
	// with a 400. Knobs apply after the system and workload-class
	// defaults, and a knob spelled at its default value yields the same
	// effective configuration — and therefore the same result-cache
	// entry — as omitting it.
	Knobs map[string]sim.Value `json:"knobs,omitempty"`
}

// IsZero reports whether the spec is entirely unset. (RunSpec carries a
// map, so it is not ==-comparable.)
func (r RunSpec) IsZero() bool {
	return r.Predictor == "" && r.Workload == "" && r.Seed == 0 &&
		r.Accesses == 0 && r.System == "" && r.Label == "" && len(r.Knobs) == 0
}

// JobSpec is the body of POST /v1/jobs: exactly one of a single run
// (top-level RunSpec fields), a sweep (Runs), or a declarative grid
// (Grid).
type JobSpec struct {
	RunSpec
	// Runs, when non-empty, makes the job a sweep executing each run in
	// order. Runs sharing a configuration hit the result cache.
	Runs []RunSpec `json:"runs,omitempty"`
	// Grid, when non-nil, makes the job a server-side sweep grid: the
	// service expands the cartesian product into Runs (row-major, last
	// axis fastest), normalizes each cell, and deduplicates identical
	// cells through the content-addressed result cache. The submitted
	// Grid is retained in job status alongside the expanded Runs.
	Grid *GridSpec `json:"grid,omitempty"`
}

// RunSpecs flattens the job to its run list: Runs if present, otherwise
// the single top-level run.
func (s JobSpec) RunSpecs() []RunSpec {
	if len(s.Runs) > 0 {
		return s.Runs
	}
	return []RunSpec{s.RunSpec}
}

// Result is the canonical wire form of one simulation result: the raw
// counters of sim.Result plus the derived paper metrics, under stable
// snake_case keys. Marshaling the same Result always yields identical
// bytes (fixed field order, no maps).
type Result struct {
	Label              string  `json:"label,omitempty"`
	Predictor          string  `json:"predictor"`
	Accesses           uint64  `json:"accesses"`
	Reads              uint64  `json:"reads"`
	Writes             uint64  `json:"writes"`
	L1Hits             uint64  `json:"l1_hits"`
	L2Hits             uint64  `json:"l2_hits"`
	OffChipReads       uint64  `json:"off_chip_reads"`
	Covered            uint64  `json:"covered"`
	Overpredicted      uint64  `json:"overpredicted"`
	Fetched            uint64  `json:"fetched"`
	MetaTransfers      uint64  `json:"meta_transfers,omitempty"`
	ReconPlacedExact   uint64  `json:"recon_placed_exact,omitempty"`
	ReconPlacedNear    uint64  `json:"recon_placed_near,omitempty"`
	ReconDropped       uint64  `json:"recon_dropped,omitempty"`
	Cycles             uint64  `json:"cycles"`
	Coverage           float64 `json:"coverage"`
	OverpredictionRate float64 `json:"overprediction_rate"`
	ReconDropFraction  float64 `json:"recon_drop_fraction,omitempty"`
}

// FromResult converts an engine result to wire form under the given label.
func FromResult(label string, r sim.Result) Result {
	return Result{
		Label:              label,
		Predictor:          r.Prefetcher,
		Accesses:           r.Accesses,
		Reads:              r.Reads,
		Writes:             r.Writes,
		L1Hits:             r.L1Hits,
		L2Hits:             r.L2Hits,
		OffChipReads:       r.OffChipReads,
		Covered:            r.Covered,
		Overpredicted:      r.Overpredicted,
		Fetched:            r.Fetched,
		MetaTransfers:      r.MetaTransfers,
		ReconPlacedExact:   r.ReconPlacedExact,
		ReconPlacedNear:    r.ReconPlacedNear,
		ReconDropped:       r.ReconDropped,
		Cycles:             r.Cycles,
		Coverage:           r.Coverage(),
		OverpredictionRate: r.OverpredictionRate(),
		ReconDropFraction:  r.ReconDropFraction(),
	}
}

// Engine converts the wire result back to the engine's counter form (the
// derived rate fields are recomputed by sim.Result's methods, not stored).
func (r Result) Engine() sim.Result {
	return sim.Result{
		Prefetcher:       r.Predictor,
		Accesses:         r.Accesses,
		Reads:            r.Reads,
		Writes:           r.Writes,
		L1Hits:           r.L1Hits,
		L2Hits:           r.L2Hits,
		OffChipReads:     r.OffChipReads,
		Covered:          r.Covered,
		Overpredicted:    r.Overpredicted,
		Fetched:          r.Fetched,
		MetaTransfers:    r.MetaTransfers,
		ReconPlacedExact: r.ReconPlacedExact,
		ReconPlacedNear:  r.ReconPlacedNear,
		ReconDropped:     r.ReconDropped,
		Cycles:           r.Cycles,
	}
}

// Relabel returns encoded-result bytes with the label field replaced. The
// service's result cache stores label-less canonical bytes (the label is
// presentation, not configuration); this grafts a job's label back on
// without touching any other byte.
func Relabel(data []byte, label string) (json.RawMessage, error) {
	if label == "" {
		return json.RawMessage(data), nil
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("enc: relabel: %w", err)
	}
	r.Label = label
	out, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("enc: relabel: %w", err)
	}
	return out, nil
}

// JobState is a job's lifecycle position.
type JobState string

// The job lifecycle: queued → running → one of the three terminal states.
// A queued job cancelled before a worker picks it up goes straight to
// JobCanceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobProgress is the replay position of a job across its runs.
type JobProgress struct {
	RunsDone  int `json:"runs_done"`
	RunsTotal int `json:"runs_total"`
	// AccessesDone counts accesses accounted for so far — replayed by the
	// engine, or credited in full when a run is served from the result
	// cache.
	AccessesDone  uint64 `json:"accesses_done"`
	AccessesTotal uint64 `json:"accesses_total"`
	// CacheHits counts this job's runs served from the result cache.
	CacheHits int `json:"cache_hits"`
}

// The five phases of a job's lifecycle, in execution order — the spans
// JobStatus.Phases reports and the service's phase-latency histograms
// bucket. "queue" is the wait between submission and a worker picking
// the job up; "resolve" covers trace materialization through the arena;
// "simulate" is replay; "encode" is result marshaling and relabeling;
// "store" is the cache/disk write of computed results.
const (
	PhaseQueue = iota
	PhaseResolve
	PhaseSimulate
	PhaseEncode
	PhaseStore
)

// PhaseNames lists the job phases in execution order, indexed by the
// Phase* constants.
var PhaseNames = [...]string{"queue", "resolve", "simulate", "encode", "store"}

// NumPhases is the number of job phases.
const NumPhases = len(PhaseNames)

// PhaseSpan is the accumulated time a job spent in one phase. A sweep
// job passes through the non-queue phases once per computed run (cached
// runs skip them), so Count reports how many spans the total aggregates.
type PhaseSpan struct {
	// Phase is the span's name (see PhaseNames).
	Phase string `json:"phase"`
	// Nanos is the total time spent in the phase, in nanoseconds.
	Nanos int64 `json:"nanos"`
	// Count is the number of individual spans accumulated into Nanos.
	Count int64 `json:"count"`
}

// JobStatus is the wire form of GET /v1/jobs/{id} and of every SSE event.
type JobStatus struct {
	ID       string      `json:"id"`
	State    JobState    `json:"state"`
	Spec     JobSpec     `json:"spec"`
	Progress JobProgress `json:"progress"`
	// Phases reports where the job's wall-clock time went, one entry per
	// phase in PhaseNames order — all five always present, zero-valued
	// until the job reaches them.
	Phases []PhaseSpan `json:"phases,omitempty"`
	Error  string      `json:"error,omitempty"`
	// Results holds one canonical Result document per run, present once
	// the job is done. Raw bytes, so a cached result round-trips through
	// the API without re-marshaling drift.
	Results []json.RawMessage `json:"results,omitempty"`
}

// DecodedResults parses the raw result documents.
func (s JobStatus) DecodedResults() ([]Result, error) {
	out := make([]Result, len(s.Results))
	for i, raw := range s.Results {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("enc: result %d: %w", i, err)
		}
	}
	return out, nil
}

// KnobInfo is the wire schema of one configuration knob, as
// GET /v1/predictors reports it: enough for a client to render a form,
// validate input, or generate flags without compiled-in tables.
type KnobInfo struct {
	Name string `json:"name"`
	// Group is the knob table the entry belongs to ("system", "run",
	// "stems", ...).
	Group string `json:"group"`
	// Kind is "int", "bool", or "float".
	Kind string `json:"kind"`
	// Default is the paper-configuration value (the "scaled" system
	// additionally shrinks system.l2_size_bytes before knobs apply).
	Default sim.Value `json:"default"`
	// Min and Max bound numeric knobs inclusively. Always present, so a
	// legitimate lower bound of 0 is not mistaken for "unbounded";
	// meaningless (both zero) when Kind is "bool".
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	Doc string  `json:"doc,omitempty"`
}

// PredictorInfo describes one registered predictor and the knobs
// relevant to it (the shared system/run tables plus its own).
type PredictorInfo struct {
	Name  string     `json:"name"`
	Knobs []KnobInfo `json:"knobs"`
}

// KnobInfos converts registry knobs to wire form.
func KnobInfos(knobs []sim.Knob) []KnobInfo {
	out := make([]KnobInfo, len(knobs))
	for i, k := range knobs {
		out[i] = KnobInfo{
			Name:    k.Name,
			Group:   k.Group,
			Kind:    string(k.Kind),
			Default: k.Default(),
			Doc:     k.Doc,
		}
		if k.Kind != sim.KnobBool {
			out[i].Min, out[i].Max = k.Min, k.Max
		}
	}
	return out
}

// PredictorInfos builds the full /v1/predictors document: every
// registered predictor with its knob schema, in registry order.
func PredictorInfos() []PredictorInfo {
	kinds := sim.AllKinds()
	out := make([]PredictorInfo, len(kinds))
	for i, kind := range kinds {
		out[i] = PredictorInfo{
			Name:  string(kind),
			Knobs: KnobInfos(sim.KnobsFor(kind)),
		}
	}
	return out
}

// RunEvent is the payload of an SSE "result" event: one run's canonical
// (labeled) result document, emitted as soon as that run finishes — a
// sweep job streams results incrementally instead of only at job
// completion.
type RunEvent struct {
	// Run is the zero-based index into the job's run list.
	Run int `json:"run"`
	// Result is the raw canonical result document, byte-identical to
	// the corresponding entry of the terminal JobStatus.Results.
	Result json.RawMessage `json:"result"`
}

// WorkloadInfo describes one suite workload in GET /v1/workloads.
type WorkloadInfo struct {
	Name            string `json:"name"`
	Class           string `json:"class"`
	Scientific      bool   `json:"scientific,omitempty"`
	DefaultAccesses int    `json:"default_accesses"`
}

// WorkloadInfos converts the suite specs to wire form.
func WorkloadInfos(specs []workload.Spec) []WorkloadInfo {
	out := make([]WorkloadInfo, len(specs))
	for i, s := range specs {
		out[i] = WorkloadInfo{
			Name:            s.Name,
			Class:           string(s.Class),
			Scientific:      s.Scientific,
			DefaultAccesses: s.DefaultAccesses,
		}
	}
	return out
}

// Metrics is the body of GET /metrics: service-level gauges and counters.
type Metrics struct {
	UptimeSec float64 `json:"uptime_sec"`
	Workers   int     `json:"workers"`

	QueueDepth int `json:"queue_depth"`
	QueueBound int `json:"queue_bound"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`

	// RunsComputed counts runs actually simulated; cache hits avoid it.
	RunsComputed uint64  `json:"runs_computed"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
	CacheBound   int     `json:"cache_bound"`

	// AccessesSimulated counts accesses replayed by the engine since
	// start; AccessesPerSec divides it by uptime — the service-side
	// throughput figure the bench pipeline records. That quotient is a
	// lifetime average: on a long-lived daemon an idle hour drags it
	// toward zero no matter what is happening now, so AccessesPerSec1m
	// additionally reports the windowed rate over the trailing 60
	// seconds — the number a dashboard should graph.
	AccessesSimulated uint64  `json:"accesses_simulated"`
	AccessesPerSec    float64 `json:"accesses_per_sec"`
	AccessesPerSec1m  float64 `json:"accesses_per_sec_1m"`

	// Trace-arena activity: workload traces resident, generator
	// invocations, and arena cache hits across jobs.
	TracesResident   int `json:"traces_resident"`
	TraceGenerations int `json:"trace_generations"`
	TraceHits        int `json:"trace_hits"`

	// GridJobs counts jobs submitted as declarative grids (JobSpec.Grid)
	// and expanded server-side.
	GridJobs uint64 `json:"grid_jobs"`

	// Lockstep reports run folding: how often the scheduler merged a
	// job's runs into lockstep sets instead of executing them one by one.
	Lockstep LockstepMetrics `json:"lockstep"`

	// Sched reports the cron scheduler; absent when the daemon runs
	// without schedules.
	Sched *SchedMetrics `json:"sched,omitempty"`

	// Notify reports completion-notifier deliveries; absent when no
	// notifiers are configured.
	Notify *NotifyMetrics `json:"notify,omitempty"`

	// Store reports the disk tier of the result cache; absent when the
	// daemon runs memory-only (no -store).
	Store *StoreMetrics `json:"store,omitempty"`

	// Cluster reports shard-routing observability; absent when the
	// daemon runs standalone (no -peers).
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
}

// LockstepMetrics is the /metrics section for run folding: a job's runs
// that replay the same trace (any predictors/knobs) fuse onto one shared
// cursor, and runs differing only by seed advance as one seed set.
type LockstepMetrics struct {
	// SetsFormed counts lockstep sets of two or more lanes actually
	// executed (fused same-trace sets and seed sets alike).
	SetsFormed uint64 `json:"sets_formed"`
	// RunsFolded counts the runs those sets absorbed — runs that were
	// simulated as set lanes rather than as standalone runs.
	RunsFolded uint64 `json:"runs_folded"`
	// TracesSaved counts whole trace traversals avoided by shared-cursor
	// (same-trace) sets: lanes minus one per fused set. Seed sets save
	// no traversals (each lane replays its own trace) and don't count.
	TracesSaved uint64 `json:"traces_saved"`
}

// StoreMetrics is the /metrics section for the disk-backed result
// store: residency, verified-read outcomes, and eviction pressure.
type StoreMetrics struct {
	// Dir is the store root on disk.
	Dir string `json:"dir"`
	// Entries and Bytes describe resident payloads; Bound is the LRU
	// entry cap.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Bound   int   `json:"bound"`
	// Hits counts results served from disk (a restarted daemon's warm
	// answers); Misses counts disk lookups that fell through to a real
	// simulation.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts LRU drops; CorruptDropped counts entries deleted
	// because CRC/header verification failed on read.
	Evictions      uint64 `json:"evictions"`
	CorruptDropped uint64 `json:"corrupt_dropped"`
	// ReadLatency and WriteLatency summarize the disk I/O distributions
	// (entry read+verify, entry write+sync+rename), present once at
	// least one operation has been recorded.
	ReadLatency  *LatencyStats `json:"read_latency,omitempty"`
	WriteLatency *LatencyStats `json:"write_latency,omitempty"`
}

// LatencyStats is the wire summary of a latency histogram: count, mean,
// and tail quantiles in microseconds. Quantiles are bucket upper bounds
// of the underlying log-bucketed histogram — accurate to one
// power-of-two bucket, which is the resolution monitoring needs.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
}

// LatencyFromSnapshot summarizes a histogram snapshot in wire form; nil
// when the histogram has recorded nothing (so empty distributions stay
// out of JSON documents entirely).
func LatencyFromSnapshot(s obs.Snapshot) *LatencyStats {
	if s.Count == 0 {
		return nil
	}
	us := func(d int64) float64 { return float64(d) / 1e3 }
	return &LatencyStats{
		Count:  s.Count,
		MeanUs: us(int64(s.Mean())),
		P50Us:  us(int64(s.Quantile(0.50))),
		P90Us:  us(int64(s.Quantile(0.90))),
		P99Us:  us(int64(s.Quantile(0.99))),
	}
}

// ClusterMetrics is the /metrics section for shard routing: which peers
// this daemon knows, and how the runs it has been asked to execute
// distribute over the shard map's owners.
type ClusterMetrics struct {
	// Peers is the full shard map (every daemon's base URL, this one
	// included); Self names this daemon's own entry when configured.
	Peers []string `json:"peers"`
	Self  string   `json:"self,omitempty"`
	// PeerRuns counts the runs submitted to this daemon bucketed by the
	// peer the shard map says owns them, index-aligned with Peers. On a
	// well-routed cluster a daemon's own bucket dominates; weight
	// elsewhere means clients are bypassing the shard map (or covering
	// for a down owner).
	PeerRuns []uint64 `json:"peer_runs"`
	// MisroutedRuns totals the runs owned by a peer other than Self
	// (zero until Self is configured).
	MisroutedRuns uint64 `json:"misrouted_runs"`
}

// ErrorBody is the structured error envelope every non-2xx response
// carries: {"error":{"code":"...","message":"..."}}.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the code/message pair inside ErrorBody.
type ErrorDetail struct {
	// Code is a stable machine-readable slug: "invalid_spec",
	// "not_found", "queue_full", "draining", "internal".
	Code    string `json:"code"`
	Message string `json:"message"`
}
