package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stems/internal/mem"
)

func small() *Cache {
	// 4 sets x 2 ways x 64B = 512B cache.
	return New(Config{SizeBytes: 512, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 2},
		{SizeBytes: 512, Ways: 0},
		{SizeBytes: 100, Ways: 2},    // not block multiple
		{SizeBytes: 3 * 64, Ways: 2}, // blocks not divisible by ways
		{SizeBytes: 6 * 64, Ways: 2}, // 3 sets: not power of two
		{SizeBytes: -512, Ways: 2},   // negative
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
	good := []Config{
		{SizeBytes: 512, Ways: 2},
		{SizeBytes: 64 * 1024, Ways: 2},
		{SizeBytes: 8 << 20, Ways: 8},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, Ways: 3})
}

func TestMissThenFillThenHit(t *testing.T) {
	c := small()
	a := mem.Addr(0x1000)
	if c.Access(a, false) {
		t.Fatal("access to empty cache hit")
	}
	c.Fill(a, false)
	if !c.Access(a, false) {
		t.Fatal("access after fill missed")
	}
	if !c.Access(a+63, false) {
		t.Fatal("access to same block missed")
	}
	if c.Access(a+64, false) {
		t.Fatal("access to next block hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	var evicted []mem.Addr
	c.OnEvict = func(b mem.Addr) { evicted = append(evicted, b) }

	// Three blocks mapping to the same set (4 sets, stride 4*64 = 256B).
	a0, a1, a2 := mem.Addr(0), mem.Addr(256), mem.Addr(512)
	c.Fill(a0, false)
	c.Fill(a1, false)
	c.Access(a0, false) // a0 now MRU; a1 is LRU
	c.Fill(a2, false)   // must evict a1
	if len(evicted) != 1 || evicted[0] != a1 {
		t.Fatalf("evicted = %v, want [%d]", evicted, a1)
	}
	if !c.Contains(a0) || !c.Contains(a2) || c.Contains(a1) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestFillRefreshesExisting(t *testing.T) {
	c := small()
	a0, a1, a2 := mem.Addr(0), mem.Addr(256), mem.Addr(512)
	c.Fill(a0, false)
	c.Fill(a1, false)
	c.Fill(a0, false) // refresh a0; a1 becomes LRU
	c.Fill(a2, false)
	if c.Contains(a1) {
		t.Error("refreshed fill did not update LRU: a1 survived")
	}
	if !c.Contains(a0) {
		t.Error("a0 was evicted despite refresh")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	var evicted []mem.Addr
	c.OnEvict = func(b mem.Addr) { evicted = append(evicted, b) }
	a := mem.Addr(0x40)
	c.Fill(a, false)
	if !c.Invalidate(a) {
		t.Fatal("Invalidate on present block returned false")
	}
	if c.Contains(a) {
		t.Fatal("block still present after Invalidate")
	}
	if c.Invalidate(a) {
		t.Fatal("Invalidate on absent block returned true")
	}
	if len(evicted) != 1 || evicted[0] != a.Block() {
		t.Fatalf("eviction callback got %v, want [%d]", evicted, a.Block())
	}
}

func TestStats(t *testing.T) {
	c := small()
	c.Access(0, false) // miss
	c.Fill(0, false)
	c.Access(0, false)  // hit
	c.Access(10, false) // hit (same block)
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = (%d,%d), want (2,1)", hits, misses)
	}
	c.ResetStats()
	hits, misses = c.Stats()
	if hits != 0 || misses != 0 {
		t.Errorf("stats after reset = (%d,%d)", hits, misses)
	}
}

func TestOccupancyBounded(t *testing.T) {
	c := small()
	for i := 0; i < 1000; i++ {
		c.Fill(mem.Addr(i*64), false)
	}
	if occ := c.Occupancy(); occ != 8 {
		t.Errorf("occupancy = %d, want full capacity 8", occ)
	}
}

// Property: a fill makes the block present; capacity is never exceeded; an
// access immediately after a fill always hits.
func TestFillThenHitProperty(t *testing.T) {
	c := New(Config{SizeBytes: 2048, Ways: 4})
	f := func(raw uint32) bool {
		a := mem.Addr(raw)
		c.Fill(a, false)
		return c.Access(a, false) && c.Occupancy() <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the cache models a true LRU set — simulate against a reference
// model on a single set.
func TestLRUMatchesReferenceModel(t *testing.T) {
	const ways = 4
	c := New(Config{SizeBytes: ways * 64, Ways: ways}) // one set
	var ref []mem.Addr                                 // front = LRU, back = MRU
	refTouch := func(b mem.Addr) {
		for i, x := range ref {
			if x == b {
				ref = append(append(ref[:i:i], ref[i+1:]...), b)
				return
			}
		}
		if len(ref) == ways {
			ref = ref[1:]
		}
		ref = append(ref, b)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		b := mem.Addr(rng.Intn(8) * 64)
		if c.Access(b, false) {
			refTouch(b)
		} else {
			c.Fill(b, false)
			refTouch(b)
		}
		// Cross-check presence.
		inRef := func(b mem.Addr) bool {
			for _, x := range ref {
				if x == b {
					return true
				}
			}
			return false
		}
		for blk := 0; blk < 8; blk++ {
			b := mem.Addr(blk * 64)
			if c.Contains(b) != inRef(b) {
				t.Fatalf("step %d: Contains(%d)=%v, ref=%v", i, b, c.Contains(b), inRef(b))
			}
		}
	}
}

func TestEvictionCallbackOnlyForValidVictims(t *testing.T) {
	c := small()
	calls := 0
	c.OnEvict = func(mem.Addr) { calls++ }
	// Filling an empty cache must not fire evictions.
	for i := 0; i < 8; i++ {
		c.Fill(mem.Addr(i*64), false)
	}
	if calls != 0 {
		t.Errorf("evictions while filling empty cache: %d", calls)
	}
	c.Fill(mem.Addr(8*64), false)
	if calls != 1 {
		t.Errorf("evictions after overflow: %d, want 1", calls)
	}
}
