package cache

import (
	"testing"

	"stems/internal/mem"
)

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{SizeBytes: 64 << 10, Ways: 2})
	c.Fill(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

func BenchmarkAccessMissFill(b *testing.B) {
	c := New(Config{SizeBytes: 64 << 10, Ways: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.Addr(i) * mem.BlockSize
		if !c.Access(a, false) {
			c.Fill(a, false)
		}
	}
}
