// Package cache implements the set-associative caches used by the simulated
// memory hierarchy (Table 1: split 64KB 2-way L1, unified 8MB 8-way L2, 64B
// blocks). The spatial predictors need to observe block evictions to end
// spatial generations (§2.4), so the cache reports every victim.
package cache

import (
	"fmt"
	"math/bits"

	"stems/internal/mem"
)

// Config describes a cache's geometry.
type Config struct {
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
}

// Validate reports whether the configuration describes a realizable cache.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.Ways > 64 {
		return fmt.Errorf("cache: associativity %d exceeds the 64-way limit", c.Ways)
	}
	blocks := c.SizeBytes / mem.BlockSize
	if blocks*mem.BlockSize != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of block size", c.SizeBytes)
	}
	if blocks%c.Ways != 0 {
		return fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, c.Ways)
	}
	sets := blocks / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is a set-associative, LRU-replacement, write-allocate cache of
// 64-byte blocks. It tracks presence only (no data payload); the simulator
// is trace-driven.
//
// Way state is stored column-wise: one contiguous tag array (way-major
// within each set) plus per-set valid/dirty bitmasks and a parallel LRU
// stamp array. A probe scans the set's tags in one cache line (an 8-way
// set is exactly 64 bytes of tags) instead of striding over padded
// per-way structs — the probe loops sit on the per-access simulation path
// for every level of the hierarchy and on the stream engine's
// duplicate-fetch filter.
type Cache struct {
	cfg     Config
	ways    int
	setMask uint64
	tags    []mem.Addr // sets × ways block base addresses
	lrus    []uint64   // sets × ways last-touch stamps; larger = more recent
	valid   []uint64   // per-set validity bitmask over ways
	dirty   []uint64   // per-set dirty bitmask over ways
	stamp   uint64

	// OnEvict, if non-nil, is invoked with the block base address of every
	// valid block displaced by a fill (or removed by Invalidate). The
	// spatial predictors use this to terminate generations.
	OnEvict func(block mem.Addr)

	hits, misses uint64
}

// New constructs a cache; it panics if cfg is invalid (a configuration bug,
// not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / mem.BlockSize / cfg.Ways
	return &Cache{
		cfg:     cfg,
		ways:    cfg.Ways,
		setMask: uint64(sets - 1),
		tags:    make([]mem.Addr, sets*cfg.Ways),
		lrus:    make([]uint64, sets*cfg.Ways),
		valid:   make([]uint64, sets),
		dirty:   make([]uint64, sets),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.valid) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// Contains reports whether the block holding addr is present, without
// touching LRU state or statistics.
func (c *Cache) Contains(addr mem.Addr) bool {
	block := addr.Block()
	set := block.BlockIndex() & c.setMask
	vm := c.valid[set]
	base := int(set) * c.ways
	for _, t := range c.tags[base : base+c.ways] {
		if t == block && vm&1 != 0 {
			return true
		}
		vm >>= 1
	}
	return false
}

// Access performs a demand reference to addr. It returns true on hit. On
// hit the block's LRU state is refreshed (and marked dirty for writes). On
// miss the cache is unchanged: the caller decides whether to Fill (modeling
// the fill that follows the miss) so that prefetch buffers can intervene.
func (c *Cache) Access(addr mem.Addr, write bool) bool {
	block := addr.Block()
	set := block.BlockIndex() & c.setMask
	vm := c.valid[set]
	base := int(set) * c.ways
	c.stamp++
	for i, t := range c.tags[base : base+c.ways] {
		if t == block && vm>>uint(i)&1 != 0 {
			c.lrus[base+i] = c.stamp
			if write {
				c.dirty[set] |= 1 << uint(i)
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Fill installs the block holding addr, evicting the LRU way if the set is
// full. Filling a block that is already present refreshes it instead.
func (c *Cache) Fill(addr mem.Addr, write bool) {
	block := addr.Block()
	set := block.BlockIndex() & c.setMask
	vm := c.valid[set]
	base := int(set) * c.ways
	c.stamp++
	victim := 0
	firstInvalid := -1
	for i, t := range c.tags[base : base+c.ways] {
		if vm>>uint(i)&1 == 0 {
			if firstInvalid < 0 {
				// The preferred victim, but keep scanning for the tag.
				firstInvalid = i
			}
			continue
		}
		if t == block {
			c.lrus[base+i] = c.stamp
			if write {
				c.dirty[set] |= 1 << uint(i)
			}
			return
		}
		if vm>>uint(victim)&1 != 0 && c.lrus[base+i] < c.lrus[base+victim] {
			victim = i
		}
	}
	// Prefer any invalid way over evicting.
	if firstInvalid >= 0 {
		victim = firstInvalid
	}
	if vm>>uint(victim)&1 != 0 && c.OnEvict != nil {
		c.OnEvict(c.tags[base+victim])
	}
	c.tags[base+victim] = block
	c.lrus[base+victim] = c.stamp
	c.valid[set] |= 1 << uint(victim)
	if write {
		c.dirty[set] |= 1 << uint(victim)
	} else {
		c.dirty[set] &^= 1 << uint(victim)
	}
}

// Invalidate removes the block holding addr if present, reporting whether it
// was. The eviction callback fires, matching the paper's rule that a
// generation ends "when one of the accessed blocks is evicted or
// invalidated from the L1 cache" (§2.4).
func (c *Cache) Invalidate(addr mem.Addr) bool {
	block := addr.Block()
	set := block.BlockIndex() & c.setMask
	vm := c.valid[set]
	base := int(set) * c.ways
	for i, t := range c.tags[base : base+c.ways] {
		if t == block && vm>>uint(i)&1 != 0 {
			c.valid[set] &^= 1 << uint(i)
			if c.OnEvict != nil {
				c.OnEvict(block)
			}
			return true
		}
	}
	return false
}

// Stats returns cumulative demand hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats clears hit/miss counters without touching cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Occupancy returns the number of valid blocks currently resident.
func (c *Cache) Occupancy() int {
	n := 0
	for _, vm := range c.valid {
		n += bits.OnesCount64(vm)
	}
	return n
}
