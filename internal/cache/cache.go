// Package cache implements the set-associative caches used by the simulated
// memory hierarchy (Table 1: split 64KB 2-way L1, unified 8MB 8-way L2, 64B
// blocks). The spatial predictors need to observe block evictions to end
// spatial generations (§2.4), so the cache reports every victim.
package cache

import (
	"fmt"

	"stems/internal/mem"
)

// Config describes a cache's geometry.
type Config struct {
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
}

// Validate reports whether the configuration describes a realizable cache.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	blocks := c.SizeBytes / mem.BlockSize
	if blocks*mem.BlockSize != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of block size", c.SizeBytes)
	}
	if blocks%c.Ways != 0 {
		return fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, c.Ways)
	}
	sets := blocks / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

type way struct {
	tag   mem.Addr // block base address
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Cache is a set-associative, LRU-replacement, write-allocate cache of
// 64-byte blocks. It tracks presence only (no data payload); the simulator
// is trace-driven.
type Cache struct {
	cfg     Config
	sets    [][]way
	setMask uint64
	stamp   uint64

	// OnEvict, if non-nil, is invoked with the block base address of every
	// valid block displaced by a fill (or removed by Invalidate). The
	// spatial predictors use this to terminate generations.
	OnEvict func(block mem.Addr)

	hits, misses uint64
}

// New constructs a cache; it panics if cfg is invalid (a configuration bug,
// not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / mem.BlockSize / cfg.Ways
	c := &Cache{cfg: cfg, setMask: uint64(sets - 1)}
	c.sets = make([][]way, sets)
	backing := make([]way, sets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

func (c *Cache) setFor(block mem.Addr) []way {
	return c.sets[block.BlockIndex()&c.setMask]
}

// Contains reports whether the block holding addr is present, without
// touching LRU state or statistics.
func (c *Cache) Contains(addr mem.Addr) bool {
	block := addr.Block()
	set := c.setFor(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// Access performs a demand reference to addr. It returns true on hit. On
// hit the block's LRU state is refreshed (and marked dirty for writes). On
// miss the cache is unchanged: the caller decides whether to Fill (modeling
// the fill that follows the miss) so that prefetch buffers can intervene.
func (c *Cache) Access(addr mem.Addr, write bool) bool {
	block := addr.Block()
	set := c.setFor(block)
	c.stamp++
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Fill installs the block holding addr, evicting the LRU way if the set is
// full. Filling a block that is already present refreshes it instead.
func (c *Cache) Fill(addr mem.Addr, write bool) {
	block := addr.Block()
	set := c.setFor(block)
	c.stamp++
	victim := 0
	firstInvalid := -1
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			return
		}
		if !set[i].valid {
			if firstInvalid < 0 {
				// The preferred victim, but keep scanning for the tag.
				firstInvalid = i
			}
			continue
		}
		if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	// Prefer any invalid way over evicting.
	if firstInvalid >= 0 {
		victim = firstInvalid
	}
	if set[victim].valid && c.OnEvict != nil {
		c.OnEvict(set[victim].tag)
	}
	set[victim] = way{tag: block, valid: true, dirty: write, lru: c.stamp}
}

// Invalidate removes the block holding addr if present, reporting whether it
// was. The eviction callback fires, matching the paper's rule that a
// generation ends "when one of the accessed blocks is evicted or
// invalidated from the L1 cache" (§2.4).
func (c *Cache) Invalidate(addr mem.Addr) bool {
	block := addr.Block()
	set := c.setFor(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].valid = false
			if c.OnEvict != nil {
				c.OnEvict(block)
			}
			return true
		}
	}
	return false
}

// Stats returns cumulative demand hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats clears hit/miss counters without touching cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Occupancy returns the number of valid blocks currently resident.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
