package lru

import "testing"

func BenchmarkPutGet(b *testing.B) {
	m := New[uint64, int](16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) % (20 << 10) // mix of hits, misses, evictions
		if _, ok := m.Get(k); !ok {
			m.Put(k, i)
		}
	}
}
