package lru

import "stems/internal/flat"

// U64Map is Map monomorphized for uint64 keys over flat.U64Table, so the
// whole probe path — hash included — inlines into Get/Put/Delete. The
// predictor structures keyed by addresses or regions on the per-access
// path (the STeMS AGT and reconstruction-region table) use it; keys must
// be injective in uint64, which addresses trivially are.
type U64Map[V any] struct {
	capacity int
	index    *flat.U64Table[int]
	entries  []entry[uint64, V]
	head     int
	tail     int
	free     []int
}

// NewU64 creates a U64Map holding at most capacity entries; capacity must
// be positive. Like New, all storage is allocated here.
func NewU64[V any](capacity int) *U64Map[V] {
	if capacity <= 0 {
		panic("lru: non-positive capacity")
	}
	return &U64Map[V]{
		capacity: capacity,
		index:    flat.NewU64Table[int](capacity),
		entries:  make([]entry[uint64, V], 0, capacity),
		free:     make([]int, 0, capacity),
		head:     -1,
		tail:     -1,
	}
}

// Len returns the current number of entries.
func (m *U64Map[V]) Len() int { return m.index.Len() }

// Cap returns the capacity.
func (m *U64Map[V]) Cap() int { return m.capacity }

func (m *U64Map[V]) unlink(i int) {
	e := &m.entries[i]
	if e.prev >= 0 {
		m.entries[e.prev].next = e.next
	} else {
		m.head = e.next
	}
	if e.next >= 0 {
		m.entries[e.next].prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (m *U64Map[V]) pushFront(i int) {
	e := &m.entries[i]
	e.prev = -1
	e.next = m.head
	if m.head >= 0 {
		m.entries[m.head].prev = i
	}
	m.head = i
	if m.tail < 0 {
		m.tail = i
	}
}

// Get returns the value for k and refreshes its recency.
func (m *U64Map[V]) Get(k uint64) (V, bool) {
	i, ok := m.index.Get(k)
	if !ok {
		var zero V
		return zero, false
	}
	if m.head != i {
		m.unlink(i)
		m.pushFront(i)
	}
	return m.entries[i].val, true
}

// GetRef is Get returning a pointer into the map's entry storage instead
// of copying the value — the read path for large values (the PST's inline
// pattern entries). The pointer is read-only for callers and valid only
// until the next Put or Delete, which may displace the entry.
func (m *U64Map[V]) GetRef(k uint64) (*V, bool) {
	i, ok := m.index.Get(k)
	if !ok {
		return nil, false
	}
	if m.head != i {
		m.unlink(i)
		m.pushFront(i)
	}
	return &m.entries[i].val, true
}

// Find returns the internal node index for k without refreshing recency
// or copying the value. Together with Touch and RefAt it is the batch
// probe path: a caller resolving many keys can separate the index probes
// from the recency updates while preserving the exact Get semantics —
// Find+Touch+RefAt in key order leaves the map byte-identical to a
// GetRef per key. Node indexes are stable until the next Put or Delete.
func (m *U64Map[V]) Find(k uint64) (int, bool) { return m.index.Get(k) }

// Touch refreshes the recency of the node index i returned by Find,
// exactly as Get would for its key.
func (m *U64Map[V]) Touch(i int) {
	if m.head != i {
		m.unlink(i)
		m.pushFront(i)
	}
}

// RefAt returns a pointer to the value stored at node index i. Like
// GetRef, the pointer is read-only for callers and valid only until the
// next Put or Delete.
func (m *U64Map[V]) RefAt(i int) *V { return &m.entries[i].val }

// Peek returns the value for k without refreshing recency.
func (m *U64Map[V]) Peek(k uint64) (V, bool) {
	i, ok := m.index.Get(k)
	if !ok {
		var zero V
		return zero, false
	}
	return m.entries[i].val, true
}

// Put inserts or updates k, refreshing recency; it reports the displaced
// LRU entry, if any, exactly like Map.Put.
func (m *U64Map[V]) Put(k uint64, v V) (evictedK uint64, evictedV V, evicted bool) {
	if i, ok := m.index.Get(k); ok {
		m.entries[i].val = v
		if m.head != i {
			m.unlink(i)
			m.pushFront(i)
		}
		return
	}
	var slot int
	switch {
	case len(m.free) > 0:
		slot = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	case len(m.entries) < m.capacity:
		m.entries = append(m.entries, entry[uint64, V]{})
		slot = len(m.entries) - 1
	default:
		slot = m.tail
		victim := &m.entries[slot]
		evictedK, evictedV, evicted = victim.key, victim.val, true
		m.index.Delete(victim.key)
		m.unlink(slot)
	}
	m.entries[slot] = entry[uint64, V]{key: k, val: v, prev: -1, next: -1}
	m.index.Put(k, slot)
	m.pushFront(slot)
	return
}

// Delete removes k, reporting whether it was present.
func (m *U64Map[V]) Delete(k uint64) bool {
	i, ok := m.index.Get(k)
	if !ok {
		return false
	}
	m.unlink(i)
	m.index.Delete(k)
	m.free = append(m.free, i)
	return true
}

// Each calls fn for every entry in MRU-to-LRU order; if fn returns false
// iteration stops. Mutating the map inside fn is not allowed.
func (m *U64Map[V]) Each(fn func(k uint64, v V) bool) {
	for i := m.head; i >= 0; i = m.entries[i].next {
		if !fn(m.entries[i].key, m.entries[i].val) {
			return
		}
	}
}

// LRUKey returns the least-recently-used key, if any.
func (m *U64Map[V]) LRUKey() (uint64, bool) {
	if m.tail < 0 {
		return 0, false
	}
	return m.entries[m.tail].key, true
}
