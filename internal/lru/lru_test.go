package lru

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if _, ok := m.Get("c"); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	m := New[int, int](2)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Get(1) // 2 is now LRU
	k, v, ev := m.Put(3, 30)
	if !ev || k != 2 || v != 20 {
		t.Fatalf("evicted (%d,%d,%v), want (2,20,true)", k, v, ev)
	}
	if _, ok := m.Peek(2); ok {
		t.Fatal("evicted key still present")
	}
}

func TestPeekDoesNotRefresh(t *testing.T) {
	m := New[int, int](2)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Peek(1) // must NOT refresh; 1 stays LRU
	k, _, ev := m.Put(3, 30)
	if !ev || k != 1 {
		t.Fatalf("evicted %d, want 1", k)
	}
}

func TestPutUpdateRefreshes(t *testing.T) {
	m := New[int, int](2)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Put(1, 11) // refresh 1; 2 becomes LRU
	k, _, ev := m.Put(3, 30)
	if !ev || k != 2 {
		t.Fatalf("evicted %d, want 2", k)
	}
	if v, _ := m.Get(1); v != 11 {
		t.Fatalf("updated value = %d, want 11", v)
	}
}

func TestDelete(t *testing.T) {
	m := New[int, int](4)
	m.Put(1, 10)
	if !m.Delete(1) {
		t.Fatal("Delete of present key failed")
	}
	if m.Delete(1) {
		t.Fatal("Delete of absent key succeeded")
	}
	if m.Len() != 0 {
		t.Fatalf("Len after delete = %d", m.Len())
	}
	// The freed slot is reusable without eviction.
	m.Put(2, 20)
	m.Put(3, 30)
	m.Put(4, 40)
	m.Put(5, 50)
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
}

func TestEach(t *testing.T) {
	m := New[int, int](3)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Put(3, 30)
	m.Get(1) // MRU order: 1, 3, 2
	var keys []int
	m.Each(func(k, v int) bool {
		keys = append(keys, k)
		return true
	})
	want := []int{1, 3, 2}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", keys, want)
		}
	}
	// Early termination.
	n := 0
	m.Each(func(k, v int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each early-stop visited %d", n)
	}
}

func TestLRUKey(t *testing.T) {
	m := New[int, int](3)
	if _, ok := m.LRUKey(); ok {
		t.Fatal("LRUKey on empty map")
	}
	m.Put(1, 1)
	m.Put(2, 2)
	if k, ok := m.LRUKey(); !ok || k != 1 {
		t.Fatalf("LRUKey = %d,%v", k, ok)
	}
}

func TestNewPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int, int](0)
}

// Property: the map never exceeds capacity and behaves identically to a
// reference model under a random workload.
func TestMatchesReferenceModel(t *testing.T) {
	const capacity = 8
	m := New[int, int](capacity)
	type refEnt struct{ k, v int }
	var ref []refEnt // front = LRU
	refGet := func(k int) (int, bool) {
		for i, e := range ref {
			if e.k == k {
				ref = append(append(ref[:i:i], ref[i+1:]...), e)
				return e.v, true
			}
		}
		return 0, false
	}
	refPut := func(k, v int) {
		for i, e := range ref {
			if e.k == k {
				ref = append(append(ref[:i:i], ref[i+1:]...), refEnt{k, v})
				return
			}
		}
		if len(ref) == capacity {
			ref = ref[1:]
		}
		ref = append(ref, refEnt{k, v})
	}
	refDel := func(k int) bool {
		for i, e := range ref {
			if e.k == k {
				ref = append(ref[:i:i], ref[i+1:]...)
				return true
			}
		}
		return false
	}

	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 20000; step++ {
		k := rng.Intn(16)
		switch rng.Intn(3) {
		case 0:
			m.Put(k, step)
			refPut(k, step)
		case 1:
			gv, gok := m.Get(k)
			rv, rok := refGet(k)
			if gok != rok || (gok && gv != rv) {
				t.Fatalf("step %d: Get(%d) = (%d,%v), ref (%d,%v)", step, k, gv, gok, rv, rok)
			}
		case 2:
			if m.Delete(k) != refDel(k) {
				t.Fatalf("step %d: Delete(%d) mismatch", step, k)
			}
		}
		if m.Len() != len(ref) || m.Len() > capacity {
			t.Fatalf("step %d: Len=%d ref=%d", step, m.Len(), len(ref))
		}
	}
}

// Property: after any sequence of Puts of distinct keys beyond capacity,
// exactly the most recent `capacity` keys survive.
func TestRetainsMostRecent(t *testing.T) {
	f := func(keys []int16) bool {
		m := New[int16, int](4)
		seen := make(map[int16]bool)
		var order []int16 // distinct keys in put order
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
			m.Put(k, 0)
		}
		// This property needs each key put exactly once; restrict input.
		if len(order) != len(keys) {
			return true // skip inputs with duplicates
		}
		start := 0
		if len(order) > 4 {
			start = len(order) - 4
		}
		for _, k := range order[start:] {
			if _, ok := m.Peek(k); !ok {
				return false
			}
		}
		return m.Len() <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
