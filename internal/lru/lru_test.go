package lru

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if _, ok := m.Get("c"); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	m := New[int, int](2)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Get(1) // 2 is now LRU
	k, v, ev := m.Put(3, 30)
	if !ev || k != 2 || v != 20 {
		t.Fatalf("evicted (%d,%d,%v), want (2,20,true)", k, v, ev)
	}
	if _, ok := m.Peek(2); ok {
		t.Fatal("evicted key still present")
	}
}

func TestPeekDoesNotRefresh(t *testing.T) {
	m := New[int, int](2)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Peek(1) // must NOT refresh; 1 stays LRU
	k, _, ev := m.Put(3, 30)
	if !ev || k != 1 {
		t.Fatalf("evicted %d, want 1", k)
	}
}

func TestPutUpdateRefreshes(t *testing.T) {
	m := New[int, int](2)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Put(1, 11) // refresh 1; 2 becomes LRU
	k, _, ev := m.Put(3, 30)
	if !ev || k != 2 {
		t.Fatalf("evicted %d, want 2", k)
	}
	if v, _ := m.Get(1); v != 11 {
		t.Fatalf("updated value = %d, want 11", v)
	}
}

func TestDelete(t *testing.T) {
	m := New[int, int](4)
	m.Put(1, 10)
	if !m.Delete(1) {
		t.Fatal("Delete of present key failed")
	}
	if m.Delete(1) {
		t.Fatal("Delete of absent key succeeded")
	}
	if m.Len() != 0 {
		t.Fatalf("Len after delete = %d", m.Len())
	}
	// The freed slot is reusable without eviction.
	m.Put(2, 20)
	m.Put(3, 30)
	m.Put(4, 40)
	m.Put(5, 50)
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
}

func TestEach(t *testing.T) {
	m := New[int, int](3)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Put(3, 30)
	m.Get(1) // MRU order: 1, 3, 2
	var keys []int
	m.Each(func(k, v int) bool {
		keys = append(keys, k)
		return true
	})
	want := []int{1, 3, 2}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", keys, want)
		}
	}
	// Early termination.
	n := 0
	m.Each(func(k, v int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each early-stop visited %d", n)
	}
}

func TestLRUKey(t *testing.T) {
	m := New[int, int](3)
	if _, ok := m.LRUKey(); ok {
		t.Fatal("LRUKey on empty map")
	}
	m.Put(1, 1)
	m.Put(2, 2)
	if k, ok := m.LRUKey(); !ok || k != 1 {
		t.Fatalf("LRUKey = %d,%v", k, ok)
	}
}

func TestNewPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int, int](0)
}

// Property: the map never exceeds capacity and behaves identically to a
// reference model under a random workload.
func TestMatchesReferenceModel(t *testing.T) {
	const capacity = 8
	m := New[int, int](capacity)
	type refEnt struct{ k, v int }
	var ref []refEnt // front = LRU
	refGet := func(k int) (int, bool) {
		for i, e := range ref {
			if e.k == k {
				ref = append(append(ref[:i:i], ref[i+1:]...), e)
				return e.v, true
			}
		}
		return 0, false
	}
	refPut := func(k, v int) {
		for i, e := range ref {
			if e.k == k {
				ref = append(append(ref[:i:i], ref[i+1:]...), refEnt{k, v})
				return
			}
		}
		if len(ref) == capacity {
			ref = ref[1:]
		}
		ref = append(ref, refEnt{k, v})
	}
	refDel := func(k int) bool {
		for i, e := range ref {
			if e.k == k {
				ref = append(ref[:i:i], ref[i+1:]...)
				return true
			}
		}
		return false
	}

	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 20000; step++ {
		k := rng.Intn(16)
		switch rng.Intn(3) {
		case 0:
			m.Put(k, step)
			refPut(k, step)
		case 1:
			gv, gok := m.Get(k)
			rv, rok := refGet(k)
			if gok != rok || (gok && gv != rv) {
				t.Fatalf("step %d: Get(%d) = (%d,%v), ref (%d,%v)", step, k, gv, gok, rv, rok)
			}
		case 2:
			if m.Delete(k) != refDel(k) {
				t.Fatalf("step %d: Delete(%d) mismatch", step, k)
			}
		}
		if m.Len() != len(ref) || m.Len() > capacity {
			t.Fatalf("step %d: Len=%d ref=%d", step, m.Len(), len(ref))
		}
	}
}

// Property: after any sequence of Puts of distinct keys beyond capacity,
// exactly the most recent `capacity` keys survive.
func TestRetainsMostRecent(t *testing.T) {
	f := func(keys []int16) bool {
		m := New[int16, int](4)
		seen := make(map[int16]bool)
		var order []int16 // distinct keys in put order
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
			m.Put(k, 0)
		}
		// This property needs each key put exactly once; restrict input.
		if len(order) != len(keys) {
			return true // skip inputs with duplicates
		}
		start := 0
		if len(order) > 4 {
			start = len(order) - 4
		}
		for _, k := range order[start:] {
			if _, ok := m.Peek(k); !ok {
				return false
			}
		}
		return m.Len() <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// refLRU is a deliberately naive reference implementation: a Go map plus a
// recency-ordered slice. The open-addressed index inside Map must be
// observationally indistinguishable from it.
type refLRU struct {
	capacity int
	vals     map[int]int
	order    []int // front = LRU, back = MRU
}

func newRefLRU(capacity int) *refLRU {
	return &refLRU{capacity: capacity, vals: map[int]int{}}
}

func (r *refLRU) touch(k int) {
	for i, kk := range r.order {
		if kk == k {
			r.order = append(append(r.order[:i:i], r.order[i+1:]...), k)
			return
		}
	}
}

func (r *refLRU) get(k int) (int, bool) {
	v, ok := r.vals[k]
	if ok {
		r.touch(k)
	}
	return v, ok
}

func (r *refLRU) peek(k int) (int, bool) {
	v, ok := r.vals[k]
	return v, ok
}

func (r *refLRU) put(k, v int) (int, int, bool) {
	if _, ok := r.vals[k]; ok {
		r.vals[k] = v
		r.touch(k)
		return 0, 0, false
	}
	var ek, ev int
	evicted := false
	if len(r.vals) == r.capacity {
		ek = r.order[0]
		ev = r.vals[ek]
		evicted = true
		delete(r.vals, ek)
		r.order = r.order[1:]
	}
	r.vals[k] = v
	r.order = append(r.order, k)
	return ek, ev, evicted
}

func (r *refLRU) del(k int) bool {
	if _, ok := r.vals[k]; !ok {
		return false
	}
	delete(r.vals, k)
	for i, kk := range r.order {
		if kk == k {
			r.order = append(r.order[:i:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// Property: under randomized Get/Peek/Put/Delete sequences — at several
// capacities and key-space densities — the open-addressed Map agrees with
// the reference on every return value, on eviction victims, on LRUKey, and
// on full MRU-to-LRU iteration order. This is the regression net for the
// probe table's backward-shift deletion.
func TestPropertyMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		capacity, keySpace int
	}{
		{1, 4}, {2, 8}, {7, 16}, {8, 8}, {64, 48}, {64, 256}, {257, 1024},
	} {
		rng := rand.New(rand.NewSource(int64(tc.capacity*100000 + tc.keySpace)))
		m := New[int, int](tc.capacity)
		ref := newRefLRU(tc.capacity)
		for step := 0; step < 30000; step++ {
			k := rng.Intn(tc.keySpace)
			switch rng.Intn(5) {
			case 0, 1:
				gek, gev, gevicted := m.Put(k, step)
				rek, rev, revicted := ref.put(k, step)
				if gevicted != revicted || (gevicted && (gek != rek || gev != rev)) {
					t.Fatalf("cap=%d space=%d step=%d: Put(%d) evicted (%d,%d,%v), ref (%d,%d,%v)",
						tc.capacity, tc.keySpace, step, k, gek, gev, gevicted, rek, rev, revicted)
				}
			case 2:
				gv, gok := m.Get(k)
				rv, rok := ref.get(k)
				if gok != rok || (gok && gv != rv) {
					t.Fatalf("cap=%d space=%d step=%d: Get(%d) = (%d,%v), ref (%d,%v)",
						tc.capacity, tc.keySpace, step, k, gv, gok, rv, rok)
				}
			case 3:
				gv, gok := m.Peek(k)
				rv, rok := ref.peek(k)
				if gok != rok || (gok && gv != rv) {
					t.Fatalf("cap=%d space=%d step=%d: Peek(%d) mismatch", tc.capacity, tc.keySpace, step, k)
				}
			case 4:
				if m.Delete(k) != ref.del(k) {
					t.Fatalf("cap=%d space=%d step=%d: Delete(%d) mismatch", tc.capacity, tc.keySpace, step, k)
				}
			}
			if m.Len() != len(ref.vals) {
				t.Fatalf("cap=%d space=%d step=%d: Len=%d ref=%d",
					tc.capacity, tc.keySpace, step, m.Len(), len(ref.vals))
			}
			if lk, lok := m.LRUKey(); len(ref.order) == 0 {
				if lok {
					t.Fatalf("cap=%d space=%d step=%d: LRUKey on empty", tc.capacity, tc.keySpace, step)
				}
			} else if !lok || lk != ref.order[0] {
				t.Fatalf("cap=%d space=%d step=%d: LRUKey=%d,%v ref=%d",
					tc.capacity, tc.keySpace, step, lk, lok, ref.order[0])
			}
			if step%1000 == 0 { // full-order audit, amortized
				var got []int
				m.Each(func(k, v int) bool { got = append(got, k); return true })
				if len(got) != len(ref.order) {
					t.Fatalf("cap=%d space=%d step=%d: Each len=%d ref=%d",
						tc.capacity, tc.keySpace, step, len(got), len(ref.order))
				}
				for i := range got {
					if got[i] != ref.order[len(ref.order)-1-i] {
						t.Fatalf("cap=%d space=%d step=%d: Each order %v, ref (rev) %v",
							tc.capacity, tc.keySpace, step, got, ref.order)
					}
				}
			}
		}
	}
}

// Property: U64Map (the monomorphic hot-path variant) agrees with the
// generic Map on every operation under the same randomized workload —
// including GetRef, which must match Get's value and recency effect.
func TestU64MapMatchesGenericMap(t *testing.T) {
	for _, capacity := range []int{1, 3, 8, 64} {
		g := New[uint64, int](capacity)
		u := NewU64[int](capacity)
		rng := rand.New(rand.NewSource(int64(capacity)))
		for step := 0; step < 30000; step++ {
			k := uint64(rng.Intn(3 * capacity))
			switch rng.Intn(5) {
			case 0, 1:
				gek, gev, gevicted := g.Put(k, step)
				uek, uev, uevicted := u.Put(k, step)
				if gevicted != uevicted || gek != uek || gev != uev {
					t.Fatalf("cap=%d step=%d: Put(%d) evictions differ: (%d,%d,%v) vs (%d,%d,%v)",
						capacity, step, k, gek, gev, gevicted, uek, uev, uevicted)
				}
			case 2:
				gv, gok := g.Get(k)
				uv, uok := u.Get(k)
				if gok != uok || gv != uv {
					t.Fatalf("cap=%d step=%d: Get(%d) differ", capacity, step, k)
				}
			case 3:
				gv, gok := g.Get(k)
				ref, uok := u.GetRef(k)
				if gok != uok || (gok && *ref != gv) {
					t.Fatalf("cap=%d step=%d: GetRef(%d) differ", capacity, step, k)
				}
			case 4:
				if g.Delete(k) != u.Delete(k) {
					t.Fatalf("cap=%d step=%d: Delete(%d) differ", capacity, step, k)
				}
			}
			if g.Len() != u.Len() {
				t.Fatalf("cap=%d step=%d: Len differ %d vs %d", capacity, step, g.Len(), u.Len())
			}
			gk, gok := g.LRUKey()
			uk, uok := u.LRUKey()
			if gok != uok || gk != uk {
				t.Fatalf("cap=%d step=%d: LRUKey differ", capacity, step)
			}
		}
		var gorder, uorder []uint64
		g.Each(func(k uint64, v int) bool { gorder = append(gorder, k); return true })
		u.Each(func(k uint64, v int) bool { uorder = append(uorder, k); return true })
		if len(gorder) != len(uorder) {
			t.Fatalf("cap=%d: Each lengths differ", capacity)
		}
		for i := range gorder {
			if gorder[i] != uorder[i] {
				t.Fatalf("cap=%d: Each order differs at %d: %v vs %v", capacity, i, gorder, uorder)
			}
		}
	}
}
