// Package lru provides a small fixed-capacity map with least-recently-used
// replacement. It models the set-associative, LRU-replaced predictor tables
// of the paper (PHT, PST, AGT, RMOB index) without simulating banking: a
// fully-associative LRU table of N entries is a slightly generous stand-in
// for an N-entry set-associative one, which only strengthens the baseline
// predictors STeMS is compared against.
//
// The map is built for the simulator's replay loop: the key index is an
// open-addressed probe table (internal/flat) over the entry array rather
// than a Go map, and every slice is sized to capacity at construction, so
// Get/Put/Delete perform no allocations in steady state.
package lru

import "stems/internal/flat"

// entry is a node of the intrusive recency list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next int // indices into Map.entries; -1 terminates
}

// Map is a fixed-capacity LRU map. The zero value is not usable; call New.
type Map[K comparable, V any] struct {
	capacity int
	index    *flat.Table[K, int]
	entries  []entry[K, V]
	head     int // most recently used
	tail     int // least recently used
	free     []int
}

// New creates an LRU map holding at most capacity entries; capacity must be
// positive. All storage — the entry array, the probe table, and the free
// list — is allocated here, so the map never allocates again.
func New[K comparable, V any](capacity int) *Map[K, V] {
	if capacity <= 0 {
		panic("lru: non-positive capacity")
	}
	return &Map[K, V]{
		capacity: capacity,
		index:    flat.NewTable[K, int](capacity),
		entries:  make([]entry[K, V], 0, capacity),
		free:     make([]int, 0, capacity),
		head:     -1,
		tail:     -1,
	}
}

// Len returns the current number of entries.
func (m *Map[K, V]) Len() int { return m.index.Len() }

// Cap returns the capacity.
func (m *Map[K, V]) Cap() int { return m.capacity }

func (m *Map[K, V]) unlink(i int) {
	e := &m.entries[i]
	if e.prev >= 0 {
		m.entries[e.prev].next = e.next
	} else {
		m.head = e.next
	}
	if e.next >= 0 {
		m.entries[e.next].prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (m *Map[K, V]) pushFront(i int) {
	e := &m.entries[i]
	e.prev = -1
	e.next = m.head
	if m.head >= 0 {
		m.entries[m.head].prev = i
	}
	m.head = i
	if m.tail < 0 {
		m.tail = i
	}
}

// Get returns the value for k and refreshes its recency.
func (m *Map[K, V]) Get(k K) (V, bool) {
	i, ok := m.index.Get(k)
	if !ok {
		var zero V
		return zero, false
	}
	if m.head != i {
		m.unlink(i)
		m.pushFront(i)
	}
	return m.entries[i].val, true
}

// Peek returns the value for k without refreshing recency.
func (m *Map[K, V]) Peek(k K) (V, bool) {
	i, ok := m.index.Get(k)
	if !ok {
		var zero V
		return zero, false
	}
	return m.entries[i].val, true
}

// Put inserts or updates k, refreshing recency. If the insertion displaces
// the LRU entry, Put returns that entry's key/value with evicted=true.
func (m *Map[K, V]) Put(k K, v V) (evictedK K, evictedV V, evicted bool) {
	if i, ok := m.index.Get(k); ok {
		m.entries[i].val = v
		if m.head != i {
			m.unlink(i)
			m.pushFront(i)
		}
		return
	}
	var slot int
	switch {
	case len(m.free) > 0:
		slot = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	case len(m.entries) < m.capacity:
		m.entries = append(m.entries, entry[K, V]{})
		slot = len(m.entries) - 1
	default:
		// Evict the LRU entry and reuse its slot.
		slot = m.tail
		victim := &m.entries[slot]
		evictedK, evictedV, evicted = victim.key, victim.val, true
		m.index.Delete(victim.key)
		m.unlink(slot)
	}
	m.entries[slot] = entry[K, V]{key: k, val: v, prev: -1, next: -1}
	m.index.Put(k, slot)
	m.pushFront(slot)
	return
}

// Delete removes k, reporting whether it was present.
func (m *Map[K, V]) Delete(k K) bool {
	i, ok := m.index.Get(k)
	if !ok {
		return false
	}
	m.unlink(i)
	m.index.Delete(k)
	m.free = append(m.free, i)
	return true
}

// Each calls fn for every entry in MRU-to-LRU order; if fn returns false
// iteration stops. Mutating the map inside fn is not allowed.
func (m *Map[K, V]) Each(fn func(k K, v V) bool) {
	for i := m.head; i >= 0; i = m.entries[i].next {
		if !fn(m.entries[i].key, m.entries[i].val) {
			return
		}
	}
}

// LRUKey returns the least-recently-used key, if any.
func (m *Map[K, V]) LRUKey() (K, bool) {
	if m.tail < 0 {
		var zero K
		return zero, false
	}
	return m.entries[m.tail].key, true
}
