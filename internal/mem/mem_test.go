package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if BlockSize != 64 {
		t.Errorf("BlockSize = %d, want 64", BlockSize)
	}
	if RegionSize != 2048 {
		t.Errorf("RegionSize = %d, want 2048", RegionSize)
	}
	if RegionBlocks != 32 {
		t.Errorf("RegionBlocks = %d, want 32", RegionBlocks)
	}
	if RegionBlocks*BlockSize != RegionSize {
		t.Errorf("RegionBlocks*BlockSize = %d, want RegionSize %d",
			RegionBlocks*BlockSize, RegionSize)
	}
}

func TestBlockTruncation(t *testing.T) {
	cases := []struct {
		in, want Addr
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{2047, 1984},
		{2048, 2048},
	}
	for _, c := range cases {
		if got := c.in.Block(); got != c.want {
			t.Errorf("Addr(%d).Block() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRegionTruncation(t *testing.T) {
	cases := []struct {
		in, want Addr
	}{
		{0, 0},
		{2047, 0},
		{2048, 2048},
		{4095, 2048},
		{0xdeadbeef, 0xdeadbeef &^ 2047},
	}
	for _, c := range cases {
		if got := c.in.Region(); got != c.want {
			t.Errorf("Addr(%#x).Region() = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestRegionOffset(t *testing.T) {
	for off := 0; off < RegionBlocks; off++ {
		a := Addr(3*RegionSize + off*BlockSize + 17)
		if got := a.RegionOffset(); got != off {
			t.Errorf("RegionOffset(%#x) = %d, want %d", a, got, off)
		}
	}
}

func TestBlockAt(t *testing.T) {
	base := Addr(7 * RegionSize)
	a := base + 5*BlockSize + 3
	for off := 0; off < RegionBlocks; off++ {
		want := base + Addr(off*BlockSize)
		if got := a.BlockAt(off); got != want {
			t.Errorf("BlockAt(%d) = %#x, want %#x", off, got, want)
		}
	}
}

func TestSamePredicates(t *testing.T) {
	if !SameBlock(100, 120) {
		t.Error("SameBlock(100,120) = false, want true")
	}
	if SameBlock(60, 70) {
		t.Error("SameBlock(60,70) = true, want false")
	}
	if !SameRegion(0, 2047) {
		t.Error("SameRegion(0,2047) = false, want true")
	}
	if SameRegion(2047, 2048) {
		t.Error("SameRegion(2047,2048) = true, want false")
	}
}

// Property: reconstructing an address from its region base and offset lands
// in the same block as the original address.
func TestBlockAtRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		return a.BlockAt(a.RegionOffset()) == a.Block()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Block and Region are idempotent and Region(a) <= Block(a) <= a.
func TestTruncationOrdering(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		b, r := a.Block(), a.Region()
		return b.Block() == b && r.Region() == r && r <= b && b <= a &&
			SameRegion(a, b) && a-b < BlockSize && a-r < RegionSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BlockIndex is monotone within a block and distinct across blocks.
func TestBlockIndex(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		return a.BlockIndex() == uint64(a.Block())/BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
