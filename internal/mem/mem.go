// Package mem defines the address vocabulary shared by every component of
// the STeMS reproduction: 64-byte cache blocks grouped into 2KB spatial
// regions of 32 blocks, exactly as in the paper (§2.4: "SMS logically
// partitions the memory space into fixed-size spatial regions of 2KB
// (32 cache blocks)").
package mem

// Geometry constants. These mirror Table 1 and §2.4 of the paper. They are
// compile-time constants rather than configuration because the 32-blocks-
// per-region invariant is baked into pattern encodings (32 counters per PST
// entry) throughout the predictors.
const (
	// BlockBits is log2 of the cache block size.
	BlockBits = 6
	// BlockSize is the cache block (line) size in bytes.
	BlockSize = 1 << BlockBits
	// RegionBlockBits is log2 of the number of blocks per spatial region.
	RegionBlockBits = 5
	// RegionBlocks is the number of cache blocks in one spatial region.
	RegionBlocks = 1 << RegionBlockBits
	// RegionBits is log2 of the spatial region size in bytes.
	RegionBits = BlockBits + RegionBlockBits
	// RegionSize is the spatial region size in bytes (2KB).
	RegionSize = 1 << RegionBits
)

// Addr is a byte address in the simulated physical memory.
type Addr uint64

// Block returns the address truncated to its cache-block base.
func (a Addr) Block() Addr { return a &^ (BlockSize - 1) }

// Region returns the address truncated to its spatial-region base.
func (a Addr) Region() Addr { return a &^ (RegionSize - 1) }

// BlockIndex returns the block number (address divided by the block size);
// useful as a dense map key.
func (a Addr) BlockIndex() uint64 { return uint64(a) >> BlockBits }

// RegionOffset returns the block offset of the address within its spatial
// region, in [0, RegionBlocks).
func (a Addr) RegionOffset() int {
	return int((uint64(a) >> BlockBits) & (RegionBlocks - 1))
}

// BlockAt returns the base address of the block at the given offset within
// the region containing a.
func (a Addr) BlockAt(offset int) Addr {
	return a.Region() + Addr(offset)<<BlockBits
}

// SameBlock reports whether two addresses fall in the same cache block.
func SameBlock(a, b Addr) bool { return a.Block() == b.Block() }

// SameRegion reports whether two addresses fall in the same spatial region.
func SameRegion(a, b Addr) bool { return a.Region() == b.Region() }
