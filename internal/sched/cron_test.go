package sched

import (
	"testing"
	"time"
)

func at(s string) time.Time {
	t, err := time.Parse("2006-01-02 15:04", s)
	if err != nil {
		panic(err)
	}
	return t
}

func TestCronNext(t *testing.T) {
	cases := []struct {
		expr string
		from string
		want string
	}{
		{"* * * * *", "2026-08-08 10:30", "2026-08-08 10:31"},
		{"*/15 * * * *", "2026-08-08 10:31", "2026-08-08 10:45"},
		{"0 2 * * *", "2026-08-08 10:30", "2026-08-09 02:00"},
		{"30 2 * * *", "2026-08-08 01:00", "2026-08-08 02:30"},
		{"0 0 1 * *", "2026-08-08 10:30", "2026-09-01 00:00"},
		{"0 0 * * 0", "2026-08-08 10:30", "2026-08-09 00:00"}, // Aug 9 2026 is a Sunday
		{"0 0 29 2 *", "2026-08-08 10:30", "2028-02-29 00:00"},
		{"5,35 * * * *", "2026-08-08 10:06", "2026-08-08 10:35"},
		{"0 9-17 * * *", "2026-08-08 17:30", "2026-08-09 09:00"},
		{"0 0 15 * 3", "2026-08-08 00:00", "2026-08-12 00:00"}, // vixie: dom 15 OR Wednesday
	}
	for _, tc := range cases {
		c, err := ParseCron(tc.expr)
		if err != nil {
			t.Errorf("%q: %v", tc.expr, err)
			continue
		}
		if got := c.Next(at(tc.from)); !got.Equal(at(tc.want)) {
			t.Errorf("%q.Next(%s) = %s, want %s", tc.expr, tc.from, got, tc.want)
		}
	}
}

func TestCronNextIsStrictlyAfter(t *testing.T) {
	c, err := ParseCron("30 2 * * *")
	if err != nil {
		t.Fatal(err)
	}
	from := at("2026-08-08 02:30")
	if got := c.Next(from); !got.Equal(at("2026-08-09 02:30")) {
		t.Errorf("Next from an exact match = %s, want the following day", got)
	}
}

func TestCronEvery(t *testing.T) {
	c, err := ParseCron("@every 90s")
	if err != nil {
		t.Fatal(err)
	}
	from := at("2026-08-08 10:30")
	if got := c.Next(from); !got.Equal(from.Add(90 * time.Second)) {
		t.Errorf("@every 90s from %s = %s", from, got)
	}
	if c.String() != "@every 90s" {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCronParseErrors(t *testing.T) {
	for _, expr := range []string{
		"",
		"* * * *",           // four fields
		"* * * * * *",       // six fields
		"60 * * * *",        // minute out of range
		"* 24 * * *",        // hour out of range
		"* * 0 * *",         // dom out of range
		"* * * 13 *",        // month out of range
		"* * * * 7",         // dow out of range
		"a * * * *",         // not a number
		"1-0 * * * *",       // inverted range
		"*/0 * * * *",       // zero step
		"@every nonsense",   // bad duration
		"@every 500ms",      // below the floor
	} {
		if _, err := ParseCron(expr); err == nil {
			t.Errorf("ParseCron(%q) accepted", expr)
		}
	}
}

func TestCronUnreachable(t *testing.T) {
	c, err := ParseCron("0 0 30 2 *")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Next(at("2026-08-08 00:00")); !got.IsZero() {
		t.Errorf("unreachable expression produced %s, want the zero time", got)
	}
}
