// Package sched is stemsd's cron scheduler: named recurring job
// submissions with persisted fire state. Each schedule pairs a cron
// expression (or "@every" interval) with a job spec; at every fire the
// scheduler submits the spec through the service like any interactive
// client, so scheduled sweeps flow through the same queue, folding, and
// content-addressed cache. Fire state (next fire, fire count) survives
// restarts via an atomically rewritten JSON state file, and shutdown is
// drain-aware — Stop lands an in-progress fire before returning.
package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stems/internal/enc"
	"stems/internal/obs"
)

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrInvalid reports a malformed schedule spec (bad name, cron, job,
	// or notifier reference).
	ErrInvalid = errors.New("invalid schedule")
	// ErrExists reports a duplicate schedule name.
	ErrExists = errors.New("schedule exists")
	// ErrNotFound reports an unknown schedule name.
	ErrNotFound = errors.New("schedule not found")
	// ErrStopped reports mutation after Stop.
	ErrStopped = errors.New("scheduler stopped")
)

// maxSleep caps the wait between scheduler wakeups so a live clock
// re-evaluates at least this often even with no schedule due.
const maxSleep = time.Minute

// Config wires a Scheduler to its surroundings. Submit is required;
// everything else has a sensible zero value.
type Config struct {
	// Submit runs one fire: it submits the job spec and returns the new
	// job's ID. Errors are recorded on the schedule and counted, not
	// fatal — the schedule keeps its cadence.
	Submit func(spec enc.JobSpec) (string, error)
	// Validate, when set, vets a schedule's job spec at registration so a
	// bad spec is a 400 at POST time rather than a fire-time surprise.
	Validate func(spec enc.JobSpec) error
	// HasNotifier, when set, vets names in a schedule's notify list at
	// registration.
	HasNotifier func(name string) bool
	// Clock defaults to RealClock; tests inject a FakeClock.
	Clock Clock
	// StatePath, when non-empty, persists fire state as JSON there
	// (atomic tmp+rename). A schedule restored with its next fire in the
	// past fires once immediately (catch-up), then resumes cadence.
	StatePath string
	// Logger receives fire and persistence events (nil discards).
	Logger *slog.Logger
	// Obs, when set, receives the scheduler's counters and gauge.
	Obs *obs.Registry
}

// Scheduler owns the schedule table and the fire loop.
type Scheduler struct {
	cfg   Config
	clock Clock
	log   *slog.Logger

	mu      sync.Mutex
	entries map[string]*entry
	// persisted is the state file's contents: loaded once at New, then
	// kept current as schedules register, fire, and are removed. Persist
	// writes this map, not the live entries — so re-registering schedules
	// one at a time at startup never clobbers the saved state of the ones
	// not yet re-added.
	persisted map[string]persistedEntry
	// jobs maps every outstanding fired job ID to its schedule, so a
	// completion attributes correctly even after the schedule has fired
	// again (or been removed) in the meantime. Pruned on completion.
	jobs    map[string]*entry
	stopped bool
	wake    chan struct{} // buffered(1): nudges the loop after Add/Remove
	done    chan struct{} // closed when the fire loop exits

	fires      *obs.Counter
	fireErrors *obs.Counter
	firesN     uint64 // mirrors the counters for enc.SchedMetrics
	fireErrsN  uint64

	// parks counts fire-loop sleeps, incremented only after the clock
	// waiter is registered — the ordering fake-clock tests key on.
	parks atomic.Uint64
}

// entry is one registered schedule plus its live state. A zero nextFire
// means disarmed: the expression has no future match (possible only when
// cadence advances past its last real fire — Add rejects specs that
// never fire at all).
type entry struct {
	spec      enc.ScheduleSpec
	cron      Cron
	nextFire  time.Time
	fires     uint64
	lastJob   string
	lastState enc.JobState
	lastErr   string
}

// persistedState is the JSON state-file schema: fire state only — the
// specs themselves are configuration, re-registered at startup.
type persistedState struct {
	Schedules map[string]persistedEntry `json:"schedules"`
}

type persistedEntry struct {
	NextFire time.Time `json:"next_fire"`
	Fires    uint64    `json:"fires"`
}

// New builds a scheduler and starts its fire loop. Stop it before
// process exit to land in-progress fires.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Submit == nil {
		return nil, fmt.Errorf("sched: Config.Submit is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	s := &Scheduler{
		cfg:       cfg,
		clock:     cfg.Clock,
		log:       cfg.Logger,
		entries:   make(map[string]*entry),
		persisted: loadState(cfg.StatePath, cfg.Logger),
		jobs:      make(map[string]*entry),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if cfg.Obs != nil {
		s.fires = cfg.Obs.Counter("stemsd_schedule_fires_total",
			"Jobs submitted by schedule fires.")
		s.fireErrors = cfg.Obs.Counter("stemsd_schedule_fire_errors_total",
			"Schedule fires whose job submission failed.")
		cfg.Obs.Gauge("stemsd_schedules",
			"Registered cron schedules.", func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(len(s.entries))
			})
	}
	go s.loop()
	return s, nil
}

// Add registers a schedule and arms its first fire. A restored state
// file (see Config.StatePath) may pull the first fire into the past, in
// which case it fires immediately as catch-up.
func (s *Scheduler) Add(spec enc.ScheduleSpec) (enc.ScheduleStatus, error) {
	if err := s.check(spec); err != nil {
		return enc.ScheduleStatus{}, err
	}
	cron, err := ParseCron(spec.Cron)
	if err != nil {
		return enc.ScheduleStatus{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return enc.ScheduleStatus{}, ErrStopped
	}
	if _, dup := s.entries[spec.Name]; dup {
		return enc.ScheduleStatus{}, fmt.Errorf("%w: %q", ErrExists, spec.Name)
	}
	e := &entry{spec: spec, cron: cron, nextFire: cron.Next(s.clock.Now())}
	if e.nextFire.IsZero() {
		return enc.ScheduleStatus{}, fmt.Errorf("%w: %q: cron %q never fires", ErrInvalid, spec.Name, spec.Cron)
	}
	s.entries[spec.Name] = e
	s.restoreLocked(e)
	s.persistLocked()
	s.nudge()
	return e.status(), nil
}

// check vets a spec's static fields against ErrInvalid.
func (s *Scheduler) check(spec enc.ScheduleSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalid)
	}
	if spec.Job == nil {
		return fmt.Errorf("%w: %q: no job", ErrInvalid, spec.Name)
	}
	if s.cfg.Validate != nil {
		if err := s.cfg.Validate(*spec.Job); err != nil {
			return fmt.Errorf("%w: %q: job: %v", ErrInvalid, spec.Name, err)
		}
	}
	for _, n := range spec.Notify {
		if s.cfg.HasNotifier != nil && !s.cfg.HasNotifier(n) {
			return fmt.Errorf("%w: %q: unknown notifier %q", ErrInvalid, spec.Name, n)
		}
	}
	return nil
}

// Remove deletes a schedule. An in-progress fire of it still completes.
func (s *Scheduler) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrStopped
	}
	if _, ok := s.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.entries, name)
	delete(s.persisted, name)
	s.persistLocked()
	return nil
}

// Get returns one schedule's status.
func (s *Scheduler) Get(name string) (enc.ScheduleStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return enc.ScheduleStatus{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e.status(), nil
}

// List returns every schedule's status, sorted by name.
func (s *Scheduler) List() []enc.ScheduleStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]enc.ScheduleStatus, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// JobCompleted records a terminal job status against the schedule that
// fired it, returning that schedule's name and notify list. Every
// outstanding fire is tracked, so an earlier job completing after the
// schedule has fired again (or been removed) still attributes. ok is
// false for jobs no schedule owns (interactive submissions) — the caller
// still fans out to all-jobs notifiers either way.
func (s *Scheduler) JobCompleted(st enc.JobStatus) (schedule string, notify []string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[st.ID]
	if !ok {
		return "", nil, false
	}
	delete(s.jobs, st.ID)
	if e.lastJob == st.ID {
		e.lastState = st.State
	}
	return e.spec.Name, append([]string(nil), e.spec.Notify...), true
}

// Metrics snapshots the scheduler section of the JSON /metrics document.
func (s *Scheduler) Metrics() enc.SchedMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return enc.SchedMetrics{
		Schedules:  len(s.entries),
		Fires:      s.firesN,
		FireErrors: s.fireErrsN,
	}
}

// Stop ends the fire loop, waiting for an in-progress fire to land, and
// persists final state. Further mutations return ErrStopped.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopped = true
	s.persistLocked()
	s.mu.Unlock()
	s.nudge()
	<-s.done
}

// nudge wakes the fire loop; the buffer makes it lossless-but-cheap.
func (s *Scheduler) nudge() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop is the fire loop: sleep until the earliest next fire (capped at
// maxSleep), fire everything due, repeat. Add/Remove/Stop nudge it awake
// early.
func (s *Scheduler) loop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		now := s.clock.Now()
		s.fireDueLocked(now)
		sleep := maxSleep
		for _, e := range s.entries {
			if e.nextFire.IsZero() {
				continue // disarmed: no future match
			}
			if d := e.nextFire.Sub(now); d < sleep {
				sleep = d
			}
		}
		s.mu.Unlock()
		ch := s.clock.After(sleep)
		s.parks.Add(1)
		select {
		case <-ch:
		case <-s.wake:
		}
	}
}

// fireDueLocked submits every schedule whose next fire has arrived and
// advances its cadence. Holding mu across Submit is deliberate: the
// completion hook's JobCompleted blocks until the job is recorded in
// s.jobs, so even a job that finishes instantly attributes to its
// schedule.
func (s *Scheduler) fireDueLocked(now time.Time) {
	for _, e := range s.entries {
		if e.nextFire.IsZero() || e.nextFire.After(now) {
			continue
		}
		id, err := s.cfg.Submit(*e.spec.Job)
		if err != nil {
			e.lastErr = err.Error()
			s.fireErrsN++
			if s.fireErrors != nil {
				s.fireErrors.Inc()
			}
			s.log.Warn("schedule fire failed", "schedule", e.spec.Name, "err", err)
		} else {
			e.lastJob = id
			e.lastState = ""
			e.lastErr = ""
			e.fires++
			s.jobs[id] = e
			s.firesN++
			if s.fires != nil {
				s.fires.Inc()
			}
			s.log.Info("schedule fired", "schedule", e.spec.Name, "job", id)
		}
		e.nextFire = e.cron.Next(now)
		if e.nextFire.IsZero() {
			s.log.Warn("schedule has no future fire; disarmed", "schedule", e.spec.Name, "cron", e.spec.Cron)
		}
	}
	s.persistLocked()
}

// loadState reads the state file once at startup. Errors only log — a
// missing or corrupt state file must not block the scheduler.
func loadState(path string, log *slog.Logger) map[string]persistedEntry {
	out := make(map[string]persistedEntry)
	if path == "" {
		return out
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return out // first run, or unreadable: start fresh
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		log.Warn("schedule state file unreadable", "path", path, "err", err)
		return out
	}
	for name, p := range st.Schedules {
		out[name] = p
	}
	return out
}

// restoreLocked overlays persisted fire state onto a just-added entry.
func (s *Scheduler) restoreLocked(e *entry) {
	p, ok := s.persisted[e.spec.Name]
	if !ok {
		return
	}
	e.fires = p.Fires
	if !p.NextFire.IsZero() && p.NextFire.Before(e.nextFire) {
		// Possibly in the past — fireDueLocked then catches up with one
		// immediate fire before resuming cadence.
		e.nextFire = p.NextFire
	}
}

// persistLocked folds live fire state into the persisted map and rewrites
// the state file atomically (tmp + rename). Writing the merged map, not
// just the live entries, keeps loaded state for schedules not (yet)
// registered this run — startup re-registers them one Add at a time. A
// nil StatePath disables persistence.
func (s *Scheduler) persistLocked() {
	if s.cfg.StatePath == "" {
		return
	}
	for name, e := range s.entries {
		s.persisted[name] = persistedEntry{NextFire: e.nextFire, Fires: e.fires}
	}
	st := persistedState{Schedules: s.persisted}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		s.log.Warn("schedule state encode failed", "err", err)
		return
	}
	tmp := s.cfg.StatePath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err == nil {
		err = os.Rename(tmp, s.cfg.StatePath)
	}
	if err != nil {
		s.log.Warn("schedule state write failed", "path", s.cfg.StatePath, "err", err)
	}
}

// StateDir returns the directory a state path lives in, creating it —
// a convenience for cmd/stemsd's default "<store>/schedules.json".
func StateDir(path string) error {
	return os.MkdirAll(filepath.Dir(path), 0o755)
}

func (e *entry) status() enc.ScheduleStatus {
	return enc.ScheduleStatus{
		ScheduleSpec: e.spec,
		NextFire:     e.nextFire,
		Fires:        e.fires,
		LastJob:      e.lastJob,
		LastState:    e.lastState,
		LastError:    e.lastErr,
	}
}
