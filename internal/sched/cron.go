package sched

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Cron is a parsed fire schedule: either a five-field cron expression or
// a fixed "@every DURATION" interval.
type Cron struct {
	// every is the fixed interval for "@every" schedules; zero means the
	// field sets below apply instead.
	every time.Duration

	// Field sets, one bit per permitted value. dom/dow follow vixie cron:
	// when both are restricted (neither is "*"), a time matches if EITHER
	// matches; when only one is restricted, it alone decides.
	minute, hour, dom, month, dow uint64
	domStar, dowStar              bool

	// text is the original expression, kept for String/round-tripping.
	text string
}

// cron field value ranges, in field order.
var cronFields = []struct {
	name     string
	min, max int
}{
	{"minute", 0, 59},
	{"hour", 0, 23},
	{"day-of-month", 1, 31},
	{"month", 1, 12},
	{"day-of-week", 0, 6},
}

// ParseCron parses a schedule expression: five whitespace-separated cron
// fields (minute hour day-of-month month day-of-week, each "*", a value,
// a range "a-b", a list "a,b,c", any with an optional "/step"), or
// "@every DURATION" with DURATION in time.ParseDuration syntax and at
// least one minute.
func ParseCron(text string) (Cron, error) {
	trimmed := strings.TrimSpace(text)
	if rest, ok := strings.CutPrefix(trimmed, "@every"); ok {
		d, err := time.ParseDuration(strings.TrimSpace(rest))
		if err != nil {
			return Cron{}, fmt.Errorf("cron: @every: %w", err)
		}
		if d < time.Second {
			return Cron{}, fmt.Errorf("cron: @every interval %v is below the 1s floor", d)
		}
		return Cron{every: d, text: trimmed}, nil
	}
	fields := strings.Fields(trimmed)
	if len(fields) != len(cronFields) {
		return Cron{}, fmt.Errorf("cron: %d fields, want 5 (minute hour day-of-month month day-of-week)", len(fields))
	}
	c := Cron{text: trimmed}
	sets := []*uint64{&c.minute, &c.hour, &c.dom, &c.month, &c.dow}
	for i, f := range fields {
		set, star, err := parseField(f, cronFields[i].min, cronFields[i].max)
		if err != nil {
			return Cron{}, fmt.Errorf("cron: %s field %q: %w", cronFields[i].name, f, err)
		}
		*sets[i] = set
		switch i {
		case 2:
			c.domStar = star
		case 4:
			c.dowStar = star
		}
	}
	return c, nil
}

// parseField parses one cron field into a bitset over [min, max]. star
// reports whether the field is an unrestricted "*" (no step) — the
// vixie day-of-month/day-of-week rule needs to know.
func parseField(field string, min, max int) (set uint64, star bool, err error) {
	star = field == "*"
	for _, part := range strings.Split(field, ",") {
		rangeText, stepText, hasStep := strings.Cut(part, "/")
		step := 1
		if hasStep {
			step, err = strconv.Atoi(stepText)
			if err != nil || step < 1 {
				return 0, false, fmt.Errorf("bad step %q", stepText)
			}
		}
		lo, hi := min, max
		if rangeText != "*" {
			loText, hiText, isRange := strings.Cut(rangeText, "-")
			lo, err = strconv.Atoi(loText)
			if err != nil {
				return 0, false, fmt.Errorf("bad value %q", loText)
			}
			if isRange {
				hi, err = strconv.Atoi(hiText)
				if err != nil {
					return 0, false, fmt.Errorf("bad value %q", hiText)
				}
			} else if hasStep {
				// "N/step" means start at N, run to the field max.
				hi = max
			} else {
				hi = lo
			}
		}
		if lo < min || hi > max || lo > hi {
			return 0, false, fmt.Errorf("value out of range %d-%d", min, max)
		}
		for v := lo; v <= hi; v += step {
			set |= 1 << uint(v)
		}
	}
	if set == 0 {
		return 0, false, fmt.Errorf("empty field")
	}
	return set, star, nil
}

// String returns the original expression text.
func (c Cron) String() string { return c.text }

// Next returns the first fire time strictly after t, or the zero time
// when the expression has no match within five years of t (impossible
// date combinations like "0 0 30 2 *"). Cron fields have minute
// granularity; @every intervals tick from t exactly.
func (c Cron) Next(t time.Time) time.Time {
	if c.every > 0 {
		return t.Add(c.every)
	}
	// Jump-stepping search: truncate to the next whole minute, then bump
	// the coarsest non-matching field, resetting finer ones. Bounded at
	// five years — beyond that the expression matches nothing real
	// (e.g. "0 0 30 2 *").
	t = t.Truncate(time.Minute).Add(time.Minute)
	limit := t.AddDate(5, 0, 0)
	for t.Before(limit) {
		if c.month&(1<<uint(t.Month())) == 0 {
			// Advance to the first day of the next month.
			t = time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, t.Location()).AddDate(0, 1, 0)
			continue
		}
		if !c.dayMatches(t) {
			t = time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location()).AddDate(0, 0, 1)
			continue
		}
		if c.hour&(1<<uint(t.Hour())) == 0 {
			t = time.Date(t.Year(), t.Month(), t.Day(), t.Hour(), 0, 0, 0, t.Location()).Add(time.Hour)
			continue
		}
		if c.minute&(1<<uint(t.Minute())) == 0 {
			t = t.Add(time.Minute)
			continue
		}
		return t
	}
	return time.Time{}
}

// dayMatches applies the vixie day rule: with both day fields
// restricted, either matching suffices; otherwise the restricted one
// (or trivially "*") decides.
func (c Cron) dayMatches(t time.Time) bool {
	domOK := c.dom&(1<<uint(t.Day())) != 0
	dowOK := c.dow&(1<<uint(t.Weekday())) != 0
	if !c.domStar && !c.dowStar {
		return domOK || dowOK
	}
	return domOK && dowOK
}
