package sched

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"stems/internal/enc"
	"stems/internal/obs"
)

// fakeSubmitter records submitted specs and mints job IDs.
type fakeSubmitter struct {
	mu    sync.Mutex
	specs []enc.JobSpec
	next  int
	fail  error
	fired chan string // receives each minted job ID
}

func newFakeSubmitter() *fakeSubmitter {
	return &fakeSubmitter{fired: make(chan string, 64)}
}

func (f *fakeSubmitter) submit(spec enc.JobSpec) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return "", f.fail
	}
	f.next++
	id := fmt.Sprintf("j-%06d", f.next)
	f.specs = append(f.specs, spec)
	f.fired <- id
	return id, nil
}

func (f *fakeSubmitter) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.specs)
}

func testSpec(name, cron string) enc.ScheduleSpec {
	return enc.ScheduleSpec{
		Name: name,
		Cron: cron,
		Job:  &enc.JobSpec{RunSpec: enc.RunSpec{Predictor: "stems", Workload: "em3d"}},
	}
}

// harness drives a scheduler on a fake clock: advance() waits for the
// fire loop to park on a fresh waiter before moving time, so a wakeup
// can never slip between the clock moving and the loop re-arming.
type harness struct {
	s     *Scheduler
	clk   *FakeClock
	parks uint64
}

func newHarness(t *testing.T, clk *FakeClock, cfg Config) *harness {
	t.Helper()
	cfg.Clock = clk
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return &harness{s: s, clk: clk}
}

func (h *harness) advance(t *testing.T, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.s.parks.Load() <= h.parks {
		if time.Now().After(deadline) {
			t.Fatal("scheduler loop never went to sleep")
		}
		time.Sleep(time.Millisecond)
	}
	h.parks = h.s.parks.Load()
	h.clk.Advance(d)
}

func waitFire(t *testing.T, f *fakeSubmitter) string {
	t.Helper()
	select {
	case id := <-f.fired:
		return id
	case <-time.After(5 * time.Second):
		t.Fatal("no fire within 5s")
		return ""
	}
}

func TestScheduleFiresUnderFakeClock(t *testing.T) {
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	h := newHarness(t, clk, Config{Submit: sub.submit})
	s := h.s

	st, err := s.Add(testSpec("hourly", "0 * * * *"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.NextFire.Equal(at("2026-08-08 11:00")) {
		t.Fatalf("NextFire = %s, want 11:00", st.NextFire)
	}

	h.advance(t, time.Hour)
	id := waitFire(t, sub)
	if id != "j-000001" {
		t.Fatalf("fired job = %q", id)
	}
	h.advance(t, time.Hour)
	waitFire(t, sub)

	got, err := s.Get("hourly")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fires != 2 || got.LastJob != "j-000002" {
		t.Errorf("status = %+v, want 2 fires ending at j-000002", got)
	}
	if !got.NextFire.Equal(at("2026-08-08 13:00")) {
		t.Errorf("NextFire = %s, want 13:00", got.NextFire)
	}
	if m := s.Metrics(); m.Schedules != 1 || m.Fires != 2 || m.FireErrors != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestScheduleEvery(t *testing.T) {
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	h := newHarness(t, clk, Config{Submit: sub.submit})
	if _, err := h.s.Add(testSpec("fast", "@every 10s")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h.advance(t, 10*time.Second)
		waitFire(t, sub)
	}
	if sub.count() != 3 {
		t.Errorf("fires = %d, want 3", sub.count())
	}
}

func TestJobCompletedAttribution(t *testing.T) {
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	h := newHarness(t, clk, Config{Submit: sub.submit})
	s := h.s
	spec := testSpec("nightly", "@every 1m")
	spec.Notify = []string{"hook", "log"}
	if _, err := s.Add(spec); err != nil {
		t.Fatal(err)
	}
	h.advance(t, time.Minute)
	id := waitFire(t, sub)

	name, notify, ok := s.JobCompleted(enc.JobStatus{ID: id, State: enc.JobDone})
	if !ok || name != "nightly" {
		t.Fatalf("JobCompleted = %q/%v", name, ok)
	}
	if len(notify) != 2 || notify[0] != "hook" {
		t.Errorf("notify = %v", notify)
	}
	if _, _, ok := s.JobCompleted(enc.JobStatus{ID: "j-unrelated"}); ok {
		t.Error("unrelated job attributed to a schedule")
	}
	st, _ := s.Get("nightly")
	if st.LastState != enc.JobDone {
		t.Errorf("LastState = %q, want done", st.LastState)
	}
}

func TestJobCompletedOverlappingFires(t *testing.T) {
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	h := newHarness(t, clk, Config{Submit: sub.submit})
	s := h.s
	spec := testSpec("nightly", "@every 1m")
	spec.Notify = []string{"hook"}
	if _, err := s.Add(spec); err != nil {
		t.Fatal(err)
	}
	h.advance(t, time.Minute)
	id1 := waitFire(t, sub)
	h.advance(t, time.Minute)
	id2 := waitFire(t, sub)

	// The older job completes after the newer fire: it must still
	// attribute (its notifiers depend on it) ...
	name, notify, ok := s.JobCompleted(enc.JobStatus{ID: id1, State: enc.JobDone})
	if !ok || name != "nightly" || len(notify) != 1 {
		t.Fatalf("older fire lost attribution: %q/%v/%v", name, notify, ok)
	}
	// ... without overwriting the newer, still-running job's state.
	st, _ := s.Get("nightly")
	if st.LastJob != id2 || st.LastState != "" {
		t.Errorf("status after old completion = %q/%q, want %q pending", st.LastJob, st.LastState, id2)
	}
	// A completed job is pruned: a duplicate completion no longer attributes.
	if _, _, ok := s.JobCompleted(enc.JobStatus{ID: id1, State: enc.JobDone}); ok {
		t.Error("completed job attributed twice")
	}
	if name, _, ok := s.JobCompleted(enc.JobStatus{ID: id2, State: enc.JobFailed}); !ok || name != "nightly" {
		t.Fatalf("newest fire lost attribution: %q/%v", name, ok)
	}
	st, _ = s.Get("nightly")
	if st.LastState != enc.JobFailed {
		t.Errorf("LastState = %q, want failed", st.LastState)
	}
}

func TestFireErrorRecorded(t *testing.T) {
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	sub.fail = errors.New("queue full")
	h := newHarness(t, clk, Config{Submit: sub.submit})
	s := h.s
	if _, err := s.Add(testSpec("doomed", "@every 1m")); err != nil {
		t.Fatal(err)
	}
	h.advance(t, time.Minute)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := s.Get("doomed"); st.LastError != "" {
			if st.Fires != 0 {
				t.Errorf("failed fire counted: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fire error never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	if m := s.Metrics(); m.FireErrors != 1 || m.Fires != 0 {
		t.Errorf("metrics = %+v", m)
	}
	// Cadence continues after a failed fire.
	st, _ := s.Get("doomed")
	if !st.NextFire.After(at("2026-08-08 10:01")) {
		t.Errorf("NextFire not advanced past the failed fire: %s", st.NextFire)
	}
}

func TestAddRemoveValidation(t *testing.T) {
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	s := newHarness(t, clk, Config{
		Submit:      sub.submit,
		Validate:    func(spec enc.JobSpec) error { return errors.New("bad spec") },
		HasNotifier: func(name string) bool { return name == "known" },
	}).s

	if _, err := s.Add(enc.ScheduleSpec{Cron: "* * * * *"}); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty name: %v", err)
	}
	if _, err := s.Add(enc.ScheduleSpec{Name: "x", Cron: "* * * * *"}); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil job: %v", err)
	}
	if _, err := s.Add(testSpec("x", "not cron")); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad cron: %v", err)
	}
	if _, err := s.Add(testSpec("x", "* * * * *")); !errors.Is(err, ErrInvalid) {
		t.Errorf("validate hook ignored: %v", err)
	}
	if err := s.Remove("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("remove unknown: %v", err)
	}

	// With validation passing, duplicate names and unknown notifiers.
	s2 := newHarness(t, NewFakeClock(at("2026-08-08 10:00")), Config{
		Submit:      sub.submit,
		HasNotifier: func(name string) bool { return name == "known" },
	}).s
	ok := testSpec("dup", "* * * * *")
	if _, err := s2.Add(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Add(ok); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	bad := testSpec("other", "* * * * *")
	bad.Notify = []string{"mystery"}
	if _, err := s2.Add(bad); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown notifier: %v", err)
	}
	if _, err := s2.Add(testSpec("never", "0 0 30 2 *")); !errors.Is(err, ErrInvalid) {
		t.Errorf("never-firing cron accepted: %v", err)
	}
	if err := s2.Remove("dup"); err != nil {
		t.Fatal(err)
	}
	if got := s2.List(); len(got) != 0 {
		t.Errorf("List after remove = %v", got)
	}
}

func TestStopRejectsMutation(t *testing.T) {
	clk := NewFakeClock(at("2026-08-08 10:00"))
	s := newHarness(t, clk, Config{Submit: newFakeSubmitter().submit}).s
	s.Stop()
	if _, err := s.Add(testSpec("late", "* * * * *")); !errors.Is(err, ErrStopped) {
		t.Errorf("Add after Stop: %v", err)
	}
	if err := s.Remove("late"); !errors.Is(err, ErrStopped) {
		t.Errorf("Remove after Stop: %v", err)
	}
	s.Stop() // idempotent
}

func TestStatePersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "schedules.json")
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	h := newHarness(t, clk, Config{Submit: sub.submit, StatePath: path})
	if _, err := h.s.Add(testSpec("nightly", "@every 1h")); err != nil {
		t.Fatal(err)
	}
	h.advance(t, time.Hour)
	waitFire(t, sub)
	h.s.Stop()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state file not written: %v", err)
	}

	// Restart two hours later: restored next_fire (12:00) is already
	// past, so re-adding the schedule catches up with one fire.
	clk2 := NewFakeClock(at("2026-08-08 13:00"))
	sub2 := newFakeSubmitter()
	s2 := newHarness(t, clk2, Config{Submit: sub2.submit, StatePath: path}).s
	st, err := s2.Add(testSpec("nightly", "@every 1h"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Fires != 1 {
		t.Errorf("restored fire count = %d, want 1", st.Fires)
	}
	waitFire(t, sub2)
	got, _ := s2.Get("nightly")
	if got.Fires != 2 {
		t.Errorf("fires after catch-up = %d, want 2", got.Fires)
	}
	if !got.NextFire.Equal(at("2026-08-08 14:00")) {
		t.Errorf("NextFire after catch-up = %s, want 14:00", got.NextFire)
	}
}

func TestStatePersistsAllSchedulesAcrossRestart(t *testing.T) {
	// Startup re-registers config schedules one Add at a time; the first
	// Add's persist must not clobber the saved state of schedules not yet
	// re-added.
	path := filepath.Join(t.TempDir(), "schedules.json")
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	h := newHarness(t, clk, Config{Submit: sub.submit, StatePath: path})
	if _, err := h.s.Add(testSpec("alpha", "@every 1h")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.s.Add(testSpec("beta", "@every 1h")); err != nil {
		t.Fatal(err)
	}
	h.advance(t, time.Hour)
	waitFire(t, sub)
	waitFire(t, sub)
	h.s.Stop()

	// Restart at 13:00 and re-add in the same order: alpha's Add rewrites
	// the state file before beta registers, so beta's restore must come
	// from state loaded at New, not from the file.
	clk2 := NewFakeClock(at("2026-08-08 13:00"))
	sub2 := newFakeSubmitter()
	s2 := newHarness(t, clk2, Config{Submit: sub2.submit, StatePath: path}).s
	stA, err := s2.Add(testSpec("alpha", "@every 1h"))
	if err != nil {
		t.Fatal(err)
	}
	stB, err := s2.Add(testSpec("beta", "@every 1h"))
	if err != nil {
		t.Fatal(err)
	}
	if stA.Fires != 1 || !stA.NextFire.Equal(at("2026-08-08 12:00")) {
		t.Errorf("alpha restored = %d fires, next %s; want 1 fire, next 12:00", stA.Fires, stA.NextFire)
	}
	if stB.Fires != 1 || !stB.NextFire.Equal(at("2026-08-08 12:00")) {
		t.Errorf("beta restored = %d fires, next %s; want 1 fire, next 12:00", stB.Fires, stB.NextFire)
	}
}

func TestCorruptStateFileIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "schedules.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	clk := NewFakeClock(at("2026-08-08 10:00"))
	s := newHarness(t, clk, Config{Submit: newFakeSubmitter().submit, StatePath: path}).s
	if _, err := s.Add(testSpec("fresh", "@every 1h")); err != nil {
		t.Fatalf("corrupt state blocked Add: %v", err)
	}
}

func TestSchedulerObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	clk := NewFakeClock(at("2026-08-08 10:00"))
	sub := newFakeSubmitter()
	h := newHarness(t, clk, Config{Submit: sub.submit, Obs: reg})
	if _, err := h.s.Add(testSpec("one", "@every 1m")); err != nil {
		t.Fatal(err)
	}
	h.advance(t, time.Minute)
	waitFire(t, sub)

	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"stemsd_schedule_fires_total 1",
		"stemsd_schedules 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
}
