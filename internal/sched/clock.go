package sched

import (
	"sync"
	"time"
)

// Clock abstracts time for the scheduler so tests drive fires
// deterministically with a FakeClock.
type Clock interface {
	Now() time.Time
	// After behaves like time.After; the scheduler waits on it between
	// fires (capped, so a live clock never sleeps unboundedly).
	After(d time.Duration) <-chan time.Time
}

// RealClock is the production Clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced Clock for tests. Advance moves the
// clock and releases any waiter whose deadline has passed.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(at time.Time) *FakeClock {
	return &FakeClock{now: at}
}

// Now implements Clock.
func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock. A non-positive duration fires immediately.
func (f *FakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := f.now.Add(d)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by d, waking every waiter whose
// deadline is reached.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.at.After(f.now) {
			w.ch <- f.now
		} else {
			kept = append(kept, w)
		}
	}
	f.waiters = kept
}

// Waiters reports how many After calls are pending.
func (f *FakeClock) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
