package sim_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"stems/internal/sim"

	// Link the built-in predictors so their knob tables register.
	_ "stems/internal/predictors"
)

// perturbed returns a legal value different from the knob's default.
func perturbed(t *testing.T, k sim.Knob) sim.Value {
	t.Helper()
	d := k.Default()
	switch k.Kind {
	case sim.KnobBool:
		return sim.BoolValue(!d.Bool())
	case sim.KnobInt:
		if float64(d.Int()+1) <= k.Max {
			return sim.IntValue(d.Int() + 1)
		}
		if float64(d.Int()-1) >= k.Min {
			return sim.IntValue(d.Int() - 1)
		}
	case sim.KnobFloat:
		if d.Float()+1 <= k.Max {
			return sim.FloatValue(d.Float() + 1)
		}
		if d.Float()-1 >= k.Min {
			return sim.FloatValue(d.Float() - 1)
		}
	}
	t.Fatalf("knob %s: no legal non-default value in [%g, %g]", k.Name, k.Min, k.Max)
	return sim.Value{}
}

// leafFields walks a struct value and collects every exported scalar
// leaf as path → value.
func leafFields(prefix string, v reflect.Value, out map[string]any) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		path := prefix + f.Name
		fv := v.Field(i)
		if fv.Kind() == reflect.Struct {
			leafFields(path+".", fv, out)
			continue
		}
		out[path] = fv.Interface()
	}
}

// TestKnobCompleteness asserts every exported Options field is reachable
// through a registered knob: perturbing every knob must change every
// leaf. A new Options field without a knob fails here — the declarative
// API must never lag the imperative one.
func TestKnobCompleteness(t *testing.T) {
	opt := sim.DefaultOptions()
	knobs := map[string]sim.Value{}
	for _, k := range sim.AllKnobs() {
		knobs[k.Name] = perturbed(t, k)
	}
	if err := sim.ApplyKnobs(&opt, knobs); err != nil {
		t.Fatal(err)
	}

	def, mut := map[string]any{}, map[string]any{}
	dv, mv := sim.DefaultOptions(), opt
	leafFields("", reflect.ValueOf(dv), def)
	leafFields("", reflect.ValueOf(mv), mut)
	if len(def) == 0 {
		t.Fatal("reflection walk found no Options fields")
	}
	for path, was := range def {
		if reflect.DeepEqual(was, mut[path]) {
			t.Errorf("Options.%s not reachable via any registered knob (still %v after perturbing all %d knobs)",
				path, was, len(knobs))
		}
	}
}

// TestKnobDefaultsMatchOptions pins the schema's defaults to
// DefaultOptions: applying every knob at its own default is a no-op.
func TestKnobDefaultsMatchOptions(t *testing.T) {
	opt := sim.DefaultOptions()
	knobs := map[string]sim.Value{}
	for _, k := range sim.AllKnobs() {
		knobs[k.Name] = k.Default()
	}
	if err := sim.ApplyKnobs(&opt, knobs); err != nil {
		t.Fatal(err)
	}
	if diff := sim.KnobDiff(sim.DefaultOptions(), opt); len(diff) != 0 {
		t.Errorf("explicit defaults changed the options: %v", diff)
	}
}

func TestNormalizeKnobs(t *testing.T) {
	cases := []struct {
		name    string
		in      map[string]sim.Value
		wantErr string
	}{
		{"unknown name", map[string]sim.Value{"stems.rmobentries": sim.IntValue(1)}, "unknown knob"},
		{"kind mismatch", map[string]sim.Value{"scientific": sim.IntValue(1)}, "wants a boolean"},
		{"bool for int", map[string]sim.Value{"stems.rmob_entries": sim.BoolValue(true)}, "wants an integer"},
		{"fractional int", map[string]sim.Value{"stems.rmob_entries": sim.FloatValue(1.5)}, "wants an integer"},
		{"below min", map[string]sim.Value{"stems.rmob_entries": sim.IntValue(0)}, "out of range"},
		{"above max", map[string]sim.Value{"system.mlp": sim.FloatValue(1e9)}, "out of range"},
		{"ok", map[string]sim.Value{"stems.rmob_entries": sim.IntValue(4096), "system.mlp": sim.IntValue(8)}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sim.NormalizeKnobs(tc.in)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestNormalizeCoercesKinds checks the canonicalization that makes
// differently-spelled JSON numbers one Value: 8.0 for an int knob and 8
// for a float knob both normalize to the knob's kind.
func TestNormalizeCoercesKinds(t *testing.T) {
	canon, err := sim.NormalizeKnobs(map[string]sim.Value{
		"stems.lookahead": sim.FloatValue(8),
		"system.mlp":      sim.IntValue(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := canon["stems.lookahead"]; got != sim.IntValue(8) {
		t.Errorf("lookahead normalized to %v (%s), want int 8", got, got.Kind())
	}
	if got := canon["system.mlp"]; got != sim.FloatValue(8) {
		t.Errorf("mlp normalized to %v (%s), want float 8", got, got.Kind())
	}
}

// TestKnobDiffRoundTrip: any options block reachable by knob edits is
// reconstructed exactly by applying its diff to the baseline.
func TestKnobDiffRoundTrip(t *testing.T) {
	base := sim.DefaultOptions()
	target := base
	edits := map[string]sim.Value{
		"stems.rmob_entries": sim.IntValue(64 << 10),
		"stems.lookahead":    sim.IntValue(12),
		"sms.pht_entries":    sim.IntValue(1 << 10),
		"system.mlp":         sim.FloatValue(2.5),
		"scientific":         sim.BoolValue(true),
	}
	if err := sim.ApplyKnobs(&target, edits); err != nil {
		t.Fatal(err)
	}

	diff := sim.KnobDiff(base, target)
	if !reflect.DeepEqual(diff, edits) {
		t.Errorf("diff = %v, want the applied edits %v", diff, edits)
	}
	rebuilt := base
	if err := sim.ApplyKnobs(&rebuilt, diff); err != nil {
		t.Fatal(err)
	}
	if rebuilt != target {
		t.Errorf("rebuilt options differ:\n got  %+v\n want %+v", rebuilt, target)
	}
}

// TestRegisterKnobsAtomic: a failing group registration leaves the
// registry untouched, so correcting the group and retrying works.
func TestRegisterKnobsAtomic(t *testing.T) {
	fresh := func(name string) sim.Knob {
		return sim.IntKnob(name, "test knob", 0, 10, func(o *sim.Options) *int { return &o.Stride.Degree })
	}
	err := sim.RegisterKnobs("atomic-test", fresh("atomic.a"), fresh("stride.degree"))
	if err == nil {
		t.Fatal("duplicate of a registered knob accepted")
	}
	if _, ok := sim.LookupKnob("atomic.a"); ok {
		t.Fatal("failed registration leaked atomic.a into the registry")
	}
	if err := sim.RegisterKnobs("atomic-test", fresh("atomic.a")); err != nil {
		t.Fatalf("retry after corrected group failed: %v", err)
	}
	if err := sim.RegisterKnobs("atomic-test2", fresh("atomic.b"), fresh("atomic.b")); err == nil {
		t.Fatal("in-group duplicate accepted")
	}
	found := false
	for _, k := range sim.AllKnobs() {
		if k.Name == "atomic.a" {
			found = true
		}
	}
	if !found {
		t.Error("registered knob atomic.a missing from AllKnobs")
	}
}

// TestValueJSON pins the wire forms: bare scalars both ways.
func TestValueJSON(t *testing.T) {
	m := map[string]sim.Value{
		"a": sim.IntValue(42),
		"b": sim.BoolValue(true),
		"c": sim.FloatValue(2.5),
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"a":42,"b":true,"c":2.5}`; string(data) != want {
		t.Errorf("marshal = %s, want %s", data, want)
	}
	var back map[string]sim.Value
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("round trip = %v, want %v", back, m)
	}
	var v sim.Value
	if err := json.Unmarshal([]byte(`"str"`), &v); err == nil {
		t.Error("string accepted as a knob value")
	}
}
