package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Builder wires one predictor configuration into a freshly constructed
// machine: it attaches a streaming engine (if the predictor needs one) and
// installs the prefetcher. Builders must be safe for concurrent use — the
// sweep executor builds machines from many goroutines.
type Builder func(m *Machine, opt Options) error

var (
	registryMu sync.RWMutex
	registry   = map[Kind]Builder{}
)

// Register adds a predictor to the registry under name. It fails on an
// empty name, a nil builder, or a duplicate registration — predictor
// identity is global, and silently replacing a builder would make results
// depend on package-initialization order.
func Register(name Kind, b Builder) error {
	if name == "" {
		return fmt.Errorf("sim: predictor name must not be empty")
	}
	if b == nil {
		return fmt.Errorf("sim: predictor %q registered with nil builder", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("sim: predictor %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register for package init functions: it panics on error.
func MustRegister(name Kind, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// IsRegistered reports whether a predictor is buildable under name.
func IsRegistered(name Kind) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// canonical is the paper's reporting order for the built-in predictors:
// baselines first, so reports can compute speedups against the earlier
// rows.
var canonical = []Kind{KindNone, KindStride, KindSMS, KindTMS, KindSTeMS, KindNaiveHybrid, KindEpoch}

// AllKinds lists every registered predictor: the built-in kinds in the
// paper's order, then any externally registered predictors sorted by name.
// Note that built-ins self-register from their packages — a caller that
// has imported neither stems (the public API) nor internal/predictors sees
// only what it registered itself, plus KindNone.
func AllKinds() []Kind {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Kind, 0, len(registry))
	seen := make(map[Kind]bool, len(registry))
	for _, k := range canonical {
		if _, ok := registry[k]; ok {
			out = append(out, k)
			seen[k] = true
		}
	}
	extra := make([]Kind, 0, len(registry)-len(out))
	for k := range registry {
		if !seen[k] {
			extra = append(extra, k)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return append(out, extra...)
}

// Build constructs a machine with the named predictor wired to a streaming
// engine sized per the paper (§4.3). Predictors resolve through the
// registry; unknown names report the registered alternatives.
func Build(kind Kind, opt Options) (*Machine, error) {
	registryMu.RLock()
	b, ok := registry[kind]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sim: unknown predictor kind %q (registered: %v)", kind, AllKinds())
	}
	m := NewMachine(opt.System, Nop{})
	if err := b(m, opt); err != nil {
		return nil, fmt.Errorf("sim: building predictor %q: %w", kind, err)
	}
	return m, nil
}

func init() {
	// The no-prefetching baseline is the one kind the sim layer owns: a
	// machine is born with Nop{} installed and no engine attached.
	MustRegister(KindNone, func(*Machine, Options) error { return nil })
}
