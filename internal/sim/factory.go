package sim

import (
	"stems/internal/config"
)

// Kind names a predictor configuration.
type Kind string

// The evaluated systems. Baseline is the Figure 10 reference (stride
// prefetcher only); None disables prefetching entirely (used by the trace
// analyses). Every kind except None self-registers from its own package
// (see Register); import stems or stems/internal/predictors to have the
// full set available.
const (
	KindNone        Kind = "none"
	KindStride      Kind = "stride"
	KindSMS         Kind = "sms"
	KindTMS         Kind = "tms"
	KindSTeMS       Kind = "stems"
	KindNaiveHybrid Kind = "naive-hybrid"
	// KindEpoch is the §6 related-work epoch-based correlation prefetcher
	// (reference [6]), included as an extension baseline.
	KindEpoch Kind = "epoch"
)

// Options collects the per-component configurations.
type Options struct {
	System config.System
	Stride config.Stride
	SMS    config.SMS
	TMS    config.TMS
	STeMS  config.STeMS
	Epoch  config.Epoch
	// Scientific selects the deeper stream lookahead of §4.3 ("a lookahead
	// of eight for commercial workloads, but 12 for our scientific
	// applications").
	Scientific bool
	// AdaptiveLookahead enables the streaming engine's dynamic lookahead
	// (an extension in the direction of the paper's related work, §6; see
	// stream.Config.Adaptive). Applies to the stream-based predictors
	// (TMS, STeMS, naive hybrid).
	AdaptiveLookahead bool
	// VirtualizedMeta enables predictor virtualization for STeMS (§6,
	// reference [2]): PST/RMOB accesses go through an on-chip metadata
	// cache of VirtualMetaCacheBytes, with misses charged to memory
	// bandwidth.
	VirtualizedMeta       bool
	VirtualMetaCacheBytes int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		System: config.DefaultSystem(),
		Stride: config.DefaultStride(),
		SMS:    config.DefaultSMS(),
		TMS:    config.DefaultTMS(),
		STeMS:  config.DefaultSTeMS(),
		Epoch:  config.DefaultEpoch(),
	}
}

// StreamLookahead applies the §4.3 workload-class rule to a predictor's
// configured lookahead: scientific applications stream 12 deep, commercial
// workloads keep the configured base. Registered builders use this to size
// their engines.
func (o Options) StreamLookahead(base int) int {
	if o.Scientific {
		return 12
	}
	return base
}
