package sim

import (
	"fmt"

	"stems/internal/config"
	"stems/internal/core"
	"stems/internal/epoch"
	"stems/internal/hybrid"
	"stems/internal/sms"
	"stems/internal/stream"
	"stems/internal/stride"
	"stems/internal/tms"
)

// Kind names a predictor configuration.
type Kind string

// The evaluated systems. Baseline is the Figure 10 reference (stride
// prefetcher only); None disables prefetching entirely (used by the trace
// analyses).
const (
	KindNone        Kind = "none"
	KindStride      Kind = "stride"
	KindSMS         Kind = "sms"
	KindTMS         Kind = "tms"
	KindSTeMS       Kind = "stems"
	KindNaiveHybrid Kind = "naive-hybrid"
	// KindEpoch is the §6 related-work epoch-based correlation prefetcher
	// (reference [6]), included as an extension baseline.
	KindEpoch Kind = "epoch"
)

// AllKinds lists every buildable predictor.
func AllKinds() []Kind {
	return []Kind{KindNone, KindStride, KindSMS, KindTMS, KindSTeMS, KindNaiveHybrid, KindEpoch}
}

// Options collects the per-component configurations.
type Options struct {
	System config.System
	Stride config.Stride
	SMS    config.SMS
	TMS    config.TMS
	STeMS  config.STeMS
	Epoch  epoch.Config
	// Scientific selects the deeper stream lookahead of §4.3 ("a lookahead
	// of eight for commercial workloads, but 12 for our scientific
	// applications").
	Scientific bool
	// AdaptiveLookahead enables the streaming engine's dynamic lookahead
	// (an extension in the direction of the paper's related work, §6; see
	// stream.Config.Adaptive). Applies to the stream-based predictors
	// (TMS, STeMS, naive hybrid).
	AdaptiveLookahead bool
	// VirtualizedMeta enables predictor virtualization for STeMS (§6,
	// reference [2]): PST/RMOB accesses go through an on-chip metadata
	// cache of VirtualMetaCacheBytes, with misses charged to memory
	// bandwidth.
	VirtualizedMeta       bool
	VirtualMetaCacheBytes int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		System: config.DefaultSystem(),
		Stride: config.DefaultStride(),
		SMS:    config.DefaultSMS(),
		TMS:    config.DefaultTMS(),
		STeMS:  config.DefaultSTeMS(),
		Epoch:  epoch.DefaultConfig(),
	}
}

func (o Options) lookahead(base int) int {
	if o.Scientific {
		return 12
	}
	return base
}

// Build constructs a machine with the named predictor wired to a streaming
// engine sized per the paper (§4.3).
func Build(kind Kind, opt Options) (*Machine, error) {
	m := NewMachine(opt.System, Nop{})
	switch kind {
	case KindNone:
		return m, nil
	case KindStride:
		eng := m.AttachEngine(stream.Config{
			Queues: 1, Lookahead: 4, SVBEntries: 32,
		})
		m.SetPrefetcher(stride.New(opt.Stride, eng))
	case KindSMS:
		eng := m.AttachEngine(stream.Config{
			Queues: 1, Lookahead: opt.SMS.PHTEntries, SVBEntries: 64,
		})
		m.SetPrefetcher(sms.New(opt.SMS, eng))
	case KindTMS:
		tc := opt.TMS
		tc.Lookahead = opt.lookahead(tc.Lookahead)
		eng := m.AttachEngine(stream.Config{
			Queues: tc.StreamQueues, Lookahead: tc.Lookahead, SVBEntries: tc.SVBEntries,
			Adaptive: opt.AdaptiveLookahead,
		})
		m.SetPrefetcher(tms.New(tc, eng))
	case KindSTeMS:
		sc := opt.STeMS
		sc.Lookahead = opt.lookahead(sc.Lookahead)
		eng := m.AttachEngine(stream.Config{
			Queues: sc.StreamQueues, Lookahead: sc.Lookahead, SVBEntries: sc.SVBEntries,
			Adaptive: opt.AdaptiveLookahead,
		})
		st := core.New(sc, eng)
		if opt.VirtualizedMeta {
			size := opt.VirtualMetaCacheBytes
			if size <= 0 {
				size = 64 << 10 // a few L2 ways, as in [2]
			}
			mm := core.NewMetaModel(size)
			mm.Transfer = m.ChargeTransfer
			st.SetMetaModel(mm)
		}
		m.SetPrefetcher(st)
	case KindNaiveHybrid:
		eng := m.AttachEngine(stream.Config{
			Queues: opt.TMS.StreamQueues, Lookahead: opt.lookahead(opt.TMS.Lookahead),
			SVBEntries: opt.TMS.SVBEntries,
		})
		m.SetPrefetcher(hybrid.New(opt.SMS, opt.TMS, eng))
	case KindEpoch:
		eng := m.AttachEngine(stream.Config{
			Queues: 1, Lookahead: 8, SVBEntries: opt.TMS.SVBEntries,
		})
		m.SetPrefetcher(epoch.New(opt.Epoch, eng))
	default:
		return nil, fmt.Errorf("sim: unknown predictor kind %q", kind)
	}
	return m, nil
}
