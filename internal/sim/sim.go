// Package sim is the trace-driven memory-hierarchy simulator: it replays an
// access stream through L1/L2 caches, a streamed value buffer, and a
// prefetcher, producing the coverage/overprediction accounting of Figure 9
// and the timing model behind Figure 10.
//
// The paper evaluates with FLEXUS cycle-accurate full-system simulation;
// this engine is the substitution documented in DESIGN.md. Predictors see
// exactly the signals they see in the paper — the L1 access stream, L1
// evictions, and off-chip read events — and the timing model captures the
// first-order effects the paper's speedups rest on: dependent-miss
// serialization, OoO overlap of independent misses, prefetch timeliness,
// and bandwidth contention.
package sim

import (
	"fmt"

	"stems/internal/cache"
	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

// Prefetcher is the interface every predictor implements. All methods are
// invoked synchronously from the replay loop.
type Prefetcher interface {
	// Name identifies the predictor in reports.
	Name() string
	// OnAccess observes every L1 access, with its hit/miss outcome.
	OnAccess(a trace.Access, l1Hit bool)
	// OnL1Evict observes L1 victim blocks (spatial generation endings).
	OnL1Evict(block mem.Addr)
	// OnOffChipEvent observes every demand read that missed both caches;
	// covered reports whether the streamed value buffer supplied it.
	OnOffChipEvent(a trace.Access, covered bool)
}

// Nop is the no-prefetching baseline.
type Nop struct{}

// Name implements Prefetcher.
func (Nop) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (Nop) OnAccess(trace.Access, bool) {}

// OnL1Evict implements Prefetcher.
func (Nop) OnL1Evict(mem.Addr) {}

// OnOffChipEvent implements Prefetcher.
func (Nop) OnOffChipEvent(trace.Access, bool) {}

// Result summarizes one simulation run.
type Result struct {
	Prefetcher string

	Accesses uint64
	Reads    uint64
	Writes   uint64
	L1Hits   uint64
	L2Hits   uint64

	// OffChipReads counts uncovered demand read misses (paid full or
	// MLP-divided latency).
	OffChipReads uint64
	// Covered counts demand reads satisfied by the SVB — the paper's
	// "covered" misses ("predicted correctly and still reside in the SVB
	// at the time of the processor request", §5.5).
	Covered uint64
	// Overpredicted counts prefetched blocks never consumed (§5.5:
	// "erroneously fetched blocks ... normalized against the number of
	// off-chip read misses in the baseline system").
	Overpredicted uint64
	Fetched       uint64
	// MetaTransfers counts metadata-block fetches when predictor
	// virtualization is enabled.
	MetaTransfers uint64

	// Reconstruction placement outcomes (§4.2), contributed by predictors
	// that reconstruct a total miss order (STeMS). Zero for the others.
	ReconPlacedExact uint64
	ReconPlacedNear  uint64
	ReconDropped     uint64

	Cycles uint64
}

// ReconDropFraction returns the share of reconstructed addresses that
// found no slot (§4.3 reports ±2-slot search places 99%).
func (r Result) ReconDropFraction() float64 {
	if total := r.ReconPlacedExact + r.ReconPlacedNear + r.ReconDropped; total > 0 {
		return float64(r.ReconDropped) / float64(total)
	}
	return 0
}

// ResultContributor is an optional Prefetcher extension: predictors that
// keep counters of their own publish them into the Result at Finish time.
type ResultContributor interface {
	ContributeResult(*Result)
}

// BaselineMisses returns the off-chip read misses the baseline system would
// take: every covered miss would have gone off chip without the prefetcher.
func (r Result) BaselineMisses() uint64 { return r.Covered + r.OffChipReads }

// Coverage returns covered / baseline misses.
func (r Result) Coverage() float64 {
	if b := r.BaselineMisses(); b > 0 {
		return float64(r.Covered) / float64(b)
	}
	return 0
}

// OverpredictionRate returns overpredictions / baseline misses.
func (r Result) OverpredictionRate() float64 {
	if b := r.BaselineMisses(); b > 0 {
		return float64(r.Overpredicted) / float64(b)
	}
	return 0
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s: accesses=%d misses=%d covered=%.1f%% overpred=%.1f%% cycles=%d",
		r.Prefetcher, r.Accesses, r.BaselineMisses(),
		100*r.Coverage(), 100*r.OverpredictionRate(), r.Cycles)
}

// Machine is one simulated node: caches, memory channels, SVB, prefetcher.
type Machine struct {
	cfg    config.System
	l1, l2 *cache.Cache
	engine *stream.Engine // nil when running without a prefetch buffer
	pf     Prefetcher

	cycle    uint64
	channels []uint64 // per-channel next-free cycle

	res Result
}

// NewMachine builds a node around the given prefetcher. For the
// no-prefetch baseline pass pf == Nop{} and no engine is created.
func NewMachine(cfg config.System, pf Prefetcher) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:      cfg,
		l1:       cache.New(cache.Config{SizeBytes: cfg.L1SizeBytes, Ways: cfg.L1Ways}),
		l2:       cache.New(cache.Config{SizeBytes: cfg.L2SizeBytes, Ways: cfg.L2Ways}),
		pf:       pf,
		channels: make([]uint64, cfg.MemChannels),
	}
	m.l1.OnEvict = func(b mem.Addr) { m.pf.OnL1Evict(b) }
	m.res.Prefetcher = pf.Name()
	return m
}

// AttachEngine wires a streaming engine into the machine: the machine
// provides the clock, the duplicate-fetch filter, and the bandwidth model.
// Prefetchers must be constructed against the returned engine.
func (m *Machine) AttachEngine(cfg stream.Config) *stream.Engine {
	m.engine = stream.NewEngine(cfg, fetcherFunc(m.prefetchTransfer))
	m.engine.Clock = func() uint64 { return m.cycle }
	m.engine.ShouldFetch = func(b mem.Addr) bool {
		return !m.l1.Contains(b) && !m.l2.Contains(b)
	}
	return m.engine
}

// SetPrefetcher replaces the prefetcher (used because the prefetcher needs
// the engine, which needs the machine).
func (m *Machine) SetPrefetcher(pf Prefetcher) {
	m.pf = pf
	m.res.Prefetcher = pf.Name()
}

// fetcherFunc adapts a function to stream.Fetcher.
type fetcherFunc func(block mem.Addr) uint64

func (f fetcherFunc) Fetch(block mem.Addr) uint64 { return f(block) }

// issueTransfer allocates the earliest-available memory channel. It returns
// the cycle the transfer starts (after any queuing) and completes.
func (m *Machine) issueTransfer() (start, completion uint64) {
	best := 0
	for i, free := range m.channels {
		if free < m.channels[best] {
			best = i
		}
	}
	start = m.cycle
	if m.channels[best] > start {
		start = m.channels[best]
	}
	m.channels[best] = start + m.cfg.ChannelOccupancy
	return start, start + m.cfg.OffChipCycles
}

// prefetchTransfer is the stream engine's fetch path: it consumes channel
// bandwidth and reports when the block lands in the SVB.
func (m *Machine) prefetchTransfer(mem.Addr) uint64 {
	_, completion := m.issueTransfer()
	m.res.Fetched++
	return completion
}

// ChargeTransfer consumes one memory-channel slot without moving data into
// the SVB — the path used for virtualized predictor metadata traffic (§6).
func (m *Machine) ChargeTransfer() {
	m.issueTransfer()
	m.res.MetaTransfers++
}

// Step replays one access.
func (m *Machine) Step(a trace.Access) {
	m.res.Accesses++
	if a.Write {
		m.res.Writes++
	} else {
		m.res.Reads++
	}

	// Think models the committed work *preceding* the access, so it
	// elapses before the reference (and before the prefetchers observe it).
	m.cycle += m.cfg.CoreCyclesPerAccess + uint64(a.Think)
	l1Hit := m.l1.Access(a.Addr, a.Write)
	m.pf.OnAccess(a, l1Hit)
	if l1Hit {
		m.res.L1Hits++
		return
	}
	m.stepMiss(a)
}

// stepMiss is the L1-miss slow path shared by Step and StepBlock: SVB
// probe, L2, off-chip transfer, and the timing model.
func (m *Machine) stepMiss(a trace.Access) {
	// Stores invalidate any prefetched copy: the SVB must never serve data
	// that a store has made stale.
	if a.Write && m.engine != nil {
		m.engine.Invalidate(a.Addr)
	}
	// Probe the SVB (reads only; stores drain through the write path).
	if !a.Write && m.engine != nil {
		if hit, readyAt := m.engine.Lookup(a.Addr); hit {
			m.res.Covered++
			m.l2.Fill(a.Addr, false)
			m.l1.Fill(a.Addr, false)
			m.cycle += m.cfg.SVBHitCycles
			if readyAt > m.cycle {
				m.cycle = readyAt // in flight: wait for arrival
			}
			m.pf.OnOffChipEvent(a, true)
			return
		}
	}

	if m.l2.Access(a.Addr, a.Write) {
		m.res.L2Hits++
		m.l1.Fill(a.Addr, a.Write)
		if !a.Write {
			m.cycle += m.cfg.L2HitCycles
		}
		return
	}

	// Off-chip.
	m.l2.Fill(a.Addr, a.Write)
	m.l1.Fill(a.Addr, a.Write)
	if a.Write {
		// Store-wait-free (§5.1): stores never stall the core, and their
		// bandwidth drains in the background.
		return
	}
	m.res.OffChipReads++
	// The demand transfer reserves its channel first (demand priority),
	// then the prefetcher reacts *at miss-issue time* — streams launched
	// by this miss overlap with its latency, which is where streaming's
	// lookahead comes from.
	start, completion := m.issueTransfer()
	m.pf.OnOffChipEvent(a, false)
	if a.Dep {
		// A dependent miss (pointer chase) serializes: the core waits for
		// the full round trip. This is what temporal streaming's
		// parallelization of dependence chains eliminates (§2.1).
		m.cycle = completion
	} else {
		// Independent misses overlap in the OoO window; the average
		// exposed penalty is latency/MLP plus any bandwidth queuing
		// (§5.6: spatially predictable OLTP accesses "are already issued
		// in parallel by out-of-order processing").
		m.cycle += (start - m.cycle) + m.cfg.OffChipCycles/uint64(m.cfg.MLP)
	}
}

// Run replays the whole source and finalizes accounting. The source is
// batched into columnar blocks and replayed through the block kernel; a
// source that already produces blocks (trace.BlockTrace cursors, v2 trace
// readers) is consumed without re-batching.
func (m *Machine) Run(src trace.Source) Result {
	return m.RunBlocks(trace.Blocks(src))
}

// RunBlocks replays a block stream and finalizes accounting — the batched
// counterpart of Run.
func (m *Machine) RunBlocks(bs trace.BlockSource) Result {
	var b trace.Block
	for bs.NextBlock(&b) {
		m.StepBlock(&b)
	}
	return m.Finish()
}

// StepBlock replays one columnar block. It is exactly equivalent to
// calling Step on each access in order (the equivalence suite asserts
// identical Results for every predictor), but iterates the block's columns
// in a tight loop: the per-access virtual Source call and 24-byte struct
// copy disappear, bounds checks are hoisted onto the column slices, and a
// block with no stores runs a leaner loop with the write branches hoisted
// out entirely.
func (m *Machine) StepBlock(b *trace.Block) {
	n := b.N
	if n == 0 {
		return
	}
	addrs := b.Addrs[:n]
	pcIdx := b.PCIdx[:n]
	think := b.Think[:n]
	dict := b.PCDict
	depBits := b.DepBits
	core := m.cfg.CoreCyclesPerAccess
	m.res.Accesses += uint64(n)

	if !b.HasWrites() {
		// Read-only block: the write/read branch, the store-invalidate
		// probe, and the Writes counter all vanish from the loop.
		m.res.Reads += uint64(n)
		for i := 0; i < n; i++ {
			a := trace.Access{
				Addr:  mem.Addr(addrs[i]),
				PC:    dict[pcIdx[i]],
				Dep:   depBits[i>>6]&(1<<(uint(i)&63)) != 0,
				Think: think[i],
			}
			m.cycle += core + uint64(a.Think)
			if m.l1.Access(a.Addr, false) {
				m.pf.OnAccess(a, true)
				m.res.L1Hits++
				continue
			}
			m.pf.OnAccess(a, false)
			m.stepMiss(a)
		}
		return
	}

	writeBits := b.WriteBits
	for i := 0; i < n; i++ {
		a := trace.Access{
			Addr:  mem.Addr(addrs[i]),
			PC:    dict[pcIdx[i]],
			Write: writeBits[i>>6]&(1<<(uint(i)&63)) != 0,
			Dep:   depBits[i>>6]&(1<<(uint(i)&63)) != 0,
			Think: think[i],
		}
		if a.Write {
			m.res.Writes++
		} else {
			m.res.Reads++
		}
		m.cycle += core + uint64(a.Think)
		if m.l1.Access(a.Addr, a.Write) {
			m.pf.OnAccess(a, true)
			m.res.L1Hits++
			continue
		}
		m.pf.OnAccess(a, false)
		m.stepMiss(a)
	}
}

// Finish drains the SVB (unconsumed prefetches become overpredictions) and
// returns the result.
func (m *Machine) Finish() Result {
	if m.engine != nil {
		m.engine.Drain()
		m.res.Overpredicted = m.engine.Stats().Overpredicted
	}
	if c, ok := m.pf.(ResultContributor); ok {
		c.ContributeResult(&m.res)
	}
	m.res.Cycles = m.cycle
	return m.res
}

// Cycle returns the current simulation time.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Invalidate models a coherence invalidation of the block holding addr:
// the block is removed from both caches and the SVB. An L1 invalidation
// ends the owning spatial generation, exactly like an eviction (§2.4: a
// generation ends "when one of the accessed blocks is evicted or
// invalidated from the L1 cache"); an unconsumed SVB entry counts as an
// overprediction.
func (m *Machine) Invalidate(addr mem.Addr) {
	m.l1.Invalidate(addr) // fires OnEvict -> pf.OnL1Evict
	m.l2.Invalidate(addr)
	if m.engine != nil {
		m.engine.Invalidate(addr)
	}
}

// CollectMissStream replays src through the cache hierarchy with no
// prefetching, invoking onMiss for every off-chip demand read miss and
// onEvict for every L1 eviction. This is the trace-analysis front end used
// by the Figure 6–8 studies, which classify the *baseline* miss stream.
func CollectMissStream(cfg config.System, src trace.Source, onMiss func(trace.Access), onEvict func(mem.Addr)) {
	CollectMissStreamBlocks(cfg, trace.Blocks(src), onMiss, onEvict)
}

// CollectMissStreamBlocks is the batched form of CollectMissStream. The
// hit path touches only the address column and the write bitset; the full
// access record is decoded only for the off-chip misses handed to onMiss.
func CollectMissStreamBlocks(cfg config.System, bs trace.BlockSource, onMiss func(trace.Access), onEvict func(mem.Addr)) {
	l1 := cache.New(cache.Config{SizeBytes: cfg.L1SizeBytes, Ways: cfg.L1Ways})
	l2 := cache.New(cache.Config{SizeBytes: cfg.L2SizeBytes, Ways: cfg.L2Ways})
	if onEvict != nil {
		l1.OnEvict = onEvict
	}
	var b trace.Block
	for bs.NextBlock(&b) {
		n := b.N
		addrs := b.Addrs[:n]
		writeBits := b.WriteBits
		for i := 0; i < n; i++ {
			addr := mem.Addr(addrs[i])
			w := writeBits[i>>6]&(1<<(uint(i)&63)) != 0
			if l1.Access(addr, w) {
				continue
			}
			if l2.Access(addr, w) {
				l1.Fill(addr, w)
				continue
			}
			l2.Fill(addr, w)
			l1.Fill(addr, w)
			if !w && onMiss != nil {
				onMiss(b.At(i))
			}
		}
	}
}
