package sim

import (
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

func testSystem() config.System {
	s := config.DefaultSystem()
	s.L1SizeBytes = 1 << 10 // 16 blocks: evictions happen fast in tests
	s.L2SizeBytes = 8 << 10
	return s
}

func read(block int) trace.Access {
	return trace.Access{Addr: mem.Addr(block * mem.BlockSize)}
}

func TestL1HitCost(t *testing.T) {
	m := NewMachine(testSystem(), Nop{})
	m.Step(read(1)) // off-chip miss
	c := m.Cycle()
	m.Step(read(1)) // L1 hit
	if got := m.Cycle() - c; got != testSystem().CoreCyclesPerAccess {
		t.Fatalf("L1 hit cost = %d, want %d", got, testSystem().CoreCyclesPerAccess)
	}
}

func TestOffChipCosts(t *testing.T) {
	sys := testSystem()
	m := NewMachine(sys, Nop{})
	c0 := m.Cycle()
	m.Step(read(1)) // independent off-chip miss
	indep := m.Cycle() - c0
	wantIndep := sys.CoreCyclesPerAccess + sys.OffChipCycles/uint64(sys.MLP)
	if indep != wantIndep {
		t.Fatalf("independent miss cost = %d, want %d", indep, wantIndep)
	}
	c1 := m.Cycle()
	m.Step(trace.Access{Addr: mem.Addr(99 * mem.BlockSize), Dep: true})
	dep := m.Cycle() - c1
	wantDep := sys.CoreCyclesPerAccess + sys.OffChipCycles
	if dep != wantDep {
		t.Fatalf("dependent miss cost = %d, want %d", dep, wantDep)
	}
}

func TestL2HitCost(t *testing.T) {
	sys := testSystem()
	m := NewMachine(sys, Nop{})
	m.Step(read(1))
	// Evict block 1 from the tiny L1 (same set: stride = sets*64).
	sets := (sys.L1SizeBytes / 64) / sys.L1Ways
	for i := 1; i <= sys.L1Ways; i++ {
		m.Step(read(1 + i*sets))
	}
	c := m.Cycle()
	m.Step(read(1)) // L1 miss, L2 hit
	got := m.Cycle() - c
	want := sys.CoreCyclesPerAccess + sys.L2HitCycles
	if got != want {
		t.Fatalf("L2 hit cost = %d, want %d", got, want)
	}
}

func TestWritesNeverStall(t *testing.T) {
	sys := testSystem()
	m := NewMachine(sys, Nop{})
	c := m.Cycle()
	m.Step(trace.Access{Addr: 0x100000, Write: true}) // off-chip write
	if got := m.Cycle() - c; got != sys.CoreCyclesPerAccess {
		t.Fatalf("write stalled %d cycles (store-wait-free model)", got)
	}
	res := m.Finish()
	if res.OffChipReads != 0 {
		t.Fatal("write counted as off-chip read")
	}
	if res.Writes != 1 {
		t.Fatalf("writes = %d", res.Writes)
	}
}

func TestThinkTimeAccrues(t *testing.T) {
	m := NewMachine(testSystem(), Nop{})
	m.Step(read(1))
	c := m.Cycle()
	m.Step(trace.Access{Addr: 64, Think: 500})
	if got := m.Cycle() - c; got != 500+testSystem().CoreCyclesPerAccess {
		t.Fatalf("think cost = %d", got)
	}
}

// coveringPrefetcher fetches a fixed block on the first off-chip event.
type coveringPrefetcher struct {
	engine *stream.Engine
	target mem.Addr
	done   bool
}

func (p *coveringPrefetcher) Name() string                { return "test-cover" }
func (p *coveringPrefetcher) OnAccess(trace.Access, bool) {}
func (p *coveringPrefetcher) OnL1Evict(mem.Addr)          {}
func (p *coveringPrefetcher) OnOffChipEvent(a trace.Access, covered bool) {
	if !p.done {
		p.engine.Direct(p.target)
		p.done = true
	}
}

func TestSVBCoverageAccounting(t *testing.T) {
	sys := testSystem()
	m := NewMachine(sys, Nop{})
	eng := m.AttachEngine(stream.Config{SVBEntries: 8})
	pf := &coveringPrefetcher{engine: eng, target: read(50).Addr}
	m.SetPrefetcher(pf)

	m.Step(read(1))  // miss -> prefetch block 50 issued
	m.Step(read(50)) // must hit the SVB
	res := m.Finish()
	if res.Covered != 1 {
		t.Fatalf("covered = %d, want 1", res.Covered)
	}
	if res.OffChipReads != 1 {
		t.Fatalf("off-chip reads = %d, want 1 (the trigger)", res.OffChipReads)
	}
	if res.BaselineMisses() != 2 {
		t.Fatalf("baseline misses = %d, want 2", res.BaselineMisses())
	}
	if res.Coverage() != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", res.Coverage())
	}
}

func TestUnusedPrefetchIsOverprediction(t *testing.T) {
	m := NewMachine(testSystem(), Nop{})
	eng := m.AttachEngine(stream.Config{SVBEntries: 8})
	pf := &coveringPrefetcher{engine: eng, target: read(777).Addr}
	m.SetPrefetcher(pf)
	m.Step(read(1))
	res := m.Finish()
	if res.Overpredicted != 1 {
		t.Fatalf("overpredicted = %d, want 1", res.Overpredicted)
	}
	if res.OverpredictionRate() != 1.0 {
		t.Fatalf("rate = %v, want 1.0", res.OverpredictionRate())
	}
}

func TestInFlightSVBHitWaits(t *testing.T) {
	sys := testSystem()
	m := NewMachine(sys, Nop{})
	eng := m.AttachEngine(stream.Config{SVBEntries: 8})
	pf := &coveringPrefetcher{engine: eng, target: read(50).Addr}
	m.SetPrefetcher(pf)
	m.Step(read(1)) // prefetch issues ~here; ready at ~issue+400
	c := m.Cycle()
	m.Step(read(50)) // SVB hit but in flight: waits for arrival
	wait := m.Cycle() - c
	if wait <= sys.SVBHitCycles+sys.CoreCyclesPerAccess {
		t.Fatalf("in-flight hit did not wait (cost %d)", wait)
	}
	if wait > sys.OffChipCycles+sys.CoreCyclesPerAccess {
		t.Fatalf("in-flight hit waited longer than a full miss (%d)", wait)
	}
}

func TestChannelBackpressure(t *testing.T) {
	// With one channel and heavy occupancy, back-to-back misses queue.
	sys := testSystem()
	sys.MemChannels = 1
	sys.ChannelOccupancy = 300
	m := NewMachine(sys, Nop{})
	var last uint64
	for i := 0; i < 8; i++ {
		m.Step(trace.Access{Addr: mem.Addr(0x100000 + i*64)})
		d := m.Cycle() - last
		last = m.Cycle()
		_ = d
	}
	congested := m.Cycle()

	sys.MemChannels = 8
	m2 := NewMachine(sys, Nop{})
	for i := 0; i < 8; i++ {
		m2.Step(trace.Access{Addr: mem.Addr(0x100000 + i*64)})
	}
	if congested <= m2.Cycle() {
		t.Fatalf("1-channel run (%d cycles) not slower than 8-channel (%d)", congested, m2.Cycle())
	}
}

func TestScientificLookahead(t *testing.T) {
	opt := DefaultOptions()
	opt.Scientific = true
	if got := opt.StreamLookahead(8); got != 12 {
		t.Fatalf("scientific lookahead = %d, want 12", got)
	}
	opt.Scientific = false
	if got := opt.StreamLookahead(8); got != 8 {
		t.Fatalf("commercial lookahead = %d, want 8", got)
	}
}

func TestRegistryErrors(t *testing.T) {
	if err := Register("", func(*Machine, Options) error { return nil }); err == nil {
		t.Fatal("registering an empty name succeeded")
	}
	if err := Register("test-nil-builder", nil); err == nil {
		t.Fatal("registering a nil builder succeeded")
	}
	// "none" is registered by this package's init.
	if err := Register(KindNone, func(*Machine, Options) error { return nil }); err == nil {
		t.Fatal("duplicate registration of KindNone succeeded")
	}
	if !IsRegistered(KindNone) {
		t.Fatal("KindNone not registered")
	}
	if _, err := Build("bogus", DefaultOptions()); err == nil {
		t.Fatal("Build(bogus) succeeded")
	}
}

func TestCollectMissStream(t *testing.T) {
	sys := testSystem()
	var misses []mem.Addr
	var evicts int
	accs := []trace.Access{
		read(1), read(1), // second is an L1 hit
		{Addr: 0x40000, Write: true}, // write miss: not reported
		read(2),
	}
	CollectMissStream(sys, trace.NewSliceSource(accs),
		func(a trace.Access) { misses = append(misses, a.Addr.Block()) },
		func(mem.Addr) { evicts++ })
	want := []mem.Addr{read(1).Addr.Block(), read(2).Addr.Block()}
	if len(misses) != len(want) {
		t.Fatalf("misses = %v, want %v", misses, want)
	}
	for i := range want {
		if misses[i] != want[i] {
			t.Fatalf("miss %d = %v, want %v", i, misses[i], want[i])
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{Prefetcher: "x", Covered: 50, OffChipReads: 50, Overpredicted: 10}
	s := r.String()
	if s == "" {
		t.Fatal("empty result string")
	}
	if r.Coverage() != 0.5 || r.OverpredictionRate() != 0.1 {
		t.Fatalf("coverage=%v over=%v", r.Coverage(), r.OverpredictionRate())
	}
	var zero Result
	if zero.Coverage() != 0 || zero.OverpredictionRate() != 0 {
		t.Fatal("zero result rates not zero")
	}
}

func TestNewMachinePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid system")
		}
	}()
	NewMachine(config.System{}, Nop{})
}

// invalObserver records generation-ending notifications.
type invalObserver struct {
	Nop
	evicts []mem.Addr
}

func (o *invalObserver) OnL1Evict(b mem.Addr) { o.evicts = append(o.evicts, b) }

func TestInvalidateEndsGenerations(t *testing.T) {
	obs := &invalObserver{}
	m := NewMachine(testSystem(), Nop{})
	m.SetPrefetcher(obs)
	m.Step(read(1))
	m.Invalidate(read(1).Addr)
	if len(obs.evicts) == 0 || obs.evicts[len(obs.evicts)-1] != read(1).Addr.Block() {
		t.Fatalf("invalidation did not notify the prefetcher: %v", obs.evicts)
	}
	// The block is gone from both levels: the next access goes off chip.
	before := m.Finish().OffChipReads
	m.Step(read(1))
	if m.res.OffChipReads != before+1 {
		t.Fatal("invalidated block still resident")
	}
}

func TestInvalidateDropsSVBEntry(t *testing.T) {
	m := NewMachine(testSystem(), Nop{})
	eng := m.AttachEngine(stream.Config{SVBEntries: 8})
	pf := &coveringPrefetcher{engine: eng, target: read(50).Addr}
	m.SetPrefetcher(pf)
	m.Step(read(1)) // issues the prefetch of block 50
	m.Invalidate(read(50).Addr)
	m.Step(read(50)) // must NOT be covered now
	res := m.Finish()
	if res.Covered != 0 {
		t.Fatal("invalidated SVB entry served a hit")
	}
	if res.Overpredicted != 1 {
		t.Fatalf("overpredicted = %d, want 1", res.Overpredicted)
	}
}

// TestStoreInvalidatesSVBEntry: a store to a prefetched block must drop the
// stale SVB copy so a later read refetches coherent data.
func TestStoreInvalidatesSVBEntry(t *testing.T) {
	m := NewMachine(testSystem(), Nop{})
	eng := m.AttachEngine(stream.Config{SVBEntries: 8})
	pf := &coveringPrefetcher{engine: eng, target: read(50).Addr}
	m.SetPrefetcher(pf)
	m.Step(read(1))                                        // prefetch block 50
	m.Step(trace.Access{Addr: read(50).Addr, Write: true}) // store to it
	m.Step(read(50))
	res := m.Finish()
	if res.Covered != 0 {
		t.Fatal("stale SVB entry served a read after a store")
	}
	if res.Overpredicted != 1 {
		t.Fatalf("overpredicted = %d, want 1 (invalidated prefetch)", res.Overpredicted)
	}
}
