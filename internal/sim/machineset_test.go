// Lockstep-set equivalence: a MachineSet must produce, lane for lane,
// exactly the Results of running every machine alone over its stream —
// for the shared-cursor shape (Figure 10's kind panel), the per-lane
// cursor shape (seed sweeps), and the parallel variants of both.
package sim_test

import (
	"context"
	"sync"
	"testing"

	"stems/internal/config"
	"stems/internal/sim"
	"stems/internal/trace"
	"stems/internal/workload"

	_ "stems/internal/predictors"
)

func setOptions(spec workload.Spec) sim.Options {
	opt := sim.DefaultOptions()
	opt.System = config.ScaledSystem()
	opt.Scientific = spec.Scientific
	return opt
}

func buildKind(t *testing.T, kind sim.Kind, opt sim.Options) *sim.Machine {
	t.Helper()
	m, err := sim.Build(kind, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSharedSetMatchesSequential replays one trace through a shared-cursor
// set of every registered predictor and requires each lane's Result to be
// identical to a solo RunBlocks of the same kind.
func TestSharedSetMatchesSequential(t *testing.T) {
	const accesses = 12_000
	spec, err := workload.ByName("DB2")
	if err != nil {
		t.Fatal(err)
	}
	bt := trace.NewBlockTrace(spec.Generate(1, accesses))
	opt := setOptions(spec)
	kinds := sim.AllKinds()

	want := make([]sim.Result, len(kinds))
	for i, kind := range kinds {
		want[i] = buildKind(t, kind, opt).RunBlocks(bt.Blocks())
	}

	for _, parallelism := range []int{1, 4} {
		machines := make([]*sim.Machine, len(kinds))
		for i, kind := range kinds {
			machines[i] = buildKind(t, kind, opt)
		}
		set := sim.NewSharedSet(bt.Blocks(), machines...)
		set.Parallelism = parallelism
		got, err := set.Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		for i, kind := range kinds {
			if got[i] != want[i] {
				t.Errorf("parallelism=%d: %s diverged from solo run\n got: %+v\nwant: %+v",
					parallelism, kind, got[i], want[i])
			}
		}
	}
}

// TestSharedSetKnobPanel replays one trace through a shared-cursor set of
// machines that differ only by option values — the fused sweep-grid shape,
// where every point of a knob sweep shares the trace. Each lane must match
// its solo run at any parallelism, including more lanes than workers.
func TestSharedSetKnobPanel(t *testing.T) {
	const accesses = 12_000
	spec, err := workload.ByName("em3d")
	if err != nil {
		t.Fatal(err)
	}
	bt := trace.NewBlockTrace(spec.Generate(1, accesses))
	base := setOptions(spec)
	points := []func(*sim.Options){
		func(o *sim.Options) { o.STeMS.RMOBEntries = 4096 },
		func(o *sim.Options) { o.STeMS.RMOBEntries = 16384 },
		func(o *sim.Options) { o.STeMS.Lookahead = 4 },
		func(o *sim.Options) { o.STeMS.Lookahead = 16 },
		func(o *sim.Options) { o.STeMS.ReconSearch = 0 },
	}
	optAt := func(i int) sim.Options {
		opt := base
		points[i](&opt)
		return opt
	}

	want := make([]sim.Result, len(points))
	for i := range points {
		want[i] = buildKind(t, sim.KindSTeMS, optAt(i)).RunBlocks(bt.Blocks())
	}

	for _, parallelism := range []int{1, 2} {
		machines := make([]*sim.Machine, len(points))
		for i := range points {
			machines[i] = buildKind(t, sim.KindSTeMS, optAt(i))
		}
		set := sim.NewSharedSet(bt.Blocks(), machines...)
		set.Parallelism = parallelism
		got, err := set.Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		for i := range points {
			if got[i] != want[i] {
				t.Errorf("parallelism=%d: knob point %d diverged from solo run\n got: %+v\nwant: %+v",
					parallelism, i, got[i], want[i])
			}
		}
	}
}

// TestLaneSetMatchesSequential replays K seed-differing traces through a
// per-lane-cursor set and requires each lane to match its solo run.
func TestLaneSetMatchesSequential(t *testing.T) {
	const accesses = 12_000
	spec, err := workload.ByName("Oracle")
	if err != nil {
		t.Fatal(err)
	}
	opt := setOptions(spec)
	seeds := []int64{1, 7920, 15839}

	traces := make([]*trace.BlockTrace, len(seeds))
	want := make([]sim.Result, len(seeds))
	for i, seed := range seeds {
		traces[i] = trace.NewBlockTrace(spec.Generate(seed, accesses))
		want[i] = buildKind(t, sim.KindSTeMS, opt).RunBlocks(traces[i].Blocks())
	}

	for _, parallelism := range []int{1, 3} {
		lanes := make([]sim.Lane, len(seeds))
		for i := range seeds {
			lanes[i] = sim.Lane{
				Machine: buildKind(t, sim.KindSTeMS, opt),
				Source:  traces[i].Blocks(),
			}
		}
		set := sim.NewMachineSet(lanes...)
		set.Parallelism = parallelism
		got, err := set.Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		for i := range seeds {
			if got[i] != want[i] {
				t.Errorf("parallelism=%d: seed %d diverged from solo run\n got: %+v\nwant: %+v",
					parallelism, seeds[i], got[i], want[i])
			}
		}
	}
}

// TestMachineSetProgress checks the cumulative cross-lane access counter:
// the final callback value must equal lanes × trace length, monotonic
// per observation under the serial path.
func TestMachineSetProgress(t *testing.T) {
	const accesses = 9_000
	spec, err := workload.ByName("DB2")
	if err != nil {
		t.Fatal(err)
	}
	bt := trace.NewBlockTrace(spec.Generate(1, accesses))
	opt := setOptions(spec)

	machines := []*sim.Machine{
		buildKind(t, sim.KindStride, opt),
		buildKind(t, sim.KindSMS, opt),
	}
	set := sim.NewSharedSet(bt.Blocks(), machines...)
	set.Parallelism = 1
	var mu sync.Mutex
	var last uint64
	set.Progress = func(done uint64) {
		mu.Lock()
		if done < last {
			t.Errorf("progress went backwards: %d after %d", done, last)
		}
		last = done
		mu.Unlock()
	}
	if _, err := set.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if want := uint64(2 * accesses); last != want {
		t.Fatalf("final progress = %d, want %d", last, want)
	}
}

// TestMachineSetCancel verifies a cancelled context stops the set within
// one block round.
func TestMachineSetCancel(t *testing.T) {
	const accesses = 50_000
	spec, err := workload.ByName("DB2")
	if err != nil {
		t.Fatal(err)
	}
	bt := trace.NewBlockTrace(spec.Generate(1, accesses))
	opt := setOptions(spec)

	ctx, cancel := context.WithCancel(context.Background())
	set := sim.NewSharedSet(bt.Blocks(), buildKind(t, sim.KindStride, opt))
	set.Parallelism = 1
	set.Progress = func(done uint64) {
		if done >= trace.BlockCap {
			cancel()
		}
	}
	if _, err := set.Run(ctx); err != context.Canceled {
		t.Fatalf("Run after cancel = %v, want context.Canceled", err)
	}
}
