// Build-path tests live in an external test package: the registration glue
// in the predictor packages imports sim, so package sim itself can never
// link the built-ins — only its consumers can.
package sim_test

import (
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/sim"
	"stems/internal/trace"

	_ "stems/internal/predictors"
)

func testSystem() config.System {
	s := config.DefaultSystem()
	s.L1SizeBytes = 1 << 10 // 16 blocks: evictions happen fast in tests
	s.L2SizeBytes = 8 << 10
	return s
}

func read(block int) trace.Access {
	return trace.Access{Addr: mem.Addr(block * mem.BlockSize)}
}

func TestBuildAllKinds(t *testing.T) {
	kinds := sim.AllKinds()
	if len(kinds) < 7 {
		t.Fatalf("registered kinds = %v, want the seven built-ins", kinds)
	}
	// Baselines lead so reports can compute speedups against earlier rows.
	if kinds[0] != sim.KindNone || kinds[1] != sim.KindStride {
		t.Fatalf("kind order = %v, want none, stride first", kinds)
	}
	for _, kind := range kinds {
		opt := sim.DefaultOptions()
		opt.System = testSystem()
		m, err := sim.Build(kind, opt)
		if err != nil {
			t.Fatalf("Build(%s): %v", kind, err)
		}
		// A tiny run must not panic and must count accesses.
		src := trace.NewSliceSource([]trace.Access{read(1), read(2), read(1)})
		res := m.Run(src)
		if res.Accesses != 3 {
			t.Fatalf("%s: accesses = %d", kind, res.Accesses)
		}
		if res.Prefetcher == "" {
			t.Fatalf("%s: empty prefetcher name", kind)
		}
	}
}

// TestFetchConservation: every prefetched block is eventually either
// consumed (covered) or accounted as an overprediction — across all
// predictor kinds and a mix of traces.
func TestFetchConservation(t *testing.T) {
	traces := map[string][]trace.Access{}
	// Structured: repeated region sweeps.
	var structured []trace.Access
	for pass := 0; pass < 3; pass++ {
		for r := 1; r <= 200; r++ {
			for _, off := range []int{0, 3, 7} {
				structured = append(structured, trace.Access{
					Addr: mem.Addr(r*mem.RegionSize + off*mem.BlockSize),
					PC:   0x11,
				})
			}
		}
	}
	traces["structured"] = structured
	// Adversarial: pseudo-random addresses, some writes and deps.
	var random []trace.Access
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 3000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		random = append(random, trace.Access{
			Addr:  mem.Addr(x % (1 << 26)),
			PC:    x % 97,
			Write: x%11 == 0,
			Dep:   x%5 == 0,
		})
	}
	traces["random"] = random

	for name, accs := range traces {
		for _, kind := range sim.AllKinds() {
			opt := sim.DefaultOptions()
			opt.System = testSystem()
			m, err := sim.Build(kind, opt)
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run(trace.NewSliceSource(accs))
			if res.Fetched != res.Covered+res.Overpredicted {
				t.Errorf("%s/%s: fetched %d != covered %d + overpredicted %d",
					name, kind, res.Fetched, res.Covered, res.Overpredicted)
			}
		}
	}
}

// TestDeterministicReplay: the same trace through the same predictor gives
// bit-identical results.
func TestDeterministicReplay(t *testing.T) {
	accs := make([]trace.Access, 0, 2000)
	for r := 0; r < 100; r++ {
		for _, off := range []int{0, 5, 9} {
			accs = append(accs, trace.Access{
				Addr: mem.Addr(r*mem.RegionSize + off*mem.BlockSize), PC: 3,
			})
		}
	}
	for _, kind := range sim.AllKinds() {
		opt := sim.DefaultOptions()
		opt.System = testSystem()
		m1, _ := sim.Build(kind, opt)
		m2, _ := sim.Build(kind, opt)
		r1 := m1.Run(trace.NewSliceSource(accs))
		r2 := m2.Run(trace.NewSliceSource(accs))
		if r1 != r2 {
			t.Errorf("%s: nondeterministic results:\n%+v\n%+v", kind, r1, r2)
		}
	}
}

// TestAdaptiveBuildOption: the builders thread the adaptive flag through.
func TestAdaptiveBuildOption(t *testing.T) {
	opt := sim.DefaultOptions()
	opt.System = testSystem()
	opt.AdaptiveLookahead = true
	for _, kind := range []sim.Kind{sim.KindTMS, sim.KindSTeMS} {
		m, err := sim.Build(kind, opt)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(trace.NewSliceSource([]trace.Access{read(1), read(2)}))
	}
}

// TestVirtualizedMetaBuild: the predictor-virtualization build path
// produces metadata traffic that shows up in the result.
func TestVirtualizedMetaBuild(t *testing.T) {
	opt := sim.DefaultOptions()
	opt.System = testSystem()
	opt.VirtualizedMeta = true
	opt.VirtualMetaCacheBytes = 1 << 10
	m, err := sim.Build(sim.KindSTeMS, opt)
	if err != nil {
		t.Fatal(err)
	}
	var accs []trace.Access
	for r := 0; r < 64; r++ {
		for _, off := range []int{0, 3} {
			accs = append(accs, trace.Access{
				Addr: mem.Addr(r*mem.RegionSize + off*mem.BlockSize), PC: 1,
			})
		}
	}
	res := m.Run(trace.NewSliceSource(accs))
	if res.MetaTransfers == 0 {
		t.Fatal("virtualized metadata produced no transfers")
	}
	// Without virtualization there must be none.
	opt.VirtualizedMeta = false
	m2, _ := sim.Build(sim.KindSTeMS, opt)
	if res2 := m2.Run(trace.NewSliceSource(accs)); res2.MetaTransfers != 0 {
		t.Fatal("dedicated-storage run counted metadata transfers")
	}
}

// TestSTeMSContributesReconStats: the recon placement counters reach the
// Result through the ResultContributor hook.
func TestSTeMSContributesReconStats(t *testing.T) {
	opt := sim.DefaultOptions()
	opt.System = testSystem()
	m, err := sim.Build(sim.KindSTeMS, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Two passes over recurring regions: the second pass replays recorded
	// sequences, exercising reconstruction.
	var accs []trace.Access
	for pass := 0; pass < 2; pass++ {
		for r := 1; r <= 100; r++ {
			for _, off := range []int{0, 2, 5} {
				accs = append(accs, trace.Access{
					Addr: mem.Addr(r*mem.RegionSize + off*mem.BlockSize), PC: 0x9,
				})
			}
		}
	}
	res := m.Run(trace.NewSliceSource(accs))
	if res.ReconPlacedExact+res.ReconPlacedNear+res.ReconDropped == 0 {
		t.Fatal("STeMS run contributed no reconstruction stats")
	}
	if f := res.ReconDropFraction(); f < 0 || f > 1 {
		t.Fatalf("drop fraction = %v", f)
	}
}
