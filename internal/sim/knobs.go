package sim

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the typed knob registry: the declarative, introspectable
// face of Options. Every exported Options field is reachable through a
// registered Knob (enforced by a completeness test), so a configuration
// can travel as data — a map[string]Value in a wire RunSpec, a
// "-set name=value" CLI flag, a stems.Spec — instead of as a
// WithConfigure closure that cannot cross the wire. Knobs are grouped
// ("system", "stems", ...) and each predictor kind binds the groups it
// reads, which is what /v1/predictors and "stemsim -predictors -v"
// report as that predictor's schema.

// KnobKind is the value type of a knob.
type KnobKind string

// The knob value kinds. Integer knobs cover Go int, uint8, and uint64
// Options fields; the wire form is one JSON number either way.
const (
	KnobInt   KnobKind = "int"
	KnobBool  KnobKind = "bool"
	KnobFloat KnobKind = "float"
)

// Value is one typed knob value: exactly the scalar JSON forms a knob
// map carries (number or boolean). The zero Value is invalid — construct
// with IntValue/BoolValue/FloatValue or by unmarshaling.
type Value struct {
	kind KnobKind
	i    int64
	f    float64
	b    bool
}

// IntValue makes an integer Value.
func IntValue(v int64) Value { return Value{kind: KnobInt, i: v} }

// BoolValue makes a boolean Value.
func BoolValue(v bool) Value { return Value{kind: KnobBool, b: v} }

// FloatValue makes a float Value.
func FloatValue(v float64) Value { return Value{kind: KnobFloat, f: v} }

// Kind returns the value's kind ("" for the invalid zero Value).
func (v Value) Kind() KnobKind { return v.kind }

// Int returns the integer payload (0 unless Kind is KnobInt).
func (v Value) Int() int64 { return v.i }

// Bool returns the boolean payload (false unless Kind is KnobBool).
func (v Value) Bool() bool { return v.b }

// Float returns the float payload (0 unless Kind is KnobFloat).
func (v Value) Float() float64 { return v.f }

// String renders the value the way ParseValue reads it.
func (v Value) String() string {
	switch v.kind {
	case KnobInt:
		return strconv.FormatInt(v.i, 10)
	case KnobBool:
		return strconv.FormatBool(v.b)
	case KnobFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "<invalid>"
	}
}

// MarshalJSON emits the bare scalar: an integer, a boolean, or a float.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KnobInt:
		return strconv.AppendInt(nil, v.i, 10), nil
	case KnobBool:
		return strconv.AppendBool(nil, v.b), nil
	case KnobFloat:
		return json.Marshal(v.f)
	default:
		return nil, fmt.Errorf("sim: marshaling invalid knob value")
	}
}

// UnmarshalJSON accepts a JSON number or boolean. Numbers without a
// fraction or exponent decode as KnobInt, everything else as KnobFloat;
// the kind is coerced to the knob's registered kind at validation time,
// so "8" and "8.0" canonicalize identically for an int knob.
func (v *Value) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	switch s {
	case "true":
		*v = BoolValue(true)
		return nil
	case "false":
		*v = BoolValue(false)
		return nil
	}
	if !strings.ContainsAny(s, ".eE") {
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			*v = IntValue(i)
			return nil
		}
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		*v = FloatValue(f)
		return nil
	}
	return fmt.Errorf("sim: knob values are JSON numbers or booleans, got %s", s)
}

// ParseValue reads a knob value from flag text ("8192", "true", "4.5");
// the same coercion rules as JSON decoding apply at validation time.
func ParseValue(s string) (Value, error) {
	var v Value
	if err := v.UnmarshalJSON([]byte(s)); err != nil {
		return Value{}, fmt.Errorf("sim: invalid knob value %q: numbers or booleans only", s)
	}
	return v, nil
}

// ParseAssignment reads a "-set"-style knob assignment ("name=value") —
// the one parser behind every CLI knob flag. The name is validated at
// Runner build time, not here, so errors can report the run context.
func ParseAssignment(s string) (name string, v Value, err error) {
	name, text, ok := strings.Cut(s, "=")
	if !ok {
		return "", Value{}, fmt.Errorf("sim: knob assignment wants name=value, got %q", s)
	}
	v, err = ParseValue(text)
	if err != nil {
		return "", Value{}, err
	}
	return name, v, nil
}

// Knob is one introspectable configuration parameter bound to an
// Options field: name, kind, bounds, documentation, and typed accessors.
type Knob struct {
	// Name is the wire name ("stems.rmob_entries").
	Name string
	// Group is the table the knob belongs to ("system", "stems", ...).
	Group string
	// Kind is the value type.
	Kind KnobKind
	// Doc is a one-line description.
	Doc string
	// Min and Max bound numeric knobs inclusively (ignored for bools).
	Min, Max float64

	set func(*Options, Value)
	get func(*Options) Value
}

// Default returns the knob's value in DefaultOptions (the paper
// configuration; note the service's "scaled" system overrides
// system.l2_size_bytes before knobs apply).
func (k Knob) Default() Value {
	o := DefaultOptions()
	return k.get(&o)
}

// Get reads the knob from an options block.
func (k Knob) Get(o *Options) Value { return k.get(o) }

// coerce converts v to the knob's kind and checks bounds. It accepts an
// integral float for an int knob and an int for a float knob, so
// differently-spelled JSON numbers canonicalize to one Value.
func (k Knob) coerce(v Value) (Value, error) {
	switch k.Kind {
	case KnobBool:
		if v.kind != KnobBool {
			return Value{}, fmt.Errorf("knob %q wants a boolean, got %s", k.Name, v)
		}
		return v, nil
	case KnobInt:
		switch v.kind {
		case KnobInt:
		case KnobFloat:
			if v.f != math.Trunc(v.f) || math.IsInf(v.f, 0) || math.IsNaN(v.f) {
				return Value{}, fmt.Errorf("knob %q wants an integer, got %s", k.Name, v)
			}
			v = IntValue(int64(v.f))
		default:
			return Value{}, fmt.Errorf("knob %q wants an integer, got %s", k.Name, v)
		}
		if f := float64(v.i); f < k.Min || f > k.Max {
			return Value{}, fmt.Errorf("knob %q = %s out of range [%s, %s]",
				k.Name, v, formatBound(k.Min), formatBound(k.Max))
		}
		return v, nil
	case KnobFloat:
		switch v.kind {
		case KnobFloat:
		case KnobInt:
			v = FloatValue(float64(v.i))
		default:
			return Value{}, fmt.Errorf("knob %q wants a number, got %s", k.Name, v)
		}
		if v.f < k.Min || v.f > k.Max || math.IsNaN(v.f) {
			return Value{}, fmt.Errorf("knob %q = %s out of range [%s, %s]",
				k.Name, v, formatBound(k.Min), formatBound(k.Max))
		}
		return v, nil
	default:
		return Value{}, fmt.Errorf("knob %q has invalid kind %q", k.Name, k.Kind)
	}
}

func formatBound(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// IntKnob builds an integer knob over an int Options field.
func IntKnob(name, doc string, min, max int64, field func(*Options) *int) Knob {
	return Knob{
		Name: name, Kind: KnobInt, Doc: doc, Min: float64(min), Max: float64(max),
		set: func(o *Options, v Value) { *field(o) = int(v.i) },
		get: func(o *Options) Value { return IntValue(int64(*field(o))) },
	}
}

// Uint64Knob builds an integer knob over a uint64 Options field.
func Uint64Knob(name, doc string, min, max int64, field func(*Options) *uint64) Knob {
	return Knob{
		Name: name, Kind: KnobInt, Doc: doc, Min: float64(min), Max: float64(max),
		set: func(o *Options, v Value) { *field(o) = uint64(v.i) },
		get: func(o *Options) Value { return IntValue(int64(*field(o))) },
	}
}

// Uint8Knob builds an integer knob over a uint8 Options field.
func Uint8Knob(name, doc string, min, max int64, field func(*Options) *uint8) Knob {
	return Knob{
		Name: name, Kind: KnobInt, Doc: doc, Min: float64(min), Max: float64(max),
		set: func(o *Options, v Value) { *field(o) = uint8(v.i) },
		get: func(o *Options) Value { return IntValue(int64(*field(o))) },
	}
}

// BoolKnob builds a boolean knob over a bool Options field.
func BoolKnob(name, doc string, field func(*Options) *bool) Knob {
	return Knob{
		Name: name, Kind: KnobBool, Doc: doc,
		set: func(o *Options, v Value) { *field(o) = v.b },
		get: func(o *Options) Value { return BoolValue(*field(o)) },
	}
}

// FloatKnob builds a float knob over a float64 Options field.
func FloatKnob(name, doc string, min, max float64, field func(*Options) *float64) Knob {
	return Knob{
		Name: name, Kind: KnobFloat, Doc: doc, Min: min, Max: max,
		set: func(o *Options, v Value) { *field(o) = v.f },
		get: func(o *Options) Value { return FloatValue(*field(o)) },
	}
}

var (
	knobMu     sync.RWMutex
	knobByName = map[string]Knob{}
	// knobGroups maps group name → knob names in registration order.
	knobGroups = map[string][]string{}
	groupOrder []string
	// kindKnobGroups maps predictor kind → the groups it reads, beyond
	// the implicit "system" and "run" groups every kind gets.
	kindKnobGroups = map[Kind][]string{}
)

// RegisterKnobs adds a group of knobs to the registry. Knob names are a
// single global namespace (any knob may be set on any run — relevance is
// what group bindings document), so duplicates fail. The call is atomic:
// on any error the registry is untouched, so a caller can correct the
// group and retry.
func RegisterKnobs(group string, knobs ...Knob) error {
	if group == "" {
		return fmt.Errorf("sim: knob group name must not be empty")
	}
	knobMu.Lock()
	defer knobMu.Unlock()
	// Validate the whole group before mutating anything.
	inGroup := make(map[string]bool, len(knobs))
	for _, k := range knobs {
		if k.Name == "" || k.set == nil || k.get == nil {
			return fmt.Errorf("sim: knob group %q: incomplete knob %q", group, k.Name)
		}
		if _, dup := knobByName[k.Name]; dup {
			return fmt.Errorf("sim: knob %q already registered", k.Name)
		}
		if inGroup[k.Name] {
			return fmt.Errorf("sim: knob %q appears twice in group %q", k.Name, group)
		}
		inGroup[k.Name] = true
	}
	for _, k := range knobs {
		k.Group = group
		knobByName[k.Name] = k
		knobGroups[group] = append(knobGroups[group], k.Name)
	}
	if len(knobGroups[group]) > 0 && !contains(groupOrder, group) {
		groupOrder = append(groupOrder, group)
	}
	return nil
}

// MustRegisterKnobs is RegisterKnobs for package init functions.
func MustRegisterKnobs(group string, knobs ...Knob) {
	if err := RegisterKnobs(group, knobs...); err != nil {
		panic(err)
	}
}

// BindKnobs declares which knob groups a predictor kind reads, beyond
// the implicit "system" and "run" groups. KnobsFor resolves group names
// lazily, so binding order against sibling registrations is free.
func BindKnobs(kind Kind, groups ...string) {
	knobMu.Lock()
	defer knobMu.Unlock()
	kindKnobGroups[kind] = append(kindKnobGroups[kind], groups...)
}

func contains(s []string, v string) bool {
	for _, have := range s {
		if have == v {
			return true
		}
	}
	return false
}

// LookupKnob finds a registered knob by wire name.
func LookupKnob(name string) (Knob, bool) {
	knobMu.RLock()
	defer knobMu.RUnlock()
	k, ok := knobByName[name]
	return k, ok
}

// AllKnobs lists every registered knob: groups in registration order
// ("system" and "run" first), knobs in registration order within each.
func AllKnobs() []Knob {
	knobMu.RLock()
	defer knobMu.RUnlock()
	out := make([]Knob, 0, len(knobByName))
	for _, group := range groupOrder {
		for _, name := range knobGroups[group] {
			out = append(out, knobByName[name])
		}
	}
	return out
}

// KnobsFor lists the knobs relevant to one predictor kind: the shared
// "system" and "run" groups plus whatever groups the kind bound. Kinds
// with no binding (externally registered predictors) get the shared
// groups only. Any registered knob is still *settable* on any run —
// this listing is the per-predictor schema /v1/predictors reports.
func KnobsFor(kind Kind) []Knob {
	knobMu.RLock()
	defer knobMu.RUnlock()
	groups := append([]string{"system", "run"}, kindKnobGroups[kind]...)
	var out []Knob
	seen := map[string]bool{}
	for _, g := range groups {
		if seen[g] {
			continue
		}
		seen[g] = true
		for _, name := range knobGroups[g] {
			out = append(out, knobByName[name])
		}
	}
	return out
}

// NormalizeKnobs validates a knob map and returns its canonical form:
// every name registered, every value coerced to its knob's kind and
// bounds-checked. The input map is not modified; a nil or empty input
// returns nil. Errors name the offending knob, for field-level 400s.
func NormalizeKnobs(knobs map[string]Value) (map[string]Value, error) {
	if len(knobs) == 0 {
		return nil, nil
	}
	out := make(map[string]Value, len(knobs))
	names := make([]string, 0, len(knobs))
	for name := range knobs {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic first-error selection
	for _, name := range names {
		k, ok := LookupKnob(name)
		if !ok {
			return nil, fmt.Errorf("unknown knob %q (list them with stemsim -predictors -v or GET /v1/predictors)", name)
		}
		v, err := k.coerce(knobs[name])
		if err != nil {
			return nil, err
		}
		out[name] = v
	}
	return out, nil
}

// ApplyKnobs normalizes a knob map and sets each knob on o. Application
// order is irrelevant: knob names are unique and each writes one field.
func ApplyKnobs(o *Options, knobs map[string]Value) error {
	canon, err := NormalizeKnobs(knobs)
	if err != nil {
		return err
	}
	for name, v := range canon {
		k, _ := LookupKnob(name)
		k.set(o, v)
	}
	return nil
}

// KnobDiff expresses effective relative to base as a knob map: one entry
// per registered knob whose value differs. Because the registry covers
// every exported Options field, applying the diff to base reconstructs
// effective exactly — the property Runner.Spec round-trips rely on.
func KnobDiff(base, effective Options) map[string]Value {
	var out map[string]Value
	for _, k := range AllKnobs() {
		if k.get(&base) != k.get(&effective) {
			if out == nil {
				out = make(map[string]Value)
			}
			out[k.Name] = k.get(&effective)
		}
	}
	return out
}

func init() {
	// The shared knob groups every predictor sees: the simulated node
	// ("system", Table 1) and the run-level engine flags ("run").
	MustRegisterKnobs("system",
		IntKnob("system.l1_size_bytes", "L1d capacity in bytes (Table 1: 64KB)", 1<<10, 1<<30,
			func(o *Options) *int { return &o.System.L1SizeBytes }),
		IntKnob("system.l1_ways", "L1d associativity (Table 1: 2)", 1, 64,
			func(o *Options) *int { return &o.System.L1Ways }),
		IntKnob("system.l2_size_bytes", "L2 capacity in bytes (Table 1: 8MB; the \"scaled\" system uses 1MB)", 1<<10, 1<<32,
			func(o *Options) *int { return &o.System.L2SizeBytes }),
		IntKnob("system.l2_ways", "L2 associativity (Table 1: 8)", 1, 64,
			func(o *Options) *int { return &o.System.L2Ways }),
		Uint64Knob("system.core_cycles_per_access", "non-memory CPI contribution per traced access", 0, 1<<20,
			func(o *Options) *uint64 { return &o.System.CoreCyclesPerAccess }),
		Uint64Knob("system.l2_hit_cycles", "L2 hit latency in cycles (Table 1: 25)", 1, 1<<20,
			func(o *Options) *uint64 { return &o.System.L2HitCycles }),
		Uint64Knob("system.svb_hit_cycles", "cost of consuming a ready SVB block, cycles", 1, 1<<20,
			func(o *Options) *uint64 { return &o.System.SVBHitCycles }),
		Uint64Knob("system.off_chip_cycles", "end-to-end off-chip miss latency, cycles (Table 1: ~400)", 1, 1<<24,
			func(o *Options) *uint64 { return &o.System.OffChipCycles }),
		FloatKnob("system.mlp", "average independent off-chip misses overlapped by the OoO core", 1, 64,
			func(o *Options) *float64 { return &o.System.MLP }),
		IntKnob("system.mem_channels", "memory channels for the bandwidth model", 1, 64,
			func(o *Options) *int { return &o.System.MemChannels }),
		Uint64Knob("system.channel_occupancy", "cycles one transfer occupies a channel", 0, 1<<20,
			func(o *Options) *uint64 { return &o.System.ChannelOccupancy }),
	)
	MustRegisterKnobs("run",
		BoolKnob("scientific", "force the deeper §4.3 scientific stream lookahead (default: the workload class decides)",
			func(o *Options) *bool { return &o.Scientific }),
		BoolKnob("adaptive_lookahead", "enable the streaming engine's dynamic lookahead extension",
			func(o *Options) *bool { return &o.AdaptiveLookahead }),
		BoolKnob("virtualized_meta", "route STeMS metadata through an on-chip cache (§6 predictor virtualization)",
			func(o *Options) *bool { return &o.VirtualizedMeta }),
		IntKnob("virtual_meta_cache_bytes", "metadata cache size when virtualized (0 selects the reference 64KB)", 0, 1<<30,
			func(o *Options) *int { return &o.VirtualMetaCacheBytes }),
	)
}
