package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"stems/internal/par"
	"stems/internal/trace"
)

// Lane is one member of a MachineSet: an independent machine plus the
// block cursor it replays. Lanes never share mutable state — each has its
// own caches, SVB, and predictor tables — which is what makes lockstep
// replay trivially byte-identical to running every lane alone.
type Lane struct {
	Machine *Machine
	Source  trace.BlockSource
}

// MachineSet advances K independent machines over columnar blocks as one
// lockstep set: one scheduling unit, one pass over each lane's columns,
// K predictor states. Two sharing shapes exist:
//
//   - NewSharedSet: every machine replays ONE shared block stream. Each
//     block is fetched once and stepped by all K machines back to back,
//     so the columns are resolved while hot in cache — the Figure 10
//     shape, where the stride baseline and the predictor kinds replay
//     the same (workload, seed) trace. The machines are deliberately
//     heterogeneous: any mix of predictor kinds, option sets, and even
//     observer-only baseline machines may share the cursor, which is what
//     lets a whole sweep grid over one trace (different predictors,
//     different knob values) execute as a single pass.
//
//   - NewMachineSet: each lane replays its own cursor (the seed-sweep
//     shape, where K runs differ only by workload seed and therefore by
//     trace). Serial execution interleaves lanes block by block; with
//     Parallelism > 1 lanes advance concurrently on a bounded pool.
//
// Either way the results are exactly those of running each machine alone
// over its stream: machines share no mutable state and blocks are
// read-only, so only the interleaving differs, never the outcome. The
// equivalence suite pins this per predictor and workload.
type MachineSet struct {
	lanes  []Lane
	shared trace.BlockSource // non-nil: every lane replays this stream

	// Parallelism bounds the worker goroutines (0 = GOMAXPROCS,
	// 1 = strictly serial lockstep). Shared sets step the same fetched
	// block on all machines concurrently with a per-block barrier; lane
	// sets give each worker whole lanes.
	Parallelism int

	// Progress, when non-nil, receives the cumulative number of accesses
	// replayed across every lane, once per block from the replaying
	// goroutine. With Parallelism > 1 it is invoked concurrently and must
	// be safe for concurrent use. Keep it cheap — it sits on the replay
	// path.
	Progress func(accessesDone uint64)

	replayed atomic.Uint64
}

// NewMachineSet builds a lockstep set of independent lanes, each with its
// own block cursor.
func NewMachineSet(lanes ...Lane) *MachineSet {
	return &MachineSet{lanes: lanes}
}

// NewSharedSet builds a lockstep set in which every machine replays the
// one shared block stream bs: a single cursor, fetched once per block,
// stepped by all machines.
func NewSharedSet(bs trace.BlockSource, machines ...*Machine) *MachineSet {
	lanes := make([]Lane, len(machines))
	for i, m := range machines {
		lanes[i] = Lane{Machine: m}
	}
	return &MachineSet{lanes: lanes, shared: bs}
}

// Len returns the number of lanes.
func (s *MachineSet) Len() int { return len(s.lanes) }

func (s *MachineSet) workers() int {
	w := s.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(s.lanes) {
		w = len(s.lanes)
	}
	return w
}

func (s *MachineSet) noteBlock(accesses int) {
	if s.Progress == nil {
		s.replayed.Add(uint64(accesses))
		return
	}
	s.Progress(s.replayed.Add(uint64(accesses)))
}

// Run replays every lane to exhaustion and returns the finalized results
// in lane order. The context cancels the set in flight, checked once per
// block round; on cancellation the partial results are discarded and only
// the error returns.
func (s *MachineSet) Run(ctx context.Context) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.shared != nil {
		if err := s.runShared(ctx); err != nil {
			return nil, err
		}
	} else if err := s.runLanes(ctx); err != nil {
		return nil, err
	}
	results := make([]Result, len(s.lanes))
	for i := range s.lanes {
		results[i] = s.lanes[i].Machine.Finish()
	}
	return results, nil
}

// runShared drains the one shared cursor, stepping each fetched block
// through every machine. Blocks are read-only to StepBlock, so the
// parallel path steps the same block on all machines at once and joins
// on a per-block barrier (the cursor may reuse the block buffer, so no
// lane can run ahead); the serial path steps them back to back while the
// columns are hot. Worker goroutines are bounded by Parallelism — lanes
// beyond the worker count queue on an atomic index, so a 16-lane set on
// a 2-core box spawns 2 steppers per block, not 16.
func (s *MachineSet) runShared(ctx context.Context) error {
	done := ctx.Done()
	workers := s.workers()
	var b trace.Block
	for s.shared.NextBlock(&b) {
		if workers > 1 {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(s.lanes) {
							return
						}
						s.lanes[i].Machine.StepBlock(&b)
					}
				}()
			}
			wg.Wait()
		} else {
			for i := range s.lanes {
				s.lanes[i].Machine.StepBlock(&b)
			}
		}
		s.noteBlock(b.N * len(s.lanes))
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}

// runLanes advances per-lane cursors. Serial execution interleaves the
// lanes block by block — lanes replaying views of one resident trace
// stay roughly in step, sharing the columns' cache residency — while the
// parallel path hands whole lanes to a bounded pool (the lanes share
// nothing, so there is no cross-lane synchronization to amortize).
func (s *MachineSet) runLanes(ctx context.Context) error {
	if s.workers() > 1 {
		_, err := par.Map(ctx, len(s.lanes), s.workers(),
			func(ctx context.Context, i int) (struct{}, error) {
				done := ctx.Done()
				var b trace.Block
				for s.lanes[i].Source.NextBlock(&b) {
					s.lanes[i].Machine.StepBlock(&b)
					s.noteBlock(b.N)
					select {
					case <-done:
						return struct{}{}, ctx.Err()
					default:
					}
				}
				return struct{}{}, nil
			})
		return err
	}
	done := ctx.Done()
	live := len(s.lanes)
	exhausted := make([]bool, len(s.lanes))
	var b trace.Block
	for live > 0 {
		for i := range s.lanes {
			if exhausted[i] {
				continue
			}
			if !s.lanes[i].Source.NextBlock(&b) {
				exhausted[i] = true
				live--
				continue
			}
			s.lanes[i].Machine.StepBlock(&b)
			s.noteBlock(b.N)
		}
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	return nil
}
