package sequitur

import "testing"

// FuzzGrammar feeds arbitrary byte strings (as small-alphabet symbol
// streams) to the grammar and checks the three soundness properties:
// lossless expansion, the two Sequitur invariants, and digram-index
// completeness.
func FuzzGrammar(f *testing.F) {
	f.Add([]byte("abab"), uint8(4))
	f.Add([]byte("aaaaaaa"), uint8(2))
	f.Add([]byte{0, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1}, uint8(2))
	f.Add([]byte("pease porridge hot pease porridge cold"), uint8(26))
	f.Fuzz(func(t *testing.T, raw []byte, alphabet uint8) {
		k := int(alphabet%30) + 2
		g := New()
		in := make([]uint64, len(raw))
		for i, b := range raw {
			in[i] = uint64(int(b) % k)
			g.Append(in[i])
		}
		if !eq(g.Expand(), in) {
			t.Fatalf("expansion mismatch for %v", in)
		}
		if v := g.CheckInvariants(); v != "" {
			t.Fatalf("%s for %v", v, in)
		}
		if !indexComplete(g) {
			t.Fatalf("incomplete digram index for %v", in)
		}
	})
}
