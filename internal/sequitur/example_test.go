package sequitur_test

import (
	"fmt"

	"stems/internal/sequitur"
)

// ExampleGrammar compresses the classic "abab": the grammar's root becomes
// two references to one rule whose body is "a b".
func ExampleGrammar() {
	g := sequitur.New()
	for _, c := range "abab" {
		g.Append(uint64(c))
	}
	root := g.RootSymbols()
	fmt.Println("root symbols:", len(root))
	fmt.Println("rules:", g.RuleCount())
	body := sequitur.Body(root[0].Rule)
	fmt.Printf("rule body: %c %c\n", rune(body[0].Terminal), rune(body[1].Terminal))
	fmt.Println("rule uses:", root[0].Rule.Uses())
	// Output:
	// root symbols: 2
	// rules: 1
	// rule body: a b
	// rule uses: 2
}
