package sequitur

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func build(input []uint64) *Grammar {
	g := New()
	for _, v := range input {
		g.Append(v)
	}
	return g
}

func str(s string) []uint64 {
	out := make([]uint64, len(s))
	for i := range s {
		out[i] = uint64(s[i])
	}
	return out
}

func eq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExpandReproducesInput(t *testing.T) {
	cases := [][]uint64{
		{},
		{1},
		{1, 2},
		{1, 1},
		{1, 1, 1},
		{1, 1, 1, 1},
		str("abab"),
		str("abcabc"),
		str("abcabcabc"),
		str("aaabaaab"),
		str("abracadabraabracadabra"),
		str("pease porridge hot, pease porridge cold"),
	}
	for _, in := range cases {
		g := build(in)
		if got := g.Expand(); !eq(got, in) {
			t.Errorf("Expand mismatch for %v: got %v", in, got)
		}
		if v := g.CheckInvariants(); v != "" {
			t.Errorf("invariants for %v: %s", in, v)
		}
	}
}

func TestABABFormsOneRule(t *testing.T) {
	// The canonical example: abab -> root: A A, A -> a b.
	g := build(str("abab"))
	if g.RuleCount() != 1 {
		t.Fatalf("rules = %d, want 1", g.RuleCount())
	}
	root := g.RootSymbols()
	if len(root) != 2 || root[0].Rule == nil || root[1].Rule == nil || root[0].Rule != root[1].Rule {
		t.Fatalf("root = %+v, want two references to the same rule", root)
	}
	body := Body(root[0].Rule)
	if len(body) != 2 || body[0].Terminal != 'a' || body[1].Terminal != 'b' {
		t.Fatalf("rule body = %+v, want [a b]", body)
	}
	if root[0].Rule.Uses() != 2 {
		t.Fatalf("rule uses = %d, want 2", root[0].Rule.Uses())
	}
}

func TestHierarchicalRules(t *testing.T) {
	// abcabcabc compresses with a rule for abc (possibly nested).
	g := build(str("abcabcabc"))
	if g.RuleCount() < 1 {
		t.Fatal("no rules formed")
	}
	if !eq(g.Expand(), str("abcabcabc")) {
		t.Fatal("expansion mismatch")
	}
}

func TestRuleUtilityInlining(t *testing.T) {
	// "abcdbcabcdbc": rule for bc forms, then rules for abcd..., and
	// intermediate rules used once must be inlined. The invariant checker
	// is the oracle here.
	in := str("abcdbcabcdbc")
	g := build(in)
	if v := g.CheckInvariants(); v != "" {
		t.Fatalf("invariant: %s", v)
	}
	if !eq(g.Expand(), in) {
		t.Fatal("expansion mismatch")
	}
}

func TestLenCountsTerminals(t *testing.T) {
	g := build(str("hello"))
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
}

func TestCompressionOnRepetitiveInput(t *testing.T) {
	// 64 copies of a 16-symbol phrase: the root must be far shorter than
	// the input.
	var in []uint64
	phrase := str("the quick brown ")
	for i := 0; i < 64; i++ {
		in = append(in, phrase...)
	}
	g := build(in)
	if len(g.RootSymbols()) >= len(in)/4 {
		t.Fatalf("root has %d symbols for input of %d — no compression", len(g.RootSymbols()), len(in))
	}
	if !eq(g.Expand(), in) {
		t.Fatal("expansion mismatch")
	}
}

func TestRandomInputsProperty(t *testing.T) {
	f := func(raw []byte, alphabet uint8) bool {
		k := int(alphabet%8) + 2
		in := make([]uint64, len(raw))
		for i, b := range raw {
			in[i] = uint64(int(b) % k)
		}
		g := build(in)
		return eq(g.Expand(), in) && g.CheckInvariants() == ""
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLongStructuredInput(t *testing.T) {
	// Miss-stream-like input: repetitive sequences with glitches, as in
	// §5.3's workload traces.
	rng := rand.New(rand.NewSource(3))
	var in []uint64
	seqs := make([][]uint64, 20)
	for i := range seqs {
		seqs[i] = make([]uint64, 10+rng.Intn(40))
		for j := range seqs[i] {
			seqs[i][j] = uint64(rng.Intn(5000))
		}
	}
	for len(in) < 50000 {
		s := seqs[rng.Intn(len(seqs))]
		for _, v := range s {
			if rng.Float64() < 0.02 {
				in = append(in, uint64(rng.Intn(5000))) // glitch
			}
			in = append(in, v)
		}
	}
	g := build(in)
	if !eq(g.Expand(), in) {
		t.Fatal("expansion mismatch on structured input")
	}
	if v := g.CheckInvariants(); v != "" {
		t.Fatalf("invariant: %s", v)
	}
	// Strong compression expected.
	if len(g.RootSymbols()) > len(in)/3 {
		t.Fatalf("weak compression: root %d of %d", len(g.RootSymbols()), len(in))
	}
}

func BenchmarkAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = uint64(rng.Intn(512))
	}
	b.ResetTimer()
	g := New()
	for i := 0; i < b.N; i++ {
		g.Append(vals[i%len(vals)])
	}
}

// indexComplete checks that every digram occurring in the grammar has an
// index entry — required for the online duplicate detection to be sound.
func indexComplete(g *Grammar) bool {
	ok := true
	g.walkRules(func(r *Rule) bool {
		for s := r.first(); s.kind != kindGuard && s.next.kind != kindGuard; s = s.next {
			if _, found := g.digrams[keyOf(s, s.next)]; !found {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// TestExhaustiveSmallInputs checks every input over alphabet {0,1,2} up to
// length 12: expansion must reproduce the input, both grammar invariants
// must hold, and the digram index must stay complete after every append.
func TestExhaustiveSmallInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search skipped in -short mode")
	}
	var rec func(in []uint64)
	rec = func(in []uint64) {
		if len(in) >= 1 {
			g := build(in)
			if !eq(g.Expand(), in) {
				t.Fatalf("expand mismatch for %v", in)
			}
			if v := g.CheckInvariants(); v != "" {
				t.Fatalf("%s for %v", v, in)
			}
			if !indexComplete(g) {
				t.Fatalf("incomplete digram index for %v", in)
			}
		}
		if len(in) >= 12 {
			return
		}
		buf := append([]uint64(nil), in...)
		for v := uint64(0); v < 3; v++ {
			rec(append(buf, v))
		}
	}
	rec(nil)
}

// Property: the index stays complete on random inputs with heavy runs
// (the overlapping-digram corner case).
func TestIndexCompletenessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		g := New()
		for _, b := range raw {
			// Alphabet of 3 with long runs.
			g.Append(uint64(b % 3))
			if !indexComplete(g) {
				return false
			}
		}
		return g.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
