// Package sequitur implements the Sequitur hierarchical grammar-compression
// algorithm of Nevill-Manning and Witten (reference [9] of the paper),
// which the paper uses to quantify temporal repetition in miss-address
// sequences (§5.3, Figure 7): "Sequitur constructs a grammar whose
// production rules correspond to repetitions in its input."
//
// The implementation maintains the algorithm's two invariants online:
//
//   - digram uniqueness: no pair of adjacent symbols appears more than once
//     in the grammar;
//   - rule utility: every rule except the root is referenced at least twice.
package sequitur

// symKind distinguishes terminals from rule references.
type symKind uint8

const (
	kindTerminal symKind = iota
	kindRule
	kindGuard
)

// symbol is a node in a rule's circular doubly-linked list.
type symbol struct {
	next, prev *symbol
	kind       symKind
	value      uint64 // terminal payload
	rule       *Rule  // referenced rule (kindRule) or owner (kindGuard)
}

// Rule is one production. Its body is a circular list anchored at guard.
type Rule struct {
	ID    int
	guard *symbol
	refs  map[*symbol]struct{} // referencing symbols in other rules
}

func newRule(id int) *Rule {
	r := &Rule{ID: id, refs: make(map[*symbol]struct{}, 2)}
	g := &symbol{kind: kindGuard, rule: r}
	g.next, g.prev = g, g
	r.guard = g
	return r
}

func (r *Rule) first() *symbol { return r.guard.next }
func (r *Rule) last() *symbol  { return r.guard.prev }

// digramKey identifies a pair of adjacent symbols.
type digramKey struct {
	aKind, bKind symKind
	a, b         uint64
}

func symID(s *symbol) uint64 {
	if s.kind == kindRule {
		return uint64(s.rule.ID)
	}
	return s.value
}

func keyOf(a, b *symbol) digramKey {
	return digramKey{aKind: a.kind, bKind: b.kind, a: symID(a), b: symID(b)}
}

// Grammar is an online Sequitur grammar.
type Grammar struct {
	root    *Rule
	digrams map[digramKey]*symbol // first symbol of the unique occurrence
	nextID  int
	length  int // terminals appended
}

// New creates an empty grammar.
func New() *Grammar {
	g := &Grammar{digrams: make(map[digramKey]*symbol), nextID: 1}
	g.root = newRule(0)
	return g
}

// Len returns the number of terminals appended so far.
func (g *Grammar) Len() int { return g.length }

// Append extends the input sequence by one terminal, restoring the grammar
// invariants.
func (g *Grammar) Append(v uint64) {
	g.length++
	s := &symbol{kind: kindTerminal, value: v}
	g.insertAfter(g.root.last(), s)
	g.check(s.prev)
}

// insertAfter links n after pos (no invariant maintenance).
func (g *Grammar) insertAfter(pos, n *symbol) {
	n.prev = pos
	n.next = pos.next
	pos.next.prev = n
	pos.next = n
}

// removeDigram unindexes the digram starting at s if s is its indexed
// occurrence, reporting whether an entry was deleted.
func (g *Grammar) removeDigram(s *symbol) bool {
	if s.kind == kindGuard || s.next.kind == kindGuard {
		return false
	}
	k := keyOf(s, s.next)
	if g.digrams[k] == s {
		delete(g.digrams, k)
		return true
	}
	return false
}

// symEq reports whether two symbols denote the same terminal or rule.
func symEq(a, b *symbol) bool {
	return a.kind == b.kind && symID(a) == symID(b)
}

// unlink removes s from its list, unindexing the digrams it participates
// in. Runs of identical symbols ("aaa") hold overlapping occurrences of a
// digram with only one indexed; if the indexed occurrence dies, a surviving
// overlapped occurrence must be re-indexed or later duplicates would go
// undetected.
func (g *Grammar) unlink(s *symbol) {
	p, nx := s.prev, s.next
	r1 := g.removeDigram(p) // digram (p, s)
	r2 := g.removeDigram(s) // digram (s, nx)
	p.next = nx
	nx.prev = p
	if r1 && p.kind != kindGuard && p.prev.kind != kindGuard &&
		symEq(p.prev, p) && symEq(p, s) {
		g.digrams[keyOf(p.prev, p)] = p.prev
	}
	if r2 && nx.kind != kindGuard && nx.next.kind != kindGuard &&
		symEq(s, nx) && symEq(nx, nx.next) {
		g.digrams[keyOf(nx, nx.next)] = nx
	}
}

// check enforces digram uniqueness for the digram beginning at s. Returns
// true if the grammar changed.
func (g *Grammar) check(s *symbol) bool {
	if s == nil || s.kind == kindGuard || s.next.kind == kindGuard {
		return false
	}
	k := keyOf(s, s.next)
	other, ok := g.digrams[k]
	if !ok {
		g.digrams[k] = s
		return false
	}
	if other == s {
		return false
	}
	if other.next == s {
		// Overlapping occurrence (aaa): leave as is.
		return false
	}
	g.match(s, other)
	return true
}

// match resolves a repeated digram: either reuse an existing whole rule or
// create a new one.
func (g *Grammar) match(s, other *symbol) {
	// If the other occurrence is exactly the body of a rule, reuse it.
	if other.prev.kind == kindGuard && other.next.next.kind == kindGuard {
		r := other.prev.rule
		g.substitute(s, r)
		return
	}
	// Otherwise make a new rule for the digram.
	r := newRule(g.nextID)
	g.nextID++
	a := g.copySym(other)
	b := g.copySym(other.next)
	g.insertAfter(r.guard, a)
	g.insertAfter(a, b)
	// Replace both occurrences (`other` first, as in the reference
	// implementation), then point the digram index at the rule body.
	g.substitute(other, r)
	g.substitute(s, r)
	g.digrams[keyOf(a, b)] = a
}

// copySym clones a symbol's content (not its links).
func (g *Grammar) copySym(s *symbol) *symbol {
	n := &symbol{kind: s.kind, value: s.value, rule: s.rule}
	if n.kind == kindRule {
		n.rule.refs[n] = struct{}{}
	}
	return n
}

// substitute replaces the digram starting at s with a reference to r,
// then restores invariants around the new symbol.
func (g *Grammar) substitute(s *symbol, r *Rule) {
	prev := s.prev
	b := s.next
	g.unlink(s)
	g.unlink(b)
	g.release(s)
	g.release(b)
	ref := &symbol{kind: kindRule, rule: r}
	r.refs[ref] = struct{}{}
	g.insertAfter(prev, ref)
	if !g.check(prev) {
		g.check(ref)
	}
}

// release drops a symbol's rule reference, enforcing rule utility: a rule
// referenced once gets inlined at its remaining use.
func (g *Grammar) release(s *symbol) {
	if s.kind != kindRule {
		return
	}
	delete(s.rule.refs, s)
	if len(s.rule.refs) == 1 {
		g.expandLastUse(s.rule)
	}
}

// expandLastUse inlines rule r at its single remaining reference.
func (g *Grammar) expandLastUse(r *Rule) {
	var ref *symbol
	for s := range r.refs {
		ref = s
	}
	if ref == nil {
		return
	}
	prev := ref.prev
	first := r.first()
	last := r.last()
	if first.kind == kindGuard {
		// Empty rule; just drop the reference.
		g.unlink(ref)
		delete(r.refs, ref)
		return
	}
	nx := ref.next
	r1 := g.removeDigram(ref.prev) // digram (prev, ref)
	r2 := g.removeDigram(ref)      // digram (ref, nx)
	// Splice the rule body in place of ref.
	ref.prev.next = first
	first.prev = ref.prev
	nx.prev = last
	last.next = nx
	delete(r.refs, ref)
	// Re-index surviving overlapped run occurrences (see unlink).
	if r1 && prev.kind != kindGuard && prev.prev.kind != kindGuard &&
		symEq(prev.prev, prev) && symEq(prev, ref) {
		g.digrams[keyOf(prev.prev, prev)] = prev.prev
	}
	if r2 && nx.kind != kindGuard && nx.next.kind != kindGuard &&
		symEq(ref, nx) && symEq(nx, nx.next) {
		g.digrams[keyOf(nx, nx.next)] = nx
	}
	// Reindex the seam digrams.
	g.indexSeam(prev)
	g.indexSeam(last)
}

// indexSeam re-registers the digram starting at s without triggering
// recursive rewrites (the body was already invariant-correct).
func (g *Grammar) indexSeam(s *symbol) {
	if s == nil || s.kind == kindGuard || s.next.kind == kindGuard {
		return
	}
	k := keyOf(s, s.next)
	if _, ok := g.digrams[k]; !ok {
		g.digrams[k] = s
	}
}

// walkRules visits the root and every rule reachable from it. fn returning
// false stops the walk.
func (g *Grammar) walkRules(fn func(*Rule) bool) {
	seen := map[*Rule]bool{g.root: true}
	queue := []*Rule{g.root}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		if !fn(r) {
			return
		}
		for s := r.first(); s.kind != kindGuard; s = s.next {
			if s.kind == kindRule && !seen[s.rule] {
				seen[s.rule] = true
				queue = append(queue, s.rule)
			}
		}
	}
}

// Sym is the exported view of a grammar symbol.
type Sym struct {
	// Terminal is the value for terminal symbols.
	Terminal uint64
	// Rule is non-nil for rule references.
	Rule *Rule
}

// RootSymbols returns the root production's symbols in order.
func (g *Grammar) RootSymbols() []Sym { return ruleSymbols(g.root) }

// Body returns a rule's symbols in order.
func Body(r *Rule) []Sym { return ruleSymbols(r) }

func ruleSymbols(r *Rule) []Sym {
	var out []Sym
	for s := r.first(); s.kind != kindGuard; s = s.next {
		if s.kind == kindRule {
			out = append(out, Sym{Rule: s.rule})
		} else {
			out = append(out, Sym{Terminal: s.value})
		}
	}
	return out
}

// Uses returns the rule's reference count.
func (r *Rule) Uses() int { return len(r.refs) }

// Expand reproduces the original input sequence from the grammar.
func (g *Grammar) Expand() []uint64 {
	var out []uint64
	var rec func(r *Rule)
	rec = func(r *Rule) {
		for s := r.first(); s.kind != kindGuard; s = s.next {
			if s.kind == kindRule {
				rec(s.rule)
			} else {
				out = append(out, s.value)
			}
		}
	}
	rec(g.root)
	return out
}

// RuleCount returns the number of live rules (excluding the root).
func (g *Grammar) RuleCount() int {
	n := -1
	g.walkRules(func(*Rule) bool { n++; return true })
	return n
}

// CheckInvariants verifies digram uniqueness and rule utility, returning a
// description of the first violation ("" if none). Used by property tests.
func (g *Grammar) CheckInvariants() string {
	type occ struct {
		rule *Rule
		pos  int
	}
	seen := make(map[digramKey]occ)
	violation := ""
	g.walkRules(func(r *Rule) bool {
		pos := 0
		for s := r.first(); s.kind != kindGuard && s.next.kind != kindGuard; s = s.next {
			k := keyOf(s, s.next)
			if prev, ok := seen[k]; ok {
				// Overlapping digrams in a run (aaa) are permitted.
				if !(prev.rule == r && prev.pos == pos-1) {
					violation = "digram uniqueness violated"
					return false
				}
			}
			seen[k] = occ{rule: r, pos: pos}
			pos++
		}
		if r != g.root && len(r.refs) < 2 {
			violation = "rule utility violated"
			return false
		}
		return true
	})
	return violation
}
