// Package predictors links every built-in predictor into the binary.
// Importing it (blank) triggers each predictor package's self-registration
// with the sim registry, making all seven paper kinds resolvable through
// sim.Build. The public stems package imports it, so users of the public
// API never need to.
package predictors

import (
	_ "stems/internal/core"   // stems
	_ "stems/internal/epoch"  // epoch
	_ "stems/internal/hybrid" // naive-hybrid
	_ "stems/internal/sms"    // sms
	_ "stems/internal/stride" // stride
	_ "stems/internal/tms"    // tms
)
