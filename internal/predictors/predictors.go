// Package predictors links every built-in predictor into the binary.
// Importing it (blank) triggers each predictor package's self-registration
// with the sim registry, making all seven paper kinds resolvable through
// sim.Build — and, since each register.go also registers and binds its
// knob table, making every predictor's parameters introspectable and
// settable through the typed knob registry (sim.KnobsFor, sim.ApplyKnobs).
// The public stems package imports it, so users of the public API never
// need to.
package predictors

import (
	_ "stems/internal/core"   // stems
	_ "stems/internal/epoch"  // epoch
	_ "stems/internal/hybrid" // naive-hybrid
	_ "stems/internal/sms"    // sms
	_ "stems/internal/stride" // stride
	_ "stems/internal/tms"    // tms
)
