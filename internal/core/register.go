package core

import (
	"stems/internal/sim"
	"stems/internal/stream"
)

func init() {
	sim.MustRegisterKnobs("stems",
		sim.IntKnob("stems.rmob_entries", "region miss-order buffer entries (§4.3: 128K)", 1, 1<<24,
			func(o *sim.Options) *int { return &o.STeMS.RMOBEntries }),
		sim.IntKnob("stems.pst_entries", "pattern sequence table entries (§4.3: 16K)", 1, 1<<24,
			func(o *sim.Options) *int { return &o.STeMS.PSTEntries }),
		sim.IntKnob("stems.pst_ways", "pattern sequence table associativity", 1, 64,
			func(o *sim.Options) *int { return &o.STeMS.PSTWays }),
		sim.IntKnob("stems.agt_entries", "active generation table entries (§4.3: 64)", 1, 1<<20,
			func(o *sim.Options) *int { return &o.STeMS.AGTEntries }),
		sim.IntKnob("stems.recon_buf_entries", "reconstruction buffer length (§4.3: 256)", 1, 1<<20,
			func(o *sim.Options) *int { return &o.STeMS.ReconBufEntries }),
		sim.IntKnob("stems.recon_search", "±slots searched for a free reconstruction slot (§4.3: 2)", 0, 64,
			func(o *sim.Options) *int { return &o.STeMS.ReconSearch }),
		sim.IntKnob("stems.stream_queues", "concurrently tracked streams (§4.3: 8)", 1, 256,
			func(o *sim.Options) *int { return &o.STeMS.StreamQueues }),
		sim.IntKnob("stems.lookahead", "blocks kept in flight per stream (8 commercial, 12 scientific)", 1, 256,
			func(o *sim.Options) *int { return &o.STeMS.Lookahead }),
		sim.IntKnob("stems.svb_entries", "streamed value buffer capacity (§4.3: 64)", 1, 1<<16,
			func(o *sim.Options) *int { return &o.STeMS.SVBEntries }),
		sim.BoolKnob("stems.use_counters", "2-bit saturating counters per PST block instead of a bit vector",
			func(o *sim.Options) *bool { return &o.STeMS.UseCounters }),
		sim.Uint8Knob("stems.counter_threshold", "minimum counter value considered stable", 0, 3,
			func(o *sim.Options) *uint8 { return &o.STeMS.CounterThreshold }),
	)
	sim.BindKnobs(sim.KindSTeMS, "stems")
	sim.MustRegister(sim.KindSTeMS, func(m *sim.Machine, opt sim.Options) error {
		sc := opt.STeMS
		sc.Lookahead = opt.StreamLookahead(sc.Lookahead)
		eng := m.AttachEngine(stream.Config{
			Queues: sc.StreamQueues, Lookahead: sc.Lookahead, SVBEntries: sc.SVBEntries,
			Adaptive: opt.AdaptiveLookahead,
		})
		st := New(sc, eng)
		if opt.VirtualizedMeta {
			size := opt.VirtualMetaCacheBytes
			if size <= 0 {
				size = 64 << 10 // a few L2 ways, as in [2]
			}
			mm := NewMetaModel(size)
			mm.Transfer = m.ChargeTransfer
			st.SetMetaModel(mm)
		}
		m.SetPrefetcher(st)
		return nil
	})
}

// ContributeResult implements sim.ResultContributor: reconstruction
// placement outcomes surface in the run Result so callers outside this
// package (cmd/sweep, the public API) can report the §4.3 drop rate.
func (s *STeMS) ContributeResult(r *sim.Result) {
	rs := s.recon.Stats()
	r.ReconPlacedExact = rs.PlacedExact
	r.ReconPlacedNear = rs.PlacedNear
	r.ReconDropped = rs.Dropped
}
