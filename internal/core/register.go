package core

import (
	"stems/internal/sim"
	"stems/internal/stream"
)

func init() {
	sim.MustRegister(sim.KindSTeMS, func(m *sim.Machine, opt sim.Options) error {
		sc := opt.STeMS
		sc.Lookahead = opt.StreamLookahead(sc.Lookahead)
		eng := m.AttachEngine(stream.Config{
			Queues: sc.StreamQueues, Lookahead: sc.Lookahead, SVBEntries: sc.SVBEntries,
			Adaptive: opt.AdaptiveLookahead,
		})
		st := New(sc, eng)
		if opt.VirtualizedMeta {
			size := opt.VirtualMetaCacheBytes
			if size <= 0 {
				size = 64 << 10 // a few L2 ways, as in [2]
			}
			mm := NewMetaModel(size)
			mm.Transfer = m.ChargeTransfer
			st.SetMetaModel(mm)
		}
		m.SetPrefetcher(st)
		return nil
	})
}

// ContributeResult implements sim.ResultContributor: reconstruction
// placement outcomes surface in the run Result so callers outside this
// package (cmd/sweep, the public API) can report the §4.3 drop rate.
func (s *STeMS) ContributeResult(r *sim.Result) {
	rs := s.recon.Stats()
	r.ReconPlacedExact = rs.PlacedExact
	r.ReconPlacedNear = rs.PlacedNear
	r.ReconDropped = rs.Dropped
}
