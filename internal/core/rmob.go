package core

import (
	"stems/internal/flat"
	"stems/internal/mem"
)

// RMOBEntry is one record of the region miss-order buffer: the miss block
// address, the PC of the missing instruction (for the spatial lookup
// index), and the reconstruction delta — global miss-order events skipped
// since the previous RMOB append (§4.1: "Each RMOB entry contains the block
// address, the PC of the miss instruction, and the reconstruction delta").
type RMOBEntry struct {
	Block mem.Addr
	PC    uint64
	Delta uint8
}

// RMOB is the region miss order buffer: a circular buffer in (simulated)
// main memory holding the temporal sequence of spatial triggers and
// spatially-unpredicted misses, plus an index mapping each block address to
// its most recent position. Spatially predictable misses are filtered out,
// which is why the paper's RMOB (128K entries) is one third the size of
// TMS's CMOB (§4.3).
//
// The index is an open-addressed flat table (it sits on the per-miss path)
// with headroom beyond the ring size so it absorbs lapped-but-undeleted
// keys. When it fills with stale mappings it is rebuilt from the live ring
// — an O(ring) sweep amortized over at least a quarter-ring of appends —
// so Append/Lookup never allocate.
type RMOB struct {
	ring    []RMOBEntry
	mask    uint64 // len(ring)-1 when the ring is a power of two, else 0
	appends uint64
	index   *flat.U64Table[uint64]

	staleLookups uint64
	reindexes    uint64
}

// NewRMOB creates a buffer with the given entry capacity.
func NewRMOB(entries int) *RMOB {
	if entries <= 0 {
		panic("core: non-positive RMOB capacity")
	}
	r := &RMOB{
		ring: make([]RMOBEntry, entries),
		// Capacity 1.25x the ring: live keys never exceed the ring size,
		// so every reindex frees at least a quarter-ring of insert room.
		index: flat.NewU64Table[uint64](entries + entries/4),
	}
	if entries&(entries-1) == 0 {
		r.mask = uint64(entries - 1)
	}
	return r
}

// slot maps an absolute position onto the ring. The paper's sizes are
// powers of two, where the mask avoids a hardware divide on a path taken
// several times per simulated access.
func (r *RMOB) slot(pos uint64) uint64 {
	if r.mask != 0 {
		return pos & r.mask
	}
	return pos % uint64(len(r.ring))
}

// Append records an entry and indexes it as the most recent occurrence of
// its block.
func (r *RMOB) Append(e RMOBEntry) {
	r.ring[r.slot(r.appends)] = e
	if r.index.Full() {
		r.reindex()
	}
	r.index.Put(uint64(e.Block), r.appends)
	r.appends++
}

// reindex rebuilds the address index from the live ring contents, shedding
// every mapping the ring has lapped. Live entries number at most len(ring),
// below the index capacity, so the rebuilt table is never full.
func (r *RMOB) reindex() {
	r.index.Clear()
	start := uint64(0)
	if r.appends > uint64(len(r.ring)) {
		start = r.appends - uint64(len(r.ring))
	}
	for p := start; p < r.appends; p++ {
		// Later positions overwrite earlier ones, leaving each block
		// mapped to its most recent live occurrence.
		r.index.Put(uint64(r.ring[r.slot(p)].Block), p)
	}
	r.reindexes++
}

// Lookup returns the most recent live position of block. Stale index
// entries (lapped by the ring) are detected and discarded.
func (r *RMOB) Lookup(block mem.Addr) (uint64, bool) {
	pos, ok := r.index.Get(uint64(block))
	if !ok {
		return 0, false
	}
	if r.appends-pos > uint64(len(r.ring)) || r.ring[r.slot(pos)].Block != block {
		r.staleLookups++
		r.index.Delete(uint64(block))
		return 0, false
	}
	return pos, true
}

// At returns the entry at an absolute position; ok is false if the position
// has been overwritten or not yet written.
func (r *RMOB) At(pos uint64) (RMOBEntry, bool) {
	if pos >= r.appends || r.appends-pos > uint64(len(r.ring)) {
		return RMOBEntry{}, false
	}
	return r.ring[r.slot(pos)], true
}

// Appends returns the total number of entries ever appended.
func (r *RMOB) Appends() uint64 { return r.appends }

// Len returns the number of live entries.
func (r *RMOB) Len() int {
	if r.appends < uint64(len(r.ring)) {
		return int(r.appends)
	}
	return len(r.ring)
}

// StaleLookups returns the number of index entries found lapped.
func (r *RMOB) StaleLookups() uint64 { return r.staleLookups }

// Reindexes returns the number of in-place index rebuilds.
func (r *RMOB) Reindexes() uint64 { return r.reindexes }
