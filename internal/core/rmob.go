package core

import "stems/internal/mem"

// RMOBEntry is one record of the region miss-order buffer: the miss block
// address, the PC of the missing instruction (for the spatial lookup
// index), and the reconstruction delta — global miss-order events skipped
// since the previous RMOB append (§4.1: "Each RMOB entry contains the block
// address, the PC of the miss instruction, and the reconstruction delta").
type RMOBEntry struct {
	Block mem.Addr
	PC    uint64
	Delta uint8
}

// RMOB is the region miss order buffer: a circular buffer in (simulated)
// main memory holding the temporal sequence of spatial triggers and
// spatially-unpredicted misses, plus an index mapping each block address to
// its most recent position. Spatially predictable misses are filtered out,
// which is why the paper's RMOB (128K entries) is one third the size of
// TMS's CMOB (§4.3).
type RMOB struct {
	ring    []RMOBEntry
	appends uint64
	index   map[mem.Addr]uint64

	staleLookups uint64
}

// NewRMOB creates a buffer with the given entry capacity.
func NewRMOB(entries int) *RMOB {
	if entries <= 0 {
		panic("core: non-positive RMOB capacity")
	}
	return &RMOB{
		ring:  make([]RMOBEntry, entries),
		index: make(map[mem.Addr]uint64),
	}
}

// Append records an entry and indexes it as the most recent occurrence of
// its block.
func (r *RMOB) Append(e RMOBEntry) {
	r.ring[r.appends%uint64(len(r.ring))] = e
	r.index[e.Block] = r.appends
	r.appends++
}

// Lookup returns the most recent live position of block. Stale index
// entries (lapped by the ring) are detected and discarded.
func (r *RMOB) Lookup(block mem.Addr) (uint64, bool) {
	pos, ok := r.index[block]
	if !ok {
		return 0, false
	}
	if r.appends-pos > uint64(len(r.ring)) || r.ring[pos%uint64(len(r.ring))].Block != block {
		r.staleLookups++
		delete(r.index, block)
		return 0, false
	}
	return pos, true
}

// At returns the entry at an absolute position; ok is false if the position
// has been overwritten or not yet written.
func (r *RMOB) At(pos uint64) (RMOBEntry, bool) {
	if pos >= r.appends || r.appends-pos > uint64(len(r.ring)) {
		return RMOBEntry{}, false
	}
	return r.ring[pos%uint64(len(r.ring))], true
}

// Appends returns the total number of entries ever appended.
func (r *RMOB) Appends() uint64 { return r.appends }

// Len returns the number of live entries.
func (r *RMOB) Len() int {
	if r.appends < uint64(len(r.ring)) {
		return int(r.appends)
	}
	return len(r.ring)
}

// StaleLookups returns the number of index entries found lapped.
func (r *RMOB) StaleLookups() uint64 { return r.staleLookups }
