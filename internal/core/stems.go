// Package core implements Spatio-Temporal Memory Streaming (STeMS), the
// paper's contribution (§3–§4).
//
// STeMS records the temporal sequence of spatial-region triggers (and
// spatially-unpredicted misses) in the region miss order buffer (RMOB),
// and the ordered access sequence within each region in the pattern
// sequence table (PST). Every event carries a delta — the number of global
// miss-order events interleaved since the previous event of its own stream.
// On an unpredicted off-chip miss, STeMS locates the previous occurrence of
// the address in the RMOB and *reconstructs* the total predicted miss order
// by interleaving temporal entries and their spatial sequences according to
// the deltas (Figure 5), then streams the result through stream queues and
// the streamed value buffer. Compulsory-miss regions are covered by
// spatial-only streams (§4.2).
package core

import (
	"stems/internal/config"
	"stems/internal/lru"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

// Stats counts STeMS activity.
type Stats struct {
	Events             uint64 // off-chip read events observed
	Triggers           uint64 // spatial generations opened
	RMOBAppends        uint64 // entries recorded (triggers + spatial misses)
	SpatialFiltered    uint64 // events omitted from the RMOB (spatially predicted)
	ReconStreams       uint64 // streams begun from RMOB reconstruction
	SpatialOnlyStreams uint64 // streams begun from the PST alone
	LookupMisses       uint64 // unpredicted misses with no RMOB occurrence
	Retired            uint64 // generations trained into the PST
}

// agtGen is one active generation in the (sequence-recording) AGT.
type agtGen struct {
	trigger   mem.Addr // trigger block address
	pc        uint64   // trigger PC
	observed  uint32   // absolute region offsets recorded this generation
	elems     []SeqElem
	lastEvent uint64 // global event index of the last recorded access
}

// STeMS is the prefetcher. With a nil engine it trains without issuing
// fetches (analysis mode).
type STeMS struct {
	cfg    config.STeMS
	engine *stream.Engine

	pst   *PST
	rmob  *RMOB
	recon *Reconstructor
	agt   *lru.U64Map[*agtGen] // keyed by uint64(region)

	// reconRegions remembers, per region, the spatial lookup index used
	// during recent reconstructions — the state against which new
	// generations are compared to detect the need for spatial-only
	// streams (§4.2).
	reconRegions *lru.U64Map[uint64] // keyed by uint64(region); value Key.pack()

	eventIdx      uint64 // global off-chip read event counter
	lastRMOBEvent uint64 // eventIdx at the most recent RMOB append

	// meta, if non-nil, models predictor virtualization: every off-chip
	// metadata structure access (PST entries, RMOB segments) goes through
	// a small on-chip metadata cache whose misses consume real bandwidth.
	meta *MetaModel

	// Replay-loop scratch, reused so the per-access path stays
	// allocation-free in steady state: retired generations are recycled,
	// every reconstructed stream shares one refill closure (per-stream
	// position lives in Queue.Cursor), and the spatial-only path builds
	// into persistent buffers (the engine copies them into queue storage).
	genFree  []*agtGen
	refillFn func(q *stream.Queue)
	seqBuf   []SeqElem
	blockBuf []mem.Addr

	stats Stats
}

// New creates a STeMS prefetcher streaming through engine (which may be nil
// for analysis mode).
func New(cfg config.STeMS, engine *stream.Engine) *STeMS {
	if cfg.RMOBEntries <= 0 {
		cfg = config.DefaultSTeMS()
	}
	pst := NewPST(cfg.PSTEntries, cfg.UseCounters, cfg.CounterThreshold)
	rmob := NewRMOB(cfg.RMOBEntries)
	s := &STeMS{
		cfg:          cfg,
		engine:       engine,
		pst:          pst,
		rmob:         rmob,
		recon:        NewReconstructor(pst, rmob, cfg.ReconBufEntries, cfg.ReconSearch),
		agt:          lru.NewU64[*agtGen](cfg.AGTEntries),
		reconRegions: lru.NewU64[uint64](4096),
		genFree:      make([]*agtGen, 0, cfg.AGTEntries+1),
	}
	s.refillFn = s.refillStream
	return s
}

// Name implements the Prefetcher interface.
func (s *STeMS) Name() string { return "stems" }

// Stats returns cumulative statistics.
func (s *STeMS) Stats() Stats { return s.stats }

// PST exposes the pattern sequence table (read-only use).
func (s *STeMS) PST() *PST { return s.pst }

// RMOB exposes the region miss order buffer (read-only use).
func (s *STeMS) RMOB() *RMOB { return s.rmob }

// ReconStats returns reconstruction placement statistics.
func (s *STeMS) ReconStats() ReconStats { return s.recon.Stats() }

// SetMetaModel enables predictor virtualization (§6 / reference [2]):
// metadata accesses are filtered through mm's on-chip cache, with misses
// charged to memory bandwidth via mm.Transfer.
func (s *STeMS) SetMetaModel(mm *MetaModel) { s.meta = mm }

// Meta returns the virtualization model, if enabled.
func (s *STeMS) Meta() *MetaModel { return s.meta }

// OnAccess implements the Prefetcher interface. STeMS trains at off-chip
// event granularity (the sequences being reconstructed are sequences of
// off-chip misses), so L1-visible traffic needs no handling here.
func (s *STeMS) OnAccess(trace.Access, bool) {}

// OnL1Evict ends the generation containing the evicted block, committing
// its observed sequence to the PST (§4.1).
func (s *STeMS) OnL1Evict(block mem.Addr) {
	region := block.Region()
	g, ok := s.agt.Peek(uint64(region))
	if !ok {
		return
	}
	if g.observed&(1<<block.RegionOffset()) == 0 {
		return
	}
	s.agt.Delete(uint64(region))
	s.retire(g)
}

// retire trains the PST with a finished generation and recycles its
// storage.
func (s *STeMS) retire(g *agtGen) {
	s.stats.Retired++
	k := Key{PC: g.pc, Offset: g.trigger.RegionOffset()}
	if s.meta != nil {
		s.meta.TouchPST(k)
	}
	s.pst.Train(k, g.elems)
	g.elems = g.elems[:0]
	if len(s.genFree) < cap(s.genFree) {
		s.genFree = append(s.genFree, g)
	}
}

// newGen pops a recycled generation record, or allocates while the pool is
// still warming up.
func (s *STeMS) newGen() *agtGen {
	if n := len(s.genFree); n > 0 {
		g := s.genFree[n-1]
		s.genFree = s.genFree[:n-1]
		*g = agtGen{elems: g.elems[:0]}
		return g
	}
	return &agtGen{}
}

func clampDelta(cur, prev uint64) uint8 {
	d := cur - prev - 1
	if d > 255 {
		return 255
	}
	return uint8(d)
}

// OnOffChipEvent observes one off-chip read event (covered = satisfied by
// the SVB). It performs both training (AGT sequences, RMOB appends with
// spatial filtering) and prediction (reconstructed streams on unpredicted
// misses; spatial-only streams for new generations the reconstruction did
// not anticipate).
func (s *STeMS) OnOffChipEvent(a trace.Access, covered bool) {
	if a.Write {
		return
	}
	s.eventIdx++
	block := a.Addr.Block()
	region := block.Region()

	// Locate the previous occurrence before training appends this one.
	var prevPos uint64
	prevOK := false
	if !covered {
		prevPos, prevOK = s.rmob.Lookup(block)
	}

	isTrigger := false
	var trigKey Key
	if g, ok := s.agt.Get(uint64(region)); ok {
		bit := uint32(1) << block.RegionOffset()
		if g.observed&bit == 0 {
			g.observed |= bit
			rel := int8(block.RegionOffset() - g.trigger.RegionOffset())
			g.elems = append(g.elems, SeqElem{
				Offset: rel,
				Delta:  clampDelta(s.eventIdx, g.lastEvent),
			})
			g.lastEvent = s.eventIdx
			// RMOB filter (§4.1): spatially predicted misses are omitted;
			// spatial *misses* (unpredicted by the PST) are appended.
			genKey := Key{PC: g.pc, Offset: g.trigger.RegionOffset()}
			if s.meta != nil {
				s.meta.TouchPST(genKey)
			}
			if s.pst.Predicts(s.pst.Lookup(genKey), rel) {
				s.stats.SpatialFiltered++
			} else {
				s.appendRMOB(block, a.PC)
			}
		}
	} else {
		// Trigger: open a generation.
		isTrigger = true
		s.stats.Triggers++
		trigKey = Key{PC: a.PC, Offset: block.RegionOffset()}
		g := s.newGen()
		g.trigger = block
		g.pc = a.PC
		g.observed = uint32(1) << block.RegionOffset()
		g.lastEvent = s.eventIdx
		if _, victim, ev := s.agt.Put(uint64(region), g); ev {
			s.retire(victim)
		}
		s.appendRMOB(block, a.PC)
	}

	s.stats.Events++

	// Prediction side.
	reconStarted := false
	if !covered {
		if prevOK {
			s.startReconStream(block, prevPos)
			reconStarted = true
		} else {
			s.stats.LookupMisses++
		}
	}
	if isTrigger && !reconStarted {
		s.maybeSpatialOnly(block, trigKey, covered)
	}
}

func (s *STeMS) appendRMOB(block mem.Addr, pc uint64) {
	if s.meta != nil {
		s.meta.TouchRMOB(s.rmob.Appends())
	}
	s.rmob.Append(RMOBEntry{
		Block: block,
		PC:    pc,
		Delta: clampDelta(s.eventIdx, s.lastRMOBEvent),
	})
	s.lastRMOBEvent = s.eventIdx
	s.stats.RMOBAppends++
}

// startReconStream begins a reconstructed stream: the window starts at the
// *previous* occurrence of the missed block, so its spatial sequence (and
// everything that followed it last time) forms the predicted order. The
// stream's RMOB read position lives in Queue.Cursor so reconstruction
// resumes from where it left off on refill (§4.2).
func (s *STeMS) startReconStream(missBlock mem.Addr, prevPos uint64) {
	if s.engine == nil {
		return
	}
	pos := prevPos
	blocks := s.reconWindow(&pos)
	// The initiating miss itself is already being fetched on demand.
	if len(blocks) > 0 && blocks[0] == missBlock {
		blocks = blocks[1:]
	}
	if len(blocks) == 0 {
		return
	}
	s.stats.ReconStreams++
	q := s.engine.NewStream(blocks)
	q.Cursor = pos
	q.Refill = s.refillFn
}

// refillStream is the shared Refill hook for every reconstructed stream.
func (s *STeMS) refillStream(q *stream.Queue) {
	pos := q.Cursor
	more := s.reconWindow(&pos)
	q.Cursor = pos
	if len(more) > 0 {
		s.engine.Extend(q, more)
	}
}

// onReconRegion is the reconstruction notification hook. Window already
// folds the per-entry notifications down to one per distinct region in
// last-use order, so a plain Put per call reproduces the per-entry
// recency state exactly (the map is region-keyed, last writer wins).
func (s *STeMS) onReconRegion(region mem.Addr, k Key) {
	s.reconRegions.Put(uint64(region), k.pack())
}

func (s *STeMS) reconWindow(pos *uint64) []mem.Addr {
	before := *pos
	out := s.recon.Window(pos, s.onReconRegion)
	if s.meta != nil {
		// Reconstruction read the RMOB entries in [before, *pos) and
		// performed one PST lookup per entry (§4.2).
		for p := before; p < *pos; p++ {
			s.meta.TouchRMOB(p)
			if e, ok := s.rmob.At(p); ok {
				s.meta.TouchPST(Key{PC: e.PC, Offset: e.Block.RegionOffset()})
			}
		}
	}
	return out
}

// maybeSpatialOnly starts a PST-driven stream for a freshly opened
// generation that reconstruction did not (or wrongly) predict. Deltas are
// ignored — the stream is the region's access sequence alone (§4.2). This
// is the path that gives STeMS coverage on compulsory-miss regions (DSS
// scans), where the RMOB has no history.
func (s *STeMS) maybeSpatialOnly(trigger mem.Addr, k Key, covered bool) {
	if s.engine == nil {
		return
	}
	// A covered trigger whose region the reconstruction predicted (with
	// the same index) is already being streamed; launching a second stream
	// would thrash the queues. An *uncovered* trigger is direct evidence
	// the reconstructed prediction is not delivering — stream the pattern
	// regardless of what the reconstruction promised.
	if covered {
		if rk, ok := s.reconRegions.Get(uint64(trigger.Region())); ok && rk == k.pack() {
			return
		}
	}
	if s.meta != nil {
		s.meta.TouchPST(k)
	}
	ent := s.pst.Lookup(k)
	if ent == nil {
		return
	}
	s.seqBuf = s.pst.AppendPredicted(s.seqBuf[:0], ent)
	if len(s.seqBuf) == 0 {
		return
	}
	s.blockBuf = s.blockBuf[:0]
	for _, el := range s.seqBuf {
		b := mem.Addr(int64(trigger) + int64(el.Offset)*mem.BlockSize)
		if mem.SameRegion(b, trigger) {
			s.blockBuf = append(s.blockBuf, b)
		}
	}
	if len(s.blockBuf) == 0 {
		return
	}
	s.stats.SpatialOnlyStreams++
	s.engine.NewEagerStream(s.blockBuf)
}
