package core

import (
	"testing"

	"stems/internal/mem"
)

func TestMetaModelCachesBlocks(t *testing.T) {
	mm := NewMetaModel(2 * mem.BlockSize) // two metadata blocks
	transfers := 0
	mm.Transfer = func() { transfers++ }

	k := Key{PC: 5, Offset: 3}
	mm.TouchPST(k)
	mm.TouchPST(k) // cached: no second transfer
	if transfers != 1 {
		t.Fatalf("transfers = %d, want 1", transfers)
	}
	lookups, misses := mm.Stats()
	if lookups != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", lookups, misses)
	}
}

func TestMetaModelRMOBSpatialLocality(t *testing.T) {
	mm := NewMetaModel(64 * mem.BlockSize)
	transfers := 0
	mm.Transfer = func() { transfers++ }
	// Sequential RMOB positions share metadata blocks (8 entries each).
	for p := uint64(0); p < 64; p++ {
		mm.TouchRMOB(p)
	}
	if transfers != 8 {
		t.Fatalf("transfers = %d, want 8 (64 entries / 8 per block)", transfers)
	}
}

func TestMetaModelEviction(t *testing.T) {
	mm := NewMetaModel(mem.BlockSize) // a single metadata block
	transfers := 0
	mm.Transfer = func() { transfers++ }
	mm.TouchPST(Key{PC: 1})
	mm.TouchPST(Key{PC: 2}) // evicts the first
	mm.TouchPST(Key{PC: 1}) // must refetch
	if transfers != 3 {
		t.Fatalf("transfers = %d, want 3", transfers)
	}
}

func TestMetaModelDistinctIDSpaces(t *testing.T) {
	mm := NewMetaModel(64 * mem.BlockSize)
	transfers := 0
	mm.Transfer = func() { transfers++ }
	mm.TouchRMOB(0)
	mm.TouchPST(Key{PC: 0, Offset: 0})
	if transfers != 2 {
		t.Fatalf("PST and RMOB block 0 aliased: %d transfers", transfers)
	}
}

func TestSTeMSWithMetaModel(t *testing.T) {
	s := New(bitvecConfig(), nil)
	mm := NewMetaModel(8 << 10)
	transfers := 0
	mm.Transfer = func() { transfers++ }
	s.SetMetaModel(mm)
	if s.Meta() != mm {
		t.Fatal("Meta() accessor broken")
	}
	accs, _, _, _, _ := figure3Trace()
	for pass := 0; pass < 2; pass++ {
		for _, a := range accs {
			s.OnOffChipEvent(a, false)
		}
		endAllGenerations(s, accs)
	}
	if transfers == 0 {
		t.Fatal("no metadata traffic recorded")
	}
	lookups, misses := mm.Stats()
	if misses > lookups {
		t.Fatalf("misses %d > lookups %d", misses, lookups)
	}
}
