package core

import (
	"testing"
	"testing/quick"

	"stems/internal/mem"
)

func TestPSTTrainAndLookup(t *testing.T) {
	p := NewPST(16, true, 2)
	k := Key{PC: 100, Offset: 3}
	if p.Lookup(k) != nil {
		t.Fatal("lookup on empty PST returned entry")
	}
	seq := []SeqElem{{Offset: 4, Delta: 0}, {Offset: -1, Delta: 1}}
	p.Train(k, seq)
	ent := p.Lookup(k)
	if ent == nil {
		t.Fatal("trained entry not found")
	}
	if len(ent.Sequence()) != 2 || ent.Sequence()[0].Offset != 4 || ent.Sequence()[1].Offset != -1 {
		t.Fatalf("stored seq = %+v", ent.Sequence())
	}
	if p.Trained() != 1 || p.Len() != 1 {
		t.Fatalf("Trained=%d Len=%d", p.Trained(), p.Len())
	}
}

func TestPSTCounterThreshold(t *testing.T) {
	p := NewPST(16, true, 2)
	k := Key{PC: 1, Offset: 0}
	seq := []SeqElem{{Offset: 5, Delta: 0}}
	p.Train(k, seq)
	if p.Predicts(p.Lookup(k), 5) {
		t.Fatal("predicted after one observation (counter=1 < threshold)")
	}
	p.Train(k, seq)
	if !p.Predicts(p.Lookup(k), 5) {
		t.Fatal("not predicted after two observations")
	}
}

func TestPSTCountersDecay(t *testing.T) {
	p := NewPST(16, true, 2)
	k := Key{PC: 1, Offset: 0}
	with := []SeqElem{{Offset: 5}, {Offset: 9}}
	without := []SeqElem{{Offset: 5}}
	p.Train(k, with)
	p.Train(k, with) // counter(9) = 2
	if !p.Predicts(p.Lookup(k), 9) {
		t.Fatal("offset 9 should be predicted")
	}
	p.Train(k, without) // counter(9) = 1
	p.Train(k, without) // counter(9) = 0 — but 9 left Seq after first without
	if p.Predicts(p.Lookup(k), 9) {
		t.Fatal("offset 9 still predicted after decay")
	}
	if !p.Predicts(p.Lookup(k), 5) {
		t.Fatal("stable offset 5 lost")
	}
}

func TestPSTLatestOrderWins(t *testing.T) {
	p := NewPST(16, true, 1)
	k := Key{PC: 1, Offset: 0}
	p.Train(k, []SeqElem{{Offset: 2, Delta: 0}, {Offset: 7, Delta: 3}})
	p.Train(k, []SeqElem{{Offset: 7, Delta: 1}, {Offset: 2, Delta: 0}})
	ent := p.Lookup(k)
	if ent.Sequence()[0].Offset != 7 || ent.Sequence()[0].Delta != 1 {
		t.Fatalf("latest order not stored: %+v", ent.Sequence())
	}
}

func TestPSTBitVectorMode(t *testing.T) {
	p := NewPST(16, false, 2)
	k := Key{PC: 1, Offset: 0}
	p.Train(k, []SeqElem{{Offset: 3}})
	if !p.Predicts(p.Lookup(k), 3) {
		t.Fatal("bitvec mode needs only one observation")
	}
	if p.Predicts(p.Lookup(k), 4) {
		t.Fatal("bitvec mode predicted untrained offset")
	}
}

func TestPSTPredictedSeqFiltersUnstable(t *testing.T) {
	p := NewPST(16, true, 2)
	k := Key{PC: 1, Offset: 0}
	p.Train(k, []SeqElem{{Offset: 1}, {Offset: 2}})
	p.Train(k, []SeqElem{{Offset: 1}, {Offset: 2}})
	p.Train(k, []SeqElem{{Offset: 1}, {Offset: 2}, {Offset: 9}})
	seq := p.PredictedSeq(p.Lookup(k))
	for _, el := range seq {
		if el.Offset == 9 {
			t.Fatal("unstable offset 9 in predicted sequence")
		}
	}
	if len(seq) != 2 {
		t.Fatalf("predicted seq = %+v, want offsets 1,2", seq)
	}
}

func TestPSTEmptyTrainIgnored(t *testing.T) {
	p := NewPST(16, true, 2)
	p.Train(Key{PC: 1}, nil)
	if p.Len() != 0 || p.Trained() != 0 {
		t.Fatal("empty sequence trained")
	}
}

func TestPSTSequenceCappedAtRegionBlocks(t *testing.T) {
	p := NewPST(16, true, 1)
	long := make([]SeqElem, 40)
	for i := range long {
		long[i] = SeqElem{Offset: int8(i%31 + 1)}
	}
	p.Train(Key{PC: 1}, long)
	if got := len(p.Lookup(Key{PC: 1}).Sequence()); got > mem.RegionBlocks {
		t.Fatalf("stored sequence length %d > %d", got, mem.RegionBlocks)
	}
}

func TestPSTCapacityEviction(t *testing.T) {
	p := NewPST(2, true, 1)
	for pc := uint64(1); pc <= 3; pc++ {
		p.Train(Key{PC: pc}, []SeqElem{{Offset: 1}})
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if p.Lookup(Key{PC: 1}) != nil {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestPSTNilEntryPredictsNothing(t *testing.T) {
	p := NewPST(4, true, 2)
	if p.Predicts(nil, 3) {
		t.Fatal("nil entry predicted")
	}
	if p.PredictedSeq(nil) != nil {
		t.Fatal("nil entry returned sequence")
	}
}

// Property: counters never exceed 3 and never underflow, for any training
// history.
func TestPSTCounterSaturationProperty(t *testing.T) {
	f := func(rounds []bool) bool {
		p := NewPST(4, true, 2)
		k := Key{PC: 9}
		with := []SeqElem{{Offset: 3}}
		without := []SeqElem{{Offset: 4}}
		for _, r := range rounds {
			if r {
				p.Train(k, with)
			} else {
				p.Train(k, without)
			}
		}
		ent := p.Lookup(k)
		if ent == nil {
			return len(rounds) == 0
		}
		return ent.counterAt(3) <= 3 && ent.counterAt(4) <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
