package core

import (
	"stems/internal/lru"
	"stems/internal/mem"
)

// MetaModel models predictor virtualization (Burcea et al., ASPLOS 2008 —
// reference [2], discussed in §6: "mechanisms to store predictor metadata
// in existing on-chip caches, nearly obviating the need for dedicated
// storage. This technique can be applied directly to the history
// structures used by STeMS").
//
// The PST and RMOB live in main memory (§4.3); with virtualization their
// entries are cached on chip in a small metadata cache, and each metadata
// *miss* consumes memory bandwidth like any other 64B transfer. The model
// tracks which metadata blocks are resident and reports misses through a
// transfer callback supplied by the simulator, so metadata traffic competes
// with demand and prefetch traffic for channels.
type MetaModel struct {
	cache *lru.Map[uint64, struct{}]
	// Transfer is invoked for every metadata block fetched from memory;
	// the simulator charges a memory-channel slot.
	Transfer func()

	lookups uint64
	misses  uint64
}

// Metadata geometry: PST entries are 40B (§4.3), so ~1.6 fit per 64B
// block; RMOB entries are 8B, so 8 fit per block.
const (
	pstEntriesPerBlock  = 1
	rmobEntriesPerBlock = 8
)

// NewMetaModel creates a metadata cache of the given size in bytes
// (Burcea et al. dedicate a few tens of KB of L2 ways).
func NewMetaModel(sizeBytes int) *MetaModel {
	blocks := sizeBytes / mem.BlockSize
	if blocks <= 0 {
		blocks = 1
	}
	return &MetaModel{cache: lru.New[uint64, struct{}](blocks)}
}

// touch references one metadata block, fetching it on a miss.
func (mm *MetaModel) touch(blockID uint64) {
	mm.lookups++
	if _, ok := mm.cache.Get(blockID); ok {
		return
	}
	mm.misses++
	mm.cache.Put(blockID, struct{}{})
	if mm.Transfer != nil {
		mm.Transfer()
	}
}

// TouchPST references the metadata block holding a PST entry.
func (mm *MetaModel) TouchPST(k Key) {
	// Tag PST blocks in their own ID space.
	id := (k.PC<<5 | uint64(k.Offset)) / pstEntriesPerBlock
	mm.touch(1<<63 | id)
}

// TouchRMOB references the metadata block holding an RMOB position.
func (mm *MetaModel) TouchRMOB(pos uint64) {
	mm.touch(pos / rmobEntriesPerBlock)
}

// Stats returns metadata lookups and misses.
func (mm *MetaModel) Stats() (lookups, misses uint64) { return mm.lookups, mm.misses }
