package core

import (
	"stems/internal/lru"
	"stems/internal/mem"
)

// Key is the spatial lookup index: trigger PC + trigger block offset within
// its region, the same code-correlated index SMS uses (§2.4, §4.2).
type Key struct {
	PC     uint64
	Offset int
}

// pack folds a Key into one machine word for the monomorphic probe table:
// the region offset occupies the low 5 bits, the PC the rest. Injective
// for any PC below 2^59 — instruction addresses are at most 57-bit virtual
// addresses on today's largest machines, and the synthetic suite's PCs are
// tiny — so table behavior is identical to keying on the struct.
func (k Key) pack() uint64 {
	return k.PC<<mem.RegionBlockBits | uint64(k.Offset&(mem.RegionBlocks-1))
}

// SeqElem is one element of a spatial sequence: a block offset *relative to
// the trigger block* and the reconstruction delta — the number of global
// miss-order events interleaved since the previous access of this region
// (Figure 3).
type SeqElem struct {
	Offset int8  // relative block offset, in (-RegionBlocks, RegionBlocks)
	Delta  uint8 // interleaved foreign events before this access
}

// relRange is the number of representable relative offsets (−31..+31).
const relRange = 2*mem.RegionBlocks - 1

// PSTEntry is one pattern sequence: the latest observed access order with
// deltas, plus a 2-bit saturating counter per relative offset providing the
// hysteresis of §4.3 ("2-bit counters attain the same coverage while
// roughly halving overpredictions").
//
// The sequence is a fixed inline array (a generation records at most one
// element per region block), so entries are plain 128-byte values stored
// directly in the table — a PST lookup on the replay loop touches the
// entry without chasing a heap pointer, and the table never allocates.
type PSTEntry struct {
	seq      [mem.RegionBlocks]SeqElem
	seqLen   uint8
	Counters [relRange]uint8
}

// Sequence returns the stored spatial sequence, most recent observation
// order. The slice aliases the entry's inline storage; treat it as
// read-only and do not hold it across Train calls.
func (e *PSTEntry) Sequence() []SeqElem { return e.seq[:e.seqLen] }

// counterAt returns the saturating counter for a relative offset.
func (e *PSTEntry) counterAt(rel int8) uint8 {
	return e.Counters[int(rel)+mem.RegionBlocks-1]
}

func (e *PSTEntry) bumpCounter(rel int8, up bool) {
	i := int(rel) + mem.RegionBlocks - 1
	if up {
		if e.Counters[i] < 3 {
			e.Counters[i]++
		}
	} else if e.Counters[i] > 0 {
		e.Counters[i]--
	}
}

// PST is the pattern sequence table: a fixed-capacity LRU table of spatial
// sequences (§4.1: "upon generation termination, the pattern sequence table
// stores the observed spatial sequence"). The paper sizes it at 16K entries
// × 40B = 640KB, residing in main memory.
type PST struct {
	table *lru.U64Map[PSTEntry] // keyed by Key.pack(); entries by value
	// useCounters selects hysteresis mode; when false the latest sequence
	// is used verbatim (bit-vector-equivalent mode, for the ablation).
	useCounters bool
	threshold   uint8
	trained     uint64
}

// NewPST creates a pattern sequence table with the given entry capacity.
func NewPST(entries int, useCounters bool, threshold uint8) *PST {
	return &PST{
		table:       lru.NewU64[PSTEntry](entries),
		useCounters: useCounters,
		threshold:   threshold,
	}
}

// Train merges one finished generation's observed sequence into the table.
// Counters for observed offsets saturate upward; offsets present in the
// stored entry but absent from the new observation decay. The stored order
// and deltas always follow the most recent observation (temporal
// correlation favors recency, §2.1).
func (p *PST) Train(k Key, observed []SeqElem) {
	if len(observed) == 0 {
		return
	}
	// Mutate in place when present; recency is refreshed by the final Put.
	ent, ok := p.table.Peek(k.pack())
	if !ok {
		ent = PSTEntry{}
	}
	var seen [relRange]bool
	capped := observed
	if len(capped) > mem.RegionBlocks {
		capped = capped[:mem.RegionBlocks]
	}
	for _, el := range capped {
		seen[int(el.Offset)+mem.RegionBlocks-1] = true
		ent.bumpCounter(el.Offset, true)
	}
	// Every un-observed offset decays — the hardware updates all 32
	// counters of the entry on each generation commit (§4.3), which is
	// what lets the table forget unstable blocks.
	for i := range ent.Counters {
		if !seen[i] && ent.Counters[i] > 0 {
			ent.Counters[i]--
		}
	}
	ent.seqLen = uint8(copy(ent.seq[:], capped))
	p.table.Put(k.pack(), ent)
	p.trained++
}

// Lookup returns the stored sequence for k, nil if absent. The returned
// pointer aliases the table's storage: read-only, and valid only until
// the next Train (an insert may displace the entry).
func (p *PST) Lookup(k Key) *PSTEntry {
	ent, ok := p.table.GetRef(k.pack())
	if !ok {
		return nil
	}
	return ent
}

// Predicts reports whether the entry (possibly nil) predicts the relative
// offset with sufficient confidence.
func (p *PST) Predicts(ent *PSTEntry, rel int8) bool {
	if ent == nil {
		return false
	}
	if !p.useCounters {
		for _, el := range ent.Sequence() {
			if el.Offset == rel {
				return true
			}
		}
		return false
	}
	return ent.counterAt(rel) >= p.threshold
}

// predictsHot is Predicts for callers that already hold a non-nil entry —
// small enough to inline into the reconstruction expansion loop.
func (p *PST) predictsHot(ent *PSTEntry, rel int8) bool {
	if p.useCounters {
		return ent.counterAt(rel) >= p.threshold
	}
	for _, el := range ent.Sequence() {
		if el.Offset == rel {
			return true
		}
	}
	return false
}

// PredictedSeq returns the elements of ent that clear the confidence
// threshold, in stored (most recent observed) order.
func (p *PST) PredictedSeq(ent *PSTEntry) []SeqElem {
	return p.AppendPredicted(nil, ent)
}

// AppendPredicted appends the confident elements of ent to dst and returns
// the extended slice — the allocation-free form of PredictedSeq for callers
// that reuse a scratch buffer.
func (p *PST) AppendPredicted(dst []SeqElem, ent *PSTEntry) []SeqElem {
	if ent == nil {
		return dst
	}
	for _, el := range ent.Sequence() {
		if p.Predicts(ent, el.Offset) {
			dst = append(dst, el)
		}
	}
	return dst
}

// Len returns the number of stored patterns.
func (p *PST) Len() int { return p.table.Len() }

// Trained returns the number of Train calls that stored a sequence.
func (p *PST) Trained() uint64 { return p.trained }
