package core

import (
	"math/bits"

	"stems/internal/lru"
	"stems/internal/mem"
)

// Key is the spatial lookup index: trigger PC + trigger block offset within
// its region, the same code-correlated index SMS uses (§2.4, §4.2).
type Key struct {
	PC     uint64
	Offset int
}

// pack folds a Key into one machine word for the monomorphic probe table:
// the region offset occupies the low 5 bits, the PC the rest. Injective
// for any PC below 2^59 — instruction addresses are at most 57-bit virtual
// addresses on today's largest machines, and the synthetic suite's PCs are
// tiny — so table behavior is identical to keying on the struct.
func (k Key) pack() uint64 {
	return k.PC<<mem.RegionBlockBits | uint64(k.Offset&(mem.RegionBlocks-1))
}

// SeqElem is one element of a spatial sequence: a block offset *relative to
// the trigger block* and the reconstruction delta — the number of global
// miss-order events interleaved since the previous access of this region
// (Figure 3).
type SeqElem struct {
	Offset int8  // relative block offset, in (-RegionBlocks, RegionBlocks)
	Delta  uint8 // interleaved foreign events before this access
}

// relRange is the number of representable relative offsets (−31..+31).
const relRange = 2*mem.RegionBlocks - 1

// PSTEntry is one pattern sequence: the latest observed access order with
// deltas, plus a 2-bit saturating counter per relative offset providing the
// hysteresis of §4.3 ("2-bit counters attain the same coverage while
// roughly halving overpredictions").
//
// The sequence is a fixed inline array (a generation records at most one
// element per region block), so entries are plain 128-byte values stored
// directly in the table — a PST lookup on the replay loop touches the
// entry without chasing a heap pointer, and the table never allocates.
type PSTEntry struct {
	seq      [mem.RegionBlocks]SeqElem
	seqLen   uint8
	Counters [relRange]uint8
}

// Sequence returns the stored spatial sequence, most recent observation
// order. The slice aliases the entry's inline storage; treat it as
// read-only and do not hold it across Train calls.
func (e *PSTEntry) Sequence() []SeqElem { return e.seq[:e.seqLen] }

// counterAt returns the saturating counter for a relative offset.
func (e *PSTEntry) counterAt(rel int8) uint8 {
	return e.Counters[int(rel)+mem.RegionBlocks-1]
}

func (e *PSTEntry) bumpCounter(rel int8, up bool) {
	i := int(rel) + mem.RegionBlocks - 1
	if up {
		if e.Counters[i] < 3 {
			e.Counters[i]++
		}
	} else if e.Counters[i] > 0 {
		e.Counters[i]--
	}
}

// PST is the pattern sequence table: a fixed-capacity LRU table of spatial
// sequences (§4.1: "upon generation termination, the pattern sequence table
// stores the observed spatial sequence"). The paper sizes it at 16K entries
// × 40B = 640KB, residing in main memory.
type PST struct {
	table *lru.U64Map[PSTEntry] // keyed by Key.pack(); entries by value
	// useCounters selects hysteresis mode; when false the latest sequence
	// is used verbatim (bit-vector-equivalent mode, for the ablation).
	useCounters bool
	threshold   uint8
	trained     uint64
}

// NewPST creates a pattern sequence table with the given entry capacity.
func NewPST(entries int, useCounters bool, threshold uint8) *PST {
	return &PST{
		table:       lru.NewU64[PSTEntry](entries),
		useCounters: useCounters,
		threshold:   threshold,
	}
}

// Train merges one finished generation's observed sequence into the table.
// Counters for observed offsets saturate upward; offsets present in the
// stored entry but absent from the new observation decay. The stored order
// and deltas always follow the most recent observation (temporal
// correlation favors recency, §2.1).
func (p *PST) Train(k Key, observed []SeqElem) {
	if len(observed) == 0 {
		return
	}
	// Mutate in place when present; recency is refreshed by the final Put.
	ent, ok := p.table.Peek(k.pack())
	if !ok {
		ent = PSTEntry{}
	}
	var seen [relRange]bool
	capped := observed
	if len(capped) > mem.RegionBlocks {
		capped = capped[:mem.RegionBlocks]
	}
	for _, el := range capped {
		seen[int(el.Offset)+mem.RegionBlocks-1] = true
		ent.bumpCounter(el.Offset, true)
	}
	// Every un-observed offset decays — the hardware updates all 32
	// counters of the entry on each generation commit (§4.3), which is
	// what lets the table forget unstable blocks.
	for i := range ent.Counters {
		if !seen[i] && ent.Counters[i] > 0 {
			ent.Counters[i]--
		}
	}
	ent.seqLen = uint8(copy(ent.seq[:], capped))
	p.table.Put(k.pack(), ent)
	p.trained++
}

// Lookup returns the stored sequence for k, nil if absent. The returned
// pointer aliases the table's storage: read-only, and valid only until
// the next Train (an insert may displace the entry).
func (p *PST) Lookup(k Key) *PSTEntry {
	ent, ok := p.table.GetRef(k.pack())
	if !ok {
		return nil
	}
	return ent
}

// LookupBatch collects the PST probes one reconstruction window generates
// so they can be resolved in a single tight pass over the table instead of
// interleaved with slot placement. The reconstructor gathers every RMOB
// entry (block, intended slot, lookup key) first, calls ResolveBatch once,
// and then reconstructs from the resolved entries — the probe loop touches
// only the table's index while the placement loop streams over one
// contiguous probe array.
//
// Beyond resolving, ResolveBatch *groups* the probes: every probe carries a
// dense group id shared by all probes with the same key, assigned in first-
// occurrence order. Windows repeat keys heavily but rarely back to back
// (measured on the synthetic suite: ~1/3 of a window's probes are unique,
// so the average key recurs three times, interleaved with others), so the
// table probe runs once per *unique* key while per-probe recency updates
// still replay exactly; callers key per-window caches (the reconstructor's
// expansion templates) by group id to get the same amortization.
//
// All storage is allocated up front; a batch used within its capacity
// never allocates.
type LookupBatch struct {
	probes []Probe

	// Key-dedup scratch: an epoch-stamped open-addressing table sized at
	// twice the probe capacity (load factor ≤ 1/2), reset per resolve by
	// bumping the epoch instead of clearing. One struct per slot keeps a
	// scratch probe to a single cache line.
	scratch []scratchSlot
	sshift  uint
	epoch   uint32
	groups  int
}

// scratchSlot is one slot of the batch's key-dedup table: the key, its
// resolved entry and LRU node, the assigned group id, the probe index of
// the key's latest occurrence (for callers that defer recency updates to
// one Touch per key), and the epoch stamp that says whether the slot
// belongs to the current resolve.
type scratchSlot struct {
	key   uint64
	ent   *PSTEntry
	node  int32
	grp   int32
	last  int32
	stamp uint32
}

// Probe is one gathered lookup: the caller's per-entry context (trigger
// block and intended reconstruction slot) riding alongside the packed key,
// and the resolved entry after ResolveBatch. One struct per entry keeps
// the gather pass to a single append and the placement pass on a single
// sequential stream.
type Probe struct {
	Block mem.Addr
	key   uint64
	Ent   *PSTEntry // resolved by ResolveBatch; nil on miss
	Slot  int32
	Grp   int32 // dense per-batch group id; probes with equal keys share it
}

// Key returns the probe's lookup key.
func (p *Probe) Key() Key {
	return Key{PC: p.key >> mem.RegionBlockBits, Offset: int(p.key & (mem.RegionBlocks - 1))}
}

// NewLookupBatch creates a batch holding up to capacity probes.
func NewLookupBatch(capacity int) *LookupBatch {
	b := &LookupBatch{probes: make([]Probe, 0, capacity)}
	b.sizeScratch(capacity)
	return b
}

// sizeScratch (re)allocates the dedup scratch for up to n probes: the next
// power of two at or above 2n, so linear probing stays short.
func (b *LookupBatch) sizeScratch(n int) {
	size := 8
	for size < 2*n {
		size <<= 1
	}
	b.scratch = make([]scratchSlot, size)
	b.sshift = uint(64 - bits.TrailingZeros(uint(size)))
	b.epoch = 0
}

// Reset empties the batch for reuse.
func (b *LookupBatch) Reset() { b.probes = b.probes[:0] }

// Add queues one lookup with its placement context. Results are available
// after ResolveBatch.
func (b *LookupBatch) Add(k Key, block mem.Addr, slot int32) {
	b.probes = append(b.probes, Probe{Block: block, key: k.pack(), Slot: slot})
}

// Len returns the number of queued probes.
func (b *LookupBatch) Len() int { return len(b.probes) }

// Groups returns the number of distinct keys in the batch, valid after
// ResolveBatch. Probe.Grp values are dense in [0, Groups()).
func (b *LookupBatch) Groups() int { return b.groups }

// Probes returns the queued probes in gather order; entries are resolved
// after ResolveBatch. The slice aliases the batch's storage and is valid
// until the next Reset.
func (b *LookupBatch) Probes() []Probe { return b.probes }

// ResolveBatch resolves every queued probe against the table in one pass
// and assigns group ids (see LookupBatch). The table's hash index is probed
// once per unique key; recency updates replay per probe in gather order, so
// the LRU state after ResolveBatch is byte-identical to a sequential Lookup
// per key (the index probe is read-only, so skipping a repeat changes
// nothing; a repeat Touch of a key just looked up is skipped as the exact
// no-op it is only when the repeats are adjacent).
func (p *PST) ResolveBatch(b *LookupBatch) {
	t := p.table
	probes := b.probes
	if 2*len(probes) > len(b.scratch) {
		b.sizeScratch(len(probes))
	}
	b.epoch++
	if b.epoch == 0 { // stamp wraparound: invalidate everything once
		clear(b.scratch)
		b.epoch = 1
	}
	epoch := b.epoch
	scratch := b.scratch
	mask := uint32(len(scratch) - 1)
	shift := b.sshift
	ngroups := int32(0)
	var prevKey uint64
	var prevEnt *PSTEntry
	prevGrp := int32(-1)
	for i := range probes {
		k := probes[i].key
		if prevGrp >= 0 && k == prevKey {
			probes[i].Ent = prevEnt
			probes[i].Grp = prevGrp
			continue
		}
		var ent *PSTEntry
		var grp int32
		for j := uint32(k*0x9E3779B97F4A7C15>>shift) & mask; ; j = (j + 1) & mask {
			s := &scratch[j]
			if s.stamp != epoch {
				// First occurrence of k in this batch: the one real probe.
				node := int32(-1)
				if n, ok := t.Find(k); ok {
					t.Touch(n)
					ent = t.RefAt(n)
					node = int32(n)
				}
				grp = ngroups
				ngroups++
				*s = scratchSlot{key: k, ent: ent, node: node, grp: grp, stamp: epoch}
				break
			}
			if s.key == k {
				ent = s.ent
				grp = s.grp
				if s.node >= 0 {
					t.Touch(int(s.node))
				}
				break
			}
		}
		probes[i].Ent = ent
		probes[i].Grp = grp
		prevKey, prevEnt, prevGrp = k, ent, grp
	}
	b.groups = int(ngroups)
}

// Predicts reports whether the entry (possibly nil) predicts the relative
// offset with sufficient confidence.
func (p *PST) Predicts(ent *PSTEntry, rel int8) bool {
	if ent == nil {
		return false
	}
	if !p.useCounters {
		for _, el := range ent.Sequence() {
			if el.Offset == rel {
				return true
			}
		}
		return false
	}
	return ent.counterAt(rel) >= p.threshold
}

// predictsHot is Predicts for callers that already hold a non-nil entry —
// small enough to inline into the reconstruction expansion loop.
func (p *PST) predictsHot(ent *PSTEntry, rel int8) bool {
	if p.useCounters {
		return ent.counterAt(rel) >= p.threshold
	}
	for _, el := range ent.Sequence() {
		if el.Offset == rel {
			return true
		}
	}
	return false
}

// PredictedSeq returns the elements of ent that clear the confidence
// threshold, in stored (most recent observed) order.
func (p *PST) PredictedSeq(ent *PSTEntry) []SeqElem {
	return p.AppendPredicted(nil, ent)
}

// AppendPredicted appends the confident elements of ent to dst and returns
// the extended slice — the allocation-free form of PredictedSeq for callers
// that reuse a scratch buffer.
func (p *PST) AppendPredicted(dst []SeqElem, ent *PSTEntry) []SeqElem {
	if ent == nil {
		return dst
	}
	for _, el := range ent.Sequence() {
		if p.Predicts(ent, el.Offset) {
			dst = append(dst, el)
		}
	}
	return dst
}

// Len returns the number of stored patterns.
func (p *PST) Len() int { return p.table.Len() }

// Trained returns the number of Train calls that stored a sequence.
func (p *PST) Trained() uint64 { return p.trained }
