package core

import (
	"math/rand"
	"testing"

	"stems/internal/mem"
)

// Figure 3 / Figure 5 worked example.
//
// Observed miss order: A, A+4, B, A+2, B+6, A-1, C, D, D+1, D+2
// Trigger sequence (address,delta): (A,0) (B,1) (C,3) (D,0)
// Spatial sequences (offset,delta): A: (4,0) (2,1) (-1,1)
//
//	B: (6,1)
//	D: (1,0) (2,0)
//
// Reconstruction must reproduce the observed order exactly.
func TestReconstructionFigure5(t *testing.T) {
	const (
		pc1, pc2, pc3, pc4 = 1, 2, 3, 4
	)
	// Concrete placements keeping every offset within its 2KB region:
	// A at region 1 offset 8, B at region 2 offset 0,
	// C at region 3 offset 5, D at region 4 offset 3.
	A := mem.Addr(1*mem.RegionSize + 8*mem.BlockSize)
	B := mem.Addr(2 * mem.RegionSize)
	C := mem.Addr(3*mem.RegionSize + 5*mem.BlockSize)
	D := mem.Addr(4*mem.RegionSize + 3*mem.BlockSize)
	blk := func(base mem.Addr, off int) mem.Addr {
		return mem.Addr(int64(base) + int64(off)*mem.BlockSize)
	}

	// Bit-vector mode so a single Train suffices for prediction.
	pst := NewPST(64, false, 1)
	pst.Train(Key{PC: pc1, Offset: A.RegionOffset()},
		[]SeqElem{{Offset: 4, Delta: 0}, {Offset: 2, Delta: 1}, {Offset: -1, Delta: 1}})
	pst.Train(Key{PC: pc2, Offset: B.RegionOffset()},
		[]SeqElem{{Offset: 6, Delta: 1}})
	pst.Train(Key{PC: pc4, Offset: D.RegionOffset()},
		[]SeqElem{{Offset: 1, Delta: 0}, {Offset: 2, Delta: 0}})

	rmob := NewRMOB(64)
	rmob.Append(RMOBEntry{Block: A, PC: pc1, Delta: 0})
	rmob.Append(RMOBEntry{Block: B, PC: pc2, Delta: 1})
	rmob.Append(RMOBEntry{Block: C, PC: pc3, Delta: 3})
	rmob.Append(RMOBEntry{Block: D, PC: pc4, Delta: 0})

	rc := NewReconstructor(pst, rmob, 256, 2)
	var regions []mem.Addr
	pos := uint64(0)
	got := rc.Window(&pos, func(region mem.Addr, k Key) {
		regions = append(regions, region)
	})

	want := []mem.Addr{
		A, blk(A, 4), B, blk(A, 2), blk(B, 6), blk(A, -1), C, D, blk(D, 1), blk(D, 2),
	}
	if len(got) != len(want) {
		t.Fatalf("reconstructed %d blocks (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slot %d: got %#x, want %#x", i, got[i], want[i])
		}
	}
	st := rc.Stats()
	if st.PlacedNear != 0 || st.Dropped != 0 {
		t.Errorf("perfect example needed displacement: %+v", st)
	}
	if pos != 4 {
		t.Errorf("cursor = %d, want 4 (all entries consumed)", pos)
	}
	// Regions with spatial patterns (A, B, D — not C) reported.
	if len(regions) != 3 {
		t.Errorf("onRegion fired %d times (%v), want 3", len(regions), regions)
	}
}

func TestReconstructionCollisionSearch(t *testing.T) {
	// Two RMOB entries whose deltas collide: entry 2 wants slot 1, but a
	// spatial element of entry 1 also wants slot 1.
	pst := NewPST(16, false, 1)
	A := mem.Addr(1 * mem.RegionSize)
	B := mem.Addr(2 * mem.RegionSize)
	pst.Train(Key{PC: 1, Offset: 0}, []SeqElem{{Offset: 3, Delta: 0}}) // wants slot 1
	rmob := NewRMOB(16)
	rmob.Append(RMOBEntry{Block: A, PC: 1, Delta: 0})
	rmob.Append(RMOBEntry{Block: B, PC: 2, Delta: 0}) // also wants slot 1

	rc := NewReconstructor(pst, rmob, 16, 2)
	pos := uint64(0)
	got := rc.Window(&pos, nil)
	if len(got) != 3 {
		t.Fatalf("reconstructed %v, want 3 blocks", got)
	}
	st := rc.Stats()
	if st.PlacedNear != 1 {
		t.Errorf("PlacedNear = %d, want 1", st.PlacedNear)
	}
	// All three blocks present regardless of displacement.
	present := map[mem.Addr]bool{}
	for _, b := range got {
		present[b] = true
	}
	for _, b := range []mem.Addr{A, A + 3*mem.BlockSize, B} {
		if !present[b] {
			t.Errorf("block %#x missing from reconstruction", b)
		}
	}
}

func TestReconstructionDropsWhenWindowFull(t *testing.T) {
	pst := NewPST(16, false, 1)
	rmob := NewRMOB(16)
	// Three entries with delta 0 into a 2-slot buffer: third must wait for
	// the next window.
	for i := 1; i <= 3; i++ {
		rmob.Append(RMOBEntry{Block: mem.Addr(i * mem.RegionSize), PC: uint64(i), Delta: 0})
	}
	rc := NewReconstructor(pst, rmob, 2, 2)
	pos := uint64(0)
	first := rc.Window(&pos, nil)
	if len(first) != 2 || pos != 2 {
		t.Fatalf("first window = %v (pos %d), want 2 blocks consumed", first, pos)
	}
	second := rc.Window(&pos, nil)
	if len(second) != 1 || pos != 3 {
		t.Fatalf("second window = %v (pos %d)", second, pos)
	}
	third := rc.Window(&pos, nil)
	if third != nil {
		t.Fatalf("exhausted RMOB produced %v", third)
	}
}

func TestReconstructionOutOfRegionSuppressed(t *testing.T) {
	// A (corrupt) pattern pointing outside the trigger's region must not
	// produce a prediction.
	pst := NewPST(16, false, 1)
	A := mem.Addr(1*mem.RegionSize + 31*mem.BlockSize) // last block of region
	pst.Train(Key{PC: 1, Offset: 31}, []SeqElem{{Offset: 1, Delta: 0}})
	rmob := NewRMOB(4)
	rmob.Append(RMOBEntry{Block: A, PC: 1, Delta: 0})
	rc := NewReconstructor(pst, rmob, 8, 2)
	pos := uint64(0)
	got := rc.Window(&pos, nil)
	if len(got) != 1 || got[0] != A {
		t.Fatalf("out-of-region prediction leaked: %v", got)
	}
}

func TestReconstructionUnstableElementsSkippedButSpaced(t *testing.T) {
	// Counters mode: an unstable element is not fetched, but the slots it
	// would occupy still advance, preserving later elements' positions.
	pst := NewPST(16, true, 2)
	A := mem.Addr(1 * mem.RegionSize)
	seq := []SeqElem{{Offset: 1, Delta: 0}, {Offset: 2, Delta: 0}}
	pst.Train(Key{PC: 1, Offset: 0}, seq)
	pst.Train(Key{PC: 1, Offset: 0}, seq) // both offsets at counter 2
	// Third training without offset 1: its counter decays to 1 (< thresh).
	pst.Train(Key{PC: 1, Offset: 0}, []SeqElem{{Offset: 2, Delta: 1}})

	rmob := NewRMOB(4)
	rmob.Append(RMOBEntry{Block: A, PC: 1, Delta: 0})
	rc := NewReconstructor(pst, rmob, 8, 0)
	pos := uint64(0)
	got := rc.Window(&pos, nil)
	// Expect A and A+2 only; A+2's slot honors the latest stored deltas.
	if len(got) != 2 || got[0] != A || got[1] != A+2*mem.BlockSize {
		t.Fatalf("got %v, want [A, A+2]", got)
	}
}

func TestReconstructorPanicsOnBadBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-slot buffer")
		}
	}()
	NewReconstructor(NewPST(4, true, 2), NewRMOB(4), 0, 2)
}

// TestReconstructionRoundTripProperty is the decomposition/reconstruction
// inverse property behind Figure 3: take a random interleaved total miss
// order over several regions, decompose it into the trigger sequence (with
// deltas) and per-region spatial sequences (with deltas) exactly as §3
// describes, and verify reconstruction reproduces the original order.
func TestReconstructionRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		nRegions := 2 + rng.Intn(6)
		// Build each region's access list: trigger block + up to 5 more
		// distinct blocks in the same region.
		type ev struct {
			region int
			block  mem.Addr
		}
		var order []ev
		triggers := make([]mem.Addr, nRegions)
		for r := 0; r < nRegions; r++ {
			trigOff := rng.Intn(mem.RegionBlocks)
			base := mem.Addr((10 + r) * mem.RegionSize)
			triggers[r] = base + mem.Addr(trigOff)*mem.BlockSize
			k := 1 + rng.Intn(5)
			offs := rng.Perm(mem.RegionBlocks)[:k+1]
			// Ensure the trigger comes first.
			blocks := []mem.Addr{triggers[r]}
			for _, o := range offs {
				b := base + mem.Addr(o)*mem.BlockSize
				if b != triggers[r] && len(blocks) < k+1 {
					blocks = append(blocks, b)
				}
			}
			for _, b := range blocks {
				order = append(order, ev{region: r, block: b})
			}
		}
		// Random interleave preserving per-region order: repeatedly pick a
		// region whose next event exists.
		perRegion := make([][]mem.Addr, nRegions)
		for _, e := range order {
			perRegion[e.region] = append(perRegion[e.region], e.block)
		}
		var total []mem.Addr
		regionOf := map[mem.Addr]int{}
		cursors := make([]int, nRegions)
		remaining := len(order)
		// The first event must be region 0's trigger? No: any trigger may
		// lead, but each region's first event is its trigger by
		// construction.
		for remaining > 0 {
			r := rng.Intn(nRegions)
			if cursors[r] >= len(perRegion[r]) {
				continue
			}
			b := perRegion[r][cursors[r]]
			cursors[r]++
			remaining--
			regionOf[b] = r
			total = append(total, b)
		}
		if len(total) > 200 {
			continue
		}

		// Decompose: trigger deltas skip foreign events since the previous
		// trigger; spatial deltas skip foreign events since the previous
		// event of the same region.
		pst := NewPST(64, false, 1)
		rmob := NewRMOB(256)
		lastTriggerIdx := -1
		lastRegionIdx := make([]int, nRegions)
		for i := range lastRegionIdx {
			lastRegionIdx[i] = -1
		}
		seqs := make([][]SeqElem, nRegions)
		for i, b := range total {
			r := regionOf[b]
			if b == triggers[r] {
				delta := 0
				if lastTriggerIdx >= 0 {
					delta = i - lastTriggerIdx - 1
				}
				rmob.Append(RMOBEntry{Block: b, PC: uint64(100 + r), Delta: uint8(delta)})
				lastTriggerIdx = i
			} else {
				delta := i - lastRegionIdx[r] - 1
				rel := int8(int64(b>>6) - int64(triggers[r]>>6))
				seqs[r] = append(seqs[r], SeqElem{Offset: rel, Delta: uint8(delta)})
			}
			lastRegionIdx[r] = i
		}
		for r := 0; r < nRegions; r++ {
			if len(seqs[r]) > 0 {
				pst.Train(Key{PC: uint64(100 + r), Offset: triggers[r].RegionOffset()}, seqs[r])
			}
		}

		// Wait: trigger deltas above skip since the previous *trigger*,
		// which counts foreign triggers as skipped events too — that is
		// exactly the global-order semantics. Reconstruct and compare.
		rc := NewReconstructor(pst, rmob, 256, 2)
		pos := uint64(0)
		got := rc.Window(&pos, nil)
		if len(got) != len(total) {
			t.Fatalf("trial %d: reconstructed %d of %d events\n got: %v\nwant: %v",
				trial, len(got), len(total), got, total)
		}
		for i := range total {
			if got[i] != total[i] {
				t.Fatalf("trial %d: slot %d = %#x, want %#x\n got: %v\nwant: %v",
					trial, i, got[i], total[i], got, total)
			}
		}
		st := rc.Stats()
		if st.PlacedNear != 0 || st.Dropped != 0 {
			t.Fatalf("trial %d: consistent deltas needed displacement: %+v", trial, st)
		}
	}
}
