package core_test

import (
	"fmt"

	"stems/internal/core"
	"stems/internal/mem"
)

// ExampleReconstructor walks the paper's Figure 5: four RMOB entries and
// three PST sequences reconstruct the observed total miss order
// A, A+4, B, A+2, B+6, A-1, C, D, D+1, D+2.
func ExampleReconstructor() {
	A := mem.Addr(1*mem.RegionSize + 8*mem.BlockSize)
	B := mem.Addr(2 * mem.RegionSize)
	C := mem.Addr(3*mem.RegionSize + 5*mem.BlockSize)
	D := mem.Addr(4*mem.RegionSize + 3*mem.BlockSize)

	pst := core.NewPST(64, false, 1)
	pst.Train(core.Key{PC: 1, Offset: A.RegionOffset()},
		[]core.SeqElem{{Offset: 4, Delta: 0}, {Offset: 2, Delta: 1}, {Offset: -1, Delta: 1}})
	pst.Train(core.Key{PC: 2, Offset: B.RegionOffset()},
		[]core.SeqElem{{Offset: 6, Delta: 1}})
	pst.Train(core.Key{PC: 4, Offset: D.RegionOffset()},
		[]core.SeqElem{{Offset: 1, Delta: 0}, {Offset: 2, Delta: 0}})

	rmob := core.NewRMOB(64)
	rmob.Append(core.RMOBEntry{Block: A, PC: 1, Delta: 0})
	rmob.Append(core.RMOBEntry{Block: B, PC: 2, Delta: 1})
	rmob.Append(core.RMOBEntry{Block: C, PC: 3, Delta: 3})
	rmob.Append(core.RMOBEntry{Block: D, PC: 4, Delta: 0})

	rc := core.NewReconstructor(pst, rmob, 256, 2)
	pos := uint64(0)
	blocks := rc.Window(&pos, nil)

	names := map[mem.Addr]string{
		A: "A", A + 4*mem.BlockSize: "A+4", A + 2*mem.BlockSize: "A+2",
		A - mem.BlockSize: "A-1", B: "B", B + 6*mem.BlockSize: "B+6",
		C: "C", D: "D", D + mem.BlockSize: "D+1", D + 2*mem.BlockSize: "D+2",
	}
	for i, b := range blocks {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(names[b])
	}
	fmt.Println()
	// Output: A A+4 B A+2 B+6 A-1 C D D+1 D+2
}
