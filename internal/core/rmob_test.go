package core

import (
	"testing"

	"stems/internal/mem"
)

func rblock(i int) mem.Addr { return mem.Addr(i * mem.BlockSize) }

func TestRMOBAppendLookup(t *testing.T) {
	r := NewRMOB(8)
	r.Append(RMOBEntry{Block: rblock(1), PC: 10, Delta: 0})
	r.Append(RMOBEntry{Block: rblock(2), PC: 11, Delta: 3})
	pos, ok := r.Lookup(rblock(1))
	if !ok || pos != 0 {
		t.Fatalf("Lookup = (%d,%v), want (0,true)", pos, ok)
	}
	e, ok := r.At(pos)
	if !ok || e.Block != rblock(1) || e.PC != 10 {
		t.Fatalf("At(0) = %+v,%v", e, ok)
	}
	if _, ok := r.Lookup(rblock(99)); ok {
		t.Fatal("lookup of absent block succeeded")
	}
}

func TestRMOBMostRecentOccurrence(t *testing.T) {
	r := NewRMOB(8)
	r.Append(RMOBEntry{Block: rblock(1)})
	r.Append(RMOBEntry{Block: rblock(2)})
	r.Append(RMOBEntry{Block: rblock(1)})
	pos, ok := r.Lookup(rblock(1))
	if !ok || pos != 2 {
		t.Fatalf("Lookup = (%d,%v), want most recent (2,true)", pos, ok)
	}
}

func TestRMOBWrapInvalidation(t *testing.T) {
	r := NewRMOB(4)
	r.Append(RMOBEntry{Block: rblock(1)})
	for i := 10; i < 14; i++ {
		r.Append(RMOBEntry{Block: rblock(i)})
	}
	if _, ok := r.Lookup(rblock(1)); ok {
		t.Fatal("lapped entry still resolvable")
	}
	if r.StaleLookups() != 1 {
		t.Fatalf("StaleLookups = %d", r.StaleLookups())
	}
	// At() on lapped positions fails.
	if _, ok := r.At(0); ok {
		t.Fatal("At(0) succeeded after lap")
	}
	if _, ok := r.At(99); ok {
		t.Fatal("At beyond head succeeded")
	}
}

func TestRMOBLen(t *testing.T) {
	r := NewRMOB(4)
	if r.Len() != 0 {
		t.Fatalf("empty Len = %d", r.Len())
	}
	for i := 0; i < 6; i++ {
		r.Append(RMOBEntry{Block: rblock(i)})
	}
	if r.Len() != 4 || r.Appends() != 6 {
		t.Fatalf("Len=%d Appends=%d, want 4/6", r.Len(), r.Appends())
	}
}

func TestRMOBPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRMOB(0) did not panic")
		}
	}()
	NewRMOB(0)
}
