// Allocation gate for the batched lookup path: Reconstructor.Window —
// the PST/RMOB probe loop, the temporal placement, and the deferred
// recency/notify drains — must stay heap-free in steady state. The
// scratch probe table, expansion arena, and drain queues are all sized
// at construction, so any allocation here is a regression that taxes
// every reconstruction of every STeMS run.
package core

import (
	"math/rand"
	"testing"

	"stems/internal/mem"
)

// warmReconstructor builds a trained PST + populated RMOB pair large
// enough that Window exercises grouped probes, dedup hits, expansion
// walks, and collision displacement.
func warmReconstructor() (*Reconstructor, *RMOB) {
	pst := NewPST(1024, false, 1)
	rmob := NewRMOB(512)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2048; i++ {
		region := mem.Addr(rng.Intn(256)) * mem.RegionSize
		off := rng.Intn(mem.RegionBlocks)
		block := region + mem.Addr(off)*mem.BlockSize
		pc := uint64(1 + rng.Intn(32))
		k := Key{PC: pc, Offset: off}
		seq := make([]SeqElem, 1+rng.Intn(6))
		for j := range seq {
			seq[j] = SeqElem{Offset: int8(rng.Intn(mem.RegionBlocks) - off), Delta: uint8(rng.Intn(3))}
		}
		pst.Train(k, seq)
		rmob.Append(RMOBEntry{Block: block, PC: pc, Delta: uint8(rng.Intn(4))})
	}
	return NewReconstructor(pst, rmob, 256, 2), rmob
}

func TestWindowZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	rc, rmob := warmReconstructor()
	onRegion := func(region mem.Addr, k Key) {}
	oldest := rmob.Appends() - uint64(rmob.Len())
	// Warm once so every lazily-reached high-water mark is established.
	pos := oldest
	rc.Window(&pos, onRegion)

	i := uint64(0)
	avg := testing.AllocsPerRun(100, func() {
		pos := oldest + i%64
		rc.Window(&pos, onRegion)
		i++
	})
	if avg != 0 {
		t.Fatalf("Reconstructor.Window allocated %.3f objects per window, want 0", avg)
	}
}

// TestLookupBatchZeroAlloc pins the standalone grouped-probe API: after
// the first sizing, repeated fill/resolve cycles must not touch the heap.
func TestLookupBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	pst := NewPST(1024, false, 1)
	for i := 0; i < 512; i++ {
		off := i % mem.RegionBlocks
		pst.Train(Key{PC: uint64(1 + i%64), Offset: off}, []SeqElem{{Offset: int8((off + 1) % mem.RegionBlocks)}})
	}
	batch := NewLookupBatch(256)
	fill := func() {
		batch.Reset()
		for i := 0; i < 256; i++ {
			off := i % mem.RegionBlocks
			batch.Add(Key{PC: uint64(1 + i%64), Offset: off}, mem.Addr(i)*mem.BlockSize, int32(i))
		}
		pst.ResolveBatch(batch)
	}
	fill() // establish the scratch high-water mark
	avg := testing.AllocsPerRun(100, func() { fill() })
	if avg != 0 {
		t.Fatalf("LookupBatch fill/resolve allocated %.3f objects per cycle, want 0", avg)
	}
}
