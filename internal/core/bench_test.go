package core

import (
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/trace"
)

// BenchmarkOnOffChipEvent measures predictor training+prediction throughput
// in analysis mode (no fetch side effects).
func BenchmarkOnOffChipEvent(b *testing.B) {
	s := New(config.DefaultSTeMS(), nil)
	accs := make([]trace.Access, 4096)
	for i := range accs {
		region := (i / 6) % 512
		off := (i % 6) * 3
		accs[i] = trace.Access{
			Addr: mem.Addr(region*mem.RegionSize + off*mem.BlockSize),
			PC:   uint64(i % 6),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnOffChipEvent(accs[i%len(accs)], false)
		if i%24 == 23 {
			s.OnL1Evict(accs[(i-12)%len(accs)].Addr.Block())
		}
	}
}

// BenchmarkReconstruction measures Window throughput on a populated RMOB.
func BenchmarkReconstruction(b *testing.B) {
	pst := NewPST(1024, false, 1)
	rmob := NewRMOB(64 << 10)
	for r := 0; r < 1024; r++ {
		pst.Train(Key{PC: uint64(r % 8), Offset: 0},
			[]SeqElem{{Offset: 1, Delta: 0}, {Offset: 5, Delta: 1}, {Offset: 9, Delta: 0}})
	}
	for i := 0; i < 64<<10; i++ {
		rmob.Append(RMOBEntry{
			Block: mem.Addr(i % 4096 * mem.RegionSize),
			PC:    uint64(i % 8),
			Delta: uint8(i % 4),
		})
	}
	rc := NewReconstructor(pst, rmob, 256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := uint64(i % (32 << 10))
		rc.Window(&pos, nil)
	}
}
