package core

import "stems/internal/mem"

// ReconStats counts placement outcomes during reconstruction. §4.3 reports
// that searching at most two slots forward/backward places 99% of
// addresses, 92% in their original location; the ablation benchmark checks
// the same ratios on our workloads.
type ReconStats struct {
	PlacedExact uint64 // landed in the intended slot
	PlacedNear  uint64 // displaced within the search window
	Dropped     uint64 // no free slot within the window
	Windows     uint64 // reconstruction windows produced
	Entries     uint64 // RMOB entries consumed
	SpatialHits uint64 // RMOB entries whose spatial lookup found a pattern
}

// Reconstructor rebuilds a total predicted miss order from the RMOB's
// temporal skeleton and the PST's spatial sequences (Figure 5). Temporal
// entries are placed first, spaced by their deltas; each entry's spatial
// sequence is then interleaved into the gaps its delta reserved.
type Reconstructor struct {
	pst      *PST
	rmob     *RMOB
	bufSlots int
	search   int

	// Reusable window storage.
	slots  []mem.Addr
	valid  []bool
	placed map[mem.Addr]bool // window-level dedup

	stats ReconStats
}

// NewReconstructor creates a reconstructor with the given buffer size
// (paper: 256 entries) and collision search distance (paper: 2).
func NewReconstructor(pst *PST, rmob *RMOB, bufSlots, search int) *Reconstructor {
	if bufSlots <= 0 {
		panic("core: non-positive reconstruction buffer")
	}
	if search < 0 {
		search = 0
	}
	return &Reconstructor{
		pst:      pst,
		rmob:     rmob,
		bufSlots: bufSlots,
		search:   search,
		slots:    make([]mem.Addr, bufSlots),
		valid:    make([]bool, bufSlots),
		placed:   make(map[mem.Addr]bool, bufSlots),
	}
}

// Stats returns cumulative reconstruction statistics.
func (rc *Reconstructor) Stats() ReconStats { return rc.stats }

// place inserts block at the intended slot, searching ±search for a free
// slot on collision (§4.3). A block already placed anywhere in the window
// is not placed twice: the RMOB records spatial *misses* that the PST may
// nevertheless predict on this pass, and both sources would otherwise
// consume two slots for one future access, cascading collisions. It reports
// whether the block was placed.
func (rc *Reconstructor) place(slot int, block mem.Addr) bool {
	if rc.placed[block] {
		return true // duplicate of an already-placed block
	}
	if slot < 0 || slot >= rc.bufSlots {
		rc.stats.Dropped++
		return false
	}
	if !rc.valid[slot] {
		rc.slots[slot], rc.valid[slot] = block, true
		rc.placed[block] = true
		rc.stats.PlacedExact++
		return true
	}
	for d := 1; d <= rc.search; d++ {
		if s := slot + d; s < rc.bufSlots && !rc.valid[s] {
			rc.slots[s], rc.valid[s] = block, true
			rc.placed[block] = true
			rc.stats.PlacedNear++
			return true
		}
		if s := slot - d; s >= 0 && !rc.valid[s] {
			rc.slots[s], rc.valid[s] = block, true
			rc.placed[block] = true
			rc.stats.PlacedNear++
			return true
		}
	}
	rc.stats.Dropped++
	return false
}

// Window reconstructs one buffer of predicted addresses starting from the
// RMOB position *pos, advancing *pos past every entry consumed. For each
// entry whose spatial lookup hits, onRegion (if non-nil) is informed of the
// region and the index used — the state the AGT keeps for spatial-only
// stream detection (§4.2). The returned blocks are in predicted total miss
// order.
func (rc *Reconstructor) Window(pos *uint64, onRegion func(region mem.Addr, k Key)) []mem.Addr {
	for i := range rc.valid {
		rc.valid[i] = false
	}
	clear(rc.placed)
	prevTrig := 0
	first := true
	consumed := 0
	for {
		e, ok := rc.rmob.At(*pos)
		if !ok {
			break
		}
		slot := 0
		if !first {
			slot = prevTrig + 1 + int(e.Delta)
			if slot >= rc.bufSlots {
				break // start of the next window; leave for the next call
			}
		}
		first = false
		*pos++
		consumed++
		rc.stats.Entries++
		rc.place(slot, e.Block)
		prevTrig = slot

		k := Key{PC: e.PC, Offset: e.Block.RegionOffset()}
		if ent := rc.pst.Lookup(k); ent != nil {
			rc.stats.SpatialHits++
			if onRegion != nil {
				onRegion(e.Block.Region(), k)
			}
			sp := slot
			for _, el := range ent.Seq {
				sp += 1 + int(el.Delta)
				if sp >= rc.bufSlots {
					break
				}
				if !rc.pst.Predicts(ent, el.Offset) {
					continue
				}
				b := mem.Addr(int64(e.Block) + int64(el.Offset)*mem.BlockSize)
				if !mem.SameRegion(b, e.Block) {
					continue // defensive: never predict outside the region
				}
				rc.place(sp, b)
			}
		}
	}
	if consumed == 0 {
		return nil
	}
	rc.stats.Windows++
	out := make([]mem.Addr, 0, consumed*2)
	for i, v := range rc.valid {
		if v {
			out = append(out, rc.slots[i])
		}
	}
	return out
}
