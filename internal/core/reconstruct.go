package core

import (
	"math/bits"

	"stems/internal/flat"
	"stems/internal/mem"
)

// ReconStats counts placement outcomes during reconstruction. §4.3 reports
// that searching at most two slots forward/backward places 99% of
// addresses, 92% in their original location; the ablation benchmark checks
// the same ratios on our workloads.
type ReconStats struct {
	PlacedExact uint64 // landed in the intended slot
	PlacedNear  uint64 // displaced within the search window
	Dropped     uint64 // no free slot within the window
	Windows     uint64 // reconstruction windows produced
	Entries     uint64 // RMOB entries consumed
	SpatialHits uint64 // RMOB entries whose spatial lookup found a pattern
}

// Reconstructor rebuilds a total predicted miss order from the RMOB's
// temporal skeleton and the PST's spatial sequences (Figure 5). Temporal
// entries are placed first, spaced by their deltas; each entry's spatial
// sequence is then interleaved into the gaps its delta reserved.
type Reconstructor struct {
	pst      *PST
	rmob     *RMOB
	bufSlots int
	search   int

	// Reusable window storage: the slot buffer, the window-level dedup
	// state, and the output buffer Window hands back. filled counts valid
	// slots so a full buffer short-circuits the collision search.
	//
	// Dedup is a per-region offset bitmap rather than a per-block hash
	// set: duplicates can only arise between blocks of the same 32-block
	// region, and every block placed from one RMOB entry shares that
	// entry's region — so one region probe covers the entry's temporal
	// placement and its whole spatial expansion, replacing a hash per
	// placed block with a hash per consumed entry.
	slots      []mem.Addr
	valid      []uint64 // occupancy bitmap over slots
	filled     int
	regionBits *flat.U64Table[regionCell]
	out        []mem.Addr

	// Batch state: Window gathers the RMOB entries of one window into one
	// probe array, resolving each entry's PST lookup through the batch's
	// key-dedup scratch as it goes (the table's hash index is probed once
	// per distinct key), then reconstructs by streaming over the resolved
	// probes. Deferred work queues let the batch pay once per distinct
	// key or region for what the entry-at-a-time loop paid per entry:
	//
	//   - touchQ:  PST recency. N lookups leave the LRU ordered by each
	//     key's last occurrence, so one Touch per distinct key, applied
	//     in ascending last-occurrence order, lands the identical state.
	//   - notifyQ: onRegion. The consumer folds notifications into a
	//     region-keyed last-writer-wins LRU, so one callback per distinct
	//     region, in ascending last-notification order, folds to the
	//     identical state.
	//
	// Both queues are probe-index buckets: slot i holds the pending
	// action whose last occurrence (so far) is probe i, moved forward as
	// later occurrences arrive, then drained in index order. Nothing
	// observes PST or consumer state mid-window, so the deferral is
	// invisible.
	//
	// The placement loop caches one expansion template per key *group*
	// (dense ids assigned to the distinct keys of a window): templates
	// live in the arena, tmplOff/tmplLen index it per group. Keys recur
	// about three times per window on the synthetic suite — interleaved,
	// rarely back to back — so two of every three template builds and
	// PST index probes are amortized away.
	batch    *LookupBatch
	arena    []expElem
	tmplOff  []int32
	tmplLen  []int32
	tmplMask []uint32
	touchQ   []int32
	notifyQ  []int32
	cells    []*regionCell

	stats ReconStats
}

// regionCell is the per-window state of one region: the offset dedup
// bitmap plus the deferred-notification record (the region, the last
// spatial key seen, and the probe index of that last sighting, +1 so the
// zero value means "none yet"). mark distinguishes an initialized cell
// from the zero value Ref inserts.
type regionCell struct {
	region mem.Addr
	kLast  uint64
	lastP1 int32
	bits   uint32
	mark   uint32
	ci     int32 // index into rc.cells
}

// expElem is one confident element of a resolved pattern, precomputed into
// the form the placement loop consumes: the prefix-summed slot advance
// from the trigger slot, the byte offset from the trigger block, and the
// region-offset dedup bit. Everything about an element except the trigger
// slot and block is determined by (lookup key, entry), so one template
// serves every probe of the key's group.
type expElem struct {
	spOff int32
	dOff  int32
	bit   uint32
}

// placeDrop marks a fully occupied search neighborhood in placeTab2.
const placeDrop = int8(127)

// placeTab2 drives the §4.3 collision search for the default distance of
// two: index by the 5-bit occupancy neighborhood around the intended slot
// (bit i = slot-2+i occupied) and get the displacement of the first free
// candidate in check order 0, +1, −1, +2, −2 — one table lookup instead
// of up to five dependent bit tests.
var placeTab2 = func() (t [32]int8) {
	for nb := range t {
		t[nb] = placeDrop
		for _, d := range [...]int8{0, 1, -1, 2, -2} {
			if nb&(1<<(2+d)) == 0 {
				t[nb] = d
				break
			}
		}
	}
	return
}()

// NewReconstructor creates a reconstructor with the given buffer size
// (paper: 256 entries) and collision search distance (paper: 2).
func NewReconstructor(pst *PST, rmob *RMOB, bufSlots, search int) *Reconstructor {
	if bufSlots <= 0 {
		panic("core: non-positive reconstruction buffer")
	}
	if search < 0 {
		search = 0
	}
	return &Reconstructor{
		pst:      pst,
		rmob:     rmob,
		bufSlots: bufSlots,
		search:   search,
		slots:    make([]mem.Addr, bufSlots),
		valid:    make([]uint64, (bufSlots+63)/64),
		// At most one region per consumed entry, and a window consumes at
		// most bufSlots entries (slots strictly advance), so the bitmap
		// table never grows and Ref pointers stay valid window-long.
		regionBits: flat.NewU64Table[regionCell](bufSlots),
		out:        make([]mem.Addr, 0, bufSlots),
		// Slots strictly advance entry to entry, so a window consumes at
		// most bufSlots RMOB entries: the gather batch and the deferred
		// queues never grow. The arena starts big enough for typical
		// windows and grows (amortized, then stable) if a window holds
		// unusually many long templates.
		batch:    NewLookupBatch(bufSlots),
		arena:    make([]expElem, 0, 8*bufSlots),
		tmplOff:  make([]int32, bufSlots),
		tmplLen:  make([]int32, bufSlots),
		tmplMask: make([]uint32, bufSlots),
		touchQ:   make([]int32, bufSlots),
		notifyQ:  make([]int32, bufSlots),
		cells:    make([]*regionCell, 0, bufSlots),
	}
}

// Stats returns cumulative reconstruction statistics.
func (rc *Reconstructor) Stats() ReconStats { return rc.stats }

// Window reconstructs one buffer of predicted addresses starting from the
// RMOB position *pos, advancing *pos past every entry consumed. For each
// region some consumed entry hit a spatial pattern in, onRegion (if
// non-nil) is called once with the region and the last lookup index used
// for it, calls ordered by that last use — the state the AGT keeps for
// spatial-only stream detection (§4.2) is region-keyed and last-writer-
// wins, so this folds to the same state as a call per entry. The returned
// blocks are in predicted total miss order.
//
// The returned slice is the reconstructor's reusable output buffer: it is
// valid until the next Window call. Callers that keep the addresses (the
// stream engine copies them into queue storage) need no copy.
//
// The reconstruction is batched (§4.3 collision search and dedup
// semantics unchanged, results byte-identical to the entry-at-a-time
// form): one fused pass walks the ring, resolves each entry's PST lookup
// through the batch's key-dedup scratch (the table's hash index is probed
// once per distinct key), and places temporal entries and spatial
// expansions from per-group templates, while recency updates and region
// notifications ride the deferred queues to one replay per distinct key
// or region.
//
// A block already placed anywhere in the window is not placed twice: the
// RMOB records spatial *misses* that the PST may nevertheless predict on
// this pass, and both sources would otherwise consume two slots for one
// future access, cascading collisions.
func (rc *Reconstructor) Window(pos *uint64, onRegion func(region mem.Addr, k Key)) []mem.Addr {
	// The RMOB bounds are loop-invariant — no append happens mid-window —
	// so the ring is read directly with the At validity check hoisted out
	// of the loop.
	rmob := rc.rmob
	ring := rmob.ring
	hi := rmob.appends
	lo := uint64(0)
	if hi > uint64(len(ring)) {
		lo = hi - uint64(len(ring))
	}
	p := *pos
	if p < lo || p >= hi {
		return nil
	}
	batch := rc.batch
	bufSlots := rc.bufSlots
	rmask := rmob.mask
	t := rc.pst.table
	batch.epoch++
	if batch.epoch == 0 { // stamp wraparound: invalidate everything once
		clear(batch.scratch)
		batch.epoch = 1
	}
	epoch := batch.epoch
	scratch := batch.scratch
	smask := uint32(len(scratch) - 1)
	shift := batch.sshift
	touchQ := rc.touchQ
	notifyQ := rc.notifyQ
	cells := rc.cells[:0]
	arena := rc.arena[:0]
	tmplOff := rc.tmplOff
	clear(rc.valid)
	rc.regionBits.Reset() // pointer-free cells; occupancy-only clear
	useCtrs, thr := rc.pst.useCounters, rc.pst.threshold
	search := rc.search
	fast2 := search == 2
	valid := rc.valid
	slots := rc.slots
	filled := 0
	var (
		dedup       *regionCell
		dedupRegion mem.Addr
		haveDedup   bool

		placedExact, placedNear, dropped, spatialHits uint64
	)
	n := int32(0)
	ngroups := int32(0)
	prevTrig := 0
	first := true
	var prevKey uint64
	var prevEnt *PSTEntry
	prevGrp := int32(-1)
	prevJ := int32(-1)
	for ; p < hi; p++ {
		var e RMOBEntry
		if rmask != 0 {
			e = ring[p&rmask]
		} else {
			e = ring[p%uint64(len(ring))]
		}
		slot := 0
		if !first {
			slot = prevTrig + 1 + int(e.Delta)
			if slot >= bufSlots {
				break // start of the next window; leave for the next call
			}
		}
		first = false
		prevTrig = slot
		i := n
		n++
		block := e.Block
		// One region probe serves the temporal placement and the whole
		// spatial expansion: every block below is in block's region.
		region := block.Region()
		if !haveDedup || region != dedupRegion {
			dedup = rc.regionBits.Ref(uint64(region))
			if dedup.mark == 0 {
				*dedup = regionCell{region: region, mark: 1, ci: int32(len(cells))}
				cells = append(cells, dedup)
			}
			dedupRegion, haveDedup = region, true
		}
		if bit := uint32(1) << uint(block.RegionOffset()); dedup.bits&bit == 0 {
			free := -1
			if valid[slot>>6]&(1<<(uint(slot)&63)) == 0 {
				free = slot
			} else if filled < bufSlots {
				if fast2 && uint(slot-2) <= uint(bufSlots-5) {
					w := slot - 2
					nb := valid[w>>6] >> (uint(w) & 63)
					if uint(w)&63 > 59 {
						nb |= valid[w>>6+1] << (64 - uint(w)&63)
					}
					if d := placeTab2[nb&31]; d != placeDrop {
						free = slot + int(d)
					}
				} else {
					for d := 1; d <= search; d++ {
						if s := slot + d; s < bufSlots && valid[s>>6]&(1<<(uint(s)&63)) == 0 {
							free = s
							break
						}
						if s := slot - d; s >= 0 && valid[s>>6]&(1<<(uint(s)&63)) == 0 {
							free = s
							break
						}
					}
				}
			}
			if free < 0 {
				// Buffer full or collision search exhausted.
				dropped++
			} else {
				dedup.bits |= bit
				slots[free] = block
				valid[free>>6] |= 1 << (uint(free) & 63)
				filled++
				if free == slot {
					placedExact++
				} else {
					placedNear++
				}
			}
		}
		// Resolve the entry's PST lookup through the key-dedup scratch:
		// one index probe per distinct key (Find is read-only, so
		// skipping repeats changes nothing), the key's pending recency
		// bump riding forward in touchQ to its latest occurrence.
		k := e.PC<<mem.RegionBlockBits | uint64(block.RegionOffset())
		var ent *PSTEntry
		var grp int32
		if prevGrp >= 0 && k == prevKey {
			ent, grp = prevEnt, prevGrp
			if prevJ >= 0 {
				s := &scratch[prevJ]
				touchQ[s.last] = 0
				touchQ[i] = prevJ + 1
				s.last = i
			}
		} else {
			for j := uint32(k*0x9E3779B97F4A7C15>>shift) & smask; ; j = (j + 1) & smask {
				s := &scratch[j]
				if s.stamp != epoch {
					// First occurrence of k in this window: the one
					// real index probe.
					node := int32(-1)
					if fn, ok := t.Find(k); ok {
						node = int32(fn)
						ent = t.RefAt(fn)
					}
					grp = ngroups
					ngroups++
					*s = scratchSlot{key: k, ent: ent, node: node, grp: grp, last: i, stamp: epoch}
					if node >= 0 {
						touchQ[i] = int32(j) + 1
						prevJ = int32(j)
					} else {
						prevJ = -1 // a missing key never bumps recency
					}
					// Build the group's expansion template on first
					// sight: confident, in-region elements only, with
					// the slot advance prefix-summed over the full
					// sequence (low-confidence elements still advance
					// the cursor). In bit-vector mode every stored
					// element predicts itself, so the counter filter
					// applies only in counter mode. The template
					// depends on (key, entry) alone, both fixed per
					// group for the window.
					start := int32(len(arena))
					msk := uint32(0)
					if ent != nil {
						keyOff := int(k & (mem.RegionBlocks - 1))
						sp := int32(0)
						for _, el := range ent.Sequence() {
							sp += 1 + int32(el.Delta)
							if useCtrs && ent.counterAt(el.Offset) < thr {
								continue
							}
							abs := keyOff + int(el.Offset)
							if uint(abs) >= mem.RegionBlocks {
								continue // defensive: never predict outside the region
							}
							msk |= 1 << uint(abs)
							arena = append(arena, expElem{
								spOff: sp,
								dOff:  int32(el.Offset) * mem.BlockSize,
								bit:   1 << uint(abs),
							})
						}
					}
					tmplOff[grp] = start
					rc.tmplLen[grp] = int32(len(arena)) - start
					rc.tmplMask[grp] = msk
					break
				}
				if s.key == k {
					ent = s.ent
					grp = s.grp
					if s.node >= 0 {
						touchQ[s.last] = 0
						touchQ[i] = int32(j) + 1
						s.last = i
						prevJ = int32(j)
					} else {
						prevJ = -1
					}
					break
				}
			}
			prevKey, prevEnt, prevGrp = k, ent, grp
		}
		if ent == nil {
			continue
		}
		spatialHits++
		if onRegion != nil {
			// Defer: only the region's last (key, order) sighting
			// matters to the region-keyed consumer. Ride it forward.
			if lp := dedup.lastP1; lp != 0 {
				notifyQ[lp-1] = 0
			}
			notifyQ[i] = dedup.ci + 1
			dedup.lastP1 = i + 1
			dedup.kLast = k
		}
		// A repeated key whose template offsets are all deduped already
		// (the common shape: the same trigger recurring in one region)
		// would skip every element — elide the whole walk. Elements cut
		// off at the window edge place nothing either way, so the full
		// mask is a safe over-approximation.
		if dedup.bits&rc.tmplMask[grp] == rc.tmplMask[grp] {
			continue
		}
		off := tmplOff[grp]
		for _, x := range arena[off : off+rc.tmplLen[grp]] {
			// spOff is strictly increasing, so the first out-of-window
			// element ends the expansion exactly like the sequential scan.
			sp := slot + int(x.spOff)
			if sp >= bufSlots {
				break
			}
			if dedup.bits&x.bit == 0 {
				b := mem.Addr(int64(block) + int64(x.dOff))
				free := -1
				if valid[sp>>6]&(1<<(uint(sp)&63)) == 0 {
					free = sp
				} else if filled < bufSlots {
					if fast2 && uint(sp-2) <= uint(bufSlots-5) {
						w := sp - 2
						nb := valid[w>>6] >> (uint(w) & 63)
						if uint(w)&63 > 59 {
							nb |= valid[w>>6+1] << (64 - uint(w)&63)
						}
						if d := placeTab2[nb&31]; d != placeDrop {
							free = sp + int(d)
						}
					} else {
						for d := 1; d <= search; d++ {
							if s := sp + d; s < bufSlots && valid[s>>6]&(1<<(uint(s)&63)) == 0 {
								free = s
								break
							}
							if s := sp - d; s >= 0 && valid[s>>6]&(1<<(uint(s)&63)) == 0 {
								free = s
								break
							}
						}
					}
				}
				if free < 0 {
					dropped++
				} else {
					dedup.bits |= x.bit
					slots[free] = b
					valid[free>>6] |= 1 << (uint(free) & 63)
					filled++
					if free == sp {
						placedExact++
					} else {
						placedNear++
					}
				}
			}
		}
	}
	batch.groups = int(ngroups)
	rc.stats.Entries += p - *pos
	*pos = p

	// Deferred recency replay: one Touch per distinct present key, in
	// ascending last-occurrence order. A run of Gets leaves the LRU
	// ordered by last occurrence, so this lands the byte-identical state
	// (nothing reads the table's order mid-window). The drain also
	// re-zeroes touchQ for the next window.
	for i := int32(0); i < n; i++ {
		if j := touchQ[i]; j != 0 {
			touchQ[i] = 0
			t.Touch(int(scratch[j-1].node))
		}
	}
	// Deferred notifications: one call per distinct region, ascending by
	// last sighting. The drain re-zeroes notifyQ for the next window.
	if onRegion != nil {
		for i := int32(0); i < n; i++ {
			if c := notifyQ[i]; c != 0 {
				notifyQ[i] = 0
				cell := cells[c-1]
				onRegion(cell.region, Key{
					PC:     cell.kLast >> mem.RegionBlockBits,
					Offset: int(cell.kLast & (mem.RegionBlocks - 1)),
				})
			}
		}
	}
	rc.cells = cells
	rc.arena = arena
	rc.filled = filled
	rc.stats.PlacedExact += placedExact
	rc.stats.PlacedNear += placedNear
	rc.stats.Dropped += dropped
	rc.stats.SpatialHits += spatialHits
	rc.stats.Windows++
	rc.out = rc.out[:0]
	for w, word := range rc.valid {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			rc.out = append(rc.out, rc.slots[i])
		}
	}
	return rc.out
}
