package core

import (
	"math/bits"

	"stems/internal/flat"
	"stems/internal/mem"
)

// ReconStats counts placement outcomes during reconstruction. §4.3 reports
// that searching at most two slots forward/backward places 99% of
// addresses, 92% in their original location; the ablation benchmark checks
// the same ratios on our workloads.
type ReconStats struct {
	PlacedExact uint64 // landed in the intended slot
	PlacedNear  uint64 // displaced within the search window
	Dropped     uint64 // no free slot within the window
	Windows     uint64 // reconstruction windows produced
	Entries     uint64 // RMOB entries consumed
	SpatialHits uint64 // RMOB entries whose spatial lookup found a pattern
}

// Reconstructor rebuilds a total predicted miss order from the RMOB's
// temporal skeleton and the PST's spatial sequences (Figure 5). Temporal
// entries are placed first, spaced by their deltas; each entry's spatial
// sequence is then interleaved into the gaps its delta reserved.
type Reconstructor struct {
	pst      *PST
	rmob     *RMOB
	bufSlots int
	search   int

	// Reusable window storage: the slot buffer, the window-level dedup
	// state, and the output buffer Window hands back. filled counts valid
	// slots so a full buffer short-circuits the collision search.
	//
	// Dedup is a per-region offset bitmap rather than a per-block hash
	// set: duplicates can only arise between blocks of the same 32-block
	// region, and every block place places from one RMOB entry shares that
	// entry's region — so one region probe covers the entry's temporal
	// placement and its whole spatial expansion, replacing a hash per
	// placed block with a hash per consumed entry.
	slots      []mem.Addr
	valid      []uint64 // occupancy bitmap over slots
	filled     int
	regionBits *flat.U64Table[uint32]
	out        []mem.Addr

	stats ReconStats
}

// NewReconstructor creates a reconstructor with the given buffer size
// (paper: 256 entries) and collision search distance (paper: 2).
func NewReconstructor(pst *PST, rmob *RMOB, bufSlots, search int) *Reconstructor {
	if bufSlots <= 0 {
		panic("core: non-positive reconstruction buffer")
	}
	if search < 0 {
		search = 0
	}
	return &Reconstructor{
		pst:      pst,
		rmob:     rmob,
		bufSlots: bufSlots,
		search:   search,
		slots: make([]mem.Addr, bufSlots),
		valid: make([]uint64, (bufSlots+63)/64),
		// At most one region per consumed entry, and a window consumes at
		// most bufSlots entries (slots strictly advance), so the bitmap
		// table never grows.
		regionBits: flat.NewU64Table[uint32](bufSlots),
		out:        make([]mem.Addr, 0, bufSlots),
	}
}

// Stats returns cumulative reconstruction statistics.
func (rc *Reconstructor) Stats() ReconStats { return rc.stats }

func (rc *Reconstructor) slotValid(i int) bool {
	return rc.valid[i>>6]&(1<<(uint(i)&63)) != 0
}

// place inserts block at the intended slot, searching ±search for a free
// slot on collision (§4.3). A block already placed anywhere in the window
// is not placed twice: the RMOB records spatial *misses* that the PST may
// nevertheless predict on this pass, and both sources would otherwise
// consume two slots for one future access, cascading collisions — callers
// test the dedup bit before calling, so place never sees a duplicate.
// dedup is the caller-held dedup bitmap for block's region (see
// regionBits) and bit the block's offset bit within it.
func (rc *Reconstructor) place(dedup *uint32, bit uint32, slot int, block mem.Addr) {
	free := -1
	if slot >= 0 && slot < rc.bufSlots && rc.filled < rc.bufSlots {
		free = slot
		if rc.slotValid(slot) {
			free = -1
			for d := 1; d <= rc.search; d++ {
				if s := slot + d; s < rc.bufSlots && !rc.slotValid(s) {
					free = s
					break
				}
				if s := slot - d; s >= 0 && !rc.slotValid(s) {
					free = s
					break
				}
			}
		}
	}
	if free < 0 {
		// Out of range, buffer full, or collision search exhausted.
		rc.stats.Dropped++
		return
	}
	*dedup |= bit
	rc.slots[free] = block
	rc.valid[free>>6] |= 1 << (uint(free) & 63)
	rc.filled++
	if free == slot {
		rc.stats.PlacedExact++
	} else {
		rc.stats.PlacedNear++
	}
}

// Window reconstructs one buffer of predicted addresses starting from the
// RMOB position *pos, advancing *pos past every entry consumed. For each
// entry whose spatial lookup hits, onRegion (if non-nil) is informed of the
// region and the index used — the state the AGT keeps for spatial-only
// stream detection (§4.2). The returned blocks are in predicted total miss
// order.
//
// The returned slice is the reconstructor's reusable output buffer: it is
// valid until the next Window call. Callers that keep the addresses (the
// stream engine copies them into queue storage) need no copy.
func (rc *Reconstructor) Window(pos *uint64, onRegion func(region mem.Addr, k Key)) []mem.Addr {
	clear(rc.valid)
	rc.filled = 0
	rc.regionBits.Reset() // values are uint32 bitmaps; occupancy-only clear
	prevTrig := 0
	first := true
	consumed := 0
	// Spatial misses of one generation land in the RMOB back to back, so
	// runs of consecutive entries share a lookup index; a repeat of the
	// immediately preceding onRegion notification is an exact no-op (same
	// value, already most-recent) and is skipped. The RMOB bounds are
	// loop-invariant — no append happens mid-window — so the ring is read
	// directly with the At validity check hoisted out of the loop.
	var lastRegion mem.Addr
	var lastK Key
	notified := false
	rmob := rc.rmob
	hi := rmob.appends
	lo := uint64(0)
	if hi > uint64(len(rmob.ring)) {
		lo = hi - uint64(len(rmob.ring))
	}
	for {
		p := *pos
		if p < lo || p >= hi {
			break
		}
		e := rmob.ring[rmob.slot(p)]
		slot := 0
		if !first {
			slot = prevTrig + 1 + int(e.Delta)
			if slot >= rc.bufSlots {
				break // start of the next window; leave for the next call
			}
		}
		first = false
		*pos++
		consumed++
		rc.stats.Entries++
		// One region probe serves the temporal placement and the whole
		// spatial expansion: every block below is in e.Block's region.
		region := e.Block.Region()
		dedup := rc.regionBits.Ref(uint64(region))
		if bit := uint32(1) << uint(e.Block.RegionOffset()); *dedup&bit == 0 {
			rc.place(dedup, bit, slot, e.Block)
		}
		prevTrig = slot

		k := Key{PC: e.PC, Offset: e.Block.RegionOffset()}
		if ent := rc.pst.Lookup(k); ent != nil {
			rc.stats.SpatialHits++
			if onRegion != nil {
				if !notified || region != lastRegion || k != lastK {
					onRegion(region, k)
					lastRegion, lastK, notified = region, k, true
				}
			}
			sp := slot
			useCtrs, thr := rc.pst.useCounters, rc.pst.threshold
			for _, el := range ent.Sequence() {
				sp += 1 + int(el.Delta)
				if sp >= rc.bufSlots {
					break
				}
				// predictsHot with the mode test hoisted: the counter
				// compare inlines, keeping the hot expansion call-free.
				if useCtrs {
					if ent.counterAt(el.Offset) < thr {
						continue
					}
				} else if !rc.pst.predictsHot(ent, el.Offset) {
					continue
				}
				b := mem.Addr(int64(e.Block) + int64(el.Offset)*mem.BlockSize)
				if !mem.SameRegion(b, e.Block) {
					continue // defensive: never predict outside the region
				}
				if bit := uint32(1) << uint(b.RegionOffset()); *dedup&bit == 0 {
					rc.place(dedup, bit, sp, b)
				}
			}
		}
	}
	if consumed == 0 {
		return nil
	}
	rc.stats.Windows++
	rc.out = rc.out[:0]
	for w, word := range rc.valid {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			rc.out = append(rc.out, rc.slots[i])
		}
	}
	return rc.out
}
