package core

import (
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

type recordingFetcher struct{ blocks []mem.Addr }

func (f *recordingFetcher) Fetch(b mem.Addr) uint64 {
	f.blocks = append(f.blocks, b)
	return 0
}

// figure3Trace builds the observed miss order of Figure 3 with concrete
// addresses and PCs: A, A+4, B, A+2, B+6, A-1, C, D, D+1, D+2.
func figure3Trace() (accs []trace.Access, A, B, C, D mem.Addr) {
	A = mem.Addr(1*mem.RegionSize + 8*mem.BlockSize)
	B = mem.Addr(2 * mem.RegionSize)
	C = mem.Addr(3*mem.RegionSize + 5*mem.BlockSize)
	D = mem.Addr(4*mem.RegionSize + 3*mem.BlockSize)
	blk := func(base mem.Addr, off int) mem.Addr {
		return mem.Addr(int64(base) + int64(off)*mem.BlockSize)
	}
	accs = []trace.Access{
		{Addr: A, PC: 1},
		{Addr: blk(A, 4), PC: 11},
		{Addr: B, PC: 2},
		{Addr: blk(A, 2), PC: 12},
		{Addr: blk(B, 6), PC: 21},
		{Addr: blk(A, -1), PC: 13},
		{Addr: C, PC: 3},
		{Addr: D, PC: 4},
		{Addr: blk(D, 1), PC: 41},
		{Addr: blk(D, 2), PC: 42},
	}
	return accs, A, B, C, D
}

// endAllGenerations evicts every block of the trace from L1, terminating
// all generations and training the PST.
func endAllGenerations(s *STeMS, accs []trace.Access) {
	for _, a := range accs {
		s.OnL1Evict(a.Addr.Block())
	}
}

func bitvecConfig() config.STeMS {
	cfg := config.DefaultSTeMS()
	cfg.UseCounters = false // one training pass suffices
	return cfg
}

// TestTrainingDecomposesFigure3 verifies the training side of Figure 3:
// after one observed pass and one filtered pass, the PST holds exactly the
// paper's spatial sequences and the RMOB's second-pass entries carry the
// paper's trigger deltas (A,0) (B,1) (C,3) (D,0).
func TestTrainingDecomposesFigure3(t *testing.T) {
	s := New(bitvecConfig(), nil) // analysis mode
	accs, A, B, _, D := figure3Trace()

	// Pass 1: everything is new; all 10 events enter the RMOB.
	for _, a := range accs {
		s.OnOffChipEvent(a, false)
	}
	if got := s.Stats().RMOBAppends; got != 10 {
		t.Fatalf("pass-1 RMOB appends = %d, want 10", got)
	}
	endAllGenerations(s, accs)

	// PST: spatial sequences with deltas exactly as in Figure 3.
	checkSeq := func(pc uint64, trig mem.Addr, want []SeqElem) {
		t.Helper()
		ent := s.PST().Lookup(Key{PC: pc, Offset: trig.RegionOffset()})
		if ent == nil {
			t.Fatalf("PC %d: no PST entry", pc)
		}
		if len(ent.Sequence()) != len(want) {
			t.Fatalf("PC %d: seq = %+v, want %+v", pc, ent.Sequence(), want)
		}
		for i := range want {
			if ent.Sequence()[i] != want[i] {
				t.Errorf("PC %d elem %d: got %+v, want %+v", pc, i, ent.Sequence()[i], want[i])
			}
		}
	}
	checkSeq(1, A, []SeqElem{{Offset: 4, Delta: 0}, {Offset: 2, Delta: 1}, {Offset: -1, Delta: 1}})
	checkSeq(2, B, []SeqElem{{Offset: 6, Delta: 1}})
	checkSeq(4, D, []SeqElem{{Offset: 1, Delta: 0}, {Offset: 2, Delta: 0}})

	// Pass 2: spatial accesses are now predicted, so only the four
	// triggers reach the RMOB — with Figure 3's deltas.
	before := s.RMOB().Appends()
	for _, a := range accs {
		s.OnOffChipEvent(a, true) // covered: training only
	}
	appended := s.RMOB().Appends() - before
	if appended != 4 {
		t.Fatalf("pass-2 RMOB appends = %d, want 4 (triggers only)", appended)
	}
	if s.Stats().SpatialFiltered != 6 {
		t.Fatalf("spatially filtered = %d, want 6", s.Stats().SpatialFiltered)
	}
	wantDeltas := []uint8{0, 1, 3, 0}
	for i, want := range wantDeltas {
		e, ok := s.RMOB().At(before + uint64(i))
		if !ok {
			t.Fatalf("RMOB entry %d unavailable", i)
		}
		if e.Delta != want {
			t.Errorf("trigger %d delta = %d, want %d", i, e.Delta, want)
		}
	}
}

// TestEndToEndReplayCoversSequence: after one traversal, re-missing the
// head reconstructs and streams the whole interleaved sequence.
func TestEndToEndReplayCoversSequence(t *testing.T) {
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{Queues: 8, Lookahead: 8, SVBEntries: 64}, f)
	s := New(bitvecConfig(), eng)
	accs, _, _, _, _ := figure3Trace()

	for _, a := range accs {
		s.OnOffChipEvent(a, false)
	}
	endAllGenerations(s, accs)

	covered := 0
	for _, a := range accs {
		hit, _ := eng.Lookup(a.Addr)
		if hit {
			covered++
		}
		s.OnOffChipEvent(a, hit)
	}
	// Everything except the initiating miss should be covered.
	if covered < len(accs)-1 {
		t.Fatalf("replay covered %d of %d", covered, len(accs))
	}
	if s.Stats().ReconStreams == 0 {
		t.Fatal("no reconstruction stream started")
	}
}

// TestSpatialOnlyStreamCoversCompulsoryRegion: a pattern learned in some
// regions applies to a region never seen before — the compulsory-miss
// coverage that pure temporal streaming fundamentally cannot provide
// (§2.1, §4.2). This is the DSS scan scenario.
func TestSpatialOnlyStreamCoversCompulsoryRegion(t *testing.T) {
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{Queues: 8, Lookahead: 8, SVBEntries: 64}, f)
	s := New(bitvecConfig(), eng)

	const scanPC = 77
	offsets := []int{0, 3, 7, 12}
	// Train the layout on two fresh regions (the scan's first pages).
	for r := 1; r <= 2; r++ {
		var accs []trace.Access
		for _, off := range offsets {
			a := trace.Access{
				Addr: mem.Addr(r*mem.RegionSize + off*mem.BlockSize),
				PC:   scanPC,
			}
			accs = append(accs, a)
			s.OnOffChipEvent(a, false)
		}
		endAllGenerations(s, accs)
	}

	// A brand-new page: the trigger misses (no RMOB history), but the
	// spatial-only stream must cover the remaining blocks.
	const newRegion = 500
	covered := 0
	for i, off := range offsets {
		a := trace.Access{
			Addr: mem.Addr(newRegion*mem.RegionSize + off*mem.BlockSize),
			PC:   scanPC,
		}
		hit, _ := eng.Lookup(a.Addr)
		if hit {
			covered++
		}
		s.OnOffChipEvent(a, hit)
		if i == 0 && hit {
			t.Fatal("compulsory trigger cannot be covered")
		}
	}
	if covered != len(offsets)-1 {
		t.Fatalf("spatial-only stream covered %d of %d non-trigger blocks",
			covered, len(offsets)-1)
	}
	if s.Stats().SpatialOnlyStreams == 0 {
		t.Fatal("no spatial-only stream started")
	}
}

// TestSpatialOnlySkippedWhenReconstructionPredicted: if reconstruction
// already predicted the region with the same index, a redundant spatial-only
// stream must not launch.
func TestSpatialOnlySkippedWhenReconstructionPredicted(t *testing.T) {
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{Queues: 8, Lookahead: 8, SVBEntries: 64}, f)
	s := New(bitvecConfig(), eng)
	accs, _, _, _, _ := figure3Trace()
	for _, a := range accs {
		s.OnOffChipEvent(a, false)
	}
	endAllGenerations(s, accs)
	for _, a := range accs {
		hit, _ := eng.Lookup(a.Addr)
		s.OnOffChipEvent(a, hit)
	}
	if got := s.Stats().SpatialOnlyStreams; got != 0 {
		t.Fatalf("spatial-only streams = %d, want 0 (reconstruction handled all)", got)
	}
}

// TestEachBlockRecordedOncePerGeneration: §4.3 — "Each block can only
// appear once in a sequence."
func TestEachBlockRecordedOncePerGeneration(t *testing.T) {
	s := New(bitvecConfig(), nil)
	A := mem.Addr(1 * mem.RegionSize)
	seq := []trace.Access{
		{Addr: A, PC: 1},
		{Addr: A + 4*mem.BlockSize, PC: 2},
		{Addr: A + 4*mem.BlockSize, PC: 2}, // repeat
		{Addr: A + 9*mem.BlockSize, PC: 3},
	}
	for _, a := range seq {
		s.OnOffChipEvent(a, false)
	}
	s.OnL1Evict(A)
	ent := s.PST().Lookup(Key{PC: 1, Offset: 0})
	if ent == nil {
		t.Fatal("no trained entry")
	}
	if len(ent.Sequence()) != 2 {
		t.Fatalf("sequence = %+v, want 2 distinct elements", ent.Sequence())
	}
}

// TestWritesIgnored: the coverage target is off-chip *read* misses.
func TestWritesIgnored(t *testing.T) {
	s := New(bitvecConfig(), nil)
	s.OnOffChipEvent(trace.Access{Addr: 64, PC: 1, Write: true}, false)
	if s.Stats().Events != 0 || s.Stats().RMOBAppends != 0 {
		t.Fatal("write trained the predictor")
	}
}

// TestAnalysisModeNoEngine: a nil engine must never be dereferenced.
func TestAnalysisModeNoEngine(t *testing.T) {
	s := New(config.DefaultSTeMS(), nil)
	accs, _, _, _, _ := figure3Trace()
	for pass := 0; pass < 3; pass++ {
		for _, a := range accs {
			s.OnOffChipEvent(a, false)
		}
		endAllGenerations(s, accs)
	}
	if s.Stats().Events != 30 {
		t.Fatalf("events = %d, want 30", s.Stats().Events)
	}
}

// TestCountersNeedTwoPasses: with default saturating counters, a single
// observation is not enough to predict — the §4.3 hysteresis.
func TestCountersNeedTwoPasses(t *testing.T) {
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{SVBEntries: 64}, f)
	s := New(config.DefaultSTeMS(), eng)
	const pc = 9
	offsets := []int{0, 5}
	run := func(region int) (covered int) {
		var accs []trace.Access
		for _, off := range offsets {
			a := trace.Access{Addr: mem.Addr(region*mem.RegionSize + off*mem.BlockSize), PC: pc}
			accs = append(accs, a)
			hit, _ := eng.Lookup(a.Addr)
			if hit {
				covered++
			}
			s.OnOffChipEvent(a, hit)
		}
		endAllGenerations(s, accs)
		return covered
	}
	if run(1) != 0 {
		t.Fatal("cold region covered")
	}
	if run(2) != 0 {
		t.Fatal("counter=1 predicted (threshold is 2)")
	}
	if run(3) != 1 {
		t.Fatal("counter=2 did not predict on third region")
	}
}

// TestDeltaClamping: enormous gaps between events must clamp, not wrap.
func TestDeltaClamping(t *testing.T) {
	s := New(bitvecConfig(), nil)
	A := mem.Addr(1 * mem.RegionSize)
	s.OnOffChipEvent(trace.Access{Addr: A, PC: 1}, false)
	// 300 foreign events spread over 10 regions (so region A's generation
	// stays resident in the 64-entry AGT).
	for i := 0; i < 300; i++ {
		region := 10 + i%10
		off := (i / 10) % mem.RegionBlocks
		s.OnOffChipEvent(trace.Access{
			Addr: mem.Addr(region*mem.RegionSize + off*mem.BlockSize), PC: 2,
		}, false)
	}
	s.OnOffChipEvent(trace.Access{Addr: A + mem.BlockSize, PC: 3}, false)
	s.OnL1Evict(A)
	ent := s.PST().Lookup(Key{PC: 1, Offset: 0})
	if ent == nil || len(ent.Sequence()) != 1 {
		t.Fatalf("entry = %+v", ent)
	}
	if ent.Sequence()[0].Delta != 255 {
		t.Fatalf("delta = %d, want clamped 255", ent.Sequence()[0].Delta)
	}
}

// TestSpatialOnlyOnIndexMismatch exercises §4.2's "if they differ" branch:
// a region predicted during reconstruction under one spatial index begins a
// generation under a different index, so STeMS must launch a spatial-only
// stream with the *correct* index's pattern.
func TestSpatialOnlyOnIndexMismatch(t *testing.T) {
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{Queues: 8, Lookahead: 8, SVBEntries: 64}, f)
	s := New(bitvecConfig(), eng)

	const (
		pcA = 0xA0 // the code path reconstruction believes touched region R
		pcB = 0xB0 // the code path that actually triggers the generation
	)
	R := mem.Addr(10 * mem.RegionSize)
	other := mem.Addr(20 * mem.RegionSize)

	// Train pattern B in unrelated regions so PST{pcB, 0} exists.
	for r := 30; r <= 31; r++ {
		base := mem.Addr(r * mem.RegionSize)
		accs := []trace.Access{
			{Addr: base, PC: pcB},
			{Addr: base + 5*mem.BlockSize, PC: 0x1},
			{Addr: base + 6*mem.BlockSize, PC: 0x2},
		}
		for _, a := range accs {
			s.OnOffChipEvent(a, false)
		}
		endAllGenerations(s, accs)
	}
	// Train pattern A for region R itself and record it in the RMOB.
	accsA := []trace.Access{
		{Addr: R, PC: pcA},
		{Addr: R + 1*mem.BlockSize, PC: 0x3},
		{Addr: other, PC: 0x4},
	}
	for _, a := range accsA {
		s.OnOffChipEvent(a, false)
	}
	endAllGenerations(s, accsA)

	// Re-miss R under pcA: reconstruction runs and registers region R with
	// index {pcA, 0}.
	s.OnOffChipEvent(trace.Access{Addr: R, PC: pcA}, false)
	if s.Stats().ReconStreams == 0 {
		t.Fatal("setup failed: no reconstruction stream")
	}
	endAllGenerations(s, accsA)

	// Now the generation for R opens under pcB — a *covered* trigger whose
	// index mismatches the reconstruction's: spatial-only must fire with
	// pattern B (offsets +5, +6 relative to the trigger).
	f.blocks = nil
	before := s.Stats().SpatialOnlyStreams
	s.OnOffChipEvent(trace.Access{Addr: R, PC: pcB}, true)
	if s.Stats().SpatialOnlyStreams != before+1 {
		t.Fatalf("spatial-only streams = %d, want %d", s.Stats().SpatialOnlyStreams, before+1)
	}
	// The eager spatial-only stream fetches pattern B's blocks.
	want := map[mem.Addr]bool{R + 5*mem.BlockSize: true, R + 6*mem.BlockSize: true}
	found := 0
	for _, b := range f.blocks {
		if want[b] {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("pattern B blocks not fetched: %v", f.blocks)
	}
}

// TestFilteredMissesShrinkRMOB reproduces §4.3's storage argument: with a
// dense, stable spatial pattern, the RMOB records a small fraction of the
// events TMS's CMOB would.
func TestFilteredMissesShrinkRMOB(t *testing.T) {
	s := New(bitvecConfig(), nil)
	const perRegion = 8
	// Two passes over 50 regions with a stable 8-block pattern.
	for pass := 0; pass < 2; pass++ {
		var accs []trace.Access
		for r := 1; r <= 50; r++ {
			for o := 0; o < perRegion; o++ {
				a := trace.Access{
					Addr: mem.Addr(r*mem.RegionSize + o*2*mem.BlockSize),
					PC:   0x7,
				}
				accs = append(accs, a)
				s.OnOffChipEvent(a, false)
			}
		}
		endAllGenerations(s, accs)
	}
	events := s.Stats().Events
	appends := s.Stats().RMOBAppends
	// Pass 1 appends everything (nothing predicted yet); pass 2 appends
	// only triggers: total ≈ (events/2) + 50.
	if appends >= events*3/4 {
		t.Fatalf("RMOB filter ineffective: %d appends of %d events", appends, events)
	}
	if s.Stats().SpatialFiltered == 0 {
		t.Fatal("nothing filtered")
	}
}
