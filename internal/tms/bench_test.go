package tms

import (
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

type nullFetcher struct{}

func (nullFetcher) Fetch(mem.Addr) uint64 { return 0 }

func BenchmarkOnOffChipEvent(b *testing.B) {
	eng := stream.NewEngine(stream.Config{}, nullFetcher{})
	tm := New(config.DefaultTMS(), eng)
	accs := make([]trace.Access, 8192)
	for i := range accs {
		accs[i] = trace.Access{Addr: mem.Addr((i % 4096) * mem.BlockSize)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.OnOffChipEvent(accs[i%len(accs)], false)
	}
}
