package tms

import (
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

type recordingFetcher struct{ blocks []mem.Addr }

func (f *recordingFetcher) Fetch(b mem.Addr) uint64 {
	f.blocks = append(f.blocks, b)
	return 0
}

func newTestTMS(cmob int) (*TMS, *stream.Engine, *recordingFetcher) {
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{Queues: 8, Lookahead: 4, SVBEntries: 64}, f)
	cfg := config.DefaultTMS()
	cfg.CMOBEntries = cmob
	cfg.Lookahead = 4
	return New(cfg, eng), eng, f
}

func miss(block int) trace.Access {
	return trace.Access{Addr: mem.Addr(block * mem.BlockSize)}
}

// replay sends a sequence of miss events, reporting covered per the SVB.
func replay(t *TMS, eng *stream.Engine, blocks []int) (covered int) {
	for _, b := range blocks {
		a := miss(b)
		hit, _ := eng.Lookup(a.Addr)
		if hit {
			covered++
		}
		t.OnOffChipEvent(a, hit)
	}
	return covered
}

func TestFirstTraversalRecordsOnly(t *testing.T) {
	tm, eng, f := newTestTMS(1024)
	seq := []int{10, 20, 30, 40, 50}
	if got := replay(tm, eng, seq); got != 0 {
		t.Fatalf("first traversal covered %d, want 0", got)
	}
	if tm.Stats().Appends != 5 {
		t.Fatalf("appends = %d, want 5", tm.Stats().Appends)
	}
	if len(f.blocks) != 0 {
		t.Fatalf("prefetched during cold traversal: %v", f.blocks)
	}
}

func TestSecondTraversalStreams(t *testing.T) {
	tm, eng, _ := newTestTMS(1024)
	seq := []int{10, 20, 30, 40, 50, 60, 70, 80}
	replay(tm, eng, seq)
	covered := replay(tm, eng, seq)
	// The first miss of the replay restarts the stream (cannot be covered);
	// everything after it should stream from the CMOB.
	if covered < len(seq)-2 {
		t.Fatalf("second traversal covered %d of %d", covered, len(seq))
	}
	if tm.Stats().StreamsBegun == 0 {
		t.Fatal("no stream started")
	}
}

func TestStreamFollowsRecordedOrder(t *testing.T) {
	tm, eng, f := newTestTMS(1024)
	seq := []int{5, 9, 2, 14, 7}
	replay(tm, eng, seq)
	f.blocks = nil
	// Re-miss the first element: the probe fetch must be the *second*
	// element of the recorded sequence.
	a := miss(5)
	tm.OnOffChipEvent(a, false)
	if len(f.blocks) == 0 {
		t.Fatal("no prefetch after re-miss")
	}
	if f.blocks[0] != miss(9).Addr.Block() {
		t.Fatalf("first streamed block = %v, want block 9", f.blocks[0])
	}
}

func TestMidSequenceEntry(t *testing.T) {
	tm, eng, f := newTestTMS(1024)
	seq := []int{10, 20, 30, 40, 50}
	replay(tm, eng, seq)
	f.blocks = nil
	tm.OnOffChipEvent(miss(30), false)
	if len(f.blocks) == 0 || f.blocks[0] != miss(40).Addr.Block() {
		t.Fatalf("mid-sequence stream = %v, want to start at block 40", f.blocks)
	}
}

func TestUnknownAddressNoStream(t *testing.T) {
	tm, eng, _ := newTestTMS(1024)
	replay(tm, eng, []int{1, 2, 3})
	before := tm.Stats().StreamsBegun
	tm.OnOffChipEvent(miss(999), false)
	if tm.Stats().StreamsBegun != before {
		t.Fatal("stream started for never-seen address")
	}
	if tm.Stats().LookupMisses == 0 {
		t.Fatal("lookup miss not counted")
	}
}

func TestRingWrapInvalidatesStaleIndex(t *testing.T) {
	tm, eng, _ := newTestTMS(8)
	replay(tm, eng, []int{1, 2, 3, 4})
	// Overflow the 8-entry CMOB so blocks 1..4 are overwritten.
	replay(tm, eng, []int{100, 101, 102, 103, 104, 105, 106, 107})
	before := tm.Stats().StreamsBegun
	tm.OnOffChipEvent(miss(1), false)
	if tm.Stats().StreamsBegun != before {
		t.Fatal("stream started from overwritten CMOB region")
	}
	if tm.Stats().StaleLookups == 0 {
		t.Fatal("stale lookup not detected")
	}
}

func TestCMOBLen(t *testing.T) {
	tm, eng, _ := newTestTMS(4)
	if tm.CMOBLen() != 0 {
		t.Fatalf("empty CMOBLen = %d", tm.CMOBLen())
	}
	replay(tm, eng, []int{1, 2})
	if tm.CMOBLen() != 2 {
		t.Fatalf("CMOBLen = %d, want 2", tm.CMOBLen())
	}
	replay(tm, eng, []int{3, 4, 5, 6})
	if tm.CMOBLen() != 4 {
		t.Fatalf("CMOBLen after wrap = %d, want 4", tm.CMOBLen())
	}
}

func TestCoveredMissesAppendButDoNotStartStreams(t *testing.T) {
	tm, eng, _ := newTestTMS(1024)
	seq := []int{10, 20, 30, 40, 50, 60}
	replay(tm, eng, seq)
	begun := tm.Stats().StreamsBegun
	covered := replay(tm, eng, seq)
	if covered == 0 {
		t.Fatal("replay covered nothing")
	}
	// Only the uncovered misses (the stream head) should begin streams.
	newStreams := tm.Stats().StreamsBegun - begun
	if newStreams > uint64(len(seq)-covered) {
		t.Fatalf("covered misses started streams: %d streams, %d uncovered",
			newStreams, len(seq)-covered)
	}
	// Appends continue for covered misses, keeping sequences fresh.
	if tm.Stats().Appends != uint64(2*len(seq)) {
		t.Fatalf("appends = %d, want %d", tm.Stats().Appends, 2*len(seq))
	}
}

func TestWritesIgnored(t *testing.T) {
	tm, _, _ := newTestTMS(64)
	tm.OnOffChipEvent(trace.Access{Addr: 64, Write: true}, false)
	if tm.Stats().Appends != 0 {
		t.Fatal("write appended to CMOB")
	}
}

func TestLongStreamRefills(t *testing.T) {
	tm, eng, _ := newTestTMS(4096)
	// A long sequence: after replay, a single stream must cover far more
	// than the initial chunk (2*lookahead = 8), proving Refill works.
	seq := make([]int, 200)
	for i := range seq {
		seq[i] = 1000 + i*3
	}
	replay(tm, eng, seq)
	covered := replay(tm, eng, seq)
	if covered < 150 {
		t.Fatalf("long replay covered only %d of 200 (refill broken?)", covered)
	}
}

func TestDependentChainParallelized(t *testing.T) {
	// The paper's key TMS property (§2.1): dependence chains are fetched in
	// parallel because the sequence stores the addresses themselves. Here:
	// after training, the stream engine holds several chain blocks ready
	// before the processor asks for them.
	tm, eng, f := newTestTMS(1024)
	chain := []int{3, 77, 12, 901, 44, 6, 250, 18}
	replay(tm, eng, chain)
	f.blocks = nil
	tm.OnOffChipEvent(miss(3), false) // head miss restarts stream
	eng.Lookup(miss(77).Addr)         // consume probe -> stream opens
	if len(f.blocks) < 4 {
		t.Fatalf("only %d chain blocks in flight, want >= lookahead", len(f.blocks))
	}
}
