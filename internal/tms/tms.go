// Package tms implements Temporal Memory Streaming (Wenisch et al., ISCA
// 2005), the temporal-correlation baseline of the paper (§2.1–2.2).
//
// TMS records the sequence of off-chip read misses in a large circular
// buffer (the CMOB, ~2MB per processor, held in main memory) together with
// an index mapping each address to its most recent position. On an
// unpredicted off-chip miss, TMS locates the previous occurrence of the
// address and streams the blocks that followed it, throttled by consumption
// from the streamed value buffer.
package tms

import (
	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

// Stats counts predictor activity.
type Stats struct {
	Appends      uint64 // entries recorded in the CMOB
	StreamsBegun uint64 // successful index lookups that started a stream
	LookupMisses uint64 // off-chip misses with no prior occurrence
	StaleLookups uint64 // index entries invalidated by CMOB wrap-around
}

// cursor is the per-stream read position in the CMOB (stored in Queue.Tag).
type cursor struct {
	pos uint64 // next CMOB position to read
}

// TMS is the prefetcher.
type TMS struct {
	cfg    config.TMS
	engine *stream.Engine

	cmob    []mem.Addr          // ring buffer of miss block addresses
	appends uint64              // total entries ever appended
	index   map[mem.Addr]uint64 // block -> most recent append position

	stats Stats
}

// New creates a TMS prefetcher streaming through engine.
func New(cfg config.TMS, engine *stream.Engine) *TMS {
	if cfg.CMOBEntries <= 0 {
		cfg = config.DefaultTMS()
	}
	return &TMS{
		cfg:    cfg,
		engine: engine,
		cmob:   make([]mem.Addr, cfg.CMOBEntries),
		index:  make(map[mem.Addr]uint64),
	}
}

// Name implements the Prefetcher interface.
func (t *TMS) Name() string { return "tms" }

// Stats returns cumulative statistics.
func (t *TMS) Stats() Stats { return t.stats }

// OnAccess implements the Prefetcher interface; TMS trains only on
// off-chip events.
func (t *TMS) OnAccess(trace.Access, bool) {}

// OnL1Evict implements the Prefetcher interface; TMS has no generations.
func (t *TMS) OnL1Evict(mem.Addr) {}

// OnOffChipEvent records the miss in the CMOB and, for uncovered misses,
// attempts to start a new stream from the previous occurrence of the
// address. Covered misses (SVB hits) are appended too — the recorded
// sequence must stay complete for future traversals — but do not spawn
// streams ("off-chip misses can initiate new streams", §4.2).
func (t *TMS) OnOffChipEvent(a trace.Access, covered bool) {
	if a.Write {
		return
	}
	block := a.Addr.Block()
	var prev uint64
	prevOK := false
	if !covered {
		prev, prevOK = t.lookup(block)
	}
	t.append(block)
	if covered {
		return
	}
	if !prevOK {
		t.stats.LookupMisses++
		return
	}
	t.startStream(prev + 1)
}

// lookup returns the most recent valid CMOB position of block.
func (t *TMS) lookup(block mem.Addr) (uint64, bool) {
	pos, ok := t.index[block]
	if !ok {
		return 0, false
	}
	if t.appends-pos > uint64(len(t.cmob)) || t.cmob[pos%uint64(len(t.cmob))] != block {
		// The ring lapped this entry; the mapping is stale.
		t.stats.StaleLookups++
		delete(t.index, block)
		return 0, false
	}
	return pos, true
}

func (t *TMS) append(block mem.Addr) {
	t.cmob[t.appends%uint64(len(t.cmob))] = block
	t.index[block] = t.appends
	t.appends++
	t.stats.Appends++
}

// readChunk copies up to n CMOB entries starting at c.pos, advancing the
// cursor. It stops at the append head or when the ring has overwritten the
// requested region.
func (t *TMS) readChunk(c *cursor, n int) []mem.Addr {
	out := make([]mem.Addr, 0, n)
	for len(out) < n && c.pos < t.appends {
		if t.appends-c.pos > uint64(len(t.cmob)) {
			// Fell too far behind; the ring overwrote this position.
			break
		}
		out = append(out, t.cmob[c.pos%uint64(len(t.cmob))])
		c.pos++
	}
	return out
}

func (t *TMS) startStream(from uint64) {
	c := &cursor{pos: from}
	chunk := t.readChunk(c, 2*t.cfg.Lookahead)
	if len(chunk) == 0 {
		t.stats.LookupMisses++
		return
	}
	t.stats.StreamsBegun++
	q := t.engine.NewStream(chunk)
	q.Tag = c
	q.Refill = func(q *stream.Queue) {
		cur, ok := q.Tag.(*cursor)
		if !ok {
			return
		}
		if more := t.readChunk(cur, 2*t.cfg.Lookahead); len(more) > 0 {
			t.engine.Extend(q, more)
		}
	}
}

// CMOBLen returns the number of live entries in the circular buffer.
func (t *TMS) CMOBLen() int {
	if t.appends < uint64(len(t.cmob)) {
		return int(t.appends)
	}
	return len(t.cmob)
}
