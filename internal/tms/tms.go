// Package tms implements Temporal Memory Streaming (Wenisch et al., ISCA
// 2005), the temporal-correlation baseline of the paper (§2.1–2.2).
//
// TMS records the sequence of off-chip read misses in a large circular
// buffer (the CMOB, ~2MB per processor, held in main memory) together with
// an index mapping each address to its most recent position. On an
// unpredicted off-chip miss, TMS locates the previous occurrence of the
// address and streams the blocks that followed it, throttled by consumption
// from the streamed value buffer.
package tms

import (
	"stems/internal/config"
	"stems/internal/flat"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

// Stats counts predictor activity.
type Stats struct {
	Appends      uint64 // entries recorded in the CMOB
	StreamsBegun uint64 // successful index lookups that started a stream
	LookupMisses uint64 // off-chip misses with no prior occurrence
	StaleLookups uint64 // index entries invalidated by CMOB wrap-around
}

// TMS is the prefetcher.
type TMS struct {
	cfg    config.TMS
	engine *stream.Engine

	cmob    []mem.Addr // ring buffer of miss block addresses
	mask    uint64     // len(cmob)-1 when a power of two, else 0
	appends uint64     // total entries ever appended
	// index maps block -> most recent append position. Like the STeMS
	// RMOB it is an open-addressed flat table on the per-miss path, sized
	// with headroom over the ring and rebuilt from live ring contents when
	// lapped mappings fill it, so the replay loop never allocates.
	index *flat.U64Table[uint64]

	// Per-stream read positions live in Queue.Cursor; all streams share
	// one refill closure and one chunk buffer (the engine copies chunks
	// into queue storage).
	refillFn func(q *stream.Queue)
	chunkBuf []mem.Addr

	stats Stats
}

// New creates a TMS prefetcher streaming through engine.
func New(cfg config.TMS, engine *stream.Engine) *TMS {
	if cfg.CMOBEntries <= 0 {
		cfg = config.DefaultTMS()
	}
	t := &TMS{
		cfg:    cfg,
		engine: engine,
		cmob:   make([]mem.Addr, cfg.CMOBEntries),
		index:  flat.NewU64Table[uint64](cfg.CMOBEntries + cfg.CMOBEntries/4),
	}
	if n := cfg.CMOBEntries; n&(n-1) == 0 {
		t.mask = uint64(n - 1)
	}
	t.refillFn = t.refillStream
	return t
}

// Name implements the Prefetcher interface.
func (t *TMS) Name() string { return "tms" }

// Stats returns cumulative statistics.
func (t *TMS) Stats() Stats { return t.stats }

// OnAccess implements the Prefetcher interface; TMS trains only on
// off-chip events.
func (t *TMS) OnAccess(trace.Access, bool) {}

// OnL1Evict implements the Prefetcher interface; TMS has no generations.
func (t *TMS) OnL1Evict(mem.Addr) {}

// OnOffChipEvent records the miss in the CMOB and, for uncovered misses,
// attempts to start a new stream from the previous occurrence of the
// address. Covered misses (SVB hits) are appended too — the recorded
// sequence must stay complete for future traversals — but do not spawn
// streams ("off-chip misses can initiate new streams", §4.2).
func (t *TMS) OnOffChipEvent(a trace.Access, covered bool) {
	if a.Write {
		return
	}
	block := a.Addr.Block()
	var prev uint64
	prevOK := false
	if !covered {
		prev, prevOK = t.lookup(block)
	}
	t.append(block)
	if covered {
		return
	}
	if !prevOK {
		t.stats.LookupMisses++
		return
	}
	t.startStream(prev + 1)
}

// slot maps an absolute position onto the ring (mask when power of two).
func (t *TMS) slot(pos uint64) uint64 {
	if t.mask != 0 {
		return pos & t.mask
	}
	return pos % uint64(len(t.cmob))
}

// lookup returns the most recent valid CMOB position of block.
func (t *TMS) lookup(block mem.Addr) (uint64, bool) {
	pos, ok := t.index.Get(uint64(block))
	if !ok {
		return 0, false
	}
	if t.appends-pos > uint64(len(t.cmob)) || t.cmob[t.slot(pos)] != block {
		// The ring lapped this entry; the mapping is stale.
		t.stats.StaleLookups++
		t.index.Delete(uint64(block))
		return 0, false
	}
	return pos, true
}

func (t *TMS) append(block mem.Addr) {
	t.cmob[t.slot(t.appends)] = block
	if t.index.Full() {
		t.reindex()
	}
	t.index.Put(uint64(block), t.appends)
	t.appends++
	t.stats.Appends++
}

// reindex rebuilds the address index from the live ring, shedding lapped
// mappings; live entries fill at most half the index, so the rebuilt table
// is never full.
func (t *TMS) reindex() {
	t.index.Clear()
	start := uint64(0)
	if t.appends > uint64(len(t.cmob)) {
		start = t.appends - uint64(len(t.cmob))
	}
	for p := start; p < t.appends; p++ {
		t.index.Put(uint64(t.cmob[t.slot(p)]), p)
	}
}

// readChunk fills the shared chunk buffer with up to n CMOB entries
// starting at *pos, advancing the position. It stops at the append head or
// when the ring has overwritten the requested region. The returned slice
// is valid until the next readChunk call; the stream engine copies it.
func (t *TMS) readChunk(pos *uint64, n int) []mem.Addr {
	t.chunkBuf = t.chunkBuf[:0]
	for len(t.chunkBuf) < n && *pos < t.appends {
		if t.appends-*pos > uint64(len(t.cmob)) {
			// Fell too far behind; the ring overwrote this position.
			break
		}
		t.chunkBuf = append(t.chunkBuf, t.cmob[t.slot(*pos)])
		*pos++
	}
	return t.chunkBuf
}

func (t *TMS) startStream(from uint64) {
	pos := from
	chunk := t.readChunk(&pos, 2*t.cfg.Lookahead)
	if len(chunk) == 0 {
		t.stats.LookupMisses++
		return
	}
	t.stats.StreamsBegun++
	q := t.engine.NewStream(chunk)
	q.Cursor = pos
	q.Refill = t.refillFn
}

// refillStream is the shared Refill hook: it resumes the CMOB traversal
// from the stream's cursor.
func (t *TMS) refillStream(q *stream.Queue) {
	pos := q.Cursor
	more := t.readChunk(&pos, 2*t.cfg.Lookahead)
	q.Cursor = pos
	if len(more) > 0 {
		t.engine.Extend(q, more)
	}
}

// CMOBLen returns the number of live entries in the circular buffer.
func (t *TMS) CMOBLen() int {
	if t.appends < uint64(len(t.cmob)) {
		return int(t.appends)
	}
	return len(t.cmob)
}
