package tms

import (
	"stems/internal/sim"
	"stems/internal/stream"
)

func init() {
	sim.MustRegister(sim.KindTMS, func(m *sim.Machine, opt sim.Options) error {
		tc := opt.TMS
		tc.Lookahead = opt.StreamLookahead(tc.Lookahead)
		eng := m.AttachEngine(stream.Config{
			Queues: tc.StreamQueues, Lookahead: tc.Lookahead, SVBEntries: tc.SVBEntries,
			Adaptive: opt.AdaptiveLookahead,
		})
		m.SetPrefetcher(New(tc, eng))
		return nil
	})
}
