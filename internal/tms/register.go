package tms

import (
	"stems/internal/sim"
	"stems/internal/stream"
)

func init() {
	sim.MustRegisterKnobs("tms",
		sim.IntKnob("tms.cmob_entries", "circular miss-order buffer entries (paper: 384K)", 1, 1<<24,
			func(o *sim.Options) *int { return &o.TMS.CMOBEntries }),
		sim.IntKnob("tms.stream_queues", "concurrently tracked streams (§4.3: 8)", 1, 256,
			func(o *sim.Options) *int { return &o.TMS.StreamQueues }),
		sim.IntKnob("tms.lookahead", "blocks kept in flight per stream (8 commercial, 12 scientific)", 1, 256,
			func(o *sim.Options) *int { return &o.TMS.Lookahead }),
		sim.IntKnob("tms.svb_entries", "streamed value buffer capacity (§4.3: 64)", 1, 1<<16,
			func(o *sim.Options) *int { return &o.TMS.SVBEntries }),
	)
	sim.BindKnobs(sim.KindTMS, "tms")
	sim.MustRegister(sim.KindTMS, func(m *sim.Machine, opt sim.Options) error {
		tc := opt.TMS
		tc.Lookahead = opt.StreamLookahead(tc.Lookahead)
		eng := m.AttachEngine(stream.Config{
			Queues: tc.StreamQueues, Lookahead: tc.Lookahead, SVBEntries: tc.SVBEntries,
			Adaptive: opt.AdaptiveLookahead,
		})
		m.SetPrefetcher(New(tc, eng))
		return nil
	})
}
