// Package notify delivers job-completion notifications. A Notifier is a
// named delivery channel for enc.Notification documents; the two
// built-ins are Webhook (JSON POST with bounded retry and exponential
// backoff) and Log (a structured slog line). A Set fans one notification
// out to several notifiers asynchronously — workers finishing jobs never
// wait on a slow webhook — with per-notifier delivery counters in
// internal/obs and a drain-aware Close that lets in-flight deliveries
// land before the daemon exits.
package notify

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stems/internal/enc"
	"stems/internal/obs"
)

// Notifier is one completion-delivery channel. Send blocks until the
// notification is delivered or abandoned; the Set wraps it in a
// goroutine, so implementations are free to retry with backoff.
type Notifier interface {
	// Name identifies the notifier; schedules reference it in their
	// "notify" lists.
	Name() string
	// Send delivers one notification, retrying internally as the
	// implementation sees fit. A nil return means delivered.
	Send(ctx context.Context, n enc.Notification) error
}

// WebhookConfig tunes a webhook notifier. Zero values select the
// defaults noted per field.
type WebhookConfig struct {
	// URL receives the notification as a JSON POST body.
	URL string
	// Attempts is the total delivery attempts per notification before it
	// counts as failed (default 3).
	Attempts int
	// Backoff is the wait after the first failed attempt, doubling per
	// retry (default 250ms).
	Backoff time.Duration
	// Timeout bounds each individual HTTP attempt (default 5s).
	Timeout time.Duration
	// Client overrides the HTTP client (default http.DefaultClient);
	// tests inject a httptest client here.
	Client *http.Client
}

func (c *WebhookConfig) fill() {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
}

// Webhook POSTs notifications as JSON to a fixed URL, retrying transport
// errors and non-2xx responses with exponential backoff.
type Webhook struct {
	name    string
	cfg     WebhookConfig
	retries *atomic.Uint64 // owned by the Set, counts attempts beyond the first
}

// NewWebhook builds a webhook notifier. The URL is taken as given —
// validate it at configuration time (internal/conf does).
func NewWebhook(name string, cfg WebhookConfig) *Webhook {
	cfg.fill()
	return &Webhook{name: name, cfg: cfg}
}

// Name implements Notifier.
func (w *Webhook) Name() string { return w.name }

// Send implements Notifier: up to Attempts POSTs, backing off between
// them. Any 2xx status is a delivery; everything else retries until the
// budget runs out or ctx is cancelled.
func (w *Webhook) Send(ctx context.Context, n enc.Notification) error {
	body, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("notify: webhook %s: encoding: %w", w.name, err)
	}
	backoff := w.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < w.cfg.Attempts; attempt++ {
		if attempt > 0 {
			if w.retries != nil {
				w.retries.Add(1)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		lastErr = w.post(ctx, body)
		if lastErr == nil {
			return nil
		}
	}
	return fmt.Errorf("notify: webhook %s: %d attempts: %w", w.name, w.cfg.Attempts, lastErr)
}

func (w *Webhook) post(ctx context.Context, body []byte) error {
	ctx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close() //nolint:errcheck // status is the signal; the body is ignored
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// Log emits each notification as one structured slog line — the
// no-infrastructure notifier a fleet's log pipeline picks up.
type Log struct {
	name string
	log  *slog.Logger
}

// NewLog builds a slog notifier writing through logger (nil discards).
func NewLog(name string, logger *slog.Logger) *Log {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Log{name: name, log: logger}
}

// Name implements Notifier.
func (l *Log) Name() string { return l.name }

// Send implements Notifier; it cannot fail.
func (l *Log) Send(_ context.Context, n enc.Notification) error {
	l.log.Info("job completed",
		"notifier", l.name, "job", n.Job, "state", string(n.State),
		"schedule", n.Schedule, "runs_done", n.RunsDone, "runs_total", n.RunsTotal,
		"cache_hits", n.CacheHits, "err", n.Error)
	return nil
}

// Set is a named collection of notifiers with asynchronous fan-out.
// Register notifiers at startup, Send per completed job, Close at drain.
type Set struct {
	log *slog.Logger
	reg *obs.Registry

	mu        sync.Mutex
	notifiers map[string]Notifier
	allJobs   []string // names notified for every job completion
	sent      map[string]*obs.Counter
	failed    map[string]*obs.Counter
	closed    bool

	// Set-wide totals for the JSON /metrics document (the Prometheus
	// exposition reads the per-notifier labeled counters instead).
	totalSent   atomic.Uint64
	totalFailed atomic.Uint64
	retries     atomic.Uint64

	wg sync.WaitGroup
}

// NewSet builds an empty notifier set. reg (may be nil) receives the
// per-notifier stemsd_notifications_sent_total / _failed_total counters;
// logger (may be nil) receives delivery failures.
func NewSet(reg *obs.Registry, logger *slog.Logger) *Set {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Set{
		log:       logger,
		reg:       reg,
		notifiers: make(map[string]Notifier),
		sent:      make(map[string]*obs.Counter),
		failed:    make(map[string]*obs.Counter),
	}
}

// Register adds a notifier under its name. allJobs marks it for every
// job completion, not only the schedules that name it. Duplicate names
// are a configuration error.
func (s *Set) Register(n Notifier, allJobs bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := n.Name()
	if name == "" {
		return fmt.Errorf("notify: empty notifier name")
	}
	if _, dup := s.notifiers[name]; dup {
		return fmt.Errorf("notify: duplicate notifier %q", name)
	}
	s.notifiers[name] = n
	if w, ok := n.(*Webhook); ok {
		w.retries = &s.retries
	}
	if allJobs {
		s.allJobs = append(s.allJobs, name)
	}
	if s.reg != nil {
		s.sent[name] = s.reg.Counter("stemsd_notifications_sent_total",
			"Completion notifications delivered, by notifier.", obs.L("notifier", name))
		s.failed[name] = s.reg.Counter("stemsd_notifications_failed_total",
			"Completion notifications abandoned after retries, by notifier.", obs.L("notifier", name))
	}
	return nil
}

// Names lists the registered notifier names, sorted.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.notifiers))
	for name := range s.notifiers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Has reports whether a notifier name is registered.
func (s *Set) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.notifiers[name]
	return ok
}

// AllJobs lists the notifiers registered for every job completion.
func (s *Set) AllJobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.allJobs...)
}

// Send fans n out to the named notifiers plus every all-jobs notifier,
// each delivery on its own goroutine (duplicate and unknown names are
// ignored — unknown ones were rejected at configuration time). It
// returns immediately; Close waits for deliveries in flight. Sends after
// Close are dropped.
func (s *Set) Send(names []string, n enc.Notification) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	targets := make([]Notifier, 0, len(names)+len(s.allJobs))
	seen := make(map[string]bool, len(names)+len(s.allJobs))
	for _, name := range append(append([]string{}, names...), s.allJobs...) {
		if nt, ok := s.notifiers[name]; ok && !seen[name] {
			seen[name] = true
			targets = append(targets, nt)
		}
	}
	s.wg.Add(len(targets))
	s.mu.Unlock()

	for _, nt := range targets {
		go func(nt Notifier) {
			defer s.wg.Done()
			if err := nt.Send(context.Background(), n); err != nil {
				s.totalFailed.Add(1)
				if c := s.counter(s.failed, nt.Name()); c != nil {
					c.Inc()
				}
				s.log.Warn("notification delivery failed",
					"notifier", nt.Name(), "job", n.Job, "err", err)
				return
			}
			s.totalSent.Add(1)
			if c := s.counter(s.sent, nt.Name()); c != nil {
				c.Inc()
			}
		}(nt)
	}
}

func (s *Set) counter(m map[string]*obs.Counter, name string) *obs.Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return m[name]
}

// Metrics snapshots the set-wide delivery totals for the JSON /metrics
// document.
func (s *Set) Metrics() enc.NotifyMetrics {
	s.mu.Lock()
	n := len(s.notifiers)
	s.mu.Unlock()
	return enc.NotifyMetrics{
		Notifiers: n,
		Sent:      s.totalSent.Load(),
		Failed:    s.totalFailed.Load(),
		Retries:   s.retries.Load(),
	}
}

// Close waits for in-flight deliveries, then drops any further Sends —
// the drain path: stop the scheduler, drain the service (completions
// still notify), then Close the set.
func (s *Set) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}
