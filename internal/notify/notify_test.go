package notify

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"encoding/json"
	"log/slog"

	"stems/internal/enc"
	"stems/internal/obs"
)

func testNotification() enc.Notification {
	return enc.Notification{
		Job: "j-000001", State: enc.JobDone, Schedule: "nightly",
		RunsDone: 3, RunsTotal: 3, CacheHits: 1,
	}
}

// sink records webhook deliveries and can fail the first failFirst
// requests with HTTP 500.
type sink struct {
	mu        sync.Mutex
	failFirst int
	requests  int
	bodies    []enc.Notification
}

func (s *sink) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.requests++
		if s.requests <= s.failFirst {
			http.Error(w, "induced failure", http.StatusInternalServerError)
			return
		}
		var n enc.Notification
		if err := json.NewDecoder(r.Body).Decode(&n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.bodies = append(s.bodies, n)
		w.WriteHeader(http.StatusOK)
	})
}

func (s *sink) snapshot() (int, []enc.Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests, append([]enc.Notification(nil), s.bodies...)
}

func TestWebhookDelivers(t *testing.T) {
	sk := &sink{}
	srv := httptest.NewServer(sk.handler())
	defer srv.Close()

	w := NewWebhook("hook", WebhookConfig{URL: srv.URL, Backoff: time.Millisecond})
	if err := w.Send(context.Background(), testNotification()); err != nil {
		t.Fatal(err)
	}
	reqs, bodies := sk.snapshot()
	if reqs != 1 || len(bodies) != 1 {
		t.Fatalf("requests = %d, delivered = %d, want 1/1", reqs, len(bodies))
	}
	if bodies[0] != testNotification() {
		t.Errorf("delivered body = %+v", bodies[0])
	}
}

func TestWebhookRetriesFirstFailure(t *testing.T) {
	sk := &sink{failFirst: 1}
	srv := httptest.NewServer(sk.handler())
	defer srv.Close()

	w := NewWebhook("hook", WebhookConfig{URL: srv.URL, Backoff: time.Millisecond})
	if err := w.Send(context.Background(), testNotification()); err != nil {
		t.Fatalf("delivery should survive one failure: %v", err)
	}
	reqs, bodies := sk.snapshot()
	if reqs != 2 {
		t.Errorf("requests = %d, want 2 (one failure + one retry)", reqs)
	}
	if len(bodies) != 1 {
		t.Errorf("delivered = %d, want 1", len(bodies))
	}
}

func TestWebhookExhaustsAttempts(t *testing.T) {
	sk := &sink{failFirst: 100}
	srv := httptest.NewServer(sk.handler())
	defer srv.Close()

	w := NewWebhook("hook", WebhookConfig{URL: srv.URL, Attempts: 3, Backoff: time.Millisecond})
	err := w.Send(context.Background(), testNotification())
	if err == nil || !strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("err = %v, want HTTP 500 after exhausting attempts", err)
	}
	if reqs, _ := sk.snapshot(); reqs != 3 {
		t.Errorf("requests = %d, want 3", reqs)
	}
}

func TestWebhookHonorsContext(t *testing.T) {
	sk := &sink{failFirst: 100}
	srv := httptest.NewServer(sk.handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := NewWebhook("hook", WebhookConfig{URL: srv.URL, Attempts: 5, Backoff: time.Hour})
	if err := w.Send(ctx, testNotification()); err == nil {
		t.Fatal("cancelled send should error")
	}
}

func TestLogNotifier(t *testing.T) {
	var buf strings.Builder
	l := NewLog("log", slog.New(slog.NewTextHandler(&buf, nil)))
	if err := l.Send(context.Background(), testNotification()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"j-000001", "done", "nightly"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %s", want, out)
		}
	}
}

func TestSetFanOutAndMetrics(t *testing.T) {
	good := &sink{}
	bad := &sink{failFirst: 100}
	goodSrv := httptest.NewServer(good.handler())
	defer goodSrv.Close()
	badSrv := httptest.NewServer(bad.handler())
	defer badSrv.Close()

	reg := obs.NewRegistry()
	set := NewSet(reg, nil)
	mustRegister(t, set, NewWebhook("good", WebhookConfig{URL: goodSrv.URL, Backoff: time.Millisecond}), false)
	mustRegister(t, set, NewWebhook("bad", WebhookConfig{URL: badSrv.URL, Attempts: 2, Backoff: time.Millisecond}), false)
	mustRegister(t, set, NewLog("log", nil), true)

	// "good" named twice and "log" implied via all-jobs: three deliveries,
	// one of which fails after a retry.
	set.Send([]string{"good", "good", "bad"}, testNotification())
	set.Close()

	m := set.Metrics()
	if m.Notifiers != 3 {
		t.Errorf("Notifiers = %d, want 3", m.Notifiers)
	}
	if m.Sent != 2 || m.Failed != 1 {
		t.Errorf("Sent/Failed = %d/%d, want 2/1", m.Sent, m.Failed)
	}
	if m.Retries != 1 {
		t.Errorf("Retries = %d, want 1 (bad notifier's second attempt)", m.Retries)
	}
	if reqs, _ := good.snapshot(); reqs != 1 {
		t.Errorf("good sink saw %d requests, want 1 (names deduplicated)", reqs)
	}

	var prom strings.Builder
	reg.WritePrometheus(&prom)
	for _, want := range []string{
		`stemsd_notifications_sent_total{notifier="good"} 1`,
		`stemsd_notifications_failed_total{notifier="bad"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, prom.String())
		}
	}
}

func TestSetDropsAfterClose(t *testing.T) {
	sk := &sink{}
	srv := httptest.NewServer(sk.handler())
	defer srv.Close()

	set := NewSet(nil, nil)
	mustRegister(t, set, NewWebhook("hook", WebhookConfig{URL: srv.URL}), true)
	set.Close()
	set.Send(nil, testNotification())
	set.Close() // idempotent
	if reqs, _ := sk.snapshot(); reqs != 0 {
		t.Errorf("send after close delivered %d requests", reqs)
	}
}

func TestSetRegisterErrors(t *testing.T) {
	set := NewSet(nil, nil)
	mustRegister(t, set, NewLog("log", nil), false)
	if err := set.Register(NewLog("log", nil), false); err == nil {
		t.Error("duplicate name should be rejected")
	}
	if err := set.Register(NewLog("", nil), false); err == nil {
		t.Error("empty name should be rejected")
	}
	if !set.Has("log") || set.Has("nope") {
		t.Error("Has() misreports registration")
	}
	if names := set.Names(); len(names) != 1 || names[0] != "log" {
		t.Errorf("Names() = %v", names)
	}
}

func TestSetSendIsAsync(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started.Store(true)
		<-release
	}))
	defer slow.Close()

	set := NewSet(nil, nil)
	mustRegister(t, set, NewWebhook("slow", WebhookConfig{URL: slow.URL, Timeout: time.Minute}), false)

	done := make(chan struct{})
	go func() {
		set.Send([]string{"slow"}, testNotification())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on a slow delivery")
	}
	close(release)
	set.Close()
	if !started.Load() {
		t.Error("delivery never reached the webhook")
	}
}

func mustRegister(t *testing.T, s *Set, n Notifier, allJobs bool) {
	t.Helper()
	if err := s.Register(n, allJobs); err != nil {
		t.Fatal(err)
	}
}
