// Package server is the HTTP surface of stemsd: a JSON API over
// internal/service. Endpoints:
//
//	POST   /v1/jobs             submit a run or sweep (202 + job status)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status and results
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events stream status/progress/per-run results via SSE
//	POST   /v1/schedules        register a recurring submission (201 + status)
//	GET    /v1/schedules        list schedules with fire state
//	GET    /v1/schedules/{name} one schedule's status
//	DELETE /v1/schedules/{name} unregister a schedule (204)
//	GET    /v1/predictors       registered predictors with full knob schemas
//	GET    /v1/workloads        the paper's workload suite
//	GET    /healthz             liveness
//	GET    /metrics             queue/cache/throughput counters (JSON);
//	                            ?format=prometheus for text exposition
//	GET    /debug/pprof/*       runtime profiles (only with WithPprof)
//
// Every non-2xx response carries the structured enc.ErrorBody envelope.
//
// Every route records a request counter and latency histogram
// (stemsd_http_requests_total / stemsd_http_request_seconds, labeled by
// route pattern) into the service's obs registry, so the Prometheus
// exposition covers the HTTP layer alongside the simulation core.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"stems/internal/enc"
	"stems/internal/obs"
	"stems/internal/sched"
	"stems/internal/service"
)

// Server routes HTTP requests to a service.Service.
type Server struct {
	svc   *service.Service
	sched *sched.Scheduler
	mux   *http.ServeMux
	log   *slog.Logger
	pprof bool
}

// Option configures a Server at construction.
type Option func(*Server)

// WithPprof mounts net/http/pprof under /debug/pprof/. Off by default:
// profiles expose memory contents, so the daemon owner opts in (stemsd's
// -pprof flag).
func WithPprof() Option { return func(s *Server) { s.pprof = true } }

// WithLogger directs per-request debug logs to l (default: discard).
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithScheduler mounts the /v1/schedules CRUD routes over sc. Without
// it, the daemon runs schedule-free and the routes 404.
func WithScheduler(sc *sched.Scheduler) Option {
	return func(s *Server) { s.sched = sc }
}

// New builds a Server over svc. Construct at most one Server per
// service: route metric series register in svc's obs registry, which
// rejects duplicates.
func New(svc *service.Service, opts ...Option) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), log: slog.New(slog.DiscardHandler)}
	for _, o := range opts {
		o(s)
	}
	s.handle("POST /v1/jobs", s.submitJob)
	s.handle("GET /v1/jobs", s.listJobs)
	s.handle("GET /v1/jobs/{id}", s.getJob)
	s.handle("DELETE /v1/jobs/{id}", s.cancelJob)
	s.handle("GET /v1/jobs/{id}/events", s.jobEvents)
	if s.sched != nil {
		s.handle("POST /v1/schedules", s.createSchedule)
		s.handle("GET /v1/schedules", s.listSchedules)
		s.handle("GET /v1/schedules/{name}", s.getSchedule)
		s.handle("DELETE /v1/schedules/{name}", s.deleteSchedule)
	}
	s.handle("GET /v1/predictors", s.predictors)
	s.handle("GET /v1/workloads", s.workloads)
	s.handle("GET /healthz", s.healthz)
	s.handle("GET /metrics", s.metrics)
	if s.pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// handle registers a route together with its request counter and latency
// histogram. Series are created here, once, keyed by the route pattern —
// not the raw URL — so label cardinality is fixed and the per-request
// record path allocates nothing.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	reg := s.svc.Obs()
	reqs := reg.Counter("stemsd_http_requests_total",
		"HTTP requests served, by route pattern.", obs.L("route", pattern))
	lat := reg.Histogram("stemsd_http_request_seconds",
		"HTTP request latency by route pattern.", obs.L("route", pattern))
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ww, sw := wrapWriter(w)
		h(ww, r)
		d := time.Since(start)
		reqs.Inc()
		lat.Observe(d)
		s.log.Debug("http request", "route", pattern, "path", r.URL.Path,
			"status", sw.code(), "dur", d)
	})
}

// statusWriter captures the response status code for request logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// flusherWriter additionally forwards http.Flusher: the SSE handler
// type-asserts the writer for it, so the logging wrapper must not mask
// the capability.
type flusherWriter struct {
	*statusWriter
	fl http.Flusher
}

func (w *flusherWriter) Flush() { w.fl.Flush() }

func wrapWriter(w http.ResponseWriter) (http.ResponseWriter, *statusWriter) {
	sw := &statusWriter{ResponseWriter: w}
	if fl, ok := w.(http.Flusher); ok {
		return &flusherWriter{statusWriter: sw, fl: fl}, sw
	}
	return sw, sw
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON emits a JSON body. Deliberately compact (no indentation): an
// indenting encoder would reformat the raw cached result documents inside
// JobStatus, and the API's contract is that a cached result crosses the
// wire byte-identical to its first computation.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // a failed write means the client left
}

// writeError maps a service error to its status code and structured body.
func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, service.ErrInvalidSpec):
		status, code = http.StatusBadRequest, "invalid_spec"
	case errors.Is(err, service.ErrNotFound):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, service.ErrQueueFull):
		status, code = http.StatusServiceUnavailable, "queue_full"
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, service.ErrDraining):
		status, code = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, sched.ErrInvalid):
		status, code = http.StatusBadRequest, "invalid_schedule"
	case errors.Is(err, sched.ErrExists):
		status, code = http.StatusConflict, "exists"
	case errors.Is(err, sched.ErrNotFound):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, sched.ErrStopped):
		status, code = http.StatusServiceUnavailable, "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(enc.ErrorBody{ //nolint:errcheck
		Error: enc.ErrorDetail{Code: code, Message: err.Error()},
	})
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec enc.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("%w: decoding body: %v", service.ErrInvalidSpec, err))
		return
	}
	j, err := s.svc.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.svc.Jobs()
	out := make([]enc.JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []enc.JobStatus `json:"jobs"`
	}{out})
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.svc.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	j, err := s.svc.Job(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// jobEvents streams the job over Server-Sent Events: one "status" event
// immediately, one per observable change (state moves, per-block replay
// progress, run completions), and a final one at the terminal state,
// after which the stream closes. Each run of a sweep job additionally
// emits one "result" event (enc.RunEvent: run index + the canonical
// labeled result document) the moment it finishes, before the status
// event that reflects it — clients consume sweep results incrementally
// instead of waiting for job completion. A reconnecting client simply
// gets the current status again — status events carry full snapshots,
// not deltas, so there is no resume cursor to track (result events for
// already-finished runs are re-emitted from index 0 on reconnect).
func (s *Server) jobEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.svc.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	updates, cancel := j.Subscribe()
	defer cancel()

	resultsSent := 0
	send := func() (terminal bool) {
		st := j.Status()
		for ; resultsSent < len(st.Results); resultsSent++ {
			ev, err := json.Marshal(enc.RunEvent{Run: resultsSent, Result: st.Results[resultsSent]})
			if err != nil {
				return true
			}
			fmt.Fprintf(w, "event: result\ndata: %s\n\n", ev)
		}
		data, err := json.Marshal(st)
		if err != nil {
			return true
		}
		fmt.Fprintf(w, "event: status\ndata: %s\n\n", data)
		flusher.Flush()
		return st.State.Terminal()
	}
	if send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			send()
			return
		case <-updates:
			if send() {
				return
			}
		}
	}
}

func (s *Server) createSchedule(w http.ResponseWriter, r *http.Request) {
	var spec enc.ScheduleSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("%w: decoding body: %v", sched.ErrInvalid, err))
		return
	}
	st, err := s.sched.Add(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/schedules/"+st.Name)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) listSchedules(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Schedules []enc.ScheduleStatus `json:"schedules"`
	}{s.sched.List()})
}

func (s *Server) getSchedule(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) deleteSchedule(w http.ResponseWriter, r *http.Request) {
	if err := s.sched.Remove(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) predictors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Predictors []enc.PredictorInfo `json:"predictors"`
	}{s.svc.PredictorInfos()})
}

func (s *Server) workloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workloads []enc.WorkloadInfo `json:"workloads"`
	}{s.svc.Workloads()})
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status    string  `json:"status"`
		UptimeSec float64 `json:"uptime_sec"`
	}{"ok", s.svc.Metrics().UptimeSec})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		s.svc.Obs().WritePrometheus(w) //nolint:errcheck // a failed write means the scraper left
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Metrics())
}
