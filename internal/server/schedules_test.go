package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"stems"
	"stems/internal/enc"
	"stems/internal/notify"
	"stems/internal/sched"
	"stems/internal/server"
	"stems/internal/service"
	"stems/internal/sim"
)

// newSchedServer wires service + scheduler (fake clock) + notifier set
// behind an httptest server, mirroring cmd/stemsd's glue, and returns a
// typed client at it.
func newSchedServer(t *testing.T) (*stems.Client, *sched.FakeClock, *notify.Set) {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2, QueueBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	set := notify.NewSet(svc.Obs(), nil)
	if err := set.Register(notify.NewLog("log", nil), false); err != nil {
		t.Fatal(err)
	}
	clk := sched.NewFakeClock(time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC))
	scheduler, err := sched.New(sched.Config{
		Submit: func(spec enc.JobSpec) (string, error) {
			j, err := svc.Submit(spec)
			if err != nil {
				return "", err
			}
			return j.ID, nil
		},
		Validate:    service.Validate,
		HasNotifier: set.Has,
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.OnJobDone(func(st enc.JobStatus) {
		name, names, _ := scheduler.JobCompleted(st)
		set.Send(names, enc.NotificationFromStatus(st, name))
	})
	svc.AddMetricsHook(func(m *enc.Metrics) {
		sm := scheduler.Metrics()
		m.Sched = &sm
		nm := set.Metrics()
		m.Notify = &nm
	})
	ts := httptest.NewServer(server.New(svc, server.WithScheduler(scheduler)))
	t.Cleanup(func() {
		scheduler.Stop()
		svc.Abort()
		svc.Drain()
		set.Close()
		ts.Close()
	})
	return stems.NewClient(ts.URL, nil), clk, set
}

func scheduleSpec(name string) stems.ScheduleSpec {
	return stems.ScheduleSpec{
		Name: name,
		Cron: "@every 1m",
		Job: &stems.JobSpec{RunSpec: stems.RunSpec{
			Predictor: "stems", Workload: "em3d", Accesses: 10_000,
		}},
		Notify: []string{"log"},
	}
}

func TestScheduleCRUD(t *testing.T) {
	c, clk, _ := newSchedServer(t)
	ctx := context.Background()

	st, err := c.CreateSchedule(ctx, scheduleSpec("nightly"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "nightly" || st.Fires != 0 || st.NextFire.IsZero() {
		t.Fatalf("created status = %+v", st)
	}

	list, err := c.Schedules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "nightly" {
		t.Fatalf("list = %+v", list)
	}

	// Fire once and confirm the status reflects it over HTTP.
	clk.Advance(time.Minute)
	deadline := time.Now().Add(30 * time.Second)
	var got stems.ScheduleStatus
	for {
		got, err = c.Schedule(ctx, "nightly")
		if err != nil {
			t.Fatal(err)
		}
		if got.Fires == 1 && got.LastState == stems.JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedule never fired and completed: %+v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.LastJob == "" {
		t.Errorf("no LastJob recorded: %+v", got)
	}
	// The fired job is a real job, fetchable like any other.
	job, err := c.Job(ctx, got.LastJob)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != stems.JobDone {
		t.Errorf("fired job state = %s", job.State)
	}

	// Metrics document carries the scheduler and notifier sections.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sched == nil || m.Sched.Schedules != 1 || m.Sched.Fires != 1 {
		t.Errorf("metrics sched section = %+v", m.Sched)
	}
	if m.Notify == nil || m.Notify.Notifiers != 1 {
		t.Errorf("metrics notify section = %+v", m.Notify)
	}

	if err := c.DeleteSchedule(ctx, "nightly"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule(ctx, "nightly"); !isAPIError(err, 404, "not_found") {
		t.Errorf("get after delete: %v", err)
	}
	if err := c.DeleteSchedule(ctx, "nightly"); !isAPIError(err, 404, "not_found") {
		t.Errorf("double delete: %v", err)
	}
}

func TestScheduleErrors(t *testing.T) {
	c, _, _ := newSchedServer(t)
	ctx := context.Background()

	bad := scheduleSpec("bad")
	bad.Cron = "not cron"
	if _, err := c.CreateSchedule(ctx, bad); !isAPIError(err, 400, "invalid_schedule") {
		t.Errorf("bad cron: %v", err)
	}
	badJob := scheduleSpec("badjob")
	badJob.Job = &stems.JobSpec{RunSpec: stems.RunSpec{Workload: "nope"}}
	if _, err := c.CreateSchedule(ctx, badJob); !isAPIError(err, 400, "invalid_schedule") {
		t.Errorf("bad job: %v", err)
	}
	badNotify := scheduleSpec("badnotify")
	badNotify.Notify = []string{"mystery"}
	if _, err := c.CreateSchedule(ctx, badNotify); !isAPIError(err, 400, "invalid_schedule") {
		t.Errorf("unknown notifier: %v", err)
	}

	if _, err := c.CreateSchedule(ctx, scheduleSpec("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSchedule(ctx, scheduleSpec("dup")); !isAPIError(err, 409, "exists") {
		t.Errorf("duplicate: %v", err)
	}
}

// TestSubmitGridOverHTTP drives the server-side grid path end to end
// through the typed client.
func TestSubmitGridOverHTTP(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 2, QueueBound: 8})
	ctx := context.Background()

	grid := stems.GridSpec{
		Base: stems.RunSpec{Predictor: "stems", Workload: "em3d", Accesses: 10_000},
		Axes: []stems.GridAxis{
			{Knob: "stems.lookahead", Values: []sim.Value{sim.IntValue(4), sim.IntValue(4), sim.IntValue(8)}},
		},
	}
	st, err := c.SubmitGrid(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Grid == nil || len(st.Spec.Runs) != 3 {
		t.Fatalf("submitted status spec = grid %v, %d runs", st.Spec.Grid != nil, len(st.Spec.Runs))
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stems.JobDone || len(final.Results) != 3 {
		t.Fatalf("final = %s with %d results", final.State, len(final.Results))
	}
	if final.Progress.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1 (the duplicate cell)", final.Progress.CacheHits)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.GridJobs != 1 {
		t.Errorf("GridJobs = %d, want 1", m.GridJobs)
	}
	if m.RunsComputed != 2 {
		t.Errorf("RunsComputed = %d, want 2 (unique cells only)", m.RunsComputed)
	}
	// A grid and its client-side expansion are the same job body.
	bad := stems.JobSpec{Grid: &grid, Runs: []stems.RunSpec{{Workload: "em3d"}}}
	if _, err := c.Submit(ctx, bad); !isAPIError(err, 400, "invalid_spec") {
		t.Errorf("grid+runs: %v", err)
	}
}

// TestScheduleRoutesAbsentWithoutScheduler pins that a daemon without a
// scheduler 404s the schedule surface instead of half-serving it.
func TestScheduleRoutesAbsentWithoutScheduler(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 4})
	if _, err := c.Schedules(context.Background()); !isAPIError(err, 404, "") {
		t.Errorf("schedules on a schedule-free daemon: %v", err)
	}
}

func isAPIError(err error, status int, code string) bool {
	var apiErr *stems.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	if apiErr.StatusCode != status {
		return false
	}
	return code == "" || apiErr.Code == code
}
