// End-to-end tests of the stemsd HTTP surface: a real service behind
// httptest, driven through the typed client of the public stems package —
// the same path a remote user takes, including the SSE progress stream.
package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stems"
	"stems/internal/enc"
	"stems/internal/obs"
	"stems/internal/server"
	"stems/internal/service"
)

// newTestServer wires service → server → httptest and a client at it.
func newTestServer(t *testing.T, cfg service.Config) (*stems.Client, *service.Service) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(svc))
	t.Cleanup(func() {
		svc.Abort()
		svc.Drain()
		ts.Close()
	})
	return stems.NewClient(ts.URL, nil), svc
}

// TestEndToEnd covers the acceptance path: submit over HTTP, stream to
// completion, and verify the result is byte-identical to a direct
// stems.Run of the same configuration.
func TestEndToEnd(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 2, QueueBound: 8})
	ctx := context.Background()

	st, err := c.Submit(ctx, stems.JobSpec{RunSpec: stems.RunSpec{
		Predictor: "stems", Workload: "em3d", Accesses: 30_000,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("unexpected initial status %+v", st)
	}
	if st.Spec.Seed != 1 || st.Spec.System != "scaled" {
		t.Errorf("normalized spec not reported: %+v", st.Spec)
	}

	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stems.JobDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}

	r, err := stems.New(
		stems.WithPredictor("stems"),
		stems.WithWorkload("em3d"),
		stems.WithAccesses(30_000),
		stems.WithSystem(stems.ScaledSystem()),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(stems.EncodeResult("", res))
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Results) != 1 || string(final.Results[0]) != string(direct) {
		t.Errorf("service result != direct run:\n service: %s\n direct:  %s", final.Results, direct)
	}

	// The decoded form agrees with the engine result too.
	decoded, err := final.DecodedResults()
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0].Engine() != res {
		t.Errorf("decoded result %+v != engine result %+v", decoded[0].Engine(), res)
	}
}

// TestCacheHitOverHTTP resubmits a configuration and checks the cache-hit
// counter in /metrics moved and the bytes match — through the full stack.
func TestCacheHitOverHTTP(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 8})
	ctx := context.Background()
	spec := stems.JobSpec{RunSpec: stems.RunSpec{Workload: "sparse", Accesses: 20_000}}

	first := submitAndWait(t, c, spec)
	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second := submitAndWait(t, c, spec)
	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if string(first.Results[0]) != string(second.Results[0]) {
		t.Errorf("cache hit not byte-identical over HTTP:\n %s\n %s", first.Results[0], second.Results[0])
	}
	if after.CacheHits <= before.CacheHits {
		t.Errorf("cache hits %d -> %d: no hit recorded", before.CacheHits, after.CacheHits)
	}
	if after.RunsComputed != before.RunsComputed {
		t.Errorf("runs computed %d -> %d: cache hit recomputed", before.RunsComputed, after.RunsComputed)
	}
	if second.Progress.CacheHits != 1 {
		t.Errorf("second job reports %d cache hits, want 1", second.Progress.CacheHits)
	}
}

// TestWatchStreamsProgress asserts the SSE stream delivers intermediate
// per-block progress, not just the terminal snapshot.
func TestWatchStreamsProgress(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 4})
	ctx := context.Background()

	st, err := c.Submit(ctx, stems.JobSpec{RunSpec: stems.RunSpec{
		Predictor: "stride", Workload: "DB2", Accesses: 300_000,
	}})
	if err != nil {
		t.Fatal(err)
	}
	var snapshots []stems.JobStatus
	final, err := c.Watch(ctx, st.ID, func(s stems.JobStatus) { snapshots = append(snapshots, s) })
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stems.JobDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if len(snapshots) < 2 {
		t.Fatalf("got %d snapshots, want >= 2 (progress plus terminal)", len(snapshots))
	}
	if last := snapshots[len(snapshots)-1]; !last.State.Terminal() {
		t.Errorf("last snapshot state = %s, want terminal", last.State)
	}
	sawPartial := false
	for _, s := range snapshots {
		if d := s.Progress.AccessesDone; d > 0 && d < s.Progress.AccessesTotal {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no snapshot showed partial replay progress")
	}
}

// TestCancelOverHTTP cancels a running job via DELETE.
func TestCancelOverHTTP(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 4})
	ctx := context.Background()

	st, err := c.Submit(ctx, stems.JobSpec{RunSpec: stems.RunSpec{
		Workload: "Apache", Accesses: 1_000_000,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Let it start, then cancel; a queued cancel is also fine — both are
	// legal outcomes of the race, and both must end canceled.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == stems.JobRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stems.JobCanceled {
		t.Errorf("state = %s, want canceled", final.State)
	}
}

// TestStructured400s checks the error envelope for invalid specs.
func TestStructured400s(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 4})
	ctx := context.Background()

	cases := []struct {
		name    string
		spec    stems.JobSpec
		mention string
	}{
		{"bad predictor", stems.JobSpec{RunSpec: stems.RunSpec{Predictor: "nope"}}, "unknown predictor"},
		{"bad workload", stems.JobSpec{RunSpec: stems.RunSpec{Workload: "nope"}}, "unknown workload"},
		{"bad accesses", stems.JobSpec{RunSpec: stems.RunSpec{Accesses: -1}}, "invalid accesses"},
		{"bad seed", stems.JobSpec{RunSpec: stems.RunSpec{Seed: -2}}, "invalid seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Submit(ctx, tc.spec)
			var apiErr *stems.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("error = %v, want *APIError", err)
			}
			if apiErr.StatusCode != http.StatusBadRequest || apiErr.Code != "invalid_spec" {
				t.Errorf("got HTTP %d code %q, want 400 invalid_spec", apiErr.StatusCode, apiErr.Code)
			}
			if !strings.Contains(apiErr.Message, tc.mention) {
				t.Errorf("message %q does not mention %q", apiErr.Message, tc.mention)
			}
		})
	}

	// Unknown fields in the body are rejected, not silently dropped.
	resp, err := http.Post(c.BaseURL()+"/v1/jobs", "application/json",
		strings.NewReader(`{"predictorr":"stems"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestDiscoveryAndHealth covers /v1/predictors, /v1/workloads, /healthz,
// and 404 handling.
func TestDiscoveryAndHealth(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 4})
	ctx := context.Background()

	preds, err := c.Predictors(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 || preds[len(preds)-1] == "" {
		t.Errorf("predictors = %v", preds)
	}
	found := false
	for _, p := range preds {
		if p == "stems" {
			found = true
		}
	}
	if !found {
		t.Errorf("predictors %v missing \"stems\"", preds)
	}

	wls, err := c.ServiceWorkloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != len(stems.WorkloadNames()) {
		t.Errorf("got %d workloads, want %d", len(wls), len(stems.WorkloadNames()))
	}
	for _, w := range wls {
		if w.Name == "" || w.DefaultAccesses == 0 || w.Class == "" {
			t.Errorf("incomplete workload info %+v", w)
		}
	}

	resp, err := http.Get(c.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}

	if _, err := c.Job(ctx, "j-424242"); err == nil {
		t.Error("expected 404 for unknown job")
	} else {
		var apiErr *stems.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound || apiErr.Code != "not_found" {
			t.Errorf("unknown job error = %v, want 404 not_found", err)
		}
	}
}

// TestQueueFull503 fills the queue and expects the structured 503.
func TestQueueFull503(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 1})
	ctx := context.Background()

	// Hold the worker and the single queue slot with long jobs.
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, stems.JobSpec{RunSpec: stems.RunSpec{
			Workload: "Qry17", Seed: int64(i + 1), Accesses: 2_000_000,
		}}); err != nil {
			t.Fatalf("priming submit %d: %v", i, err)
		}
	}
	var apiErr *stems.APIError
	sawFull := false
	for i := 0; i < 10 && !sawFull; i++ {
		_, err := c.Submit(ctx, stems.JobSpec{RunSpec: stems.RunSpec{
			Workload: "Qry17", Seed: int64(i + 10), Accesses: 2_000_000,
		}})
		if errors.As(err, &apiErr) {
			if apiErr.StatusCode != http.StatusServiceUnavailable || apiErr.Code != "queue_full" {
				t.Fatalf("got HTTP %d code %q, want 503 queue_full", apiErr.StatusCode, apiErr.Code)
			}
			sawFull = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Error("never saw 503 queue_full")
	}
}

// TestSweepJSONMatchesService verifies the satellite contract: the
// encoding cmd/sweep -json emits (stems.EncodeResult) is byte-identical
// to the document the service returns for the equivalent job.
func TestSweepJSONMatchesService(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 2, QueueBound: 4})

	label := "16K"
	final := submitAndWait(t, c, stems.JobSpec{RunSpec: stems.RunSpec{
		Predictor: "sms", Workload: "ocean", Accesses: 20_000, Label: label,
	}})

	r, err := stems.New(
		stems.WithPredictor("sms"),
		stems.WithWorkload("ocean"),
		stems.WithAccesses(20_000),
		stems.WithSystem(stems.ScaledSystem()),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cli, err := json.Marshal(stems.EncodeResult(label, res))
	if err != nil {
		t.Fatal(err)
	}
	if string(final.Results[0]) != string(cli) {
		t.Errorf("CLI and service encodings differ:\n cli:     %s\n service: %s", cli, final.Results[0])
	}
}

func submitAndWait(t *testing.T, c *stems.Client, spec stems.JobSpec) stems.JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != enc.JobDone {
		t.Fatalf("job %s: %s (%s)", st.ID, final.State, final.Error)
	}
	return final
}

// TestResultEventsStream: each run of a sweep job arrives through
// WatchRuns exactly once, in run order, as it finishes — and the
// streamed documents are byte-identical to the terminal Results.
func TestResultEventsStream(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 4})
	ctx := context.Background()

	runs := []stems.RunSpec{
		{Predictor: "stride", Workload: "em3d", Accesses: 20_000, Label: "a"},
		{Predictor: "sms", Workload: "em3d", Accesses: 20_000, Label: "b"},
		{Predictor: "stems", Workload: "em3d", Accesses: 20_000, Label: "c"},
	}
	st, err := c.Submit(ctx, stems.JobSpec{Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	type delivery struct {
		run      int
		res      stems.RunResult
		terminal bool // whether the job already looked terminal when it arrived
	}
	var (
		deliveries []delivery
		lastState  stems.JobState
	)
	final, err := c.WatchRuns(ctx, st.ID,
		func(s stems.JobStatus) { lastState = s.State },
		func(run int, res stems.RunResult) {
			deliveries = append(deliveries, delivery{run: run, res: res, terminal: lastState.Terminal()})
		})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stems.JobDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if len(deliveries) != len(runs) {
		t.Fatalf("got %d result deliveries, want %d (exactly once per run)", len(deliveries), len(runs))
	}
	for i, d := range deliveries {
		if d.run != i {
			t.Errorf("delivery %d carried run %d, want in-order delivery", i, d.run)
		}
		if d.res.Label != runs[i].Label {
			t.Errorf("run %d label = %q, want %q", i, d.res.Label, runs[i].Label)
		}
		reenc, err := json.Marshal(d.res)
		if err != nil {
			t.Fatal(err)
		}
		if string(reenc) != string(final.Results[i]) {
			t.Errorf("run %d streamed result differs from terminal document:\n stream: %s\n final:  %s",
				i, reenc, final.Results[i])
		}
	}
	if deliveries[0].terminal {
		t.Error("first run's result only arrived at the terminal state — results did not stream")
	}
}

// TestPredictorSchemas: /v1/predictors carries the full knob schema.
func TestPredictorSchemas(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 4})
	infos, err := c.PredictorSchemas(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]stems.PredictorInfo{}
	for _, p := range infos {
		byName[p.Name] = p
	}
	st, ok := byName["stems"]
	if !ok {
		t.Fatalf("no stems schema in %v", infos)
	}
	found := false
	for _, k := range st.Knobs {
		if k.Name == "stems.rmob_entries" {
			found = true
			if k.Kind != "int" || k.Default != stems.IntValue(128<<10) || k.Min != 1 || k.Doc == "" {
				t.Errorf("rmob knob schema incomplete: %+v", k)
			}
		}
	}
	if !found {
		t.Error("stems schema missing stems.rmob_entries")
	}
}

// TestKnobSubmitOverHTTP: a knob-override job round-trips over the wire
// and fails field-level when the knob map is bad.
func TestKnobSubmitOverHTTP(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1, QueueBound: 4})
	ctx := context.Background()

	final := submitAndWait(t, c, stems.JobSpec{RunSpec: stems.RunSpec{
		Predictor: "stems", Workload: "em3d", Accesses: 20_000,
		Knobs: map[string]stems.Value{"stems.rmob_entries": stems.IntValue(16 << 10)},
	}})
	res, err := final.DecodedResults()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Covered == 0 {
		t.Errorf("knob-override run produced no coverage: %+v", res[0])
	}

	_, err = c.Submit(ctx, stems.JobSpec{RunSpec: stems.RunSpec{
		Workload: "em3d", Knobs: map[string]stems.Value{"nope": stems.IntValue(1)},
	}})
	var apiErr *stems.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest ||
		apiErr.Code != "invalid_spec" || !strings.Contains(apiErr.Message, `unknown knob "nope"`) {
		t.Errorf("bad knob error = %v, want structured 400 invalid_spec naming the knob", err)
	}
}

// TestObservabilityEndpoints drives one job to completion and then
// exercises the PR's HTTP observability surface: phase spans in the job
// status document, well-formed Prometheus exposition (with the per-route
// request histograms and the service's phase histograms), the legacy
// JSON /metrics document, and the opt-in pprof mount.
func TestObservabilityEndpoints(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, QueueBound: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(svc, server.WithPprof()))
	t.Cleanup(func() {
		svc.Abort()
		svc.Drain()
		ts.Close()
	})
	c := stems.NewClient(ts.URL, nil)

	final := submitAndWait(t, c, stems.JobSpec{RunSpec: stems.RunSpec{
		Predictor: "stems", Workload: "em3d", Accesses: 20_000,
	}})
	if len(final.Phases) != len(enc.PhaseNames) {
		t.Fatalf("status phases = %+v, want all %d", final.Phases, len(enc.PhaseNames))
	}
	for i, ph := range final.Phases {
		if ph.Phase != enc.PhaseNames[i] {
			t.Errorf("phase[%d] = %q, want %q", i, ph.Phase, enc.PhaseNames[i])
		}
	}
	if sim := final.Phases[enc.PhaseSimulate]; sim.Count < 1 || sim.Nanos <= 0 {
		t.Errorf("simulate span empty in finished status: %+v", sim)
	}

	// Prometheus exposition.
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE stemsd_http_request_seconds histogram",
		`stemsd_http_request_seconds_bucket{route="POST /v1/jobs",le="`,
		`stemsd_http_request_seconds_count{route="POST /v1/jobs"} 1`,
		`stemsd_http_requests_total{route="POST /v1/jobs"} 1`,
		`stemsd_job_phase_seconds_bucket{phase="simulate",le="+Inf"} 1`,
		"stemsd_jobs_completed_total 1",
		"stemsd_accesses_simulated_total 20000",
		"# TYPE stemsd_uptime_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The legacy JSON document still serves, with the windowed rate.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m enc.Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted != 1 || m.AccessesSimulated != 20_000 {
		t.Errorf("JSON metrics disagree with exposition: %+v", m)
	}
	if m.AccessesPerSec1m <= 0 {
		t.Errorf("accesses_per_sec_1m = %v, want > 0 right after a run", m.AccessesPerSec1m)
	}

	// pprof is mounted when opted in...
	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline with WithPprof: %d, want 200", resp.StatusCode)
	}

	// ...and absent by default.
	svc2, err := service.New(service.Config{Workers: 1, QueueBound: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(server.New(svc2))
	t.Cleanup(func() {
		svc2.Drain()
		ts2.Close()
	})
	resp, err = http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without WithPprof: %d, want 404", resp.StatusCode)
	}
}

// TestWatchPollFallback breaks the SSE endpoint in front of an otherwise
// healthy daemon: Wait must complete through the polling fallback — and
// the swallowed stream error must be visible, both counted in the
// client's Stats and logged through its slog logger.
func TestWatchPollFallback(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, QueueBound: 4})
	if err != nil {
		t.Fatal(err)
	}
	inner := server.New(svc)
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			// Answer 200 and close without a single event: a truncated
			// stream, the transient shape the fallback exists for.
			w.Header().Set("Content-Type", "text/event-stream")
			w.WriteHeader(http.StatusOK)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		svc.Abort()
		svc.Drain()
		broken.Close()
	})

	c := stems.NewClient(broken.URL, nil)
	var logBuf strings.Builder
	c.SetLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))

	final := submitAndWait(t, c, stems.JobSpec{RunSpec: stems.RunSpec{
		Predictor: "stems", Workload: "em3d", Accesses: 20_000,
	}})
	if len(final.Results) != 1 {
		t.Fatalf("fallback wait returned %d results, want 1", len(final.Results))
	}

	stats := c.Stats()
	if stats.StreamErrors != 1 || stats.PollFallbacks != 1 {
		t.Errorf("client stats = %+v, want 1 stream error and 1 poll fallback", stats)
	}
	if logged := logBuf.String(); !strings.Contains(logged, "falling back to polling") {
		t.Errorf("fallback not logged; log output: %q", logged)
	}
}
