// Package epoch implements epoch-based correlation prefetching (Chou,
// MICRO 2007 — reference [6] of the paper, discussed in §6: "divides
// temporal sequences into epochs of parallelizable misses, and predicts
// only epochs for which the prefetches will be timely. ... orthogonal and
// could be applied to the STeMS implementation").
//
// The insight: an out-of-order core already overlaps the independent
// misses *within* an epoch (the group of misses issued together behind one
// serializing, dependent miss). Prefetching those buys little. What a
// correlation prefetcher should predict, on an epoch's lead miss, is the
// membership of the *following* epochs — the misses the core cannot see
// yet. The correlation table is indexed by lead-miss address and stores
// the next epochs' blocks, so its reach is one entry per epoch rather than
// per miss, a fraction of TMS's CMOB.
package epoch

import (
	"stems/internal/config"
	"stems/internal/lru"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

// Config sizes the epoch prefetcher. It lives in the config package with
// the other predictor configurations so the sim layer can reference it
// without importing this package (the registry inverts that dependency).
type Config = config.Epoch

// DefaultConfig mirrors the reference's low-cost design point.
func DefaultConfig() Config {
	return config.DefaultEpoch()
}

// entry is one correlation-table record: the epoch that followed a lead.
type entry struct {
	nextLead mem.Addr
	blocks   []mem.Addr // members of the next epoch (including its lead)
}

// Stats counts predictor activity.
type Stats struct {
	Epochs     uint64 // epochs observed
	TableHits  uint64 // lead lookups that found a correlation
	Prefetches uint64 // blocks requested
}

// Epoch is the prefetcher.
type Epoch struct {
	cfg    Config
	engine *stream.Engine
	table  *lru.Map[mem.Addr, *entry]

	curLead   mem.Addr
	curBlocks []mem.Addr
	haveEpoch bool

	stats Stats
}

// New creates an epoch-based correlation prefetcher fetching through
// engine (nil for analysis mode).
func New(cfg Config, engine *stream.Engine) *Epoch {
	if cfg.TableEntries <= 0 {
		cfg = DefaultConfig()
	}
	return &Epoch{
		cfg:    cfg,
		engine: engine,
		table:  lru.New[mem.Addr, *entry](cfg.TableEntries),
	}
}

// Name implements the sim.Prefetcher interface.
func (e *Epoch) Name() string { return "epoch" }

// Stats returns cumulative statistics.
func (e *Epoch) Stats() Stats { return e.stats }

// TableLen returns the number of learned correlations.
func (e *Epoch) TableLen() int { return e.table.Len() }

// OnAccess implements sim.Prefetcher (epochs are detected at miss level).
func (e *Epoch) OnAccess(trace.Access, bool) {}

// OnL1Evict implements sim.Prefetcher.
func (e *Epoch) OnL1Evict(mem.Addr) {}

// OnOffChipEvent observes the off-chip read miss stream. A dependent miss
// is a serialization point: it ends the current epoch (whose membership is
// committed to the table under the previous lead) and becomes the next
// epoch's lead. Unpredicted leads look up the table and prefetch the
// blocks of the following epochs.
func (e *Epoch) OnOffChipEvent(a trace.Access, covered bool) {
	if a.Write {
		return
	}
	block := a.Addr.Block()
	if a.Dep {
		e.commitEpoch(block)
		e.curLead = block
		e.curBlocks = e.curBlocks[:0]
		e.curBlocks = append(e.curBlocks, block)
		e.haveEpoch = true
		if !covered {
			e.predict(block)
		}
		return
	}
	// Independent miss: joins the current epoch.
	if e.haveEpoch && len(e.curBlocks) < e.cfg.MaxEpochLen {
		e.curBlocks = append(e.curBlocks, block)
	}
}

// commitEpoch stores the finished epoch under its lead, linking the chain.
func (e *Epoch) commitEpoch(nextLead mem.Addr) {
	if !e.haveEpoch {
		return
	}
	e.stats.Epochs++
	blocks := make([]mem.Addr, len(e.curBlocks))
	copy(blocks, e.curBlocks)
	// Keyed by the finished epoch's lead, the record holds that epoch's
	// own membership plus the successor's lead: everything a prefetcher
	// should fetch when this lead misses again, with the chain pointer to
	// keep walking for deeper timeliness.
	e.table.Put(e.curLead, &entry{nextLead: nextLead, blocks: blocks})
}

// predict walks the correlation chain from lead and prefetches the stored
// epoch memberships.
func (e *Epoch) predict(lead mem.Addr) {
	if e.engine == nil {
		return
	}
	cur := lead
	for depth := 0; depth < e.cfg.EpochsAhead; depth++ {
		ent, ok := e.table.Get(cur)
		if !ok {
			return
		}
		e.stats.TableHits++
		for _, b := range ent.blocks {
			if b == lead {
				continue // the demand miss itself
			}
			e.engine.Direct(b)
			e.stats.Prefetches++
		}
		if ent.nextLead != lead {
			e.engine.Direct(ent.nextLead)
			e.stats.Prefetches++
		}
		cur = ent.nextLead
	}
}
