package epoch

import (
	"stems/internal/sim"
	"stems/internal/stream"
)

func init() {
	sim.MustRegisterKnobs("epoch",
		sim.IntKnob("epoch.table_entries", "correlation table capacity, lead addresses ([6]: 16K)", 1, 1<<24,
			func(o *sim.Options) *int { return &o.Epoch.TableEntries }),
		sim.IntKnob("epoch.max_epoch_len", "recorded epoch membership cap", 1, 1<<10,
			func(o *sim.Options) *int { return &o.Epoch.MaxEpochLen }),
		sim.IntKnob("epoch.epochs_ahead", "future epochs prefetched per lead hit", 1, 64,
			func(o *sim.Options) *int { return &o.Epoch.EpochsAhead }),
	)
	// The epoch engine sizes its SVB from the TMS block, so both tables
	// are part of its schema.
	sim.BindKnobs(sim.KindEpoch, "epoch", "tms")
	sim.MustRegister(sim.KindEpoch, func(m *sim.Machine, opt sim.Options) error {
		eng := m.AttachEngine(stream.Config{
			Queues: 1, Lookahead: 8, SVBEntries: opt.TMS.SVBEntries,
		})
		m.SetPrefetcher(New(opt.Epoch, eng))
		return nil
	})
}
