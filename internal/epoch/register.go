package epoch

import (
	"stems/internal/sim"
	"stems/internal/stream"
)

func init() {
	sim.MustRegister(sim.KindEpoch, func(m *sim.Machine, opt sim.Options) error {
		eng := m.AttachEngine(stream.Config{
			Queues: 1, Lookahead: 8, SVBEntries: opt.TMS.SVBEntries,
		})
		m.SetPrefetcher(New(opt.Epoch, eng))
		return nil
	})
}
