package epoch

import (
	"testing"

	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

type recordingFetcher struct{ blocks []mem.Addr }

func (f *recordingFetcher) Fetch(b mem.Addr) uint64 {
	f.blocks = append(f.blocks, b)
	return 0
}

func newEpoch() (*Epoch, *recordingFetcher) {
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{SVBEntries: 256}, f)
	return New(DefaultConfig(), eng), f
}

func lead(block int) trace.Access {
	return trace.Access{Addr: mem.Addr(block * mem.BlockSize), Dep: true}
}

func member(block int) trace.Access {
	return trace.Access{Addr: mem.Addr(block * mem.BlockSize)}
}

// feed sends the access sequence as uncovered off-chip events.
func feed(e *Epoch, accs ...trace.Access) {
	for _, a := range accs {
		e.OnOffChipEvent(a, false)
	}
}

func TestEpochSegmentation(t *testing.T) {
	e, _ := newEpoch()
	// Three epochs: leads 10, 20, 30 with members.
	feed(e,
		lead(10), member(11), member(12),
		lead(20), member(21),
		lead(30),
	)
	// Epochs commit when the *next* lead arrives: 2 committed so far.
	if e.Stats().Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", e.Stats().Epochs)
	}
	if e.TableLen() != 2 {
		t.Fatalf("table entries = %d, want 2", e.TableLen())
	}
}

func TestEpochPredictionOnRepeat(t *testing.T) {
	e, f := newEpoch()
	feed(e,
		lead(10), member(11), member(12),
		lead(20), member(21), member(22),
		lead(30), member(31),
		lead(40),
	)
	f.blocks = nil
	// Re-missing lead 10 must prefetch epoch 10's members (11, 12), the
	// next lead (20), and with EpochsAhead=2, epoch 20's members too.
	feed(e, lead(10))
	want := map[mem.Addr]bool{
		member(11).Addr: true, member(12).Addr: true,
		lead(20).Addr:   true,
		member(21).Addr: true, member(22).Addr: true,
		lead(30).Addr: true,
	}
	if len(f.blocks) != len(want) {
		t.Fatalf("prefetched %d blocks (%v), want %d", len(f.blocks), f.blocks, len(want))
	}
	for _, b := range f.blocks {
		if !want[b] {
			t.Errorf("unexpected prefetch %v", b)
		}
	}
}

func TestEpochColdLeadNoPrediction(t *testing.T) {
	e, f := newEpoch()
	feed(e, lead(10), member(11), lead(20))
	f.blocks = nil
	feed(e, lead(99))
	if len(f.blocks) != 0 {
		t.Fatalf("cold lead prefetched %v", f.blocks)
	}
}

func TestEpochMembershipCapped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEpochLen = 3
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{SVBEntries: 256}, f)
	e := New(cfg, eng)
	accs := []trace.Access{lead(10)}
	for i := 11; i < 30; i++ {
		accs = append(accs, member(i))
	}
	accs = append(accs, lead(50))
	feed(e, accs...)
	f.blocks = nil
	feed(e, lead(10))
	// cap 3 includes the lead, so 2 members + next lead = 3 blocks from
	// depth 1; depth 2 finds nothing (epoch 50 not committed).
	if len(f.blocks) != 3 {
		t.Fatalf("prefetched %d blocks (%v), want 3 under cap", len(f.blocks), f.blocks)
	}
}

func TestEpochCoveredLeadTrainsButDoesNotPredict(t *testing.T) {
	e, f := newEpoch()
	feed(e, lead(10), member(11), lead(20))
	f.blocks = nil
	e.OnOffChipEvent(lead(10), true) // covered
	if len(f.blocks) != 0 {
		t.Fatal("covered lead triggered prediction")
	}
	// But the epoch bookkeeping advanced: the covered lead committed the
	// previous epoch (2nd commit) and opened a new one, which the next
	// lead commits (3rd).
	e.OnOffChipEvent(member(12), false)
	e.OnOffChipEvent(lead(30), false)
	if e.Stats().Epochs != 3 {
		t.Fatalf("epochs = %d, want 3 (covered lead still segments)", e.Stats().Epochs)
	}
}

func TestEpochWritesIgnored(t *testing.T) {
	e, _ := newEpoch()
	e.OnOffChipEvent(trace.Access{Addr: 64, Dep: true, Write: true}, false)
	if e.Stats().Epochs != 0 || e.TableLen() != 0 {
		t.Fatal("write trained the epoch table")
	}
}

func TestEpochAnalysisModeNilEngine(t *testing.T) {
	e := New(DefaultConfig(), nil)
	feed(e, lead(10), member(11), lead(20), lead(10)) // must not panic
	if e.Stats().Epochs == 0 {
		t.Fatal("no epochs recorded in analysis mode")
	}
}
