//go:build !race

package obs

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under -race because the
// instrumentation itself allocates.
const raceEnabled = false
