package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram: power-of-two
// duration buckets from 1ns up. Buckets 0..NumBuckets-2 have finite
// upper bounds (bucket i counts observations ≤ 2^i nanoseconds ≈ 73
// minutes at the top); the last bucket is the overflow (+Inf) bucket.
const NumBuckets = 44

// Histogram is a log-bucketed latency histogram: recording rounds an
// observation up to the nearest power-of-two nanosecond bound, so the
// full dynamic range from sub-microsecond cache probes to multi-minute
// queue waits fits in 44 fixed buckets at ~2x resolution — distributions
// and tail quantiles, not just averages, at the cost of three atomic adds
// and zero heap allocations per observation (gated by alloc_test.go).
//
// The zero value is ready to use; Registry.Histogram (or
// Registry.AttachHistogram) exposes one under a name. Safe for
// concurrent use. Concurrent Observe against Snapshot trades exactness
// for speed: a snapshot taken mid-observation may transiently see a
// bucket increment before the count/sum (or vice versa) — fine for
// monitoring, which only ever reads monotone counters.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d ≤ 2^i ns, clamped into the overflow bucket.
func bucketIndex(d time.Duration) int {
	if d <= 1 {
		return 0
	}
	i := bits.Len64(uint64(d) - 1) // smallest i with d <= 1<<i
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's inclusive upper bound. The last bucket
// is the overflow bucket; its nominal bound is returned but exposition
// renders it as +Inf.
func BucketBound(i int) time.Duration { return time.Duration(uint64(1) << uint(i)) }

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a Histogram, safe to merge,
// compare, and serialize. Buckets[i] counts observations in bucket i
// (see BucketBound).
type Snapshot struct {
	Count    uint64             `json:"count"`
	SumNanos uint64             `json:"sum_nanos"`
	Buckets  [NumBuckets]uint64 `json:"buckets"`
}

// Merge accumulates another snapshot into this one — the cross-peer /
// cross-shard aggregation primitive.
func (s *Snapshot) Merge(o Snapshot) {
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed duration (0 when empty).
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the first bucket whose cumulative count reaches q·Count — an estimate
// within one power-of-two bucket of the true value, which is the
// resolution monitoring needs. Returns 0 when the histogram is empty.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}
