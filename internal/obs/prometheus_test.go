package obs

import (
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the full exposition text of a small registry:
// family ordering (by name), HELP/TYPE lines, label rendering, cumulative
// histogram buckets with empty runs elided, +Inf/_sum/_count, and gauge
// float formatting. Any format drift fails here, not in a scraper.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("stemsd_jobs_total", "Jobs accepted.", L("state", "done"))
	jobs.Add(3)
	r.Counter("stemsd_jobs_total", "Jobs accepted.", L("state", "failed")) // stays 0
	r.Gauge("stemsd_queue_depth", "Queued jobs.", func() float64 { return 2.5 })
	h := r.Histogram("stemsd_request_seconds", "Request latency.", L("route", "GET /metrics"))
	h.Observe(900 * time.Nanosecond)  // bucket 2^10 ns = 1.024e-06 s
	h.Observe(1000 * time.Nanosecond) // same bucket
	h.Observe(3 * time.Microsecond)   // bucket 2^12 ns = 4.096e-06 s
	h.Observe(200 * time.Hour)        // overflow → +Inf only

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP stemsd_jobs_total Jobs accepted.
# TYPE stemsd_jobs_total counter
stemsd_jobs_total{state="done"} 3
stemsd_jobs_total{state="failed"} 0
# HELP stemsd_queue_depth Queued jobs.
# TYPE stemsd_queue_depth gauge
stemsd_queue_depth 2.5
# HELP stemsd_request_seconds Request latency.
# TYPE stemsd_request_seconds histogram
stemsd_request_seconds_bucket{route="GET /metrics",le="1.024e-06"} 2
stemsd_request_seconds_bucket{route="GET /metrics",le="2.048e-06"} 2
stemsd_request_seconds_bucket{route="GET /metrics",le="4.096e-06"} 3
stemsd_request_seconds_bucket{route="GET /metrics",le="+Inf"} 4
stemsd_request_seconds_sum{route="GET /metrics"} 720000.0000049
stemsd_request_seconds_count{route="GET /metrics"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusEscaping covers label-value and HELP escaping.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line1\nline2 \\ backslash", L("p", `a"b\c`+"\n"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total line1\nline2 \\ backslash`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{p="a\"b\\c\n"} 0`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}
