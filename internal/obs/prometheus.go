package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): families in name order, series in
// label order, histograms as cumulative _bucket{le=...} series plus
// _sum and _count. Exposition is deterministic for a fixed registry
// state — the golden test pins it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindHistogram:
		return writeHistogram(w, f.name, s.labels, s.hist.Snapshot())
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels), s.counter.Value())
		return err
	default: // gauge, func counter
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(s.fn()))
		return err
	}
}

// writeHistogram emits the cumulative bucket series. Empty leading and
// trailing bucket runs are elided (cumulative counts lose nothing), so
// a latency histogram spanning nanoseconds to minutes stays a handful
// of lines; the +Inf bucket (which absorbs the overflow bucket) and the
// _sum/_count pair are always present.
func writeHistogram(w io.Writer, name string, labels []Label, snap Snapshot) error {
	// Find the occupied bucket range, excluding the overflow bucket
	// (rendered only through +Inf).
	lo, hi := -1, -1
	for i := 0; i < NumBuckets-1; i++ {
		if snap.Buckets[i] != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	var cum uint64
	for i := lo; i >= 0 && i <= hi; i++ {
		cum += snap.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, bucketLabels(labels, formatFloat(BucketBound(i).Seconds())), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels), formatFloat(float64(snap.SumNanos)/1e9)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels), snap.Count)
	return err
}

// bucketLabels renders a series' labels with le appended.
func bucketLabels(labels []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies HELP-line escaping.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
