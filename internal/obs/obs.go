// Package obs is stemsd's dependency-free metrics core: atomic counters,
// callback gauges, and log-bucketed latency histograms behind a named
// registry with two exporters — Prometheus text exposition (see
// WritePrometheus, served at GET /metrics?format=prometheus) and the
// JSON snapshot the service's enc.Metrics document is rebuilt on top of
// (the service reads the same counters this registry exposes, so the two
// views can never disagree).
//
// The record path — Counter.Add, Histogram.Observe, Rate.Add — is the
// hot path: it runs inside replay progress callbacks and HTTP handlers,
// so it performs zero heap allocations (gated by alloc_test.go, like the
// simulator kernel) and takes no locks beyond Rate's short mutex.
// Registration and exposition are cold paths and lock freely.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, rendered as {key="value"} in Prometheus
// exposition. Labels are fixed at registration: a per-route histogram is
// one series registered per route, not a dynamic lookup on the record
// path.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; Register (or Registry.Counter) attaches it to a name.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// metricKind discriminates the series types a registry holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindFuncCounter
	kindHistogram
)

// promType maps a series kind to its Prometheus TYPE keyword.
func (k metricKind) promType() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// series is one registered (name, labels) pair and its backing metric.
type series struct {
	labels  []Label
	counter *Counter
	hist    *Histogram
	fn      func() float64
}

// labelString renders the label set as {k="v",...} (empty for none),
// used both for exposition and duplicate detection.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies Prometheus label-value escaping.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// family groups every series sharing one metric name (same type and
// help, differing labels).
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry is a named collection of metrics. It is safe for concurrent
// use; registration normally happens once at construction time while
// exposition runs per scrape.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order; sorted at exposition
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds one series, enforcing name/type consistency and
// label-set uniqueness. Registration conflicts are programmer errors and
// panic — a daemon with colliding metric names should fail at startup,
// not scrape time.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.names = append(r.names, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q reregistered as %s (was %s)", name, kind.promType(), f.kind.promType()))
	}
	ls := labelString(s.labels)
	for _, have := range f.series {
		if labelString(have.labels) == ls {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, ls))
		}
	}
	f.series = append(f.series, s)
}

// Counter creates and registers a counter series. Conventionally the
// name ends in _total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: labels, counter: c})
	return c
}

// Gauge registers a callback gauge: fn is invoked at exposition time, so
// existing mutex-guarded state (queue depth, cache residency) exports
// without restructuring.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: labels, fn: fn})
}

// FuncCounter registers a callback counter — a monotone value owned by
// existing code (cache hit totals, store evictions) exposed without
// moving it into an obs.Counter.
func (r *Registry) FuncCounter(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindFuncCounter, &series{labels: labels, fn: fn})
}

// Histogram creates and registers a latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.register(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// AttachHistogram registers an externally owned histogram (e.g. the
// disk store's read-latency histogram, which exists whether or not a
// registry does) under a name.
func (r *Registry) AttachHistogram(name, help string, h *Histogram, labels ...Label) {
	if h == nil {
		panic("obs: attaching nil histogram")
	}
	r.register(name, help, kindHistogram, &series{labels: labels, hist: h})
}

// sortedFamilies snapshots the family list in name order; series within
// a family sort by label string, so exposition is stable regardless of
// registration order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		fc := &family{name: f.name, help: f.help, kind: f.kind,
			series: append([]*series(nil), f.series...)}
		sort.Slice(fc.series, func(i, j int) bool {
			return labelString(fc.series[i].labels) < labelString(fc.series[j].labels)
		})
		out = append(out, fc)
	}
	return out
}
