package obs

import (
	"sync"
	"testing"
	"time"
)

// ---- histogram bucketing ----

// TestBucketBoundaries pins the bucket function at its edges: every
// observation lands in the smallest bucket whose power-of-two bound
// contains it, and out-of-range values clamp into the overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, // negative clamps to zero
		{0, 0},
		{1, 0},          // ≤ 2^0
		{2, 1},          // ≤ 2^1
		{3, 2},          // > 2 so next bucket
		{4, 2},          // = 2^2
		{5, 3},          // > 2^2
		{1024, 10},      // exactly 2^10
		{1025, 11},      // one past
		{time.Hour, 42}, // 3.6e12 ns ≤ 2^42 (≈4.4e12)
		{100 * time.Hour, NumBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		s := h.Snapshot()
		got := -1
		for i, n := range s.Buckets {
			if n != 0 {
				got = i
			}
		}
		if got != c.want {
			t.Errorf("Observe(%v): bucket %d, want %d", c.d, got, c.want)
		}
		if s.Count != 1 {
			t.Errorf("Observe(%v): count %d, want 1", c.d, s.Count)
		}
	}
	// Bucket bounds themselves: 2^i nanoseconds.
	if BucketBound(0) != 1 || BucketBound(10) != 1024 {
		t.Errorf("BucketBound: got %v, %v", BucketBound(0), BucketBound(10))
	}
}

// TestSnapshotMergeAndStats checks merge arithmetic plus the mean and
// quantile estimators over a known distribution.
func TestSnapshotMergeAndStats(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 90; i++ {
		a.Observe(1 * time.Microsecond) // bucket bound 1.024µs
	}
	for i := 0; i < 10; i++ {
		b.Observe(1 * time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 100 {
		t.Fatalf("merged count = %d, want 100", sa.Count)
	}
	if want := uint64(90)*uint64(time.Microsecond) + uint64(10)*uint64(time.Millisecond); sa.SumNanos != want {
		t.Fatalf("merged sum = %d, want %d", sa.SumNanos, want)
	}
	// p50 sits in the microsecond bucket, p99 in the millisecond bucket.
	if q := sa.Quantile(0.50); q < time.Microsecond || q > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs bucket bound", q)
	}
	if q := sa.Quantile(0.99); q < time.Millisecond || q > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms bucket bound", q)
	}
	if m := sa.Mean(); m < 90*time.Microsecond || m > 120*time.Microsecond {
		t.Errorf("mean = %v, want ≈100µs", m)
	}
	// Empty snapshots are inert.
	var empty Snapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot produced nonzero stats")
	}
}

// TestConcurrentRecord hammers one histogram and one counter from many
// goroutines; under -race this doubles as the data-race gate, and the
// final counts must be exact (atomics lose nothing).
func TestConcurrentRecord(t *testing.T) {
	var (
		h  Histogram
		c  Counter
		wg sync.WaitGroup
	)
	const workers, per = 8, 10_000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i%4096) * time.Nanosecond)
				c.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum uint64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

// ---- registry ----

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", L("a", "1"))
	r.Counter("x_total", "x", L("a", "2")) // same family, new labels: fine
	mustPanic(t, "duplicate series", func() { r.Counter("x_total", "x", L("a", "1")) })
	mustPanic(t, "type clash", func() { r.Histogram("x_total", "x") })
	mustPanic(t, "empty name", func() { r.Counter("", "x") })
	mustPanic(t, "nil attach", func() { r.AttachHistogram("h", "h", nil) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

// ---- rate ----

// TestRateWindow drives a fake clock through the ring: the rate reflects
// only the trailing window, divides by elapsed time during warm-up, and
// forgets buckets older than the window.
func TestRateWindow(t *testing.T) {
	sec := int64(1_000_000)
	r := newRateAt(func() time.Time { return time.Unix(sec, 0) })

	// Warm-up: 500 events in the first 5 seconds → 100/s, not 500/60.
	for i := 0; i < 5; i++ {
		r.Add(100)
		sec++
	}
	if got := r.PerSec(); got != 100 {
		t.Fatalf("warm-up rate = %v, want 100", got)
	}

	// Idle for a full window: the burst ages out entirely.
	sec += rateWindow + 1
	if got := r.PerSec(); got != 0 {
		t.Fatalf("rate after idle window = %v, want 0", got)
	}

	// Steady state: 60 seconds of 10/s → exactly 10 (measured from
	// within the last counted second, before the oldest bucket ages out).
	for i := 0; i < rateWindow; i++ {
		r.Add(10)
		sec++
	}
	sec--
	if got := r.PerSec(); got != 10 {
		t.Fatalf("steady rate = %v, want 10", got)
	}
}
