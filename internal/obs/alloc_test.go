// Allocation-regression gate for the obs record path, in the style of
// the root alloc_test.go: Counter.Add, Histogram.Observe, and Rate.Add
// run inside replay progress callbacks and HTTP handlers, so a heap
// allocation here taxes every request and every simulated block. The
// record path is required to stay at zero allocations per operation.
package obs

import (
	"testing"
	"time"
)

func TestRecordPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	r := NewRegistry()
	c := r.Counter("alloc_c_total", "c")
	h := r.Histogram("alloc_h_seconds", "h", L("route", "x"))
	rate := NewRate()
	d := time.Duration(0)
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			c.Add(1)
			h.Observe(d)
			rate.Add(1)
			d += 977 // sweep across buckets
		}
	})
	if avg != 0 {
		t.Fatalf("obs record path allocated %.3f objects per 1000 ops, want 0", avg)
	}
}
