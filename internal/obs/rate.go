package obs

import (
	"sync"
	"time"
)

// rateWindow is the Rate averaging horizon in seconds.
const rateWindow = 60

// Rate measures recent throughput: a ring of per-second buckets over the
// last 60 seconds, so /metrics can report the *current* rate next to the
// lifetime average (which, on a long-lived daemon, is history rather
// than status: an idle hour drags it toward zero no matter what the
// daemon is doing now). Add is mutex-guarded but allocation-free; it is
// called from replay progress callbacks (once per ~4096-access block),
// where a short critical section is noise.
//
// The zero value is NOT ready; construct with NewRate.
type Rate struct {
	mu      sync.Mutex
	started int64 // unix second of construction, for the warm-up window
	secs    [rateWindow]int64
	counts  [rateWindow]uint64
	now     func() time.Time // test hook; time.Now outside tests
}

// NewRate creates a rate meter starting its warm-up window now.
func NewRate() *Rate {
	r := &Rate{now: time.Now}
	r.started = r.now().Unix()
	return r
}

// newRateAt is the test constructor with a fake clock.
func newRateAt(now func() time.Time) *Rate {
	r := &Rate{now: now}
	r.started = r.now().Unix()
	return r
}

// Add records n events at the current second.
func (r *Rate) Add(n uint64) {
	sec := r.now().Unix()
	i := sec % rateWindow
	r.mu.Lock()
	if r.secs[i] != sec {
		r.secs[i] = sec
		r.counts[i] = 0
	}
	r.counts[i] += n
	r.mu.Unlock()
}

// PerSec returns the event rate over the trailing window: events in the
// last 60 seconds divided by 60, except during the first minute of life,
// where it divides by the elapsed time so a young daemon's rate is not
// artificially diluted by seconds that never existed.
func (r *Rate) PerSec() float64 {
	sec := r.now().Unix()
	window := sec - r.started
	if window < 1 {
		window = 1
	}
	if window > rateWindow {
		window = rateWindow
	}
	var sum uint64
	r.mu.Lock()
	for i := range r.secs {
		if r.secs[i] > sec-rateWindow {
			sum += r.counts[i]
		}
	}
	r.mu.Unlock()
	return float64(sum) / float64(window)
}
