//go:build race

package obs

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
