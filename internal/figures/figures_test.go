package figures

import (
	"reflect"
	"strings"
	"testing"

	"stems/internal/sim"
	"stems/internal/trace"
	"stems/internal/workload"
)

// tinyParams keeps the smoke tests fast.
func tinyParams() Params {
	p := DefaultParams()
	p.Accesses = 30_000
	p.Seeds = 2
	return p
}

func TestFigure6Shape(t *testing.T) {
	rows := Figure6(tinyParams())
	if len(rows) != len(workload.Suite()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Result.Total() == 0 {
			t.Errorf("%s: no misses classified", r.Workload)
		}
		b, tm, s, n := r.Result.Frac()
		sum := b + tm + s + n
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %v", r.Workload, sum)
		}
	}
	out := RenderFigure6(rows)
	for _, want := range []string{"Figure 6", "Apache", "sparse", "MEAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// The paper's key DSS observation: TMS is largely ineffective.
	for _, r := range rows {
		if strings.HasPrefix(r.Workload, "Qry") && r.Result.TMSCoverage() > 0.3 {
			t.Errorf("%s: TMS coverage %.2f — DSS should be compulsory-dominated",
				r.Workload, r.Result.TMSCoverage())
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	rows := Figure7(tinyParams())
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Rep.AllAddrs.Total() == 0 || r.Rep.Triggers.Total() == 0 {
			t.Errorf("%s: empty taxonomy", r.Workload)
		}
		if r.Rep.TriggerFrac <= 0 || r.Rep.TriggerFrac > 1 {
			t.Errorf("%s: trigger fraction %v", r.Workload, r.Rep.TriggerFrac)
		}
	}
	if out := RenderFigure7(rows); !strings.Contains(out, "Opportunity") {
		t.Error("render missing opportunity column")
	}
}

func TestFigure8Shape(t *testing.T) {
	rows := Figure8(tinyParams())
	for _, r := range rows {
		if r.CD.Pairs == 0 {
			t.Errorf("%s: no pairs", r.Workload)
			continue
		}
		if w2, w4 := r.CD.WithinWindow(2), r.CD.WithinWindow(4); w4 < w2 {
			t.Errorf("%s: window(4)=%v < window(2)=%v", r.Workload, w4, w2)
		}
	}
	if out := RenderFigure8(rows); !strings.Contains(out, "win<=2") {
		t.Error("render missing window columns")
	}
}

func TestFigure9Shape(t *testing.T) {
	rows := Figure9(tinyParams())
	for _, r := range rows {
		if len(r.Cells) != 3 {
			t.Fatalf("%s: %d cells", r.Workload, len(r.Cells))
		}
		for _, c := range r.Cells {
			if c.Coverage < 0 || c.Coverage > 1 {
				t.Errorf("%s/%s: coverage %v", r.Workload, c.Kind, c.Coverage)
			}
			if c.Overpred < 0 {
				t.Errorf("%s/%s: negative overprediction", r.Workload, c.Kind)
			}
		}
	}
	if out := RenderFigure9(rows); !strings.Contains(out, "Overpredicted") {
		t.Error("render missing columns")
	}
}

func TestFigure10Shape(t *testing.T) {
	p := tinyParams()
	rows := Figure10(p)
	for _, r := range rows {
		for _, k := range Fig10Kinds {
			s, ok := r.Speedup[k]
			if !ok || s.N() != p.Seeds {
				t.Fatalf("%s/%s: %d samples, want %d", r.Workload, k, s.N(), p.Seeds)
			}
		}
	}
	if out := RenderFigure10(rows); !strings.Contains(out, "±") {
		t.Error("render missing confidence intervals")
	}
}

func TestHybridAblationShape(t *testing.T) {
	rows := HybridAblation(tinyParams())
	if len(rows) != 4 { // Apache, Zeus, DB2, Oracle
		t.Fatalf("rows = %d, want the 4 OLTP/web workloads", len(rows))
	}
	for _, r := range rows {
		if r.NaiveOverpred <= r.STeMSOverpred {
			t.Errorf("%s: naive overprediction (%.2f) not worse than STeMS (%.2f)",
				r.Workload, r.NaiveOverpred, r.STeMSOverpred)
		}
	}
	if out := RenderHybrid(rows); !strings.Contains(out, "ratio") {
		t.Error("render missing ratio")
	}
}

// TestFusedPanelsMatchIndividualFigures is the cross-figure equivalence
// gate: one fused pass per workload (analysis observers + predictor
// panel + hybrid sharing a single cursor) must reproduce every row the
// standalone figure functions compute, bit for bit, serial and parallel.
func TestFusedPanelsMatchIndividualFigures(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		p := tinyParams()
		p.Accesses = 12_000
		p.Parallel = parallel
		got := FusedPanels(p)
		if !reflect.DeepEqual(got.Fig6, Figure6(p)) {
			t.Errorf("parallel=%v: fused Figure 6 diverged", parallel)
		}
		if !reflect.DeepEqual(got.Fig7, Figure7(p)) {
			t.Errorf("parallel=%v: fused Figure 7 diverged", parallel)
		}
		if !reflect.DeepEqual(got.Fig8, Figure8(p)) {
			t.Errorf("parallel=%v: fused Figure 8 diverged", parallel)
		}
		if !reflect.DeepEqual(got.Fig9, Figure9(p)) {
			t.Errorf("parallel=%v: fused Figure 9 diverged", parallel)
		}
		if !reflect.DeepEqual(got.Hybrid, HybridAblation(p)) {
			t.Errorf("parallel=%v: fused hybrid ablation diverged", parallel)
		}
	}
}

func TestTable1Render(t *testing.T) {
	out := RenderTable1()
	for _, want := range []string{"640.0 KB", "2.5 KB", "1024.0 KB", "Apache"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 render missing %q", want)
		}
	}
}

func TestSerialMatchesParallel(t *testing.T) {
	p := tinyParams()
	p.Accesses = 10_000
	p.Parallel = true
	par := Figure6(p)
	p.Parallel = false
	ser := Figure6(p)
	for i := range par {
		if par[i].Result != ser[i].Result {
			t.Fatalf("%s: parallel and serial disagree", par[i].Workload)
		}
	}
}

func TestRunOneUsesScientificLookahead(t *testing.T) {
	p := tinyParams()
	spec, _ := workload.ByName("em3d")
	res := runOne(p, spec, sim.KindSTeMS, 1)
	if res.Accesses == 0 {
		t.Fatal("no accesses simulated")
	}
}

func TestWorkloadsCharacterization(t *testing.T) {
	rows := Workloads(tinyParams())
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]WorkloadRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.Accesses == 0 || r.Footprint == 0 {
			t.Errorf("%s: empty characterization", r.Workload)
		}
		if r.StallFrac < 0 || r.StallFrac > 1 {
			t.Errorf("%s: stall fraction %v", r.Workload, r.StallFrac)
		}
	}
	// §5.6: Oracle spends much less of its time off chip than DB2.
	if byName["Oracle"].StallFrac >= byName["DB2"].StallFrac {
		t.Errorf("Oracle stall (%v) not below DB2 (%v)",
			byName["Oracle"].StallFrac, byName["DB2"].StallFrac)
	}
	// DSS misses are scan-dominated: low dependent fraction.
	if byName["Qry2"].DepFrac > byName["DB2"].DepFrac {
		t.Error("DSS dependent-miss share not below OLTP")
	}
	if out := RenderWorkloads(rows); out == "" {
		t.Error("empty render")
	}
}

// TestFigure10GeneratesEachTraceOnce is the trace-economy acceptance
// check: a full Figure 10 run — 1 baseline + 3 predictor kinds over every
// workload and seed — replays each seed's panel as one lockstep set over
// one shared cursor, so only the base-seed traces (shared with the other
// figures) ever enter the arena. The extra confidence-interval seeds are
// generated privately, consumed by their set in a single pass, and never
// become resident anywhere.
func TestFigure10GeneratesEachTraceOnce(t *testing.T) {
	p := DefaultParams()
	p.Accesses = 5_000
	p.Seeds = 2
	Figure10(p)
	st := p.Arena.Stats()
	want := len(workload.Suite())
	if st.Generations != want {
		t.Fatalf("Figure10 put %d traces through the arena, want exactly %d (base seed only)",
			st.Generations, want)
	}
	if st.Regenerated != 0 {
		t.Fatalf("%d traces were generated more than once", st.Regenerated)
	}
	if st.Resident != want {
		t.Fatalf("%d traces resident after Figure10, want %d (base seed only)",
			st.Resident, want)
	}
}

// TestFullFigureRunSharesBaseTraces drives every trace-consuming figure
// through one shared arena (as cmd/paperfigs does) and asserts the whole
// run generates each base-seed trace once, with every additional figure a
// pure cache hit.
func TestFullFigureRunSharesBaseTraces(t *testing.T) {
	p := DefaultParams()
	p.Accesses = 5_000
	p.Seeds = 2
	Figure6(p)
	Figure7(p)
	Figure8(p)
	Figure9(p)
	Figure10(p)
	HybridAblation(p)
	Workloads(p)
	st := p.Arena.Stats()
	suite := len(workload.Suite())
	// Base seeds only: Figure 10's extra confidence-interval seeds replay
	// as arena-bypassing lockstep sets.
	want := suite
	if st.Generations != want {
		t.Fatalf("full figure run generated %d traces, want %d", st.Generations, want)
	}
	if st.Regenerated != 0 {
		t.Fatalf("%d traces regenerated during a full figure run", st.Regenerated)
	}
	if st.Hits == 0 {
		t.Fatal("no arena hits across a full figure run")
	}
}

// TestArenaPathMatchesDirectGeneration is the determinism guard for the
// arena rewiring: every figure must render byte-identically whether traces
// come from the shared arena or are regenerated per cell.
func TestArenaPathMatchesDirectGeneration(t *testing.T) {
	base := DefaultParams()
	base.Accesses = 5_000
	base.Seeds = 2

	withArena := base
	withArena.Arena = trace.NewArena()
	direct := base
	direct.Arena = nil

	for _, tc := range []struct {
		name   string
		render func(p Params) string
	}{
		{"fig6", func(p Params) string { return RenderFigure6(Figure6(p)) }},
		{"fig7", func(p Params) string { return RenderFigure7(Figure7(p)) }},
		{"fig8", func(p Params) string { return RenderFigure8(Figure8(p)) }},
		{"fig9", func(p Params) string { return RenderFigure9(Figure9(p)) }},
		{"fig10", func(p Params) string { return RenderFigure10(Figure10(p)) }},
		{"hybrid", func(p Params) string { return RenderHybrid(HybridAblation(p)) }},
	} {
		a := tc.render(withArena)
		d := tc.render(direct)
		if a != d {
			t.Errorf("%s: arena output differs from direct generation:\n--- arena ---\n%s\n--- direct ---\n%s",
				tc.name, a, d)
		}
		// And the arena path must be repeatable with a fresh cache.
		fresh := base
		fresh.Arena = trace.NewArena()
		if again := tc.render(fresh); again != a {
			t.Errorf("%s: arena output not reproducible across arenas", tc.name)
		}
	}
}
