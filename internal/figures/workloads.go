package figures

import (
	"fmt"
	"strings"

	"stems/internal/mem"
	"stems/internal/sim"
	"stems/internal/trace"
	"stems/internal/workload"
)

// WorkloadRow characterizes one workload's trace and baseline behaviour —
// the §5.1/§5.2-style methodology table: how much of the suite misses, how
// much of the miss stream is dependent, how large the footprint is, and
// what share of baseline execution time the off-chip stalls take (the
// quantity §5.6 uses to explain Oracle's low speedups).
type WorkloadRow struct {
	Workload    string
	Class       workload.Class
	Accesses    uint64
	WriteFrac   float64
	DepFrac     float64 // dependent fraction of off-chip read misses
	Footprint   int     // distinct blocks touched
	MissRate    float64 // baseline off-chip read misses per read
	TriggerFrac float64
	StallFrac   float64 // off-chip stall share of baseline cycles
}

// Workloads builds the characterization table.
func Workloads(p Params) []WorkloadRow {
	return forEachWorkload(p, func(spec workload.Spec) WorkloadRow {
		bt := p.traceFor(spec)
		row := WorkloadRow{Workload: spec.Name, Class: spec.Class, Accesses: uint64(bt.Len())}
		blocks := make(map[mem.Addr]struct{})
		var writes uint64
		var a trace.Access
		for src := bt.Source(); src.Next(&a); {
			if a.Write {
				writes++
			}
			blocks[a.Addr.Block()] = struct{}{}
		}
		row.WriteFrac = float64(writes) / float64(bt.Len())
		row.Footprint = len(blocks)

		// Baseline run for miss and stall characteristics.
		sys := p.system()
		m := sim.NewMachine(sys, sim.Nop{})
		var misses, depMisses, triggers uint64
		regions := map[mem.Addr]bool{}
		obs := observerFuncs{
			onOffChip: func(a trace.Access, covered bool) {
				if a.Write {
					return
				}
				misses++
				if a.Dep {
					depMisses++
				}
				if !regions[a.Addr.Region()] {
					regions[a.Addr.Region()] = true
					triggers++
				}
			},
		}
		m.SetPrefetcher(&obs)
		res := m.RunBlocks(bt.Blocks())

		reads := res.Reads
		if reads > 0 {
			row.MissRate = float64(misses) / float64(reads)
		}
		if misses > 0 {
			row.DepFrac = float64(depMisses) / float64(misses)
			row.TriggerFrac = float64(triggers) / float64(misses)
		}
		// Stall share: re-run with an idealized memory (all off-chip
		// latency removed) to isolate the stall component.
		ideal := sys
		ideal.OffChipCycles = 1
		mi := sim.NewMachine(ideal, sim.Nop{})
		ri := mi.RunBlocks(bt.Blocks())
		if res.Cycles > 0 {
			row.StallFrac = 1 - float64(ri.Cycles)/float64(res.Cycles)
		}
		return row
	})
}

// observerFuncs adapts closures to sim.Prefetcher.
type observerFuncs struct {
	onOffChip func(trace.Access, bool)
}

func (o *observerFuncs) Name() string                { return "observer" }
func (o *observerFuncs) OnAccess(trace.Access, bool) {}
func (o *observerFuncs) OnL1Evict(mem.Addr)          {}
func (o *observerFuncs) OnOffChipEvent(a trace.Access, c bool) {
	if o.onOffChip != nil {
		o.onOffChip(a, c)
	}
}

// RenderWorkloads formats the characterization table.
func RenderWorkloads(rows []WorkloadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workload characterization (baseline system, no prefetching)\n\n")
	fmt.Fprintf(&b, "%-12s %-10s %9s %7s %10s %8s %8s %9s %9s\n",
		"Workload", "Class", "Accesses", "Writes", "Footprint", "MissRate", "DepMiss", "Triggers", "OffChip")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10s %9d %6.1f%% %7.1f MB %7.1f%% %7.1f%% %8.1f%% %8.1f%%\n",
			r.Workload, r.Class, r.Accesses, 100*r.WriteFrac,
			float64(r.Footprint)*mem.BlockSize/(1<<20),
			100*r.MissRate, 100*r.DepFrac, 100*r.TriggerFrac, 100*r.StallFrac)
	}
	fmt.Fprintf(&b, "\nOffChip = share of baseline cycles spent on off-chip read stalls\n")
	fmt.Fprintf(&b, "(§5.6 notes Oracle spends only ~1/4 of its time off chip; DepMiss is the\n")
	fmt.Fprintf(&b, "pointer-chase share temporal streaming parallelizes)\n")
	return b.String()
}
