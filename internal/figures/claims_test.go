package figures

import (
	"testing"

	"stems/internal/sim"
	"stems/internal/workload"
)

// TestPaperClaims encodes the paper's comparative claims as assertions over
// the real workload suite at moderate scale. These are the reproduction's
// acceptance tests: if a refactor breaks one of the paper's orderings, this
// test names the claim that regressed.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims run at moderate scale; skipped in -short mode")
	}
	p := DefaultParams()
	p.Accesses = 250_000
	p.Parallel = true

	type cell struct{ tms, sms, stems sim.Result }
	results := map[string]cell{}
	rows := forEachWorkload(p, func(spec workload.Spec) struct {
		name string
		c    cell
	} {
		return struct {
			name string
			c    cell
		}{spec.Name, cell{
			tms:   runOne(p, spec, sim.KindTMS, p.Seed),
			sms:   runOne(p, spec, sim.KindSMS, p.Seed),
			stems: runOne(p, spec, sim.KindSTeMS, p.Seed),
		}}
	})
	for _, r := range rows {
		results[r.name] = r.c
	}

	// §5.2/§2.2: "TMS is mostly ineffective for DSS workloads, which are
	// dominated by scans of previously untouched data."
	for _, q := range []string{"Qry2", "Qry16", "Qry17"} {
		if cov := results[q].tms.Coverage(); cov > 0.15 {
			t.Errorf("claim §2.2: TMS coverage on %s = %.1f%%, want near zero", q, 100*cov)
		}
	}

	// §5.5: "STeMS achieves essentially the same coverage as SMS" in DSS.
	for _, q := range []string{"Qry2", "Qry16", "Qry17"} {
		c := results[q]
		if c.stems.Coverage() < c.sms.Coverage()-0.05 {
			t.Errorf("claim §5.5 (DSS): STeMS %.1f%% well below SMS %.1f%% on %s",
				100*c.stems.Coverage(), 100*c.sms.Coverage(), q)
		}
	}

	// §5.5: "STeMS predicts on average 8% more off-chip misses than the
	// best of the underlying predictors" in OLTP/web — we assert it is at
	// least competitive with the best (within 5 points) and above the
	// worst by a clear margin.
	for _, w := range []string{"Apache", "Zeus", "DB2", "Oracle"} {
		c := results[w]
		best := c.tms.Coverage()
		worst := c.sms.Coverage()
		if worst > best {
			best, worst = worst, best
		}
		if c.stems.Coverage() < best-0.05 {
			t.Errorf("claim §5.5 (OLTP/web): STeMS %.1f%% not competitive with best %.1f%% on %s",
				100*c.stems.Coverage(), 100*best, w)
		}
		if c.stems.Coverage() < worst {
			t.Errorf("claim §5.5 (OLTP/web): STeMS below the *worse* baseline on %s", w)
		}
	}

	// §5.5: "em3d ... coverage falls between that of TMS and SMS."
	{
		c := results["em3d"]
		if !(c.sms.Coverage() < c.stems.Coverage() && c.stems.Coverage() < c.tms.Coverage()) {
			t.Errorf("claim §5.5 (em3d): want SMS (%.1f%%) < STeMS (%.1f%%) < TMS (%.1f%%)",
				100*c.sms.Coverage(), 100*c.stems.Coverage(), 100*c.tms.Coverage())
		}
	}

	// §5.6: "In OLTP ... SMS offers little performance improvement despite
	// its high coverage" — SMS covers more than half of what TMS covers in
	// DB2 while its speedup is far lower. We check the mechanism: SMS's
	// covered misses are the independent ones, so TMS's cycle win per
	// covered miss must be larger.
	{
		c := results["DB2"]
		smsSaved := int64(0)
		if c.sms.Cycles > 0 {
			smsSaved = int64(c.tms.Cycles) - int64(c.sms.Cycles)
		}
		if smsSaved > 0 {
			t.Errorf("claim §5.6 (OLTP): SMS (%d cycles) outperformed TMS (%d) on DB2",
				c.sms.Cycles, c.tms.Cycles)
		}
	}

	// §2.1/§5.6: temporal streaming parallelizes dependence chains — TMS
	// must be several times faster than SMS on em3d and sparse.
	for _, w := range []string{"em3d", "sparse"} {
		c := results[w]
		// At this scale TMS spends its first iteration training, so we
		// require a 1.5x advantage rather than the asymptotic ~4x.
		if c.tms.Cycles*3 > c.sms.Cycles*2 {
			t.Errorf("claim §5.6 (%s): TMS cycles %d not well below SMS %d",
				w, c.tms.Cycles, c.sms.Cycles)
		}
		// And STeMS inherits most of that benefit.
		if c.stems.Cycles > c.sms.Cycles {
			t.Errorf("claim §5.6 (%s): STeMS slower than SMS", w)
		}
	}
}
