// Package figures regenerates every table and figure of the paper's
// evaluation (§5) from the synthetic workload suite: Table 1 (system
// parameters and predictor storage), Figure 6 (joint coverage), Figure 7
// (Sequitur repetition), Figure 8 (correlation distance), Figure 9
// (coverage/overprediction), Figure 10 (speedup over the stride baseline),
// and the §5.5 naive-hybrid overprediction comparison. Both cmd/paperfigs
// and the repository-level benchmarks drive this package.
package figures

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"stems/internal/analysis"
	"stems/internal/config"
	"stems/internal/par"
	"stems/internal/sim"
	"stems/internal/stats"
	"stems/internal/trace"
	"stems/internal/workload"

	// The figure harness builds every predictor kind by name.
	_ "stems/internal/predictors"
)

// Params controls experiment scale.
type Params struct {
	// Seed is the base workload seed.
	Seed int64
	// Accesses overrides each workload's default trace length (0 = default).
	Accesses int
	// Seeds is the number of independent runs for Figure 10's confidence
	// intervals.
	Seeds int
	// System is the simulated node; the zero value selects the scaled
	// experiment configuration (see config.ScaledSystem).
	System config.System
	// Parallel enables running workloads on separate goroutines.
	Parallel bool
	// Parallelism bounds the worker goroutines when Parallel is set
	// (0 = GOMAXPROCS).
	Parallelism int
	// Arena caches generated traces so every figure cell sharing a
	// (workload, seed, length) replays one slice instead of regenerating
	// it — pass the same arena to several figures and the whole run
	// generates each trace once. A nil arena regenerates per cell.
	Arena *trace.Arena
}

// DefaultParams returns the scale used for EXPERIMENTS.md.
func DefaultParams() Params {
	return Params{Seed: 1, Seeds: 5, System: config.ScaledSystem(), Parallel: true, Arena: trace.NewArena()}
}

func (p Params) system() config.System {
	if p.System.L1SizeBytes == 0 {
		return config.ScaledSystem()
	}
	return p.System
}

// accessesFor returns the trace length used for spec.
func (p Params) accessesFor(spec workload.Spec) int {
	if p.Accesses > 0 {
		return p.Accesses
	}
	return spec.DefaultAccesses
}

// traceAt returns spec's columnar trace for an explicit seed, through the
// arena when one is configured.
func (p Params) traceAt(spec workload.Spec, seed int64) *trace.BlockTrace {
	n := p.accessesFor(spec)
	if p.Arena != nil {
		return p.Arena.Get(spec.Name, seed, n, func() []trace.Access {
			return spec.Generate(seed, n)
		})
	}
	return spec.GenerateBlocks(seed, n)
}

func (p Params) traceFor(spec workload.Spec) *trace.BlockTrace {
	return p.traceAt(spec, p.Seed)
}

// laneParallelism is the worker bound for a per-workload lockstep set:
// when workloads already fan out across goroutines each cell's set runs
// serially; a standalone (non-parallel) figure lets the set use the whole
// machine instead.
func (p Params) laneParallelism() int {
	if p.Parallel {
		return 1
	}
	return 0
}

// forEachWorkload runs fn over the suite, optionally in parallel,
// preserving suite order in the output.
func forEachWorkload[T any](p Params, fn func(spec workload.Spec) T) []T {
	specs := workload.Suite()
	workers := 1
	if p.Parallel {
		workers = p.Parallelism // 0 = GOMAXPROCS
	}
	out, _ := par.Map(context.Background(), len(specs), workers,
		func(_ context.Context, i int) (T, error) { return fn(specs[i]), nil })
	return out
}

// ---- Figure 6 ----

// Fig6Row is one workload's joint TMS/SMS classification.
type Fig6Row struct {
	Workload string
	Class    workload.Class
	Result   analysis.JointResult
}

// Figure6 classifies every baseline off-chip read miss per workload.
func Figure6(p Params) []Fig6Row {
	return forEachWorkload(p, func(spec workload.Spec) Fig6Row {
		return Fig6Row{
			Workload: spec.Name,
			Class:    spec.Class,
			Result:   analysis.Joint(p.system(), config.DefaultSMS(), p.traceFor(spec).Blocks()),
		}
	})
}

// RenderFigure6 formats the rows as the paper's stacked-bar data.
func RenderFigure6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: joint analysis of temporal and spatial memory streaming\n")
	fmt.Fprintf(&b, "(fraction of baseline off-chip read misses)\n\n")
	fmt.Fprintf(&b, "%-12s %-10s %8s %9s %9s %9s\n",
		"Workload", "Class", "Both", "TMS-only", "SMS-only", "Neither")
	var sb, st, ss, sn float64
	for _, r := range rows {
		both, tms, sms, neither := r.Result.Frac()
		fmt.Fprintf(&b, "%-12s %-10s %7.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Workload, r.Class, 100*both, 100*tms, 100*sms, 100*neither)
		sb += both
		st += tms
		ss += sms
		sn += neither
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-12s %-10s %7.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			"MEAN", "", 100*sb/n, 100*st/n, 100*ss/n, 100*sn/n)
		fmt.Fprintf(&b, "\npaper headline (§1): temporal 32%%, spatial 54%%, joint 70%% — here: "+
			"temporal %.0f%%, spatial %.0f%%, joint %.0f%%\n",
			100*(sb+st)/n, 100*(sb+ss)/n, 100*(sb+st+ss)/n)
	}
	return b.String()
}

// ---- Figure 7 ----

// Fig7Row is one workload's repetition taxonomy.
type Fig7Row struct {
	Workload string
	Rep      analysis.Repetition
}

// Figure7 runs the Sequitur study per workload.
func Figure7(p Params) []Fig7Row {
	return forEachWorkload(p, func(spec workload.Spec) Fig7Row {
		return Fig7Row{Workload: spec.Name, Rep: analysis.Repetitions(p.system(), p.traceFor(spec).Blocks())}
	})
}

// RenderFigure7 formats the taxonomy for all-misses and triggers.
func RenderFigure7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: temporal repetition of addresses and spatial triggers\n\n")
	fmt.Fprintf(&b, "%-12s %-10s %8s %7s %7s %12s\n",
		"Workload", "Sequence", "Non-rep", "New", "Head", "Opportunity")
	var oppAll, oppTrig float64
	for _, r := range rows {
		for _, seq := range []struct {
			label string
			rep   analysis.RepBreakdown
		}{{"All_Addrs", r.Rep.AllAddrs}, {"Triggers", r.Rep.Triggers}} {
			n, nw, h, o := seq.rep.Frac()
			fmt.Fprintf(&b, "%-12s %-10s %7.1f%% %6.1f%% %6.1f%% %11.1f%%\n",
				r.Workload, seq.label, 100*n, 100*nw, 100*h, 100*o)
		}
		oppAll += r.Rep.AllAddrs.OpportunityFrac()
		oppTrig += r.Rep.Triggers.OpportunityFrac()
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		fmt.Fprintf(&b, "\nmean opportunity: all addresses %.0f%%, triggers %.0f%% "+
			"(paper §1: 45%% vs 47%%)\n", 100*oppAll/n, 100*oppTrig/n)
	}
	return b.String()
}

// ---- Figure 8 ----

// Fig8Row is one workload's correlation-distance distribution.
type Fig8Row struct {
	Workload string
	CD       *analysis.CorrDist
}

// Figure8 runs the intra-generation reordering study per workload.
func Figure8(p Params) []Fig8Row {
	return forEachWorkload(p, func(spec workload.Spec) Fig8Row {
		return Fig8Row{Workload: spec.Name, CD: analysis.CorrDistances(p.system(), p.traceFor(spec).Blocks())}
	})
}

// RenderFigure8 formats the cumulative distribution over distances -6..6.
func RenderFigure8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: temporal repetition within spatial generations\n")
	fmt.Fprintf(&b, "(cumulative fraction of region access pairs by correlation distance;\n")
	fmt.Fprintf(&b, " +1 = perfect repetition)\n\n")
	fmt.Fprintf(&b, "%-12s", "Workload")
	for d := -6; d <= 6; d++ {
		if d == 0 {
			continue // distance 0 cannot occur (distinct offsets)
		}
		fmt.Fprintf(&b, " %6d", d)
	}
	fmt.Fprintf(&b, " %7s %7s\n", "win<=2", "win<=4")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		cum := 0.0
		// Walk distances in plot order, accumulating the in-range mass the
		// way the paper's CDF does (under-range mass excluded like the
		// paper's ±6 plot).
		for d := -6; d <= 6; d++ {
			if d == 0 {
				continue
			}
			cum += r.CD.Hist.Frac(d)
			fmt.Fprintf(&b, " %5.1f%%", 100*cum)
		}
		fmt.Fprintf(&b, " %6.1f%% %6.1f%%\n",
			100*r.CD.WithinWindow(2), 100*r.CD.WithinWindow(4))
	}
	return b.String()
}

// ---- Figure 9 ----

// Fig9Kinds are the predictors compared in Figure 9.
var Fig9Kinds = []sim.Kind{sim.KindTMS, sim.KindSMS, sim.KindSTeMS}

// Fig9Cell is one predictor's result on one workload.
type Fig9Cell struct {
	Kind     sim.Kind
	Coverage float64
	Overpred float64
	Result   sim.Result
}

// Fig9Row is one workload's comparison.
type Fig9Row struct {
	Workload string
	Cells    []Fig9Cell
}

// buildFigMachine constructs one figure cell's machine: the paper's
// default predictor sizings on this run's system, with the workload-class
// lookahead.
func buildFigMachine(p Params, spec workload.Spec, kind sim.Kind) *sim.Machine {
	opt := sim.DefaultOptions()
	opt.System = p.system()
	opt.Scientific = spec.Scientific
	m, err := sim.Build(kind, opt)
	if err != nil {
		panic(err)
	}
	return m
}

// runOne simulates one workload under one predictor. The trace comes from
// the shared arena, so the predictor kinds (and Figure 10's baseline)
// replay one generation of each (workload, seed) trace, block by block
// through the batched kernel.
func runOne(p Params, spec workload.Spec, kind sim.Kind, seed int64) sim.Result {
	return buildFigMachine(p, spec, kind).RunBlocks(p.traceAt(spec, seed).Blocks())
}

// Figure9 measures covered/uncovered/overpredicted per workload and
// predictor. Each workload's kind panel replays as one lockstep set over
// a single shared trace cursor — one traversal for all three predictors,
// byte-identical to running them alone.
func Figure9(p Params) []Fig9Row {
	return forEachWorkload(p, func(spec workload.Spec) Fig9Row {
		machines := make([]*sim.Machine, len(Fig9Kinds))
		for i, kind := range Fig9Kinds {
			machines[i] = buildFigMachine(p, spec, kind)
		}
		set := sim.NewSharedSet(p.traceFor(spec).Blocks(), machines...)
		set.Parallelism = p.laneParallelism()
		results, err := set.Run(context.Background())
		if err != nil {
			panic(err)
		}
		row := Fig9Row{Workload: spec.Name}
		for i, kind := range Fig9Kinds {
			res := results[i]
			row.Cells = append(row.Cells, Fig9Cell{
				Kind:     kind,
				Coverage: res.Coverage(),
				Overpred: res.OverpredictionRate(),
				Result:   res,
			})
		}
		return row
	})
}

// RenderFigure9 formats the comparison.
func RenderFigure9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: comparison of temporal, spatial, and spatio-temporal streaming\n")
	fmt.Fprintf(&b, "(as %% of baseline off-chip read misses)\n\n")
	fmt.Fprintf(&b, "%-12s %-7s %9s %10s %13s\n", "Workload", "Pred", "Covered", "Uncovered", "Overpredicted")
	sums := map[sim.Kind][2]float64{}
	for _, r := range rows {
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%-12s %-7s %8.1f%% %9.1f%% %12.1f%%\n",
				r.Workload, c.Kind, 100*c.Coverage, 100*(1-c.Coverage), 100*c.Overpred)
			s := sums[c.Kind]
			s[0] += c.Coverage
			s[1] += c.Overpred
			sums[c.Kind] = s
		}
		fmt.Fprintln(&b)
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		kinds := make([]string, 0, len(sums))
		for k := range sums {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			s := sums[sim.Kind(k)]
			fmt.Fprintf(&b, "MEAN %-7s coverage=%.1f%% overpredictions=%.1f%%\n",
				k, 100*s[0]/n, 100*s[1]/n)
		}
		fmt.Fprintf(&b, "\npaper headline (§1): STeMS predicts 62%% of off-chip read misses,\n"+
			"mispredicts an additional 29%%\n")
	}
	return b.String()
}

// ---- Figure 10 ----

// Fig10Kinds are the predictors compared against the stride baseline.
var Fig10Kinds = []sim.Kind{sim.KindTMS, sim.KindSMS, sim.KindSTeMS}

// Fig10Row is one workload's speedups with confidence intervals.
type Fig10Row struct {
	Workload string
	// Speedup maps predictor -> sample of (cycles_baseline/cycles - 1)
	// over the seeds.
	Speedup map[sim.Kind]*stats.Sample
}

// Figure10 measures performance improvement over the stride-prefetching
// baseline across seeds (the stand-in for the paper's SimFlex sampling).
//
// Each seed's panel — the stride baseline plus every compared kind —
// replays as one lockstep MachineSet over a single shared trace cursor:
// the trace is generated once, each block is fetched once and stepped by
// all four machines while its columns are hot in cache, and the results
// are byte-identical to the former one-run-per-kind loop (machines share
// no mutable state; the equivalence suite pins this). Extra
// confidence-interval seeds never enter the arena at all — their trace
// lives exactly as long as their set replays, which replaces the
// generate-then-Drop arena juggling the sequential loop needed to keep
// peak memory near one trace per worker.
func Figure10(p Params) []Fig10Row {
	seeds := p.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	laneParallelism := p.laneParallelism()
	return forEachWorkload(p, func(spec workload.Spec) Fig10Row {
		row := Fig10Row{Workload: spec.Name, Speedup: map[sim.Kind]*stats.Sample{}}
		for _, kind := range Fig10Kinds {
			row.Speedup[kind] = &stats.Sample{}
		}
		for s := 0; s < seeds; s++ {
			seed := p.Seed + int64(s)*7919
			var bt *trace.BlockTrace
			if seed == p.Seed {
				// The base seed is shared with every other figure through
				// the arena.
				bt = p.traceAt(spec, seed)
			} else {
				bt = spec.GenerateBlocks(seed, p.accessesFor(spec))
			}
			machines := make([]*sim.Machine, 0, 1+len(Fig10Kinds))
			for _, kind := range append([]sim.Kind{sim.KindStride}, Fig10Kinds...) {
				opt := sim.DefaultOptions()
				opt.System = p.system()
				opt.Scientific = spec.Scientific
				m, err := sim.Build(kind, opt)
				if err != nil {
					panic(err)
				}
				machines = append(machines, m)
			}
			set := sim.NewSharedSet(bt.Blocks(), machines...)
			set.Parallelism = laneParallelism
			results, err := set.Run(context.Background())
			if err != nil {
				panic(err)
			}
			base := results[0]
			for i, kind := range Fig10Kinds {
				row.Speedup[kind].Add(float64(base.Cycles)/float64(results[i+1].Cycles) - 1)
			}
		}
		return row
	})
}

// RenderFigure10 formats speedups with 95% confidence intervals.
func RenderFigure10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: performance improvement over the stride-prefetching baseline\n")
	fmt.Fprintf(&b, "(mean ± 95%% CI over seeds)\n\n")
	fmt.Fprintf(&b, "%-12s", "Workload")
	for _, k := range Fig10Kinds {
		fmt.Fprintf(&b, " %18s", k)
	}
	fmt.Fprintln(&b)
	geo := map[sim.Kind]float64{}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for _, k := range Fig10Kinds {
			s := r.Speedup[k]
			fmt.Fprintf(&b, "  %+7.1f%% ± %5.1f%%", 100*s.Mean(), 100*s.CI95())
			geo[k] += s.Mean()
		}
		fmt.Fprintln(&b)
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		fmt.Fprintf(&b, "%-12s", "MEAN")
		for _, k := range Fig10Kinds {
			fmt.Fprintf(&b, "  %+7.1f%%%9s", 100*geo[k]/n, "")
		}
		fmt.Fprintf(&b, "\n\npaper headline (§1): STeMS improves performance by 31%%, 3%%, and 18%%\n"+
			"over stride, spatial, and temporal prediction, respectively\n")
	}
	return b.String()
}

// ---- §5.5 naive hybrid ablation ----

// HybridRow compares the naive combination's overpredictions with STeMS's.
type HybridRow struct {
	Workload      string
	NaiveOverpred float64
	STeMSOverpred float64
	NaiveCoverage float64
	STeMSCoverage float64
}

// Ratio returns naive/STeMS overprediction ratio (∞-safe).
func (h HybridRow) Ratio() float64 {
	if h.STeMSOverpred == 0 {
		return 0
	}
	return h.NaiveOverpred / h.STeMSOverpred
}

// HybridAblation runs the §5.5 comparison on the commercial workloads
// (the paper quotes the OLTP/web ratio). The two machines fuse onto one
// shared cursor per workload.
func HybridAblation(p Params) []HybridRow {
	var rows []HybridRow
	for _, spec := range workload.Suite() {
		if spec.Class != workload.ClassWeb && spec.Class != workload.ClassOLTP {
			continue
		}
		set := sim.NewSharedSet(p.traceFor(spec).Blocks(),
			buildFigMachine(p, spec, sim.KindNaiveHybrid),
			buildFigMachine(p, spec, sim.KindSTeMS))
		set.Parallelism = p.laneParallelism()
		results, err := set.Run(context.Background())
		if err != nil {
			panic(err)
		}
		rows = append(rows, hybridRow(spec, results[0], results[1]))
	}
	return rows
}

func hybridRow(spec workload.Spec, naive, st sim.Result) HybridRow {
	return HybridRow{
		Workload:      spec.Name,
		NaiveOverpred: naive.OverpredictionRate(),
		STeMSOverpred: st.OverpredictionRate(),
		NaiveCoverage: naive.Coverage(),
		STeMSCoverage: st.Coverage(),
	}
}

// RenderHybrid formats the §5.5 comparison.
func RenderHybrid(rows []HybridRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.5 ablation: naive TMS+SMS combination vs STeMS (OLTP and web)\n\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %8s\n", "Workload", "naive-over", "stems-over", "ratio")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %11.1f%% %11.1f%% %7.1fx\n",
			r.Workload, 100*r.NaiveOverpred, 100*r.STeMSOverpred, r.Ratio())
		sum += r.Ratio()
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "\nmean ratio %.1fx (paper §5.5: \"roughly 2-3x the overpredictions of STeMS\")\n",
			sum/float64(len(rows)))
	}
	return b.String()
}

// ---- Fused panels ----

// Panels bundles every figure that replays the base-seed trace: the three
// analysis studies (Figures 6-8), the Figure 9 predictor panel, and the
// §5.5 hybrid ablation.
type Panels struct {
	Fig6   []Fig6Row
	Fig7   []Fig7Row
	Fig8   []Fig8Row
	Fig9   []Fig9Row
	Hybrid []HybridRow
}

// FusedPanels computes all of Panels in one pass over each workload's
// trace: the three analysis observers, the Figure 9 predictor kinds, and
// (on commercial workloads) the naive hybrid advance as one lockstep set
// over a single shared cursor, so a full paper reproduction traverses
// each trace once instead of once per figure cell. Results are
// byte-identical to the individual figure functions — observer machines
// and predictor machines share no mutable state — and the figures test
// suite pins the equivalence. The hybrid rows reuse the Figure 9 STeMS
// lane (the two figures build identically configured machines).
func FusedPanels(p Params) Panels {
	type row struct {
		fig6 Fig6Row
		fig7 Fig7Row
		fig8 Fig8Row
		fig9 Fig9Row
		hyb  *HybridRow
	}
	const analysisLanes = 3
	stemsLane := -1
	for i, kind := range Fig9Kinds {
		if kind == sim.KindSTeMS {
			stemsLane = analysisLanes + i
		}
	}
	rows := forEachWorkload(p, func(spec workload.Spec) row {
		sys := p.system()
		joint := analysis.NewJointCollector(sys, config.DefaultSMS())
		rep := analysis.NewRepetitionCollector(sys)
		corr := analysis.NewCorrDistCollector(sys)
		machines := []*sim.Machine{joint.Machine(), rep.Machine(), corr.Machine()}
		for _, kind := range Fig9Kinds {
			machines = append(machines, buildFigMachine(p, spec, kind))
		}
		commercial := spec.Class == workload.ClassWeb || spec.Class == workload.ClassOLTP
		naiveLane, hybridSTeMSLane := -1, stemsLane
		if commercial {
			naiveLane = len(machines)
			machines = append(machines, buildFigMachine(p, spec, sim.KindNaiveHybrid))
			if hybridSTeMSLane < 0 {
				// Fig9Kinds without STeMS (someone swapped the panel): give
				// the ablation its own lane rather than skipping the row.
				hybridSTeMSLane = len(machines)
				machines = append(machines, buildFigMachine(p, spec, sim.KindSTeMS))
			}
		}
		set := sim.NewSharedSet(p.traceFor(spec).Blocks(), machines...)
		set.Parallelism = p.laneParallelism()
		results, err := set.Run(context.Background())
		if err != nil {
			panic(err)
		}
		out := row{
			fig6: Fig6Row{Workload: spec.Name, Class: spec.Class, Result: joint.Result()},
			fig7: Fig7Row{Workload: spec.Name, Rep: rep.Result()},
			fig8: Fig8Row{Workload: spec.Name, CD: corr.Result()},
			fig9: Fig9Row{Workload: spec.Name},
		}
		for i, kind := range Fig9Kinds {
			res := results[analysisLanes+i]
			out.fig9.Cells = append(out.fig9.Cells, Fig9Cell{
				Kind:     kind,
				Coverage: res.Coverage(),
				Overpred: res.OverpredictionRate(),
				Result:   res,
			})
		}
		if commercial {
			h := hybridRow(spec, results[naiveLane], results[hybridSTeMSLane])
			out.hyb = &h
		}
		return out
	})
	var ps Panels
	for _, r := range rows {
		ps.Fig6 = append(ps.Fig6, r.fig6)
		ps.Fig7 = append(ps.Fig7, r.fig7)
		ps.Fig8 = append(ps.Fig8, r.fig8)
		ps.Fig9 = append(ps.Fig9, r.fig9)
		if r.hyb != nil {
			ps.Hybrid = append(ps.Hybrid, *r.hyb)
		}
	}
	return ps
}

// ---- Table 1 ----

// RenderTable1 prints the system/application parameters and the §4.3
// predictor storage budgets.
func RenderTable1() string {
	sys := config.DefaultSystem()
	st := config.Storage(config.DefaultSMS(), config.DefaultTMS(), config.DefaultSTeMS())
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: system parameters (model equivalents)\n\n")
	fmt.Fprintf(&b, "L1d cache           %dKB %d-way, %dB blocks\n", sys.L1SizeBytes>>10, sys.L1Ways, 64)
	fmt.Fprintf(&b, "L2 cache            %dMB %d-way, %d-cycle hit\n", sys.L2SizeBytes>>20, sys.L2Ways, sys.L2HitCycles)
	fmt.Fprintf(&b, "Off-chip latency    %d cycles\n", sys.OffChipCycles)
	fmt.Fprintf(&b, "Core MLP (indep)    %.0f overlapping misses\n", sys.MLP)
	fmt.Fprintf(&b, "Memory channels     %d, %d-cycle occupancy per 64B transfer\n", sys.MemChannels, sys.ChannelOccupancy)
	fmt.Fprintf(&b, "\nPredictor storage (§4.3)\n")
	fmt.Fprintf(&b, "STeMS AGT           %6.1f KB (64 entries x 40B)\n", float64(st.AGT)/1024)
	fmt.Fprintf(&b, "STeMS PST           %6.1f KB (16K entries x 40B, off chip)\n", float64(st.PST)/1024)
	fmt.Fprintf(&b, "STeMS RMOB          %6.1f KB (128K entries x 8B, off chip)\n", float64(st.RMOB)/1024)
	fmt.Fprintf(&b, "TMS CMOB            %6.1f KB (384K entries, off chip)\n", float64(st.CMOB)/1024)
	fmt.Fprintf(&b, "SMS PHT             %6.1f KB (16K entries x 4B)\n", float64(st.PHT)/1024)
	fmt.Fprintf(&b, "\nWorkloads: %s\n", strings.Join(workload.Names(), ", "))
	return b.String()
}
