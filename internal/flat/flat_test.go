package flat

import (
	"math/rand"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	tb := NewTable[uint64, int](8)
	if _, ok := tb.Get(1); ok {
		t.Fatal("Get on empty table succeeded")
	}
	tb.Put(1, 10)
	tb.Put(2, 20)
	tb.Put(1, 11) // update
	if v, ok := tb.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if !tb.Delete(1) || tb.Delete(1) {
		t.Fatal("Delete semantics wrong")
	}
	if tb.Has(1) || !tb.Has(2) {
		t.Fatal("Has wrong after delete")
	}
}

func TestGrowBeyondCapacity(t *testing.T) {
	tb := NewTable[int, int](4)
	for i := 0; i < 1000; i++ {
		tb.Put(i, i*3)
	}
	if tb.Len() != 1000 {
		t.Fatalf("Len = %d", tb.Len())
	}
	for i := 0; i < 1000; i++ {
		if v, ok := tb.Get(i); !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v after grow", i, v, ok)
		}
	}
}

func TestClear(t *testing.T) {
	tb := NewTable[int, int](16)
	for i := 0; i < 16; i++ {
		tb.Put(i, i)
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tb.Len())
	}
	for i := 0; i < 16; i++ {
		if tb.Has(i) {
			t.Fatalf("key %d survived Clear", i)
		}
	}
	tb.Put(3, 33)
	if v, _ := tb.Get(3); v != 33 {
		t.Fatal("table unusable after Clear")
	}
}

// The backward-shift deletion is the subtle part of open addressing: drive
// the table through a dense random workload in a small key space (maximal
// probe-run collisions) and require exact agreement with a Go map.
func TestMatchesMapReference(t *testing.T) {
	for _, keySpace := range []int{8, 64, 4096} {
		tb := NewTable[uint64, int](32)
		ref := map[uint64]int{}
		rng := rand.New(rand.NewSource(int64(keySpace)))
		for step := 0; step < 50000; step++ {
			k := uint64(rng.Intn(keySpace))
			switch rng.Intn(4) {
			case 0, 1:
				tb.Put(k, step)
				ref[k] = step
			case 2:
				gv, gok := tb.Get(k)
				rv, rok := ref[k]
				if gok != rok || gv != rv {
					t.Fatalf("space %d step %d: Get(%d) = (%d,%v), ref (%d,%v)",
						keySpace, step, k, gv, gok, rv, rok)
				}
			case 3:
				_, rok := ref[k]
				delete(ref, k)
				if tb.Delete(k) != rok {
					t.Fatalf("space %d step %d: Delete(%d) mismatch", keySpace, step, k)
				}
			}
			if tb.Len() != len(ref) {
				t.Fatalf("space %d step %d: Len=%d ref=%d", keySpace, step, tb.Len(), len(ref))
			}
		}
		// Full sweep: every surviving key must be reachable.
		for k, rv := range ref {
			if gv, ok := tb.Get(k); !ok || gv != rv {
				t.Fatalf("space %d final: Get(%d) = (%d,%v), ref %d", keySpace, k, gv, ok, rv)
			}
		}
	}
}

func TestStructKeys(t *testing.T) {
	type key struct {
		PC     uint64
		Offset int
	}
	tb := NewTable[key, string](8)
	tb.Put(key{1, 2}, "a")
	tb.Put(key{1, 3}, "b")
	if v, ok := tb.Get(key{1, 2}); !ok || v != "a" {
		t.Fatalf("struct key Get = %q,%v", v, ok)
	}
	if !tb.Delete(key{1, 3}) || tb.Has(key{1, 3}) {
		t.Fatal("struct key Delete failed")
	}
}
