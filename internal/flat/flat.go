// Package flat provides a compact open-addressed hash table used on the
// simulator's hottest paths in place of Go's built-in map. The replay loop
// performs several table operations per simulated access (LRU predictor
// tables, the RMOB/CMOB address indexes, SVB residency, reconstruction
// dedup); Go maps hash through an interface, allocate buckets on growth,
// and defeat prefetching with pointer-chased overflow cells. Table instead
// keys a pair of flat arrays with linear probing and backward-shift
// deletion — the index-linked contiguous layout that parHSOM-style
// flattening uses to make pointer structures hardware-friendly — and
// performs zero allocations after construction as long as the caller keeps
// the live-key count within Cap.
package flat

import "hash/maphash"

// Table is a fixed-geometry open-addressed hash table with linear probing.
// The zero value is not usable; call NewTable. Not safe for concurrent use.
type Table[K comparable, V any] struct {
	hash func(K) uint64
	keys []K
	vals []V
	used []bool
	mask uint64
	n    int
}

// Hash64 is a fast full-avalanche mix (the splitmix64 finalizer) for
// tables keyed by addresses, positions, or other machine words. It is
// several times cheaper than the generic maphash path — no seed lookup, no
// type descriptor, no function-call chain — which matters because the
// replay loop hashes multiple times per simulated access.
func Hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTable creates a table that holds up to capacity live keys without
// growing, hashing with the generic maphash.Comparable. The probe array is
// sized to the next power of two at or above twice the capacity, bounding
// the load factor at 1/2.
func NewTable[K comparable, V any](capacity int) *Table[K, V] {
	seed := maphash.MakeSeed()
	return NewTableWith[K, V](capacity, func(k K) uint64 {
		return maphash.Comparable(seed, k)
	})
}

// NewTableWith is NewTable with a caller-supplied hash function — the hot
// tables keyed by block addresses or PCs pass a Hash64-based mix instead
// of paying the maphash generic dispatch.
func NewTableWith[K comparable, V any](capacity int, hash func(K) uint64) *Table[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	size := uint64(8)
	for size < 2*uint64(capacity) {
		size <<= 1
	}
	return &Table[K, V]{
		hash: hash,
		keys: make([]K, size),
		vals: make([]V, size),
		used: make([]bool, size),
		mask: size - 1,
	}
}

// Len returns the number of live keys.
func (t *Table[K, V]) Len() int { return t.n }

// Cap returns the number of live keys the table holds before Put grows it:
// half the probe-array size, so probes stay short.
func (t *Table[K, V]) Cap() int { return int((t.mask + 1) / 2) }

// Full reports whether the next insert of a new key would grow the table.
// Callers that must stay allocation-free (e.g. the RMOB index) check this
// and shed stale keys instead of growing.
func (t *Table[K, V]) Full() bool { return t.n >= t.Cap() }

func (t *Table[K, V]) home(k K) uint64 {
	return t.hash(k) & t.mask
}

// Get returns the value stored for k.
func (t *Table[K, V]) Get(k K) (V, bool) {
	for i := t.home(k); t.used[i]; i = (i + 1) & t.mask {
		if t.keys[i] == k {
			return t.vals[i], true
		}
	}
	var zero V
	return zero, false
}

// Has reports whether k is present.
func (t *Table[K, V]) Has(k K) bool {
	for i := t.home(k); t.used[i]; i = (i + 1) & t.mask {
		if t.keys[i] == k {
			return true
		}
	}
	return false
}

// Put inserts or updates k. Inserting a new key beyond Cap doubles the
// probe array (an allocation); size the table for its worst-case live set
// to keep the steady state allocation-free.
func (t *Table[K, V]) Put(k K, v V) {
	i := t.home(k)
	for t.used[i] {
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
		i = (i + 1) & t.mask
	}
	if t.Full() {
		t.grow()
		i = t.home(k)
		for t.used[i] {
			i = (i + 1) & t.mask
		}
	}
	t.keys[i], t.vals[i], t.used[i] = k, v, true
	t.n++
}

// Add inserts k with a zero value if absent, reporting whether it
// inserted. It is the single-probe form of Has-then-Put for sets — the
// reconstruction dedup filter runs it once per placed address.
func (t *Table[K, V]) Add(k K) bool {
	i := t.home(k)
	for t.used[i] {
		if t.keys[i] == k {
			return false
		}
		i = (i + 1) & t.mask
	}
	if t.Full() {
		t.grow()
		i = t.home(k)
		for t.used[i] {
			i = (i + 1) & t.mask
		}
	}
	var zero V
	t.keys[i], t.vals[i], t.used[i] = k, zero, true
	t.n++
	return true
}

// Delete removes k, reporting whether it was present. Removal backward-
// shifts the displaced run, so the table never accumulates tombstones.
func (t *Table[K, V]) Delete(k K) bool {
	for i := t.home(k); t.used[i]; i = (i + 1) & t.mask {
		if t.keys[i] == k {
			t.deleteAt(i)
			return true
		}
	}
	return false
}

// deleteAt empties slot i and compacts the probe run that follows it: any
// entry whose home position is cyclically at or before the hole slides
// back, preserving the invariant that every key is reachable from its home
// slot through occupied slots only.
func (t *Table[K, V]) deleteAt(i uint64) {
	j := i
	for {
		j = (j + 1) & t.mask
		if !t.used[j] {
			break
		}
		h := t.home(t.keys[j])
		// The entry at j may fill the hole at i iff its home precedes or
		// equals i in cyclic probe order: (j-h) mod size >= (j-i) mod size.
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	var zk K
	var zv V
	t.keys[i], t.vals[i], t.used[i] = zk, zv, false
	t.n--
}

// Clear removes every key without releasing storage.
func (t *Table[K, V]) Clear() {
	clear(t.keys)
	clear(t.vals)
	clear(t.used)
	t.n = 0
}

// grow doubles the probe array and rehashes every live entry.
func (t *Table[K, V]) grow() {
	oldKeys, oldVals, oldUsed := t.keys, t.vals, t.used
	size := (t.mask + 1) << 1
	t.keys = make([]K, size)
	t.vals = make([]V, size)
	t.used = make([]bool, size)
	t.mask = size - 1
	t.n = 0
	for i, u := range oldUsed {
		if u {
			t.Put(oldKeys[i], oldVals[i])
		}
	}
}

// U64Table is Table monomorphized for uint64 keys (block addresses, ring
// positions) with the Hash64 mix compiled directly into the probe loops —
// no hash-function indirection. Key and value are interleaved in one slot
// array so a probe touches a single cache line, and occupancy is a bitset
// small enough to live in L1; the replay loop's hottest tables (the
// reconstruction dedup set, the SVB index, the RMOB/CMOB address indexes,
// the LRU-map indexes) perform tens of probes per simulated access, where
// both the generic Table's hash indirection and its three-array layout
// are measurable. Occupancy is tracked outside the slots, so every key
// value (including 0) is valid.
type U64Table[V any] struct {
	slots []u64slot[V]
	used  []uint64 // occupancy bitset, one bit per slot
	mask  uint64
	n     int
}

type u64slot[V any] struct {
	key uint64
	val V
}

// NewU64Table creates a table holding up to capacity live keys without
// growing; geometry matches NewTable.
func NewU64Table[V any](capacity int) *U64Table[V] {
	if capacity < 1 {
		capacity = 1
	}
	size := uint64(64)
	for size < 2*uint64(capacity) {
		size <<= 1
	}
	return &U64Table[V]{
		slots: make([]u64slot[V], size),
		used:  make([]uint64, size/64),
		mask:  size - 1,
	}
}

// Len returns the number of live keys.
func (t *U64Table[V]) Len() int { return t.n }

// Cap returns the number of live keys held before Put grows the table.
func (t *U64Table[V]) Cap() int { return int((t.mask + 1) / 2) }

// Full reports whether the next insert of a new key would grow the table.
func (t *U64Table[V]) Full() bool { return t.n >= t.Cap() }

func (t *U64Table[V]) isUsed(i uint64) bool {
	return t.used[i>>6]&(1<<(i&63)) != 0
}

func (t *U64Table[V]) setUsed(i uint64)   { t.used[i>>6] |= 1 << (i & 63) }
func (t *U64Table[V]) clearUsed(i uint64) { t.used[i>>6] &^= 1 << (i & 63) }

// Get returns the value stored for k.
func (t *U64Table[V]) Get(k uint64) (V, bool) {
	for i := Hash64(k) & t.mask; t.isUsed(i); i = (i + 1) & t.mask {
		if t.slots[i].key == k {
			return t.slots[i].val, true
		}
	}
	var zero V
	return zero, false
}

// Has reports whether k is present.
func (t *U64Table[V]) Has(k uint64) bool {
	for i := Hash64(k) & t.mask; t.isUsed(i); i = (i + 1) & t.mask {
		if t.slots[i].key == k {
			return true
		}
	}
	return false
}

// Put inserts or updates k; geometry and growth match Table.Put.
func (t *U64Table[V]) Put(k uint64, v V) {
	i := Hash64(k) & t.mask
	for t.isUsed(i) {
		if t.slots[i].key == k {
			t.slots[i].val = v
			return
		}
		i = (i + 1) & t.mask
	}
	if t.Full() {
		t.grow()
		i = Hash64(k) & t.mask
		for t.isUsed(i) {
			i = (i + 1) & t.mask
		}
	}
	t.slots[i] = u64slot[V]{key: k, val: v}
	t.setUsed(i)
	t.n++
}

// Add inserts k with a zero value if absent, reporting whether it inserted.
func (t *U64Table[V]) Add(k uint64) bool {
	i := Hash64(k) & t.mask
	for t.isUsed(i) {
		if t.slots[i].key == k {
			return false
		}
		i = (i + 1) & t.mask
	}
	if t.Full() {
		t.grow()
		i = Hash64(k) & t.mask
		for t.isUsed(i) {
			i = (i + 1) & t.mask
		}
	}
	var zero V
	t.slots[i] = u64slot[V]{key: k, val: zero}
	t.setUsed(i)
	t.n++
	return true
}

// Ref returns a pointer to k's value, inserting a zero value first if k is
// absent — one probe for the upsert-and-update pattern. The pointer is
// valid until the next insert (growth or backward-shift may move values).
func (t *U64Table[V]) Ref(k uint64) *V {
	i := Hash64(k) & t.mask
	for t.isUsed(i) {
		if t.slots[i].key == k {
			return &t.slots[i].val
		}
		i = (i + 1) & t.mask
	}
	if t.Full() {
		t.grow()
		i = Hash64(k) & t.mask
		for t.isUsed(i) {
			i = (i + 1) & t.mask
		}
	}
	var zero V
	t.slots[i] = u64slot[V]{key: k, val: zero}
	t.setUsed(i)
	t.n++
	return &t.slots[i].val
}

// Delete removes k with backward-shift compaction, like Table.Delete.
func (t *U64Table[V]) Delete(k uint64) bool {
	for i := Hash64(k) & t.mask; t.isUsed(i); i = (i + 1) & t.mask {
		if t.slots[i].key == k {
			t.deleteAt(i)
			return true
		}
	}
	return false
}

func (t *U64Table[V]) deleteAt(i uint64) {
	j := i
	for {
		j = (j + 1) & t.mask
		if !t.isUsed(j) {
			break
		}
		h := Hash64(t.slots[j].key) & t.mask
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.slots[i] = t.slots[j]
			i = j
		}
	}
	var zero u64slot[V]
	t.slots[i] = zero
	t.clearUsed(i)
	t.n--
}

// Clear removes every key without releasing storage.
func (t *U64Table[V]) Clear() {
	clear(t.slots)
	clear(t.used)
	t.n = 0
}

// Reset removes every key by clearing occupancy only: stale keys and
// values stay in the slot array but are unreachable (every probe gate
// checks the occupancy bitset first). For pointer-free V this is the
// cheap per-window Clear — the bitset is 1/512th of the slot storage —
// for V holding pointers use Clear so the GC can reclaim referents.
func (t *U64Table[V]) Reset() {
	clear(t.used)
	t.n = 0
}

func (t *U64Table[V]) grow() {
	oldSlots, oldUsed := t.slots, t.used
	size := (t.mask + 1) << 1
	t.slots = make([]u64slot[V], size)
	t.used = make([]uint64, size/64)
	t.mask = size - 1
	t.n = 0
	for i, s := range oldSlots {
		if oldUsed[i>>6]&(1<<(uint(i)&63)) != 0 {
			t.Put(s.key, s.val)
		}
	}
}
