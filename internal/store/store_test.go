package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string][]byte{
		key("a"): []byte(`{"predictor":"stems","covered":42}`),
		key("b"): {},
		key("c"): bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	for k, v := range payloads {
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put(%s): %v", k[:8], err)
		}
	}
	for k, want := range payloads {
		got, ok := s.Get(k)
		if !ok {
			t.Fatalf("Get(%s): miss", k[:8])
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%s): %d bytes, want %d", k[:8], len(got), len(want))
		}
	}
	if _, ok := s.Get(key("nope")); ok {
		t.Fatal("Get of unknown key hit")
	}
	st := s.Stats()
	if st.Entries != 3 || st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 entries / 3 hits / 1 miss", st)
	}
	var want int64
	for _, v := range payloads {
		want += int64(len(v))
	}
	if st.Bytes != want {
		t.Fatalf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestFanoutLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	k := key("layout")
	if err := s.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, k[:2], k[2:4], k)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at fanout path %s: %v", want, err)
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", strings.Repeat("z", 64), strings.Repeat("A", 64), "../../../../etc/passwd"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted an invalid key", bad)
		}
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"covered":7}`)
	if err := s.Put(key("persist"), want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != 1 {
		t.Fatalf("reopened Len = %d, want 1", got)
	}
	got, ok := s2.Get(key("persist"))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("reopened Get = %q, %v; want %q, true", got, ok, want)
	}
}

func TestReopenRecencyFromMtime(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	old, mid, recent := key("old"), key("mid"), key("recent")
	for i, k := range []string{old, mid, recent} {
		if err := s.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		// Filesystem mtime granularity can be coarse; set them explicitly.
		mt := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, k[:2], k[2:4], k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Reopen with a bound of 2: the oldest-by-mtime entry must go.
	s2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(old); ok {
		t.Fatal("oldest entry survived a reopen beyond the bound")
	}
	for _, k := range []string{mid, recent} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("recent entry %s evicted instead of the oldest", k[:8])
		}
	}
	if ev := s2.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := key("a"), key("b"), key("c")
	s.Put(a, []byte("a"))
	s.Put(b, []byte("b"))
	if _, ok := s.Get(a); !ok { // bump a: b is now LRU
		t.Fatal("a missing")
	}
	s.Put(c, []byte("c")) // evicts b
	if _, ok := s.Get(b); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{a, c} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("entry %s wrongly evicted", k[:8])
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

// TestCrashBetweenTmpAndRename simulates a daemon killed mid-write: the
// temp file exists, the rename never happened. Open must sweep it and
// serve a miss, not a torn entry.
func TestCrashBetweenTmpAndRename(t *testing.T) {
	dir := t.TempDir()
	k := key("torn")
	fan := filepath.Join(dir, k[:2], k[2:4])
	if err := os.MkdirAll(fan, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(fan, k+".123456.tmp")
	if err := os.WriteFile(tmp, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover tmp file not swept on open")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after sweeping a tmp-only dir, want 0", got)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("torn write served as an entry")
	}
}

// TestCorruptEntryDropped flips payload bytes and truncates entries on
// disk; Get must detect both via the header/CRC and drop the file.
func TestCorruptEntryDropped(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"bit-flip": func(raw []byte) []byte { raw[len(raw)-1] ^= 0xFF; return raw },
		"truncate": func(raw []byte) []byte { return raw[:len(raw)-3] },
		"emptied":  func(raw []byte) []byte { return nil },
		"bad-magic": func(raw []byte) []byte {
			copy(raw[:4], "XXXX")
			return raw
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, 16)
			if err != nil {
				t.Fatal(err)
			}
			k := key("corrupt-" + name)
			if err := s.Put(k, []byte(`{"result":"important"}`)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, k[:2], k[2:4], k)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(k); ok {
				t.Fatal("corrupt entry served")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not deleted")
			}
			st := s.Stats()
			if st.CorruptDropped != 1 {
				t.Fatalf("CorruptDropped = %d, want 1", st.CorruptDropped)
			}
			// A subsequent Put must restore the key.
			if err := s.Put(k, []byte("fresh")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(k); !ok || string(got) != "fresh" {
				t.Fatalf("re-Put after corruption: %q, %v", got, ok)
			}
		})
	}
}

func TestPutExistingRefreshesOnly(t *testing.T) {
	s, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := key("a"), key("b"), key("c")
	s.Put(a, []byte("a"))
	s.Put(b, []byte("b"))
	s.Put(a, []byte("a")) // refresh: a becomes MRU, b is LRU
	s.Put(c, []byte("c"))
	if _, ok := s.Get(b); ok {
		t.Fatal("b should have been the eviction victim after a's refresh")
	}
	if _, ok := s.Get(a); !ok {
		t.Fatal("refreshed entry a evicted")
	}
}

func TestClosed(t *testing.T) {
	s, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	k := key("x")
	s.Put(k, []byte("x"))
	s.Close()
	if err := s.Put(key("y"), []byte("y")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("Get after Close hit")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("g%d-i%d", g, i%10))
				if err := s.Put(k, []byte(k)); err != nil {
					done <- err
					return
				}
				if data, ok := s.Get(k); ok && string(data) != k {
					done <- fmt.Errorf("got %q want %q", data, k)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
