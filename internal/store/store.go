// Package store is the disk tier of the stemsd result cache: a
// content-addressed store holding one file per run key (the SHA-256 of
// the run's canonical spec, see stems.RunKey), so a restarted daemon
// answers previously computed jobs from disk instead of re-simulating.
//
// Layout: entries live under a two-level fanout directory derived from
// the key's hex prefix — dir/ab/cd/<full-64-hex-key> — so no single
// directory grows past what filesystems list comfortably. Writes go to
// a same-directory *.tmp file first and rename into place, so readers
// (and a daemon killed mid-write) never observe a half-written entry;
// leftover *.tmp files are swept on Open. Every entry carries a small
// header (magic, payload length, CRC-32) verified on read — a corrupt
// or truncated file is deleted and reported as a miss, never served.
//
// The store is LRU-bounded by entry count. The recency index is held in
// memory and rebuilt on Open from file modification times (Get bumps an
// entry's mtime best-effort, so recency survives restarts too).
//
// Byte identity is the contract: Get returns exactly the bytes Put
// stored, which for stemsd are the canonical label-less result bytes of
// the in-memory cache — a result served from disk is byte-identical to
// its first computation crossing the wire.
package store

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"stems/internal/obs"
)

// Entry header: magic + uint32 payload length + uint32 CRC-32 (IEEE) of
// the payload, little-endian.
var magic = [4]byte{'S', 'C', 'S', '1'}

const headerSize = 12

// ErrClosed reports use after Close.
var ErrClosed = errors.New("store: closed")

// Stats is a snapshot of the store's counters for /metrics.
type Stats struct {
	// Entries and Bytes describe the resident payload (header overhead
	// excluded from Bytes).
	Entries int
	Bytes   int64
	// Hits and Misses count Get outcomes; Evictions counts entries
	// dropped by the LRU bound; CorruptDropped counts entries deleted
	// because their header or CRC failed verification on read.
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	CorruptDropped uint64
	// ReadLatency and WriteLatency are the disk I/O distributions: entry
	// read+verify time (hits only) and entry write+sync+rename time.
	ReadLatency  obs.Snapshot
	WriteLatency obs.Snapshot
}

// Store is a disk-backed content-addressed byte store, safe for
// concurrent use.
type Store struct {
	dir   string
	bound int

	mu      sync.Mutex
	closed  bool
	entries map[string]*list.Element // key → ll element holding *entry
	ll      *list.List               // front = most recently used
	bytes   int64
	stats   Stats

	// Disk-latency histograms (lock-free; recorded outside s.mu would be
	// ideal, but the durations are µs-scale against a held mutex that
	// every caller already pays — the observability is worth it). They
	// live here rather than in a registry so a store is observable with
	// or without one; the service attaches them to its registry.
	readLat  obs.Histogram
	writeLat obs.Histogram
}

type entry struct {
	key  string
	size int64
}

// Open opens (creating if needed) a store rooted at dir, bounded to at
// most bound entries (bound <= 0 selects 4096). It sweeps leftover
// temporary files from interrupted writes and rebuilds the LRU index
// from the entries on disk, oldest-modified first, evicting down to the
// bound.
func Open(dir string, bound int) (*Store, error) {
	if bound <= 0 {
		bound = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{
		dir:     dir,
		bound:   bound,
		entries: make(map[string]*list.Element),
		ll:      list.New(),
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Bound returns the LRU entry cap.
func (s *Store) Bound() int { return s.bound }

// rebuild scans the fanout tree: removes *.tmp leftovers, indexes valid
// entry files by mtime (recency), and enforces the bound.
func (s *Store) rebuild() error {
	type found struct {
		key   string
		size  int64
		mtime time.Time
	}
	var all []found
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".tmp") {
			// An interrupted write: the rename never happened, so the
			// entry does not exist. Sweep it.
			os.Remove(path) //nolint:errcheck // best-effort cleanup
			return nil
		}
		if !validKey(name) || filepath.Dir(path) != filepath.Dir(s.path(name)) {
			// Not one of ours; leave it alone.
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a delete; skip
		}
		size := info.Size() - headerSize
		if size < 0 {
			size = 0 // undersized; Get will drop it as corrupt
		}
		all = append(all, found{key: name, size: size, mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: rebuilding index: %w", err)
	}
	// Oldest first, so PushFront leaves the most recently used at the
	// front — the same order Put/Get maintain.
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	for _, f := range all {
		s.entries[f.key] = s.ll.PushFront(&entry{key: f.key, size: f.size})
		s.bytes += f.size
	}
	s.evictLocked()
	return nil
}

// path maps a key to its entry file: dir/ab/cd/<key>.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key[2:4], key)
}

// validKey reports whether name looks like a SHA-256 hex content
// address (the only filenames the store creates).
func validKey(name string) bool {
	if len(name) != 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the stored bytes for key. A missing entry is a miss; an
// entry that fails header or CRC verification is deleted, counted in
// CorruptDropped, and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	el, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	start := time.Now()
	data, err := readEntry(s.path(key))
	s.readLat.Observe(time.Since(start))
	if err != nil {
		// Corrupt or vanished: drop it from disk and index, miss.
		s.dropLocked(el)
		s.stats.CorruptDropped++
		s.stats.Misses++
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.stats.Hits++
	// Bump the mtime so recency survives a restart's index rebuild.
	now := time.Now()
	os.Chtimes(s.path(key), now, now) //nolint:errcheck // best-effort recency
	return data, true
}

// Contains reports whether key is indexed, without touching recency or
// the hit/miss counters.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put stores data under key. The write is atomic (tmp file + rename):
// a crash at any point leaves either the previous state or the complete
// entry, never a torn one. Storing an existing key only refreshes its
// recency — the store is content-addressed, so the bytes are already
// right.
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		return nil
	}
	start := time.Now()
	err := writeEntry(s.path(key), data)
	s.writeLat.Observe(time.Since(start))
	if err != nil {
		return err
	}
	s.entries[key] = s.ll.PushFront(&entry{key: key, size: int64(len(data))})
	s.bytes += int64(len(data))
	s.evictLocked()
	return nil
}

// evictLocked deletes least-recently-used entries beyond the bound.
func (s *Store) evictLocked() {
	for s.ll.Len() > s.bound {
		s.dropLocked(s.ll.Back())
		s.stats.Evictions++
	}
}

// dropLocked removes one entry from the index and the filesystem.
func (s *Store) dropLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.entries, e.key)
	s.bytes -= e.size
	os.Remove(s.path(e.key)) //nolint:errcheck // already unindexed
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	st.Bytes = s.bytes
	st.ReadLatency = s.readLat.Snapshot()
	st.WriteLatency = s.writeLat.Snapshot()
	return st
}

// Latencies exposes the live disk-latency histograms so an owner can
// attach them to a metrics registry (the service registers them as
// stemsd_store_read_seconds / stemsd_store_write_seconds).
func (s *Store) Latencies() (read, write *obs.Histogram) {
	return &s.readLat, &s.writeLat
}

// Close marks the store closed; subsequent Get misses and Put fails
// with ErrClosed. Files on disk are left for the next Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// writeEntry writes header+payload to a same-directory temp file, syncs
// it, and renames it into place.
func writeEntry(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()           //nolint:errcheck // error path
			os.Remove(tmp.Name()) //nolint:errcheck // error path
		}
	}()
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(data))
	if _, err := tmp.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	// Sync before rename: the rename must not become visible before the
	// bytes are durable, or a crash could leave a torn "complete" entry.
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	name := tmp.Name()
	tmp = nil // disarm the cleanup; the file is complete
	if err := os.Rename(name, path); err != nil {
		os.Remove(name) //nolint:errcheck // best-effort
		return fmt.Errorf("store: put: %w", err)
	}
	return nil
}

// readEntry reads and verifies one entry file.
func readEntry(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerSize || [4]byte(raw[:4]) != magic {
		return nil, fmt.Errorf("store: %s: bad header", filepath.Base(path))
	}
	n := binary.LittleEndian.Uint32(raw[4:8])
	sum := binary.LittleEndian.Uint32(raw[8:12])
	payload := raw[headerSize:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("store: %s: truncated (%d of %d payload bytes)", filepath.Base(path), len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("store: %s: CRC mismatch", filepath.Base(path))
	}
	return payload, nil
}
