package sms

import (
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/trace"
)

func BenchmarkOnAccess(b *testing.B) {
	s := New(config.DefaultSMS(), nil)
	accs := make([]trace.Access, 4096)
	for i := range accs {
		region := (i / 5) % 700
		accs[i] = trace.Access{
			Addr: mem.Addr(region*mem.RegionSize + (i%5)*4*mem.BlockSize),
			PC:   uint64(i % 5),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnAccess(accs[i%len(accs)], false)
		if i%20 == 19 {
			s.OnL1Evict(accs[(i-10)%len(accs)].Addr.Block())
		}
	}
}
