package sms

import (
	"stems/internal/sim"
	"stems/internal/stream"
)

func init() {
	sim.MustRegister(sim.KindSMS, func(m *sim.Machine, opt sim.Options) error {
		eng := m.AttachEngine(stream.Config{
			Queues: 1, Lookahead: opt.SMS.PHTEntries, SVBEntries: 64,
		})
		m.SetPrefetcher(New(opt.SMS, eng))
		return nil
	})
}
