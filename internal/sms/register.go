package sms

import (
	"stems/internal/sim"
	"stems/internal/stream"
)

func init() {
	sim.MustRegisterKnobs("sms",
		sim.IntKnob("sms.filter_entries", "filter table entries for single-access regions (§4.3: 32)", 1, 1<<20,
			func(o *sim.Options) *int { return &o.SMS.FilterEntries }),
		sim.IntKnob("sms.accum_entries", "accumulation table entries, i.e. active generations (§4.3: 64)", 1, 1<<20,
			func(o *sim.Options) *int { return &o.SMS.AccumEntries }),
		sim.IntKnob("sms.pht_entries", "pattern history table entries (§4.3: 16K)", 1, 1<<24,
			func(o *sim.Options) *int { return &o.SMS.PHTEntries }),
		sim.IntKnob("sms.pht_ways", "pattern history table associativity", 1, 64,
			func(o *sim.Options) *int { return &o.SMS.PHTWays }),
		sim.BoolKnob("sms.use_counters", "2-bit saturating counters per block instead of a bit vector (§4.3)",
			func(o *sim.Options) *bool { return &o.SMS.UseCounters }),
		sim.Uint8Knob("sms.counter_threshold", "minimum counter value considered a stable block", 0, 3,
			func(o *sim.Options) *uint8 { return &o.SMS.CounterThreshold }),
	)
	sim.BindKnobs(sim.KindSMS, "sms")
	sim.MustRegister(sim.KindSMS, func(m *sim.Machine, opt sim.Options) error {
		eng := m.AttachEngine(stream.Config{
			Queues: 1, Lookahead: opt.SMS.PHTEntries, SVBEntries: 64,
		})
		m.SetPrefetcher(New(opt.SMS, eng))
		return nil
	})
}
