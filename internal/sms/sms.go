// Package sms implements Spatial Memory Streaming (Somogyi et al., ISCA
// 2006), the spatial-correlation baseline of the paper (§2.3–2.4).
//
// SMS observes all L1 accesses. The first access to an inactive 2KB region
// (the trigger) looks up the pattern history table (PHT) with a PC+offset
// index and prefetches the blocks of the stored pattern. Accesses then
// accumulate in an active generation table (AGT, split into a filter table
// for single-access regions and an accumulation table) until a block of the
// generation is evicted from L1, at which point the observed pattern trains
// the PHT.
//
// Following §4.3 of the STeMS paper, the PHT stores a 2-bit saturating
// counter per block ("compared with bit vectors, 2-bit counters attain the
// same coverage while roughly halving overpredictions"); bit-vector mode is
// retained for the ablation benchmark.
package sms

import (
	"stems/internal/config"
	"stems/internal/lru"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

// Key is the PHT prediction index: the PC of the trigger instruction
// combined with the trigger's block offset within its region (§2.4).
type Key struct {
	PC     uint64
	Offset int
}

// Pattern is one PHT entry.
type Pattern struct {
	// Counters holds a 2-bit saturating counter per region block
	// (counters mode).
	Counters [mem.RegionBlocks]uint8
	// Bits is the last observed footprint (bit-vector mode).
	Bits uint32
}

// predictMask returns the offsets predicted by the pattern.
func (p Pattern) predictMask(useCounters bool, threshold uint8) uint32 {
	if !useCounters {
		return p.Bits
	}
	var mask uint32
	for off, c := range p.Counters {
		if c >= threshold {
			mask |= 1 << off
		}
	}
	return mask
}

// generation is an active spatial generation.
type generation struct {
	pc       uint64 // trigger PC
	off      int    // trigger offset
	observed uint32 // offsets touched this generation
}

// Stats counts predictor activity.
type Stats struct {
	Triggers    uint64 // generations opened
	PHTHits     uint64 // triggers that found a pattern
	Trained     uint64 // generations committed to the PHT
	Predicted   uint64 // blocks prefetched
	FilterDrops uint64 // single-access generations discarded
}

// SMS is the prefetcher. With a nil engine it runs in analysis mode:
// training and prediction bookkeeping happen but no fetches are issued —
// the mode used by the Figure 6 joint-coverage classifier.
type SMS struct {
	cfg    config.SMS
	engine *stream.Engine

	filter *lru.Map[mem.Addr, generation]
	accum  *lru.Map[mem.Addr, generation]
	pht    *lru.Map[Key, Pattern]

	// predicted maps active regions to the offset mask predicted at
	// trigger time; used to answer WasPredicted for misses inside the
	// generation (Figure 6 classification and the STeMS RMOB filter use
	// the same notion).
	predicted map[mem.Addr]uint32

	stats Stats
}

// New creates an SMS prefetcher. engine may be nil for analysis mode.
func New(cfg config.SMS, engine *stream.Engine) *SMS {
	if cfg.PHTEntries <= 0 {
		cfg = config.DefaultSMS()
	}
	return &SMS{
		cfg:       cfg,
		engine:    engine,
		filter:    lru.New[mem.Addr, generation](cfg.FilterEntries),
		accum:     lru.New[mem.Addr, generation](cfg.AccumEntries),
		pht:       lru.New[Key, Pattern](cfg.PHTEntries),
		predicted: make(map[mem.Addr]uint32),
	}
}

// Name implements the Prefetcher interface.
func (s *SMS) Name() string { return "sms" }

// Stats returns cumulative predictor statistics.
func (s *SMS) Stats() Stats { return s.stats }

// OnAccess observes one L1 access (hit or miss), opening, extending, or
// (indirectly) training generations.
func (s *SMS) OnAccess(a trace.Access, l1Hit bool) {
	region := a.Addr.Region()
	off := a.Addr.RegionOffset()
	bit := uint32(1) << off

	if g, ok := s.accum.Get(region); ok {
		g.observed |= bit
		s.accum.Put(region, g)
		return
	}
	if g, ok := s.filter.Peek(region); ok {
		if off == g.off {
			return // repeated touch of the trigger block
		}
		// Second distinct block: promote to the accumulation table.
		s.filter.Delete(region)
		g.observed |= bit
		if k, v, ev := s.accum.Put(region, g); ev {
			s.retire(k, v)
		}
		return
	}

	// Trigger access: open a generation and predict.
	s.stats.Triggers++
	s.predictFor(region, a.PC, off)
	g := generation{pc: a.PC, off: off, observed: bit}
	if k, _, ev := s.filter.Put(region, g); ev {
		// Single-access region aged out of the filter: no training.
		s.stats.FilterDrops++
		delete(s.predicted, k)
	}
}

// predictFor looks up the PHT and fetches the predicted blocks.
func (s *SMS) predictFor(region mem.Addr, pc uint64, off int) {
	pat, ok := s.pht.Get(Key{PC: pc, Offset: off})
	if !ok {
		s.predicted[region] = 0
		return
	}
	s.stats.PHTHits++
	mask := pat.predictMask(s.cfg.UseCounters, s.cfg.CounterThreshold)
	mask &^= 1 << off // the trigger block itself is the current demand miss
	s.predicted[region] = mask
	if s.engine == nil {
		return
	}
	for o := 0; o < mem.RegionBlocks; o++ {
		if mask&(1<<o) != 0 {
			s.engine.Direct(region.BlockAt(o))
			s.stats.Predicted++
		}
	}
}

// OnL1Evict ends the generation containing the evicted block, if any, and
// trains the PHT with its observed footprint (§2.4).
func (s *SMS) OnL1Evict(block mem.Addr) {
	region := block.Region()
	bit := uint32(1) << block.RegionOffset()
	if g, ok := s.accum.Peek(region); ok {
		if g.observed&bit != 0 {
			s.accum.Delete(region)
			s.retire(region, g)
		}
		return
	}
	if g, ok := s.filter.Peek(region); ok {
		if g.observed&bit != 0 {
			s.filter.Delete(region)
			delete(s.predicted, region)
			s.stats.FilterDrops++
		}
	}
}

// retire commits a finished generation to the PHT.
func (s *SMS) retire(region mem.Addr, g generation) {
	delete(s.predicted, region)
	key := Key{PC: g.pc, Offset: g.off}
	pat, _ := s.pht.Peek(key)
	if s.cfg.UseCounters {
		for o := 0; o < mem.RegionBlocks; o++ {
			if g.observed&(1<<o) != 0 {
				if pat.Counters[o] < 3 {
					pat.Counters[o]++
				}
			} else if pat.Counters[o] > 0 {
				pat.Counters[o]--
			}
		}
	}
	pat.Bits = g.observed
	s.pht.Put(key, pat)
	s.stats.Trained++
}

// OnOffChipEvent implements the Prefetcher interface; SMS trains at access
// granularity so nothing happens here.
func (s *SMS) OnOffChipEvent(trace.Access, bool) {}

// WasPredicted reports whether addr falls in an active generation whose
// trigger-time PHT lookup predicted this block. Trigger accesses are never
// spatially predicted (§2.3: the first miss to each region is the
// fundamental spatial blind spot).
func (s *SMS) WasPredicted(addr mem.Addr) bool {
	mask, ok := s.predicted[addr.Region()]
	return ok && mask&(1<<addr.RegionOffset()) != 0
}

// Pattern returns the predicted offset mask for a lookup index, for use by
// hybrid designs that consult the PHT out of band (§3.1's naive hybrid
// fetches "elements of the predicted spatial pattern" for every temporally
// predicted trigger).
func (s *SMS) Pattern(pc uint64, offset int) (uint32, bool) {
	pat, ok := s.pht.Get(Key{PC: pc, Offset: offset})
	if !ok {
		return 0, false
	}
	return pat.predictMask(s.cfg.UseCounters, s.cfg.CounterThreshold), true
}

// ActiveGenerations returns the number of currently open generations.
func (s *SMS) ActiveGenerations() int { return s.filter.Len() + s.accum.Len() }

// PHTLen returns the number of learned patterns.
func (s *SMS) PHTLen() int { return s.pht.Len() }
