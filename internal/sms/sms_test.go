package sms

import (
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/stream"
	"stems/internal/trace"
)

// recordingFetcher captures fetched blocks.
type recordingFetcher struct{ blocks []mem.Addr }

func (f *recordingFetcher) Fetch(b mem.Addr) uint64 {
	f.blocks = append(f.blocks, b)
	return 0
}

func newTestSMS(t *testing.T) (*SMS, *recordingFetcher) {
	t.Helper()
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{SVBEntries: 256}, f)
	return New(config.DefaultSMS(), eng), f
}

func access(region, off int, pc uint64) trace.Access {
	return trace.Access{Addr: mem.Addr(region*mem.RegionSize + off*mem.BlockSize), PC: pc}
}

// runGeneration touches the given offsets in region with pc, then evicts
// the first touched block to end the generation.
func runGeneration(s *SMS, region int, pc uint64, offsets ...int) {
	for _, off := range offsets {
		s.OnAccess(access(region, off, pc), false)
	}
	s.OnL1Evict(mem.Addr(region*mem.RegionSize + offsets[0]*mem.BlockSize))
}

func TestColdTriggerPredictsNothing(t *testing.T) {
	s, f := newTestSMS(t)
	s.OnAccess(access(0, 3, 100), false)
	if len(f.blocks) != 0 {
		t.Fatalf("cold trigger fetched %v", f.blocks)
	}
	if s.Stats().Triggers != 1 {
		t.Fatalf("triggers = %d", s.Stats().Triggers)
	}
}

func TestLearnsAndPredictsPattern(t *testing.T) {
	s, f := newTestSMS(t)
	// Train the same (PC, trigger-offset) pattern in two different regions
	// so the counters reach the prediction threshold of 2.
	runGeneration(s, 1, 100, 0, 4, 9)
	runGeneration(s, 2, 100, 0, 4, 9)
	// Third region, same code: trigger should now predict offsets 4 and 9.
	s.OnAccess(access(3, 0, 100), false)
	want := map[mem.Addr]bool{
		mem.Addr(3*mem.RegionSize + 4*mem.BlockSize): true,
		mem.Addr(3*mem.RegionSize + 9*mem.BlockSize): true,
	}
	if len(f.blocks) != 2 {
		t.Fatalf("predicted %d blocks (%v), want 2", len(f.blocks), f.blocks)
	}
	for _, b := range f.blocks {
		if !want[b] {
			t.Errorf("unexpected prefetch %v", b)
		}
	}
}

func TestPatternIsCodeCorrelated(t *testing.T) {
	s, f := newTestSMS(t)
	runGeneration(s, 1, 100, 0, 4, 9)
	runGeneration(s, 2, 100, 0, 4, 9)
	// Different PC: no prediction even though the region layout repeats.
	s.OnAccess(access(3, 0, 999), false)
	if len(f.blocks) != 0 {
		t.Fatalf("wrong-PC trigger fetched %v", f.blocks)
	}
	// Different trigger offset: different index, no prediction.
	s.OnAccess(access(4, 7, 100), false)
	if len(f.blocks) != 0 {
		t.Fatalf("wrong-offset trigger fetched %v", f.blocks)
	}
}

func TestTriggerBlockNotRefetched(t *testing.T) {
	s, f := newTestSMS(t)
	runGeneration(s, 1, 100, 5, 6)
	runGeneration(s, 2, 100, 5, 6)
	s.OnAccess(access(3, 5, 100), false)
	for _, b := range f.blocks {
		if b.RegionOffset() == 5 {
			t.Fatalf("trigger block was prefetched: %v", f.blocks)
		}
	}
}

func TestCountersRequireTwoObservations(t *testing.T) {
	s, f := newTestSMS(t)
	// One training generation only: counters at 1, below threshold 2.
	runGeneration(s, 1, 100, 0, 4)
	s.OnAccess(access(2, 0, 100), false)
	if len(f.blocks) != 0 {
		t.Fatalf("predicted after single observation: %v", f.blocks)
	}
}

func TestBitVectorModePredictsAfterOneObservation(t *testing.T) {
	cfg := config.DefaultSMS()
	cfg.UseCounters = false
	f := &recordingFetcher{}
	eng := stream.NewEngine(stream.Config{SVBEntries: 256}, f)
	s := New(cfg, eng)
	runGeneration(s, 1, 100, 0, 4)
	s.OnAccess(access(2, 0, 100), false)
	if len(f.blocks) != 1 || f.blocks[0].RegionOffset() != 4 {
		t.Fatalf("bitvec mode predicted %v, want offset 4", f.blocks)
	}
}

func TestCountersForgetUnstableBlocks(t *testing.T) {
	s, f := newTestSMS(t)
	// Offset 4 is stable, offset 20 appears once then vanishes.
	runGeneration(s, 1, 100, 0, 4, 20)
	runGeneration(s, 2, 100, 0, 4)
	runGeneration(s, 3, 100, 0, 4)
	f.blocks = nil // discard prefetches issued during training triggers
	s.OnAccess(access(9, 0, 100), false)
	for _, b := range f.blocks {
		if b.RegionOffset() == 20 {
			t.Fatal("unstable block predicted")
		}
	}
	if len(f.blocks) != 1 || f.blocks[0].RegionOffset() != 4 {
		t.Fatalf("stable prediction wrong: %v", f.blocks)
	}
}

func TestGenerationEndsOnlyOnMemberEviction(t *testing.T) {
	s, _ := newTestSMS(t)
	s.OnAccess(access(1, 0, 100), false)
	s.OnAccess(access(1, 4, 100), false)
	// Evicting an untouched block of the region must not end the generation.
	s.OnL1Evict(mem.Addr(1*mem.RegionSize + 30*mem.BlockSize))
	if s.Stats().Trained != 0 {
		t.Fatal("generation trained on non-member eviction")
	}
	s.OnL1Evict(mem.Addr(1 * mem.RegionSize))
	if s.Stats().Trained != 1 {
		t.Fatal("generation did not train on member eviction")
	}
}

func TestSingleAccessRegionsDoNotTrain(t *testing.T) {
	s, _ := newTestSMS(t)
	s.OnAccess(access(1, 0, 100), false)
	s.OnL1Evict(mem.Addr(1 * mem.RegionSize))
	if s.Stats().Trained != 0 {
		t.Fatal("filter-table generation trained")
	}
	if s.Stats().FilterDrops != 1 {
		t.Fatalf("filter drops = %d, want 1", s.Stats().FilterDrops)
	}
}

func TestWasPredicted(t *testing.T) {
	s, _ := newTestSMS(t)
	runGeneration(s, 1, 100, 0, 4, 9)
	runGeneration(s, 2, 100, 0, 4, 9)
	s.OnAccess(access(3, 0, 100), false) // trigger opens generation 3
	if s.WasPredicted(access(3, 0, 100).Addr) {
		t.Error("trigger classified as spatially predicted")
	}
	if !s.WasPredicted(access(3, 4, 100).Addr) {
		t.Error("predicted block not classified as predicted")
	}
	if s.WasPredicted(access(3, 17, 100).Addr) {
		t.Error("unpredicted offset classified as predicted")
	}
	if s.WasPredicted(access(9, 4, 100).Addr) {
		t.Error("inactive region classified as predicted")
	}
}

func TestRepeatedTriggerTouchIsNotPromotion(t *testing.T) {
	s, _ := newTestSMS(t)
	s.OnAccess(access(1, 3, 100), false)
	s.OnAccess(access(1, 3, 100), false) // same block again
	if s.ActiveGenerations() != 1 {
		t.Fatalf("active generations = %d, want 1", s.ActiveGenerations())
	}
	// Still in filter: eviction drops without training.
	s.OnL1Evict(mem.Addr(1*mem.RegionSize + 3*mem.BlockSize))
	if s.Stats().Trained != 0 {
		t.Fatal("single-block generation trained")
	}
}

func TestAccumEvictionTrains(t *testing.T) {
	cfg := config.DefaultSMS()
	cfg.AccumEntries = 2
	cfg.FilterEntries = 2
	s := New(cfg, nil)
	// Three two-access generations with distinct regions overflow the
	// 2-entry accumulation table; the victim must train the PHT.
	for r := 1; r <= 3; r++ {
		s.OnAccess(access(r, 0, uint64(r)), false)
		s.OnAccess(access(r, 1, uint64(r)), false)
	}
	if s.Stats().Trained != 1 {
		t.Fatalf("trained = %d, want 1 (LRU accum victim)", s.Stats().Trained)
	}
}

func TestAnalysisModeNoEngine(t *testing.T) {
	s := New(config.DefaultSMS(), nil)
	runGeneration(s, 1, 100, 0, 4)
	runGeneration(s, 2, 100, 0, 4)
	s.OnAccess(access(3, 0, 100), false) // must not panic without engine
	if !s.WasPredicted(access(3, 4, 100).Addr) {
		t.Error("analysis mode did not record prediction")
	}
}

func TestPHTLenGrowth(t *testing.T) {
	s, _ := newTestSMS(t)
	for pc := uint64(1); pc <= 5; pc++ {
		runGeneration(s, int(pc), pc, 0, 1)
	}
	if s.PHTLen() != 5 {
		t.Fatalf("PHT has %d patterns, want 5", s.PHTLen())
	}
}
