// Package stream implements the streaming back end shared by the temporal
// and spatio-temporal prefetchers: a set of stream queues holding predicted
// address sequences, and the Streamed Value Buffer (SVB) holding prefetched
// blocks until the processor consumes them (§4.2, §4.3 of the paper).
//
// Throttling follows the paper: a newly allocated stream fetches a single
// probe block; once the processor consumes it the stream is trusted and kept
// topped up to its lookahead depth. Streams are victimized LRU-by-activity
// when all queues are busy. Blocks evicted from the SVB unconsumed are
// overpredictions.
//
// The engine sits directly on the replay loop's off-chip path, so all of
// its state is pre-sized at construction: the SVB is a fixed slot array
// indexed by an open-addressed flat table (no per-fetch heap entries), and
// queue address buffers are retained across stream victimizations. After
// warm-up the engine performs no allocations.
package stream

import (
	"stems/internal/flat"
	"stems/internal/mem"
)

// Fetcher issues an off-chip transfer for a prefetched block and returns
// the cycle at which the block will be ready in the SVB. The simulator's
// memory-channel model implements this, so bandwidth contention delays
// prefetch readiness.
type Fetcher interface {
	Fetch(block mem.Addr) (readyAt uint64)
}

// Config sizes the streaming engine.
type Config struct {
	Queues     int // concurrent stream queues (paper: 8)
	Lookahead  int // blocks kept in flight per stream (paper: 8 or 12)
	SVBEntries int // streamed value buffer capacity (paper: 64)
	// RefillThreshold: when a stream's pending addresses drop below this,
	// its Refill callback is invoked to extend the queue (reconstruction
	// resumes, or more CMOB entries are read). Defaults to Lookahead.
	RefillThreshold int
	// Adaptive enables dynamic lookahead adjustment between MinLookahead
	// and MaxLookahead: the engine deepens streams whose hits arrive late
	// (consumers waiting on in-flight blocks) and shallows them when hits
	// are comfortably early. This implements the direction of the paper's
	// related work (§6): self-repairing prefetchers "dynamically adjust
	// lookahead to ensure prefetches arrive just in time" and adaptive
	// stream detection "dynamically adjusts prefetch aggressiveness".
	Adaptive     bool
	MinLookahead int
	MaxLookahead int
}

func (c Config) withDefaults() Config {
	if c.Queues <= 0 {
		c.Queues = 8
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 8
	}
	if c.SVBEntries <= 0 {
		c.SVBEntries = 64
	}
	if c.RefillThreshold <= 0 {
		c.RefillThreshold = c.Lookahead
	}
	if c.Adaptive {
		if c.MinLookahead <= 0 {
			c.MinLookahead = 2
		}
		if c.MaxLookahead < c.Lookahead {
			c.MaxLookahead = 2 * c.Lookahead
		}
	}
	return c
}

// Queue is one stream: a FIFO of predicted block addresses plus in-flight
// accounting. The pending FIFO is a head-indexed slice whose backing array
// survives victimization, so steady-state streaming does not allocate.
type Queue struct {
	id      int
	pending []mem.Addr
	ph      int // pending head: pending[ph:] is the live FIFO
	// Refill, if non-nil, is invoked when pending drops below the
	// threshold; the owner appends more addresses via Extend. It is the
	// hook through which STeMS "resumes reconstruction from where it left
	// off" (§4.2).
	Refill func(q *Queue)
	// Cursor is owner state: the predictor's read position for this stream
	// (the RMOB or CMOB position reconstruction resumes from).
	Cursor uint64

	inflight  int
	activity  uint64 // last fetch or hit stamp, for LRU victimization
	active    bool
	probation bool // only one block fetched until first consumption
	refilling bool
	dead      int // generation guard: bumped when victimized
}

// Len returns the number of pending (not yet fetched) addresses.
func (q *Queue) Len() int { return len(q.pending) - q.ph }

// push appends addrs to the FIFO, first compacting consumed headroom so the
// backing array is reused instead of regrown.
func (q *Queue) push(addrs []mem.Addr) {
	if q.ph > 0 {
		n := copy(q.pending, q.pending[q.ph:])
		q.pending = q.pending[:n]
		q.ph = 0
	}
	q.pending = append(q.pending, addrs...)
}

// pop removes and returns the FIFO head; the caller checks Len first.
func (q *Queue) pop() mem.Addr {
	a := q.pending[q.ph]
	q.ph++
	if q.ph == len(q.pending) {
		q.pending = q.pending[:0]
		q.ph = 0
	}
	return a
}

// Stats aggregates engine activity.
type Stats struct {
	Fetched       uint64 // blocks sent to the memory system
	Consumed      uint64 // SVB hits (useful prefetches)
	Overpredicted uint64 // blocks evicted from the SVB unconsumed
	Streams       uint64 // streams allocated
	Victimized    uint64 // streams killed for reallocation
	Skipped       uint64 // fetches suppressed (duplicate/present blocks)
	LateHits      uint64 // SVB hits that waited on an in-flight block
	AdaptRaises   uint64 // adaptive lookahead increases
	AdaptLowers   uint64 // adaptive lookahead decreases
}

type svbEntry struct {
	block    mem.Addr
	readyAt  uint64
	owner    int // queue id, -1 for direct fetches
	ownerGen int
	stamp    uint64
	active   bool
}

// svbRef is one svbRing entry: a slot id plus the stamp it was filled
// with, so a popped ref whose slot has since been released or refilled is
// recognized as stale.
type svbRef struct {
	slot  int32
	stamp uint64
}

// Engine owns the stream queues and the SVB.
type Engine struct {
	cfg     Config
	fetcher Fetcher
	// Clock returns the current simulation cycle; used for LRU stamps.
	Clock func() uint64
	// ShouldFetch, if non-nil, suppresses fetches for blocks the caller
	// knows are already on chip (e.g. present in L1/L2).
	ShouldFetch func(block mem.Addr) bool

	queues []Queue
	// The SVB: a fixed slot array, a block-address index over it, and a
	// free-slot stack. Occupancy is SVBEntries minus free slots. svbStamps
	// mirrors the entry stamps in one compact array so the eviction scan
	// (which runs with every slot occupied) touches a few cache lines
	// instead of the whole entry array.
	svb       []svbEntry
	svbStamps []uint64
	svbIndex  *flat.U64Table[int]
	svbFree   []int
	stamp     uint64
	stats     Stats

	// svbRing records fills in issue order so the eviction victim (the
	// minimum-stamp live entry — stamps are strictly monotonic at fill
	// time, so fill order IS stamp order) pops from the head instead of
	// an argmin scan over every slot. Entries whose slot was released or
	// refilled since the push are stale and skipped by stamp mismatch;
	// a full ring compacts in place (at most SVBEntries refs are live).
	svbRing  []svbRef
	ringHead int
	ringTail int

	// Adaptive lookahead state.
	curLookahead int
	adaptWindow  uint64 // consumptions observed in the current window
	adaptLate    uint64 // late consumptions in the current window
}

// NewEngine creates a streaming engine with the given fetcher.
func NewEngine(cfg Config, fetcher Fetcher) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:          cfg,
		fetcher:      fetcher,
		Clock:        func() uint64 { return 0 },
		svb:          make([]svbEntry, cfg.SVBEntries),
		svbStamps:    make([]uint64, cfg.SVBEntries),
		svbIndex:     flat.NewU64Table[int](cfg.SVBEntries),
		svbFree:      make([]int, 0, cfg.SVBEntries),
		svbRing:      make([]svbRef, ringSize(cfg.SVBEntries)),
		queues:       make([]Queue, cfg.Queues),
		curLookahead: cfg.Lookahead,
	}
	for i := cfg.SVBEntries - 1; i >= 0; i-- {
		e.svbFree = append(e.svbFree, i)
	}
	for i := range e.queues {
		e.queues[i].id = i
	}
	return e
}

// Stats returns a snapshot of cumulative statistics.
func (e *Engine) Stats() Stats { return e.stats }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// NewStream allocates a stream queue (victimizing the least-recently-active
// one if necessary), seeds it with addrs, and fetches the probe block.
// It returns the queue so the owner can set Refill/Cursor before extending.
func (e *Engine) NewStream(addrs []mem.Addr) *Queue {
	return e.newStream(addrs, true)
}

// NewEagerStream is NewStream without the single-probe-block probation:
// the stream immediately fills its lookahead. Used for spatial-only streams,
// whose pattern confidence comes from the PST's saturating counters rather
// than from consumption of a probe (§4.2).
func (e *Engine) NewEagerStream(addrs []mem.Addr) *Queue {
	return e.newStream(addrs, false)
}

func (e *Engine) newStream(addrs []mem.Addr, probation bool) *Queue {
	victim := &e.queues[0]
	for i := range e.queues {
		q := &e.queues[i]
		if !q.active {
			victim = q
			break
		}
		if q.activity < victim.activity {
			victim = q
		}
	}
	if victim.active {
		e.stats.Victimized++
		// Blocks the dead stream already fetched remain in the SVB; if
		// never consumed they will age out as overpredictions, matching
		// the paper's accounting.
	}
	// Reset the queue but keep its pending backing array for reuse.
	*victim = Queue{
		id:        victim.id,
		dead:      victim.dead + 1,
		active:    true,
		probation: probation,
		pending:   victim.pending[:0],
	}
	victim.push(addrs)
	victim.activity = e.tick()
	e.stats.Streams++
	e.pump(victim)
	return victim
}

// Extend appends more predicted addresses to a live stream.
func (e *Engine) Extend(q *Queue, addrs []mem.Addr) {
	if !q.active {
		return
	}
	q.push(addrs)
	e.pump(q)
}

// Lookup performs a demand-side probe of the SVB for the block containing
// addr. On a hit the entry is consumed and the owning stream advances. It
// returns whether the block was present and the cycle at which it is (or
// will be) ready — a demand hit on an in-flight prefetch still waits for
// readyAt (timeliness, §5.6).
func (e *Engine) Lookup(addr mem.Addr) (hit bool, readyAt uint64) {
	block := addr.Block()
	slot, ok := e.svbIndex.Get(uint64(block))
	if !ok {
		return false, 0
	}
	ent := &e.svb[slot]
	owner, ownerGen := ent.owner, ent.ownerGen
	readyAt = ent.readyAt
	e.release(block, slot)
	e.stats.Consumed++
	if e.cfg.Adaptive {
		e.adapt(readyAt > e.Clock())
	} else if readyAt > e.Clock() {
		e.stats.LateHits++
	}
	if owner >= 0 {
		q := &e.queues[owner]
		if q.active && q.dead == ownerGen {
			if q.inflight > 0 {
				q.inflight--
			}
			q.activity = e.tick()
			if q.probation {
				// Probe consumed: the stream is useful; open it up.
				q.probation = false
			}
			e.pump(q)
		}
	}
	return true, readyAt
}

// release frees an SVB slot and its index mapping.
func (e *Engine) release(block mem.Addr, slot int) {
	e.svbIndex.Delete(uint64(block))
	e.svb[slot] = svbEntry{}
	e.svbFree = append(e.svbFree, slot)
}

// Contains reports whether block is currently buffered, without consuming.
func (e *Engine) Contains(addr mem.Addr) bool {
	return e.svbIndex.Has(uint64(addr.Block()))
}

// Direct fetches a single block into the SVB without stream ownership —
// the path used by the stride and SMS prefetchers, which predict sets of
// blocks rather than ordered streams.
func (e *Engine) Direct(block mem.Addr) {
	e.fetchInto(block, -1, 0)
}

// Invalidate removes a block (e.g. on a store to it), counting it as an
// overprediction if never consumed.
func (e *Engine) Invalidate(addr mem.Addr) {
	block := addr.Block()
	if slot, ok := e.svbIndex.Get(uint64(block)); ok {
		e.release(block, slot)
		e.stats.Overpredicted++
	}
}

// Drain counts all still-buffered blocks as overpredictions; call at end of
// simulation so unconsumed prefetches are accounted.
func (e *Engine) Drain() {
	for i := range e.svb {
		if e.svb[i].active {
			e.stats.Overpredicted++
			e.release(e.svb[i].block, i)
		}
	}
}

// adapt updates the dynamic lookahead from one consumption observation.
// Over each 64-consumption window: a high late rate deepens streams (up to
// MaxLookahead), a very low one shallows them (down to MinLookahead),
// trading timeliness against mispredictions as §4.3 describes.
func (e *Engine) adapt(late bool) {
	if late {
		e.adaptLate++
		e.stats.LateHits++
	}
	e.adaptWindow++
	if e.adaptWindow < 64 {
		return
	}
	rate := float64(e.adaptLate) / float64(e.adaptWindow)
	e.adaptWindow, e.adaptLate = 0, 0
	switch {
	case rate > 0.25 && e.curLookahead < e.cfg.MaxLookahead:
		e.curLookahead++
		e.stats.AdaptRaises++
	case rate < 0.05 && e.curLookahead > e.cfg.MinLookahead:
		e.curLookahead--
		e.stats.AdaptLowers++
	}
}

// Lookahead returns the current (possibly adapted) stream depth.
func (e *Engine) Lookahead() int { return e.curLookahead }

// drainInto fetches from the queue's FIFO until the stream reaches limit
// blocks in flight or runs out of addresses.
func (e *Engine) drainInto(q *Queue, limit int) {
	for q.inflight < limit && q.Len() > 0 {
		if e.fetchInto(q.pop().Block(), q.id, q.dead) {
			q.inflight++
		}
	}
}

// pump tops a stream up to its lookahead, honoring probation, and triggers
// the refill callback when the queue runs low.
func (e *Engine) pump(q *Queue) {
	limit := e.curLookahead
	if q.probation {
		limit = 1
	}
	e.drainInto(q, limit)
	if q.Len() < e.cfg.RefillThreshold && q.Refill != nil && !q.refilling {
		q.refilling = true
		q.Refill(q)
		q.refilling = false
		// One more pump pass in case the refill delivered addresses and
		// we still have lookahead headroom.
		e.drainInto(q, limit)
	}
}

// fetchInto issues the transfer and installs the SVB entry, evicting the
// oldest unconsumed entry if the SVB is full. Returns false if the fetch
// was suppressed.
func (e *Engine) fetchInto(block mem.Addr, owner int, ownerGen int) bool {
	if e.svbIndex.Has(uint64(block)) {
		e.stats.Skipped++
		return false
	}
	if e.ShouldFetch != nil && !e.ShouldFetch(block) {
		e.stats.Skipped++
		return false
	}
	if len(e.svbFree) == 0 {
		e.evictOldest()
	}
	slot := e.svbFree[len(e.svbFree)-1]
	e.svbFree = e.svbFree[:len(e.svbFree)-1]
	readyAt := e.fetcher.Fetch(block)
	e.svb[slot] = svbEntry{
		block:    block,
		readyAt:  readyAt,
		owner:    owner,
		ownerGen: ownerGen,
		stamp:    e.tick(),
		active:   true,
	}
	e.svbStamps[slot] = e.svb[slot].stamp
	e.svbIndex.Put(uint64(block), slot)
	e.ringPush(svbRef{slot: int32(slot), stamp: e.svb[slot].stamp})
	e.stats.Fetched++
	return true
}

// ringSize returns the svbRing capacity for n SVB slots: a power of two
// with headroom for stale refs between eviction drains.
func ringSize(n int) int {
	size := 8
	for size < 4*n {
		size <<= 1
	}
	return size
}

func (e *Engine) ringPush(r svbRef) {
	mask := len(e.svbRing) - 1
	if e.ringTail-e.ringHead == len(e.svbRing) {
		// Full: compact stale refs away. At most SVBEntries refs are
		// live (one per occupied slot), so this always recovers space.
		w := e.ringHead
		for i := e.ringHead; i < e.ringTail; i++ {
			ref := e.svbRing[i&mask]
			if e.svb[ref.slot].active && e.svb[ref.slot].stamp == ref.stamp {
				e.svbRing[w&mask] = ref
				w++
			}
		}
		e.ringTail = w
	}
	e.svbRing[e.ringTail&(len(e.svbRing)-1)] = r
	e.ringTail++
}

func (e *Engine) evictOldest() {
	// Called only with every slot occupied (the free list is empty), so
	// the ring holds a live ref for each slot: pop fill-order head refs,
	// skipping stale ones, until a live entry surfaces. Stamps strictly
	// increase fill to fill, so the head live ref is the argmin the
	// previous full scan computed.
	mask := len(e.svbRing) - 1
	victim := -1
	for e.ringHead < e.ringTail {
		ref := e.svbRing[e.ringHead&mask]
		e.ringHead++
		if e.svb[ref.slot].active && e.svb[ref.slot].stamp == ref.stamp {
			victim = int(ref.slot)
			break
		}
	}
	if victim < 0 {
		return
	}
	ent := e.svb[victim]
	e.release(ent.block, victim)
	e.stats.Overpredicted++
	if ent.owner >= 0 {
		q := &e.queues[ent.owner]
		if q.active && q.dead == ent.ownerGen && q.inflight > 0 {
			q.inflight--
		}
	}
}

func (e *Engine) tick() uint64 {
	// Combine the simulation clock with a monotonic tiebreaker so LRU is
	// total even within one cycle.
	e.stamp++
	return e.Clock()<<16 | (e.stamp & 0xffff)
}

// SVBOccupancy returns the number of blocks currently buffered.
func (e *Engine) SVBOccupancy() int { return e.cfg.SVBEntries - len(e.svbFree) }
