package stream

import (
	"testing"
	"testing/quick"

	"stems/internal/mem"
)

// instantFetcher completes every fetch immediately and records the order.
type instantFetcher struct {
	fetched []mem.Addr
	when    uint64
}

func (f *instantFetcher) Fetch(b mem.Addr) uint64 {
	f.fetched = append(f.fetched, b)
	return f.when
}

func blocks(idx ...int) []mem.Addr {
	out := make([]mem.Addr, len(idx))
	for i, x := range idx {
		out[i] = mem.Addr(x * mem.BlockSize)
	}
	return out
}

func TestProbationFetchesOneBlock(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 2, Lookahead: 4, SVBEntries: 16}, f)
	e.NewStream(blocks(1, 2, 3, 4, 5))
	if len(f.fetched) != 1 {
		t.Fatalf("new stream fetched %d blocks, want 1 (probation)", len(f.fetched))
	}
	if f.fetched[0] != blocks(1)[0] {
		t.Fatalf("probe block = %v, want first address", f.fetched[0])
	}
}

func TestConsumptionOpensStream(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 2, Lookahead: 3, SVBEntries: 16}, f)
	e.NewStream(blocks(1, 2, 3, 4, 5, 6, 7, 8))
	hit, _ := e.Lookup(blocks(1)[0])
	if !hit {
		t.Fatal("probe block not in SVB")
	}
	// After consuming the probe, the stream tops up to lookahead 3.
	if len(f.fetched) != 1+3 {
		t.Fatalf("after probe consumption fetched %d total, want 4", len(f.fetched))
	}
	// Consuming one more keeps 3 in flight.
	if hit, _ := e.Lookup(blocks(2)[0]); !hit {
		t.Fatal("block 2 not streamed")
	}
	if len(f.fetched) != 1+4 {
		t.Fatalf("fetched %d total, want 5", len(f.fetched))
	}
}

func TestStreamFollowsOrder(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 1, Lookahead: 2, SVBEntries: 16}, f)
	e.NewStream(blocks(10, 11, 12, 13, 14))
	want := blocks(10, 11, 12, 13, 14)
	for _, b := range want {
		hit, _ := e.Lookup(b)
		if !hit {
			t.Fatalf("block %v not available in stream order", b)
		}
	}
	if got := e.Stats().Consumed; got != 5 {
		t.Fatalf("consumed = %d, want 5", got)
	}
	if got := e.Stats().Overpredicted; got != 0 {
		t.Fatalf("overpredicted = %d, want 0", got)
	}
}

func TestMissWithoutPrefetch(t *testing.T) {
	e := NewEngine(Config{}, &instantFetcher{})
	if hit, _ := e.Lookup(blocks(5)[0]); hit {
		t.Fatal("lookup hit in empty SVB")
	}
}

func TestLRUVictimization(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 2, Lookahead: 1, SVBEntries: 16}, f)
	q0 := e.NewStream(blocks(1, 2))
	e.NewStream(blocks(10, 11))
	// Touch q0 so q1 is LRU.
	e.Lookup(blocks(1)[0])
	q2 := e.NewStream(blocks(20, 21))
	if e.Stats().Victimized != 1 {
		t.Fatalf("victimized = %d, want 1", e.Stats().Victimized)
	}
	if q2.id == q0.id {
		t.Fatal("victimized the recently active stream")
	}
}

func TestVictimBlocksBecomeOverpredictions(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 1, Lookahead: 2, SVBEntries: 8}, f)
	e.NewStream(blocks(1, 2, 3))
	e.NewStream(blocks(50, 51)) // victimizes stream 0; block 1 unconsumed
	e.Lookup(blocks(50)[0])
	e.Drain()
	// Block 1 (probe of dead stream) and block 51's probe state: blocks
	// fetched but never consumed count as overpredictions on drain.
	if over := e.Stats().Overpredicted; over == 0 {
		t.Fatalf("overpredicted = %d, want > 0", over)
	}
}

func TestSVBEvictionCountsOverprediction(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 1, Lookahead: 8, SVBEntries: 4}, f)
	for i := 0; i < 8; i++ {
		e.Direct(blocks(i)[0])
	}
	if e.SVBOccupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", e.SVBOccupancy())
	}
	if over := e.Stats().Overpredicted; over != 4 {
		t.Fatalf("overpredicted = %d, want 4", over)
	}
}

func TestDuplicateFetchSuppressed(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{}, f)
	e.Direct(blocks(3)[0])
	e.Direct(blocks(3)[0])
	if len(f.fetched) != 1 {
		t.Fatalf("duplicate fetch issued: %d", len(f.fetched))
	}
	if e.Stats().Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", e.Stats().Skipped)
	}
}

func TestShouldFetchFilter(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{}, f)
	e.ShouldFetch = func(b mem.Addr) bool { return b != blocks(7)[0] }
	e.Direct(blocks(7)[0])
	e.Direct(blocks(8)[0])
	if len(f.fetched) != 1 || f.fetched[0] != blocks(8)[0] {
		t.Fatalf("filter not applied: %v", f.fetched)
	}
}

func TestInvalidate(t *testing.T) {
	e := NewEngine(Config{}, &instantFetcher{})
	e.Direct(blocks(1)[0])
	e.Invalidate(blocks(1)[0])
	if e.Contains(blocks(1)[0]) {
		t.Fatal("block survived invalidation")
	}
	if e.Stats().Overpredicted != 1 {
		t.Fatalf("overpredicted = %d, want 1", e.Stats().Overpredicted)
	}
	// Invalidating an absent block is a no-op.
	e.Invalidate(blocks(2)[0])
	if e.Stats().Overpredicted != 1 {
		t.Fatal("invalidate of absent block counted")
	}
}

func TestRefillCallback(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 1, Lookahead: 2, SVBEntries: 16, RefillThreshold: 2}, f)
	refills := 0
	next := 100
	q := e.NewStream(blocks(1))
	q.Refill = func(q *Queue) {
		refills++
		if refills > 3 {
			return
		}
		e.Extend(q, blocks(next, next+1, next+2))
		next += 3
	}
	// Consume the probe; pump will refill since pending is empty.
	e.Lookup(blocks(1)[0])
	if refills == 0 {
		t.Fatal("refill never invoked")
	}
	// The refilled addresses must now stream.
	if hit, _ := e.Lookup(blocks(100)[0]); !hit {
		t.Fatal("refilled block not streamed")
	}
}

func TestExtendInactiveQueueIgnored(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 1, Lookahead: 2, SVBEntries: 16}, f)
	q0 := e.NewStream(blocks(1, 2))
	e.NewStream(blocks(10, 11)) // victimizes q0's slot, q0 pointer now reused
	before := len(f.fetched)
	// q0 and the new queue share the slot; Extend on the live queue works,
	// but extending via a stale pointer to a dead generation is the same
	// struct — the engine guards by generation on SVB entries. Here we just
	// verify Extend on an inactive queue value is ignored.
	dead := &Queue{id: 0, active: false}
	e.Extend(dead, blocks(30))
	if len(f.fetched) != before {
		t.Fatal("extend on inactive queue issued fetches")
	}
	_ = q0
}

func TestTimelinessReadyAt(t *testing.T) {
	f := &instantFetcher{when: 500}
	e := NewEngine(Config{}, f)
	e.Direct(blocks(1)[0])
	hit, readyAt := e.Lookup(blocks(1)[0])
	if !hit || readyAt != 500 {
		t.Fatalf("hit=%v readyAt=%d, want true/500", hit, readyAt)
	}
}

func TestDefaultsApplied(t *testing.T) {
	e := NewEngine(Config{}, &instantFetcher{})
	cfg := e.Config()
	if cfg.Queues != 8 || cfg.Lookahead != 8 || cfg.SVBEntries != 64 || cfg.RefillThreshold != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

// latencyFetcher completes fetches a fixed delay after the current clock.
type latencyFetcher struct {
	clock *uint64
	delay uint64
}

func (f *latencyFetcher) Fetch(b mem.Addr) uint64 { return *f.clock + f.delay }

func TestAdaptiveLookaheadDeepensUnderLateHits(t *testing.T) {
	var clock uint64
	f := &latencyFetcher{clock: &clock, delay: 400}
	e := NewEngine(Config{
		Queues: 1, Lookahead: 2, SVBEntries: 256,
		Adaptive: true, MinLookahead: 2, MaxLookahead: 16,
	}, f)
	e.Clock = func() uint64 { return clock }

	// One long stream consumed quickly: every hit is late at depth 2, so
	// the engine must deepen.
	addrs := make([]mem.Addr, 4096)
	for i := range addrs {
		addrs[i] = mem.Addr(i * mem.BlockSize)
	}
	q := e.NewStream(addrs)
	_ = q
	for _, a := range addrs {
		clock += 10 // consumer moves much faster than the 400-cycle memory
		hit, _ := e.Lookup(a)
		if !hit {
			break
		}
	}
	if e.Lookahead() <= 2 {
		t.Fatalf("lookahead stayed at %d despite chronic late hits", e.Lookahead())
	}
	if e.Stats().AdaptRaises == 0 || e.Stats().LateHits == 0 {
		t.Fatalf("adaptation stats empty: %+v", e.Stats())
	}
}

func TestAdaptiveLookaheadShallowsWhenEarly(t *testing.T) {
	var clock uint64
	f := &latencyFetcher{clock: &clock, delay: 5}
	e := NewEngine(Config{
		Queues: 1, Lookahead: 8, SVBEntries: 256,
		Adaptive: true, MinLookahead: 2, MaxLookahead: 16,
	}, f)
	e.Clock = func() uint64 { return clock }
	addrs := make([]mem.Addr, 4096)
	for i := range addrs {
		addrs[i] = mem.Addr(i * mem.BlockSize)
	}
	e.NewStream(addrs)
	for _, a := range addrs {
		clock += 100 // slow consumer: everything arrives early
		if hit, _ := e.Lookup(a); !hit {
			break
		}
	}
	if e.Lookahead() >= 8 {
		t.Fatalf("lookahead stayed at %d despite early hits", e.Lookahead())
	}
	if e.Stats().AdaptLowers == 0 {
		t.Fatal("no adaptive decreases recorded")
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	e := NewEngine(Config{Adaptive: true, Lookahead: 8}, &instantFetcher{})
	cfg := e.Config()
	if cfg.MinLookahead != 2 || cfg.MaxLookahead != 16 {
		t.Fatalf("adaptive defaults = %+v", cfg)
	}
	if e.Lookahead() != 8 {
		t.Fatalf("initial lookahead = %d", e.Lookahead())
	}
}

// Property: fetch accounting is conserved under random operation mixes:
// Fetched == Consumed + Overpredicted + SVBOccupancy at every step, and the
// SVB never exceeds capacity.
func TestAccountingConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		e := NewEngine(Config{Queues: 2, Lookahead: 3, SVBEntries: 8}, &instantFetcher{})
		check := func() bool {
			st := e.Stats()
			return st.Fetched == st.Consumed+st.Overpredicted+uint64(e.SVBOccupancy()) &&
				e.SVBOccupancy() <= 8
		}
		for _, op := range ops {
			block := blocks(int(op % 64))[0]
			switch op % 5 {
			case 0:
				e.NewStream([]mem.Addr{block, block + 64, block + 128})
			case 1:
				e.Direct(block)
			case 2:
				e.Lookup(block)
			case 3:
				e.Invalidate(block)
			case 4:
				e.NewEagerStream([]mem.Addr{block, block + 192})
			}
			if !check() {
				return false
			}
		}
		e.Drain()
		st := e.Stats()
		return st.Fetched == st.Consumed+st.Overpredicted && e.SVBOccupancy() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEagerStreamSkipsProbation(t *testing.T) {
	f := &instantFetcher{}
	e := NewEngine(Config{Queues: 2, Lookahead: 4, SVBEntries: 16}, f)
	e.NewEagerStream(blocks(1, 2, 3, 4, 5, 6))
	if len(f.fetched) != 4 {
		t.Fatalf("eager stream fetched %d blocks, want lookahead 4", len(f.fetched))
	}
}
