// Package analysis implements the paper's trace-analysis studies: the
// joint TMS/SMS coverage classification of Figure 6, the Sequitur-based
// temporal-repetition taxonomy of Figure 7, and the intra-generation
// correlation-distance study of Figure 8. All three operate on the baseline
// off-chip read-miss stream produced by sim.CollectMissStream.
package analysis

import (
	"sort"

	"stems/internal/mem"
	"stems/internal/trace"
)

// GenKey is the spatial lookup index (trigger PC + trigger region offset).
type GenKey struct {
	PC     uint64
	Offset int
}

// Generation describes one finished spatial generation.
type Generation struct {
	Region mem.Addr
	Key    GenKey
	// Seq is the ordered list of distinct region offsets missed during the
	// generation (the trigger first).
	Seq []int
}

// genState is one active generation.
type genState struct {
	key      GenKey
	observed uint32
	seq      []int
}

// GenTracker segments the off-chip miss stream into spatial generations:
// a generation opens at the first miss to an inactive region and closes
// when one of its missed blocks is evicted from L1 (§2.4).
type GenTracker struct {
	active map[mem.Addr]*genState
	// OnEnd, if non-nil, receives every finished generation.
	OnEnd func(Generation)
}

// NewGenTracker creates an empty tracker.
func NewGenTracker() *GenTracker {
	return &GenTracker{active: make(map[mem.Addr]*genState)}
}

// OnMiss records one off-chip read miss and reports whether it was the
// trigger of a new generation.
func (t *GenTracker) OnMiss(a trace.Access) (isTrigger bool) {
	region := a.Addr.Region()
	off := a.Addr.RegionOffset()
	bit := uint32(1) << off
	if g, ok := t.active[region]; ok {
		if g.observed&bit == 0 {
			g.observed |= bit
			g.seq = append(g.seq, off)
		}
		return false
	}
	t.active[region] = &genState{
		key:      GenKey{PC: a.PC, Offset: off},
		observed: bit,
		seq:      []int{off},
	}
	return true
}

// OnEvict closes the generation containing the evicted block, if any.
func (t *GenTracker) OnEvict(block mem.Addr) {
	region := block.Region()
	g, ok := t.active[region]
	if !ok {
		return
	}
	if g.observed&(1<<block.RegionOffset()) == 0 {
		return
	}
	delete(t.active, region)
	t.emit(region, g)
}

// Flush closes every remaining generation (end of trace) in region-address
// order. Go map iteration order is randomized, and downstream consumers
// (the Figure 8 per-index sequence history) are order-sensitive when two
// open generations share a lookup index, so an ordered flush is what makes
// repeated analyses byte-identical at a fixed seed.
func (t *GenTracker) Flush() {
	regions := make([]mem.Addr, 0, len(t.active))
	for region := range t.active {
		regions = append(regions, region)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, region := range regions {
		t.emit(region, t.active[region])
	}
	t.active = make(map[mem.Addr]*genState)
}

// Active returns the number of open generations.
func (t *GenTracker) Active() int { return len(t.active) }

func (t *GenTracker) emit(region mem.Addr, g *genState) {
	if t.OnEnd != nil {
		t.OnEnd(Generation{Region: region, Key: g.key, Seq: g.seq})
	}
}
