package analysis

import (
	"math/rand"
	"testing"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/trace"
)

func testSystem() config.System {
	s := config.DefaultSystem()
	s.L1SizeBytes = 4 << 10
	s.L2SizeBytes = 32 << 10
	return s
}

// ---- GenTracker ----

func acc(region, off int, pc uint64) trace.Access {
	return trace.Access{Addr: mem.Addr(region*mem.RegionSize + off*mem.BlockSize), PC: pc}
}

func TestGenTrackerTriggerDetection(t *testing.T) {
	g := NewGenTracker()
	if !g.OnMiss(acc(1, 3, 9)) {
		t.Fatal("first miss to a region not a trigger")
	}
	if g.OnMiss(acc(1, 5, 10)) {
		t.Fatal("second miss classified as trigger")
	}
	if g.OnMiss(acc(1, 3, 9)) {
		t.Fatal("repeat block classified as trigger")
	}
	if !g.OnMiss(acc(2, 0, 9)) {
		t.Fatal("miss to a second region not a trigger")
	}
	if g.Active() != 2 {
		t.Fatalf("active = %d, want 2", g.Active())
	}
}

func TestGenTrackerEndAndSequence(t *testing.T) {
	g := NewGenTracker()
	var gens []Generation
	g.OnEnd = func(gen Generation) { gens = append(gens, gen) }
	g.OnMiss(acc(1, 3, 9))
	g.OnMiss(acc(1, 7, 10))
	g.OnMiss(acc(1, 1, 11))
	// Evicting an untouched block must not end the generation.
	g.OnEvict(mem.Addr(1*mem.RegionSize + 20*mem.BlockSize))
	if len(gens) != 0 {
		t.Fatal("generation ended on non-member eviction")
	}
	g.OnEvict(mem.Addr(1*mem.RegionSize + 7*mem.BlockSize))
	if len(gens) != 1 {
		t.Fatalf("generations = %d, want 1", len(gens))
	}
	gen := gens[0]
	if gen.Key != (GenKey{PC: 9, Offset: 3}) {
		t.Fatalf("key = %+v", gen.Key)
	}
	want := []int{3, 7, 1}
	if len(gen.Seq) != 3 {
		t.Fatalf("seq = %v", gen.Seq)
	}
	for i := range want {
		if gen.Seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", gen.Seq, want)
		}
	}
}

func TestGenTrackerFlush(t *testing.T) {
	g := NewGenTracker()
	n := 0
	g.OnEnd = func(Generation) { n++ }
	g.OnMiss(acc(1, 0, 1))
	g.OnMiss(acc(2, 0, 1))
	g.Flush()
	if n != 2 || g.Active() != 0 {
		t.Fatalf("flush ended %d generations, active=%d", n, g.Active())
	}
}

// ---- tmsOracle ----

func TestTMSOracleRepeatedSequence(t *testing.T) {
	o := newTMSOracle(4, 8)
	seq := []mem.Addr{64, 128, 192, 256, 320}
	for _, b := range seq {
		if o.observe(b) {
			t.Fatal("cold sequence classified predicted")
		}
	}
	// Replay: the head restarts a stream; the rest must be predicted.
	if o.observe(seq[0]) {
		t.Fatal("stream head classified predicted")
	}
	for _, b := range seq[1:] {
		if !o.observe(b) {
			t.Fatalf("replayed element %v not predicted", b)
		}
	}
}

func TestTMSOracleToleratesSmallReorder(t *testing.T) {
	o := newTMSOracle(4, 8)
	seq := []mem.Addr{64, 128, 192, 256, 320, 384}
	for _, b := range seq {
		o.observe(b)
	}
	o.observe(seq[0])
	// Swap two elements within the window.
	if !o.observe(seq[2]) || !o.observe(seq[1]) {
		t.Fatal("reorder within window not predicted")
	}
}

func TestTMSOracleRandomUnpredicted(t *testing.T) {
	o := newTMSOracle(4, 8)
	rng := rand.New(rand.NewSource(5))
	predicted := 0
	for i := 0; i < 2000; i++ {
		if o.observe(mem.Addr(rng.Intn(1<<20) * 64)) {
			predicted++
		}
	}
	if predicted > 40 {
		t.Fatalf("random stream predicted %d/2000", predicted)
	}
}

// ---- Categorize (Figure 7 taxonomy) ----

func TestCategorizeRepeatedSequence(t *testing.T) {
	// 1 2 3 4 | 1 2 3 4 : first occurrence new, second = head + 3 opp.
	res := Categorize([]uint64{1, 2, 3, 4, 1, 2, 3, 4})
	if res.Total() != 8 {
		t.Fatalf("total = %d", res.Total())
	}
	if res.New != 4 {
		t.Errorf("new = %d, want 4", res.New)
	}
	if res.Head != 1 {
		t.Errorf("head = %d, want 1", res.Head)
	}
	if res.Opportunity != 3 {
		t.Errorf("opportunity = %d, want 3", res.Opportunity)
	}
	if res.NonRepetitive != 0 {
		t.Errorf("non-rep = %d, want 0", res.NonRepetitive)
	}
}

func TestCategorizeNonRepetitive(t *testing.T) {
	res := Categorize([]uint64{1, 2, 3, 4, 5, 6, 7, 8})
	if res.NonRepetitive != 8 || res.Opportunity != 0 {
		t.Fatalf("breakdown = %+v", res)
	}
}

func TestCategorizeManyOccurrences(t *testing.T) {
	// Phrase repeated 5 times: 1 new block, 4 heads, 4*(L-1) opportunity.
	phrase := []uint64{10, 11, 12, 13, 14, 15}
	var in []uint64
	for i := 0; i < 5; i++ {
		in = append(in, phrase...)
	}
	res := Categorize(in)
	if res.Total() != uint64(len(in)) {
		t.Fatalf("total = %d, want %d", res.Total(), len(in))
	}
	if res.NonRepetitive != 0 {
		t.Errorf("non-rep = %d, want 0 on pure repetition", res.NonRepetitive)
	}
	// The grammar may group occurrences hierarchically (e.g. a rule for two
	// phrases), so exact head counts depend on the parse; but at most two
	// phrase-lengths can be "new" and at least half the input must be
	// repetitive opportunity.
	if res.New > uint64(2*len(phrase)) {
		t.Errorf("new = %d, want <= %d", res.New, 2*len(phrase))
	}
	if res.Opportunity < uint64(len(in)/2) {
		t.Errorf("opportunity = %d, want >= %d", res.Opportunity, len(in)/2)
	}
	if res.Head == 0 {
		t.Error("no heads on repeated input")
	}
}

func TestCategorizeMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := make([]uint64, 5000)
	for i := range in {
		in[i] = uint64(rng.Intn(100))
	}
	res := Categorize(in)
	if res.Total() != uint64(len(in)) {
		t.Fatalf("classified %d of %d symbols", res.Total(), len(in))
	}
}

// ---- Joint (Figure 6) ----

// spatialTrace: many fresh regions sharing one PC/layout — SMS-predictable,
// TMS-hopeless.
func spatialTrace(n int) trace.BlockSource {
	var accs []trace.Access
	offsets := []int{0, 4, 9, 13}
	region := 100
	for len(accs) < n {
		for _, off := range offsets {
			accs = append(accs, acc(region, off, 0x42))
		}
		region++
	}
	return trace.Blocks(trace.NewSliceSource(accs[:n]))
}

// temporalTrace: one long pointer-chase sequence over scattered blocks,
// repeated — TMS-predictable, SMS-hopeless.
func temporalTrace(n int) trace.BlockSource {
	rng := rand.New(rand.NewSource(11))
	chain := make([]trace.Access, 400)
	for i := range chain {
		chain[i] = trace.Access{
			Addr: mem.Addr(rng.Intn(1 << 22)).Block(),
			PC:   uint64(0x9000 + i%7),
			Dep:  true,
		}
	}
	var accs []trace.Access
	for len(accs) < n {
		accs = append(accs, chain...)
	}
	return trace.Blocks(trace.NewSliceSource(accs[:n]))
}

func TestJointSpatialWorkload(t *testing.T) {
	res := Joint(testSystem(), config.DefaultSMS(), spatialTrace(40000))
	if res.SMSCoverage() < 0.5 {
		t.Fatalf("SMS coverage %.2f on a purely spatial workload", res.SMSCoverage())
	}
	if res.TMSCoverage() > 0.2 {
		t.Fatalf("TMS coverage %.2f on compulsory misses", res.TMSCoverage())
	}
}

func TestJointTemporalWorkload(t *testing.T) {
	res := Joint(testSystem(), config.DefaultSMS(), temporalTrace(40000))
	if res.TMSCoverage() < 0.5 {
		t.Fatalf("TMS coverage %.2f on a repeating chain", res.TMSCoverage())
	}
}

func TestJointResultArithmetic(t *testing.T) {
	r := JointResult{Both: 10, TMSOnly: 20, SMSOnly: 30, Neither: 40}
	if r.Total() != 100 {
		t.Fatal("total wrong")
	}
	near := func(a, b float64) bool { d := a - b; return d < 1e-12 && d > -1e-12 }
	b, tm, s, n := r.Frac()
	if !near(b, 0.1) || !near(tm, 0.2) || !near(s, 0.3) || !near(n, 0.4) {
		t.Fatalf("fracs = %v %v %v %v", b, tm, s, n)
	}
	if !near(r.TMSCoverage(), 0.3) || !near(r.SMSCoverage(), 0.4) || !near(r.JointCoverage(), 0.6) {
		t.Fatal("coverage aggregates wrong")
	}
	if (JointResult{}).JointCoverage() != 0 {
		t.Fatal("empty result coverage not 0")
	}
}

// ---- CorrDistances (Figure 8) ----

// genTrace emits the same region layout in a fixed or jittered order over
// many fresh regions under one PC.
func genTrace(n int, swap bool) trace.BlockSource {
	var accs []trace.Access
	region := 100
	for len(accs) < n {
		offs := []int{0, 2, 5, 8, 11}
		if swap && region%2 == 1 {
			offs = []int{0, 5, 2, 8, 11} // one adjacent transposition
		}
		for _, off := range offs {
			accs = append(accs, acc(region, off, 0x77))
		}
		region++
	}
	return trace.Blocks(trace.NewSliceSource(accs[:n]))
}

func TestCorrDistPerfectRepetition(t *testing.T) {
	cd := CorrDistances(testSystem(), genTrace(30000, false))
	if cd.Pairs == 0 {
		t.Fatal("no pairs evaluated")
	}
	if frac := cd.Hist.Frac(1); frac < 0.99 {
		t.Fatalf("perfect repetition: +1 fraction = %.3f", frac)
	}
	if cd.WithinWindow(2) < 0.99 {
		t.Fatal("window(2) < 99% on perfect repetition")
	}
}

func TestCorrDistDetectsReordering(t *testing.T) {
	cd := CorrDistances(testSystem(), genTrace(30000, true))
	if cd.Hist.Frac(1) > 0.9 {
		t.Fatalf("+1 fraction %.3f despite transpositions", cd.Hist.Frac(1))
	}
	// A single adjacent transposition keeps everything within window 3.
	if cd.WithinWindow(3) < 0.95 {
		t.Fatalf("window(3) = %.3f", cd.WithinWindow(3))
	}
}

func TestCorrDistUnmatchedPairs(t *testing.T) {
	// Generations whose footprints change completely between occurrences:
	// consecutive pairs cannot be located in the prior sequence.
	var accs []trace.Access
	for r := 0; r < 400; r++ {
		offs := []int{0, 2, 4}
		if r%2 == 1 {
			offs = []int{0, 9, 11} // same trigger, disjoint body
		}
		for _, off := range offs {
			accs = append(accs, acc(100+r%2*1000, off, 0x5))
		}
		// Alternate regions so generations close via eviction pressure.
	}
	cd := CorrDistances(testSystem(), trace.Blocks(trace.NewSliceSource(accs)))
	if cd.Unmatched == 0 {
		t.Fatalf("no unmatched pairs despite disjoint footprints: %+v", cd)
	}
}
