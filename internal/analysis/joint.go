package analysis

import (
	"fmt"

	"stems/internal/config"
	"stems/internal/mem"
	"stems/internal/sim"
	"stems/internal/sms"
	"stems/internal/trace"
)

// JointResult is the Figure 6 classification: each baseline off-chip read
// miss is predictable by both techniques, only one, or neither.
type JointResult struct {
	Both    uint64
	TMSOnly uint64
	SMSOnly uint64
	Neither uint64
}

// Total returns the number of classified misses.
func (r JointResult) Total() uint64 { return r.Both + r.TMSOnly + r.SMSOnly + r.Neither }

// Frac returns each class as a fraction of all misses.
func (r JointResult) Frac() (both, tmsOnly, smsOnly, neither float64) {
	t := float64(r.Total())
	if t == 0 {
		return
	}
	return float64(r.Both) / t, float64(r.TMSOnly) / t, float64(r.SMSOnly) / t, float64(r.Neither) / t
}

// TMSCoverage returns the fraction predictable temporally.
func (r JointResult) TMSCoverage() float64 {
	b, t, _, _ := r.Frac()
	return b + t
}

// SMSCoverage returns the fraction predictable spatially.
func (r JointResult) SMSCoverage() float64 {
	b, _, s, _ := r.Frac()
	return b + s
}

// JointCoverage returns the fraction predictable by either technique.
func (r JointResult) JointCoverage() float64 {
	b, t, s, _ := r.Frac()
	return b + t + s
}

func (r JointResult) String() string {
	b, t, s, n := r.Frac()
	return fmt.Sprintf("both=%.1f%% tms-only=%.1f%% sms-only=%.1f%% neither=%.1f%%",
		100*b, 100*t, 100*s, 100*n)
}

// tmsOracle is the idealized temporal predictor used for classification:
// it tracks the full miss history and a bounded set of stream cursors; a
// miss is temporally predictable if it continues an active stream within a
// small reorder window.
type tmsOracle struct {
	history []mem.Addr
	last    map[mem.Addr]int
	streams []oracleStream
	window  int
	clock   int
	// buffered models the SVB: stream entries skipped by a small reorder
	// stay available until consumed or aged out.
	buffered map[mem.Addr]bool
	fifo     []mem.Addr
	svbCap   int
}

type oracleStream struct {
	pos    int // next history index expected
	active bool
	touch  int
}

func newTMSOracle(streams, window int) *tmsOracle {
	return &tmsOracle{
		last:     make(map[mem.Addr]int),
		streams:  make([]oracleStream, streams),
		window:   window,
		buffered: make(map[mem.Addr]bool),
		svbCap:   64,
	}
}

// buffer retains a skipped stream entry, evicting FIFO beyond capacity.
func (t *tmsOracle) buffer(b mem.Addr) {
	if t.buffered[b] {
		return
	}
	t.buffered[b] = true
	t.fifo = append(t.fifo, b)
	for len(t.fifo) > t.svbCap {
		delete(t.buffered, t.fifo[0])
		t.fifo = t.fifo[1:]
	}
}

// observe classifies one miss and updates the oracle state.
func (t *tmsOracle) observe(block mem.Addr) bool {
	t.clock++
	predicted := false
	if t.buffered[block] {
		predicted = true
		delete(t.buffered, block)
	}
	for i := range t.streams {
		if predicted {
			break
		}
		st := &t.streams[i]
		if !st.active {
			continue
		}
		limit := st.pos + t.window
		if limit > len(t.history) {
			limit = len(t.history)
		}
		for p := st.pos; p < limit; p++ {
			if t.history[p] == block {
				predicted = true
				// Entries skipped by the reorder stay buffered, as they
				// would in the SVB.
				for q := st.pos; q < p; q++ {
					t.buffer(t.history[q])
				}
				st.pos = p + 1
				st.touch = t.clock
				break
			}
		}
	}
	if !predicted {
		if prev, ok := t.last[block]; ok {
			// Restart the LRU stream from just past the prior occurrence.
			victim := 0
			for i := range t.streams {
				if !t.streams[i].active {
					victim = i
					break
				}
				if t.streams[i].touch < t.streams[victim].touch {
					victim = i
				}
			}
			t.streams[victim] = oracleStream{pos: prev + 1, active: true, touch: t.clock}
		}
	}
	t.last[block] = len(t.history)
	t.history = append(t.history, block)
	return predicted
}

// jointObserver wires the two oracles into the simulator's event stream.
type jointObserver struct {
	spatial  *sms.SMS
	temporal *tmsOracle
	res      JointResult
}

func (o *jointObserver) Name() string                        { return "joint-observer" }
func (o *jointObserver) OnAccess(a trace.Access, l1Hit bool) { o.spatial.OnAccess(a, l1Hit) }
func (o *jointObserver) OnL1Evict(block mem.Addr)            { o.spatial.OnL1Evict(block) }

func (o *jointObserver) OnOffChipEvent(a trace.Access, covered bool) {
	if a.Write {
		return
	}
	smsPred := o.spatial.WasPredicted(a.Addr)
	tmsPred := o.temporal.observe(a.Addr.Block())
	switch {
	case smsPred && tmsPred:
		o.res.Both++
	case tmsPred:
		o.res.TMSOnly++
	case smsPred:
		o.res.SMSOnly++
	default:
		o.res.Neither++
	}
}

// JointCollector exposes the Figure 6 classification as a lockstep-set
// lane: the observer machine it wraps can replay a shared cursor next to
// other machines (sim.NewSharedSet), so the joint analysis rides the same
// trace pass as the predictor panels instead of paying its own traversal.
type JointCollector struct {
	obs *jointObserver
	m   *sim.Machine
}

// NewJointCollector builds the observer machine for one workload pass.
func NewJointCollector(sys config.System, smsCfg config.SMS) *JointCollector {
	obs := &jointObserver{
		spatial:  sms.New(smsCfg, nil),
		temporal: newTMSOracle(8, 8),
	}
	return &JointCollector{obs: obs, m: sim.NewMachine(sys, obs)}
}

// Machine returns the lane machine to replay.
func (c *JointCollector) Machine() *sim.Machine { return c.m }

// Result reads the classification; call it after the replay finishes.
func (c *JointCollector) Result() JointResult { return c.obs.res }

// Joint runs the Figure 6 classification over one block-trace stream.
func Joint(sys config.System, smsCfg config.SMS, bs trace.BlockSource) JointResult {
	c := NewJointCollector(sys, smsCfg)
	c.m.RunBlocks(bs)
	return c.Result()
}
