package analysis

import (
	"stems/internal/config"
	"stems/internal/lru"
	"stems/internal/mem"
	"stems/internal/sim"
	"stems/internal/stats"
	"stems/internal/trace"
)

// CorrDist is the Figure 8 study: for every finished generation, its
// access sequence is compared against the previous occurrence of the same
// spatial lookup index. For each pair of consecutive accesses in the new
// sequence, the correlation distance is the distance between the same two
// offsets in the prior sequence: +1 is perfect repetition, anything else a
// reordering (§5.4).
type CorrDist struct {
	// Hist buckets distances in [-6, 6] (the paper's plotted range; 96% of
	// accesses fall inside it). Under/Over capture the tails.
	Hist *stats.Hist
	// Pairs counts consecutive-access pairs evaluated; Unmatched counts
	// pairs skipped because an offset was absent from the prior sequence.
	Pairs     uint64
	Unmatched uint64
	// Generations counts sequences compared (i.e. with a prior occurrence).
	Generations uint64
}

// WithinWindow returns the fraction of evaluated pairs whose |distance| is
// at most w — §5.4's reordering-window metric ("over 86% of accesses recur
// within a reordering window of two, and 92% within a window of four";
// note distance +1, perfect repetition, counts as within any window).
func (c *CorrDist) WithinWindow(w int) float64 {
	return c.Hist.CumFracWithin(w)
}

// corrObserver drives the generation tracker and the per-index sequence
// history.
type corrObserver struct {
	tracker *GenTracker
	prior   *lru.Map[GenKey, []int]
	res     *CorrDist
}

func (o *corrObserver) Name() string                { return "corrdist-observer" }
func (o *corrObserver) OnAccess(trace.Access, bool) {}
func (o *corrObserver) OnL1Evict(block mem.Addr)    { o.tracker.OnEvict(block) }
func (o *corrObserver) OnOffChipEvent(a trace.Access, covered bool) {
	if a.Write {
		return
	}
	o.tracker.OnMiss(a)
}

// compare scores one finished generation against the prior sequence for
// its index.
func (o *corrObserver) compare(g Generation) {
	prior, ok := o.prior.Get(g.Key)
	if ok && len(g.Seq) >= 2 {
		o.res.Generations++
		pos := make(map[int]int, len(prior))
		for i, off := range prior {
			pos[off] = i
		}
		for i := 0; i+1 < len(g.Seq); i++ {
			pa, okA := pos[g.Seq[i]]
			pb, okB := pos[g.Seq[i+1]]
			if !okA || !okB {
				o.res.Unmatched++
				continue
			}
			o.res.Pairs++
			o.res.Hist.Add(pb - pa)
		}
	}
	o.prior.Put(g.Key, g.Seq)
}

// CorrDistCollector exposes the Figure 8 study as a lockstep-set lane
// (see JointCollector): the observer machine replays a shared cursor, and
// Result flushes the still-open generations before reading.
type CorrDistCollector struct {
	obs     *corrObserver
	m       *sim.Machine
	flushed bool
}

// NewCorrDistCollector builds the observer machine for one workload pass.
func NewCorrDistCollector(sys config.System) *CorrDistCollector {
	obs := &corrObserver{
		tracker: NewGenTracker(),
		prior:   lru.New[GenKey, []int](1 << 16),
		res:     &CorrDist{Hist: stats.NewHist(-32, 32)},
	}
	obs.tracker.OnEnd = obs.compare
	return &CorrDistCollector{obs: obs, m: sim.NewMachine(sys, obs)}
}

// Machine returns the lane machine to replay.
func (c *CorrDistCollector) Machine() *sim.Machine { return c.m }

// Result flushes open generations (once) and returns the distribution.
// Call it after the replay finishes.
func (c *CorrDistCollector) Result() *CorrDist {
	if !c.flushed {
		c.obs.tracker.Flush()
		c.flushed = true
	}
	return c.obs.res
}

// CorrDistances runs the Figure 8 analysis over one block-trace stream.
func CorrDistances(sys config.System, bs trace.BlockSource) *CorrDist {
	c := NewCorrDistCollector(sys)
	c.m.RunBlocks(bs)
	return c.Result()
}
